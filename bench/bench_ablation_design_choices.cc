// Ablation bench for the design choices DESIGN.md calls out, all on
// the movies dataset with I-PES in an incremental (16 dD/s) setting:
//   (a) block-ghosting beta sweep,
//   (b) CmpIndex / per-entity capacity sweep (bounded-memory effect),
//   (c) adaptive K vs. fixed K,
//   (d) scalable-Bloom vs. exact executed-comparison filter,
//   (e) meta-blocking weighting scheme swap (CBS/ECBS/JS/ARCS),
//   (f) extension: PSN progressive baselines vs blocking-based ones.

#include <iostream>

#include "baseline/dysni.h"
#include "baseline/psn.h"
#include "bench/bench_harness.h"

namespace {

using namespace pier;
using namespace pier::bench;

RunResult RunConfig(const Dataset& d, const std::string& label,
                    PierOptions options, const Matcher& matcher,
                    const SimulatorOptions& sim_options) {
  const StreamSimulator simulator(&d, sim_options);
  PierAdapter adapter(options);
  RunResult r = simulator.Run(adapter, matcher);
  r.algorithm = label;
  return r;
}

}  // namespace

int main() {
  const Dataset d = MakeMovies();
  const EditDistanceMatcher ed(0.75, 256);
  const JaccardMatcher js(0.35);

  SimulatorOptions sim;
  sim.num_increments = 400;
  sim.increments_per_second = 16.0;
  sim.cost_mode = CostMeter::Mode::kModeled;
  sim.time_budget_s = 25.0 + 2.0 * LargeBudget();

  PierOptions base;
  base.kind = d.kind;
  base.strategy = PierStrategy::kIPes;
  base.blocking.max_block_size = 300;

  // (a) beta sweep.
  {
    std::vector<RunResult> runs;
    for (const double beta : {0.2, 0.5, 0.8, 1.0}) {
      PierOptions options = base;
      options.prioritizer.beta = beta;
      runs.push_back(RunConfig(d, "beta=" + std::to_string(beta).substr(0, 3),
                               options, js, sim));
    }
    PrintFigure("Ablation (a): block-ghosting beta (I-PES, JS)", runs,
                sim.time_budget_s);
  }

  // (b) queue-capacity sweep.
  {
    std::vector<RunResult> runs;
    for (const size_t capacity : {size_t{1} << 8, size_t{1} << 12,
                                  size_t{1} << 18}) {
      PierOptions options = base;
      options.prioritizer.cmp_index_capacity = capacity;
      options.prioritizer.entity_queue_capacity = capacity;
      options.prioritizer.low_weight_queue_capacity = capacity;
      options.prioritizer.per_entity_capacity =
          std::max<size_t>(4, capacity >> 10);
      runs.push_back(RunConfig(d, "cap=" + std::to_string(capacity),
                               options, js, sim));
    }
    PrintFigure("Ablation (b): bounded-queue capacity (I-PES, JS)", runs,
                sim.time_budget_s);
  }

  // (c) adaptive vs fixed K, expensive matcher (where K matters).
  {
    std::vector<RunResult> runs;
    runs.push_back(RunConfig(d, "adaptive-K", base, ed, sim));
    for (const size_t fixed : {size_t{16}, size_t{4096}}) {
      PierOptions options = base;
      options.adaptive_k.initial_k = fixed;
      options.adaptive_k.min_k = fixed;
      options.adaptive_k.max_k = fixed;
      runs.push_back(
          RunConfig(d, "fixed-K=" + std::to_string(fixed), options, ed,
                    sim));
    }
    PrintFigure("Ablation (c): adaptive vs fixed K (I-PES, ED)", runs,
                sim.time_budget_s);
  }

  // (d) Bloom vs exact executed filter.
  {
    std::vector<RunResult> runs;
    runs.push_back(RunConfig(d, "bloom-filter", base, js, sim));
    PierOptions options = base;
    options.exact_executed_filter = true;
    runs.push_back(RunConfig(d, "exact-filter", options, js, sim));
    PrintFigure("Ablation (d): executed-comparison filter (I-PES, JS)",
                runs, sim.time_budget_s);
  }

  // (f) progressive-baseline zoo (extension): the two PSN variants
  // from the paper's related work vs PBS/PPS vs I-PES, static setting.
  {
    const Dataset da = MakeDa();
    SimulatorOptions static_sim;
    static_sim.num_increments = 1;
    static_sim.increments_per_second = 0.0;
    static_sim.cost_mode = CostMeter::Mode::kModeled;
    static_sim.time_budget_s = SmallBudget();
    const JaccardMatcher js_da(0.35);
    std::vector<RunResult> runs;
    BlockingOptions blocking;
    blocking.max_block_size = 300;
    for (const PsnVariant variant :
         {PsnVariant::kGlobal, PsnVariant::kLocal}) {
      Psn psn(da.kind, blocking, variant);
      const StreamSimulator simulator(&da, static_sim);
      runs.push_back(simulator.Run(psn, js_da));
    }
    {
      DySni dysni(da.kind, blocking);
      const StreamSimulator simulator(&da, static_sim);
      runs.push_back(simulator.Run(dysni, js_da));
    }
    runs.push_back(RunOne(da, "PBS", "JS", static_sim));
    runs.push_back(RunOne(da, "PPS", "JS", static_sim));
    runs.push_back(RunOne(da, "I-PES", "JS", static_sim));
    PrintFigure("Ablation (f): PSN variants vs blocking-based methods "
                "(bibliographic, JS)",
                runs, static_sim.time_budget_s);
  }

  // (e) weighting schemes.
  {
    std::vector<RunResult> runs;
    for (const WeightingScheme scheme :
         {WeightingScheme::kCbs, WeightingScheme::kEcbs,
          WeightingScheme::kJs, WeightingScheme::kArcs}) {
      PierOptions options = base;
      options.prioritizer.scheme = scheme;
      runs.push_back(RunConfig(d, ToString(scheme), options, ed, sim));
    }
    PrintFigure("Ablation (e): weighting scheme (I-PES, ED)", runs,
                sim.time_budget_s);
  }
  return 0;
}
