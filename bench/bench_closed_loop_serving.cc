// Closed-loop serving gate: streams a dataset through the
// multi-threaded RealtimePipeline (ingest + match execution + cluster
// maintenance) while a dedicated query thread hammers the live cluster
// index with ClusterIdOf/ClusterOf point queries the whole time. This
// is the production read path under genuine write concurrency -- the
// adversarial setting for the seqlock read side (every AddMatch and
// TrackUpTo forces retries).
//
// The gate: query p99 latency under concurrent ingest must stay below
// a committed budget (serve.query_ns is recorded per query inside the
// index). Reps use fresh registries and the minimum p99 across reps is
// gated, suppressing scheduler noise. Exit status: 0 within budget,
// 1 over it (the CI bench-smoke job gates on this). BENCH_serving.json
// in the repo root is the committed baseline; see README for the
// refresh procedure.
//
// Arguments:
//   --gate-p99-ns=N     p99 budget in nanoseconds (default 1000000)
//   --json-out=FILE     write the machine-readable baseline JSON
//   PIER_BENCH_SCALE    tiny|small|paper workload size

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_harness.h"
#include "obs/metrics.h"
#include "stream/realtime_pipeline.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace pier;

struct RepResult {
  uint64_t queries = 0;
  uint64_t retries = 0;
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  double ingest_seconds = 0.0;
  uint64_t matches = 0;
  size_t clusters = 0;
};

RepResult RunRep(const Dataset& dataset, const Matcher& matcher,
                 size_t num_increments, size_t execution_threads) {
  obs::MetricsRegistry registry;
  PierOptions options;
  options.kind = dataset.kind;
  options.strategy = PierStrategy::kIPes;
  options.execution_threads = execution_threads;
  options.metrics = &registry;
  RealtimePipeline realtime(options, &matcher,
                            [](ProfileId, ProfileId) {});

  // The query thread runs the whole closed loop: it never pauses for
  // ingest, so every query races a concurrent writer. Mixed load:
  // mostly ClusterIdOf point lookups, every 16th query a full
  // ClusterOf member-list materialization.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sink{0};
  std::thread querier([&] {
    Rng rng(7);
    uint64_t local = 0;
    uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t universe = realtime.clusters().universe_size();
      if (universe == 0) {
        std::this_thread::yield();
        continue;
      }
      const auto id =
          static_cast<ProfileId>(rng.UniformInt(0, universe - 1));
      if (++n % 16 == 0) {
        local += realtime.ClusterOf(id).members.size();
      } else {
        local += realtime.ClusterIdOf(id);
      }
    }
    sink.fetch_add(local);
  });

  const auto increments = SplitIntoIncrements(dataset, num_increments);
  Stopwatch sw;
  for (const auto& inc : increments) {
    std::vector<EntityProfile> batch(
        dataset.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        dataset.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    realtime.Ingest(std::move(batch));
  }
  realtime.Drain();
  const double ingest_seconds = sw.ElapsedSeconds();
  stop.store(true);
  querier.join();

  RepResult rep;
  const obs::Histogram* latency = registry.GetHistogram("serve.query_ns");
  rep.queries = latency->Count();
  rep.retries = registry.GetCounter("serve.query_retries")->Value();
  rep.p50_ns = latency->Quantile(0.5);
  rep.p90_ns = latency->Quantile(0.9);
  rep.p99_ns = latency->Quantile(0.99);
  rep.ingest_seconds = ingest_seconds;
  rep.matches = realtime.matches_found();
  rep.clusters = realtime.clusters().NumNonTrivialClusters();
  if (sink.load() == uint64_t{0xdeadbeef}) std::abort();  // keep sink live
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t gate_p99_ns = 1000000;  // 1 ms: the sub-ms ROADMAP target
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--gate-p99-ns=", 14) == 0) {
      gate_p99_ns = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  const bool paper = bench::PaperScale();
  const bool tiny = bench::TinyScale();
  BibliographicOptions data_options;
  data_options.source0_count = paper ? 2600 : tiny ? 400 : 1200;
  data_options.source1_count = paper ? 2300 : tiny ? 350 : 1000;
  const Dataset dataset = GenerateBibliographic(data_options);
  const size_t num_increments = 50;
  const size_t execution_threads = 2;
  const JaccardMatcher matcher(0.35);
  const size_t reps = 3;

  // Warm-up rep (allocator, caches); then gated reps.
  RunRep(dataset, matcher, num_increments, execution_threads);
  std::vector<RepResult> results;
  RepResult best;  // rep with the lowest p99
  best.p99_ns = ~uint64_t{0};
  for (size_t r = 0; r < reps; ++r) {
    const RepResult rep =
        RunRep(dataset, matcher, num_increments, execution_threads);
    results.push_back(rep);
    if (rep.p99_ns < best.p99_ns) best = rep;
  }

  std::printf("rep,queries,retries,p50_ns,p90_ns,p99_ns,ingest_s,"
              "matches,clusters\n");
  for (size_t r = 0; r < results.size(); ++r) {
    const RepResult& rep = results[r];
    std::printf("%zu,%llu,%llu,%llu,%llu,%llu,%.4f,%llu,%zu\n", r,
                static_cast<unsigned long long>(rep.queries),
                static_cast<unsigned long long>(rep.retries),
                static_cast<unsigned long long>(rep.p50_ns),
                static_cast<unsigned long long>(rep.p90_ns),
                static_cast<unsigned long long>(rep.p99_ns),
                rep.ingest_seconds,
                static_cast<unsigned long long>(rep.matches), rep.clusters);
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n"
        << "  \"bench\": \"bench_closed_loop_serving\",\n"
        << "  \"scale\": \"" << (paper ? "paper" : tiny ? "tiny" : "small")
        << "\",\n"
        << "  \"gate_p99_ns\": " << gate_p99_ns << ",\n"
        << "  \"best\": {\n"
        << "    \"queries\": " << best.queries << ",\n"
        << "    \"retries\": " << best.retries << ",\n"
        << "    \"p50_ns\": " << best.p50_ns << ",\n"
        << "    \"p90_ns\": " << best.p90_ns << ",\n"
        << "    \"p99_ns\": " << best.p99_ns << ",\n"
        << "    \"ingest_seconds\": " << best.ingest_seconds << ",\n"
        << "    \"matches\": " << best.matches << ",\n"
        << "    \"clusters\": " << best.clusters << "\n"
        << "  }\n"
        << "}\n";
  }

  std::fprintf(stderr,
               "gate: query p99 under concurrent ingest %llu ns "
               "(budget %llu ns), %llu queries/rep best\n",
               static_cast<unsigned long long>(best.p99_ns),
               static_cast<unsigned long long>(gate_p99_ns),
               static_cast<unsigned long long>(best.queries));
  if (best.queries == 0) {
    std::fprintf(stderr, "FAIL: no queries executed\n");
    return 1;
  }
  if (best.p99_ns > gate_p99_ns) {
    std::fprintf(stderr, "FAIL: serving p99 above budget\n");
    return 1;
  }
  std::fprintf(stderr, "OK\n");
  return 0;
}
