// Figure 1 reproduction: the qualitative behaviour of batch,
// progressive (PBS), incremental (I-BASE), and PIER (I-PES) ER over a
// static dataset -- batch reports everything at the end, progressive
// front-loads matches after its pre-analysis, incremental steps up per
// increment, PIER front-loads *and* works incrementally.

#include <iostream>

#include "bench/bench_harness.h"

int main() {
  using namespace pier;
  using namespace pier::bench;

  const Dataset d = MakeMovies();

  SimulatorOptions sim;
  sim.num_increments = 50;
  sim.increments_per_second = 0.0;  // static data
  sim.cost_mode = CostMeter::Mode::kModeled;
  sim.time_budget_s = LargeBudget();

  std::vector<RunResult> runs;
  for (const char* alg : {"BATCH", "PBS", "I-BASE", "I-PES"}) {
    runs.push_back(RunOne(d, alg, "JS", sim));
  }

  // Summarize relative to batch ER's completion time (the reference
  // point of Definition 1: early quality is judged before F_batch
  // finishes).
  const double horizon = runs.front().end_time;
  PrintFigure("Figure 1: matches over time, static data (" + d.name + ", JS)",
              runs, horizon);

  std::printf("\nNote: batch ER's matches all surface near its completion; "
              "PBS needs the full dataset before emitting; I-BASE rises "
              "stepwise; I-PES rises early and keeps rising.\n");
  return 0;
}
