// Figure 2 reproduction: PPS-GLOBAL, PPS-LOCAL, I-BASE, and I-PES on
// the movies dataset under four stream regimes -- slow vs fast, short
// (100 increments) vs long (600 increments). Expected shape (paper):
// PPS-LOCAL flat near zero everywhere; PPS-GLOBAL fine on slow streams
// but collapsing on fast/long ones (prioritization reassessed per
// increment over ever more data); I-BASE eventually good but late on
// fast streams (fixed work per increment, backpressure); I-PES best
// early and eventual.
//
// Rates are derived from stream *durations* relative to the total
// matching work (expensive ED matcher), which is what distinguishes
// the regimes: "slow" leaves idle time between increments, "fast"
// delivers the whole stream in a fraction of the time the matcher
// needs for all comparisons.

#include <cstdio>
#include <iostream>

#include "bench/bench_harness.h"

int main() {
  using namespace pier;
  using namespace pier::bench;

  // PPS-GLOBAL re-runs its full pre-analysis on every increment, so
  // this figure uses a reduced movies dataset at small scale.
  Dataset d;
  if (PaperScale()) {
    d = MakeMovies();
  } else {
    MoviesOptions options;
    options.source0_count = 2000;
    options.source1_count = 1700;
    d = GenerateMovies(options);
  }
  const char* algorithms[] = {"PPS-GLOBAL", "PPS-LOCAL", "I-BASE", "I-PES"};

  struct Regime {
    const char* label;
    size_t increments;
    double stream_duration_s;
  };
  const Regime regimes[] = {
      {"slow-short", 100, 60.0},
      {"fast-short", 100, 0.5},
      {"slow-long", 600, 120.0},
      {"fast-long", 600, 0.5},
  };

  for (const auto& regime : regimes) {
    SimulatorOptions sim;
    sim.num_increments = regime.increments;
    sim.increments_per_second =
        static_cast<double>(regime.increments) / regime.stream_duration_s;
    sim.cost_mode = CostMeter::Mode::kModeled;
    // Budget: the nominal stream duration plus slack for processing.
    sim.time_budget_s = regime.stream_duration_s + 2.0 * LargeBudget();

    std::vector<RunResult> runs;
    for (const char* alg : algorithms) {
      runs.push_back(RunOne(d, alg, "ED", sim));
    }
    char title[160];
    std::snprintf(title, sizeof(title),
                  "Figure 2: %s (%zu dD at %.1f dD/s, %s, ED)", regime.label,
                  regime.increments, sim.increments_per_second,
                  d.name.c_str());
    PrintFigure(title, runs, sim.time_budget_s);
  }
  return 0;
}
