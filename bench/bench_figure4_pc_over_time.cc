// Figure 4 reproduction: PC over time in the progressive (static)
// setting -- PPS, PBS, I-PCS, I-PBS, I-PES on all four datasets, with
// the cheap (JS) and the expensive (ED) matcher, under a time budget
// (paper: 5 min small / 80 min large; here scaled, see bench_harness).
//
// Expected shape (paper Section 7.2): PPS ~ I-PES eventually, but PPS
// pays a long initialization on large datasets; PBS strong with JS;
// I-PBS/I-PCS degrade with ED (small K, CBS-misled priorities); I-PES
// the most robust incremental method.

#include <iostream>

#include "bench/bench_harness.h"

int main() {
  using namespace pier;
  using namespace pier::bench;

  struct Workload {
    Dataset dataset;
    size_t increments;
    double budget;
  };
  std::vector<Workload> workloads;
  workloads.push_back({MakeDa(), 1000, SmallBudget()});
  workloads.push_back({MakeMovies(), 1000, SmallBudget()});
  workloads.push_back({MakeCensus(), 2000, LargeBudget()});
  workloads.push_back({MakeDbpedia(), 3000, LargeBudget()});

  for (const auto& workload : workloads) {
    for (const char* matcher : {"JS", "ED"}) {
      SimulatorOptions sim;
      sim.num_increments = workload.increments;
      sim.increments_per_second = 0.0;  // static setting
      sim.cost_mode = CostMeter::Mode::kModeled;
      sim.time_budget_s = workload.budget;

      std::vector<RunResult> runs;
      for (const char* alg : {"PPS", "PBS", "I-PCS", "I-PBS", "I-PES"}) {
        runs.push_back(RunOne(workload.dataset, alg, matcher, sim));
      }
      PrintFigure("Figure 4: PC over time, " + workload.dataset.name + ", " +
                      matcher + " (static)",
                  runs, workload.budget);
    }
  }
  return 0;
}
