// Figure 5 reproduction: PC per *emitted comparison* (no time budget)
// in the static setting -- how much of each algorithm's effort is
// wasted on non-matching comparisons. Expected shape (paper): PPS the
// steepest; I-PES close; I-PCS needs far more comparisons for the same
// PC (CBS favours long, non-matching profiles); I-PBS in between.

#include <iostream>

#include "bench/bench_harness.h"

int main() {
  using namespace pier;
  using namespace pier::bench;

  struct Workload {
    Dataset dataset;
    size_t increments;
  };
  std::vector<Workload> workloads;
  workloads.push_back({MakeDa(), 1000});
  workloads.push_back({MakeMovies(), 1000});
  workloads.push_back({MakeCensus(), 2000});
  workloads.push_back({MakeDbpedia(), 3000});

  for (const auto& workload : workloads) {
    SimulatorOptions sim;
    sim.num_increments = workload.increments;
    sim.increments_per_second = 0.0;
    sim.cost_mode = CostMeter::Mode::kModeled;
    // Run to completion but keep a generous safety ceiling.
    sim.time_budget_s = 50.0 * LargeBudget();

    std::vector<RunResult> runs;
    for (const char* alg : {"PPS", "PBS", "I-PCS", "I-PBS", "I-PES"}) {
      // JS keeps comparisons cheap so every algorithm can finish; the
      // x-axis of interest is comparisons, not time.
      runs.push_back(RunOne(workload.dataset, alg, "JS", sim));
    }

    std::printf("\n=== Figure 5: PC per emitted comparison, %s ===\n",
                workload.dataset.name.c_str());
    std::printf("%-8s", "frac");
    for (const auto& r : runs) std::printf(" %10s", r.algorithm.c_str());
    std::printf("\n");
    uint64_t max_cmps = 0;
    for (const auto& r : runs) {
      max_cmps = std::max(max_cmps, r.comparisons_executed);
    }
    for (int step = 1; step <= 10; ++step) {
      const uint64_t c = max_cmps * step / 10;
      std::printf("%-8.1f", 0.1 * step);
      for (const auto& r : runs) {
        const double pc =
            r.total_true_matches == 0
                ? 0.0
                : static_cast<double>(r.curve.MatchesAtComparisons(c)) /
                      static_cast<double>(r.total_true_matches);
        std::printf(" %10.3f", pc);
      }
      std::printf("\n");
    }
    std::printf("total comparisons:");
    for (const auto& r : runs) {
      std::printf(" %s=%llu", r.algorithm.c_str(),
                  static_cast<unsigned long long>(r.comparisons_executed));
    }
    std::printf("\n");
  }
  return 0;
}
