// Figure 6 reproduction: influence of increment size on the
// dbpedia-like dataset with the expensive (ED) matcher -- many small
// increments vs. few large ones, I-PBS and I-PES against their batch
// counterparts PBS and PPS. Expected shape (paper): with fewer, larger
// increments the incremental methods' comparison order approaches the
// batch-optimal one (clearly for I-PBS vs PBS), at the price of longer
// per-increment pre-analysis; PPS only wins after its very long
// initialization.

#include <iostream>

#include "bench/bench_harness.h"

int main() {
  using namespace pier;
  using namespace pier::bench;

  const Dataset d = MakeDbpedia();
  const double budget = 0.5 * LargeBudget();

  const size_t many = PaperScale() ? 30000 : 3000;   // ~a few profiles each
  const size_t few = PaperScale() ? 300 : 30;        // large increments

  std::vector<RunResult> runs;
  for (const size_t increments : {many, few}) {
    SimulatorOptions sim;
    sim.num_increments = increments;
    sim.increments_per_second = 0.0;
    sim.cost_mode = CostMeter::Mode::kModeled;
    sim.time_budget_s = budget;
    for (const char* alg : {"I-PBS", "I-PES"}) {
      RunResult r = RunOne(d, alg, "ED", sim);
      r.algorithm = std::string(alg) + "(" + std::to_string(increments) + ")";
      runs.push_back(std::move(r));
    }
  }
  // Batch baselines for reference (single increment).
  {
    SimulatorOptions sim;
    sim.num_increments = 1;
    sim.increments_per_second = 0.0;
    sim.cost_mode = CostMeter::Mode::kModeled;
    sim.time_budget_s = budget;
    runs.push_back(RunOne(d, "PBS", "ED", sim));
    runs.push_back(RunOne(d, "PPS", "ED", sim));
  }

  PrintFigure("Figure 6: increment-size influence, " + d.name + ", ED",
              runs, budget);

  std::printf("\nPC per emitted comparison (right-hand plots):\n%-8s",
              "frac");
  for (const auto& r : runs) std::printf(" %14s", r.algorithm.c_str());
  std::printf("\n");
  uint64_t max_cmps = 0;
  for (const auto& r : runs) {
    max_cmps = std::max(max_cmps, r.comparisons_executed);
  }
  for (int step = 1; step <= 10; ++step) {
    const uint64_t c = max_cmps * step / 10;
    std::printf("%-8.1f", 0.1 * step);
    for (const auto& r : runs) {
      const double pc =
          r.total_true_matches == 0
              ? 0.0
              : static_cast<double>(r.curve.MatchesAtComparisons(c)) /
                    static_cast<double>(r.total_true_matches);
      std::printf(" %14.3f", pc);
    }
    std::printf("\n");
  }
  return 0;
}
