// Figure 7 reproduction: the incremental setting with a fast stream
// (32 dD/s) on the census-like (2M stand-in) and dbpedia-like
// datasets, JS and ED matchers; all incremental algorithms plus the
// PPS/PBS GLOBAL adaptations. The "x" (stream fully consumed) shows up
// in the summary's consumed_s column. Expected shape (paper):
// PPS/PBS-GLOBAL near zero; I-BASE decent with JS but late, stagnating
// with ED (cannot consume the stream); PIER algorithms adaptive, I-PES
// best on the heterogeneous dataset, I-PBS competitive on census.

#include <iostream>

#include "bench/bench_harness.h"

int main() {
  using namespace pier;
  using namespace pier::bench;

  std::vector<Dataset> datasets;
  datasets.push_back(MakeCensus());
  datasets.push_back(MakeDbpedia());

  for (const auto& d : datasets) {
    for (const char* matcher : {"JS", "ED"}) {
      SimulatorOptions sim;
      sim.num_increments = PaperScale() ? 20000 : 600;
      sim.increments_per_second = 32.0;
      sim.cost_mode = CostMeter::Mode::kModeled;
      sim.time_budget_s = LargeBudget() +
                          static_cast<double>(sim.num_increments) / 32.0;

      std::vector<RunResult> runs;
      for (const char* alg :
           {"PPS-GLOBAL", "PBS-GLOBAL", "I-BASE", "I-PCS", "I-PBS",
            "I-PES"}) {
        runs.push_back(RunOne(d, alg, matcher, sim));
      }
      PrintFigure("Figure 7: fast stream 32 dD/s, " + d.name + ", " +
                      matcher,
                  runs, sim.time_budget_s);
    }
  }
  return 0;
}
