// Figure 8 reproduction: the incremental setting at varying input
// rates (4, 8, 16 dD/s) on the census-like and dbpedia-like datasets
// (JS and ED). Expected shape (paper): on slow streams I-BASE keeps up
// and all methods look similar; as the rate grows, I-BASE stagnates
// while the adaptive PIER methods keep improving early quality; with
// ED everything slows, I-PES degrades the most gracefully.

#include <iostream>

#include "bench/bench_harness.h"

int main() {
  using namespace pier;
  using namespace pier::bench;

  std::vector<Dataset> datasets;
  datasets.push_back(MakeCensus());
  datasets.push_back(MakeDbpedia());

  for (const auto& d : datasets) {
    for (const char* matcher : {"JS", "ED"}) {
      for (const double rate : {4.0, 8.0, 16.0}) {
        SimulatorOptions sim;
        sim.num_increments = PaperScale() ? 20000 : 400;
        sim.increments_per_second = rate;
        sim.cost_mode = CostMeter::Mode::kModeled;
        sim.time_budget_s =
            LargeBudget() + static_cast<double>(sim.num_increments) / rate;

        std::vector<RunResult> runs;
        for (const char* alg : {"I-BASE", "I-PCS", "I-PBS", "I-PES"}) {
          runs.push_back(RunOne(d, alg, matcher, sim));
        }
        char title[160];
        std::snprintf(title, sizeof(title),
                      "Figure 8: rate %.0f dD/s, %s, %s", rate,
                      d.name.c_str(), matcher);
        PrintFigure(title, runs, sim.time_budget_s);
      }
    }
  }
  return 0;
}
