// Frontier-strategy gate (DESIGN.md section 10): the two src/frontier/
// prioritizers must justify their existence against I-PCS, the exact
// strategy whose candidate-generation shape they modify.
//
//   quality   -- FB-PCS folds verdict feedback into block scores, so
//                under a time budget its PC must not fall below I-PCS:
//                pc(FB-PCS) >= --gate-quality * pc(I-PCS).
//   overhead  -- SPER-SK replaces exact per-profile candidate
//                enumeration with a bounded number of stochastic
//                draws, so its prioritizer-layer cost per comparison
//                scheduled (UpdateCmpIndex + Dequeue; tokenization
//                and blocking off the clock) must stay well below
//                I-PCS: ns(SPER-SK) <= --gate-overhead * ns(I-PCS).
//
// Pass 0 to disable a gate. Exit status: 0 within the gates, 1 not.
// BENCH_frontier.json in the repo root is the committed baseline; see
// README for the refresh procedure.
//
// Arguments:
//   --gate-quality=F    min FB-PCS/I-PCS PC@budget ratio (default 0.95)
//   --gate-overhead=F   max SPER-SK/I-PCS scheduling ns ratio
//                       (default 0.7)
//   --json-out=FILE     write the machine-readable baseline JSON
//   PIER_BENCH_SCALE    tiny|small|paper workload size

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_harness.h"
#include "core/i_pcs.h"
#include "core/pier_pipeline.h"
#include "frontier/sper_sk.h"
#include "util/stopwatch.h"

namespace {

using namespace pier;
using namespace pier::bench;

// Scheduling cost: ns of prioritizer time per comparison scheduled.
// The bench replays the pipeline's own ingest plumbing (tokenize,
// block, store) with the clock stopped, then times exactly the
// prioritizer layer -- UpdateCmpIndex(delta) plus a bounded Dequeue
// drain per increment. Shared stages (tokenization, blocking) are
// identical for every strategy by construction, so keeping them off
// the clock isolates the quantity the gate is about: exact
// delta-enumeration cost vs bounded stochastic sampling.
double SchedulingNsPerComparison(const Dataset& dataset,
                                 PierStrategy strategy, size_t increments) {
  // Library-default blocking (no aggressive purge): the figure-bench
  // harness purges blocks over 300 members for runtime, but that cuts
  // off the power-law tail -- the very neighbourhoods whose exact
  // enumeration cost SPER-SK's bounded sampling exists to avoid. The
  // overhead gate measures the default-configuration regime.
  const BlockingOptions blocking;
  BlockCollection blocks(dataset.kind, blocking);
  ProfileStore store;
  TokenDictionary dictionary;
  const Tokenizer tokenizer;
  const PrioritizerContext ctx{&blocks, &store};
  const PrioritizerOptions prioritizer_options;
  std::unique_ptr<IncrementalPrioritizer> prioritizer;
  if (strategy == PierStrategy::kSperSk) {
    prioritizer = std::make_unique<SperSk>(ctx, prioritizer_options);
  } else {
    prioritizer = std::make_unique<IPcs>(ctx, prioritizer_options);
  }

  double seconds = 0.0;
  uint64_t scheduled = 0;
  for (const Increment& inc : SplitIntoIncrements(dataset, increments)) {
    std::vector<ProfileId> delta;
    delta.reserve(inc.end - inc.begin);
    for (size_t i = inc.begin; i < inc.end; ++i) {
      EntityProfile profile = dataset.profiles[i];
      tokenizer.TokenizeProfile(profile, dictionary);
      delta.push_back(profile.id);
      blocks.AddProfile(profile);
      store.Add(std::move(profile));
    }
    Stopwatch sw;
    prioritizer->UpdateCmpIndex(delta);
    Comparison out;
    size_t drained = 0;
    while (drained < 256 && prioritizer->Dequeue(&out)) ++drained;
    seconds += sw.ElapsedSeconds();
    scheduled += drained;
  }
  return scheduled == 0 ? 0.0
                        : seconds * 1e9 / static_cast<double>(scheduled);
}

}  // namespace

int main(int argc, char** argv) {
  double gate_quality = 0.95;
  double gate_overhead = 0.7;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--gate-quality=", 15) == 0) {
      gate_quality = std::strtod(argv[i] + 15, nullptr);
    } else if (std::strncmp(argv[i], "--gate-overhead=", 16) == 0) {
      gate_overhead = std::strtod(argv[i] + 16, nullptr);
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  // Quality is judged on the bibliographic dataset (the canonical
  // quality workload of the figure benches); scheduling overhead on
  // the power-law dbpedia dataset, whose heavy-tailed block sizes are
  // exactly the regime bounded sampling exists for -- on uniformly
  // tiny neighbourhoods both strategies degenerate to the same exact
  // sweep and the ratio is meaningless.
  const Dataset dataset = MakeDa();
  const Dataset overhead_dataset = MakeDbpedia();
  const double budget = SmallBudget();
  const size_t increments = TinyScale() ? 200 : 1000;

  // Quality phase: PC-over-time under the budget, through the same
  // harness the figure benches use.
  SimulatorOptions sim;
  sim.num_increments = increments;
  sim.increments_per_second = 0.0;  // static setting
  sim.cost_mode = CostMeter::Mode::kModeled;
  sim.time_budget_s = budget;

  std::vector<RunResult> runs;
  for (const char* alg : {"I-PCS", "SPER-SK", "FB-PCS"}) {
    runs.push_back(RunOne(dataset, alg, "JS", sim));
  }
  PrintFigure("Frontier strategies: PC over time, " + dataset.name +
                  ", JS (static)",
              runs, budget);
  const double pc_ipcs = runs[0].FinalPc();
  const double pc_sper = runs[1].FinalPc();
  const double pc_fb = runs[2].FinalPc();
  const double quality_ratio = pc_ipcs > 0.0 ? pc_fb / pc_ipcs : 0.0;

  // Overhead phase: scheduling ns per comparison scheduled, best of 15
  // interleaved reps after a warm-up (best-of filters scheduler noise;
  // the work itself is deterministic).
  double best_ipcs_ns = 0.0;
  double best_sper_ns = 0.0;
  (void)SchedulingNsPerComparison(overhead_dataset, PierStrategy::kIPcs,
                                  increments);
  std::printf("\nrep,ipcs_ns_per_cmp,spersk_ns_per_cmp\n");
  for (int r = 0; r < 15; ++r) {
    const double ipcs_ns = SchedulingNsPerComparison(
        overhead_dataset, PierStrategy::kIPcs, increments);
    const double sper_ns = SchedulingNsPerComparison(
        overhead_dataset, PierStrategy::kSperSk, increments);
    if (best_ipcs_ns == 0.0 || ipcs_ns < best_ipcs_ns) best_ipcs_ns = ipcs_ns;
    if (best_sper_ns == 0.0 || sper_ns < best_sper_ns) best_sper_ns = sper_ns;
    std::printf("%d,%.1f,%.1f\n", r, ipcs_ns, sper_ns);
  }
  const double overhead_ratio =
      best_ipcs_ns > 0.0 ? best_sper_ns / best_ipcs_ns : 0.0;

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n"
        << "  \"bench\": \"bench_frontier_strategies\",\n"
        << "  \"scale\": \""
        << (PaperScale() ? "paper" : TinyScale() ? "tiny" : "small")
        << "\",\n"
        << "  \"dataset\": \"" << dataset.name << "\",\n"
        << "  \"overhead_dataset\": \"" << overhead_dataset.name << "\",\n"
        << "  \"budget_s\": " << budget << ",\n"
        << "  \"pc_at_budget\": {\n"
        << "    \"I-PCS\": " << pc_ipcs << ",\n"
        << "    \"SPER-SK\": " << pc_sper << ",\n"
        << "    \"FB-PCS\": " << pc_fb << "\n"
        << "  },\n"
        << "  \"scheduling_ns_per_cmp\": {\n"
        << "    \"I-PCS\": " << best_ipcs_ns << ",\n"
        << "    \"SPER-SK\": " << best_sper_ns << "\n"
        << "  },\n"
        << "  \"quality_ratio\": " << quality_ratio << ",\n"
        << "  \"overhead_ratio\": " << overhead_ratio << ",\n"
        << "  \"gate_quality\": " << gate_quality << ",\n"
        << "  \"gate_overhead\": " << gate_overhead << "\n"
        << "}\n";
  }

  std::fprintf(stderr,
               "gate: FB-PCS pc %.4f vs I-PCS %.4f (ratio %.3f, gate >= "
               "%.2f); SPER-SK scheduling %.1fns vs I-PCS %.1fns per "
               "comparison (ratio %.3f, gate <= %.2f)\n",
               pc_fb, pc_ipcs, quality_ratio, gate_quality, best_sper_ns,
               best_ipcs_ns, overhead_ratio, gate_overhead);
  bool failed = false;
  if (gate_quality > 0.0 && quality_ratio < gate_quality) {
    std::fprintf(stderr, "FAIL: FB-PCS PC@budget below the I-PCS gate\n");
    failed = true;
  }
  if (gate_overhead > 0.0 && overhead_ratio > gate_overhead) {
    std::fprintf(stderr, "FAIL: SPER-SK scheduling overhead above gate\n");
    failed = true;
  }
  if (failed) return 1;
  std::fprintf(stderr, "OK\n");
  return 0;
}
