// Shared scaffolding for the figure/table reproduction benches: scaled
// dataset construction, algorithm factory, run driver, and printing.
//
// Every bench accepts the environment variable PIER_BENCH_SCALE:
//   tiny            -- CI-smoke sizes, seconds per bench
//   small (default) -- laptop-scale datasets, minutes for all benches
//   paper           -- larger datasets closer to the paper's sizes
// Figures print their data as CSV series (series,time,comparisons,
// matches,pc) followed by the summary table; EXPERIMENTS.md records
// the shape comparison against the paper.

#ifndef PIER_BENCH_BENCH_HARNESS_H_
#define PIER_BENCH_BENCH_HARNESS_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baseline/batch_er.h"
#include "baseline/i_base.h"
#include "baseline/pbs.h"
#include "baseline/pps.h"
#include "baseline/pps_local.h"
#include "datagen/generators.h"
#include "eval/report.h"
#include "similarity/matcher.h"
#include "stream/pier_adapter.h"
#include "stream/stream_simulator.h"

namespace pier {
namespace bench {

inline bool PaperScale() {
  const char* scale = std::getenv("PIER_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "paper";
}

inline bool TinyScale() {
  const char* scale = std::getenv("PIER_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "tiny";
}

// The four evaluation datasets of Table 1, at bench scale.
inline Dataset MakeDa() {
  BibliographicOptions options;  // paper-size already (2.6k/2.3k)
  if (TinyScale()) {
    options.source0_count = 400;
    options.source1_count = 350;
  }
  return GenerateBibliographic(options);
}

inline Dataset MakeMovies() {
  MoviesOptions options;
  if (PaperScale()) {
    options.source0_count = 27600;
    options.source1_count = 23100;
  } else if (TinyScale()) {
    options.source0_count = 700;
    options.source1_count = 600;
  } else {
    options.source0_count = 4000;
    options.source1_count = 3400;
  }
  return GenerateMovies(options);
}

inline Dataset MakeCensus() {
  CensusOptions options;
  options.num_records = PaperScale() ? 200000 : TinyScale() ? 2500 : 12000;
  return GenerateCensus(options);
}

inline Dataset MakeDbpedia() {
  DbpediaOptions options;
  if (PaperScale()) {
    options.source0_count = 40000;
    options.source1_count = 60000;
  } else if (TinyScale()) {
    options.source0_count = 900;
    options.source1_count = 1200;
  } else {
    options.source0_count = 5000;
    options.source1_count = 7000;
  }
  return GenerateDbpedia(options);
}

// Time budgets mirroring the paper's 5 min (small/medium) and 80 min
// (large) at bench scale.
inline double SmallBudget() {
  return PaperScale() ? 60.0 : TinyScale() ? 2.0 : 5.0;
}
inline double LargeBudget() {
  return PaperScale() ? 120.0 : TinyScale() ? 5.0 : 20.0;
}

inline std::unique_ptr<Matcher> MakeBenchMatcher(const std::string& name) {
  if (name == "JS") return std::make_unique<JaccardMatcher>(0.35);
  return std::make_unique<EditDistanceMatcher>(0.75, /*max_text_length=*/256);
}

// Algorithm factory by display name.
inline std::unique_ptr<ErAlgorithm> MakeAlgorithm(const std::string& name,
                                                  DatasetKind kind) {
  BlockingOptions blocking;
  blocking.max_block_size = 300;  // aggressive purging at bench scale
  if (name == "BATCH") return std::make_unique<BatchEr>(kind, blocking);
  if (name == "PBS") return std::make_unique<Pbs>(kind, blocking);
  if (name == "PBS-GLOBAL") {
    return std::make_unique<Pbs>(kind, blocking,
                                 BaselineMode::kGlobalIncremental);
  }
  if (name == "PPS") return std::make_unique<Pps>(kind, blocking);
  if (name == "PPS-GLOBAL") {
    return std::make_unique<Pps>(kind, blocking,
                                 BaselineMode::kGlobalIncremental);
  }
  if (name == "PPS-LOCAL") return std::make_unique<PpsLocal>(kind, blocking);
  if (name == "I-BASE") return std::make_unique<IBase>(kind, blocking);
  PierOptions options;
  options.kind = kind;
  options.blocking = blocking;
  if (name == "I-PCS") {
    options.strategy = PierStrategy::kIPcs;
  } else if (name == "I-PBS") {
    options.strategy = PierStrategy::kIPbs;
  } else if (name == "SPER-SK") {
    options.strategy = PierStrategy::kSperSk;
  } else if (name == "FB-PCS") {
    options.strategy = PierStrategy::kFbPcs;
  } else {
    options.strategy = PierStrategy::kIPes;
  }
  return std::make_unique<PierAdapter>(options);
}

inline RunResult RunOne(const Dataset& dataset, const std::string& algorithm,
                        const std::string& matcher_name,
                        const SimulatorOptions& sim_options) {
  const StreamSimulator simulator(&dataset, sim_options);
  const auto matcher = MakeBenchMatcher(matcher_name);
  const auto algorithm_impl = MakeAlgorithm(algorithm, dataset.kind);
  RunResult result = simulator.Run(*algorithm_impl, *matcher);
  result.algorithm = algorithm;  // display name incl. mode
  return result;
}

inline void PrintFigure(const std::string& title,
                        const std::vector<RunResult>& runs, double horizon) {
  std::printf("\n=== %s ===\n", title.c_str());
  PrintCurveCsv(std::cout, runs, /*max_points=*/32);
  std::printf("--- summary (horizon %.1fs) ---\n", horizon);
  PrintSummaryTable(std::cout, runs, horizon);
}

}  // namespace bench
}  // namespace pier

#endif  // PIER_BENCH_BENCH_HARNESS_H_
