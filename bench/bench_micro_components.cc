// Component micro-benchmarks (google-benchmark): throughput of the
// individual substrates -- tokenization, incremental blocking,
// candidate weighting, the bounded priority queue, Bloom filters, and
// the two match functions. These are the per-unit costs the
// ModeledCostMeter approximates.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "blocking/block_collection.h"
#include "blocking/block_ghosting.h"
#include "core/pier_pipeline.h"
#include "datagen/generators.h"
#include "metablocking/weighting.h"
#include "model/comparison.h"
#include "similarity/intersect_kernel.h"
#include "similarity/matcher.h"
#include "similarity/string_distance.h"
#include "text/tokenizer.h"
#include "util/bounded_priority_queue.h"
#include "util/rng.h"
#include "util/scalable_bloom_filter.h"

namespace {

using namespace pier;

Dataset& SharedMovies() {
  static Dataset& d = *new Dataset([] {
    MoviesOptions options;
    options.source0_count = 2000;
    options.source1_count = 1700;
    return GenerateMovies(options);
  }());
  return d;
}

void BM_TokenizeProfile(benchmark::State& state) {
  const Dataset& d = SharedMovies();
  Tokenizer tokenizer;
  TokenDictionary dict;
  size_t i = 0;
  for (auto _ : state) {
    EntityProfile p = d.profiles[i++ % d.profiles.size()];
    tokenizer.TokenizeProfile(p, dict);
    benchmark::DoNotOptimize(p.tokens().data());
  }
}
BENCHMARK(BM_TokenizeProfile);

void BM_IncrementalBlocking(benchmark::State& state) {
  const Dataset& d = SharedMovies();
  Tokenizer tokenizer;
  TokenDictionary dict;
  std::vector<EntityProfile> tokenized = d.profiles;
  for (auto& p : tokenized) tokenizer.TokenizeProfile(p, dict);
  size_t i = 0;
  BlockCollection* blocks = new BlockCollection(d.kind);
  for (auto _ : state) {
    if (i == tokenized.size()) {  // reset when exhausted
      state.PauseTiming();
      delete blocks;
      blocks = new BlockCollection(d.kind);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(blocks->AddProfile(tokenized[i++]));
  }
  delete blocks;
}
BENCHMARK(BM_IncrementalBlocking);

void BM_GhostingPlusWeighting(benchmark::State& state) {
  const Dataset& d = SharedMovies();
  Tokenizer tokenizer;
  TokenDictionary dict;
  ProfileStore store;
  BlockCollection blocks(d.kind);
  for (auto p : d.profiles) {
    tokenizer.TokenizeProfile(p, dict);
    blocks.AddProfile(p);
    store.Add(std::move(p));
  }
  const WeightingContext ctx{&blocks, &store, WeightingScheme::kCbs};
  size_t i = 0;
  for (auto _ : state) {
    const EntityProfile& p = store.Get(static_cast<ProfileId>(
        i++ % store.size()));
    const auto retained = GhostBlocks(blocks, p, 0.5);
    auto cmps = GenerateWeightedComparisons(ctx, p, retained);
    benchmark::DoNotOptimize(cmps.data());
  }
}
BENCHMARK(BM_GhostingPlusWeighting);

// ---------------------------------------------------------------------------
// Weighting kernel: allocation-free epoch-stamped scratch vs. the
// map-based reference, all four schemes, Clean-Clean (dbpedia-like
// power-law blocks) and Dirty (census-like). Emits comparisons/sec and
// raw block-member visits/sec as rate counters; CI's bench-smoke job
// runs this with --benchmark_format=csv and refreshes the
// machine-readable baseline in BENCH_weighting.json (see README,
// "bench/ README").
// ---------------------------------------------------------------------------

struct WeightingWorkload {
  ProfileStore store;
  BlockCollection blocks;
  std::vector<std::vector<TokenId>> active;  // per-profile active blocks

  explicit WeightingWorkload(Dataset dataset) : blocks(dataset.kind) {
    Tokenizer tokenizer;
    TokenDictionary dictionary;
    for (auto& p : dataset.profiles) {
      tokenizer.TokenizeProfile(p, dictionary);
      blocks.AddProfile(p);
      store.Add(std::move(p));
    }
    active.resize(store.size());
    for (ProfileId id = 0; id < store.size(); ++id) {
      for (const TokenId t : store.Get(id).tokens()) {
        if (blocks.IsActive(t)) active[id].push_back(t);
      }
    }
  }
};

WeightingWorkload& SharedWeightingWorkload(DatasetKind kind) {
  if (kind == DatasetKind::kCleanClean) {
    static WeightingWorkload& w = *new WeightingWorkload([] {
      DbpediaOptions options;  // bench-smoke scale of the dbpedia stand-in
      options.source0_count = 900;
      options.source1_count = 1200;
      return GenerateDbpedia(options);
    }());
    return w;
  }
  static WeightingWorkload& w = *new WeightingWorkload([] {
    CensusOptions options;
    options.num_records = 2500;
    return GenerateCensus(options);
  }());
  return w;
}

void BM_WeightingKernel(benchmark::State& state) {
  const bool use_scratch = state.range(0) == 1;
  const auto scheme = static_cast<WeightingScheme>(state.range(1));
  const DatasetKind kind =
      state.range(2) == 1 ? DatasetKind::kCleanClean : DatasetKind::kDirty;
  WeightingWorkload& w = SharedWeightingWorkload(kind);
  const WeightingContext ctx{&w.blocks, &w.store, scheme};
  WeightingScratch scratch;
  uint64_t comparisons = 0;
  uint64_t visits = 0;
  size_t i = 0;
  for (auto _ : state) {
    const ProfileId id = static_cast<ProfileId>(i++ % w.store.size());
    const EntityProfile& p = w.store.Get(id);
    auto cmps =
        use_scratch
            ? GenerateWeightedComparisons(ctx, p, w.active[id],
                                          /*only_older_neighbors=*/true,
                                          &visits, &scratch)
            : GenerateWeightedComparisonsReference(
                  ctx, p, w.active[id], /*only_older_neighbors=*/true,
                  &visits);
    comparisons += cmps.size();
    benchmark::DoNotOptimize(cmps.data());
  }
  state.counters["cmp_per_s"] = benchmark::Counter(
      static_cast<double>(comparisons), benchmark::Counter::kIsRate);
  state.counters["visits_per_s"] = benchmark::Counter(
      static_cast<double>(visits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WeightingKernel)
    ->ArgNames({"scratch", "scheme", "clean"})
    ->ArgsProduct({{0, 1}, {0, 1, 2, 3}, {0, 1}});

void BM_BoundedPqPushPop(benchmark::State& state) {
  BoundedPriorityQueue<Comparison, CompareByWeight> queue(
      static_cast<size_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    queue.PushBounded(
        Comparison(rng.NextU32() % 100000, rng.NextU32() % 100000,
                   rng.UniformDouble()));
    if (queue.size() > 16 && rng.Bernoulli(0.5)) {
      benchmark::DoNotOptimize(queue.PopMax());
    }
  }
}
BENCHMARK(BM_BoundedPqPushPop)->Arg(1 << 10)->Arg(1 << 16);

void BM_ScalableBloomTestAndAdd(benchmark::State& state) {
  ScalableBloomFilter filter;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.TestAndAdd(rng.NextU64() >> 20));
  }
}
BENCHMARK(BM_ScalableBloomTestAndAdd);

// Probe cost of the three Bloom bit layouts at a fixed sizing: the
// modulo divide (legacy), the fastrange multiply, and the one-cache-
// line blocked variant. Arg is the BloomLayout enum value.
void BM_BloomProbe(benchmark::State& state) {
  const auto layout = static_cast<BloomLayout>(state.range(0));
  BloomFilter filter(100000, 0.01, layout);
  Rng rng(5);
  for (uint64_t i = 0; i < 100000; ++i) filter.Add(rng.NextU64());
  Rng probe(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayContain(probe.NextU64()));
  }
}
BENCHMARK(BM_BloomProbe)->Arg(0)->Arg(1)->Arg(2);

std::vector<TokenId> RandomSortedTokens(Rng& rng, size_t size,
                                        uint32_t universe) {
  std::vector<TokenId> tokens;
  tokens.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    tokens.push_back(rng.NextU32() % universe);
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

// The batched kernel as built (AVX2 when PIER_SIMD=ON, branchless
// scalar otherwise) against the classic branchy merge it replaced.
// Arg is the per-side set size; ~half the ids overlap.
void BM_IntersectKernel(benchmark::State& state) {
  Rng rng(7);
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<TokenId> a =
      RandomSortedTokens(rng, n, static_cast<uint32_t>(2 * n));
  const std::vector<TokenId> b =
      RandomSortedTokens(rng, n, static_cast<uint32_t>(2 * n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedIntersectionSize(a, b));
  }
  state.SetLabel(IntersectKernelUsesSimd() ? "avx2" : "scalar");
}
BENCHMARK(BM_IntersectKernel)->Arg(16)->Arg(64)->Arg(512);

void BM_IntersectBranchyMerge(benchmark::State& state) {
  Rng rng(7);
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<TokenId> a =
      RandomSortedTokens(rng, n, static_cast<uint32_t>(2 * n));
  const std::vector<TokenId> b =
      RandomSortedTokens(rng, n, static_cast<uint32_t>(2 * n));
  for (auto _ : state) {
    size_t i = 0;
    size_t j = 0;
    size_t common = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (b[j] < a[i]) {
        ++j;
      } else {
        ++common;
        ++i;
        ++j;
      }
    }
    benchmark::DoNotOptimize(common);
  }
}
BENCHMARK(BM_IntersectBranchyMerge)->Arg(16)->Arg(64)->Arg(512);

void BM_JaccardMatch(benchmark::State& state) {
  const Dataset& d = SharedMovies();
  Tokenizer tokenizer;
  TokenDictionary dict;
  std::vector<EntityProfile> tokenized = d.profiles;
  for (auto& p : tokenized) tokenizer.TokenizeProfile(p, dict);
  const JaccardMatcher matcher(0.35);
  Rng rng(3);
  for (auto _ : state) {
    const auto& a = tokenized[rng.NextU32() % tokenized.size()];
    const auto& b = tokenized[rng.NextU32() % tokenized.size()];
    benchmark::DoNotOptimize(matcher.Similarity(a, b));
  }
}
BENCHMARK(BM_JaccardMatch);

void BM_EditDistanceMatch(benchmark::State& state) {
  const Dataset& d = SharedMovies();
  Tokenizer tokenizer;
  TokenDictionary dict;
  std::vector<EntityProfile> tokenized = d.profiles;
  for (auto& p : tokenized) tokenizer.TokenizeProfile(p, dict);
  const EditDistanceMatcher matcher(0.75, 256);
  Rng rng(4);
  for (auto _ : state) {
    const auto& a = tokenized[rng.NextU32() % tokenized.size()];
    const auto& b = tokenized[rng.NextU32() % tokenized.size()];
    benchmark::DoNotOptimize(matcher.Similarity(a, b));
  }
}
BENCHMARK(BM_EditDistanceMatch);

void BM_PipelineIngestEmit(benchmark::State& state) {
  const Dataset& d = SharedMovies();
  for (auto _ : state) {
    state.PauseTiming();
    PierOptions options;
    options.kind = d.kind;
    options.strategy = static_cast<PierStrategy>(state.range(0));
    PierPipeline pipeline(options);
    const auto increments = SplitIntoIncrements(d, 20);
    state.ResumeTiming();
    size_t emitted = 0;
    for (const auto& inc : increments) {
      std::vector<EntityProfile> profiles(
          d.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
          d.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
      pipeline.Ingest(std::move(profiles));
      emitted += pipeline.EmitBatch(256).size();
    }
    benchmark::DoNotOptimize(emitted);
  }
}
BENCHMARK(BM_PipelineIngestEmit)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
