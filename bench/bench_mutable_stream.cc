// Mutable-stream overhead gate: the price of deletability. When
// `mutable_stream` is on, the executed-comparison filter becomes a
// 2-bit counting Bloom filter (util/counting_bloom_filter.h) instead
// of the append-only 1-bit scalable filter. The counting layout costs
// exactly 2 bits per cell vs 1, so the design memory ratio is 2.0x,
// and TestAndAdd touches the same cells through slightly wider
// bit arithmetic, so latency should stay close to parity.
//
// The gates (both measured as counting / append-only ratios over the
// same key stream, best-of-reps):
//   memory  <= --gate-memory  (default 2.0x: the 2-bit layout, no
//              hidden slack)
//   latency <= --gate-latency (default 1.3x TestAndAdd ns/op)
// Pass 0 to disable a gate. Exit status: 0 within the gates, 1 not.
// BENCH_mutation.json in the repo root is the committed baseline; see
// README for the refresh procedure.
//
// Also reports (no gate) the end-to-end mutable-pipeline mutation
// throughput: deletes and corrections per second through PierPipeline
// on a census workload, so regressions in the retraction path
// (prioritizer purge, pair-registry take, cluster re-resolve) show up
// in the same baseline file.
//
// Arguments:
//   --gate-memory=F     max counting/append-only memory ratio
//   --gate-latency=F    max counting/append-only TestAndAdd ns ratio
//   --json-out=FILE     write the machine-readable baseline JSON
//   PIER_BENCH_SCALE    tiny|small|paper workload size

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_harness.h"
#include "core/pier_pipeline.h"
#include "util/counting_bloom_filter.h"
#include "util/hashing.h"
#include "util/scalable_bloom_filter.h"
#include "util/stopwatch.h"

namespace {

using namespace pier;

struct FilterRep {
  double append_ns_per_op = 0.0;
  double counting_ns_per_op = 0.0;
  size_t append_bytes = 0;
  size_t counting_bytes = 0;
};

FilterRep RunFilterRep(size_t num_keys) {
  FilterRep rep;
  {
    ScalableBloomFilter filter;
    Stopwatch sw;
    for (size_t i = 0; i < num_keys; ++i) {
      (void)filter.TestAndAdd(Mix64(i));
    }
    rep.append_ns_per_op =
        sw.ElapsedSeconds() * 1e9 / static_cast<double>(num_keys);
    rep.append_bytes = filter.ApproxMemoryBytes();
  }
  {
    ScalableCountingBloomFilter filter;
    Stopwatch sw;
    for (size_t i = 0; i < num_keys; ++i) {
      (void)filter.TestAndAdd(Mix64(i));
    }
    rep.counting_ns_per_op =
        sw.ElapsedSeconds() * 1e9 / static_cast<double>(num_keys);
    rep.counting_bytes = filter.ApproxMemoryBytes();
  }
  return rep;
}

struct MutationRep {
  double mutations_per_s = 0.0;
  uint64_t deletes = 0;
  uint64_t updates = 0;
};

MutationRep RunMutationRep(const Dataset& dataset) {
  PierOptions options;
  options.kind = dataset.kind;
  options.strategy = PierStrategy::kIPes;
  options.mutable_stream = true;
  PierPipeline pipeline(options);
  pipeline.Ingest(dataset.profiles);
  // Pre-populate the executed filter / pair registries so retraction
  // has real state to withdraw.
  while (!pipeline.EmitBatch(1024).empty()) {
  }

  MutationRep rep;
  Stopwatch sw;
  for (ProfileId id = 0; id + 1 < dataset.profiles.size(); id += 2) {
    pipeline.Delete({id});
    ++rep.deletes;
    EntityProfile replacement =
        dataset.profiles[(id + 17) % dataset.profiles.size()];
    replacement.id = id + 1;
    pipeline.Update({std::move(replacement)});
    ++rep.updates;
  }
  const double seconds = sw.ElapsedSeconds();
  rep.mutations_per_s =
      seconds > 0.0
          ? static_cast<double>(rep.deletes + rep.updates) / seconds
          : 0.0;
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  double gate_memory = 2.0;
  double gate_latency = 1.3;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--gate-memory=", 14) == 0) {
      gate_memory = std::strtod(argv[i] + 14, nullptr);
    } else if (std::strncmp(argv[i], "--gate-latency=", 15) == 0) {
      gate_latency = std::strtod(argv[i] + 15, nullptr);
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  const bool paper = bench::PaperScale();
  const bool tiny = bench::TinyScale();
  const size_t num_keys = paper ? 4000000 : tiny ? 200000 : 1000000;
  const size_t reps = 3;

  // Filter microbench: same key stream through both filters.
  double best_append_ns = 0.0;
  double best_counting_ns = 0.0;
  size_t append_bytes = 0;
  size_t counting_bytes = 0;
  RunFilterRep(num_keys);  // warm-up
  std::printf("rep,append_ns_per_op,counting_ns_per_op,append_bytes,"
              "counting_bytes\n");
  for (size_t r = 0; r < reps; ++r) {
    const FilterRep rep = RunFilterRep(num_keys);
    if (best_append_ns == 0.0 || rep.append_ns_per_op < best_append_ns) {
      best_append_ns = rep.append_ns_per_op;
    }
    if (best_counting_ns == 0.0 ||
        rep.counting_ns_per_op < best_counting_ns) {
      best_counting_ns = rep.counting_ns_per_op;
    }
    append_bytes = rep.append_bytes;
    counting_bytes = rep.counting_bytes;
    std::printf("%zu,%.2f,%.2f,%zu,%zu\n", r, rep.append_ns_per_op,
                rep.counting_ns_per_op, rep.append_bytes, rep.counting_bytes);
  }
  const double memory_ratio =
      append_bytes > 0
          ? static_cast<double>(counting_bytes) /
                static_cast<double>(append_bytes)
          : 0.0;
  const double latency_ratio =
      best_append_ns > 0.0 ? best_counting_ns / best_append_ns : 0.0;

  // End-to-end mutation throughput (report only, no gate).
  CensusOptions census;
  census.num_records = paper ? 20000 : tiny ? 1000 : 5000;
  const Dataset dataset = GenerateCensus(census);
  const MutationRep mutation = RunMutationRep(dataset);
  std::printf("mutations_per_s,%.1f,deletes,%llu,updates,%llu\n",
              mutation.mutations_per_s,
              static_cast<unsigned long long>(mutation.deletes),
              static_cast<unsigned long long>(mutation.updates));

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n"
        << "  \"bench\": \"bench_mutable_stream\",\n"
        << "  \"scale\": \"" << (paper ? "paper" : tiny ? "tiny" : "small")
        << "\",\n"
        << "  \"keys\": " << num_keys << ",\n"
        << "  \"append_only\": {\n"
        << "    \"testandadd_ns\": " << best_append_ns << ",\n"
        << "    \"memory_bytes\": " << append_bytes << "\n"
        << "  },\n"
        << "  \"counting\": {\n"
        << "    \"testandadd_ns\": " << best_counting_ns << ",\n"
        << "    \"memory_bytes\": " << counting_bytes << "\n"
        << "  },\n"
        << "  \"memory_ratio\": " << memory_ratio << ",\n"
        << "  \"latency_ratio\": " << latency_ratio << ",\n"
        << "  \"gate_memory\": " << gate_memory << ",\n"
        << "  \"gate_latency\": " << gate_latency << ",\n"
        << "  \"mutation_profiles\": " << dataset.profiles.size() << ",\n"
        << "  \"mutations_per_s\": " << mutation.mutations_per_s << "\n"
        << "}\n";
  }

  std::fprintf(stderr,
               "gate: counting filter %.2fx memory (gate %.2fx), %.2fx "
               "TestAndAdd latency (gate %.2fx); mutations %.1f/s\n",
               memory_ratio, gate_memory, latency_ratio, gate_latency,
               mutation.mutations_per_s);
  bool failed = false;
  if (gate_memory > 0.0 && memory_ratio > gate_memory) {
    std::fprintf(stderr, "FAIL: counting-filter memory ratio above gate\n");
    failed = true;
  }
  if (gate_latency > 0.0 && latency_ratio > gate_latency) {
    std::fprintf(stderr, "FAIL: counting-filter latency ratio above gate\n");
    failed = true;
  }
  if (failed) return 1;
  std::fprintf(stderr, "OK\n");
  return 0;
}
