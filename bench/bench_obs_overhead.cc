// Overhead gate for the pier::obs metrics layer: runs the same
// end-to-end workload (pipeline emit + parallel match execution over
// many small batches -- the hottest instrumented path) twice in one
// process, uninstrumented (null registry: every metric update is one
// predictable branch) and instrumented (registry attached, every
// counter/histogram/timer live), and fails if instrumentation costs
// more than the allowed fraction.
//
// Reps for the two variants are interleaved and the minimum per
// variant is compared, which suppresses thermal / scheduler noise.
// Exit status: 0 when within budget, 1 when over (the CI bench-smoke
// job gates on this).
//
// Arguments:
//   argv[1] (optional)  allowed overhead fraction, default 0.05
//   PIER_BENCH_SCALE    tiny|small|paper workload size

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_harness.h"
#include "core/pier_pipeline.h"
#include "obs/metrics.h"
#include "similarity/parallel_executor.h"
#include "util/stopwatch.h"

namespace {

using namespace pier;

// One pass of the instrumented hot path: re-emit the prioritized
// comparisons in small batches through a fresh pipeline and execute
// each batch. Returns a sink value so nothing is optimized away.
uint64_t RunWorkload(const Dataset& dataset, const Matcher& matcher,
                     obs::MetricsRegistry* registry, size_t batch_size,
                     size_t max_comparisons) {
  PierOptions options;
  options.kind = dataset.kind;
  options.strategy = PierStrategy::kIPes;
  options.metrics = registry;
  PierPipeline pipeline(options);
  std::vector<EntityProfile> all = dataset.profiles;
  pipeline.Ingest(std::move(all));
  pipeline.NotifyStreamEnd();
  const ParallelMatchExecutor executor(&matcher, /*num_threads=*/1, registry);
  uint64_t sink = 0;
  size_t executed = 0;
  while (executed < max_comparisons) {
    const std::vector<Comparison> batch = pipeline.EmitBatch(batch_size);
    if (batch.empty()) break;
    const std::vector<MatchVerdict> verdicts =
        executor.Execute(batch, pipeline.profiles());
    for (const MatchVerdict& v : verdicts) sink += v.is_match ? 1 : 0;
    executed += batch.size();
  }
  return sink + executed;
}

}  // namespace

int main(int argc, char** argv) {
  const double allowed = argc > 1 ? std::atof(argv[1]) : 0.05;
  const bool paper = bench::PaperScale();
  const bool tiny = bench::TinyScale();

  BibliographicOptions data_options;
  data_options.source0_count = paper ? 2600 : tiny ? 400 : 1200;
  data_options.source1_count = paper ? 2300 : tiny ? 350 : 1000;
  const Dataset dataset = GenerateBibliographic(data_options);
  const size_t max_comparisons = paper ? 200000 : tiny ? 20000 : 60000;
  // Small batches maximize the relative weight of the per-batch
  // instrumentation (timers, counters) -- the adversarial setting for
  // this gate.
  const size_t batch_size = 64;
  const JaccardMatcher matcher(0.35);
  const size_t reps = 7;

  obs::MetricsRegistry registry;
  // Warm-up both variants (allocator, caches, token dictionary costs).
  uint64_t sink = RunWorkload(dataset, matcher, nullptr, batch_size,
                              max_comparisons);
  sink += RunWorkload(dataset, matcher, &registry, batch_size,
                      max_comparisons);

  double best_disabled = 1e300;
  double best_enabled = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch sw;
    sink += RunWorkload(dataset, matcher, nullptr, batch_size,
                        max_comparisons);
    best_disabled = std::min(best_disabled, sw.ElapsedSeconds());
    sw.Restart();
    sink += RunWorkload(dataset, matcher, &registry, batch_size,
                        max_comparisons);
    best_enabled = std::min(best_enabled, sw.ElapsedSeconds());
  }

  const double overhead = best_enabled / best_disabled - 1.0;
  std::printf("variant,best_seconds\n");
  std::printf("metrics_disabled,%.6f\n", best_disabled);
  std::printf("metrics_enabled,%.6f\n", best_enabled);
  std::printf("overhead_fraction,%.4f\n", overhead);
  std::fprintf(stderr, "allowed %.2f%%, measured %.2f%% (sink %llu)\n",
               allowed * 100.0, overhead * 100.0,
               static_cast<unsigned long long>(sink));
  if (overhead > allowed) {
    std::fprintf(stderr, "FAIL: metrics overhead above budget\n");
    return 1;
  }
  std::fprintf(stderr, "OK\n");
  return 0;
}
