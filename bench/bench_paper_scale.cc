// Paper-scale replay gate: ingest throughput and peak RSS of the full
// pipeline over a census stream at (up to) the paper's 2M-profile
// scale, with checkpointing, so the memory-layout work (token/text
// arenas, posting-list pool, blocked Bloom filter) is measured where
// it matters and cannot silently regress.
//
// The workload is the constant-memory census stream generator
// (datagen/generators.h, CensusStreamGenerator) replayed in fixed
// increments through PierPipeline: each increment is ingested, then
// one EmitBatch(k) is executed through the Jaccard matcher with every
// verdict fed back (RecordMatch / RecordVerdict), so blocking, the
// prioritizer, the executed-comparison filter, and the cluster index
// all carry real state while memory is sampled.
//
// Reported (CSV progress rows on stdout, summary JSON via --json-out):
//   ingest_profiles_per_s  profiles / sum of Ingest() wall time
//   peak_rss_bytes         getrusage(RUSAGE_SELF).ru_maxrss
//   state_bytes.*          the persist.state_bytes gauges after the
//                          final snapshot (real serialized footprint)
//
// Gates (exit 1 outside; 0 disables): with --baseline=BENCH_scale.json
// and a matching profile count, ingest throughput must stay within
// --gate-throughput-regression (default 0.10) below the baseline and
// peak RSS within --gate-rss-regression (default 0.10) above it.
// Baselines from a different profile count are reported but not gated
// (smoke runs vs. the committed 2M nightly numbers).
//
// Checkpointing: --checkpoint-dir + --checkpoint-every=N increments
// write full pipeline snapshots (plus a bench progress section);
// --resume-from restores the newest checkpoint, fast-forwards the
// deterministic generator past the already-delivered increments, and
// continues -- the final summary line is byte-identical to an
// uninterrupted run, which is what the nightly kill-and-resume checks.
//
// Arguments:
//   --profiles=N     stream length (default by PIER_BENCH_SCALE:
//                    tiny 20000, small 100000, paper 2000000)
//   --increment=N    profiles per increment (default 5000)
//   --batch-k=N      comparisons emitted+executed per increment
//                    (default 256)
//   --seed=N         generator seed (default 424242, the nightly seed)
//   --window=N       generator shuffle window (default 8192)
//   --checkpoint-dir=DIR --checkpoint-every=N --resume-from=DIR
//   --json-out=FILE --baseline=FILE
//   --gate-throughput-regression=F --gate-rss-regression=F

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_harness.h"
#include "core/pier_pipeline.h"
#include "datagen/generators.h"
#include "obs/metrics.h"
#include "persist/checkpoint_manager.h"
#include "persist/snapshot.h"
#include "similarity/matcher.h"
#include "util/serial.h"
#include "util/stopwatch.h"

namespace {

using namespace pier;

size_t PeakRssBytes() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
}

// Minimal numeric-field extraction from the committed baseline JSON
// (flat keys, no nesting conflicts for the keys we read).
std::optional<double> JsonNumber(const std::string& text,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

struct Args {
  size_t profiles = 0;  // 0 -> scale default
  size_t increment = 5000;
  size_t batch_k = 256;
  uint64_t seed = 424242;
  size_t window = 8192;
  std::string checkpoint_dir;
  size_t checkpoint_every = 50;
  std::string resume_from;
  std::string json_out;
  std::string baseline;
  double gate_throughput = 0.10;
  double gate_rss = 0.10;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--profiles=")) {
      args->profiles = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--increment=")) {
      args->increment = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--batch-k=")) {
      args->batch_k = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--seed=")) {
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--window=")) {
      args->window = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--checkpoint-dir=")) {
      args->checkpoint_dir = v;
    } else if (const char* v = value("--checkpoint-every=")) {
      args->checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--resume-from=")) {
      args->resume_from = v;
    } else if (const char* v = value("--json-out=")) {
      args->json_out = v;
    } else if (const char* v = value("--baseline=")) {
      args->baseline = v;
    } else if (const char* v = value("--gate-throughput-regression=")) {
      args->gate_throughput = std::strtod(v, nullptr);
    } else if (const char* v = value("--gate-rss-regression=")) {
      args->gate_rss = std::strtod(v, nullptr);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (args->increment == 0 || args->batch_k == 0) {
    std::fprintf(stderr, "--increment and --batch-k must be positive\n");
    return false;
  }
  return true;
}

PierOptions MakeOptions(obs::MetricsRegistry* metrics) {
  PierOptions options;
  options.kind = DatasetKind::kDirty;
  options.strategy = PierStrategy::kIPes;
  options.blocking.max_block_size = 300;  // bench-scale purging
  options.metrics = metrics;
  return options;
}

// Bench progress riding in each checkpoint, so resume continues the
// replay (not just the pipeline) exactly where it stopped.
constexpr char kProgressSection[] = "bench_scale.progress";

struct Progress {
  uint64_t increments_delivered = 0;
  uint64_t profiles_delivered = 0;
  uint64_t matches = 0;
  double ingest_seconds = 0.0;
  double emit_seconds = 0.0;
};

void WriteProgress(persist::SnapshotBuilder& builder, const Progress& p) {
  std::ostream& out = builder.AddSection(kProgressSection);
  serial::WriteU64(out, p.increments_delivered);
  serial::WriteU64(out, p.profiles_delivered);
  serial::WriteU64(out, p.matches);
  serial::WriteF64(out, p.ingest_seconds);
  serial::WriteF64(out, p.emit_seconds);
}

bool ReadProgress(const persist::SnapshotReader& reader, Progress* p,
                  std::string* error) {
  std::istringstream in;
  if (!reader.Open(kProgressSection, &in, error)) return false;
  if (!serial::ReadU64(in, &p->increments_delivered) ||
      !serial::ReadU64(in, &p->profiles_delivered) ||
      !serial::ReadU64(in, &p->matches) ||
      !serial::ReadF64(in, &p->ingest_seconds) ||
      !serial::ReadF64(in, &p->emit_seconds)) {
    *error = "truncated " + std::string(kProgressSection);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  const bool paper = bench::PaperScale();
  const bool tiny = bench::TinyScale();
  if (args.profiles == 0) {
    args.profiles = paper ? 2000000 : tiny ? 20000 : 100000;
  }

  CensusStreamOptions stream_options;
  stream_options.num_records = args.profiles;
  stream_options.shuffle_window = args.window;
  stream_options.seed = args.seed;
  CensusStreamGenerator generator(stream_options);

  obs::MetricsRegistry metrics;
  PierPipeline pipeline(MakeOptions(&metrics));
  JaccardMatcher matcher(0.35);

  Progress progress;
  if (!args.resume_from.empty()) {
    const auto latest = persist::CheckpointManager::FindLatest(args.resume_from);
    if (!latest) {
      std::fprintf(stderr, "no checkpoint found in %s\n",
                   args.resume_from.c_str());
      return 1;
    }
    std::ifstream in(*latest, std::ios::binary);
    persist::SnapshotReader reader;
    std::string error;
    if (!in || !reader.Parse(in, &error)) {
      std::fprintf(stderr, "cannot parse %s: %s\n", latest->c_str(),
                   error.c_str());
      return 1;
    }
    if (!ReadProgress(reader, &progress, &error) ||
        !pipeline.Restore(reader, &error)) {
      std::fprintf(stderr, "cannot restore %s: %s\n", latest->c_str(),
                   error.c_str());
      return 1;
    }
    // Fast-forward the deterministic stream past the delivered part.
    for (uint64_t i = 0; i < progress.profiles_delivered; ++i) {
      if (!generator.Next()) {
        std::fprintf(stderr, "checkpoint is ahead of the stream\n");
        return 1;
      }
    }
    (void)generator.TakeCompletedTruth();
    std::fprintf(stderr, "resumed from %s at increment %llu\n",
                 latest->c_str(),
                 static_cast<unsigned long long>(progress.increments_delivered));
  }

  persist::CheckpointOptions ckpt_options;
  ckpt_options.dir = args.checkpoint_dir;
  ckpt_options.every = args.checkpoint_every;
  ckpt_options.metrics = &metrics;
  persist::CheckpointManager checkpoints(ckpt_options);

  const auto checkpoint_now = [&]() -> bool {
    persist::SnapshotBuilder builder;
    WriteProgress(builder, progress);
    pipeline.Snapshot(builder);
    std::string error;
    if (checkpoints.Write(progress.increments_delivered, builder, &error)
            .empty()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", error.c_str());
      return false;
    }
    return true;
  };

  std::printf("increment,profiles,ingest_s,emit_s,rss_bytes\n");
  const size_t progress_stride =
      std::max<size_t>(1, args.profiles / args.increment / 32);

  std::vector<EntityProfile> batch;
  batch.reserve(args.increment);
  bool stream_done = false;
  while (!stream_done) {
    batch.clear();
    while (batch.size() < args.increment) {
      auto profile = generator.Next();
      if (!profile) {
        stream_done = true;
        break;
      }
      batch.push_back(std::move(*profile));
    }
    (void)generator.TakeCompletedTruth();
    if (batch.empty()) break;

    const size_t delivered = batch.size();
    Stopwatch ingest_sw;
    pipeline.Ingest(std::move(batch));
    progress.ingest_seconds += ingest_sw.ElapsedSeconds();
    progress.profiles_delivered += delivered;
    ++progress.increments_delivered;

    Stopwatch emit_sw;
    for (const Comparison& c : pipeline.EmitBatch(args.batch_k)) {
      const bool is_match = matcher.Matches(pipeline.profiles().Get(c.x),
                                            pipeline.profiles().Get(c.y));
      if (is_match) {
        pipeline.RecordMatch(c.x, c.y);
        ++progress.matches;
      }
      pipeline.RecordVerdict(c.x, c.y, is_match);
    }
    progress.emit_seconds += emit_sw.ElapsedSeconds();

    if (checkpoints.enabled() &&
        checkpoints.Due(progress.increments_delivered)) {
      if (!checkpoint_now()) return 1;
    }
    if (progress.increments_delivered % progress_stride == 0) {
      std::printf("%llu,%llu,%.3f,%.3f,%zu\n",
                  static_cast<unsigned long long>(
                      progress.increments_delivered),
                  static_cast<unsigned long long>(
                      progress.profiles_delivered),
                  progress.ingest_seconds, progress.emit_seconds,
                  PeakRssBytes());
    }
  }

  // Peak RSS is sampled at end-of-replay, before the final snapshot:
  // the snapshot builder's in-memory sections would otherwise dominate
  // the high-water mark and mask what the pipeline layout itself
  // costs. (Mid-run checkpoints, when enabled, still count.)
  const size_t peak_rss = PeakRssBytes();

  // Final checkpoint (kill-and-resume: the last increment is always
  // durable) and state-bytes refresh via a full snapshot.
  persist::SnapshotBuilder final_snapshot;
  WriteProgress(final_snapshot, progress);
  pipeline.Snapshot(final_snapshot);
  if (checkpoints.enabled()) {
    std::string error;
    if (checkpoints.Write(progress.increments_delivered + 1, final_snapshot,
                          &error)
            .empty()) {
      std::fprintf(stderr, "final checkpoint failed: %s\n", error.c_str());
      return 1;
    }
  }

  const double throughput =
      progress.ingest_seconds > 0.0
          ? static_cast<double>(progress.profiles_delivered) /
                progress.ingest_seconds
          : 0.0;
  const auto gauge = [&](const char* name) -> double {
    return metrics.GetGauge(name)->Value();
  };

  // Deterministic replay summary: identical for resumed and
  // uninterrupted runs (the nightly kill-and-resume diffs this line).
  std::printf("final,profiles,%llu,emitted,%llu,matches,%llu\n",
              static_cast<unsigned long long>(progress.profiles_delivered),
              static_cast<unsigned long long>(pipeline.comparisons_emitted()),
              static_cast<unsigned long long>(progress.matches));

  if (!args.json_out.empty()) {
    std::ofstream out(args.json_out);
    out << "{\n"
        << "  \"bench\": \"bench_paper_scale\",\n"
        << "  \"scale\": \"" << (paper ? "paper" : tiny ? "tiny" : "small")
        << "\",\n"
        << "  \"profiles\": " << progress.profiles_delivered << ",\n"
        << "  \"increment\": " << args.increment << ",\n"
        << "  \"batch_k\": " << args.batch_k << ",\n"
        << "  \"seed\": " << args.seed << ",\n"
        << "  \"ingest_seconds\": " << progress.ingest_seconds << ",\n"
        << "  \"ingest_profiles_per_s\": " << throughput << ",\n"
        << "  \"emit_seconds\": " << progress.emit_seconds << ",\n"
        << "  \"comparisons_emitted\": " << pipeline.comparisons_emitted()
        << ",\n"
        << "  \"matches\": " << progress.matches << ",\n"
        << "  \"peak_rss_bytes\": " << peak_rss << ",\n"
        << "  \"state_bytes_profiles\": "
        << static_cast<uint64_t>(gauge("persist.state_bytes.profiles"))
        << ",\n"
        << "  \"state_bytes_blocks\": "
        << static_cast<uint64_t>(gauge("persist.state_bytes.blocks")) << ",\n"
        << "  \"state_bytes_dictionary\": "
        << static_cast<uint64_t>(gauge("persist.state_bytes.dictionary"))
        << ",\n"
        << "  \"state_bytes_filter\": "
        << static_cast<uint64_t>(gauge("persist.state_bytes.filter")) << ",\n"
        << "  \"state_bytes_clusters\": "
        << static_cast<uint64_t>(gauge("persist.state_bytes.clusters"))
        << ",\n"
        << "  \"snapshot_payload_bytes\": " << final_snapshot.payload_bytes()
        << "\n"
        << "}\n";
  }

  std::fprintf(stderr,
               "scale: %llu profiles, ingest %.1f profiles/s (%.1fs), "
               "emit+match %.1fs, peak RSS %.1f MB\n",
               static_cast<unsigned long long>(progress.profiles_delivered),
               throughput, progress.ingest_seconds, progress.emit_seconds,
               static_cast<double>(peak_rss) / (1024.0 * 1024.0));

  // Baseline regression gates.
  if (!args.baseline.empty()) {
    std::ifstream in(args.baseline);
    std::ostringstream text;
    text << in.rdbuf();
    const std::string baseline = text.str();
    const auto base_profiles = JsonNumber(baseline, "profiles");
    const auto base_throughput = JsonNumber(baseline, "ingest_profiles_per_s");
    const auto base_rss = JsonNumber(baseline, "peak_rss_bytes");
    if (!in.good() && baseline.empty()) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n",
                   args.baseline.c_str());
      return 1;
    }
    if (!base_profiles || !base_throughput || !base_rss) {
      std::fprintf(stderr, "FAIL: baseline %s is missing required keys\n",
                   args.baseline.c_str());
      return 1;
    }
    if (static_cast<uint64_t>(*base_profiles) !=
        progress.profiles_delivered) {
      std::fprintf(stderr,
                   "gate: baseline is for %.0f profiles, ran %llu -- "
                   "reporting only, no gate\n",
                   *base_profiles,
                   static_cast<unsigned long long>(
                       progress.profiles_delivered));
      return 0;
    }
    bool failed = false;
    std::fprintf(stderr,
                 "gate: throughput %.1f vs baseline %.1f (-%.0f%% allowed), "
                 "rss %.1f MB vs baseline %.1f MB (+%.0f%% allowed)\n",
                 throughput, *base_throughput, args.gate_throughput * 100.0,
                 static_cast<double>(peak_rss) / (1024.0 * 1024.0),
                 *base_rss / (1024.0 * 1024.0), args.gate_rss * 100.0);
    if (args.gate_throughput > 0.0 &&
        throughput < *base_throughput * (1.0 - args.gate_throughput)) {
      std::fprintf(stderr, "FAIL: ingest throughput regressed beyond gate\n");
      failed = true;
    }
    if (args.gate_rss > 0.0 &&
        static_cast<double>(peak_rss) > *base_rss * (1.0 + args.gate_rss)) {
      std::fprintf(stderr, "FAIL: peak RSS regressed beyond gate\n");
      failed = true;
    }
    if (failed) return 1;
    std::fprintf(stderr, "OK\n");
  }
  return 0;
}
