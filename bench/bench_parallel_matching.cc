// Parallel match-execution throughput: runs the ED matcher (the
// paper's expensive configuration, quadratic in profile-text length)
// over a fixed set of prioritized comparisons from the dbpedia-like
// generator (long, ragged profiles — the workload where matcher cost
// dominates end-to-end runtime), sharded across 1..N executor threads.
//
// Prints CSV: threads,comparisons,reps,seconds,comparisons_per_sec,
// speedup_vs_1.
//
// Environment / arguments:
//   PIER_BENCH_SCALE=tiny|paper smaller / larger dataset + comparisons
//   argv[1] (optional)          cap on the number of comparisons, for
//                               CI smoke runs (e.g. 2000)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_harness.h"
#include "core/pier_pipeline.h"
#include "similarity/parallel_executor.h"
#include "util/stopwatch.h"

namespace {

using namespace pier;

// Collects up to `target` prioritized comparisons by running the
// I-PES pipeline over the dataset (ingest everything, then drain).
std::vector<Comparison> CollectComparisons(const Dataset& dataset,
                                           PierPipeline& pipeline,
                                           size_t target) {
  std::vector<EntityProfile> all = dataset.profiles;
  pipeline.Ingest(std::move(all));
  pipeline.NotifyStreamEnd();
  std::vector<Comparison> comparisons;
  while (comparisons.size() < target) {
    const std::vector<Comparison> batch = pipeline.EmitBatch(4096);
    if (batch.empty()) break;
    comparisons.insert(comparisons.end(), batch.begin(), batch.end());
  }
  if (comparisons.size() > target) comparisons.resize(target);
  return comparisons;
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = bench::PaperScale();
  const bool tiny = bench::TinyScale();

  DbpediaOptions data_options;
  data_options.source0_count = paper ? 8000 : tiny ? 700 : 2000;
  data_options.source1_count = paper ? 10000 : tiny ? 900 : 2600;
  const Dataset dataset = GenerateDbpedia(data_options);

  size_t max_comparisons = paper ? 200000 : tiny ? 4000 : 40000;
  if (argc > 1) max_comparisons = std::stoul(argv[1]);

  PierOptions options;
  options.kind = dataset.kind;
  options.strategy = PierStrategy::kIPes;
  PierPipeline pipeline(options);
  const std::vector<Comparison> comparisons =
      CollectComparisons(dataset, pipeline, max_comparisons);
  std::fprintf(stderr, "dataset %s: %zu profiles, %zu comparisons\n",
               dataset.name.c_str(), dataset.profiles.size(),
               comparisons.size());

  const auto matcher = bench::MakeBenchMatcher("ED");

  // Repetitions sized so the 1-thread pass takes a measurable time.
  const size_t reps = comparisons.size() >= 20000 ? 3 : 10;

  std::printf(
      "threads,comparisons,reps,seconds,comparisons_per_sec,speedup_vs_1\n");
  double base_cps = 0.0;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const ParallelMatchExecutor executor(matcher.get(), threads);
    // Warm-up pass (first-touch of the pool, caches).
    uint64_t sink = executor.Execute(comparisons, pipeline.profiles()).size();
    Stopwatch sw;
    for (size_t r = 0; r < reps; ++r) {
      sink += executor.Execute(comparisons, pipeline.profiles()).size();
    }
    const double seconds = sw.ElapsedSeconds();
    const double cps =
        static_cast<double>(comparisons.size() * reps) / seconds;
    if (threads == 1) base_cps = cps;
    std::printf("%zu,%zu,%zu,%.4f,%.0f,%.2f\n", threads, comparisons.size(),
                reps, seconds, cps, base_cps > 0 ? cps / base_cps : 0.0);
    if (sink == 0) std::fprintf(stderr, "unexpected empty results\n");
  }
  return 0;
}
