// Sharded ingest throughput gate: streams the heterogeneous (dbpedia)
// dataset through ShardedPipeline at 1/2/4 shards and measures
// end-to-end ingest throughput (profiles/s over ingest ->
// NotifyStreamEnd -> Drain). Sharding partitions the blocking-key
// space, so each shard's prioritizer/blocking mutex serializes only
// its own slice -- throughput should scale with shard count until the
// box runs out of cores.
//
// The gate: best-of-reps throughput at 4 shards must be at least
// --gate-speedup x the 1-shard best. The gate is opt-in (default 0 =
// report only) because the ratio is meaningless on single-core
// machines; the CI bench-smoke job runs with --gate-speedup=1.7 on its
// multi-core runner. Exit status: 0 within the gate, 1 below it.
// BENCH_sharding.json in the repo root is the committed baseline; see
// README for the refresh procedure.
//
// Arguments:
//   --gate-speedup=F    minimum 4-shard/1-shard ratio (default 0 = off)
//   --json-out=FILE     write the machine-readable baseline JSON
//   PIER_BENCH_SCALE    tiny|small|paper workload size

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_harness.h"
#include "stream/sharded_pipeline.h"
#include "util/stopwatch.h"

namespace {

using namespace pier;

struct RepResult {
  double seconds = 0.0;
  double profiles_per_s = 0.0;
  uint64_t comparisons = 0;
  uint64_t matches = 0;
};

RepResult RunRep(const Dataset& dataset, const Matcher& matcher,
                 size_t shard_count, size_t num_increments) {
  ShardedOptions options;
  options.pipeline.kind = dataset.kind;
  options.pipeline.strategy = PierStrategy::kIPes;
  options.pipeline.execution_threads = 1;  // scaling comes from shards
  options.shard_count = shard_count;
  ShardedPipeline sharded(options, &matcher, [](ProfileId, ProfileId) {});

  const auto increments = SplitIntoIncrements(dataset, num_increments);
  Stopwatch sw;
  for (const auto& inc : increments) {
    std::vector<EntityProfile> batch(
        dataset.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        dataset.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    sharded.Ingest(std::move(batch));
  }
  sharded.NotifyStreamEnd();
  sharded.Drain();

  RepResult rep;
  rep.seconds = sw.ElapsedSeconds();
  rep.profiles_per_s =
      rep.seconds > 0.0
          ? static_cast<double>(dataset.profiles.size()) / rep.seconds
          : 0.0;
  rep.comparisons = sharded.comparisons_processed();
  rep.matches = sharded.matches_found();
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  double gate_speedup = 0.0;  // off by default: meaningless on 1 core
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--gate-speedup=", 15) == 0) {
      gate_speedup = std::strtod(argv[i] + 15, nullptr);
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  const bool paper = bench::PaperScale();
  const bool tiny = bench::TinyScale();
  const Dataset dataset = bench::MakeDbpedia();
  const size_t num_increments = 20;
  const JaccardMatcher matcher(0.35);
  const std::vector<size_t> shard_counts = {1, 2, 4};
  const size_t reps = 3;

  std::fprintf(stderr, "hardware threads: %u\n",
               std::thread::hardware_concurrency());

  std::vector<double> best(shard_counts.size(), 0.0);
  std::printf("shards,rep,profiles,seconds,profiles_per_s,comparisons,"
              "matches\n");
  for (size_t s = 0; s < shard_counts.size(); ++s) {
    // Warm-up rep (allocator, page cache); then reported reps.
    RunRep(dataset, matcher, shard_counts[s], num_increments);
    for (size_t r = 0; r < reps; ++r) {
      const RepResult rep =
          RunRep(dataset, matcher, shard_counts[s], num_increments);
      if (rep.profiles_per_s > best[s]) best[s] = rep.profiles_per_s;
      std::printf("%zu,%zu,%zu,%.4f,%.1f,%llu,%llu\n", shard_counts[s], r,
                  dataset.profiles.size(), rep.seconds, rep.profiles_per_s,
                  static_cast<unsigned long long>(rep.comparisons),
                  static_cast<unsigned long long>(rep.matches));
    }
  }

  const double speedup_4v1 = best[0] > 0.0 ? best[2] / best[0] : 0.0;

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n"
        << "  \"bench\": \"bench_sharded_ingest\",\n"
        << "  \"scale\": \"" << (paper ? "paper" : tiny ? "tiny" : "small")
        << "\",\n"
        << "  \"profiles\": " << dataset.profiles.size() << ",\n"
        << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"gate_speedup\": " << gate_speedup << ",\n"
        << "  \"best_profiles_per_s\": {\n"
        << "    \"shards_1\": " << best[0] << ",\n"
        << "    \"shards_2\": " << best[1] << ",\n"
        << "    \"shards_4\": " << best[2] << "\n"
        << "  },\n"
        << "  \"speedup_4v1\": " << speedup_4v1 << "\n"
        << "}\n";
  }

  std::fprintf(stderr,
               "gate: 4-shard ingest throughput %.1f profiles/s vs 1-shard "
               "%.1f (speedup %.2fx, gate %.2fx)\n",
               best[2], best[0], speedup_4v1, gate_speedup);
  if (gate_speedup > 0.0 && speedup_4v1 < gate_speedup) {
    std::fprintf(stderr, "FAIL: sharded ingest speedup below gate\n");
    return 1;
  }
  std::fprintf(stderr, "OK\n");
  return 0;
}
