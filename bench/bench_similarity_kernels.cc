// Threshold-aware similarity kernel benchmarks (google-benchmark):
// the verdict fast path (Myers bit-parallel bounded edit distance,
// size-filtered set intersection) against the retained naive
// references, over the same fixed pair lists so both variants measure
// an identical comparison multiset. Emits comparisons/sec as a rate
// counter; CI's bench-smoke job runs this with --benchmark_format=csv
// and refreshes the machine-readable baseline in BENCH_similarity.json
// (see README, "bench/ README").
//
// Gate mode: --gate-ed=<x> / --gate-js=<x> additionally run an
// interleaved min-of-reps measurement (the bench_obs_overhead pattern,
// which suppresses thermal / scheduler noise) and exit nonzero when
// the kernel speedup over the reference drops below the given factor.
//
//   PIER_BENCH_SCALE    tiny|small|paper workload size

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_harness.h"
#include "similarity/matcher.h"
#include "similarity/similarity_kernels.h"
#include "text/tokenizer.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace pier;

// Fixed, seeded pair lists over tokenized datasets: dbpedia-like long
// ragged texts for the expensive ED matcher, movies-like token sets
// for JS/COS. Random pairs are dominated by non-matches -- exactly the
// distribution the verdict path's filters are designed for -- plus an
// aligned slice so near-duplicates keep the full kernels honest.
struct KernelWorkload {
  std::vector<EntityProfile> ed_profiles;
  std::vector<EntityProfile> set_profiles;
  std::vector<std::pair<uint32_t, uint32_t>> ed_pairs;
  std::vector<std::pair<uint32_t, uint32_t>> set_pairs;

  KernelWorkload() {
    const bool tiny = bench::TinyScale();
    const bool paper = bench::PaperScale();

    DbpediaOptions ed_options;
    ed_options.source0_count = paper ? 2000 : tiny ? 300 : 900;
    ed_options.source1_count = paper ? 2400 : tiny ? 400 : 1100;
    ed_profiles = Tokenize(GenerateDbpedia(ed_options));

    MoviesOptions set_options;
    set_options.source0_count = paper ? 4000 : tiny ? 500 : 1200;
    set_options.source1_count = paper ? 3400 : tiny ? 400 : 1000;
    set_profiles = Tokenize(GenerateMovies(set_options));

    Rng rng(404);
    ed_pairs = MakePairs(rng, ed_profiles.size(),
                         paper ? 4096 : tiny ? 512 : 1536);
    set_pairs = MakePairs(rng, set_profiles.size(),
                          paper ? 16384 : tiny ? 2048 : 6144);
  }

  static std::vector<EntityProfile> Tokenize(Dataset dataset) {
    Tokenizer tokenizer;
    TokenDictionary dictionary;
    for (auto& p : dataset.profiles) tokenizer.TokenizeProfile(p, dictionary);
    return std::move(dataset.profiles);
  }

  static std::vector<std::pair<uint32_t, uint32_t>> MakePairs(Rng& rng,
                                                              size_t count,
                                                              size_t pairs) {
    std::vector<std::pair<uint32_t, uint32_t>> out;
    out.reserve(pairs);
    for (size_t i = 0; i < pairs; ++i) {
      if (i % 8 == 7) {
        // Aligned clean-clean slice: likely near-duplicates, the slow
        // path for bounded kernels (no early abandon, full distance).
        const uint32_t x = static_cast<uint32_t>(rng.UniformInt(0, count / 2));
        out.emplace_back(x, std::min<uint32_t>(
                                static_cast<uint32_t>(count - 1),
                                x + static_cast<uint32_t>(count / 2)));
      } else {
        out.emplace_back(static_cast<uint32_t>(rng.UniformInt(0, count - 1)),
                         static_cast<uint32_t>(rng.UniformInt(0, count - 1)));
      }
    }
    return out;
  }
};

KernelWorkload& SharedWorkload() {
  static KernelWorkload& w = *new KernelWorkload();
  return w;
}

constexpr double kEdThreshold = 0.75;
constexpr size_t kEdMaxTextLength = 256;
constexpr double kJsThreshold = 0.5;
constexpr double kCosThreshold = 0.6;

// One full pass over the pair list; returns the number of matches (a
// sink so nothing is optimized away). `kernel` selects
// Matcher::Verdict with a reused scratch vs the naive Matches().
template <typename Pairs>
uint64_t RunPairs(const Matcher& matcher,
                  const std::vector<EntityProfile>& profiles,
                  const Pairs& pairs, bool kernel,
                  SimilarityScratch* scratch) {
  uint64_t matches = 0;
  for (const auto& [x, y] : pairs) {
    const EntityProfile& a = profiles[x];
    const EntityProfile& b = profiles[y];
    const bool is_match =
        kernel ? matcher.Verdict(a, b, scratch) : matcher.Matches(a, b);
    matches += is_match ? 1 : 0;
  }
  return matches;
}

void BM_SimilarityKernels_Ed(benchmark::State& state) {
  const KernelWorkload& w = SharedWorkload();
  const EditDistanceMatcher matcher(kEdThreshold, kEdMaxTextLength);
  const bool kernel = state.range(0) == 1;
  SimilarityScratch scratch;
  uint64_t comparisons = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunPairs(matcher, w.ed_profiles, w.ed_pairs, kernel, &scratch));
    comparisons += w.ed_pairs.size();
  }
  state.counters["cmp_per_s"] = benchmark::Counter(
      static_cast<double>(comparisons), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimilarityKernels_Ed)
    ->Name("BM_SimilarityKernels/ed")
    ->ArgNames({"kernel"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_SimilarityKernels_Js(benchmark::State& state) {
  const KernelWorkload& w = SharedWorkload();
  const JaccardMatcher matcher(kJsThreshold);
  const bool kernel = state.range(0) == 1;
  SimilarityScratch scratch;
  uint64_t comparisons = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunPairs(matcher, w.set_profiles, w.set_pairs, kernel, &scratch));
    comparisons += w.set_pairs.size();
  }
  state.counters["cmp_per_s"] = benchmark::Counter(
      static_cast<double>(comparisons), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimilarityKernels_Js)
    ->Name("BM_SimilarityKernels/js")
    ->ArgNames({"kernel"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_SimilarityKernels_Cos(benchmark::State& state) {
  const KernelWorkload& w = SharedWorkload();
  const CosineMatcher matcher(kCosThreshold);
  const bool kernel = state.range(0) == 1;
  SimilarityScratch scratch;
  uint64_t comparisons = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunPairs(matcher, w.set_profiles, w.set_pairs, kernel, &scratch));
    comparisons += w.set_pairs.size();
  }
  state.counters["cmp_per_s"] = benchmark::Counter(
      static_cast<double>(comparisons), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimilarityKernels_Cos)
    ->Name("BM_SimilarityKernels/cos")
    ->ArgNames({"kernel"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Interleaved min-of-reps speedup gate: reference and kernel reps
// alternate so the minimum per variant sees the same machine state.
// Exit status 1 when a measured speedup falls below its gate.
int RunGate(double gate_ed, double gate_js) {
  const KernelWorkload& w = SharedWorkload();
  const EditDistanceMatcher ed(kEdThreshold, kEdMaxTextLength);
  const JaccardMatcher js(kJsThreshold);
  SimilarityScratch scratch;
  const size_t reps = 7;

  // Warm-up (allocator, caches, scratch growth).
  uint64_t sink = RunPairs(ed, w.ed_profiles, w.ed_pairs, false, &scratch);
  sink += RunPairs(ed, w.ed_profiles, w.ed_pairs, true, &scratch);
  sink += RunPairs(js, w.set_profiles, w.set_pairs, false, &scratch);
  sink += RunPairs(js, w.set_profiles, w.set_pairs, true, &scratch);

  double best_ed_ref = 1e300;
  double best_ed_kernel = 1e300;
  double best_js_ref = 1e300;
  double best_js_kernel = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch sw;
    sink += RunPairs(ed, w.ed_profiles, w.ed_pairs, false, &scratch);
    best_ed_ref = std::min(best_ed_ref, sw.ElapsedSeconds());
    sw.Restart();
    sink += RunPairs(ed, w.ed_profiles, w.ed_pairs, true, &scratch);
    best_ed_kernel = std::min(best_ed_kernel, sw.ElapsedSeconds());
    sw.Restart();
    sink += RunPairs(js, w.set_profiles, w.set_pairs, false, &scratch);
    best_js_ref = std::min(best_js_ref, sw.ElapsedSeconds());
    sw.Restart();
    sink += RunPairs(js, w.set_profiles, w.set_pairs, true, &scratch);
    best_js_kernel = std::min(best_js_kernel, sw.ElapsedSeconds());
  }

  const double ed_speedup = best_ed_ref / best_ed_kernel;
  const double js_speedup = best_js_ref / best_js_kernel;
  std::printf("matcher,variant,best_seconds,speedup\n");
  std::printf("ed,reference,%.6f,\n", best_ed_ref);
  std::printf("ed,kernel,%.6f,%.3f\n", best_ed_kernel, ed_speedup);
  std::printf("js,reference,%.6f,\n", best_js_ref);
  std::printf("js,kernel,%.6f,%.3f\n", best_js_kernel, js_speedup);
  std::fprintf(stderr,
               "gates: ed >= %.2fx (measured %.2fx), js >= %.2fx "
               "(measured %.2fx), sink %llu\n",
               gate_ed, ed_speedup, gate_js, js_speedup,
               static_cast<unsigned long long>(sink));
  bool failed = false;
  if (ed_speedup < gate_ed) {
    std::fprintf(stderr, "FAIL: ED verdict speedup below gate\n");
    failed = true;
  }
  if (js_speedup < gate_js) {
    std::fprintf(stderr, "FAIL: JS verdict speedup below gate\n");
    failed = true;
  }
  if (!failed) std::fprintf(stderr, "OK\n");
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the gate flags before google-benchmark sees (and rejects)
  // them.
  double gate_ed = 0.0;
  double gate_js = 0.0;
  bool gate = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--gate-ed=", 10) == 0) {
      gate_ed = std::atof(argv[i] + 10);
      gate = true;
    } else if (std::strncmp(argv[i], "--gate-js=", 10) == 0) {
      gate_js = std::atof(argv[i] + 10);
      gate = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return gate ? RunGate(gate_ed, gate_js) : 0;
}
