// Table 1 reproduction: dataset characteristics (#profiles per source,
// #matches) of the four generated evaluation datasets, plus blocking
// statistics that contextualize the substitution (see DESIGN.md).

#include <cstdio>

#include "bench/bench_harness.h"
#include "blocking/block_collection.h"
#include "model/token_dictionary.h"
#include "text/tokenizer.h"

namespace {

void Describe(const pier::Dataset& d, const char* paper_row) {
  pier::Tokenizer tokenizer;
  pier::TokenDictionary dict;
  pier::BlockCollection blocks(d.kind);
  size_t total_tokens = 0;
  for (auto profile : d.profiles) {  // copy: keep dataset pristine
    tokenizer.TokenizeProfile(profile, dict);
    total_tokens += profile.tokens().size();
    blocks.AddProfile(profile);
  }
  std::printf("%-14s %-12s %9zu %9zu %9zu %10zu %12llu  (paper: %s)\n",
              d.name.c_str(), pier::ToString(d.kind), d.NumProfiles(0),
              d.NumProfiles(1), d.truth.size(), blocks.NumBlocks(),
              static_cast<unsigned long long>(blocks.TotalComparisons()),
              paper_row);
}

}  // namespace

int main() {
  std::printf("Table 1: dataset characteristics (generated stand-ins)\n");
  std::printf("%-14s %-12s %9s %9s %9s %10s %12s\n", "name", "kind",
              "|src0|", "|src1|", "matches", "blocks", "blk-cmps");
  Describe(pier::bench::MakeDa(), "dblp-acm 2.62k-2.29k, 2.22k matches");
  Describe(pier::bench::MakeMovies(), "movies 27.6k-23.1k, 22.8k matches");
  Describe(pier::bench::MakeCensus(), "2M synthetic, 1.7M matches");
  Describe(pier::bench::MakeDbpedia(), "dbpedia 1.19M-2.16M, 892k matches");
  std::printf("\nset PIER_BENCH_SCALE=paper for larger datasets\n");
  return 0;
}
