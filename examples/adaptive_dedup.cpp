// End-to-end "production" walkthrough combining the library's
// extension features:
//   1. load a dataset from CSV (datagen/dataset_io, here produced by
//      the census generator and round-tripped through CSV),
//   2. let the strategy selector (the paper's future-work heuristic)
//      pick the prioritizer from a sample of the data,
//   3. stream the records through the multi-threaded RealtimePipeline,
//   4. consolidate discovered matches into resolved entities with the
//      union-find EntityClusters.

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/strategy_selector.h"
#include "datagen/dataset_io.h"
#include "datagen/generators.h"
#include "eval/entity_clusters.h"
#include "similarity/matcher.h"
#include "stream/realtime_pipeline.h"
#include "text/tokenizer.h"

int main() {
  // --- 1. Data: generate, export to CSV, load back (showing the IO
  // path a real deployment would use for its own files).
  pier::CensusOptions data_options;
  data_options.num_records = 3000;
  data_options.seed = 5;
  const pier::Dataset generated = pier::GenerateCensus(data_options);
  std::stringstream profiles_csv;
  std::stringstream truth_csv;
  pier::WriteProfilesCsv(generated, profiles_csv);
  pier::WriteGroundTruthCsv(generated, truth_csv);
  const auto dataset = pier::ReadDatasetCsv(profiles_csv, &truth_csv,
                                            "census-from-csv",
                                            pier::DatasetKind::kDirty);
  if (!dataset) {
    std::fprintf(stderr, "failed to load dataset CSV\n");
    return 1;
  }
  std::printf("loaded %zu records from CSV (%zu true duplicate pairs)\n",
              dataset->profiles.size(), dataset->truth.size());

  // --- 2. Strategy selection from a sample of the data.
  {
    pier::Tokenizer tokenizer;
    pier::TokenDictionary dict;
    pier::ProfileStore sample_store;
    pier::BlockCollection sample_blocks(dataset->kind);
    const size_t sample = std::min<size_t>(500, dataset->profiles.size());
    for (size_t i = 0; i < sample; ++i) {
      pier::EntityProfile p = dataset->profiles[i];
      tokenizer.TokenizeProfile(p, dict);
      sample_blocks.AddProfile(p);
      sample_store.Add(std::move(p));
    }
    const auto rec = pier::RecommendStrategy(sample_blocks, sample_store);
    std::printf("strategy selector: %s (%s)\n", ToString(rec.strategy),
                rec.rationale.c_str());
  }

  // --- 3. Real-time pipeline with entity consolidation.
  pier::PierOptions options;
  options.kind = dataset->kind;
  options.strategy = pier::PierStrategy::kIPbs;  // per the selector
  // Shard match execution across the machine's cores; verdict order
  // (and thus the callback stream per batch) stays deterministic.
  options.execution_threads =
      std::max(1u, std::thread::hardware_concurrency());
  const pier::JaccardMatcher matcher(0.45);

  pier::EntityClusters clusters;
  std::mutex clusters_mutex;
  pier::RealtimePipeline pipeline(
      options, &matcher, [&](pier::ProfileId a, pier::ProfileId b) {
        std::lock_guard<std::mutex> lock(clusters_mutex);
        clusters.AddMatch(a, b);
      });

  const auto increments = pier::SplitIntoIncrements(*dataset, 30);
  for (const auto& inc : increments) {
    std::vector<pier::EntityProfile> batch(
        dataset->profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        dataset->profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    pipeline.Ingest(std::move(batch));
  }
  pipeline.Drain();

  // --- 4. Report resolved entities.
  std::lock_guard<std::mutex> lock(clusters_mutex);
  const auto resolved = clusters.Clusters(2);
  std::printf("pipeline: %llu comparisons, %llu matched pairs\n",
              static_cast<unsigned long long>(
                  pipeline.comparisons_processed()),
              static_cast<unsigned long long>(pipeline.matches_found()));
  std::printf("resolved %zu multi-record entities; largest cluster has "
              "%zu records\n",
              resolved.size(),
              resolved.empty() ? 0
                               : std::max_element(
                                     resolved.begin(), resolved.end(),
                                     [](const auto& a, const auto& b) {
                                       return a.size() < b.size();
                                     })
                                     ->size());
  return 0;
}
