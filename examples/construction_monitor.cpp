// Adaptive building & construction scenario (paper Section 1, the
// ArchIBALD use case [23]): architectural-design components (IFC-like
// records, available upfront) must be matched against products
// observed on the construction site (AutomationML-ish monitoring
// records streaming in from sensors and cameras). A match found early
// lets pre-fabrication react to on-site deviations in time.
//
// This example builds the two heterogeneous sources by hand -- design
// records use IFC-style attributes, monitoring records use completely
// different attribute names -- and drives Clean-Clean PIER over the
// live monitoring stream.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/pier_pipeline.h"
#include "similarity/matcher.h"
#include "util/rng.h"

namespace {

struct Component {
  std::string kind;      // e.g. "wall panel"
  std::string material;  // e.g. "timber frame"
  std::string zone;      // e.g. "level2 axis b3"
};

std::vector<Component> MakeCatalog(pier::Rng& rng, size_t n) {
  static const char* const kKinds[] = {"wall panel", "floor slab",
                                       "roof truss", "facade module",
                                       "stair flight", "column segment"};
  static const char* const kMaterials[] = {"timber frame", "precast concrete",
                                           "steel hybrid", "clt massive"};
  std::vector<Component> catalog;
  for (size_t i = 0; i < n; ++i) {
    Component c;
    c.kind = kKinds[rng.UniformInt(0, 5)];
    c.material = kMaterials[rng.UniformInt(0, 3)];
    c.zone = "level" + std::to_string(rng.UniformInt(1, 4)) + " axis " +
             std::string(1, static_cast<char>('a' + rng.UniformInt(0, 5))) +
             std::to_string(rng.UniformInt(1, 9)) + " part" +
             std::to_string(i);
    catalog.push_back(c);
  }
  return catalog;
}

}  // namespace

int main() {
  pier::Rng rng(7);
  const auto catalog = MakeCatalog(rng, 120);

  pier::PierOptions options;
  options.kind = pier::DatasetKind::kCleanClean;
  options.strategy = pier::PierStrategy::kIPes;
  pier::PierPipeline pipeline(options);
  const pier::JaccardMatcher matcher(0.45);

  // Source 0: the full architectural design, available upfront
  // (IFC-style attribute names).
  std::vector<pier::EntityProfile> design;
  pier::ProfileId next_id = 0;
  for (const auto& c : catalog) {
    design.emplace_back(
        next_id++, 0,
        std::vector<pier::Attribute>{{"ifc_type", c.kind},
                                     {"ifc_material", c.material},
                                     {"ifc_placement", c.zone}});
  }
  pipeline.Ingest(std::move(design));

  // Source 1: monitoring observations dribble in as construction
  // progresses; attribute names come from a different world entirely
  // and values carry sensing noise (here: occasional missing field).
  std::set<pier::ProfileId> linked_parts;
  size_t matches_found = 0;
  size_t observations = 0;
  for (size_t i = 0; i < catalog.size(); i += 10) {
    std::vector<pier::EntityProfile> increment;
    for (size_t j = i; j < std::min(i + 10, catalog.size()); ++j) {
      std::vector<pier::Attribute> attrs = {
          {"detected_object", catalog[j].kind},
          {"site_location", catalog[j].zone}};
      if (rng.Bernoulli(0.7)) {
        attrs.push_back({"surface_estimate", catalog[j].material});
      }
      increment.emplace_back(next_id++, 1, std::move(attrs));
      ++observations;
    }
    pipeline.Ingest(std::move(increment));

    // Spare time until the next sensor batch: match the best pairs.
    for (const auto& c : pipeline.EmitBatch(/*k=*/200)) {
      const auto& a = pipeline.profiles().Get(c.x);
      const auto& b = pipeline.profiles().Get(c.y);
      if (matcher.Matches(a, b)) {
        ++matches_found;
        linked_parts.insert(std::min(c.x, c.y));  // design ids come first
        if (matches_found <= 5) {
          std::printf("linked design part #%u to site observation #%u "
                      "(%s)\n",
                      std::min(c.x, c.y), std::max(c.x, c.y),
                      a.CopyAttributes()[0].value.c_str());
        }
      }
    }
  }

  std::printf("...\n%zu site observations processed, %zu matched pairs, "
              "%zu/%zu design parts linked to the site\n",
              observations, matches_found, linked_parts.size(),
              catalog.size());
  return linked_parts.size() > catalog.size() / 2 ? 0 : 1;
}
