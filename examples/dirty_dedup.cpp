// Dirty-ER deduplication walkthrough: a single messy source (census
// records with injected errors) is resolved three ways -- batch ER,
// the progressive PBS baseline, and PIER's I-PES -- and the example
// prints the match-discovery trajectory of each, reproducing the
// qualitative picture of the paper's Figure 1 on your own machine.

#include <cstdio>
#include <iostream>

#include "baseline/batch_er.h"
#include "baseline/pbs.h"
#include "datagen/generators.h"
#include "eval/report.h"
#include "similarity/matcher.h"
#include "stream/pier_adapter.h"
#include "stream/stream_simulator.h"

int main() {
  pier::CensusOptions data_options;
  data_options.num_records = 4000;
  data_options.seed = 99;
  const pier::Dataset d = pier::GenerateCensus(data_options);
  std::printf("dirty source: %zu records, %zu true duplicate pairs\n\n",
              d.profiles.size(), d.truth.size());

  pier::SimulatorOptions sim_options;
  sim_options.num_increments = 40;
  sim_options.increments_per_second = 0.0;  // static: all data upfront
  sim_options.cost_mode = pier::CostMeter::Mode::kModeled;
  const pier::StreamSimulator simulator(&d, sim_options);
  const pier::JaccardMatcher matcher(0.4);

  std::vector<pier::RunResult> runs;

  {
    pier::BatchEr batch(d.kind, pier::BlockingOptions{});
    runs.push_back(simulator.Run(batch, matcher));
  }
  {
    pier::Pbs pbs(d.kind, pier::BlockingOptions{});
    runs.push_back(simulator.Run(pbs, matcher));
  }
  {
    pier::PierOptions options;
    options.kind = d.kind;
    options.strategy = pier::PierStrategy::kIPes;
    pier::PierAdapter pes(options);
    runs.push_back(simulator.Run(pes, matcher));
  }

  double horizon = 0.0;
  for (const auto& r : runs) horizon = std::max(horizon, r.end_time);

  std::printf("matches found over (virtual) time:\n");
  std::printf("%-8s %10s %10s %10s\n", "t/T", "BATCH", "PBS", "I-PES");
  for (int step = 1; step <= 10; ++step) {
    const double t = horizon * step / 10.0;
    std::printf("%-8.1f", static_cast<double>(step) / 10.0);
    for (const auto& r : runs) {
      std::printf(" %10llu", static_cast<unsigned long long>(
                                 r.curve.MatchesAtTime(t)));
    }
    std::printf("\n");
  }

  std::printf("\nsummary:\n");
  pier::PrintSummaryTable(std::cout, runs, horizon);
  return 0;
}
