// Anti-financial-crime scenario (paper Section 1): account-opening
// records stream in from onboarding systems; fraudsters re-register
// under slightly altered identities. The earlier a duplicate identity
// is spotted, the earlier an investigation can start -- the textbook
// use case for progressive + incremental ER.
//
// This example streams a synthetic identity workload (Febrl-style
// census records stand in for KYC data) at a fast rate through I-PES
// and prints "alerts" with the virtual time at which each duplicate
// identity was discovered, then contrasts the discovery latency
// against the non-progressive incremental baseline I-BASE.

#include <cstdio>

#include "baseline/i_base.h"
#include "datagen/generators.h"
#include "similarity/matcher.h"
#include "stream/pier_adapter.h"
#include "stream/stream_simulator.h"

namespace {

pier::RunResult RunOnce(const pier::Dataset& accounts,
                        pier::ErAlgorithm& algorithm,
                        const pier::Matcher& matcher) {
  pier::SimulatorOptions sim_options;
  sim_options.num_increments = 200;  // batches of ~25 records
  // A burst feed much faster than identity verification can score:
  // the backlog is where prioritization pays off.
  sim_options.increments_per_second = 2000;
  sim_options.cost_mode = pier::CostMeter::Mode::kModeled;
  const pier::StreamSimulator simulator(&accounts, sim_options);
  return simulator.Run(algorithm, matcher);
}

}  // namespace

int main() {
  // Synthetic KYC feed: ~5000 account records, half of the underlying
  // identities re-registered with typos / dropped fields.
  pier::CensusOptions data_options;
  data_options.num_records = 5000;
  data_options.duplicate_entity_fraction = 0.4;
  data_options.seed = 1337;
  const pier::Dataset accounts = pier::GenerateCensus(data_options);
  std::printf("KYC feed: %zu records, %zu duplicate identities\n",
              accounts.profiles.size(), accounts.truth.size());

  // The expensive matcher models a heavyweight identity-verification
  // scorer; this is where adaptive K matters.
  const pier::EditDistanceMatcher matcher(/*threshold=*/0.75);

  pier::PierOptions pier_options;
  pier_options.kind = accounts.kind;
  pier_options.strategy = pier::PierStrategy::kIPes;
  pier::PierAdapter pes(pier_options);
  const pier::RunResult pes_run = RunOnce(accounts, pes, matcher);

  pier::IBase ibase(accounts.kind, pier::BlockingOptions{});
  const pier::RunResult base_run = RunOnce(accounts, ibase, matcher);

  std::printf("\n%-8s %-22s %-22s\n", "time_s", "I-PES alerts (cum.)",
              "I-BASE alerts (cum.)");
  const double horizon =
      std::max(pes_run.end_time, base_run.end_time);
  for (int step = 1; step <= 10; ++step) {
    const double t = horizon * step / 10.0;
    std::printf("%-8.2f %-22llu %-22llu\n", t,
                static_cast<unsigned long long>(
                    pes_run.curve.MatchesAtTime(t)),
                static_cast<unsigned long long>(
                    base_run.curve.MatchesAtTime(t)));
  }

  std::printf("\nfinal: I-PES found %llu/%zu (PC %.2f), "
              "I-BASE found %llu/%zu (PC %.2f)\n",
              static_cast<unsigned long long>(pes_run.matches_found),
              accounts.truth.size(), pes_run.FinalPc(),
              static_cast<unsigned long long>(base_run.matches_found),
              accounts.truth.size(), base_run.FinalPc());
  // Discovery latency: how long until a quarter of all duplicate
  // identities had been flagged?
  auto time_to_quarter = [&](const pier::RunResult& run) {
    const uint64_t target = accounts.truth.size() / 4;
    for (const auto& p : run.curve.points()) {
      if (p.matches_found >= target) return p.time;
    }
    return run.end_time;
  };
  std::printf("time to flag 25%% of duplicate identities: "
              "I-PES %.2f s vs I-BASE %.2f s\n",
              time_to_quarter(pes_run), time_to_quarter(base_run));
  return 0;
}
