// Quickstart: progressive + incremental entity resolution in ~60
// lines. Two increments of schema-heterogeneous profiles stream in;
// between arrivals the pipeline emits its globally best comparison
// candidates, which we classify with a Jaccard matcher.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/pier_pipeline.h"
#include "similarity/matcher.h"

int main() {
  pier::PierOptions options;
  options.kind = pier::DatasetKind::kDirty;       // one source, dups within
  options.strategy = pier::PierStrategy::kIPes;   // the paper's best method
  pier::PierPipeline pipeline(options);

  const pier::JaccardMatcher matcher(/*threshold=*/0.5);

  // Increment 1: note the heterogeneous attribute names -- the
  // pipeline is schema-agnostic and only looks at value tokens.
  std::vector<pier::EntityProfile> increment1 = {
      {0, 0, {{"name", "jane doe"}, {"city", "springfield"}}},
      {1, 0, {{"full_name", "jane m doe"}, {"location", "springfield"}}},
      {2, 0, {{"name", "john roe"}, {"city", "riverside"}}},
  };
  pipeline.Ingest(std::move(increment1));

  // Between arrivals: emit the best candidates and classify them.
  auto classify = [&](const std::vector<pier::Comparison>& batch) {
    for (const auto& c : batch) {
      const auto& a = pipeline.profiles().Get(c.x);
      const auto& b = pipeline.profiles().Get(c.y);
      const double sim = matcher.Similarity(a, b);
      std::printf("  candidate (%u, %u)  weight=%.1f  jaccard=%.2f  -> %s\n",
                  c.x, c.y, c.weight, sim,
                  sim >= matcher.threshold() ? "MATCH" : "no match");
    }
  };

  std::printf("after increment 1:\n");
  classify(pipeline.EmitBatch(/*k=*/10));

  // Increment 2 arrives: its profiles are prioritized against
  // *everything* seen so far (globality), not just each other.
  std::vector<pier::EntityProfile> increment2 = {
      {3, 0, {{"person", "jon roe"}, {"town", "riverside"}}},
      {4, 0, {{"name", "alice poe"}, {"city", "fairview"}}},
  };
  pipeline.Ingest(std::move(increment2));

  std::printf("after increment 2:\n");
  classify(pipeline.EmitBatch(/*k=*/10));

  std::printf("comparisons emitted in total: %llu\n",
              static_cast<unsigned long long>(
                  pipeline.comparisons_emitted()));
  return 0;
}
