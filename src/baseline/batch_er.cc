#include "baseline/batch_er.h"

#include <algorithm>

namespace pier {

WorkStats BatchEr::OnIncrement(std::vector<EntityProfile> profiles) {
  // Batch ER only accumulates until the dataset is complete.
  WorkStats stats;
  IngestToStore(std::move(profiles), &stats);
  return stats;
}

WorkStats BatchEr::OnStreamEnd() {
  WorkStats stats;
  started_ = true;
  if (cleaning_.has_value()) {
    // Meta-blocking configuration: build the graph, prune, and emit
    // the retained comparisons without any useful order -- the
    // cleaning only reduces the comparison count; batch ER stays
    // non-progressive.
    BlockingGraph graph;
    const WeightingContext ctx{&blocks_, &profiles_, WeightingScheme::kCbs};
    uint64_t visits = 0;
    stats.comparisons_generated +=
        graph.Build(ctx, static_cast<ProfileId>(profiles_.size()), &visits);
    stats.index_ops += visits;
    cleaned_ = PruneComparisons(graph, *cleaning_, cleaning_options_);
  }
  return stats;
}

void BatchEr::FillBuffer(WorkStats* stats) {
  while (buffer_.empty() && cursor_ < blocks_.NumSlots()) {
    const TokenId token = cursor_++;
    if (!blocks_.IsActive(token)) continue;
    const BlockView b = blocks_.block(token);
    const uint32_t bsize = static_cast<uint32_t>(b.size());
    auto emit = [&](ProfileId x, ProfileId y) {
      Comparison c(x, y, 0.0, bsize);
      if (executed_.TestAndAdd(c.Key())) return;
      buffer_.push_back(c);
      ++stats->comparisons_generated;
    };
    if (blocks_.kind() == DatasetKind::kCleanClean) {
      for (const ProfileId x : b.members[0]) {
        for (const ProfileId y : b.members[1]) emit(x, y);
      }
    } else {
      // Dirty: all pairs across both member lists.
      for (size_t i = 0; i < b.size(); ++i) {
        for (size_t j = i + 1; j < b.size(); ++j) {
          emit(b.member(i), b.member(j));
        }
      }
    }
  }
}

std::vector<Comparison> BatchEr::NextBatch(WorkStats* stats) {
  std::vector<Comparison> out;
  if (!started_) return out;
  if (cleaning_.has_value()) {
    // cleaned_ is weight-descending; serving from the back emits the
    // *worst* first, deliberately: batch ER has no useful order.
    const size_t take = std::min(batch_size_, cleaned_.size());
    out.assign(cleaned_.end() - static_cast<ptrdiff_t>(take),
               cleaned_.end());
    cleaned_.resize(cleaned_.size() - take);
    return out;
  }
  if (buffer_.empty()) FillBuffer(stats);
  const size_t n = std::min(batch_size_, buffer_.size());
  out.assign(buffer_.end() - static_cast<ptrdiff_t>(n), buffer_.end());
  std::reverse(out.begin(), out.end());  // best (back of buffer) first
  buffer_.resize(buffer_.size() - n);
  return out;
}

}  // namespace pier
