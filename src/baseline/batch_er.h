// Batch ER baseline (Section 2.1): token blocking over the full
// dataset, then every block's comparisons executed in arbitrary
// (token-id) order. No prioritization: matches surface whenever their
// comparison happens to run, and the result is only complete at the
// very end -- the F_batch reference of Definitions 1-3.
//
// Optionally the batch pipeline applies meta-blocking comparison
// cleaning (WEP/CEP/WNP/CNP, see comparison_cleaning.h) instead of
// exhaustive block enumeration -- the classic JedAI-style batch
// configuration.

#ifndef PIER_BASELINE_BATCH_ER_H_
#define PIER_BASELINE_BATCH_ER_H_

#include <optional>
#include <vector>

#include "baseline/streaming_er_base.h"
#include "metablocking/comparison_cleaning.h"
#include "util/scalable_bloom_filter.h"

namespace pier {

class BatchEr : public StreamingErBase {
 public:
  BatchEr(DatasetKind kind, BlockingOptions blocking,
          size_t batch_size = 256,
          std::optional<PruningAlgorithm> cleaning = std::nullopt,
          PruningOptions cleaning_options = {})
      : StreamingErBase(kind, blocking),
        batch_size_(batch_size),
        cleaning_(cleaning),
        cleaning_options_(cleaning_options) {}

  WorkStats OnIncrement(std::vector<EntityProfile> profiles) override;
  WorkStats OnStreamEnd() override;
  std::vector<Comparison> NextBatch(WorkStats* stats) override;

  const char* name() const override {
    return cleaning_.has_value() ? "BATCH-MB" : "BATCH";
  }

 private:
  // Refills buffer_ with the next non-empty block's comparisons.
  void FillBuffer(WorkStats* stats);

  size_t batch_size_;
  std::optional<PruningAlgorithm> cleaning_;
  PruningOptions cleaning_options_;
  bool started_ = false;
  TokenId cursor_ = 0;
  std::vector<Comparison> buffer_;
  // Meta-blocking mode: pruned comparisons, worst-first (served from
  // the back).
  std::vector<Comparison> cleaned_;
  ScalableBloomFilter executed_;
};

}  // namespace pier

#endif  // PIER_BASELINE_BATCH_ER_H_
