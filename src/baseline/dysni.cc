#include "baseline/dysni.h"

#include "similarity/string_distance.h"

namespace pier {

WorkStats DySni::OnIncrement(std::vector<EntityProfile> profiles) {
  WorkStats stats;
  const std::vector<ProfileId> delta =
      IngestToStore(std::move(profiles), &stats);

  pending_.clear();
  cursor_ = 0;
  for (const ProfileId id : delta) {
    const EntityProfile& p = profiles_.Get(id);
    // Insert into the sorted index, then expand the window around each
    // of the profile's keys.
    for (const TokenId token : p.tokens()) {
      const std::string spelling(dictionary_.Spelling(token));
      index_[spelling].push_back(p.id);
      ++stats.block_updates;
    }
    for (const TokenId token : p.tokens()) {
      CollectWindow(p, std::string(dictionary_.Spelling(token)), &stats);
    }
  }
  return stats;
}

void DySni::CollectWindow(const EntityProfile& profile,
                          const std::string& spelling, WorkStats* stats) {
  const auto anchor = index_.find(spelling);
  if (anchor == index_.end()) return;

  auto consider = [&](const std::vector<ProfileId>& bucket) {
    // Oversized buckets behave like purged blocks: skip them.
    if (blocks_.options().max_block_size != 0 &&
        bucket.size() > blocks_.options().max_block_size) {
      return;
    }
    for (const ProfileId y : bucket) {
      if (y == profile.id) continue;
      const EntityProfile& other = profiles_.Get(y);
      if (blocks_.kind() == DatasetKind::kCleanClean &&
          other.source == profile.source) {
        continue;
      }
      Comparison c(profile.id, y, 0.0);
      if (seen_.TestAndAdd(c.Key())) continue;
      c.weight = PairCbsWeight(profile, other);
      pending_.push_back(c);
      ++stats->comparisons_generated;
    }
  };

  // The anchor bucket plus `window_` sorted keys on each side.
  consider(anchor->second);
  auto forward = anchor;
  for (size_t step = 0; step < window_; ++step) {
    ++forward;
    if (forward == index_.end()) break;
    consider(forward->second);
  }
  auto backward = anchor;
  for (size_t step = 0; step < window_ && backward != index_.begin();
       ++step) {
    --backward;
    consider(backward->second);
  }
}

std::vector<Comparison> DySni::NextBatch(WorkStats* stats) {
  (void)stats;
  std::vector<Comparison> out;
  while (out.size() < batch_size_ && cursor_ < pending_.size()) {
    out.push_back(pending_[cursor_++]);
  }
  if (cursor_ >= pending_.size()) {
    pending_.clear();
    cursor_ = 0;
  }
  return out;
}

}  // namespace pier
