// DySNI: dynamic sorted-neighborhood indexing (Ramadan, Christen et
// al. [32, 33] in the paper's related work) -- the classic *real-time*
// incremental ER approach the paper contrasts with: it maintains a
// sorted index over blocking keys and, for every arriving profile,
// immediately generates the comparisons within a fixed window around
// each of its keys. Like I-BASE it is incremental but not progressive
// (fixed work per profile, no global prioritization); unlike the
// schema-agnostic PIER methods, the original needs a schema-defined
// sorting key -- this adaptation uses every value token as a key,
// keeping it schema-agnostic and comparable.

#ifndef PIER_BASELINE_DYSNI_H_
#define PIER_BASELINE_DYSNI_H_

#include <map>
#include <string>
#include <vector>

#include "baseline/streaming_er_base.h"
#include "util/scalable_bloom_filter.h"

namespace pier {

class DySni : public StreamingErBase {
 public:
  DySni(DatasetKind kind, BlockingOptions blocking, size_t window = 2,
        size_t batch_size = 256)
      : StreamingErBase(kind, blocking),
        window_(window),
        batch_size_(batch_size) {}

  WorkStats OnIncrement(std::vector<EntityProfile> profiles) override;
  std::vector<Comparison> NextBatch(WorkStats* stats) override;

  // Real-time semantics: finish this increment's comparisons before
  // accepting the next (like I-BASE).
  bool ReadyForIncrement() const override {
    return cursor_ >= pending_.size();
  }

  const char* name() const override { return "DySNI"; }

  // Exposed for tests: number of distinct keys in the sorted index.
  size_t NumIndexKeys() const { return index_.size(); }

 private:
  // Collects the window neighbours of `profile` around key `token_id`
  // after the profile has been inserted.
  void CollectWindow(const EntityProfile& profile,
                     const std::string& spelling, WorkStats* stats);

  size_t window_;
  size_t batch_size_;

  // Sorted inverted index: token spelling -> profiles carrying it, in
  // arrival order. std::map keeps keys sorted so window expansion is
  // iterator movement, exactly the DySNI tree traversal.
  std::map<std::string, std::vector<ProfileId>> index_;

  std::vector<Comparison> pending_;
  size_t cursor_ = 0;
  ScalableBloomFilter seen_;
};

}  // namespace pier

#endif  // PIER_BASELINE_DYSNI_H_
