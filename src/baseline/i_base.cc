#include "baseline/i_base.h"

#include "blocking/block_ghosting.h"
#include "metablocking/i_wnp.h"
#include "metablocking/weighting.h"

namespace pier {

WorkStats IBase::OnIncrement(std::vector<EntityProfile> profiles) {
  WorkStats stats;
  const std::vector<ProfileId> delta =
      IngestToStore(std::move(profiles), &stats);

  pending_.clear();
  cursor_ = 0;
  const WeightingContext ctx{&blocks_, &profiles_, scheme_};
  for (const ProfileId id : delta) {
    const EntityProfile& p = profiles_.Get(id);
    const std::vector<TokenId> retained = GhostBlocks(blocks_, p, beta_);
    std::vector<Comparison> candidates = GenerateWeightedComparisons(
        ctx, p, retained, /*only_older_neighbors=*/true, /*visits=*/nullptr,
        &scratch_);
    stats.comparisons_generated += candidates.size();
    candidates = IWnpPrune(std::move(candidates));
    pending_.insert(pending_.end(), candidates.begin(), candidates.end());
  }
  return stats;
}

std::vector<Comparison> IBase::NextBatch(WorkStats* stats) {
  (void)stats;
  std::vector<Comparison> out;
  while (out.size() < batch_size_ && cursor_ < pending_.size()) {
    out.push_back(pending_[cursor_++]);
  }
  if (cursor_ >= pending_.size()) {
    pending_.clear();
    cursor_ = 0;
  }
  return out;
}

}  // namespace pier
