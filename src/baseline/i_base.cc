#include "baseline/i_base.h"

#include <sstream>
#include <utility>

#include "blocking/block_ghosting.h"
#include "metablocking/i_wnp.h"
#include "metablocking/weighting.h"
#include "util/serial.h"

namespace pier {

WorkStats IBase::OnIncrement(std::vector<EntityProfile> profiles) {
  WorkStats stats;
  const std::vector<ProfileId> delta =
      IngestToStore(std::move(profiles), &stats);

  pending_.clear();
  cursor_ = 0;
  const WeightingContext ctx{&blocks_, &profiles_, scheme_};
  for (const ProfileId id : delta) {
    const EntityProfile& p = profiles_.Get(id);
    GhostBlocks(blocks_, p, beta_, &retained_);
    std::vector<Comparison> candidates = GenerateWeightedComparisons(
        ctx, p, retained_, /*only_older_neighbors=*/true, /*visits=*/nullptr,
        &scratch_);
    stats.comparisons_generated += candidates.size();
    candidates = IWnpPrune(std::move(candidates));
    pending_.insert(pending_.end(), candidates.begin(), candidates.end());
  }
  return stats;
}

std::vector<Comparison> IBase::NextBatch(WorkStats* stats) {
  (void)stats;
  std::vector<Comparison> out;
  while (out.size() < batch_size_ && cursor_ < pending_.size()) {
    out.push_back(pending_[cursor_++]);
  }
  if (cursor_ >= pending_.size()) {
    pending_.clear();
    cursor_ = 0;
  }
  return out;
}

void IBase::Snapshot(persist::SnapshotBuilder& builder) const {
  SnapshotBase(builder);
  std::ostream& out = builder.AddSection("ibase.state");
  serial::WriteF64(out, beta_);
  serial::WriteU64(out, batch_size_);
  serial::WriteU8(out, static_cast<uint8_t>(scheme_));
  serial::WriteVec(out, pending_, SnapshotComparison);
  serial::WriteU64(out, cursor_);
}

bool IBase::Restore(const persist::SnapshotReader& reader,
                    std::string* error) {
  if (!profiles_.empty()) {
    if (error != nullptr) *error = "restore requires a fresh I-BASE";
    return false;
  }
  if (!RestoreBase(reader, error)) return false;
  std::istringstream in;
  if (!reader.Open("ibase.state", &in, error)) return false;
  double beta = 0.0;
  uint64_t batch_size = 0;
  uint8_t scheme = 0;
  std::vector<Comparison> pending;
  uint64_t cursor = 0;
  if (!serial::ReadF64(in, &beta) || !serial::ReadU64(in, &batch_size) ||
      !serial::ReadU8(in, &scheme) ||
      !serial::ReadVec(in, &pending, RestoreComparison) ||
      !serial::ReadU64(in, &cursor)) {
    if (error != nullptr) *error = "section 'ibase.state' failed to decode";
    return false;
  }
  // Parameter fingerprint: the snapshot must come from an identically
  // configured I-BASE.
  if (beta != beta_ || batch_size != batch_size_ ||
      scheme != static_cast<uint8_t>(scheme_) || cursor > pending.size()) {
    if (error != nullptr) {
      *error = "snapshot parameters do not match this I-BASE configuration";
    }
    return false;
  }
  pending_ = std::move(pending);
  cursor_ = cursor;
  return true;
}

}  // namespace pier
