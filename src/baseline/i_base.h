// I-BASE: the state-of-the-art incremental (but not progressive)
// baseline (Gazzarri & Herschel, ICDE 2021 [17]; Section 7.1). Per
// increment it performs incremental blocking, block ghosting, and
// I-WNP comparison cleaning, then executes *all* retained comparisons
// in generation order before accepting the next increment. The number
// of comparisons per increment is fixed by blocking alone --
// independent of the input rate or the matcher's speed -- which is
// exactly why it stagnates on fast streams with expensive matchers
// (Figures 7-8).

#ifndef PIER_BASELINE_I_BASE_H_
#define PIER_BASELINE_I_BASE_H_

#include <vector>

#include "baseline/streaming_er_base.h"
#include "metablocking/weighting.h"

namespace pier {

class IBase : public StreamingErBase {
 public:
  IBase(DatasetKind kind, BlockingOptions blocking, double beta = 0.5,
        size_t batch_size = 256,
        WeightingScheme scheme = WeightingScheme::kCbs)
      : StreamingErBase(kind, blocking),
        beta_(beta),
        batch_size_(batch_size),
        scheme_(scheme) {}

  WorkStats OnIncrement(std::vector<EntityProfile> profiles) override;
  std::vector<Comparison> NextBatch(WorkStats* stats) override;

  // Backpressure: I-BASE finishes an increment's comparisons before
  // consuming the next increment.
  bool ReadyForIncrement() const override {
    return cursor_ >= pending_.size();
  }

  bool SupportsSnapshot() const override { return true; }
  void Snapshot(persist::SnapshotBuilder& builder) const override;
  bool Restore(const persist::SnapshotReader& reader,
               std::string* error) override;

  const char* name() const override { return "I-BASE"; }

 private:
  double beta_;
  size_t batch_size_;
  WeightingScheme scheme_;

  std::vector<Comparison> pending_;  // FIFO, generation order
  size_t cursor_ = 0;
  WeightingScratch scratch_;  // reused across increments
  std::vector<TokenId> retained_;  // reused ghosting output buffer
};

}  // namespace pier

#endif  // PIER_BASELINE_I_BASE_H_
