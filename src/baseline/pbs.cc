#include "baseline/pbs.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "metablocking/weighting.h"
#include "util/serial.h"

namespace pier {

WorkStats Pbs::OnIncrement(std::vector<EntityProfile> profiles) {
  WorkStats stats;
  IngestToStore(std::move(profiles), &stats);
  if (mode_ == BaselineMode::kGlobalIncremental) {
    // The straightforward adaptation: redo the whole pre-analysis.
    stats += Init();
  }
  return stats;
}

WorkStats Pbs::OnStreamEnd() {
  if (mode_ == BaselineMode::kStatic) return Init();
  return {};
}

WorkStats Pbs::Init() {
  WorkStats stats;
  block_order_.clear();
  buffer_.clear();
  for (TokenId token = 0; token < blocks_.NumSlots(); ++token) {
    if (!blocks_.IsActive(token)) continue;
    block_order_.emplace_back(blocks_.block(token).NumComparisons(
                                  blocks_.kind()),
                              token);
    ++stats.index_ops;
  }
  std::sort(block_order_.begin(), block_order_.end(),
            std::greater<std::pair<uint64_t, TokenId>>());
  initialized_ = true;
  return stats;
}

void Pbs::FillBuffer(WorkStats* stats) {
  const CompareByWeight less;
  while (buffer_.empty() && !block_order_.empty()) {
    const TokenId token = block_order_.back().second;
    block_order_.pop_back();
    if (!blocks_.IsActive(token)) continue;
    const BlockView b = blocks_.block(token);
    const uint32_t bsize = static_cast<uint32_t>(b.size());
    auto emit = [&](ProfileId x, ProfileId y) {
      Comparison c(x, y, 0.0, bsize);
      if (executed_.TestAndAdd(c.Key())) return;
      c.weight = PairCbsWeight(profiles_.Get(x), profiles_.Get(y));
      buffer_.push_back(c);
      ++stats->comparisons_generated;
    };
    if (blocks_.kind() == DatasetKind::kCleanClean) {
      for (const ProfileId x : b.members[0]) {
        for (const ProfileId y : b.members[1]) emit(x, y);
      }
    } else {
      // Dirty: all pairs across both member lists.
      for (size_t i = 0; i < b.size(); ++i) {
        for (size_t j = i + 1; j < b.size(); ++j) {
          emit(b.member(i), b.member(j));
        }
      }
    }
    // Within a block, emit best-weighted comparisons first (buffer is
    // served from the back).
    std::sort(buffer_.begin(), buffer_.end(), less);
  }
}

std::vector<Comparison> Pbs::NextBatch(WorkStats* stats) {
  std::vector<Comparison> out;
  if (!initialized_) return out;
  if (buffer_.empty()) FillBuffer(stats);
  const size_t n = std::min(batch_size_, buffer_.size());
  out.assign(buffer_.end() - static_cast<ptrdiff_t>(n), buffer_.end());
  std::reverse(out.begin(), out.end());  // best (back of buffer) first
  buffer_.resize(buffer_.size() - n);
  return out;
}

void Pbs::Snapshot(persist::SnapshotBuilder& builder) const {
  SnapshotBase(builder);
  std::ostream& out = builder.AddSection("pbs.state");
  serial::WriteU8(out, static_cast<uint8_t>(mode_));
  serial::WriteU64(out, batch_size_);
  serial::WriteBool(out, initialized_);
  serial::WriteVec(out, block_order_,
                   [](std::ostream& o, const std::pair<uint64_t, TokenId>& e) {
                     serial::WriteU64(o, e.first);
                     serial::WriteU32(o, e.second);
                   });
  serial::WriteVec(out, buffer_, SnapshotComparison);
  executed_.Snapshot(out);
}

bool Pbs::Restore(const persist::SnapshotReader& reader, std::string* error) {
  if (!profiles_.empty()) {
    if (error != nullptr) *error = "restore requires a fresh PBS";
    return false;
  }
  if (!RestoreBase(reader, error)) return false;
  std::istringstream in;
  if (!reader.Open("pbs.state", &in, error)) return false;
  uint8_t mode = 0;
  uint64_t batch_size = 0;
  bool initialized = false;
  std::vector<std::pair<uint64_t, TokenId>> block_order;
  std::vector<Comparison> buffer;
  if (!serial::ReadU8(in, &mode) || !serial::ReadU64(in, &batch_size) ||
      !serial::ReadBool(in, &initialized) ||
      !serial::ReadVec(in, &block_order,
                       [](std::istream& s, std::pair<uint64_t, TokenId>* e) {
                         return serial::ReadU64(s, &e->first) &&
                                serial::ReadU32(s, &e->second);
                       }) ||
      !serial::ReadVec(in, &buffer, RestoreComparison) ||
      !executed_.Restore(in)) {
    if (error != nullptr) *error = "section 'pbs.state' failed to decode";
    return false;
  }
  if (mode != static_cast<uint8_t>(mode_) || batch_size != batch_size_) {
    if (error != nullptr) {
      *error = "snapshot parameters do not match this PBS configuration";
    }
    return false;
  }
  initialized_ = initialized;
  block_order_ = std::move(block_order);
  buffer_ = std::move(buffer);
  return true;
}

}  // namespace pier
