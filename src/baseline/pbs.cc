#include "baseline/pbs.h"

#include <algorithm>

#include "metablocking/weighting.h"

namespace pier {

WorkStats Pbs::OnIncrement(std::vector<EntityProfile> profiles) {
  WorkStats stats;
  IngestToStore(std::move(profiles), &stats);
  if (mode_ == BaselineMode::kGlobalIncremental) {
    // The straightforward adaptation: redo the whole pre-analysis.
    stats += Init();
  }
  return stats;
}

WorkStats Pbs::OnStreamEnd() {
  if (mode_ == BaselineMode::kStatic) return Init();
  return {};
}

WorkStats Pbs::Init() {
  WorkStats stats;
  block_order_.clear();
  buffer_.clear();
  for (TokenId token = 0; token < blocks_.NumSlots(); ++token) {
    if (!blocks_.IsActive(token)) continue;
    block_order_.emplace_back(blocks_.block(token).NumComparisons(
                                  blocks_.kind()),
                              token);
    ++stats.index_ops;
  }
  std::sort(block_order_.begin(), block_order_.end(),
            std::greater<std::pair<uint64_t, TokenId>>());
  initialized_ = true;
  return stats;
}

void Pbs::FillBuffer(WorkStats* stats) {
  const CompareByWeight less;
  while (buffer_.empty() && !block_order_.empty()) {
    const TokenId token = block_order_.back().second;
    block_order_.pop_back();
    if (!blocks_.IsActive(token)) continue;
    const Block& b = blocks_.block(token);
    const uint32_t bsize = static_cast<uint32_t>(b.size());
    auto emit = [&](ProfileId x, ProfileId y) {
      Comparison c(x, y, 0.0, bsize);
      if (executed_.TestAndAdd(c.Key())) return;
      c.weight = PairCbsWeight(profiles_.Get(x), profiles_.Get(y));
      buffer_.push_back(c);
      ++stats->comparisons_generated;
    };
    if (blocks_.kind() == DatasetKind::kCleanClean) {
      for (const ProfileId x : b.members[0]) {
        for (const ProfileId y : b.members[1]) emit(x, y);
      }
    } else {
      const auto& m = b.members[0];
      for (size_t i = 0; i < m.size(); ++i) {
        for (size_t j = i + 1; j < m.size(); ++j) emit(m[i], m[j]);
      }
    }
    // Within a block, emit best-weighted comparisons first (buffer is
    // served from the back).
    std::sort(buffer_.begin(), buffer_.end(), less);
  }
}

std::vector<Comparison> Pbs::NextBatch(WorkStats* stats) {
  std::vector<Comparison> out;
  if (!initialized_) return out;
  if (buffer_.empty()) FillBuffer(stats);
  const size_t n = std::min(batch_size_, buffer_.size());
  out.assign(buffer_.end() - static_cast<ptrdiff_t>(n), buffer_.end());
  std::reverse(out.begin(), out.end());  // best (back of buffer) first
  buffer_.resize(buffer_.size() - n);
  return out;
}

}  // namespace pier
