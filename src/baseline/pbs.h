// PBS: Progressive Block Scheduling (Simonini et al., TKDE 2019 [36]),
// the block-centric batch progressive baseline. Pre-analysis sorts all
// blocks by size ascending; emission processes blocks smallest-first,
// ordering each block's comparisons by a meta-blocking weight (CBS).
//
// Two modes:
//  * kStatic -- the paper's progressive setting: initialization runs
//    once when the full dataset is available.
//  * kGlobalIncremental -- the "PBS-GLOBAL" straightforward adaptation
//    to incremental data (Section 7.3): the pre-analysis re-runs on
//    *every* increment over all data seen so far, which is exactly the
//    overhead that makes the adaptation unusable on fast streams.

#ifndef PIER_BASELINE_PBS_H_
#define PIER_BASELINE_PBS_H_

#include <utility>
#include <vector>

#include "baseline/streaming_er_base.h"
#include "util/scalable_bloom_filter.h"

namespace pier {

enum class BaselineMode : uint8_t {
  kStatic = 0,
  kGlobalIncremental = 1,
};

class Pbs : public StreamingErBase {
 public:
  Pbs(DatasetKind kind, BlockingOptions blocking,
      BaselineMode mode = BaselineMode::kStatic, size_t batch_size = 256)
      : StreamingErBase(kind, blocking),
        mode_(mode),
        batch_size_(batch_size) {}

  WorkStats OnIncrement(std::vector<EntityProfile> profiles) override;
  WorkStats OnStreamEnd() override;
  std::vector<Comparison> NextBatch(WorkStats* stats) override;

  bool SupportsSnapshot() const override { return true; }
  void Snapshot(persist::SnapshotBuilder& builder) const override;
  bool Restore(const persist::SnapshotReader& reader,
               std::string* error) override;

  const char* name() const override {
    return mode_ == BaselineMode::kStatic ? "PBS" : "PBS-GLOBAL";
  }

 private:
  // The pre-analysis: (re)builds the size-sorted block order.
  WorkStats Init();
  void FillBuffer(WorkStats* stats);

  BaselineMode mode_;
  size_t batch_size_;
  bool initialized_ = false;

  // (size, token), sorted descending so the smallest block is at the
  // back.
  std::vector<std::pair<uint64_t, TokenId>> block_order_;
  std::vector<Comparison> buffer_;  // current block, worst-first
  ScalableBloomFilter executed_;
};

}  // namespace pier

#endif  // PIER_BASELINE_PBS_H_
