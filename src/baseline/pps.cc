#include "baseline/pps.h"

#include <algorithm>

namespace pier {

WorkStats Pps::OnIncrement(std::vector<EntityProfile> profiles) {
  WorkStats stats;
  IngestToStore(std::move(profiles), &stats);
  if (mode_ == BaselineMode::kGlobalIncremental) {
    stats += Init();
  }
  return stats;
}

WorkStats Pps::OnStreamEnd() {
  if (mode_ == BaselineMode::kStatic) return Init();
  return {};
}

WorkStats Pps::Init() {
  WorkStats stats;
  const WeightingContext ctx{&blocks_, &profiles_, scheme_};
  // The meta-blocking graph over everything seen so far -- the costly
  // pre-analysis. Raw block-member visits are charged as index ops so
  // the modeled cost reflects the true build effort.
  uint64_t visits = 0;
  const size_t edges = graph_.Build(
      ctx, static_cast<ProfileId>(profiles_.size()), &visits);
  stats.comparisons_generated += edges;
  stats.index_ops += visits;

  profile_order_.resize(profiles_.size());
  for (ProfileId id = 0; id < profiles_.size(); ++id) {
    profile_order_[id] = id;
  }
  std::sort(profile_order_.begin(), profile_order_.end(),
            [this](ProfileId a, ProfileId b) {
              const double wa = graph_.NodeWeight(a);
              const double wb = graph_.NodeWeight(b);
              if (wa != wb) return wa > wb;
              return a < b;
            });
  stats.index_ops += profile_order_.size();

  phase_ = 1;
  profile_cursor_ = 0;
  edge_cursor_ = 1;
  initialized_ = true;
  return stats;
}

std::vector<Comparison> Pps::NextBatch(WorkStats* stats) {
  std::vector<Comparison> out;
  if (!initialized_) return out;

  while (out.size() < batch_size_ && phase_ <= 2) {
    if (profile_cursor_ >= profile_order_.size()) {
      ++phase_;
      profile_cursor_ = 0;
      edge_cursor_ = 1;
      continue;
    }
    const ProfileId p = profile_order_[profile_cursor_];
    const auto& edges = graph_.Edges(p);
    if (phase_ == 1) {
      // Phase 1: the single best comparison of each profile.
      if (!edges.empty()) {
        const Comparison& c = edges.front();
        if (!executed_.TestAndAdd(c.Key())) {
          out.push_back(c);
          ++stats->index_ops;
        }
      }
      ++profile_cursor_;
    } else {
      // Phase 2: the remaining top-k comparisons of each profile.
      const size_t limit = std::min(top_k_, edges.size());
      bool advanced = false;
      while (edge_cursor_ < limit && out.size() < batch_size_) {
        const Comparison& c = edges[edge_cursor_++];
        if (!executed_.TestAndAdd(c.Key())) {
          out.push_back(c);
          ++stats->index_ops;
        }
        advanced = true;
      }
      if (edge_cursor_ >= limit || !advanced) {
        ++profile_cursor_;
        edge_cursor_ = 1;
      }
    }
  }
  return out;
}

}  // namespace pier
