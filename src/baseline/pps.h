// PPS: Progressive Profile Scheduling (Simonini et al., TKDE 2019
// [36]), the entity-centric batch progressive baseline that I-PES
// makes incremental. Pre-analysis builds the full meta-blocking graph
// (the expensive step: hours on web-scale data, Section 7.2), ranks
// profiles by duplication likelihood, and keeps per-profile sorted
// comparison lists. Emission: first every profile's single best
// comparison (in profile order), then each profile's remaining top-k.
//
// kGlobalIncremental is the "PPS-GLOBAL" adaptation: the entire graph
// is rebuilt on every increment over all data seen so far.

#ifndef PIER_BASELINE_PPS_H_
#define PIER_BASELINE_PPS_H_

#include <vector>

#include "baseline/pbs.h"  // BaselineMode
#include "baseline/streaming_er_base.h"
#include "metablocking/blocking_graph.h"
#include "util/scalable_bloom_filter.h"

namespace pier {

class Pps : public StreamingErBase {
 public:
  Pps(DatasetKind kind, BlockingOptions blocking,
      BaselineMode mode = BaselineMode::kStatic, size_t top_k = 32,
      size_t batch_size = 256,
      WeightingScheme scheme = WeightingScheme::kCbs)
      : StreamingErBase(kind, blocking),
        mode_(mode),
        top_k_(top_k),
        batch_size_(batch_size),
        scheme_(scheme) {}

  WorkStats OnIncrement(std::vector<EntityProfile> profiles) override;
  WorkStats OnStreamEnd() override;
  std::vector<Comparison> NextBatch(WorkStats* stats) override;

  const char* name() const override {
    return mode_ == BaselineMode::kStatic ? "PPS" : "PPS-GLOBAL";
  }

  const BlockingGraph& graph() const { return graph_; }

 private:
  WorkStats Init();

  BaselineMode mode_;
  size_t top_k_;
  size_t batch_size_;
  WeightingScheme scheme_;

  bool initialized_ = false;
  BlockingGraph graph_;
  // Profile ids sorted by duplication likelihood, best first.
  std::vector<ProfileId> profile_order_;
  // Emission state machine: phase 1 emits best-per-profile, phase 2
  // the remaining top-k.
  int phase_ = 1;
  size_t profile_cursor_ = 0;
  size_t edge_cursor_ = 1;

  ScalableBloomFilter executed_;
};

}  // namespace pier

#endif  // PIER_BASELINE_PPS_H_
