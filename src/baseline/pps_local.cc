#include "baseline/pps_local.h"

#include <algorithm>

#include "metablocking/weighting.h"

namespace pier {

WorkStats PpsLocal::OnIncrement(std::vector<EntityProfile> profiles) {
  WorkStats stats;
  const std::vector<ProfileId> delta =
      IngestToStore(std::move(profiles), &stats);

  // Local pre-analysis: blocks over this increment only.
  BlockCollection local_blocks(blocks_.kind(), blocks_.options());
  for (const ProfileId id : delta) {
    stats.block_updates += local_blocks.AddProfile(profiles_.Get(id));
  }
  const WeightingContext ctx{&local_blocks, &profiles_, scheme_};

  // Any prioritization of the previous increment is discarded --
  // PPS-LOCAL has no memory.
  pending_.clear();
  for (const ProfileId id : delta) {
    const EntityProfile& p = profiles_.Get(id);
    std::vector<TokenId> active;
    for (const TokenId token : p.tokens()) {
      if (local_blocks.IsActive(token)) active.push_back(token);
    }
    auto candidates = GenerateWeightedComparisons(
        ctx, p, active, /*only_older_neighbors=*/true, /*visits=*/nullptr,
        &scratch_);
    stats.comparisons_generated += candidates.size();
    pending_.insert(pending_.end(), candidates.begin(), candidates.end());
  }
  std::sort(pending_.begin(), pending_.end(), CompareByWeight());
  return stats;
}

std::vector<Comparison> PpsLocal::NextBatch(WorkStats* stats) {
  (void)stats;
  std::vector<Comparison> out;
  const size_t n = std::min(batch_size_, pending_.size());
  out.assign(pending_.end() - static_cast<ptrdiff_t>(n), pending_.end());
  std::reverse(out.begin(), out.end());  // best (back of pending_) first
  pending_.resize(pending_.size() - n);
  return out;
}

}  // namespace pier
