// PPS-LOCAL: the second straightforward adaptation of PPS to
// incremental data (Section 1, Figure 2): the pre-analysis considers
// *only the last increment*, so it is cheap -- but it can only ever
// generate intra-increment comparisons and therefore "performs poorly
// in all settings, barely finding any matches".

#ifndef PIER_BASELINE_PPS_LOCAL_H_
#define PIER_BASELINE_PPS_LOCAL_H_

#include <memory>
#include <vector>

#include "baseline/streaming_er_base.h"
#include "metablocking/weighting.h"

namespace pier {

class PpsLocal : public StreamingErBase {
 public:
  PpsLocal(DatasetKind kind, BlockingOptions blocking,
           size_t batch_size = 256,
           WeightingScheme scheme = WeightingScheme::kCbs)
      : StreamingErBase(kind, blocking),
        batch_size_(batch_size),
        scheme_(scheme) {}

  WorkStats OnIncrement(std::vector<EntityProfile> profiles) override;
  std::vector<Comparison> NextBatch(WorkStats* stats) override;

  const char* name() const override { return "PPS-LOCAL"; }

 private:
  size_t batch_size_;
  WeightingScheme scheme_;
  // The increment's comparisons, weight-sorted worst-first (served
  // from the back); replaced wholesale on the next increment.
  std::vector<Comparison> pending_;
  WeightingScratch scratch_;  // reused across increments
};

}  // namespace pier

#endif  // PIER_BASELINE_PPS_LOCAL_H_
