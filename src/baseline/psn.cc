#include "baseline/psn.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace pier {

WorkStats Psn::OnIncrement(std::vector<EntityProfile> profiles) {
  WorkStats stats;
  IngestToStore(std::move(profiles), &stats);
  if (mode_ == BaselineMode::kGlobalIncremental) {
    stats += Init();
  }
  return stats;
}

WorkStats Psn::OnStreamEnd() {
  if (mode_ == BaselineMode::kStatic) return Init();
  return {};
}

WorkStats Psn::Init() {
  WorkStats stats;
  // One (token, profile) entry per distinct token of each profile,
  // ordered by token spelling, ties broken by profile id. TokenIds are
  // interned in first-seen order, so we sort by spelling explicitly.
  std::vector<std::pair<TokenId, ProfileId>> entries;
  for (ProfileId id = 0; id < profiles_.size(); ++id) {
    for (const TokenId token : profiles_.Get(id).tokens()) {
      entries.emplace_back(token, id);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [this](const auto& a, const auto& b) {
              const std::string_view sa = dictionary_.Spelling(a.first);
              const std::string_view sb = dictionary_.Spelling(b.first);
              if (sa != sb) return sa < sb;
              return a.second < b.second;
            });
  sorted_list_.clear();
  sorted_list_.reserve(entries.size());
  for (const auto& [token, id] : entries) sorted_list_.push_back(id);
  stats.index_ops += entries.size();

  buffer_.clear();
  current_window_ = 1;

  if (variant_ == PsnVariant::kGlobal) {
    // GS-PSN: aggregate weight sum(1/d) over all co-occurrences within
    // the maximum window, then a single global ranking.
    std::unordered_map<uint64_t, Comparison> weights;
    for (size_t w = 1; w <= max_window_; ++w) {
      for (const auto& c : PairsAtDistance(w)) {
        auto [it, inserted] = weights.try_emplace(c.Key(), c);
        if (!inserted) it->second.weight += c.weight;
        ++stats.comparisons_generated;
      }
    }
    buffer_.reserve(weights.size());
    for (const auto& [key, c] : weights) buffer_.push_back(c);
    std::sort(buffer_.begin(), buffer_.end(), CompareByWeight());
  }
  initialized_ = true;
  return stats;
}

std::vector<Comparison> Psn::PairsAtDistance(size_t w) const {
  // Pairs of distinct profiles w apart in the sorted list; the weight
  // counts co-occurrences at this distance (duplicate entries of the
  // same pair are merged), scaled by 1/w so near neighbours dominate.
  std::unordered_map<uint64_t, Comparison> pairs;
  const DatasetKind kind = blocks_.kind();
  for (size_t i = 0; i + w < sorted_list_.size(); ++i) {
    const ProfileId a = sorted_list_[i];
    const ProfileId b = sorted_list_[i + w];
    if (a == b) continue;
    if (kind == DatasetKind::kCleanClean &&
        profiles_.Get(a).source == profiles_.Get(b).source) {
      continue;
    }
    const Comparison c(a, b, 1.0 / static_cast<double>(w));
    auto [it, inserted] = pairs.try_emplace(c.Key(), c);
    if (!inserted) it->second.weight += c.weight;
  }
  std::vector<Comparison> out;
  out.reserve(pairs.size());
  for (const auto& [key, c] : pairs) out.push_back(c);
  return out;
}

std::vector<Comparison> Psn::NextBatch(WorkStats* stats) {
  std::vector<Comparison> out;
  if (!initialized_) return out;

  while (out.size() < batch_size_) {
    if (buffer_.empty()) {
      // LS-PSN refills lazily from the next window; GS-PSN built its
      // whole ranking at Init, so an empty buffer means done.
      if (variant_ != PsnVariant::kLocal || current_window_ > max_window_) {
        break;
      }
      buffer_ = PairsAtDistance(current_window_++);
      std::sort(buffer_.begin(), buffer_.end(), CompareByWeight());
      if (stats != nullptr) stats->comparisons_generated += buffer_.size();
      continue;
    }
    const Comparison c = buffer_.back();
    buffer_.pop_back();
    if (executed_.TestAndAdd(c.Key())) continue;
    out.push_back(c);
  }
  return out;
}

}  // namespace pier
