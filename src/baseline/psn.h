// Schema-agnostic Progressive Sorted Neighborhood (Simonini et al.,
// TKDE 2019 [36]): the two remaining progressive baselines the paper's
// related work discusses (Section 2.4). All profiles are placed in a
// sorted list -- one entry per (token, profile) pair ordered by token
// spelling -- and profiles near each other in the list are likely
// matches.
//
//  * LS-PSN (local): processes the list window by window (distance
//    w = 1, 2, ...), ranking each window's pairs by how often they
//    co-occur at that distance; early windows come first.
//  * GS-PSN (global): precomputes, for every pair within the maximum
//    window, an aggregate weight sum(1/d) over all co-occurrences at
//    distance d, then emits strictly by weight.
//
// Both are batch algorithms: like PBS/PPS they need the whole dataset
// before their pre-analysis (kStatic), or they re-run it per increment
// (kGlobalIncremental).

#ifndef PIER_BASELINE_PSN_H_
#define PIER_BASELINE_PSN_H_

#include <string>
#include <vector>

#include "baseline/pbs.h"  // BaselineMode
#include "baseline/streaming_er_base.h"
#include "util/scalable_bloom_filter.h"

namespace pier {

enum class PsnVariant : uint8_t {
  kLocal = 0,   // LS-PSN
  kGlobal = 1,  // GS-PSN
};

class Psn : public StreamingErBase {
 public:
  Psn(DatasetKind kind, BlockingOptions blocking,
      PsnVariant variant = PsnVariant::kGlobal,
      BaselineMode mode = BaselineMode::kStatic, size_t max_window = 10,
      size_t batch_size = 256)
      : StreamingErBase(kind, blocking),
        variant_(variant),
        mode_(mode),
        max_window_(max_window),
        batch_size_(batch_size) {}

  WorkStats OnIncrement(std::vector<EntityProfile> profiles) override;
  WorkStats OnStreamEnd() override;
  std::vector<Comparison> NextBatch(WorkStats* stats) override;

  const char* name() const override {
    return variant_ == PsnVariant::kLocal ? "LS-PSN" : "GS-PSN";
  }

  // Exposed for tests: length of the sorted token-profile list.
  size_t SortedListSize() const { return sorted_list_.size(); }

 private:
  WorkStats Init();

  // Collects the weighted pairs at sliding-window distance `w`.
  std::vector<Comparison> PairsAtDistance(size_t w) const;

  PsnVariant variant_;
  BaselineMode mode_;
  size_t max_window_;
  size_t batch_size_;

  bool initialized_ = false;
  // Profile ids ordered by the spelling of each token occurrence.
  std::vector<ProfileId> sorted_list_;

  // Emission state. LS-PSN: current window distance and its ranked
  // pair buffer; GS-PSN: one global ranked buffer.
  size_t current_window_ = 1;
  std::vector<Comparison> buffer_;  // worst-first; served from the back

  ScalableBloomFilter executed_;
};

}  // namespace pier

#endif  // PIER_BASELINE_PSN_H_
