// Shared machinery for the baseline algorithms: every baseline owns
// its own dictionary / profile store / block collection and ingests
// increments the same way the PIER pipeline does (tokenize, store,
// block); they differ in what happens afterwards.

#ifndef PIER_BASELINE_STREAMING_ER_BASE_H_
#define PIER_BASELINE_STREAMING_ER_BASE_H_

#include <vector>

#include "blocking/block_collection.h"
#include "model/profile_store.h"
#include "model/token_dictionary.h"
#include "stream/er_algorithm.h"
#include "text/tokenizer.h"

namespace pier {

class StreamingErBase : public ErAlgorithm {
 public:
  StreamingErBase(DatasetKind kind, BlockingOptions blocking)
      : blocks_(kind, blocking) {}

  const EntityProfile& Profile(ProfileId id) const override {
    return profiles_.Get(id);
  }

  const ProfileStore& profiles() const { return profiles_; }
  const BlockCollection& blocks() const { return blocks_; }

 protected:
  // Tokenizes, stores, and blocks the increment; returns the delta ids
  // and accumulates work stats.
  std::vector<ProfileId> IngestToStore(std::vector<EntityProfile> profiles,
                                       WorkStats* stats) {
    std::vector<ProfileId> delta;
    delta.reserve(profiles.size());
    for (auto& profile : profiles) {
      tokenizer_.TokenizeProfile(profile, dictionary_);
      stats->tokens += profile.tokens.size();
      ++stats->profiles;
      delta.push_back(profile.id);
      stats->block_updates += blocks_.AddProfile(profile);
      profiles_.Add(std::move(profile));
    }
    return delta;
  }

  TokenDictionary dictionary_;
  ProfileStore profiles_;
  BlockCollection blocks_;
  Tokenizer tokenizer_;
};

}  // namespace pier

#endif  // PIER_BASELINE_STREAMING_ER_BASE_H_
