// Shared machinery for the baseline algorithms: every baseline owns
// its own dictionary / profile store / block collection and ingests
// increments the same way the PIER pipeline does (tokenize, store,
// block); they differ in what happens afterwards.

#ifndef PIER_BASELINE_STREAMING_ER_BASE_H_
#define PIER_BASELINE_STREAMING_ER_BASE_H_

#include <sstream>
#include <string>
#include <vector>

#include "blocking/block_collection.h"
#include "model/profile_store.h"
#include "model/token_dictionary.h"
#include "persist/snapshot.h"
#include "stream/er_algorithm.h"
#include "text/tokenizer.h"

namespace pier {

class StreamingErBase : public ErAlgorithm {
 public:
  StreamingErBase(DatasetKind kind, BlockingOptions blocking)
      : blocks_(kind, blocking) {}

  const EntityProfile& Profile(ProfileId id) const override {
    return profiles_.Get(id);
  }

  const ProfileStore& profiles() const { return profiles_; }
  const BlockCollection& blocks() const { return blocks_; }

 protected:
  // Tokenizes, stores, and blocks the increment; returns the delta ids
  // and accumulates work stats.
  std::vector<ProfileId> IngestToStore(std::vector<EntityProfile> profiles,
                                       WorkStats* stats) {
    std::vector<ProfileId> delta;
    delta.reserve(profiles.size());
    for (auto& profile : profiles) {
      tokenizer_.TokenizeProfile(profile, dictionary_);
      stats->tokens += profile.tokens().size();
      ++stats->profiles;
      delta.push_back(profile.id);
      stats->block_updates += blocks_.AddProfile(profile);
      profiles_.Add(std::move(profile));
    }
    return delta;
  }

  // Checkpoint support for the shared ingest state: writes the
  // `base.dictionary` / `base.profiles` / `base.blocks` sections.
  // Subclasses call this from Snapshot() and add their own section.
  void SnapshotBase(persist::SnapshotBuilder& builder) const {
    dictionary_.Snapshot(builder.AddSection("base.dictionary"));
    profiles_.Snapshot(builder.AddSection("base.profiles"));
    blocks_.Snapshot(builder.AddSection("base.blocks"));
  }

  // Restores the base.* sections into this freshly constructed
  // baseline; false with *error set on any decode failure.
  bool RestoreBase(const persist::SnapshotReader& reader,
                   std::string* error) {
    std::istringstream section;
    if (!reader.Open("base.dictionary", &section, error)) return false;
    if (!dictionary_.Restore(section)) {
      if (error != nullptr) *error = "section 'base.dictionary' failed to decode";
      return false;
    }
    if (!reader.Open("base.profiles", &section, error)) return false;
    if (!profiles_.Restore(section)) {
      if (error != nullptr) *error = "section 'base.profiles' failed to decode";
      return false;
    }
    if (!reader.Open("base.blocks", &section, error)) return false;
    if (!blocks_.Restore(section)) {
      if (error != nullptr) *error = "section 'base.blocks' failed to decode";
      return false;
    }
    return true;
  }

  TokenDictionary dictionary_;
  ProfileStore profiles_;
  BlockCollection blocks_;
  Tokenizer tokenizer_;
};

}  // namespace pier

#endif  // PIER_BASELINE_STREAMING_ER_BASE_H_
