#include "blocking/attribute_clustering.h"

#include <algorithm>
#include <string>
#include <string_view>

namespace pier {

namespace {

double VocabularyJaccard(const std::unordered_set<std::string>& a,
                         const std::unordered_set<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const auto& smaller = a.size() <= b.size() ? a : b;
  const auto& larger = a.size() <= b.size() ? b : a;
  size_t common = 0;
  for (const auto& token : smaller) {
    if (larger.count(token)) ++common;
  }
  return static_cast<double>(common) /
         static_cast<double>(a.size() + b.size() - common);
}

}  // namespace

void AttributeClusterer::Fit(const std::vector<EntityProfile>& sample) {
  // 1. Per (source, attribute name): the value-token vocabulary.
  struct NameStats {
    SourceId source = 0;
    std::unordered_set<std::string> vocabulary;
  };
  std::unordered_map<std::string, NameStats> stats[2];
  const Tokenizer tokenizer;
  for (const auto& profile : sample) {
    profile.ForEachAttribute([&](std::string_view name,
                                 std::string_view value) {
      NameStats& entry = stats[profile.source][std::string(name)];
      entry.source = profile.source;
      if (entry.vocabulary.size() >= options_.max_vocabulary) return;
      for (auto& token : tokenizer.Split(value)) {
        entry.vocabulary.insert(std::move(token));
        if (entry.vocabulary.size() >= options_.max_vocabulary) break;
      }
    });
  }

  // 2. Cross-source best-match attachment with union-find grouping.
  std::vector<std::string> names;
  std::unordered_map<std::string, size_t> name_index;  // name -> node
  auto node_of = [&](const std::string& name) {
    auto [it, inserted] = name_index.try_emplace(name, names.size());
    if (inserted) names.push_back(name);
    return it->second;
  };
  std::vector<size_t> parent;
  auto find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const SourceId s : {SourceId{0}, SourceId{1}}) {
    for (const auto& [name, entry] : stats[s]) node_of(name);
  }
  parent.resize(names.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;

  std::unordered_set<size_t> attached;
  for (const SourceId s : {SourceId{0}, SourceId{1}}) {
    const SourceId other = static_cast<SourceId>(1 - s);
    for (const auto& [name, entry] : stats[s]) {
      double best = 0.0;
      const std::string* best_name = nullptr;
      for (const auto& [candidate, candidate_entry] : stats[other]) {
        const double sim =
            VocabularyJaccard(entry.vocabulary, candidate_entry.vocabulary);
        if (sim > best) {
          best = sim;
          best_name = &candidate;
        }
      }
      if (best_name != nullptr && best >= options_.similarity_threshold) {
        const size_t a = find(node_of(name));
        const size_t b = find(node_of(*best_name));
        parent[a] = b;
        attached.insert(node_of(name));
        attached.insert(node_of(*best_name));
      }
    }
  }

  // 3. Assign dense cluster ids; unattached names -> glue cluster 0.
  clusters_.clear();
  std::unordered_map<size_t, uint32_t> root_cluster;
  uint32_t next_cluster = 1;
  for (size_t i = 0; i < names.size(); ++i) {
    if (!attached.count(i)) {
      clusters_[names[i]] = 0;
      continue;
    }
    const size_t root = find(i);
    auto [it, inserted] = root_cluster.try_emplace(root, next_cluster);
    if (inserted) ++next_cluster;
    clusters_[names[i]] = it->second;
  }
  num_clusters_ = next_cluster;
  fitted_ = true;
}

uint32_t AttributeClusterer::ClusterOf(
    const std::string& attribute_name) const {
  const auto it = clusters_.find(attribute_name);
  return it == clusters_.end() ? 0 : it->second;
}

std::vector<std::string> AttributeClusterer::QualifyTokens(
    const EntityProfile& profile, const Tokenizer& tokenizer) const {
  std::vector<std::string> qualified;
  profile.ForEachAttribute([&](std::string_view name,
                               std::string_view value) {
    const uint32_t cluster = ClusterOf(std::string(name));
    for (const auto& token : tokenizer.Split(value)) {
      qualified.push_back(std::to_string(cluster) + "#" + token);
    }
  });
  std::sort(qualified.begin(), qualified.end());
  qualified.erase(std::unique(qualified.begin(), qualified.end()),
                  qualified.end());
  return qualified;
}

}  // namespace pier
