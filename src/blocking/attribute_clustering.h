// Attribute-clustering blocking (Papadakis et al. [25, 29]): for
// highly heterogeneous Clean-Clean sources, plain token blocking
// conflates tokens from semantically unrelated attributes (a year in
// "founded" vs in "runtime"). Attribute clustering groups attribute
// *names* whose value-token distributions are similar across sources
// and qualifies every blocking key with its cluster, splitting blocks
// along attribute semantics and raising blocking precision without any
// schema alignment.
//
// Usage: Fit() on an initial sample of profiles, then QualifyTokens()
// while tokenizing. Names unseen at fit time fall into a glue cluster
// so recall never drops to zero for them.

#ifndef PIER_BLOCKING_ATTRIBUTE_CLUSTERING_H_
#define PIER_BLOCKING_ATTRIBUTE_CLUSTERING_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "model/entity_profile.h"
#include "text/tokenizer.h"

namespace pier {

struct AttributeClustererOptions {
  // Minimum token-set Jaccard similarity between two attribute names'
  // value vocabularies for them to share a cluster.
  double similarity_threshold = 0.2;
  // Per-attribute vocabulary sample cap (memory bound).
  size_t max_vocabulary = 2048;
};

class AttributeClusterer {
 public:
  explicit AttributeClusterer(
      AttributeClustererOptions options = AttributeClustererOptions())
      : options_(options) {}

  // Learns clusters from a sample of profiles (both sources). Each
  // attribute name maps to the cluster of its most similar name from
  // the *other* source (the standard cross-source attachment), with
  // transitive grouping via union-find; names without a sufficiently
  // similar counterpart join the glue cluster 0.
  void Fit(const std::vector<EntityProfile>& sample);

  bool fitted() const { return fitted_; }
  size_t num_clusters() const { return num_clusters_; }

  // Cluster of an attribute name (0 = glue cluster, also for unseen
  // names).
  uint32_t ClusterOf(const std::string& attribute_name) const;

  // Produces the qualified token strings of a profile: each value
  // token becomes "<cluster>#<token>".
  std::vector<std::string> QualifyTokens(const EntityProfile& profile,
                                         const Tokenizer& tokenizer) const;

 private:
  AttributeClustererOptions options_;
  bool fitted_ = false;
  size_t num_clusters_ = 1;  // cluster 0 is the glue cluster
  std::unordered_map<std::string, uint32_t> clusters_;
};

}  // namespace pier

#endif  // PIER_BLOCKING_ATTRIBUTE_CLUSTERING_H_
