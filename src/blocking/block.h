// A block of the schema-agnostic token-blocking scheme: all profiles
// whose values contain a given token. Members are kept per source so
// Clean-Clean ER can generate cross-source pairs only.

#ifndef PIER_BLOCKING_BLOCK_H_
#define PIER_BLOCKING_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "model/types.h"

namespace pier {

// Non-owning view of a block's member lists, the form BlockCollection
// serves (the members themselves live in its PostingPool). Valid until
// the collection next mutates; cheap to copy by value. Mirrors Block's
// read interface exactly.
struct BlockView {
  std::span<const ProfileId> members[2];

  size_t size() const { return members[0].size() + members[1].size(); }
  bool empty() const { return members[0].empty() && members[1].empty(); }

  ProfileId member(size_t i) const {
    return i < members[0].size() ? members[0][i]
                                 : members[1][i - members[0].size()];
  }

  uint64_t NumComparisons(DatasetKind kind) const {
    if (kind == DatasetKind::kCleanClean) {
      return static_cast<uint64_t>(members[0].size()) * members[1].size();
    }
    const uint64_t n = size();
    return n * (n - 1) / 2;
  }

  uint64_t NumNewComparisons(DatasetKind kind, SourceId source) const {
    if (kind == DatasetKind::kCleanClean) {
      return members[1 - source].size();
    }
    return size() - 1;
  }
};

struct Block {
  // members[s] holds the profile ids of source s, in arrival order.
  // Loaders may bucket Dirty-ER records under either source label
  // (e.g. a two-source CSV replayed as a dirty stream), so dirty
  // comparisons must span both lists -- use member() to enumerate the
  // virtual concatenation.
  std::vector<ProfileId> members[2];

  size_t size() const { return members[0].size() + members[1].size(); }
  bool empty() const { return members[0].empty() && members[1].empty(); }

  // The i-th member of the virtual concatenation members[0] ++
  // members[1], for i in [0, size()).
  ProfileId member(size_t i) const {
    return i < members[0].size() ? members[0][i]
                                 : members[1][i - members[0].size()];
  }

  // Number of pairwise comparisons the block yields (||b|| in the
  // paper): all pairs for Dirty ER, cross-source pairs for Clean-Clean.
  uint64_t NumComparisons(DatasetKind kind) const {
    if (kind == DatasetKind::kCleanClean) {
      return static_cast<uint64_t>(members[0].size()) * members[1].size();
    }
    const uint64_t n = size();
    return n * (n - 1) / 2;
  }

  // Number of *new* comparisons created when one more profile of
  // `source` joins the block (with the profile already appended).
  uint64_t NumNewComparisons(DatasetKind kind, SourceId source) const {
    if (kind == DatasetKind::kCleanClean) {
      return members[1 - source].size();
    }
    return size() - 1;
  }
};

}  // namespace pier

#endif  // PIER_BLOCKING_BLOCK_H_
