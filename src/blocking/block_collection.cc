#include "blocking/block_collection.h"

namespace pier {

size_t BlockCollection::AddProfile(const EntityProfile& profile) {
  PIER_CHECK(profile.source < 2);
  for (const TokenId token : profile.tokens) {
    if (token >= blocks_.size()) blocks_.resize(token + 1);
    Block& b = blocks_[token];
    if (b.empty()) ++num_nonempty_;
    b.members[profile.source].push_back(profile.id);
  }
  return profile.tokens.size();
}

bool BlockCollection::IsActive(TokenId id) const {
  if (id >= blocks_.size()) return false;
  const Block& b = blocks_[id];
  if (b.size() < 2) return false;
  if (IsPurged(id)) return false;
  if (kind_ == DatasetKind::kCleanClean &&
      (b.members[0].empty() || b.members[1].empty())) {
    return false;
  }
  return true;
}

uint64_t BlockCollection::TotalComparisons() const {
  uint64_t total = 0;
  for (TokenId id = 0; id < blocks_.size(); ++id) {
    if (IsActive(id)) total += blocks_[id].NumComparisons(kind_);
  }
  return total;
}

}  // namespace pier
