#include "blocking/block_collection.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>

#include "util/serial.h"

namespace pier {

size_t BlockCollection::AddProfile(const EntityProfile& profile) {
  PIER_CHECK(profile.source < 2);
  for (const TokenId token : profile.tokens()) {
    if (token >= blocks_.size()) blocks_.resize(token + 1);
    Slot& slot = blocks_[token];
    if (SlotSize(slot) == 0) ++num_nonempty_;
    pool_.Append(&slot.lists[profile.source], profile.id);
  }
  total_members_ += profile.tokens().size();
  return profile.tokens().size();
}

size_t BlockCollection::RemoveProfile(const EntityProfile& profile) {
  PIER_CHECK(profile.source < 2);
  size_t updates = 0;
  for (const TokenId token : profile.tokens()) {
    PIER_CHECK(token < blocks_.size());
    Slot& slot = blocks_[token];
    PostingList& list = slot.lists[profile.source];
    const std::span<const ProfileId> members = list.view();
    const auto it = std::find(members.begin(), members.end(), profile.id);
    PIER_CHECK(it != members.end());
    pool_.RemoveAt(&list, static_cast<size_t>(it - members.begin()));
    if (SlotSize(slot) == 0) --num_nonempty_;
    --total_members_;
    ++updates;
  }
  return updates;
}

bool BlockCollection::IsActive(TokenId id) const {
  if (id >= blocks_.size()) return false;
  const Slot& slot = blocks_[id];
  if (SlotSize(slot) < 2) return false;
  if (IsPurged(id)) return false;
  if (kind_ == DatasetKind::kCleanClean &&
      (slot.lists[0].size == 0 || slot.lists[1].size == 0)) {
    return false;
  }
  return true;
}

uint64_t BlockCollection::TotalComparisons() const {
  uint64_t total = 0;
  for (TokenId id = 0; id < blocks_.size(); ++id) {
    if (IsActive(id)) total += block(id).NumComparisons(kind_);
  }
  return total;
}

size_t BlockCollection::ApproxMemoryBytes() const {
  return blocks_.capacity() * sizeof(Slot) + pool_.ApproxMemoryBytes();
}

void BlockCollection::Snapshot(std::ostream& out) const {
  // Wire format identical to the pre-pool layout (a length-prefixed
  // u32 vector per source per slot).
  serial::WriteU8(out, static_cast<uint8_t>(kind_));
  serial::WriteU64(out, options_.max_block_size);
  serial::WriteU64(out, blocks_.size());
  for (const Slot& slot : blocks_) {
    for (const PostingList& list : slot.lists) {
      serial::WriteU64(out, list.size);
      for (const ProfileId id : list.view()) serial::WriteU32(out, id);
    }
  }
}

bool BlockCollection::Restore(std::istream& in) {
  if (!blocks_.empty()) return false;
  uint8_t kind = 0;
  uint64_t max_block_size = 0;
  uint64_t num_slots = 0;
  if (!serial::ReadU8(in, &kind) || !serial::ReadU64(in, &max_block_size) ||
      !serial::ReadU64(in, &num_slots)) {
    return false;
  }
  if (kind != static_cast<uint8_t>(kind_) ||
      max_block_size != options_.max_block_size) {
    return false;
  }
  std::vector<Slot> blocks;
  PostingPool pool;
  size_t nonempty = 0;
  size_t members = 0;
  std::vector<ProfileId> scratch;
  for (uint64_t i = 0; i < num_slots; ++i) {
    // Grow incrementally so a corrupt slot count fails on stream
    // exhaustion instead of one huge allocation.
    Slot slot;
    for (PostingList& list : slot.lists) {
      if (!serial::ReadVec(in, &scratch, serial::ReadU32)) return false;
      list = pool.Adopt(scratch);
    }
    if (SlotSize(slot) > 0) ++nonempty;
    members += SlotSize(slot);
    blocks.push_back(slot);
  }
  blocks_ = std::move(blocks);
  pool_ = std::move(pool);
  num_nonempty_ = nonempty;
  total_members_ = members;
  return true;
}

}  // namespace pier
