#include "blocking/block_collection.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>

#include "util/serial.h"

namespace pier {

size_t BlockCollection::AddProfile(const EntityProfile& profile) {
  PIER_CHECK(profile.source < 2);
  for (const TokenId token : profile.tokens) {
    if (token >= blocks_.size()) blocks_.resize(token + 1);
    Block& b = blocks_[token];
    if (b.empty()) ++num_nonempty_;
    b.members[profile.source].push_back(profile.id);
  }
  total_members_ += profile.tokens.size();
  return profile.tokens.size();
}

size_t BlockCollection::RemoveProfile(const EntityProfile& profile) {
  PIER_CHECK(profile.source < 2);
  size_t updates = 0;
  for (const TokenId token : profile.tokens) {
    PIER_CHECK(token < blocks_.size());
    Block& b = blocks_[token];
    std::vector<ProfileId>& members = b.members[profile.source];
    auto it = std::find(members.begin(), members.end(), profile.id);
    PIER_CHECK(it != members.end());
    members.erase(it);
    if (b.empty()) --num_nonempty_;
    --total_members_;
    ++updates;
  }
  return updates;
}

bool BlockCollection::IsActive(TokenId id) const {
  if (id >= blocks_.size()) return false;
  const Block& b = blocks_[id];
  if (b.size() < 2) return false;
  if (IsPurged(id)) return false;
  if (kind_ == DatasetKind::kCleanClean &&
      (b.members[0].empty() || b.members[1].empty())) {
    return false;
  }
  return true;
}

uint64_t BlockCollection::TotalComparisons() const {
  uint64_t total = 0;
  for (TokenId id = 0; id < blocks_.size(); ++id) {
    if (IsActive(id)) total += blocks_[id].NumComparisons(kind_);
  }
  return total;
}

size_t BlockCollection::ApproxMemoryBytes() const {
  return blocks_.capacity() * sizeof(Block) +
         total_members_ * sizeof(ProfileId);
}

void BlockCollection::Snapshot(std::ostream& out) const {
  serial::WriteU8(out, static_cast<uint8_t>(kind_));
  serial::WriteU64(out, options_.max_block_size);
  serial::WriteU64(out, blocks_.size());
  for (const Block& b : blocks_) {
    serial::WriteVec(out, b.members[0], serial::WriteU32);
    serial::WriteVec(out, b.members[1], serial::WriteU32);
  }
}

bool BlockCollection::Restore(std::istream& in) {
  if (!blocks_.empty()) return false;
  uint8_t kind = 0;
  uint64_t max_block_size = 0;
  uint64_t num_slots = 0;
  if (!serial::ReadU8(in, &kind) || !serial::ReadU64(in, &max_block_size) ||
      !serial::ReadU64(in, &num_slots)) {
    return false;
  }
  if (kind != static_cast<uint8_t>(kind_) ||
      max_block_size != options_.max_block_size) {
    return false;
  }
  std::vector<Block> blocks;
  size_t nonempty = 0;
  size_t members = 0;
  for (uint64_t i = 0; i < num_slots; ++i) {
    // Grow incrementally so a corrupt slot count fails on stream
    // exhaustion instead of one huge allocation.
    Block b;
    if (!serial::ReadVec(in, &b.members[0], serial::ReadU32) ||
        !serial::ReadVec(in, &b.members[1], serial::ReadU32)) {
      return false;
    }
    if (!b.empty()) ++nonempty;
    members += b.size();
    blocks.push_back(std::move(b));
  }
  blocks_ = std::move(blocks);
  num_nonempty_ = nonempty;
  total_members_ = members;
  return true;
}

}  // namespace pier
