// Incrementally maintained token-blocking collection (the
// "Incremental Blocking" framework component, Section 3.2): each
// distinct token of any attribute value defines one block; a new
// profile is appended to the block of every token it contains.
//
// Block purging (block cleaning from [17]) is built in: blocks whose
// size exceeds max_block_size are excluded from comparison generation.
// Since blocks only ever grow, a block can become purged over the
// stream's lifetime -- exactly the incremental behaviour of [17].

#ifndef PIER_BLOCKING_BLOCK_COLLECTION_H_
#define PIER_BLOCKING_BLOCK_COLLECTION_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "blocking/block.h"
#include "blocking/posting_pool.h"
#include "model/entity_profile.h"
#include "model/types.h"
#include "util/check.h"

namespace pier {

struct BlockingOptions {
  // Blocks with more members than this are purged (never generate
  // comparisons). 0 disables purging.
  size_t max_block_size = 1000;
};

class BlockCollection {
 public:
  explicit BlockCollection(DatasetKind kind,
                           BlockingOptions options = BlockingOptions())
      : kind_(kind), options_(options) {}

  BlockCollection(const BlockCollection&) = delete;
  BlockCollection& operator=(const BlockCollection&) = delete;

  // Appends the (already tokenized) profile to the block of each of
  // its tokens. Returns the number of block updates performed.
  size_t AddProfile(const EntityProfile& profile);

  // Removes the profile from the block of each of its tokens (mutable
  // streams: deletes and corrections). The profile must still carry
  // the token list it was added with. Arrival order of the remaining
  // members is preserved. Returns the number of block updates. A block
  // that shrinks back under the purging threshold becomes un-purged
  // automatically (IsPurged is computed from the live size).
  size_t RemoveProfile(const EntityProfile& profile);

  // The block keyed by token `id`; valid for any id < capacity, blocks
  // for never-seen tokens are empty. Returned by value: the view
  // aliases the posting pool and stays valid until the collection next
  // mutates (all readers run quiesced against ingest).
  BlockView block(TokenId id) const {
    PIER_DCHECK(id < blocks_.size());
    const Slot& slot = blocks_[id];
    return {{slot.lists[0].view(), slot.lists[1].view()}};
  }

  bool HasBlock(TokenId id) const { return id < blocks_.size(); }

  // True iff the block may generate comparisons: at least 2 members,
  // not purged, and (Clean-Clean) members from both sources.
  bool IsActive(TokenId id) const;

  // True iff the block exceeded the purging threshold.
  bool IsPurged(TokenId id) const {
    return options_.max_block_size != 0 &&
           SlotSize(blocks_[id]) > options_.max_block_size;
  }

  DatasetKind kind() const { return kind_; }
  const BlockingOptions& options() const { return options_; }

  // Number of token slots (upper bound on block count).
  size_t NumSlots() const { return blocks_.size(); }

  // Number of non-empty blocks.
  size_t NumBlocks() const { return num_nonempty_; }

  // Total comparisons over all active blocks (with multiplicity across
  // blocks; the "BC" blocking cardinality).
  uint64_t TotalComparisons() const;

  // Heap footprint estimate: the block-slot vector plus the posting
  // pool's allocated chunks (which hold every member list).
  size_t ApproxMemoryBytes() const;

  // The pool owning all member lists; exposed read-only for memory
  // accounting and the layout tests.
  const PostingPool& pool() const { return pool_; }

  // Serializes kind, purging threshold, and every block slot in token
  // order.
  void Snapshot(std::ostream& out) const;

  // Restores a Snapshot payload into this collection, which must be
  // empty and configured with the same kind and options (the snapshot
  // carries both as a fingerprint). Returns false on decode failure or
  // fingerprint mismatch.
  bool Restore(std::istream& in);

 private:
  // One block: a pooled posting list per source. 32 bytes per token
  // slot, zero owned heap allocations.
  struct Slot {
    PostingList lists[2];
  };

  static size_t SlotSize(const Slot& slot) {
    return static_cast<size_t>(slot.lists[0].size) + slot.lists[1].size;
  }

  DatasetKind kind_;
  BlockingOptions options_;
  std::vector<Slot> blocks_;
  PostingPool pool_;
  size_t num_nonempty_ = 0;
  size_t total_members_ = 0;  // sum of live block sizes
};

}  // namespace pier

#endif  // PIER_BLOCKING_BLOCK_COLLECTION_H_
