#include "blocking/block_ghosting.h"

#include <limits>

#include "util/check.h"

namespace pier {

std::vector<TokenId> GhostBlocks(const BlockCollection& blocks,
                                 const EntityProfile& profile, double beta) {
  PIER_CHECK(beta > 0.0 && beta <= 1.0);
  size_t min_size = std::numeric_limits<size_t>::max();
  for (const TokenId token : profile.tokens) {
    if (!blocks.IsActive(token)) continue;
    const size_t size = blocks.block(token).size();
    if (size < min_size) min_size = size;
  }
  std::vector<TokenId> retained;
  if (min_size == std::numeric_limits<size_t>::max()) return retained;
  const double limit = static_cast<double>(min_size) / beta;
  for (const TokenId token : profile.tokens) {
    if (!blocks.IsActive(token)) continue;
    if (static_cast<double>(blocks.block(token).size()) <= limit) {
      retained.push_back(token);
    }
  }
  return retained;
}

}  // namespace pier
