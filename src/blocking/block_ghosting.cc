#include "blocking/block_ghosting.h"

#include <limits>

#include "util/check.h"

namespace pier {

void GhostBlocks(const BlockCollection& blocks, const EntityProfile& profile,
                 double beta, std::vector<TokenId>* retained) {
  PIER_CHECK(beta > 0.0 && beta <= 1.0);
  retained->clear();
  // One pass over the block array: collect the active candidates with
  // their sizes (the size list rides in a thread-local scratch, so the
  // steady state allocates nothing), then apply the ghosting limit
  // without touching the blocks again -- the block slots are scattered
  // through a large array, so the second pass of the naive two-pass
  // formulation is mostly cache misses.
  static thread_local std::vector<size_t> sizes;
  sizes.clear();
  // The activity test is inlined against a single block reference:
  // IsActive + IsPurged + size() would fetch the same slot three
  // times, and this loop is the hottest block-array traversal in the
  // pipeline (once per token of every ingested profile).
  const size_t max_block_size = blocks.options().max_block_size;
  const bool clean_clean = blocks.kind() == DatasetKind::kCleanClean;
  size_t min_size = std::numeric_limits<size_t>::max();
  for (const TokenId token : profile.tokens()) {
    if (!blocks.HasBlock(token)) continue;
    const BlockView b = blocks.block(token);
    const size_t size = b.size();
    if (size < 2) continue;
    if (max_block_size != 0 && size > max_block_size) continue;  // purged
    if (clean_clean && (b.members[0].empty() || b.members[1].empty())) {
      continue;
    }
    retained->push_back(token);
    sizes.push_back(size);
    if (size < min_size) min_size = size;
  }
  if (retained->empty()) return;
  const double limit = static_cast<double>(min_size) / beta;
  size_t kept = 0;
  for (size_t i = 0; i < retained->size(); ++i) {
    if (static_cast<double>(sizes[i]) <= limit) {
      (*retained)[kept++] = (*retained)[i];
    }
  }
  retained->resize(kept);
}

std::vector<TokenId> GhostBlocks(const BlockCollection& blocks,
                                 const EntityProfile& profile, double beta) {
  std::vector<TokenId> retained;
  GhostBlocks(blocks, profile, beta, &retained);
  return retained;
}

}  // namespace pier
