// Block ghosting (incremental block cleaning from [17], used by I-PCS
// and I-PES, Algorithm 2 line 5): of the blocks B_x containing a new
// profile p_x, keep only the most representative ones -- those whose
// size does not exceed |b_min| / beta, where b_min is the smallest
// active block of B_x and beta is in (0, 1]. beta = 1 keeps only
// minimum-size blocks; smaller beta keeps more.

#ifndef PIER_BLOCKING_BLOCK_GHOSTING_H_
#define PIER_BLOCKING_BLOCK_GHOSTING_H_

#include <vector>

#include "blocking/block_collection.h"
#include "model/entity_profile.h"
#include "model/types.h"

namespace pier {

// Returns the token ids of the retained blocks of `profile`, i.e. the
// ghosted B_x. Purged and inactive blocks are dropped before the size
// test. The result preserves token order.
std::vector<TokenId> GhostBlocks(const BlockCollection& blocks,
                                 const EntityProfile& profile, double beta);

// Allocation-free variant for the per-profile hot path: fills
// `*retained` (cleared first) with the same token sequence the
// returning overload produces, visiting each block slot once instead
// of twice. Long-lived callers (the prioritizers) pass a reused
// member buffer so steady-state ghosting performs no allocation.
void GhostBlocks(const BlockCollection& blocks, const EntityProfile& profile,
                 double beta, std::vector<TokenId>* retained);

}  // namespace pier

#endif  // PIER_BLOCKING_BLOCK_GHOSTING_H_
