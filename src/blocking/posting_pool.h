// Pooled posting lists for the block collection: every block's member
// list lives in one shared, chunked ProfileId pool instead of its own
// heap vector. A list is a (pointer, size, capacity) view; growth
// re-allocates the list at the pool tail with amortized doubling and
// abandons the old region (chunks are never freed or relocated, the
// same address-stability trick as model/arena.h).
//
// Why: at paper scale the collection holds hundreds of thousands of
// mostly tiny blocks. Per-block vectors cost two heap allocations plus
// allocator headers each and scatter the members across the heap; the
// pool packs them into a handful of large chunks, which is both
// smaller and much faster to append to (no malloc on the hot path
// until a list outgrows its region).
//
// Threading: single-writer, like the collection that owns it. Readers
// obtain std::span views that stay valid (and immutable) until the
// owning list next grows; the ingest loop is serialized against all
// block readers (see BlockCollection).

#ifndef PIER_BLOCKING_POSTING_POOL_H_
#define PIER_BLOCKING_POSTING_POOL_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "model/types.h"
#include "util/check.h"

namespace pier {

// One block's member list for one source. Plain view record; all
// mutation goes through the pool.
struct PostingList {
  ProfileId* data = nullptr;
  uint32_t size = 0;
  uint32_t capacity = 0;

  std::span<const ProfileId> view() const { return {data, size}; }
};

class PostingPool {
 public:
  // 64Ki ids per chunk (256KB). Oversized lists get an exact-size
  // chunk of their own.
  static constexpr size_t kChunkItems = size_t{1} << 16;

  PostingPool() = default;
  PostingPool(const PostingPool&) = delete;
  PostingPool& operator=(const PostingPool&) = delete;
  PostingPool(PostingPool&&) noexcept = default;
  PostingPool& operator=(PostingPool&&) noexcept = default;

  // Appends `id` to `list`, growing it (doubling, via a fresh pool
  // region) when full. The old region is abandoned, never reused.
  void Append(PostingList* list, ProfileId id) {
    if (list->size == list->capacity) Grow(list);
    list->data[list->size++] = id;
  }

  // Removes the element at index `i`, preserving order (mutable
  // streams revive arrival order on replay). Capacity is kept.
  void RemoveAt(PostingList* list, size_t i) {
    PIER_DCHECK(i < list->size);
    std::memmove(list->data + i, list->data + i + 1,
                 (list->size - i - 1) * sizeof(ProfileId));
    --list->size;
    ++abandoned_items_;
  }

  // Allocates an exact-capacity list and fills it (snapshot restore).
  PostingList Adopt(const std::vector<ProfileId>& members) {
    PostingList list;
    if (members.empty()) return list;
    list.data = Allocate(members.size());
    list.size = list.capacity = static_cast<uint32_t>(members.size());
    std::memcpy(list.data, members.data(), members.size() * sizeof(ProfileId));
    return list;
  }

  // Bytes actually allocated in chunks (the collection's share of the
  // memory accounting).
  size_t ApproxMemoryBytes() const {
    size_t bytes = chunks_.capacity() * sizeof(Chunk);
    for (const Chunk& c : chunks_) bytes += c.capacity * sizeof(ProfileId);
    return bytes;
  }

  // Ids allocated (live + doubling waste + abandoned regions).
  size_t total_items() const { return total_items_; }
  // Ids dead via list growth or removal.
  size_t abandoned_items() const { return abandoned_items_; }
  size_t num_chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<ProfileId[]> data;
    size_t capacity = 0;
  };

  ProfileId* Allocate(size_t len) {
    if (chunks_.empty() || used_ + len > chunks_.back().capacity) {
      if (!chunks_.empty()) {
        abandoned_items_ += chunks_.back().capacity - used_;
      }
      Chunk chunk;
      chunk.capacity = len > kChunkItems ? len : kChunkItems;
      chunk.data.reset(new ProfileId[chunk.capacity]);
      chunks_.push_back(std::move(chunk));
      used_ = 0;
    }
    ProfileId* out = chunks_.back().data.get() + used_;
    used_ += len;
    total_items_ += len;
    return out;
  }

  void Grow(PostingList* list) {
    const uint32_t capacity = list->capacity == 0 ? 2 : list->capacity * 2;
    ProfileId* data = Allocate(capacity);
    if (list->size > 0) {
      std::memcpy(data, list->data, list->size * sizeof(ProfileId));
      abandoned_items_ += list->capacity;
    }
    list->data = data;
    list->capacity = capacity;
  }

  std::vector<Chunk> chunks_;
  size_t used_ = 0;  // ids used in chunks_.back()
  size_t total_items_ = 0;
  size_t abandoned_items_ = 0;
};

}  // namespace pier

#endif  // PIER_BLOCKING_POSTING_POOL_H_
