#include "core/block_scanner.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "metablocking/weighting.h"
#include "util/serial.h"

namespace pier {

void BlockScanner::Rebuild() {
  order_.clear();
  const BlockCollection& blocks = *ctx_.blocks;
  if (scanned_size_.size() < blocks.NumSlots()) {
    scanned_size_.resize(blocks.NumSlots(), 0);
  }
  for (TokenId token = 0; token < blocks.NumSlots(); ++token) {
    if (!blocks.IsActive(token)) continue;
    const uint32_t size = static_cast<uint32_t>(blocks.block(token).size());
    const uint32_t scanned = scanned_size_[token];
    if (size <= scanned) continue;  // nothing new
    if (!full_rescan_ && scanned > 0) {
      // Growth throttle: wait for >= 2 new members and >= 12.5%.
      const uint32_t min_growth = std::max<uint32_t>(2, scanned / 8);
      if (size < scanned + min_growth) continue;
    }
    order_.emplace_back(size, token);
  }
  std::sort(order_.begin(), order_.end(),
            std::greater<std::pair<uint32_t, TokenId>>());
  exhausted_ = order_.empty();
}

std::vector<Comparison> BlockScanner::NextBlock(WorkStats* stats) {
  std::vector<Comparison> out;
  const BlockCollection& blocks = *ctx_.blocks;
  const ProfileStore& profiles = *ctx_.profiles;

  while (out.empty()) {
    if (order_.empty()) {
      Rebuild();
      if (order_.empty()) return out;
    }
    const TokenId token = order_.back().second;
    order_.pop_back();
    if (!blocks.IsActive(token)) continue;
    const BlockView b = blocks.block(token);
    const uint32_t bsize = static_cast<uint32_t>(b.size());
    if (scanned_size_.size() <= token) scanned_size_.resize(token + 1, 0);
    if (bsize <= scanned_size_[token]) continue;  // stale order entry
    scanned_size_[token] = bsize;

    out.reserve(static_cast<size_t>(b.NumComparisons(blocks.kind())));
    if (blocks.kind() == DatasetKind::kCleanClean) {
      for (const ProfileId x : b.members[0]) {
        for (const ProfileId y : b.members[1]) {
          out.emplace_back(x, y,
                           PairCbsWeight(profiles.Get(x), profiles.Get(y)),
                           bsize);
        }
      }
    } else {
      // Dirty: all pairs across both member lists (loaders may bucket
      // dirty records under either source label).
      for (size_t i = 0; i < bsize; ++i) {
        const ProfileId x = b.member(i);
        for (size_t j = i + 1; j < bsize; ++j) {
          const ProfileId y = b.member(j);
          out.emplace_back(x, y,
                           PairCbsWeight(profiles.Get(x), profiles.Get(y)),
                           bsize);
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->comparisons_generated += out.size();
  }
  return out;
}

void BlockScanner::Snapshot(std::ostream& out) const {
  serial::WriteVec(out, scanned_size_, serial::WriteU32);
  serial::WriteVec(out, order_,
                   [](std::ostream& o, const std::pair<uint32_t, TokenId>& e) {
                     serial::WriteU32(o, e.first);
                     serial::WriteU32(o, e.second);
                   });
  serial::WriteBool(out, exhausted_);
  serial::WriteBool(out, full_rescan_);
}

bool BlockScanner::Restore(std::istream& in) {
  std::vector<uint32_t> scanned_size;
  std::vector<std::pair<uint32_t, TokenId>> order;
  bool exhausted = false;
  bool full_rescan = false;
  if (!serial::ReadVec(in, &scanned_size, serial::ReadU32) ||
      !serial::ReadVec(in, &order,
                       [](std::istream& s, std::pair<uint32_t, TokenId>* e) {
                         return serial::ReadU32(s, &e->first) &&
                                serial::ReadU32(s, &e->second);
                       }) ||
      !serial::ReadBool(in, &exhausted) ||
      !serial::ReadBool(in, &full_rescan)) {
    return false;
  }
  scanned_size_ = std::move(scanned_size);
  order_ = std::move(order);
  exhausted_ = exhausted;
  full_rescan_ = full_rescan;
  return true;
}

}  // namespace pier
