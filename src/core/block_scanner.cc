#include "core/block_scanner.h"

#include <algorithm>

#include "metablocking/weighting.h"

namespace pier {

void BlockScanner::Rebuild() {
  order_.clear();
  const BlockCollection& blocks = *ctx_.blocks;
  if (scanned_size_.size() < blocks.NumSlots()) {
    scanned_size_.resize(blocks.NumSlots(), 0);
  }
  for (TokenId token = 0; token < blocks.NumSlots(); ++token) {
    if (!blocks.IsActive(token)) continue;
    const uint32_t size = static_cast<uint32_t>(blocks.block(token).size());
    const uint32_t scanned = scanned_size_[token];
    if (size <= scanned) continue;  // nothing new
    if (!full_rescan_ && scanned > 0) {
      // Growth throttle: wait for >= 2 new members and >= 12.5%.
      const uint32_t min_growth = std::max<uint32_t>(2, scanned / 8);
      if (size < scanned + min_growth) continue;
    }
    order_.emplace_back(size, token);
  }
  std::sort(order_.begin(), order_.end(),
            std::greater<std::pair<uint32_t, TokenId>>());
  exhausted_ = order_.empty();
}

std::vector<Comparison> BlockScanner::NextBlock(WorkStats* stats) {
  std::vector<Comparison> out;
  const BlockCollection& blocks = *ctx_.blocks;
  const ProfileStore& profiles = *ctx_.profiles;

  while (out.empty()) {
    if (order_.empty()) {
      Rebuild();
      if (order_.empty()) return out;
    }
    const TokenId token = order_.back().second;
    order_.pop_back();
    if (!blocks.IsActive(token)) continue;
    const Block& b = blocks.block(token);
    const uint32_t bsize = static_cast<uint32_t>(b.size());
    if (scanned_size_.size() <= token) scanned_size_.resize(token + 1, 0);
    if (bsize <= scanned_size_[token]) continue;  // stale order entry
    scanned_size_[token] = bsize;

    out.reserve(static_cast<size_t>(b.NumComparisons(blocks.kind())));
    if (blocks.kind() == DatasetKind::kCleanClean) {
      for (const ProfileId x : b.members[0]) {
        for (const ProfileId y : b.members[1]) {
          out.emplace_back(x, y,
                           PairCbsWeight(profiles.Get(x), profiles.Get(y)),
                           bsize);
        }
      }
    } else {
      const auto& m = b.members[0];
      for (size_t i = 0; i < m.size(); ++i) {
        for (size_t j = i + 1; j < m.size(); ++j) {
          out.emplace_back(
              m[i], m[j],
              PairCbsWeight(profiles.Get(m[i]), profiles.Get(m[j])), bsize);
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->comparisons_generated += out.size();
  }
  return out;
}

}  // namespace pier
