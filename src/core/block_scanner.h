// GetComparisons(B) (Algorithm 2, line 11): when the stream is idle
// and the CmpIndex has been drained, the prioritizers fall back to
// scanning the block collection itself, emitting each block's
// comparisons from the smallest block to the biggest. This keeps the
// matcher busy ("continuing the computation even if the index becomes
// empty and the time budget is not yet exhausted") and is what lets
// PIER reach the eventual quality of batch ER.
//
// Incremental subtlety: blocks keep growing after they were scanned.
// The scanner therefore remembers the size at which it scanned each
// block and re-offers any block that has since gained members (the
// pipeline's executed-comparison filter suppresses the pairs that were
// already compared, so only the new pairs cost matcher time).

#ifndef PIER_CORE_BLOCK_SCANNER_H_
#define PIER_CORE_BLOCK_SCANNER_H_

#include <iosfwd>
#include <utility>
#include <vector>

#include "core/prioritizer.h"
#include "model/comparison.h"

namespace pier {

class BlockScanner {
 public:
  explicit BlockScanner(PrioritizerContext ctx) : ctx_(ctx) {}

  // Returns the comparisons of the next block due for (re)scanning
  // (smallest first), weighted by CBS; empty when every active block
  // has been scanned at its current size. Blocks that became active or
  // grew after the current scan order was built are picked up by a
  // rebuild once the order is exhausted.
  std::vector<Comparison> NextBlock(WorkStats* stats);

  // True when the last rebuild found no block due for scanning.
  bool Exhausted() const { return exhausted_; }

  // While the stream is live, a block is only rescanned after
  // meaningful growth (>= 2 members and >= 12.5%), which keeps rescan
  // work near-linear. Once the stream has ended, call this to lift the
  // throttle so one final pass covers every grown block.
  void AllowFullRescan() { full_rescan_ = true; }

  // Serializes scan progress (scanned sizes, pending order, flags).
  void Snapshot(std::ostream& out) const;

  // Restores a Snapshot payload. Returns false on decode failure.
  bool Restore(std::istream& in);

 private:
  void Rebuild();

  PrioritizerContext ctx_;
  // Per token: the block size when last scanned (0 = never scanned).
  std::vector<uint32_t> scanned_size_;
  // (size, token) of blocks due for scanning, sorted descending so the
  // smallest block pops from the back.
  std::vector<std::pair<uint32_t, TokenId>> order_;
  bool exhausted_ = false;
  bool full_rescan_ = false;
};

}  // namespace pier

#endif  // PIER_CORE_BLOCK_SCANNER_H_
