#include "core/find_k.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/check.h"
#include "util/serial.h"

namespace pier {

AdaptiveK::AdaptiveK(AdaptiveKOptions options)
    : options_(options),
      interarrival_(options.window),
      cost_per_comparison_(options.window),
      k_(static_cast<double>(options.initial_k)) {
  PIER_CHECK(options_.min_k > 0 && options_.min_k <= options_.max_k);
  PIER_CHECK(options_.target_utilization > 0.0);
  PIER_CHECK(options_.gain > 0.0 && options_.gain <= 1.0);
}

void AdaptiveK::OnArrival(double t) {
  if (last_arrival_ >= 0.0 && t > last_arrival_) {
    interarrival_.Add(t - last_arrival_);
    obs::GaugeSet(interarrival_gauge_, interarrival_.Mean());
  }
  last_arrival_ = t;
}

void AdaptiveK::OnBatchProcessed(size_t comparisons, double seconds) {
  if (comparisons == 0) return;
  cost_per_comparison_.Add(seconds / static_cast<double>(comparisons));
  obs::GaugeSet(cost_gauge_, cost_per_comparison_.Mean());
}

void AdaptiveK::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    k_gauge_ = nullptr;
    interarrival_gauge_ = nullptr;
    cost_gauge_ = nullptr;
    return;
  }
  k_gauge_ = registry->GetGauge("findk.k");
  interarrival_gauge_ = registry->GetGauge("findk.mean_interarrival_s");
  cost_gauge_ = registry->GetGauge("findk.mean_cost_per_comparison_s");
}

double AdaptiveK::MeanInterarrival() const {
  return interarrival_.empty() ? 0.0 : interarrival_.Mean();
}

double AdaptiveK::MeanCostPerComparison() const {
  return cost_per_comparison_.empty() ? 0.0 : cost_per_comparison_.Mean();
}

void AdaptiveK::Snapshot(std::ostream& out) const {
  interarrival_.Snapshot(out);
  cost_per_comparison_.Snapshot(out);
  serial::WriteF64(out, last_arrival_);
  serial::WriteF64(out, k_);
}

bool AdaptiveK::Restore(std::istream& in) {
  double last_arrival = 0.0;
  double k = 0.0;
  if (!interarrival_.Restore(in) || !cost_per_comparison_.Restore(in) ||
      !serial::ReadF64(in, &last_arrival) || !serial::ReadF64(in, &k)) {
    return false;
  }
  last_arrival_ = last_arrival;
  k_ = k;
  return true;
}

size_t AdaptiveK::FindK() {
  if (!interarrival_.empty() && !cost_per_comparison_.empty() &&
      cost_per_comparison_.Mean() > 0.0) {
    const double target = interarrival_.Mean() * options_.target_utilization /
                          cost_per_comparison_.Mean();
    k_ = (1.0 - options_.gain) * k_ + options_.gain * target;
  }
  const double lo = static_cast<double>(options_.min_k);
  const double hi = static_cast<double>(options_.max_k);
  k_ = std::clamp(k_, lo, hi);
  obs::GaugeSet(k_gauge_, k_);
  return static_cast<size_t>(k_);
}

}  // namespace pier
