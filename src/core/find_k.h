// findK() (Algorithm 1, line 4): chooses how many comparisons the
// prioritizer hands to the matcher per emission, adaptively balancing
// early quality against stream consumption. The controller estimates
// the stream's inter-arrival time and the matcher's per-comparison
// cost from sliding-window averages of the latest measurements and
// sizes K so one batch fits in a fraction (target_utilization) of an
// inter-arrival period: a slow matcher therefore implies a small K, a
// fast matcher a large K, exactly the behaviour Section 3.2 describes.

#ifndef PIER_CORE_FIND_K_H_
#define PIER_CORE_FIND_K_H_

#include <cstddef>
#include <iosfwd>

#include "obs/metrics.h"
#include "util/moving_average.h"

namespace pier {

struct AdaptiveKOptions {
  size_t initial_k = 64;
  size_t min_k = 8;
  size_t max_k = 16384;
  // Number of latest measurements averaged.
  size_t window = 8;
  // Fraction of the inter-arrival budget one batch may consume; the
  // remainder absorbs blocking/prioritization work and rate jitter.
  double target_utilization = 0.5;
  // Smoothing: K_new = (1 - gain) * K_old + gain * K_target.
  double gain = 0.3;
};

class AdaptiveK {
 public:
  explicit AdaptiveK(AdaptiveKOptions options = AdaptiveKOptions());

  // Records an increment arrival at virtual time `t` (seconds).
  void OnArrival(double t);

  // Records that a batch of `comparisons` took `seconds` to match.
  void OnBatchProcessed(size_t comparisons, double seconds);

  // The K to use for the next emission.
  size_t FindK();

  double MeanInterarrival() const;
  double MeanCostPerComparison() const;

  // Registers the controller's `findk.*` gauges (chosen K and the two
  // observed rates Algorithm 1 steers on) with `registry`; pass null
  // to detach. Non-owning.
  void AttachMetrics(obs::MetricsRegistry* registry);

  // Serializes the estimator windows, last arrival time, and smoothed
  // K (raw double bits, so a restored controller emits the same K
  // sequence the uninterrupted one would).
  void Snapshot(std::ostream& out) const;

  // Restores a Snapshot payload; the recorded window size must match
  // this controller's options. Returns false on decode failure.
  bool Restore(std::istream& in);

 private:
  AdaptiveKOptions options_;
  WindowAverage interarrival_;
  WindowAverage cost_per_comparison_;
  double last_arrival_ = -1.0;
  double k_ = 0.0;

  obs::Gauge* k_gauge_ = nullptr;
  obs::Gauge* interarrival_gauge_ = nullptr;
  obs::Gauge* cost_gauge_ = nullptr;
};

}  // namespace pier

#endif  // PIER_CORE_FIND_K_H_
