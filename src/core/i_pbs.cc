#include "core/i_pbs.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>

#include "metablocking/weighting.h"
#include "util/check.h"
#include "util/serial.h"

namespace pier {

IPbs::IPbs(PrioritizerContext ctx, PrioritizerOptions options)
    : ctx_(ctx), options_(options), index_(options.cmp_index_capacity) {}

WorkStats IPbs::UpdateCmpIndex(const std::vector<ProfileId>& delta) {
  WorkStats stats;
  const BlockCollection& blocks = *ctx_.blocks;

  // Lines 1-5: fold the increment's profiles into CI and PI.
  for (const ProfileId id : delta) {
    const EntityProfile& p = ctx_.profiles->Get(id);
    for (const TokenId token : p.tokens()) {
      if (blocks.IsPurged(token)) continue;
      const BlockView b = blocks.block(token);
      const uint64_t new_comparisons =
          b.NumNewComparisons(blocks.kind(), p.source);
      auto [it, inserted] = cardinality_index_.try_emplace(token, 0);
      if (!inserted && it->second > 0) {
        min_index_.erase({it->second, token});
      }
      it->second += new_comparisons;
      if (it->second > 0) min_index_.insert({it->second, token});
      profile_index_[token].push_back(p.id);
      ++stats.block_updates;
    }
  }

  // Line 6 onwards: schedule b_min, the block yielding the fewest
  // unexecuted comparisons. On an idle tick (empty delta) with a
  // drained index we keep scheduling blocks until one actually yields
  // comparisons -- a scheduled block may contribute nothing when all
  // of its pairs were already caught by the comparison filter CF.
  do {
    // Blocks that grew past the purging threshold since their CI entry
    // was created are discarded here (incremental block purging).
    TokenId bmin_token = kInvalidTokenId;
    while (!min_index_.empty()) {
      const TokenId candidate = min_index_.begin()->second;
      if (!blocks.IsPurged(candidate)) {
        bmin_token = candidate;
        break;
      }
      min_index_.erase(min_index_.begin());
      cardinality_index_.erase(candidate);
      profile_index_.erase(candidate);
    }
    if (bmin_token == kInvalidTokenId) return stats;
    const uint32_t bmin_size =
        static_cast<uint32_t>(blocks.block(bmin_token).size());

    // Lines 7-9. The paper updates the CmpIndex "only when the
    // comparisons generated in an earlier iteration have been
    // exhausted or [to] prefer comparisons that originated from
    // smaller blocks"; we schedule b_min when the index is empty or
    // when b_min is smaller than the block that produced the current
    // top comparison (i.e. the new block would actually preempt),
    // which implements that stated intent. (Algorithm 3 line 9 prints
    // the comparison reversed, which would starve better blocks.)
    if (!index_.empty() && bmin_size >= index_.PeekMax().block_size) {
      return stats;
    }
    ScheduleBlock(bmin_token, &stats);
  } while (delta.empty() && index_.empty());
  return stats;
}

void IPbs::ScheduleBlock(TokenId token, WorkStats* stats) {
  const BlockCollection& blocks = *ctx_.blocks;
  const ProfileStore& profiles = *ctx_.profiles;
  const BlockView b = blocks.block(token);
  const uint32_t bsize = static_cast<uint32_t>(b.size());
  const DatasetKind kind = blocks.kind();

  // Lines 10-14: all non-redundant comparisons with at least one
  // unexecuted endpoint (p_x ranges over PI(b_min), p_y over the whole
  // block); CF catches both cross-block redundancy and x,y both in PI.
  const auto pi_it = profile_index_.find(token);
  if (pi_it != profile_index_.end()) {
    for (const ProfileId x : pi_it->second) {
      const EntityProfile& px = profiles.Get(x);
      const SourceId lo = kind == DatasetKind::kCleanClean
                              ? static_cast<SourceId>(1 - px.source)
                              : static_cast<SourceId>(0);
      const SourceId hi =
          kind == DatasetKind::kCleanClean ? lo : static_cast<SourceId>(1);
      for (SourceId s = lo; s <= hi; ++s) {
        for (const ProfileId y : b.members[s]) {
          if (y == x) continue;
          Comparison c(x, y, 0.0, bsize);
          if (FilterTestAndAdd(c)) continue;  // redundant
          c.weight = PairCbsWeight(px, profiles.Get(y));
          index_.PushBounded(c);
          ++stats->comparisons_generated;
          ++stats->index_ops;
        }
      }
    }
  }

  // Lines 15-16: reset the block's CI/PI entries.
  auto ci_it = cardinality_index_.find(token);
  if (ci_it != cardinality_index_.end()) {
    if (ci_it->second > 0) min_index_.erase({ci_it->second, token});
    cardinality_index_.erase(ci_it);
  }
  profile_index_.erase(token);
}

bool IPbs::FilterTestAndAdd(const Comparison& c) {
  if (!options_.mutable_stream) return comparison_filter_.TestAndAdd(c.Key());
  if (counting_filter_.TestAndAdd(c.Key())) return true;
  // Freshly inserted: record the pair so OnRetract can remove the key
  // again. Pairs are recorded exactly once per filter insert (the
  // counting-filter cells tolerate exactly one matching Remove).
  filter_pairs_.Add(c.x, c.y);
  return false;
}

bool IPbs::Dequeue(Comparison* out) {
  if (index_.empty()) return false;
  *out = index_.PopMax();
  return true;
}

void IPbs::OnRetract(ProfileId id) {
  PIER_CHECK(options_.mutable_stream);
  // PI: drop the profile from the pending lists of its blocks (its
  // tokens are still readable -- OnRetract precedes the store
  // mutation). The CI counts are a scheduling heuristic and are left
  // untouched; ScheduleBlock resets them when the block fires.
  const EntityProfile& p = ctx_.profiles->Get(id);
  for (const TokenId token : p.tokens()) {
    auto it = profile_index_.find(token);
    if (it == profile_index_.end()) continue;
    auto& list = it->second;
    const auto pos = std::find(list.begin(), list.end(), id);
    if (pos != list.end()) list.erase(pos);
    if (list.empty()) profile_index_.erase(it);
  }

  // CF: forget every scheduled pair with this endpoint so a corrected
  // profile's comparisons pass the filter again.
  for (const ProfileId partner : filter_pairs_.Take(id)) {
    counting_filter_.Remove(PairKey(id, partner));
  }

  // CmpIndex: rebuild without the retracted profile's comparisons.
  std::vector<Comparison> kept;
  kept.reserve(index_.size());
  for (const Comparison& c : index_.data()) {
    if (c.x != id && c.y != id) kept.push_back(c);
  }
  if (kept.size() == index_.size()) return;
  index_.Clear();
  for (Comparison& c : kept) index_.Push(std::move(c));
}

void IPbs::Snapshot(std::ostream& out) const {
  // CI and PI are serialized sorted by token so identical state always
  // produces identical bytes regardless of hash-map iteration order.
  std::vector<std::pair<TokenId, uint64_t>> ci(cardinality_index_.begin(),
                                               cardinality_index_.end());
  std::sort(ci.begin(), ci.end());
  serial::WriteVec(out, ci,
                   [](std::ostream& o, const std::pair<TokenId, uint64_t>& e) {
                     serial::WriteU32(o, e.first);
                     serial::WriteU64(o, e.second);
                   });

  std::vector<TokenId> pi_tokens;
  pi_tokens.reserve(profile_index_.size());
  for (const auto& [token, unused] : profile_index_) pi_tokens.push_back(token);
  std::sort(pi_tokens.begin(), pi_tokens.end());
  serial::WriteU64(out, pi_tokens.size());
  for (const TokenId token : pi_tokens) {
    serial::WriteU32(out, token);
    serial::WriteVec(out, profile_index_.at(token), serial::WriteU32);
  }

  // The active filter only; the reader branches the same way because
  // mutable_stream is part of the pipeline options fingerprint.
  if (options_.mutable_stream) {
    counting_filter_.Snapshot(out);
    filter_pairs_.Snapshot(out);
  } else {
    comparison_filter_.Snapshot(out);
  }
  serial::WriteVec(out, index_.data(), SnapshotComparison);
}

bool IPbs::Restore(std::istream& in) {
  std::vector<std::pair<TokenId, uint64_t>> ci;
  if (!serial::ReadVec(in, &ci,
                       [](std::istream& s, std::pair<TokenId, uint64_t>* e) {
                         return serial::ReadU32(s, &e->first) &&
                                serial::ReadU64(s, &e->second);
                       })) {
    return false;
  }

  uint64_t pi_count = 0;
  if (!serial::ReadU64(in, &pi_count)) return false;
  std::unordered_map<TokenId, std::vector<ProfileId>> pi;
  pi.reserve(std::min<uint64_t>(pi_count, 1u << 20));
  for (uint64_t i = 0; i < pi_count; ++i) {
    TokenId token = 0;
    std::vector<ProfileId> members;
    if (!serial::ReadU32(in, &token) ||
        !serial::ReadVec(in, &members, serial::ReadU32)) {
      return false;
    }
    if (!pi.emplace(token, std::move(members)).second) return false;
  }

  if (options_.mutable_stream) {
    if (!counting_filter_.Restore(in)) return false;
    if (!filter_pairs_.Restore(in)) return false;
  } else {
    if (!comparison_filter_.Restore(in)) return false;
  }
  std::vector<Comparison> data;
  if (!serial::ReadVec(in, &data, RestoreComparison)) return false;
  if (!index_.RestoreData(std::move(data))) return false;

  cardinality_index_.clear();
  min_index_.clear();
  for (const auto& [token, count] : ci) {
    if (!cardinality_index_.emplace(token, count).second) return false;
    // min_index_ mirrors CI entries with count > 0 -- rebuild the
    // invariant instead of serializing the set redundantly.
    if (count > 0) min_index_.insert({count, token});
  }
  profile_index_ = std::move(pi);
  return true;
}

}  // namespace pier
