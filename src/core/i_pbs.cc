#include "core/i_pbs.h"

#include "metablocking/weighting.h"

namespace pier {

IPbs::IPbs(PrioritizerContext ctx, PrioritizerOptions options)
    : ctx_(ctx), options_(options), index_(options.cmp_index_capacity) {}

WorkStats IPbs::UpdateCmpIndex(const std::vector<ProfileId>& delta) {
  WorkStats stats;
  const BlockCollection& blocks = *ctx_.blocks;

  // Lines 1-5: fold the increment's profiles into CI and PI.
  for (const ProfileId id : delta) {
    const EntityProfile& p = ctx_.profiles->Get(id);
    for (const TokenId token : p.tokens) {
      if (blocks.IsPurged(token)) continue;
      const Block& b = blocks.block(token);
      const uint64_t new_comparisons =
          b.NumNewComparisons(blocks.kind(), p.source);
      auto [it, inserted] = cardinality_index_.try_emplace(token, 0);
      if (!inserted && it->second > 0) {
        min_index_.erase({it->second, token});
      }
      it->second += new_comparisons;
      if (it->second > 0) min_index_.insert({it->second, token});
      profile_index_[token].push_back(p.id);
      ++stats.block_updates;
    }
  }

  // Line 6 onwards: schedule b_min, the block yielding the fewest
  // unexecuted comparisons. On an idle tick (empty delta) with a
  // drained index we keep scheduling blocks until one actually yields
  // comparisons -- a scheduled block may contribute nothing when all
  // of its pairs were already caught by the comparison filter CF.
  do {
    // Blocks that grew past the purging threshold since their CI entry
    // was created are discarded here (incremental block purging).
    TokenId bmin_token = kInvalidTokenId;
    while (!min_index_.empty()) {
      const TokenId candidate = min_index_.begin()->second;
      if (!blocks.IsPurged(candidate)) {
        bmin_token = candidate;
        break;
      }
      min_index_.erase(min_index_.begin());
      cardinality_index_.erase(candidate);
      profile_index_.erase(candidate);
    }
    if (bmin_token == kInvalidTokenId) return stats;
    const uint32_t bmin_size =
        static_cast<uint32_t>(blocks.block(bmin_token).size());

    // Lines 7-9. The paper updates the CmpIndex "only when the
    // comparisons generated in an earlier iteration have been
    // exhausted or [to] prefer comparisons that originated from
    // smaller blocks"; we schedule b_min when the index is empty or
    // when b_min is smaller than the block that produced the current
    // top comparison (i.e. the new block would actually preempt),
    // which implements that stated intent. (Algorithm 3 line 9 prints
    // the comparison reversed, which would starve better blocks.)
    if (!index_.empty() && bmin_size >= index_.PeekMax().block_size) {
      return stats;
    }
    ScheduleBlock(bmin_token, &stats);
  } while (delta.empty() && index_.empty());
  return stats;
}

void IPbs::ScheduleBlock(TokenId token, WorkStats* stats) {
  const BlockCollection& blocks = *ctx_.blocks;
  const ProfileStore& profiles = *ctx_.profiles;
  const Block& b = blocks.block(token);
  const uint32_t bsize = static_cast<uint32_t>(b.size());
  const DatasetKind kind = blocks.kind();

  // Lines 10-14: all non-redundant comparisons with at least one
  // unexecuted endpoint (p_x ranges over PI(b_min), p_y over the whole
  // block); CF catches both cross-block redundancy and x,y both in PI.
  const auto pi_it = profile_index_.find(token);
  if (pi_it != profile_index_.end()) {
    for (const ProfileId x : pi_it->second) {
      const EntityProfile& px = profiles.Get(x);
      const SourceId lo = kind == DatasetKind::kCleanClean
                              ? static_cast<SourceId>(1 - px.source)
                              : static_cast<SourceId>(0);
      const SourceId hi =
          kind == DatasetKind::kCleanClean ? lo : static_cast<SourceId>(1);
      for (SourceId s = lo; s <= hi; ++s) {
        for (const ProfileId y : b.members[s]) {
          if (y == x) continue;
          Comparison c(x, y, 0.0, bsize);
          if (comparison_filter_.TestAndAdd(c.Key())) continue;  // redundant
          c.weight = PairCbsWeight(px, profiles.Get(y));
          index_.PushBounded(c);
          ++stats->comparisons_generated;
          ++stats->index_ops;
        }
      }
    }
  }

  // Lines 15-16: reset the block's CI/PI entries.
  auto ci_it = cardinality_index_.find(token);
  if (ci_it != cardinality_index_.end()) {
    if (ci_it->second > 0) min_index_.erase({ci_it->second, token});
    cardinality_index_.erase(ci_it);
  }
  profile_index_.erase(token);
}

bool IPbs::Dequeue(Comparison* out) {
  if (index_.empty()) return false;
  *out = index_.PopMax();
  return true;
}

}  // namespace pier
