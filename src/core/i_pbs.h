// I-PBS: Incremental Progressive Block Scheduling (Section 5,
// Algorithm 3). Block-centric prioritization based on the hypothesis
// that smaller blocks are more likely to contain duplicates: globally
// maintained indexes track, per block, the number of unexecuted
// comparisons (CI) and the unexecuted profiles (PI); on every update
// the block yielding the fewest unexecuted comparisons is scheduled,
// its comparisons entering the global CmpIndex with a composite
// (block size, CBS weight) priority. A scalable Bloom filter CF
// suppresses redundant comparisons [16].

#ifndef PIER_CORE_I_PBS_H_
#define PIER_CORE_I_PBS_H_

#include <cstdint>
#include <iosfwd>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/prioritizer.h"
#include "model/comparison.h"
#include "model/pair_registry.h"
#include "util/bounded_priority_queue.h"
#include "util/counting_bloom_filter.h"
#include "util/scalable_bloom_filter.h"

namespace pier {

class IPbs : public IncrementalPrioritizer {
 public:
  IPbs(PrioritizerContext ctx, PrioritizerOptions options);

  WorkStats UpdateCmpIndex(const std::vector<ProfileId>& delta) override;
  bool Dequeue(Comparison* out) override;
  bool Empty() const override { return index_.empty(); }
  void OnRetract(ProfileId id) override;
  void Snapshot(std::ostream& out) const override;
  bool Restore(std::istream& in) override;
  const char* name() const override { return "I-PBS"; }

  // Exposed for tests: the number of blocks currently carrying
  // unexecuted comparisons.
  size_t NumPendingBlocks() const { return min_index_.size(); }

 private:
  // Schedules the comparisons of block `token` (the current b_min)
  // into the CmpIndex (Algorithm 3, lines 10-14) and resets its CI/PI
  // entries (lines 15-16).
  void ScheduleBlock(TokenId token, WorkStats* stats);

  // Tests `c` against the active comparison filter and records it when
  // freshly added. Returns true when the comparison is redundant.
  bool FilterTestAndAdd(const Comparison& c);

  PrioritizerContext ctx_;
  PrioritizerOptions options_;

  // CI: block -> number of unexecuted comparisons contributed by
  // still-unexecuted profiles. Entries absent from the map are
  // conceptually +infinity.
  std::unordered_map<TokenId, uint64_t> cardinality_index_;
  // PI: block -> unexecuted profiles.
  std::unordered_map<TokenId, std::vector<ProfileId>> profile_index_;
  // Orders blocks by unexecuted-comparison count for O(log n) b_min
  // selection; mirrors cardinality_index_ entries with count > 0.
  std::set<std::pair<uint64_t, TokenId>> min_index_;

  // CF: redundancy filter over already-scheduled pairs. Append-only
  // streams use the plain scalable filter; mutable streams (deletes /
  // corrections) use the counting variant plus a pair registry so
  // OnRetract can withdraw a retracted profile's keys and a corrected
  // profile's comparisons reschedule. Only the active pair is
  // serialized; the snapshot format is selected by
  // options_.mutable_stream (part of the pipeline fingerprint).
  ScalableBloomFilter comparison_filter_;
  ScalableCountingBloomFilter counting_filter_;
  PairRegistry filter_pairs_;

  BoundedPriorityQueue<Comparison, CompareByBlockThenWeight> index_;
};

}  // namespace pier

#endif  // PIER_CORE_I_PBS_H_
