#include "core/i_pcs.h"

#include <istream>
#include <ostream>
#include <utility>

#include "blocking/block_ghosting.h"
#include "metablocking/i_wnp.h"
#include "util/serial.h"

namespace pier {

IPcs::IPcs(PrioritizerContext ctx, PrioritizerOptions options)
    : ctx_(ctx),
      options_(options),
      index_(options.cmp_index_capacity),
      scanner_(ctx) {}

WorkStats IPcs::UpdateCmpIndex(const std::vector<ProfileId>& delta) {
  WorkStats stats;
  const WeightingContext wctx{ctx_.blocks, ctx_.profiles, options_.scheme};

  std::vector<Comparison> cmp_list;
  for (const ProfileId id : delta) {
    const EntityProfile& p = ctx_.profiles->Get(id);
    // Algorithm 2, lines 4-5: retained blocks after block ghosting.
    GhostBlocks(*ctx_.blocks, p, options_.beta, &retained_);
    // Lines 6-7: candidate generation (only_older_neighbors makes each
    // pair unique per increment); line 8: I-WNP comparison cleaning.
    std::vector<Comparison> candidates = GenerateWeightedComparisons(
        wctx, p, retained_, /*only_older_neighbors=*/true, /*visits=*/nullptr,
        &scratch_);
    stats.comparisons_generated += candidates.size();
    candidates = IWnpPrune(std::move(candidates));
    cmp_list.insert(cmp_list.end(), candidates.begin(), candidates.end());
  }

  // Lines 10-11: on an idle tick with a drained index, fall back to
  // scanning blocks smallest-first.
  if (delta.empty() && index_.empty()) {
    cmp_list = scanner_.NextBlock(&stats);
  }

  // Lines 12-13: fold into the global bounded index.
  for (auto& c : cmp_list) {
    index_.PushBounded(c);
    ++stats.index_ops;
  }
  return stats;
}

void IPcs::OnRetract(ProfileId id) {
  // Purge the CmpIndex of comparisons touching the retracted profile.
  // The interval heap has no positional erase, so rebuild it from the
  // surviving elements (Push re-establishes the heap invariant; the
  // dequeue order depends only on the comparator, which is total).
  std::vector<Comparison> kept;
  kept.reserve(index_.size());
  for (const Comparison& c : index_.data()) {
    if (c.x != id && c.y != id) kept.push_back(c);
  }
  if (kept.size() == index_.size()) return;
  index_.Clear();
  for (Comparison& c : kept) index_.Push(std::move(c));
}

bool IPcs::Dequeue(Comparison* out) {
  if (index_.empty()) return false;
  *out = index_.PopMax();
  return true;
}

void IPcs::Snapshot(std::ostream& out) const {
  // The heap's backing vector verbatim: restoring it reproduces the
  // exact interval-heap layout, hence the exact dequeue order.
  serial::WriteVec(out, index_.data(), SnapshotComparison);
  scanner_.Snapshot(out);
}

bool IPcs::Restore(std::istream& in) {
  std::vector<Comparison> data;
  if (!serial::ReadVec(in, &data, RestoreComparison)) return false;
  if (!index_.RestoreData(std::move(data))) return false;
  return scanner_.Restore(in);
}

}  // namespace pier
