// I-PCS: Incremental Progressive Comparison Scheduling (Section 4,
// Algorithm 2). Comparison-centric prioritization: every new profile's
// neighbourhood is ghosted (block cleaning), weighted (CBS by
// default), pruned (I-WNP), and the survivors are pushed into one
// global bounded priority queue ordered by weight. Its effectiveness
// therefore hinges entirely on the weighting scheme -- the limitation
// that motivates I-PES (Section 6).

#ifndef PIER_CORE_I_PCS_H_
#define PIER_CORE_I_PCS_H_

#include <vector>

#include "core/block_scanner.h"
#include "core/prioritizer.h"
#include "model/comparison.h"
#include "util/bounded_priority_queue.h"

namespace pier {

class IPcs : public IncrementalPrioritizer {
 public:
  IPcs(PrioritizerContext ctx, PrioritizerOptions options);

  WorkStats UpdateCmpIndex(const std::vector<ProfileId>& delta) override;
  bool Dequeue(Comparison* out) override;
  bool Empty() const override { return index_.empty(); }
  void OnStreamEnd() override { scanner_.AllowFullRescan(); }
  void OnRetract(ProfileId id) override;
  void Snapshot(std::ostream& out) const override;
  bool Restore(std::istream& in) override;
  const char* name() const override { return "I-PCS"; }

 private:
  PrioritizerContext ctx_;
  PrioritizerOptions options_;
  BoundedPriorityQueue<Comparison, CompareByWeight> index_;
  BlockScanner scanner_;
  WeightingScratch scratch_;  // reused across increments
  std::vector<TokenId> retained_;  // reused ghosting output buffer
};

}  // namespace pier

#endif  // PIER_CORE_I_PCS_H_
