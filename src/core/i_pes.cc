#include "core/i_pes.h"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <utility>

#include "blocking/block_ghosting.h"
#include "metablocking/i_wnp.h"
#include "util/serial.h"

namespace pier {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

IPes::IPes(PrioritizerContext ctx, PrioritizerOptions options)
    : ctx_(ctx),
      options_(options),
      entity_queue_(options.entity_queue_capacity),
      low_queue_(options.low_weight_queue_capacity),
      scanner_(ctx) {}

WorkStats IPes::UpdateCmpIndex(const std::vector<ProfileId>& delta) {
  WorkStats stats;
  const WeightingContext wctx{ctx_.blocks, ctx_.profiles, options_.scheme};

  // Algorithm 2 lines 1-11 (shared with I-PCS): ghosting, candidate
  // generation, I-WNP cleaning; block-scanner fallback on idle ticks.
  std::vector<Comparison> cmp_list;
  for (const ProfileId id : delta) {
    const EntityProfile& p = ctx_.profiles->Get(id);
    GhostBlocks(*ctx_.blocks, p, options_.beta, &retained_);
    std::vector<Comparison> candidates = GenerateWeightedComparisons(
        wctx, p, retained_, /*only_older_neighbors=*/true, /*visits=*/nullptr,
        &scratch_);
    stats.comparisons_generated += candidates.size();
    candidates = IWnpPrune(std::move(candidates));
    cmp_list.insert(cmp_list.end(), candidates.begin(), candidates.end());
  }
  if (delta.empty() && Empty()) {
    cmp_list = scanner_.NextBlock(&stats);
  }

  // Algorithm 4, lines 1-14.
  for (const auto& c : cmp_list) {
    Insert(c, &stats);
  }
  return stats;
}

double IPes::TopWeight(ProfileId e) const {
  const auto it = entity_index_.find(e);
  if (it == entity_index_.end() || it->second.pq.empty()) return kNegInf;
  return it->second.pq.PeekMax().weight;
}

size_t IPes::EntityQueueSize(ProfileId e) const {
  const auto it = entity_index_.find(e);
  return it == entity_index_.end() ? 0 : it->second.pq.size();
}

void IPes::PushToEntity(ProfileId e, const Comparison& c) {
  auto [it, inserted] =
      entity_index_.try_emplace(e, options_.per_entity_capacity);
  EntityEntry& entry = it->second;
  const bool was_empty = entry.pq.empty();
  if (entry.pq.PushBounded(c)) {
    entry.inserted_total += c.weight;
    ++entry.inserted_count;
    if (was_empty) ++nonempty_entities_;
  }
}

void IPes::Insert(const Comparison& c, WorkStats* stats) {
  const double w = c.weight;
  // Line 3: global running mean.
  total_ += w;
  ++count_;
  ++stats->index_ops;

  // Lines 4-9: a comparison improving either endpoint's best enters
  // that endpoint's queue and re-ranks the entity.
  if (TopWeight(c.x) < w) {
    PushToEntity(c.x, c);
    entity_queue_.PushBounded(EntityRef{c.x, w});
    return;
  }
  if (TopWeight(c.y) < w) {
    PushToEntity(c.y, c);
    entity_queue_.PushBounded(EntityRef{c.y, w});
    return;
  }

  // Lines 10-12: double pruning -- above the global mean, insert into
  // the endpoint with the smaller queue, but only if it also beats
  // that entity's own inserted-weight mean.
  if (w > total_ / static_cast<double>(count_)) {
    const ProfileId i =
        EntityQueueSize(c.x) <= EntityQueueSize(c.y) ? c.x : c.y;
    auto it = entity_index_.find(i);
    const bool beats_entity_mean =
        it == entity_index_.end() || it->second.inserted_count == 0 ||
        w > it->second.inserted_total /
                static_cast<double>(it->second.inserted_count);
    if (beats_entity_mean) {
      PushToEntity(i, c);
      return;
    }
    // Pruned by the per-entity mean: demote to PQ rather than dropping
    // outright, preserving eventual quality.
    low_queue_.PushBounded(c);
    return;
  }

  // Lines 13-14: below the global mean -> bounded low-weight queue.
  low_queue_.PushBounded(c);
}

void IPes::RefillEntityQueue() {
  ++num_refills_;
  for (auto it = entity_index_.begin(); it != entity_index_.end();) {
    if (it->second.pq.empty()) {
      // Drained entity: drop its entry to bound memory on long
      // streams. (Its per-entity mean resets if it reappears.)
      it = entity_index_.erase(it);
      continue;
    }
    entity_queue_.PushBounded(
        EntityRef{it->first, it->second.pq.PeekMax().weight});
    ++it;
  }
}

bool IPes::Dequeue(Comparison* out) {
  for (;;) {
    if (entity_queue_.empty()) {
      if (nonempty_entities_ > 0) RefillEntityQueue();
      if (entity_queue_.empty()) break;
    }
    const EntityRef ref = entity_queue_.PopMax();
    const auto it = entity_index_.find(ref.id);
    if (it == entity_index_.end() || it->second.pq.empty()) continue;  // stale
    *out = it->second.pq.PopMax();
    if (it->second.pq.empty()) {
      --nonempty_entities_;
      // Eagerly drop the drained entry so entity_index_ stays bounded
      // on long streams (its per-entity mean restarts if the entity
      // reappears; see also RefillEntityQueue).
      entity_index_.erase(it);
    }
    return true;
  }
  // "If the EntityQueue is smaller than K the missing comparisons are
  // taken from PQ."
  if (!low_queue_.empty()) {
    *out = low_queue_.PopMax();
    return true;
  }
  return false;
}

void IPes::OnRetract(ProfileId id) {
  // The retracted entity's own queue.
  const auto own = entity_index_.find(id);
  if (own != entity_index_.end()) {
    if (!own->second.pq.empty()) --nonempty_entities_;
    entity_index_.erase(own);
  }

  // Other entities may hold comparisons whose far endpoint is `id`:
  // rebuild any touched per-entity queue without them (the interval
  // heap has no positional erase). Entities drained by the purge are
  // dropped exactly like Dequeue drops them; stale EntityQueue refs to
  // either are skipped at dequeue time.
  const auto purge = [id](BoundedPriorityQueue<Comparison, CompareByWeight>&
                              pq) {
    bool touched = false;
    for (const Comparison& c : pq.data()) {
      if (c.x == id || c.y == id) {
        touched = true;
        break;
      }
    }
    if (!touched) return;
    std::vector<Comparison> kept;
    kept.reserve(pq.size());
    for (const Comparison& c : pq.data()) {
      if (c.x != id && c.y != id) kept.push_back(c);
    }
    pq.Clear();
    for (Comparison& c : kept) pq.Push(std::move(c));
  };
  for (auto it = entity_index_.begin(); it != entity_index_.end();) {
    const bool was_nonempty = !it->second.pq.empty();
    purge(it->second.pq);
    if (it->second.pq.empty()) {
      if (was_nonempty) --nonempty_entities_;
      it = entity_index_.erase(it);
    } else {
      ++it;
    }
  }

  // The low-weight overflow queue. Total/Count stay as-is: they are
  // running means over everything ever inserted, not live state.
  purge(low_queue_);
}

void IPes::Snapshot(std::ostream& out) const {
  // Entity entries sorted by id for canonical bytes; each per-entity
  // queue's heap vector is stored verbatim. The EntityQueue itself
  // ranks by (weight, id) under a strict total order, so hash-map
  // iteration order never influences dequeue results -- sorting here
  // is purely for byte-identical re-snapshots.
  std::vector<ProfileId> ids;
  ids.reserve(entity_index_.size());
  for (const auto& [id, unused] : entity_index_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  serial::WriteU64(out, ids.size());
  for (const ProfileId id : ids) {
    const EntityEntry& entry = entity_index_.at(id);
    serial::WriteU32(out, id);
    serial::WriteF64(out, entry.inserted_total);
    serial::WriteU64(out, entry.inserted_count);
    serial::WriteVec(out, entry.pq.data(), SnapshotComparison);
  }

  const auto write_ref = [](std::ostream& o, const EntityRef& r) {
    serial::WriteU32(o, r.id);
    serial::WriteF64(o, r.weight);
  };
  serial::WriteVec(out, entity_queue_.data(), write_ref);
  serial::WriteVec(out, low_queue_.data(), SnapshotComparison);

  serial::WriteF64(out, total_);
  serial::WriteU64(out, count_);
  serial::WriteU64(out, nonempty_entities_);
  serial::WriteU64(out, num_refills_);
  scanner_.Snapshot(out);
}

bool IPes::Restore(std::istream& in) {
  uint64_t num_entities = 0;
  if (!serial::ReadU64(in, &num_entities)) return false;
  std::unordered_map<ProfileId, EntityEntry> entity_index;
  entity_index.reserve(std::min<uint64_t>(num_entities, 1u << 20));
  for (uint64_t i = 0; i < num_entities; ++i) {
    uint32_t id = 0;
    double inserted_total = 0.0;
    uint64_t inserted_count = 0;
    std::vector<Comparison> pq_data;
    if (!serial::ReadU32(in, &id) || !serial::ReadF64(in, &inserted_total) ||
        !serial::ReadU64(in, &inserted_count) ||
        !serial::ReadVec(in, &pq_data, RestoreComparison)) {
      return false;
    }
    auto [it, inserted] =
        entity_index.try_emplace(id, options_.per_entity_capacity);
    if (!inserted) return false;
    it->second.inserted_total = inserted_total;
    it->second.inserted_count = inserted_count;
    if (!it->second.pq.RestoreData(std::move(pq_data))) return false;
  }

  const auto read_ref = [](std::istream& s, EntityRef* r) {
    return serial::ReadU32(s, &r->id) && serial::ReadF64(s, &r->weight);
  };
  std::vector<EntityRef> eq_data;
  std::vector<Comparison> lq_data;
  double total = 0.0;
  uint64_t count = 0;
  uint64_t nonempty = 0;
  uint64_t refills = 0;
  if (!serial::ReadVec(in, &eq_data, read_ref) ||
      !serial::ReadVec(in, &lq_data, RestoreComparison) ||
      !serial::ReadF64(in, &total) || !serial::ReadU64(in, &count) ||
      !serial::ReadU64(in, &nonempty) || !serial::ReadU64(in, &refills)) {
    return false;
  }
  if (!entity_queue_.RestoreData(std::move(eq_data))) return false;
  if (!low_queue_.RestoreData(std::move(lq_data))) return false;
  if (!scanner_.Restore(in)) return false;

  entity_index_ = std::move(entity_index);
  total_ = total;
  count_ = count;
  nonempty_entities_ = nonempty;
  num_refills_ = refills;
  return true;
}

}  // namespace pier
