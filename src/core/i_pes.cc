#include "core/i_pes.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>

#include "blocking/block_ghosting.h"
#include "metablocking/i_wnp.h"
#include "util/serial.h"

namespace pier {

IPes::IPes(PrioritizerContext ctx, PrioritizerOptions options)
    : ctx_(ctx),
      options_(options),
      entity_queue_(options.entity_queue_capacity),
      low_queue_(options.low_weight_queue_capacity),
      scanner_(ctx) {}

WorkStats IPes::UpdateCmpIndex(const std::vector<ProfileId>& delta) {
  WorkStats stats;
  const WeightingContext wctx{ctx_.blocks, ctx_.profiles, options_.scheme};

  // Algorithm 2 lines 1-11 (shared with I-PCS): ghosting, candidate
  // generation, I-WNP cleaning; block-scanner fallback on idle ticks.
  std::vector<Comparison> cmp_list;
  for (const ProfileId id : delta) {
    const EntityProfile& p = ctx_.profiles->Get(id);
    GhostBlocks(*ctx_.blocks, p, options_.beta, &retained_);
    std::vector<Comparison> candidates = GenerateWeightedComparisons(
        wctx, p, retained_, /*only_older_neighbors=*/true, /*visits=*/nullptr,
        &scratch_);
    stats.comparisons_generated += candidates.size();
    candidates = IWnpPrune(std::move(candidates));
    cmp_list.insert(cmp_list.end(), candidates.begin(), candidates.end());
  }
  if (delta.empty() && Empty()) {
    cmp_list = scanner_.NextBlock(&stats);
  }

  // Algorithm 4, lines 1-14.
  for (const auto& c : cmp_list) {
    Insert(c, &stats);
  }
  return stats;
}

IPes::EntityEntry* IPes::FindEntity(ProfileId e) {
  if (e >= entity_pos_.size() || entity_pos_[e] == kNoEntry) return nullptr;
  return &tracked_[entity_pos_[e]];
}

const IPes::EntityEntry* IPes::FindEntity(ProfileId e) const {
  if (e >= entity_pos_.size() || entity_pos_[e] == kNoEntry) return nullptr;
  return &tracked_[entity_pos_[e]];
}

IPes::EntityEntry& IPes::EnsureEntity(ProfileId e) {
  if (e >= entity_pos_.size()) entity_pos_.resize(e + 1, kNoEntry);
  if (entity_pos_[e] != kNoEntry) return tracked_[entity_pos_[e]];
  entity_pos_[e] = static_cast<uint32_t>(tracked_.size());
  tracked_ids_.push_back(e);
  tracked_.emplace_back(options_.per_entity_capacity);
  return tracked_.back();
}

void IPes::EraseEntity(ProfileId e) {
  const uint32_t pos = entity_pos_[e];
  PIER_DCHECK(pos != kNoEntry);
  const uint32_t last = static_cast<uint32_t>(tracked_.size()) - 1;
  if (pos != last) {
    tracked_[pos] = std::move(tracked_[last]);
    tracked_ids_[pos] = tracked_ids_[last];
    entity_pos_[tracked_ids_[pos]] = pos;
  }
  tracked_.pop_back();
  tracked_ids_.pop_back();
  entity_pos_[e] = kNoEntry;
}

void IPes::PushToEntity(ProfileId e, const Comparison& c) {
  PushToEntry(EnsureEntity(e), c);
}

void IPes::PushToEntry(EntityEntry& entry, const Comparison& c) {
  const bool was_empty = entry.pq.empty();
  if (entry.pq.PushBounded(c)) {
    entry.inserted_total += c.weight;
    ++entry.inserted_count;
    if (was_empty) ++nonempty_entities_;
  }
}

void IPes::Insert(const Comparison& c, WorkStats* stats) {
  const double w = c.weight;
  // Line 3: global running mean.
  total_ += w;
  ++count_;
  ++stats->index_ops;

  // Lines 4-9: a comparison improving either endpoint's best enters
  // that endpoint's queue and re-ranks the entity. Each endpoint's
  // entry is resolved once and reused (this runs per comparison, so
  // redundant index probes were a measurable share of ingest).
  EntityEntry* ex = FindEntity(c.x);
  if (ex == nullptr || ex->pq.empty() || ex->pq.PeekMax().weight < w) {
    PushToEntry(ex != nullptr ? *ex : EnsureEntity(c.x), c);
    entity_queue_.PushBounded(EntityRef{c.x, w});
    return;
  }
  EntityEntry* ey = FindEntity(c.y);
  if (ey == nullptr || ey->pq.empty() || ey->pq.PeekMax().weight < w) {
    PushToEntry(ey != nullptr ? *ey : EnsureEntity(c.y), c);
    entity_queue_.PushBounded(EntityRef{c.y, w});
    return;
  }

  // Lines 10-12: double pruning -- above the global mean, insert into
  // the endpoint with the smaller queue, but only if it also beats
  // that entity's own inserted-weight mean. (Both endpoints are
  // tracked and nonempty here, or an earlier branch would have fired.)
  if (w > total_ / static_cast<double>(count_)) {
    EntityEntry& entry = ex->pq.size() <= ey->pq.size() ? *ex : *ey;
    const bool beats_entity_mean =
        entry.inserted_count == 0 ||
        w > entry.inserted_total / static_cast<double>(entry.inserted_count);
    if (beats_entity_mean) {
      PushToEntry(entry, c);
      return;
    }
    // Pruned by the per-entity mean: demote to PQ rather than dropping
    // outright, preserving eventual quality.
    low_queue_.PushBounded(c);
    return;
  }

  // Lines 13-14: below the global mean -> bounded low-weight queue.
  low_queue_.PushBounded(c);
}

void IPes::RefillEntityQueue() {
  // Iteration order differs from the old hash map, but the EntityQueue
  // orders refs by (weight, id) -- a strict total order -- so the
  // bounded queue's content (top-K of the pushed multiset) and every
  // subsequent dequeue are insertion-order independent.
  ++num_refills_;
  for (size_t i = 0; i < tracked_.size();) {
    if (tracked_[i].pq.empty()) {
      // Drained entity: drop its entry to bound memory on long
      // streams. (Its per-entity mean resets if it reappears.)
      // EraseEntity swap-fills slot i; revisit it.
      EraseEntity(tracked_ids_[i]);
      continue;
    }
    entity_queue_.PushBounded(
        EntityRef{tracked_ids_[i], tracked_[i].pq.PeekMax().weight});
    ++i;
  }
}

bool IPes::Dequeue(Comparison* out) {
  for (;;) {
    if (entity_queue_.empty()) {
      if (nonempty_entities_ > 0) RefillEntityQueue();
      if (entity_queue_.empty()) break;
    }
    const EntityRef ref = entity_queue_.PopMax();
    EntityEntry* entry = FindEntity(ref.id);
    if (entry == nullptr || entry->pq.empty()) continue;  // stale
    *out = entry->pq.PopMax();
    if (entry->pq.empty()) {
      --nonempty_entities_;
      // Eagerly drop the drained entry so the entity index stays
      // bounded on long streams (its per-entity mean restarts if the
      // entity reappears; see also RefillEntityQueue).
      EraseEntity(ref.id);
    }
    return true;
  }
  // "If the EntityQueue is smaller than K the missing comparisons are
  // taken from PQ."
  if (!low_queue_.empty()) {
    *out = low_queue_.PopMax();
    return true;
  }
  return false;
}

void IPes::OnRetract(ProfileId id) {
  // The retracted entity's own queue.
  if (EntityEntry* own = FindEntity(id); own != nullptr) {
    if (!own->pq.empty()) --nonempty_entities_;
    EraseEntity(id);
  }

  // Other entities may hold comparisons whose far endpoint is `id`:
  // rebuild any touched per-entity queue without them (the interval
  // heap has no positional erase). Entities drained by the purge are
  // dropped exactly like Dequeue drops them; stale EntityQueue refs to
  // either are skipped at dequeue time.
  const auto purge = [id](BoundedPriorityQueue<Comparison, CompareByWeight>&
                              pq) {
    bool touched = false;
    for (const Comparison& c : pq.data()) {
      if (c.x == id || c.y == id) {
        touched = true;
        break;
      }
    }
    if (!touched) return;
    std::vector<Comparison> kept;
    kept.reserve(pq.size());
    for (const Comparison& c : pq.data()) {
      if (c.x != id && c.y != id) kept.push_back(c);
    }
    pq.Clear();
    for (Comparison& c : kept) pq.Push(std::move(c));
  };
  for (size_t i = 0; i < tracked_.size();) {
    const bool was_nonempty = !tracked_[i].pq.empty();
    purge(tracked_[i].pq);
    if (tracked_[i].pq.empty()) {
      if (was_nonempty) --nonempty_entities_;
      EraseEntity(tracked_ids_[i]);  // swap-fills slot i; revisit it
    } else {
      ++i;
    }
  }

  // The low-weight overflow queue. Total/Count stay as-is: they are
  // running means over everything ever inserted, not live state.
  purge(low_queue_);
}

void IPes::Snapshot(std::ostream& out) const {
  // Entity entries sorted by id for canonical bytes; each per-entity
  // queue's heap vector is stored verbatim. The EntityQueue itself
  // ranks by (weight, id) under a strict total order, so sparse-set
  // iteration order never influences dequeue results -- sorting here
  // is purely for byte-identical re-snapshots.
  std::vector<ProfileId> ids = tracked_ids_;
  std::sort(ids.begin(), ids.end());
  serial::WriteU64(out, ids.size());
  for (const ProfileId id : ids) {
    const EntityEntry& entry = *FindEntity(id);
    serial::WriteU32(out, id);
    serial::WriteF64(out, entry.inserted_total);
    serial::WriteU64(out, entry.inserted_count);
    serial::WriteVec(out, entry.pq.data(), SnapshotComparison);
  }

  const auto write_ref = [](std::ostream& o, const EntityRef& r) {
    serial::WriteU32(o, r.id);
    serial::WriteF64(o, r.weight);
  };
  serial::WriteVec(out, entity_queue_.data(), write_ref);
  serial::WriteVec(out, low_queue_.data(), SnapshotComparison);

  serial::WriteF64(out, total_);
  serial::WriteU64(out, count_);
  serial::WriteU64(out, nonempty_entities_);
  serial::WriteU64(out, num_refills_);
  scanner_.Snapshot(out);
}

bool IPes::Restore(std::istream& in) {
  uint64_t num_entities = 0;
  if (!serial::ReadU64(in, &num_entities)) return false;
  std::vector<uint32_t> entity_pos;
  std::vector<ProfileId> tracked_ids;
  std::vector<EntityEntry> tracked;
  tracked_ids.reserve(std::min<uint64_t>(num_entities, 1u << 20));
  tracked.reserve(std::min<uint64_t>(num_entities, 1u << 20));
  for (uint64_t i = 0; i < num_entities; ++i) {
    uint32_t id = 0;
    double inserted_total = 0.0;
    uint64_t inserted_count = 0;
    std::vector<Comparison> pq_data;
    if (!serial::ReadU32(in, &id) || !serial::ReadF64(in, &inserted_total) ||
        !serial::ReadU64(in, &inserted_count) ||
        !serial::ReadVec(in, &pq_data, RestoreComparison)) {
      return false;
    }
    if (id == kInvalidProfileId) return false;
    if (id >= entity_pos.size()) entity_pos.resize(id + 1, kNoEntry);
    if (entity_pos[id] != kNoEntry) return false;  // duplicate entity
    entity_pos[id] = static_cast<uint32_t>(tracked.size());
    tracked_ids.push_back(id);
    tracked.emplace_back(options_.per_entity_capacity);
    tracked.back().inserted_total = inserted_total;
    tracked.back().inserted_count = inserted_count;
    if (!tracked.back().pq.RestoreData(std::move(pq_data))) return false;
  }

  const auto read_ref = [](std::istream& s, EntityRef* r) {
    return serial::ReadU32(s, &r->id) && serial::ReadF64(s, &r->weight);
  };
  std::vector<EntityRef> eq_data;
  std::vector<Comparison> lq_data;
  double total = 0.0;
  uint64_t count = 0;
  uint64_t nonempty = 0;
  uint64_t refills = 0;
  if (!serial::ReadVec(in, &eq_data, read_ref) ||
      !serial::ReadVec(in, &lq_data, RestoreComparison) ||
      !serial::ReadF64(in, &total) || !serial::ReadU64(in, &count) ||
      !serial::ReadU64(in, &nonempty) || !serial::ReadU64(in, &refills)) {
    return false;
  }
  if (!entity_queue_.RestoreData(std::move(eq_data))) return false;
  if (!low_queue_.RestoreData(std::move(lq_data))) return false;
  if (!scanner_.Restore(in)) return false;

  entity_pos_ = std::move(entity_pos);
  tracked_ids_ = std::move(tracked_ids);
  tracked_ = std::move(tracked);
  total_ = total;
  count_ = count;
  nonempty_entities_ = nonempty;
  num_refills_ = refills;
  return true;
}

}  // namespace pier
