// I-PES: Incremental Progressive Entity Scheduling (Section 6,
// Algorithm 4) -- the paper's best-performing PIER algorithm.
//
// Entity-centric prioritization without a meta-blocking graph: each
// entity e owns a small bounded priority queue E_PQ(e) of its best
// comparisons; an EntityQueue ranks entities by the weight of their
// best comparison at insertion time; a global bounded queue PQ catches
// low-weight comparisons. A *double pruning* keeps memory bounded and
// discards superfluous comparisons: a comparison that does not improve
// either endpoint's best must beat both the global mean weight
// (Total/Count) and its endpoint's per-entity mean to enter an E_PQ.
//
// Dequeue order: best entity first (its best comparison), refilling
// the EntityQueue from E_PQ when it drains, then falling back to PQ --
// making the strategy robust to a weighting scheme that misranks
// individual comparisons (the I-PCS failure mode with expensive
// matchers).

#ifndef PIER_CORE_I_PES_H_
#define PIER_CORE_I_PES_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/block_scanner.h"
#include "core/prioritizer.h"
#include "model/comparison.h"
#include "util/bounded_priority_queue.h"

namespace pier {

class IPes : public IncrementalPrioritizer {
 public:
  IPes(PrioritizerContext ctx, PrioritizerOptions options);

  WorkStats UpdateCmpIndex(const std::vector<ProfileId>& delta) override;
  bool Dequeue(Comparison* out) override;
  bool Empty() const override {
    return nonempty_entities_ == 0 && low_queue_.empty();
  }
  void OnStreamEnd() override { scanner_.AllowFullRescan(); }
  void OnRetract(ProfileId id) override;
  void Snapshot(std::ostream& out) const override;
  bool Restore(std::istream& in) override;
  const char* name() const override { return "I-PES"; }

  // Exposed for tests / diagnostics.
  size_t NumTrackedEntities() const { return tracked_ids_.size(); }
  size_t NumEntityQueueRefills() const { return num_refills_; }
  double GlobalMeanWeight() const {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }

 private:
  // Reference into the EntityQueue: entity id plus the weight of its
  // best comparison at enqueue time (may be stale; stale refs are
  // skipped at dequeue).
  struct EntityRef {
    ProfileId id = kInvalidProfileId;
    double weight = 0.0;
  };
  struct EntityRefLess {
    bool operator()(const EntityRef& a, const EntityRef& b) const {
      if (a.weight != b.weight) return a.weight < b.weight;
      return a.id > b.id;
    }
  };

  struct EntityEntry {
    BoundedPriorityQueue<Comparison, CompareByWeight> pq;
    // Running mean of the weights inserted into this entity's queue,
    // for the insert() pruning condition (Algorithm 4, line 12).
    double inserted_total = 0.0;
    uint64_t inserted_count = 0;

    explicit EntityEntry(size_t capacity) : pq(capacity) {}
  };

  // Algorithm 4, lines 1-14 for one weighted comparison.
  void Insert(const Comparison& c, WorkStats* stats);

  // Pushes c into entity e's queue, maintaining the nonempty-entity
  // counter and per-entity running means.
  void PushToEntity(ProfileId e, const Comparison& c);
  void PushToEntry(EntityEntry& entry, const Comparison& c);

  // Re-seeds the EntityQueue with every entity that still holds
  // comparisons ("if the EntityQueue becomes empty, for each entry e
  // in E_PQ we add <e, top.weight>"); prunes drained entries.
  void RefillEntityQueue();

  // E_PQ as a sparse set over dense profile ids: entity_pos_[id] is
  // the entity's index into the parallel tracked_ids_/tracked_ arrays
  // (kNoEntry if untracked); erase swaps with the last entry. Every
  // per-comparison lookup is one array index instead of a hash probe
  // -- at paper scale the hash map was ~20% of ingest time.
  static constexpr uint32_t kNoEntry = 0xffffffffu;
  EntityEntry* FindEntity(ProfileId e);
  const EntityEntry* FindEntity(ProfileId e) const;
  EntityEntry& EnsureEntity(ProfileId e);
  void EraseEntity(ProfileId e);

  PrioritizerContext ctx_;
  PrioritizerOptions options_;

  std::vector<uint32_t> entity_pos_;   // profile id -> tracked_ index
  std::vector<ProfileId> tracked_ids_;
  std::vector<EntityEntry> tracked_;
  BoundedPriorityQueue<EntityRef, EntityRefLess> entity_queue_;
  BoundedPriorityQueue<Comparison, CompareByWeight> low_queue_;  // PQ

  double total_ = 0.0;     // Total: sum of all inserted weights
  uint64_t count_ = 0;     // Count: number of inserted comparisons
  size_t nonempty_entities_ = 0;
  size_t num_refills_ = 0;

  BlockScanner scanner_;
  WeightingScratch scratch_;  // reused across increments
  std::vector<TokenId> retained_;  // reused ghosting output buffer
};

}  // namespace pier

#endif  // PIER_CORE_I_PES_H_
