#include "core/pier_pipeline.h"

#include <algorithm>
#include <sstream>

#include "core/i_pbs.h"
#include "core/i_pcs.h"
#include "core/i_pes.h"
#include "frontier/fb_pcs.h"
#include "frontier/sper_sk.h"
#include "obs/scoped_timer.h"
#include "persist/snapshot.h"
#include "util/check.h"
#include "util/serial.h"

namespace pier {

const char* ToString(PierStrategy strategy) {
  switch (strategy) {
    case PierStrategy::kIPcs:
      return "I-PCS";
    case PierStrategy::kIPbs:
      return "I-PBS";
    case PierStrategy::kIPes:
      return "I-PES";
    case PierStrategy::kSperSk:
      return "SPER-SK";
    case PierStrategy::kFbPcs:
      return "FB-PCS";
  }
  return "?";
}

PierPipeline::PierPipeline(PierOptions options)
    : options_(options),
      blocks_(options.kind, options.blocking),
      tokenizer_(options.tokenizer),
      adaptive_k_(options.adaptive_k) {
  // The mutability mode is a pipeline-level decision; strategies see it
  // through their own options (it selects their pair-filter snapshot
  // format and enables OnRetract bookkeeping).
  options_.prioritizer.mutable_stream = options_.mutable_stream;
  // Frontier strategies register `frontier.*` metrics on the shared
  // registry (a non-owning pointer, never fingerprinted).
  options_.prioritizer.metrics = options_.metrics;
  if (options_.mutable_stream && options_.track_clusters) {
    clusters_.EnableRetraction();
  }
  const PrioritizerContext ctx{&blocks_, &profiles_};
  switch (options_.strategy) {
    case PierStrategy::kIPcs:
      prioritizer_ = std::make_unique<IPcs>(ctx, options_.prioritizer);
      break;
    case PierStrategy::kIPbs:
      prioritizer_ = std::make_unique<IPbs>(ctx, options_.prioritizer);
      break;
    case PierStrategy::kIPes:
      prioritizer_ = std::make_unique<IPes>(ctx, options_.prioritizer);
      break;
    case PierStrategy::kSperSk:
      prioritizer_ = std::make_unique<SperSk>(ctx, options_.prioritizer);
      break;
    case PierStrategy::kFbPcs:
      prioritizer_ = std::make_unique<FbPcs>(ctx, options_.prioritizer);
      break;
  }
  PIER_CHECK(prioritizer_ != nullptr);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& r = *options_.metrics;
    metrics_.profiles_ingested = r.GetCounter("pipeline.profiles_ingested");
    metrics_.tokens_ingested = r.GetCounter("pipeline.tokens_ingested");
    metrics_.block_updates = r.GetCounter("pipeline.block_updates");
    metrics_.increments = r.GetCounter("pipeline.increments");
    metrics_.ticks = r.GetCounter("pipeline.ticks");
    metrics_.batches = r.GetCounter("pipeline.batches");
    metrics_.comparisons_emitted =
        r.GetCounter("pipeline.comparisons_emitted");
    metrics_.comparisons_suppressed =
        r.GetCounter("pipeline.comparisons_suppressed");
    metrics_.comparisons_retracted =
        r.GetCounter("pipeline.comparisons_retracted");
    metrics_.profiles_deleted = r.GetCounter("pipeline.profiles_deleted");
    metrics_.profiles_updated = r.GetCounter("pipeline.profiles_updated");
    metrics_.ingest_ns = r.GetHistogram("pipeline.ingest_ns");
    metrics_.emit_ns = r.GetHistogram("pipeline.emit_ns");
    metrics_.batch_size = r.GetHistogram("pipeline.batch_size");
    metrics_.state_bytes_profiles = r.GetGauge("persist.state_bytes.profiles");
    metrics_.state_bytes_blocks = r.GetGauge("persist.state_bytes.blocks");
    metrics_.state_bytes_dictionary =
        r.GetGauge("persist.state_bytes.dictionary");
    metrics_.state_bytes_filter = r.GetGauge("persist.state_bytes.filter");
    metrics_.state_bytes_clusters = r.GetGauge("persist.state_bytes.clusters");
    adaptive_k_.AttachMetrics(&r);
    if (options_.track_clusters) clusters_.InstrumentWith(&r);
  }
}

PierPipeline::~PierPipeline() = default;

WorkStats PierPipeline::Ingest(std::vector<EntityProfile> profiles) {
  const obs::ScopedTimer timer(metrics_.ingest_ns);
  WorkStats stats;
  std::vector<ProfileId> delta;
  delta.reserve(profiles.size());
  // Data Reading: scrub/tokenize; Incremental Blocking: extend the
  // block collection. All of the increment is blocked before any of
  // its comparisons are generated, so only_older_neighbors covers
  // intra-increment pairs too.
  for (auto& profile : profiles) {
    tokenizer_.TokenizeProfile(profile, dictionary_);
    stats.tokens += profile.tokens().size();
    ++stats.profiles;
    delta.push_back(profile.id);
    stats.block_updates += blocks_.AddProfile(profile);
    profiles_.Add(std::move(profile));
  }
  stats += prioritizer_->UpdateCmpIndex(delta);
  // Every ingested profile starts as a singleton cluster; the index
  // grows here (publish-then-release) so queries for new ids are valid
  // the moment Ingest returns.
  if (options_.track_clusters) clusters_.TrackUpTo(profiles_.size());
  obs::CounterAdd(metrics_.increments);
  obs::CounterAdd(metrics_.profiles_ingested, stats.profiles);
  obs::CounterAdd(metrics_.tokens_ingested, stats.tokens);
  obs::CounterAdd(metrics_.block_updates, stats.block_updates);
  return stats;
}

WorkStats PierPipeline::IngestPretokenized(
    std::vector<PretokenizedProfile> items) {
  const obs::ScopedTimer timer(metrics_.ingest_ns);
  WorkStats stats;
  std::vector<ProfileId> delta;
  delta.reserve(items.size());
  for (auto& item : items) {
    EntityProfile profile(item.id, item.source, {});
    std::vector<TokenId> ids;
    ids.reserve(item.tokens.size());
    for (const auto& token : item.tokens) {
      ids.push_back(dictionary_.Intern(token));
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (const TokenId id : ids) dictionary_.IncrementDocFrequency(id);
    profile.set_tokens(std::move(ids));
    stats.tokens += profile.tokens().size();
    ++stats.profiles;
    delta.push_back(profile.id);
    stats.block_updates += blocks_.AddProfile(profile);
    profiles_.Add(std::move(profile));
  }
  stats += prioritizer_->UpdateCmpIndex(delta);
  if (options_.track_clusters) clusters_.TrackUpTo(profiles_.size());
  obs::CounterAdd(metrics_.increments);
  obs::CounterAdd(metrics_.profiles_ingested, stats.profiles);
  obs::CounterAdd(metrics_.tokens_ingested, stats.tokens);
  obs::CounterAdd(metrics_.block_updates, stats.block_updates);
  return stats;
}

void PierPipeline::RetractProfile(ProfileId id, WorkStats* stats) {
  // Order matters: the prioritizer reads the profile's tokens through
  // its context, so it retracts before the block collection and the
  // store mutate.
  prioritizer_->OnRetract(id);
  const EntityProfile& p = profiles_.Get(id);
  stats->block_updates += blocks_.RemoveProfile(p);
  stats->tokens += p.tokens().size();
  for (const TokenId token : p.tokens()) {
    dictionary_.DecrementDocFrequency(token);
  }
  // Withdraw every executed pair with this endpoint so a corrected
  // profile's comparisons pass the filter again. Each key is removed
  // exactly once (the registry forgets both directions).
  for (const ProfileId partner : executed_pairs_.Take(id)) {
    const uint64_t key = PairKey(id, partner);
    if (options_.exact_executed_filter) {
      executed_exact_.erase(key);
    } else {
      executed_counting_.Remove(key);
    }
    ++stats->index_ops;
  }
  if (options_.track_clusters) clusters_.RemoveProfile(id);
}

WorkStats PierPipeline::Delete(const std::vector<ProfileId>& ids) {
  PIER_CHECK(options_.mutable_stream);
  const obs::ScopedTimer timer(metrics_.ingest_ns);
  WorkStats stats;
  for (const ProfileId id : ids) {
    PIER_CHECK(id < profiles_.size());
    if (!profiles_.IsLive(id)) continue;  // idempotent (shard fan-out)
    RetractProfile(id, &stats);
    profiles_.Remove(id);
    ++stats.profiles;
  }
  obs::CounterAdd(metrics_.increments);
  obs::CounterAdd(metrics_.profiles_deleted, stats.profiles);
  obs::CounterAdd(metrics_.block_updates, stats.block_updates);
  return stats;
}

WorkStats PierPipeline::Update(std::vector<EntityProfile> profiles) {
  PIER_CHECK(options_.mutable_stream);
  const obs::ScopedTimer timer(metrics_.ingest_ns);
  WorkStats stats;
  std::vector<ProfileId> delta;
  delta.reserve(profiles.size());
  for (auto& profile : profiles) {
    const ProfileId id = profile.id;
    PIER_CHECK(id < profiles_.size());
    if (profiles_.IsLive(id)) RetractProfile(id, &stats);
    tokenizer_.TokenizeProfile(profile, dictionary_);
    stats.tokens += profile.tokens().size();
    ++stats.profiles;
    delta.push_back(id);
    stats.block_updates += blocks_.AddProfile(profile);
    profiles_.Replace(std::move(profile));
    // The corrected profile re-enters as a singleton; its cluster
    // re-forms from post-update verdicts over the rescheduled pairs.
    if (options_.track_clusters) clusters_.ReviveAsSingleton(id);
  }
  stats += prioritizer_->UpdateCmpIndex(delta);
  obs::CounterAdd(metrics_.increments);
  obs::CounterAdd(metrics_.profiles_updated, stats.profiles);
  obs::CounterAdd(metrics_.block_updates, stats.block_updates);
  return stats;
}

WorkStats PierPipeline::UpdatePretokenized(
    std::vector<PretokenizedProfile> items) {
  PIER_CHECK(options_.mutable_stream);
  const obs::ScopedTimer timer(metrics_.ingest_ns);
  WorkStats stats;
  std::vector<ProfileId> delta;
  delta.reserve(items.size());
  for (auto& item : items) {
    const ProfileId id = item.id;
    PIER_CHECK(id < profiles_.size());
    if (profiles_.IsLive(id)) RetractProfile(id, &stats);
    EntityProfile profile(id, item.source, {});
    std::vector<TokenId> ids;
    ids.reserve(item.tokens.size());
    for (const auto& token : item.tokens) {
      ids.push_back(dictionary_.Intern(token));
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (const TokenId tid : ids) dictionary_.IncrementDocFrequency(tid);
    profile.set_tokens(std::move(ids));
    stats.tokens += profile.tokens().size();
    ++stats.profiles;
    delta.push_back(id);
    stats.block_updates += blocks_.AddProfile(profile);
    profiles_.Replace(std::move(profile));
    if (options_.track_clusters) clusters_.ReviveAsSingleton(id);
  }
  stats += prioritizer_->UpdateCmpIndex(delta);
  obs::CounterAdd(metrics_.increments);
  obs::CounterAdd(metrics_.profiles_updated, stats.profiles);
  obs::CounterAdd(metrics_.block_updates, stats.block_updates);
  return stats;
}

WorkStats PierPipeline::Tick() {
  obs::CounterAdd(metrics_.ticks);
  return prioritizer_->UpdateCmpIndex({});
}

bool PierPipeline::AlreadyExecuted(const Comparison& c) {
  const uint64_t key = c.Key();
  bool newly_added;
  if (options_.exact_executed_filter) {
    newly_added = executed_exact_.insert(key).second;
  } else if (options_.mutable_stream) {
    newly_added = !executed_counting_.TestAndAdd(key);
  } else {
    return executed_filter_.TestAndAdd(key);
  }
  // Record the pair exactly once per filter insert so RetractProfile
  // can withdraw the key (counting-filter cells tolerate exactly one
  // matching Remove).
  if (newly_added && options_.mutable_stream) executed_pairs_.Add(c.x, c.y);
  return !newly_added;
}

std::vector<Comparison> PierPipeline::EmitBatch() {
  return EmitBatch(adaptive_k_.FindK());
}

std::vector<Comparison> PierPipeline::EmitBatch(size_t k, WorkStats* stats) {
  const obs::ScopedTimer timer(metrics_.emit_ns);
  std::vector<Comparison> batch;
  batch.reserve(k);
  Comparison c;
  while (batch.size() < k) {
    if (!prioritizer_->Dequeue(&c)) {
      // Index drained: pull older pairs forward (empty-increment tick)
      // before giving up -- I-PBS schedules its next pending block,
      // I-PCS/I-PES fall back to the block scanner.
      const WorkStats tick_stats = prioritizer_->UpdateCmpIndex({});
      if (stats != nullptr) *stats += tick_stats;
      if (prioritizer_->Empty()) break;  // genuinely exhausted
      continue;
    }
    // Mutable streams: a retraction may race a comparison already
    // sitting in the index (OnRetract purges are best-effort for
    // lightweight prioritizers); this lazy liveness check is the
    // safety net that keeps dead endpoints out of every batch.
    if (options_.mutable_stream &&
        (!profiles_.IsLive(c.x) || !profiles_.IsLive(c.y))) {
      obs::CounterAdd(metrics_.comparisons_retracted);
      continue;
    }
    if (AlreadyExecuted(c)) {
      obs::CounterAdd(metrics_.comparisons_suppressed);
      continue;
    }
    batch.push_back(c);
  }
  comparisons_emitted_ += batch.size();
  obs::CounterAdd(metrics_.batches);
  obs::CounterAdd(metrics_.comparisons_emitted, batch.size());
  obs::HistogramRecord(metrics_.batch_size, batch.size());
  return batch;
}

namespace {

// The options fingerprint stored in `pier.meta`: every knob that
// shapes serialized state or future behaviour. Written by Snapshot and
// compared byte-for-byte by Restore, so a snapshot can never be loaded
// into a differently-configured pipeline.
void WriteOptionsFingerprint(std::ostream& out, const PierOptions& o) {
  serial::WriteU8(out, static_cast<uint8_t>(o.kind));
  serial::WriteU8(out, static_cast<uint8_t>(o.strategy));
  serial::WriteU64(out, o.blocking.max_block_size);
  serial::WriteF64(out, o.prioritizer.beta);
  serial::WriteU64(out, o.prioritizer.cmp_index_capacity);
  serial::WriteU64(out, o.prioritizer.per_entity_capacity);
  serial::WriteU64(out, o.prioritizer.entity_queue_capacity);
  serial::WriteU64(out, o.prioritizer.low_weight_queue_capacity);
  serial::WriteU8(out, static_cast<uint8_t>(o.prioritizer.scheme));
  serial::WriteBool(out, o.exact_executed_filter);
  serial::WriteU64(out, o.tokenizer.min_token_length);
  serial::WriteU64(out, o.tokenizer.max_token_length);
  serial::WriteU64(out, o.adaptive_k.initial_k);
  serial::WriteU64(out, o.adaptive_k.min_k);
  serial::WriteU64(out, o.adaptive_k.max_k);
  serial::WriteU64(out, o.adaptive_k.window);
  serial::WriteF64(out, o.adaptive_k.target_utilization);
  serial::WriteF64(out, o.adaptive_k.gain);
  // Shard identity, only when sharded: single-pipeline fingerprints
  // stay byte-identical to format version 2, so older snapshots keep
  // loading, while a shard section can never restore into a pipeline
  // owning a different token slice.
  if (o.token_shard_count > 1) {
    serial::WriteU32(out, o.token_shard_count);
    serial::WriteU32(out, o.token_shard_index);
  }
  // Mutability mode, only when enabled (same compatibility reasoning):
  // it selects the filter wire formats here and in the prioritizer
  // sections, so an append-only pipeline can never load a mutable
  // snapshot or vice versa.
  if (o.mutable_stream) serial::WriteBool(out, true);
  // Frontier knobs, only for the frontier strategies (they shape the
  // emitted comparison stream, so a snapshot can never restore into a
  // differently-seeded run); pre-frontier snapshots keep loading.
  if (o.strategy == PierStrategy::kSperSk ||
      o.strategy == PierStrategy::kFbPcs) {
    serial::WriteU64(out, o.prioritizer.frontier_seed);
    serial::WriteU64(out, o.prioritizer.frontier_sample_budget);
    serial::WriteU64(out, o.prioritizer.frontier_probes);
  }
}

void SetRestoreError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

void PierPipeline::Snapshot(persist::SnapshotBuilder& builder,
                            const std::string& prefix) const {
  std::ostream& meta = builder.AddSection(prefix + ".meta");
  WriteOptionsFingerprint(meta, options_);
  serial::WriteU64(meta, comparisons_emitted_);

  dictionary_.Snapshot(builder.AddSection(prefix + ".dictionary"));
  profiles_.Snapshot(builder.AddSection(prefix + ".profiles"));
  blocks_.Snapshot(builder.AddSection(prefix + ".blocks"));
  prioritizer_->Snapshot(builder.AddSection(prefix + ".prioritizer"));

  std::ostream& filter = builder.AddSection(prefix + ".filter");
  if (options_.exact_executed_filter) {
    // Sorted for canonical bytes (hash-set iteration order varies).
    std::vector<uint64_t> keys(executed_exact_.begin(),
                               executed_exact_.end());
    std::sort(keys.begin(), keys.end());
    serial::WriteVec(filter, keys, serial::WriteU64);
  } else if (options_.mutable_stream) {
    executed_counting_.Snapshot(filter);
  } else {
    executed_filter_.Snapshot(filter);
  }
  // Mutable streams carry the retraction registry alongside whichever
  // filter is active (the fingerprint gates the format).
  if (options_.mutable_stream) executed_pairs_.Snapshot(filter);

  adaptive_k_.Snapshot(builder.AddSection(prefix + ".findk"));
  clusters_.Snapshot(builder.AddSection(prefix + ".clusters"));

  obs::GaugeSet(metrics_.state_bytes_clusters,
                static_cast<double>(clusters_.ApproxMemoryBytes()));
  obs::GaugeSet(metrics_.state_bytes_profiles,
                static_cast<double>(profiles_.ApproxMemoryBytes()));
  obs::GaugeSet(metrics_.state_bytes_blocks,
                static_cast<double>(blocks_.ApproxMemoryBytes()));
  obs::GaugeSet(metrics_.state_bytes_dictionary,
                static_cast<double>(dictionary_.ApproxMemoryBytes()));
  const size_t filter_bytes =
      options_.mutable_stream
          ? executed_counting_.ApproxMemoryBytes() +
                executed_pairs_.ApproxMemoryBytes()
          : executed_filter_.ApproxMemoryBytes();
  obs::GaugeSet(metrics_.state_bytes_filter,
                static_cast<double>(filter_bytes));
}

bool PierPipeline::Restore(const persist::SnapshotReader& reader,
                           std::string* error, const std::string& prefix) {
  if (!profiles_.empty()) {
    SetRestoreError(error, "pipeline restore requires a fresh pipeline");
    return false;
  }
  const auto decode_error = [&](const char* section_name) {
    SetRestoreError(error, "section '" + prefix + "." + section_name +
                               "' failed to decode");
  };

  std::istringstream meta;
  if (!reader.Open(prefix + ".meta", &meta, error)) return false;
  std::ostringstream expected;
  WriteOptionsFingerprint(expected, options_);
  const std::string expected_bytes = std::move(expected).str();
  std::string actual_bytes(expected_bytes.size(), '\0');
  uint64_t comparisons_emitted = 0;
  if (!meta.read(actual_bytes.data(),
                 static_cast<std::streamsize>(actual_bytes.size())) ||
      !serial::ReadU64(meta, &comparisons_emitted)) {
    SetRestoreError(error, "section '" + prefix + ".meta' truncated");
    return false;
  }
  if (actual_bytes != expected_bytes) {
    SetRestoreError(error,
                    "snapshot options fingerprint does not match this "
                    "pipeline's configuration (kind/strategy/capacities/"
                    "tokenizer must be identical to the checkpointed run)");
    return false;
  }

  std::istringstream section;
  if (!reader.Open(prefix + ".dictionary", &section, error)) return false;
  if (!dictionary_.Restore(section)) {
    decode_error("dictionary");
    return false;
  }
  if (!reader.Open(prefix + ".profiles", &section, error)) return false;
  if (!profiles_.Restore(section)) {
    decode_error("profiles");
    return false;
  }
  if (!reader.Open(prefix + ".blocks", &section, error)) return false;
  if (!blocks_.Restore(section)) {
    decode_error("blocks");
    return false;
  }
  if (!reader.Open(prefix + ".prioritizer", &section, error)) return false;
  if (!prioritizer_->Restore(section)) {
    decode_error("prioritizer");
    return false;
  }

  if (!reader.Open(prefix + ".filter", &section, error)) return false;
  if (options_.exact_executed_filter) {
    std::vector<uint64_t> keys;
    if (!serial::ReadVec(section, &keys, serial::ReadU64)) {
      decode_error("filter");
      return false;
    }
    executed_exact_.clear();
    executed_exact_.insert(keys.begin(), keys.end());
  } else if (options_.mutable_stream) {
    if (!executed_counting_.Restore(section)) {
      decode_error("filter");
      return false;
    }
  } else if (!executed_filter_.Restore(section)) {
    decode_error("filter");
    return false;
  }
  if (options_.mutable_stream && !executed_pairs_.Restore(section)) {
    decode_error("filter");
    return false;
  }

  if (!reader.Open(prefix + ".findk", &section, error)) return false;
  if (!adaptive_k_.Restore(section)) {
    decode_error("findk");
    return false;
  }

  // Absent in v1 snapshots: the cluster index starts empty and
  // repopulates from post-resume match verdicts.
  if (reader.Has(prefix + ".clusters")) {
    if (!reader.Open(prefix + ".clusters", &section, error)) return false;
    if (!clusters_.Restore(section)) {
      decode_error("clusters");
      return false;
    }
  }

  comparisons_emitted_ = comparisons_emitted;
  return true;
}

}  // namespace pier
