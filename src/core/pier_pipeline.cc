#include "core/pier_pipeline.h"

#include "core/i_pbs.h"
#include "core/i_pcs.h"
#include "core/i_pes.h"
#include "obs/scoped_timer.h"
#include "util/check.h"

namespace pier {

const char* ToString(PierStrategy strategy) {
  switch (strategy) {
    case PierStrategy::kIPcs:
      return "I-PCS";
    case PierStrategy::kIPbs:
      return "I-PBS";
    case PierStrategy::kIPes:
      return "I-PES";
  }
  return "?";
}

PierPipeline::PierPipeline(PierOptions options)
    : options_(options),
      blocks_(options.kind, options.blocking),
      tokenizer_(options.tokenizer),
      adaptive_k_(options.adaptive_k) {
  const PrioritizerContext ctx{&blocks_, &profiles_};
  switch (options_.strategy) {
    case PierStrategy::kIPcs:
      prioritizer_ = std::make_unique<IPcs>(ctx, options_.prioritizer);
      break;
    case PierStrategy::kIPbs:
      prioritizer_ = std::make_unique<IPbs>(ctx, options_.prioritizer);
      break;
    case PierStrategy::kIPes:
      prioritizer_ = std::make_unique<IPes>(ctx, options_.prioritizer);
      break;
  }
  PIER_CHECK(prioritizer_ != nullptr);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& r = *options_.metrics;
    metrics_.profiles_ingested = r.GetCounter("pipeline.profiles_ingested");
    metrics_.tokens_ingested = r.GetCounter("pipeline.tokens_ingested");
    metrics_.block_updates = r.GetCounter("pipeline.block_updates");
    metrics_.increments = r.GetCounter("pipeline.increments");
    metrics_.ticks = r.GetCounter("pipeline.ticks");
    metrics_.batches = r.GetCounter("pipeline.batches");
    metrics_.comparisons_emitted =
        r.GetCounter("pipeline.comparisons_emitted");
    metrics_.comparisons_suppressed =
        r.GetCounter("pipeline.comparisons_suppressed");
    metrics_.ingest_ns = r.GetHistogram("pipeline.ingest_ns");
    metrics_.emit_ns = r.GetHistogram("pipeline.emit_ns");
    metrics_.batch_size = r.GetHistogram("pipeline.batch_size");
    adaptive_k_.AttachMetrics(&r);
  }
}

PierPipeline::~PierPipeline() = default;

WorkStats PierPipeline::Ingest(std::vector<EntityProfile> profiles) {
  const obs::ScopedTimer timer(metrics_.ingest_ns);
  WorkStats stats;
  std::vector<ProfileId> delta;
  delta.reserve(profiles.size());
  // Data Reading: scrub/tokenize; Incremental Blocking: extend the
  // block collection. All of the increment is blocked before any of
  // its comparisons are generated, so only_older_neighbors covers
  // intra-increment pairs too.
  for (auto& profile : profiles) {
    tokenizer_.TokenizeProfile(profile, dictionary_);
    stats.tokens += profile.tokens.size();
    ++stats.profiles;
    delta.push_back(profile.id);
    stats.block_updates += blocks_.AddProfile(profile);
    profiles_.Add(std::move(profile));
  }
  stats += prioritizer_->UpdateCmpIndex(delta);
  obs::CounterAdd(metrics_.increments);
  obs::CounterAdd(metrics_.profiles_ingested, stats.profiles);
  obs::CounterAdd(metrics_.tokens_ingested, stats.tokens);
  obs::CounterAdd(metrics_.block_updates, stats.block_updates);
  return stats;
}

WorkStats PierPipeline::Tick() {
  obs::CounterAdd(metrics_.ticks);
  return prioritizer_->UpdateCmpIndex({});
}

bool PierPipeline::AlreadyExecuted(uint64_t key) {
  if (options_.exact_executed_filter) {
    return !executed_exact_.insert(key).second;
  }
  return executed_filter_.TestAndAdd(key);
}

std::vector<Comparison> PierPipeline::EmitBatch() {
  return EmitBatch(adaptive_k_.FindK());
}

std::vector<Comparison> PierPipeline::EmitBatch(size_t k, WorkStats* stats) {
  const obs::ScopedTimer timer(metrics_.emit_ns);
  std::vector<Comparison> batch;
  batch.reserve(k);
  Comparison c;
  while (batch.size() < k) {
    if (!prioritizer_->Dequeue(&c)) {
      // Index drained: pull older pairs forward (empty-increment tick)
      // before giving up -- I-PBS schedules its next pending block,
      // I-PCS/I-PES fall back to the block scanner.
      const WorkStats tick_stats = prioritizer_->UpdateCmpIndex({});
      if (stats != nullptr) *stats += tick_stats;
      if (prioritizer_->Empty()) break;  // genuinely exhausted
      continue;
    }
    if (AlreadyExecuted(c.Key())) {
      obs::CounterAdd(metrics_.comparisons_suppressed);
      continue;
    }
    batch.push_back(c);
  }
  comparisons_emitted_ += batch.size();
  obs::CounterAdd(metrics_.batches);
  obs::CounterAdd(metrics_.comparisons_emitted, batch.size());
  obs::HistogramRecord(metrics_.batch_size, batch.size());
  return batch;
}

}  // namespace pier
