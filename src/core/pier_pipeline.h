// The PIER pipeline facade (Figure 3 / Section 3.2): wires Data
// Reading (tokenization), Incremental Blocking, Incremental Comparison
// Prioritization (one of I-PCS / I-PBS / I-PES), and the adaptive
// findK() controller into the public API downstream users interact
// with.
//
// Typical use (see examples/quickstart.cc):
//
//   pier::PierOptions options;
//   options.kind = pier::DatasetKind::kCleanClean;
//   pier::PierPipeline pipeline(options);
//   pipeline.Ingest(std::move(new_profiles));      // per increment
//   for (auto& c : pipeline.EmitBatch()) {         // between arrivals
//     if (matcher.Matches(pipeline.profiles().Get(c.x),
//                         pipeline.profiles().Get(c.y))) { ... }
//   }
//   pipeline.Tick();  // when idle, pulls older pairs forward
//
// Batched deployments should hand EmitBatch() output to
// ParallelMatchExecutor::ExecuteVerdicts (the threshold-only kernel
// path) instead of calling Matches() per pair; the verdict stream is
// identical either way (see similarity/parallel_executor.h).
//
// The pipeline owns all shared state; it is single-threaded by design
// (the paper's asynchronous stages are reproduced by the stream
// simulator's virtual-time interleaving).

#ifndef PIER_CORE_PIER_PIPELINE_H_
#define PIER_CORE_PIER_PIPELINE_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "blocking/block_collection.h"
#include "core/find_k.h"
#include "core/prioritizer.h"
#include "model/comparison.h"
#include "model/entity_profile.h"
#include "model/pair_registry.h"
#include "model/profile_store.h"
#include "model/token_dictionary.h"
#include "obs/metrics.h"
#include "serve/cluster_index.h"
#include "text/tokenizer.h"
#include "util/counting_bloom_filter.h"
#include "util/scalable_bloom_filter.h"

namespace pier {

namespace persist {
class SnapshotBuilder;
class SnapshotReader;
}  // namespace persist

enum class PierStrategy : uint8_t {
  kIPcs = 0,
  kIPbs = 1,
  kIPes = 2,
  // Frontier strategies (src/frontier/): stochastic top-k sampling and
  // verdict-feedback block boosting. First-class citizens of the same
  // machinery (snapshots, mutable streams, harness, CLI).
  kSperSk = 3,
  kFbPcs = 4,
};

const char* ToString(PierStrategy strategy);

struct PierOptions {
  DatasetKind kind = DatasetKind::kDirty;
  PierStrategy strategy = PierStrategy::kIPes;
  BlockingOptions blocking;
  PrioritizerOptions prioritizer;
  AdaptiveKOptions adaptive_k;
  TokenizerOptions tokenizer;
  // Use an exact hash set instead of the scalable Bloom filter for the
  // executed-comparison filter (ablation knob; exact never drops a
  // pair but grows without bound).
  bool exact_executed_filter = false;
  // Worker threads for match execution (RealtimePipeline and other
  // executor-based deployments). 1 = sequential. The verdict stream is
  // deterministic and identical for every value (see
  // similarity/parallel_executor.h).
  size_t execution_threads = 1;
  // Optional observability sink (src/obs/): when set, the pipeline and
  // its adaptive-K controller register `pipeline.*` / `findk.*`
  // metrics there. Non-owning; must outlive the pipeline.
  obs::MetricsRegistry* metrics = nullptr;
  // Shard identity for the sharded ingest path (see
  // stream/sharded_pipeline.h): count > 1 marks this pipeline as
  // owning the slice of the token space with
  // Mix64(HashString(token)) % count == index. The pipeline itself
  // does not filter tokens (the shard router pre-filters); the fields
  // exist so a shard snapshot carries its identity in the options
  // fingerprint. They are only written when count > 1, keeping
  // single-pipeline snapshots byte-compatible with earlier versions.
  uint32_t token_shard_count = 1;
  uint32_t token_shard_index = 0;
  // Maintain the in-pipeline cluster index (TrackUpTo on ingest,
  // serve.* instrumentation). Sharded deployments disable this on
  // shard sub-pipelines: the combiner owns the single serving index.
  bool track_clusters = true;
  // Mutable streams: accept Delete / Update increments. Costs memory
  // (the executed-comparison filter becomes a counting filter unless
  // exact, plus a pair registry per filter so retraction can withdraw
  // keys) and changes the snapshot wire format, so it participates in
  // the options fingerprint (written only when set, keeping append-only
  // snapshots byte-compatible with earlier versions). Mirrored into
  // PrioritizerOptions by the constructor.
  bool mutable_stream = false;
};

// One profile whose tokens were already normalized and split by an
// upstream router (stream/sharded_pipeline.h): the pipeline interns
// `tokens` into its own dictionary instead of re-tokenizing
// attributes. `tokens` carries one entry per distinct token of the
// profile that this pipeline owns.
struct PretokenizedProfile {
  ProfileId id = kInvalidProfileId;
  SourceId source = 0;
  std::vector<std::string> tokens;
};

class PierPipeline {
 public:
  explicit PierPipeline(PierOptions options);
  ~PierPipeline();

  PierPipeline(const PierPipeline&) = delete;
  PierPipeline& operator=(const PierPipeline&) = delete;

  // Data Reading + Incremental Blocking + prioritizer update for one
  // increment. Profiles must carry dense ids continuing the ingestion
  // order; tokens/flat_text are filled here.
  WorkStats Ingest(std::vector<EntityProfile> profiles);

  // Sharded-ingest seam: same as Ingest, but for profiles whose
  // tokens were already normalized/split (and shard-filtered) by the
  // router. Interns the given spellings into this pipeline's
  // dictionary, builds blocks from them, and stores a token-only
  // profile (no attributes / flat_text -- shard pipelines never feed
  // the matcher, which reads the router's global store instead).
  WorkStats IngestPretokenized(std::vector<PretokenizedProfile> items);

  // Mutable streams (requires options.mutable_stream): retracts the
  // given live profiles. Each delete withdraws the profile from the
  // block collection, the token doc frequencies, the prioritizer's
  // pending comparisons, the executed-comparison filter (via the pair
  // registry), and the cluster index (surviving cluster members
  // re-resolve over their remaining match edges); the profile store
  // slot becomes a tombstone (ids are never reused). Ids already dead
  // are skipped (idempotent, so shard routers can fan a delete out to
  // every shard).
  WorkStats Delete(const std::vector<ProfileId>& ids);

  // Mutable streams: corrections. Each profile replaces the live (or
  // tombstoned) profile with the same id: the old version is retracted
  // exactly as in Delete, then the new content is tokenized, blocked,
  // and scheduled like a fresh arrival. The profile re-enters the
  // cluster index as a singleton; its cluster membership re-forms from
  // post-update match verdicts.
  WorkStats Update(std::vector<EntityProfile> profiles);

  // Sharded-ingest seam for Update, mirroring IngestPretokenized: the
  // router already normalized/split (and shard-filtered) the corrected
  // profile's tokens.
  WorkStats UpdatePretokenized(std::vector<PretokenizedProfile> items);

  // The periodic empty increment the blocking step emits while the
  // stream is idle; lets the prioritizer pull older pairs forward.
  WorkStats Tick();

  // Signals that no further increments will arrive; unlocks the block
  // scanner's full tail rescan for eventual quality.
  void NotifyStreamEnd() { prioritizer_->OnStreamEnd(); }

  // Algorithm 1, lines 3-9: dequeues up to findK() best comparisons,
  // suppressing any comparison already executed. When the index
  // underfills the batch, the pipeline pulls more work forward with
  // internal idle ticks (the blocking step's empty increments), so an
  // empty result means the pipeline is fully drained for now.
  std::vector<Comparison> EmitBatch();
  // Same, with an explicit K (used by tests and baselines). `stats`,
  // when non-null, accumulates the work of any internal ticks.
  std::vector<Comparison> EmitBatch(size_t k, WorkStats* stats = nullptr);

  // Rate feedback for the adaptive-K controller.
  void ReportArrival(double t) { adaptive_k_.OnArrival(t); }
  void ReportBatchCost(size_t comparisons, double seconds) {
    adaptive_k_.OnBatchProcessed(comparisons, seconds);
  }

  bool PrioritizerEmpty() const { return prioritizer_->Empty(); }

  // Records a positive match verdict in the online cluster index.
  // Callers feed every `is_match` verdict here (the realtime worker
  // and the stream simulator both do); the index merges the two
  // profiles' clusters. Safe against concurrent cluster queries.
  void RecordMatch(ProfileId a, ProfileId b) { clusters_.AddMatch(a, b); }

  // Feeds one executed comparison's classification (positive or
  // negative) back to the prioritizer. Feedback strategies (FB-PCS)
  // use it to promote/demote blocks mid-stream; the others ignore it.
  // Callers that feed RecordMatch should feed every verdict here too.
  void RecordVerdict(ProfileId a, ProfileId b, bool is_match) {
    prioritizer_->OnVerdict(a, b, is_match);
  }

  // The online cluster-serving index (see serve/cluster_index.h).
  // Query methods (ClusterOf / ClusterIdOf / ClusterSizeOf) are safe
  // to call concurrently with Ingest / RecordMatch.
  const serve::ClusterIndex& clusters() const { return clusters_; }

  const ProfileStore& profiles() const { return profiles_; }
  const BlockCollection& blocks() const { return blocks_; }
  const TokenDictionary& dictionary() const { return dictionary_; }
  const IncrementalPrioritizer& prioritizer() const { return *prioritizer_; }
  AdaptiveK& adaptive_k() { return adaptive_k_; }
  uint64_t comparisons_emitted() const { return comparisons_emitted_; }

  // Checkpoint support (see src/persist/snapshot.h): serializes every
  // stateful component -- dictionary, profile store, block collection,
  // prioritizer internals, executed-comparison filter, findK
  // controller -- into `<prefix>.*` sections, plus a `<prefix>.meta`
  // options fingerprint. The default prefix "pier" is the historical
  // single-pipeline layout; the sharded pipeline passes "shard<i>" so
  // N shard engines coexist in one snapshot file. Also refreshes the
  // `persist.state_bytes.*` gauges.
  void Snapshot(persist::SnapshotBuilder& builder,
                const std::string& prefix = "pier") const;

  // Restores from a validated snapshot into this *freshly constructed*
  // pipeline. The snapshot's options fingerprint must match this
  // pipeline's options (strategy, kind, capacities, tokenizer...);
  // mismatches and decode failures return false with a diagnostic in
  // *error and must be treated as fatal for the restore attempt.
  // `prefix` selects the section family and must match the Snapshot
  // call that produced the file.
  bool Restore(const persist::SnapshotReader& reader, std::string* error,
               const std::string& prefix = "pier");

 private:
  bool AlreadyExecuted(const Comparison& c);

  // Delete internals for one live profile (shared by Delete and the
  // retract half of Update): everything except the profile-store
  // tombstone, which Delete writes and Update replaces.
  void RetractProfile(ProfileId id, WorkStats* stats);

  // `pipeline.*` stage metrics; all null when options.metrics is null.
  struct Metrics {
    obs::Counter* profiles_ingested = nullptr;
    obs::Counter* tokens_ingested = nullptr;
    obs::Counter* block_updates = nullptr;
    obs::Counter* increments = nullptr;
    obs::Counter* ticks = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* comparisons_emitted = nullptr;
    obs::Counter* comparisons_suppressed = nullptr;
    obs::Counter* comparisons_retracted = nullptr;
    obs::Counter* profiles_deleted = nullptr;
    obs::Counter* profiles_updated = nullptr;
    obs::Histogram* ingest_ns = nullptr;
    obs::Histogram* emit_ns = nullptr;
    obs::Histogram* batch_size = nullptr;
    // `persist.state_bytes.*` gauges, refreshed on every Snapshot.
    obs::Gauge* state_bytes_profiles = nullptr;
    obs::Gauge* state_bytes_blocks = nullptr;
    obs::Gauge* state_bytes_dictionary = nullptr;
    obs::Gauge* state_bytes_filter = nullptr;
    obs::Gauge* state_bytes_clusters = nullptr;
  };

  PierOptions options_;
  Metrics metrics_;
  TokenDictionary dictionary_;
  ProfileStore profiles_;
  BlockCollection blocks_;
  Tokenizer tokenizer_;
  std::unique_ptr<IncrementalPrioritizer> prioritizer_;
  AdaptiveK adaptive_k_;

  serve::ClusterIndex clusters_;
  // Executed-comparison filter: exactly one of the three is active.
  // Append-only streams use the scalable Bloom filter (or the exact
  // set under the ablation knob); mutable streams swap the Bloom
  // filter for its counting variant so deletes can withdraw keys, and
  // additionally maintain the pair registry (for the exact set too:
  // erasing keys needs the partner list either way).
  ScalableBloomFilter executed_filter_;
  ScalableCountingBloomFilter executed_counting_;
  std::unordered_set<uint64_t> executed_exact_;
  PairRegistry executed_pairs_;
  uint64_t comparisons_emitted_ = 0;
};

}  // namespace pier

#endif  // PIER_CORE_PIER_PIPELINE_H_
