// The Incremental Comparison Prioritization component (Section 3.2,
// Algorithm 1): the novel PIER pipeline stage that maintains a global
// index of the best unexecuted comparisons across *all* increments
// seen so far (the globality condition of Definition 3) and emits them
// best-first.
//
// Five strategies implement this interface:
//   I-PCS (comparison-centric, Section 4 / Algorithm 2)
//   I-PBS (block-centric,      Section 5 / Algorithm 3)
//   I-PES (entity-centric,     Section 6 / Algorithm 4)
// plus the frontier family (src/frontier/, DESIGN.md section 10):
//   SPER-SK (stochastic top-k sampling, after SPER)
//   FB-PCS  (verdict-feedback block boosting, after pBlocking)

#ifndef PIER_CORE_PRIORITIZER_H_
#define PIER_CORE_PRIORITIZER_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "blocking/block_collection.h"
#include "metablocking/weighting.h"
#include "model/comparison.h"
#include "model/profile_store.h"
#include "model/types.h"

namespace pier {

namespace obs {
class MetricsRegistry;
}  // namespace obs

// Work accounting returned by pipeline steps; consumed by the
// ModeledCostMeter to derive deterministic virtual-time costs.
struct WorkStats {
  uint64_t profiles = 0;
  uint64_t tokens = 0;
  uint64_t block_updates = 0;
  uint64_t comparisons_generated = 0;
  uint64_t index_ops = 0;

  WorkStats& operator+=(const WorkStats& other) {
    profiles += other.profiles;
    tokens += other.tokens;
    block_updates += other.block_updates;
    comparisons_generated += other.comparisons_generated;
    index_ops += other.index_ops;
    return *this;
  }
};

struct PrioritizerOptions {
  // Block-ghosting parameter (Algorithm 2): keep blocks of size
  // <= |b_min| / beta; beta in (0, 1].
  double beta = 0.5;

  // Capacity of the main bounded CmpIndex (I-PCS, I-PBS).
  size_t cmp_index_capacity = 1u << 18;

  // I-PES: per-entity priority queue bound |E_PQ(e)|.
  size_t per_entity_capacity = 64;
  // I-PES: EntityQueue bound.
  size_t entity_queue_capacity = 1u << 18;
  // I-PES: bound of the low-weight overflow queue PQ.
  size_t low_weight_queue_capacity = 1u << 17;

  WeightingScheme scheme = WeightingScheme::kCbs;

  // Frontier strategies (src/frontier/). SPER-SK: RNG seed (the
  // determinism contract: same seed + same increment sequence =>
  // byte-identical dequeue stream at every execution thread count),
  // per-profile sampling budget, and tournament probe count. The seed
  // and budget shape the emitted comparison stream, so they join the
  // pipeline options fingerprint for the frontier strategies.
  uint64_t frontier_seed = 42;
  size_t frontier_sample_budget = 32;
  size_t frontier_probes = 8;

  // Optional observability sink for `frontier.*` strategy metrics
  // (mirrored from PierOptions::metrics by the pipeline constructor;
  // non-owning, never part of the fingerprint).
  obs::MetricsRegistry* metrics = nullptr;

  // Mutable streams (deletes / corrections): strategies keep enough
  // retraction state (deletable pair filters, pair registries) that
  // OnRetract can withdraw a profile's pending comparisons. Changes
  // the snapshot wire format of the strategies that carry a pair
  // filter, so it participates in the pipeline options fingerprint.
  bool mutable_stream = false;
};

// Read-only shared state every prioritizer consults. The pointed-to
// objects are owned by the pipeline and outlive the prioritizer.
struct PrioritizerContext {
  const BlockCollection* blocks = nullptr;
  const ProfileStore* profiles = nullptr;
};

class IncrementalPrioritizer {
 public:
  virtual ~IncrementalPrioritizer() = default;

  // Algorithm 1, line 1: folds the (already blocked) increment into
  // the global CmpIndex. `delta` holds the increment's profile ids and
  // is empty for the periodic ticks the blocking step emits while the
  // stream is idle (Section 3.2), which trigger the consideration of
  // further pairs from older data.
  virtual WorkStats UpdateCmpIndex(const std::vector<ProfileId>& delta) = 0;

  // Retrieves and removes the globally best remaining comparison.
  // Returns false when the index is depleted.
  virtual bool Dequeue(Comparison* out) = 0;

  virtual bool Empty() const = 0;

  // Called once when the stream has delivered its last increment;
  // strategies with a block scanner lift its rescan throttle so the
  // tail pass covers every block at its final size.
  virtual void OnStreamEnd() {}

  // Mutable streams: profile `id` is being deleted (or replaced). The
  // call arrives *before* the profile store / block collection mutate,
  // so the profile's tokens are still readable through the context.
  // Strategies drop every pending comparison with `id` as an endpoint
  // and forget any pair-filter entries involving it, so a corrected
  // profile's pairs can be rescheduled. The base implementation is a
  // no-op for lightweight test doubles; stale entries that survive a
  // no-op are caught by the pipeline's emit-time liveness check.
  virtual void OnRetract(ProfileId id) { (void)id; }

  // Verdict feedback: called once per executed comparison with the
  // matcher's classification (positives *and* negatives, unlike the
  // cluster index's RecordMatch). Feedback strategies (FB-PCS) fold
  // the outcome into their block/edge scores; everything else ignores
  // it. Arrives after the comparison was emitted, so implementations
  // must tolerate endpoints that have since been retracted.
  virtual void OnVerdict(ProfileId a, ProfileId b, bool is_match) {
    (void)a;
    (void)b;
    (void)is_match;
  }

  // Checkpoint support (see src/persist/): serializes the strategy's
  // complete internal state (queues, per-token indexes, filters,
  // scanner progress) so a restored prioritizer emits the exact
  // dequeue sequence the uninterrupted one would. The base
  // implementations are no-ops so lightweight test doubles keep
  // working; all three shipped strategies override both.
  virtual void Snapshot(std::ostream& out) const { (void)out; }
  virtual bool Restore(std::istream& in) {
    (void)in;
    return false;
  }

  virtual const char* name() const = 0;
};

}  // namespace pier

#endif  // PIER_CORE_PRIORITIZER_H_
