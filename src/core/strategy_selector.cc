#include "core/strategy_selector.h"

#include <cctype>
#include <cmath>
#include <string_view>

namespace pier {

namespace {

constexpr PierStrategy kAllStrategies[] = {
    PierStrategy::kIPcs, PierStrategy::kIPbs, PierStrategy::kIPes,
    PierStrategy::kSperSk, PierStrategy::kFbPcs,
};

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

const char* KnownAlgorithmNames() {
  return "I-PCS, I-PBS, I-PES, SPER-SK, FB-PCS";
}

bool ParseAlgorithmName(const std::string& name, PierStrategy* out) {
  const std::string lower = ToLower(name);
  for (const PierStrategy strategy : kAllStrategies) {
    if (lower == ToLower(ToString(strategy))) {
      *out = strategy;
      return true;
    }
  }
  return false;
}

StrategyRecommendation RecommendStrategy(const BlockCollection& blocks,
                                         const ProfileStore& profiles) {
  StrategyRecommendation rec;
  if (profiles.empty()) {
    rec.rationale = "no data yet; defaulting to I-PES";
    return rec;
  }

  // Profile-shape signals.
  double token_sum = 0.0;
  double token_sq_sum = 0.0;
  uint64_t value_chars = 0;
  uint64_t value_count = 0;
  for (ProfileId id = 0; id < profiles.size(); ++id) {
    const EntityProfile& p = profiles.Get(id);
    const double t = static_cast<double>(p.tokens().size());
    token_sum += t;
    token_sq_sum += t * t;
    p.ForEachAttribute([&](std::string_view, std::string_view value) {
      value_chars += value.size();
      ++value_count;
    });
  }
  const double n = static_cast<double>(profiles.size());
  rec.mean_tokens_per_profile = token_sum / n;
  const double variance =
      std::max(0.0, token_sq_sum / n - rec.mean_tokens_per_profile *
                                           rec.mean_tokens_per_profile);
  rec.token_count_cv =
      rec.mean_tokens_per_profile > 0.0
          ? std::sqrt(variance) / rec.mean_tokens_per_profile
          : 0.0;
  rec.mean_value_length =
      value_count == 0
          ? 0.0
          : static_cast<double>(value_chars) / static_cast<double>(value_count);

  // Block-shape signal: how much of the collection consists of tiny,
  // highly informative blocks.
  size_t active = 0;
  size_t small = 0;
  for (TokenId token = 0; token < blocks.NumSlots(); ++token) {
    if (!blocks.IsActive(token)) continue;
    ++active;
    if (blocks.block(token).size() <= 4) ++small;
  }
  rec.small_block_share =
      active == 0 ? 0.0
                  : static_cast<double>(small) / static_cast<double>(active);

  // Relational-style data: short values, uniform profile sizes, and a
  // block collection not dominated by tiny blocks (short values from
  // modest vocabularies produce mid-size blocks whose *smallest* are
  // highly informative). Heterogeneous web data has long ragged
  // profiles and a long tail of near-singleton blocks.
  const bool short_values = rec.mean_value_length <= 12.0;
  const bool uniform_profiles = rec.token_count_cv <= 0.35;
  if (short_values && uniform_profiles) {
    rec.strategy = PierStrategy::kIPbs;
    rec.rationale =
        "short uniform relational-style values: smallest blocks are "
        "highly informative, block-centric scheduling (I-PBS) preferred";
  } else {
    rec.strategy = PierStrategy::kIPes;
    rec.rationale =
        "heterogeneous or long-valued profiles: entity-centric "
        "scheduling (I-PES) is the robust choice";
  }
  return rec;
}

}  // namespace pier
