// Strategy selection heuristic -- the paper's stated future work
// ("integration of a heuristic for determining the best appropriate
// method to use for the given data", Section 8), grounded in its
// empirical findings (Section 7.2.3/7.3.1): block-centric I-PBS wins
// on relational-style data whose smallest blocks are highly
// informative (short, non-heterogeneous values as in the census
// dataset), while entity-centric I-PES is the robust default on
// heterogeneous web-style data.
//
// The selector inspects a sample of already-ingested data (block
// collection + profiles) and scores "relational-ness" from three
// signals: value length, profile-size dispersion, and the share of
// small blocks among the active ones.

#ifndef PIER_CORE_STRATEGY_SELECTOR_H_
#define PIER_CORE_STRATEGY_SELECTOR_H_

#include <string>

#include "blocking/block_collection.h"
#include "core/pier_pipeline.h"
#include "model/profile_store.h"

namespace pier {

struct StrategyRecommendation {
  PierStrategy strategy = PierStrategy::kIPes;
  // The signals behind the choice, for logging/inspection.
  double mean_tokens_per_profile = 0.0;
  double token_count_cv = 0.0;      // coefficient of variation
  double mean_value_length = 0.0;   // characters per attribute value
  double small_block_share = 0.0;   // active blocks with <= 4 members
  std::string rationale;
};

// Analyzes the data seen so far and recommends a prioritization
// strategy. Deterministic; cheap (one pass over profiles and blocks).
// With no data yet, recommends I-PES (the paper's overall winner).
StrategyRecommendation RecommendStrategy(const BlockCollection& blocks,
                                         const ProfileStore& profiles);

// The algorithm-name registry backing `pier_cli --algorithm` and its
// unknown-name diagnostic. Comma-separated canonical names of every
// selectable strategy (the paper trio plus the frontier family), in
// enum order.
const char* KnownAlgorithmNames();

// Parses a user-facing algorithm name into a strategy. Accepts the
// canonical names from KnownAlgorithmNames() case-insensitively
// ("I-PCS", "i-pcs", "sper-sk", "FB-PCS", ...). Returns false -- with
// *out untouched -- for anything else, including "auto" (callers
// handle auto-selection via RecommendStrategy themselves).
bool ParseAlgorithmName(const std::string& name, PierStrategy* out);

}  // namespace pier

#endif  // PIER_CORE_STRATEGY_SELECTOR_H_
