#include "datagen/dataset_io.h"

#include <charconv>
#include <string>
#include <string_view>

#include "util/csv_writer.h"

namespace pier {

namespace {

std::optional<uint64_t> ParseU64(const std::string& field) {
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    return std::nullopt;
  }
  return value;
}

// Reads one *logical* CSV record: physical lines are joined while a
// quoted field left an odd number of quotes open (RFC-4180 embedded
// newlines), and a trailing CR from CRLF input is stripped from every
// physical line. Returns false at end of stream. An unterminated
// quote runs to EOF and is then rejected by ParseCsvLine.
bool ReadCsvRecord(std::istream& in, std::string* record) {
  record->clear();
  std::string line;
  bool open_quote = false;
  bool any = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (any) record->push_back('\n');
    any = true;
    record->append(line);
    for (const char c : line) open_quote ^= (c == '"');
    if (!open_quote) return true;
  }
  return any;
}

// Excel and friends prepend a UTF-8 byte-order mark; strip it from the
// first record so the header row still matches.
void StripUtf8Bom(std::string* record) {
  if (record->rfind("\xEF\xBB\xBF", 0) == 0) record->erase(0, 3);
}

}  // namespace

std::optional<std::vector<std::string>> ParseCsvLine(
    const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      if (!current.empty()) return std::nullopt;  // quote mid-field
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return std::nullopt;  // unterminated quote
  fields.push_back(std::move(current));
  return fields;
}

void WriteProfilesCsvHeader(std::ostream& out) {
  CsvWriter csv(out);
  csv.WriteRow({"profile_id", "source", "attribute", "value"});
}

void AppendProfileCsv(const EntityProfile& profile, std::ostream& out) {
  CsvWriter csv(out);
  profile.ForEachAttribute([&](std::string_view name,
                               std::string_view value) {
    csv.WriteRow({std::to_string(profile.id), std::to_string(profile.source),
                  std::string(name), std::string(value)});
  });
}

void WriteGroundTruthCsvHeader(std::ostream& out) {
  CsvWriter csv(out);
  csv.WriteRow({"profile_id_a", "profile_id_b"});
}

void AppendGroundTruthPairCsv(ProfileId a, ProfileId b, std::ostream& out) {
  CsvWriter csv(out);
  csv.WriteRow({std::to_string(a), std::to_string(b)});
}

void WriteProfilesCsv(const Dataset& dataset, std::ostream& out) {
  WriteProfilesCsvHeader(out);
  for (const auto& profile : dataset.profiles) {
    AppendProfileCsv(profile, out);
  }
}

void WriteGroundTruthCsv(const Dataset& dataset, std::ostream& out) {
  WriteGroundTruthCsvHeader(out);
  for (const uint64_t key : dataset.truth.pairs()) {
    AppendGroundTruthPairCsv(static_cast<ProfileId>(key >> 32),
                             static_cast<ProfileId>(key & 0xffffffffu), out);
  }
}

std::optional<Dataset> ReadDatasetCsv(std::istream& profiles_in,
                                      std::istream* truth_in,
                                      std::string name, DatasetKind kind) {
  Dataset dataset;
  dataset.name = std::move(name);
  dataset.kind = kind;

  std::string record;
  bool first_record = true;
  bool header_skipped = false;
  while (ReadCsvRecord(profiles_in, &record)) {
    if (first_record) {
      StripUtf8Bom(&record);
      first_record = false;
    }
    if (record.empty()) continue;
    if (!header_skipped) {
      header_skipped = true;
      continue;  // header
    }
    const auto fields = ParseCsvLine(record);
    if (!fields || fields->size() != 4) return std::nullopt;
    const auto id = ParseU64((*fields)[0]);
    const auto source = ParseU64((*fields)[1]);
    if (!id || !source || *source > 1) return std::nullopt;
    if (*id >= dataset.profiles.size()) {
      dataset.profiles.resize(*id + 1);
    }
    EntityProfile& profile = dataset.profiles[*id];
    if (profile.id == kInvalidProfileId) {
      profile.id = static_cast<ProfileId>(*id);
      profile.source = static_cast<SourceId>(*source);
    } else if (profile.source != *source) {
      return std::nullopt;  // inconsistent source
    }
    profile.add_attribute((*fields)[2], (*fields)[3]);
  }
  // Dense-id check.
  for (size_t i = 0; i < dataset.profiles.size(); ++i) {
    if (dataset.profiles[i].id != i) return std::nullopt;
  }

  if (truth_in != nullptr) {
    first_record = true;
    header_skipped = false;
    while (ReadCsvRecord(*truth_in, &record)) {
      if (first_record) {
        StripUtf8Bom(&record);
        first_record = false;
      }
      if (record.empty()) continue;
      if (!header_skipped) {
        header_skipped = true;
        continue;
      }
      const auto fields = ParseCsvLine(record);
      if (!fields || fields->size() != 2) return std::nullopt;
      const auto a = ParseU64((*fields)[0]);
      const auto b = ParseU64((*fields)[1]);
      if (!a || !b || *a >= dataset.profiles.size() ||
          *b >= dataset.profiles.size()) {
        return std::nullopt;
      }
      dataset.truth.AddMatch(static_cast<ProfileId>(*a),
                             static_cast<ProfileId>(*b));
    }
  }
  return dataset;
}

}  // namespace pier
