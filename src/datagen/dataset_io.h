// CSV persistence for datasets, so users can run pier on their own
// data and so generated benchmark datasets can be exported for
// inspection or external tooling.
//
// Profile file: one row per attribute, long format
//   profile_id,source,attribute,value
// Ground-truth file: one row per duplicate pair
//   profile_id_a,profile_id_b
// Both RFC-4180 quoted.

#ifndef PIER_DATAGEN_DATASET_IO_H_
#define PIER_DATAGEN_DATASET_IO_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "model/dataset.h"

namespace pier {

// Splits one CSV line into fields, honouring RFC-4180 quoting.
// Returns std::nullopt on malformed quoting.
std::optional<std::vector<std::string>> ParseCsvLine(const std::string& line);

// Writes dataset.profiles in long format (with a header row).
void WriteProfilesCsv(const Dataset& dataset, std::ostream& out);

// Writes the ground-truth pairs (with a header row).
void WriteGroundTruthCsv(const Dataset& dataset, std::ostream& out);

// Streaming variants: header once, then one profile (or truth pair) at
// a time, so constant-memory producers (pier_datagen --stream, the
// paper-scale bench) can write datasets larger than RAM. Byte-for-byte
// the same format as the batch writers.
void WriteProfilesCsvHeader(std::ostream& out);
void AppendProfileCsv(const EntityProfile& profile, std::ostream& out);
void WriteGroundTruthCsvHeader(std::ostream& out);
void AppendGroundTruthPairCsv(ProfileId a, ProfileId b, std::ostream& out);

// Reads a dataset back. Profiles may appear in any row order but ids
// must be dense (0..n-1); rows of the same profile must agree on
// `source`. The truth stream is optional (pass nullptr for data
// without labels). Returns std::nullopt on malformed input.
std::optional<Dataset> ReadDatasetCsv(std::istream& profiles_in,
                                      std::istream* truth_in,
                                      std::string name, DatasetKind kind);

}  // namespace pier

#endif  // PIER_DATAGEN_DATASET_IO_H_
