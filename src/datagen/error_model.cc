#include "datagen/error_model.h"

#include <sstream>

namespace pier {

namespace {

std::vector<std::string> SplitWords(const std::string& value) {
  std::vector<std::string> words;
  std::istringstream in(value);
  std::string w;
  while (in >> w) words.push_back(w);
  return words;
}

std::string JoinWords(const std::vector<std::string>& words) {
  std::string out;
  for (const auto& w : words) {
    if (!out.empty()) out.push_back(' ');
    out += w;
  }
  return out;
}

}  // namespace

std::string ErrorModel::ApplyTypo(const std::string& word, Rng& rng) const {
  if (word.size() <= 1) return word;
  std::string out = word;
  const size_t pos = rng.UniformInt(0, out.size() - 1);
  const char random_char = static_cast<char>('a' + rng.UniformInt(0, 25));
  switch (rng.UniformInt(0, 3)) {
    case 0:  // substitute
      out[pos] = random_char;
      break;
    case 1:  // insert
      out.insert(out.begin() + static_cast<ptrdiff_t>(pos), random_char);
      break;
    case 2:  // delete
      out.erase(out.begin() + static_cast<ptrdiff_t>(pos));
      break;
    default:  // transpose with the next character
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

std::string ErrorModel::PerturbValue(const std::string& value,
                                     Rng& rng) const {
  std::vector<std::string> words = SplitWords(value);
  if (words.empty()) return value;

  if (words.size() > 1 && rng.Bernoulli(options_.token_drop_prob)) {
    words.erase(words.begin() +
                static_cast<ptrdiff_t>(rng.UniformInt(0, words.size() - 1)));
  }
  if (words.size() > 1 && rng.Bernoulli(options_.token_swap_prob)) {
    const size_t i = rng.UniformInt(0, words.size() - 2);
    std::swap(words[i], words[i + 1]);
  }
  for (auto& w : words) {
    if (rng.Bernoulli(options_.abbreviation_prob)) {
      w = w.substr(0, 1);
    } else if (rng.Bernoulli(options_.typo_prob)) {
      w = ApplyTypo(w, rng);
    }
  }
  return JoinWords(words);
}

std::vector<Attribute> ErrorModel::PerturbAttributes(
    const std::vector<Attribute>& attributes, Rng& rng) const {
  std::vector<Attribute> out;
  out.reserve(attributes.size());
  for (const auto& attribute : attributes) {
    if (attributes.size() > 1 && rng.Bernoulli(options_.attribute_drop_prob)) {
      continue;  // drop this attribute
    }
    out.push_back(
        Attribute{attribute.name, PerturbValue(attribute.value, rng)});
  }
  if (out.empty()) {
    // Every attribute was dropped; keep the first one so the duplicate
    // remains discoverable.
    out.push_back(attributes.front());
  }
  return out;
}

}  // namespace pier
