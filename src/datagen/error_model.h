// Perturbation model applied to duplicate records: duplicates of a
// profile differ from the original through realistic noise -- typos,
// dropped/swapped tokens, abbreviations, dropped attributes -- in the
// style of Febrl's error injection [7]. All randomness comes from the
// caller's Rng, so generated datasets are seed-deterministic.

#ifndef PIER_DATAGEN_ERROR_MODEL_H_
#define PIER_DATAGEN_ERROR_MODEL_H_

#include <string>
#include <vector>

#include "model/entity_profile.h"
#include "util/rng.h"

namespace pier {

struct ErrorModelOptions {
  // Per-word probability of one character-level edit.
  double typo_prob = 0.15;
  // Per-value probability of dropping one token.
  double token_drop_prob = 0.2;
  // Per-value probability of swapping two adjacent tokens.
  double token_swap_prob = 0.1;
  // Per-word probability of abbreviating to its initial ("john" ->
  // "j").
  double abbreviation_prob = 0.05;
  // Per-attribute probability of dropping the whole attribute.
  double attribute_drop_prob = 0.1;
};

class ErrorModel {
 public:
  explicit ErrorModel(ErrorModelOptions options = ErrorModelOptions())
      : options_(options) {}

  // One random character edit (substitute / insert / delete /
  // transpose) applied to `word`. Words of length <= 1 are returned
  // unchanged.
  std::string ApplyTypo(const std::string& word, Rng& rng) const;

  // Applies the word-level and token-level perturbations to one
  // attribute value.
  std::string PerturbValue(const std::string& value, Rng& rng) const;

  // Returns a perturbed copy of the attribute list (the duplicate's
  // payload). At least one attribute is always kept.
  std::vector<Attribute> PerturbAttributes(
      const std::vector<Attribute>& attributes, Rng& rng) const;

  const ErrorModelOptions& options() const { return options_; }

 private:
  ErrorModelOptions options_;
};

}  // namespace pier

#endif  // PIER_DATAGEN_ERROR_MODEL_H_
