#include "datagen/generators.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "datagen/vocabulary.h"
#include "util/check.h"
#include "util/rng.h"

namespace pier {

namespace {

// Pre-id profile: generators work with entity uids; ids are assigned
// after the stream order is fixed.
struct ProtoProfile {
  uint32_t entity_uid = 0;
  SourceId source = 0;
  std::vector<Attribute> attributes;
};

// Shuffles the protos into stream order, assigns dense ids, and builds
// the ground truth from entity uids.
Dataset Finalize(std::string name, DatasetKind kind,
                 std::vector<ProtoProfile> protos, Rng& rng) {
  // Fisher-Yates with the generator's own Rng (seed-deterministic).
  for (size_t i = protos.size(); i > 1; --i) {
    const size_t j = rng.UniformInt(0, i - 1);
    std::swap(protos[i - 1], protos[j]);
  }

  Dataset dataset;
  dataset.name = std::move(name);
  dataset.kind = kind;
  dataset.profiles.reserve(protos.size());

  std::unordered_map<uint32_t, std::vector<ProfileId>> clusters;
  for (size_t i = 0; i < protos.size(); ++i) {
    const ProfileId id = static_cast<ProfileId>(i);
    dataset.profiles.emplace_back(id, protos[i].source,
                                  std::move(protos[i].attributes));
    clusters[protos[i].entity_uid].push_back(id);
  }

  for (const auto& [uid, members] : clusters) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        const auto& a = dataset.profiles[members[i]];
        const auto& b = dataset.profiles[members[j]];
        if (kind == DatasetKind::kCleanClean && a.source == b.source) {
          continue;  // Clean sources are duplicate-free internally.
        }
        dataset.truth.AddMatch(a.id, b.id);
      }
    }
  }
  return dataset;
}

std::string PersonName(Rng& rng) {
  const auto& first = Vocabulary::FirstNames();
  const auto& last = Vocabulary::LastNames();
  return first[rng.UniformInt(0, first.size() - 1)] + " " +
         last[rng.UniformInt(0, last.size() - 1)];
}

std::string ZipfWords(const ZipfDistribution& zipf, Rng& rng, size_t count) {
  std::string out;
  for (size_t i = 0; i < count; ++i) {
    if (!out.empty()) out.push_back(' ');
    out += Vocabulary::Word(zipf.Sample(rng));
  }
  return out;
}

// Splits `total_overlap` entity uids between two sources plus
// exclusive tails; returns per-source entity uid lists.
struct SourceSplit {
  std::vector<uint32_t> source0;
  std::vector<uint32_t> source1;
};

SourceSplit SplitEntities(size_t n0, size_t n1, double overlap_fraction) {
  PIER_CHECK(overlap_fraction >= 0.0 && overlap_fraction <= 1.0);
  const size_t overlap = static_cast<size_t>(
      overlap_fraction * static_cast<double>(std::min(n0, n1)));
  SourceSplit split;
  uint32_t uid = 0;
  for (size_t i = 0; i < overlap; ++i, ++uid) {
    split.source0.push_back(uid);
    split.source1.push_back(uid);
  }
  for (size_t i = overlap; i < n0; ++i, ++uid) split.source0.push_back(uid);
  for (size_t i = overlap; i < n1; ++i, ++uid) split.source1.push_back(uid);
  return split;
}

// One canonical census record; shared by the batch generator and the
// streaming generator so both produce the same record model.
std::vector<Attribute> CensusRecord(Rng& rng) {
  const auto& cities = Vocabulary::Cities();
  const auto& streets = Vocabulary::Streets();
  const auto& states = Vocabulary::States();
  std::vector<Attribute> record;
  record.push_back({"given_name", PersonName(rng)});
  record.push_back(
      {"surname",
       Vocabulary::LastNames()[rng.UniformInt(
           0, Vocabulary::LastNames().size() - 1)]});
  record.push_back({"street_number", std::to_string(rng.UniformInt(1, 999))});
  record.push_back(
      {"address_1",
       streets[rng.UniformInt(0, streets.size() - 1)] + " street"});
  record.push_back({"suburb", cities[rng.UniformInt(0, cities.size() - 1)]});
  record.push_back({"postcode", std::to_string(rng.UniformInt(1000, 9999))});
  record.push_back({"state", states[rng.UniformInt(0, states.size() - 1)]});
  {
    const uint64_t year = rng.UniformInt(1920, 2005);
    const uint64_t month = rng.UniformInt(1, 12);
    const uint64_t day = rng.UniformInt(1, 28);
    std::string dob = std::to_string(year);
    dob += month < 10 ? "0" + std::to_string(month) : std::to_string(month);
    dob += day < 10 ? "0" + std::to_string(day) : std::to_string(day);
    record.push_back({"date_of_birth", dob});
  }
  record.push_back(
      {"phone", std::to_string(rng.UniformInt(10000000, 99999999))});
  return record;
}

// Geometric cluster size (2 + Geometric(0.35) capped); shared by both
// census generators.
size_t CensusClusterSize(Rng& rng, const double duplicate_entity_fraction,
                         const size_t max_cluster_size) {
  if (!rng.Bernoulli(duplicate_entity_fraction)) return 1;
  size_t cluster = 2;
  while (cluster < max_cluster_size && rng.Bernoulli(0.35)) ++cluster;
  return cluster;
}

}  // namespace

Dataset GenerateBibliographic(const BibliographicOptions& options) {
  Rng rng(options.seed);
  const ErrorModel errors(options.errors);
  const ZipfDistribution title_vocab(4000, 0.9);
  const auto& venues = Vocabulary::Venues();

  const SourceSplit split = SplitEntities(
      options.source0_count, options.source1_count, options.overlap_fraction);

  // Canonical (clean) records per entity uid, generated on demand.
  std::unordered_map<uint32_t, std::vector<Attribute>> canonical;
  auto canonical_record = [&](uint32_t uid) -> const std::vector<Attribute>& {
    auto it = canonical.find(uid);
    if (it != canonical.end()) return it->second;
    std::vector<Attribute> attrs;
    attrs.push_back({"title", ZipfWords(title_vocab, rng,
                                        4 + rng.UniformInt(0, 5))});
    std::string authors = PersonName(rng);
    const size_t extra_authors = rng.UniformInt(0, 2);
    for (size_t a = 0; a < extra_authors; ++a) authors += " " + PersonName(rng);
    attrs.push_back({"authors", authors});
    attrs.push_back({"venue", venues[rng.UniformInt(0, venues.size() - 1)]});
    attrs.push_back({"year", std::to_string(1980 + rng.UniformInt(0, 43))});
    return canonical.emplace(uid, std::move(attrs)).first->second;
  };

  std::vector<ProtoProfile> protos;
  protos.reserve(split.source0.size() + split.source1.size());
  for (const uint32_t uid : split.source0) {
    protos.push_back({uid, 0, canonical_record(uid)});
  }
  for (const uint32_t uid : split.source1) {
    // Source 1 uses a different schema and perturbed values.
    std::vector<Attribute> attrs =
        errors.PerturbAttributes(canonical_record(uid), rng);
    static const char* const kRenames[][2] = {{"title", "name"},
                                              {"authors", "writers"},
                                              {"venue", "booktitle"},
                                              {"year", "date"}};
    for (auto& attribute : attrs) {
      for (const auto& rename : kRenames) {
        if (attribute.name == rename[0]) {
          attribute.name = rename[1];
          break;
        }
      }
    }
    protos.push_back({uid, 1, std::move(attrs)});
  }
  return Finalize("bibliographic", DatasetKind::kCleanClean,
                  std::move(protos), rng);
}

Dataset GenerateMovies(const MoviesOptions& options) {
  Rng rng(options.seed);
  const ErrorModel errors(options.errors);
  const ZipfDistribution title_vocab(6000, 0.9);
  const ZipfDistribution description_vocab(12000, 1.0);
  const auto& genres = Vocabulary::Genres();

  const SourceSplit split = SplitEntities(
      options.source0_count, options.source1_count, options.overlap_fraction);

  std::unordered_map<uint32_t, std::vector<Attribute>> canonical;
  auto canonical_record = [&](uint32_t uid) -> const std::vector<Attribute>& {
    auto it = canonical.find(uid);
    if (it != canonical.end()) return it->second;
    std::vector<Attribute> attrs;
    attrs.push_back({"title", ZipfWords(title_vocab, rng,
                                        2 + rng.UniformInt(0, 3))});
    std::string cast = PersonName(rng);
    const size_t extra_cast = 1 + rng.UniformInt(0, 3);
    for (size_t a = 0; a < extra_cast; ++a) cast += " " + PersonName(rng);
    attrs.push_back({"starring", cast});
    attrs.push_back({"director", PersonName(rng)});
    std::string genre_list = genres[rng.UniformInt(0, genres.size() - 1)];
    if (rng.Bernoulli(0.6)) {
      genre_list += " " + genres[rng.UniformInt(0, genres.size() - 1)];
    }
    attrs.push_back({"genres", genre_list});
    attrs.push_back({"description",
                     ZipfWords(description_vocab, rng,
                               8 + rng.UniformInt(0, 12))});
    attrs.push_back({"year", std::to_string(1930 + rng.UniformInt(0, 93))});
    return canonical.emplace(uid, std::move(attrs)).first->second;
  };

  std::vector<ProtoProfile> protos;
  protos.reserve(split.source0.size() + split.source1.size());
  for (const uint32_t uid : split.source0) {
    protos.push_back({uid, 0, canonical_record(uid)});
  }
  for (const uint32_t uid : split.source1) {
    std::vector<Attribute> attrs =
        errors.PerturbAttributes(canonical_record(uid), rng);
    static const char* const kRenames[][2] = {
        {"title", "label"},          {"starring", "actors"},
        {"director", "directedby"},  {"genres", "categories"},
        {"description", "abstract"}, {"year", "released"}};
    for (auto& attribute : attrs) {
      for (const auto& rename : kRenames) {
        if (attribute.name == rename[0]) {
          attribute.name = rename[1];
          break;
        }
      }
    }
    protos.push_back({uid, 1, std::move(attrs)});
  }
  return Finalize("movies", DatasetKind::kCleanClean, std::move(protos), rng);
}

Dataset GenerateCensus(const CensusOptions& options) {
  Rng rng(options.seed);
  const ErrorModel errors(options.errors);

  std::vector<ProtoProfile> protos;
  protos.reserve(options.num_records);
  uint32_t uid = 0;
  while (protos.size() < options.num_records) {
    std::vector<Attribute> record = CensusRecord(rng);
    protos.push_back({uid, 0, record});
    const size_t cluster = CensusClusterSize(
        rng, options.duplicate_entity_fraction, options.max_cluster_size);
    for (size_t d = 1; d < cluster && protos.size() < options.num_records;
         ++d) {
      protos.push_back({uid, 0, errors.PerturbAttributes(record, rng)});
    }
    ++uid;
  }
  return Finalize("census", DatasetKind::kDirty, std::move(protos), rng);
}

CensusStreamGenerator::CensusStreamGenerator(
    const CensusStreamOptions& options)
    : options_(options), rng_(options.seed), errors_(options.errors) {
  PIER_CHECK(options_.shuffle_window > 0);
  window_.reserve(std::min(options_.shuffle_window, options_.num_records));
}

void CensusStreamGenerator::FillWindow() {
  while (generated_ < options_.num_records &&
         window_.size() < options_.shuffle_window) {
    if (cluster_remaining_ == 0) {
      // Start the next cluster: one canonical record plus capped
      // geometric duplicates (same draw schedule as GenerateCensus).
      cluster_record_ = CensusRecord(rng_);
      cluster_uid_ = next_uid_++;
      const size_t cluster =
          CensusClusterSize(rng_, options_.duplicate_entity_fraction,
                            options_.max_cluster_size);
      cluster_remaining_ =
          std::min(cluster, options_.num_records - generated_);
      if (cluster_remaining_ > 1) {
        auto& open = open_clusters_[cluster_uid_];
        open.first = static_cast<uint32_t>(cluster_remaining_);
        open.second.reserve(cluster_remaining_);
      }
      window_.push_back({cluster_uid_, cluster_record_});
    } else {
      window_.push_back(
          {cluster_uid_, errors_.PerturbAttributes(cluster_record_, rng_)});
    }
    --cluster_remaining_;
    ++generated_;
  }
}

std::optional<EntityProfile> CensusStreamGenerator::Next() {
  FillWindow();
  if (window_.empty()) return std::nullopt;
  // Release a uniformly random held profile (swap-with-back keeps the
  // window compact; the draw is over the post-swap layout of earlier
  // releases, which is exactly the classic streaming-shuffle scheme).
  const size_t slot = rng_.UniformInt(0, window_.size() - 1);
  Pending pending = std::move(window_[slot]);
  window_[slot] = std::move(window_.back());
  window_.pop_back();

  const ProfileId id = static_cast<ProfileId>(emitted_++);
  const auto it = open_clusters_.find(pending.uid);
  if (it != open_clusters_.end()) {
    it->second.second.push_back(id);
    if (it->second.second.size() == it->second.first) {
      const std::vector<ProfileId>& members = it->second.second;
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          completed_truth_.emplace_back(members[i], members[j]);
        }
      }
      open_clusters_.erase(it);
    }
  }
  return EntityProfile(id, 0, std::move(pending.attributes));
}

std::vector<std::pair<ProfileId, ProfileId>>
CensusStreamGenerator::TakeCompletedTruth() {
  return std::exchange(completed_truth_, {});
}

Dataset GenerateDbpedia(const DbpediaOptions& options) {
  Rng rng(options.seed);
  const ErrorModel errors(options.errors);
  const ZipfDistribution content_vocab(options.vocabulary_size,
                                       options.zipf_alpha);
  // Rare, entity-specific vocabulary: guarantees that duplicates share
  // at least a few discriminative tokens even after perturbation.
  const size_t rare_offset = options.vocabulary_size + 1000;

  static const char* const kAttributePool[] = {
      "label",     "comment",    "type",      "subject",   "abstract",
      "founded",   "location",   "area",      "population", "homepage",
      "birthdate", "occupation", "genre",     "producer",  "country",
      "language",  "author",     "publisher", "series",    "runtime",
      "network",   "developer",  "platform",  "license"};
  constexpr size_t kPoolSize =
      sizeof(kAttributePool) / sizeof(kAttributePool[0]);

  const SourceSplit split = SplitEntities(
      options.source0_count, options.source1_count, options.overlap_fraction);

  std::unordered_map<uint32_t, std::vector<Attribute>> canonical;
  auto canonical_record = [&](uint32_t uid) -> const std::vector<Attribute>& {
    auto it = canonical.find(uid);
    if (it != canonical.end()) return it->second;
    std::vector<Attribute> attrs;
    // Distinctive name: two entity-specific rare words.
    attrs.push_back({"name", Vocabulary::Word(rare_offset + 2 * uid) + " " +
                                 Vocabulary::Word(rare_offset + 2 * uid + 1)});
    const size_t num_attributes = 3 + rng.UniformInt(0, 8);
    for (size_t a = 0; a < num_attributes; ++a) {
      const char* attr_name =
          kAttributePool[rng.UniformInt(0, kPoolSize - 1)];
      const size_t num_words = 1 + rng.UniformInt(0, 14);
      attrs.push_back({attr_name, ZipfWords(content_vocab, rng, num_words)});
    }
    return canonical.emplace(uid, std::move(attrs)).first->second;
  };

  std::vector<ProtoProfile> protos;
  protos.reserve(split.source0.size() + split.source1.size());
  for (const uint32_t uid : split.source0) {
    protos.push_back({uid, 0, canonical_record(uid)});
  }
  for (const uint32_t uid : split.source1) {
    // The second snapshot evolves the entity: perturbed values plus a
    // possible new attribute.
    std::vector<Attribute> attrs =
        errors.PerturbAttributes(canonical_record(uid), rng);
    if (rng.Bernoulli(0.4)) {
      attrs.push_back({kAttributePool[rng.UniformInt(0, kPoolSize - 1)],
                       ZipfWords(content_vocab, rng,
                                 1 + rng.UniformInt(0, 9))});
    }
    protos.push_back({uid, 1, std::move(attrs)});
  }
  return Finalize("dbpedia", DatasetKind::kCleanClean, std::move(protos),
                  rng);
}

}  // namespace pier
