// Synthetic dataset generators standing in for the paper's evaluation
// corpora (Table 1). Each generator is seed-deterministic and
// reproduces the *structural* properties that drive the paper's
// results (see DESIGN.md, "Substitutions"):
//
//   GenerateBibliographic  ~ dblp-acm   (small Clean-Clean, short text)
//   GenerateMovies         ~ movies     (medium Clean-Clean, longer text)
//   GenerateCensus         ~ 2M / Febrl (Dirty, short relational values,
//                                        small highly informative blocks)
//   GenerateDbpedia        ~ dbpedia    (large Clean-Clean, ragged
//                                        heterogeneous web profiles)
//
// Profiles are emitted in a shuffled stream order (sources
// interleaved) with dense ids, ready for SplitIntoIncrements.

#ifndef PIER_DATAGEN_GENERATORS_H_
#define PIER_DATAGEN_GENERATORS_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "datagen/error_model.h"
#include "model/dataset.h"
#include "util/rng.h"

namespace pier {

struct BibliographicOptions {
  size_t source0_count = 2600;
  size_t source1_count = 2300;
  // Fraction of the smaller source that has a counterpart in the other
  // source (paper: 2.22k matches over 2.29k profiles ~ 0.97).
  double overlap_fraction = 0.95;
  uint64_t seed = 1;
  ErrorModelOptions errors;
};

struct MoviesOptions {
  size_t source0_count = 6000;
  size_t source1_count = 5000;
  double overlap_fraction = 0.9;
  uint64_t seed = 2;
  ErrorModelOptions errors;
};

struct CensusOptions {
  // Approximate total number of records (originals + duplicates).
  size_t num_records = 30000;
  // Fraction of entities that receive at least one duplicate record.
  double duplicate_entity_fraction = 0.5;
  // Cluster sizes are 2 + Geometric(p) capped here; bigger clusters
  // quadratically increase the match count (paper: 1.7M matches from
  // 2M records implies cluster sizes around 3).
  size_t max_cluster_size = 6;
  uint64_t seed = 3;
  ErrorModelOptions errors;
};

struct DbpediaOptions {
  size_t source0_count = 12000;
  size_t source1_count = 16000;
  double overlap_fraction = 0.6;
  // Size and skew of the content-word vocabulary; alpha ~ 1.0 yields
  // the web-like power-law block-size distribution.
  size_t vocabulary_size = 30000;
  double zipf_alpha = 1.0;
  uint64_t seed = 4;
  ErrorModelOptions errors;
};

Dataset GenerateBibliographic(const BibliographicOptions& options);
Dataset GenerateMovies(const MoviesOptions& options);
Dataset GenerateCensus(const CensusOptions& options);
Dataset GenerateDbpedia(const DbpediaOptions& options);

// Paper-scale census streaming: same structural knobs as CensusOptions
// plus the shuffle window that replaces the batch generator's full
// Fisher-Yates. Memory stays O(shuffle_window) regardless of
// num_records, so the 2M-profile nightly corpus can be produced (and
// replayed) without ever materializing a Dataset.
struct CensusStreamOptions {
  size_t num_records = 2000000;
  double duplicate_entity_fraction = 0.5;
  size_t max_cluster_size = 6;
  // Pending profiles held back for local shuffling; each emission
  // releases a uniformly random held profile. Window 1 degenerates to
  // cluster-contiguous order; the default scatters duplicates a few
  // thousand positions apart, matching the batch generator's property
  // that cluster members arrive in different increments.
  size_t shuffle_window = 8192;
  uint64_t seed = 3;
  ErrorModelOptions errors;
};

// Constant-memory census stream. Emits profiles in shuffled order with
// dense ids 0..num_records-1 (Dirty kind, single source). The record
// model is identical to GenerateCensus; the stream order is not
// byte-identical to the batch generator (windowed vs. full shuffle)
// but is seed-deterministic: same options, same stream, every run.
class CensusStreamGenerator {
 public:
  explicit CensusStreamGenerator(const CensusStreamOptions& options);

  // Next profile in stream order, or nullopt when num_records have
  // been emitted.
  std::optional<EntityProfile> Next();

  // Drains the duplicate pairs of every cluster whose members have all
  // been emitted since the last call (call once more after the stream
  // ends to collect the tail). Pair order within the drain is
  // deterministic.
  std::vector<std::pair<ProfileId, ProfileId>> TakeCompletedTruth();

  size_t num_records() const { return options_.num_records; }

 private:
  struct Pending {
    uint32_t uid = 0;
    std::vector<Attribute> attributes;
  };

  void FillWindow();

  CensusStreamOptions options_;
  Rng rng_;
  ErrorModel errors_;
  std::vector<Pending> window_;
  size_t generated_ = 0;  // records created (into the window) so far
  size_t emitted_ = 0;    // records released from the window so far
  uint32_t next_uid_ = 0;
  // Current cluster being generated into the window.
  std::vector<Attribute> cluster_record_;
  uint32_t cluster_uid_ = 0;
  size_t cluster_remaining_ = 0;
  // uid -> (cluster size, emitted member ids); pairs complete when all
  // members have left the window. Bounded by the window size (only
  // clusters with a member still pending can be open).
  std::unordered_map<uint32_t, std::pair<uint32_t, std::vector<ProfileId>>>
      open_clusters_;
  std::vector<std::pair<ProfileId, ProfileId>> completed_truth_;
};

}  // namespace pier

#endif  // PIER_DATAGEN_GENERATORS_H_
