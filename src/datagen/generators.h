// Synthetic dataset generators standing in for the paper's evaluation
// corpora (Table 1). Each generator is seed-deterministic and
// reproduces the *structural* properties that drive the paper's
// results (see DESIGN.md, "Substitutions"):
//
//   GenerateBibliographic  ~ dblp-acm   (small Clean-Clean, short text)
//   GenerateMovies         ~ movies     (medium Clean-Clean, longer text)
//   GenerateCensus         ~ 2M / Febrl (Dirty, short relational values,
//                                        small highly informative blocks)
//   GenerateDbpedia        ~ dbpedia    (large Clean-Clean, ragged
//                                        heterogeneous web profiles)
//
// Profiles are emitted in a shuffled stream order (sources
// interleaved) with dense ids, ready for SplitIntoIncrements.

#ifndef PIER_DATAGEN_GENERATORS_H_
#define PIER_DATAGEN_GENERATORS_H_

#include <cstdint>

#include "datagen/error_model.h"
#include "model/dataset.h"

namespace pier {

struct BibliographicOptions {
  size_t source0_count = 2600;
  size_t source1_count = 2300;
  // Fraction of the smaller source that has a counterpart in the other
  // source (paper: 2.22k matches over 2.29k profiles ~ 0.97).
  double overlap_fraction = 0.95;
  uint64_t seed = 1;
  ErrorModelOptions errors;
};

struct MoviesOptions {
  size_t source0_count = 6000;
  size_t source1_count = 5000;
  double overlap_fraction = 0.9;
  uint64_t seed = 2;
  ErrorModelOptions errors;
};

struct CensusOptions {
  // Approximate total number of records (originals + duplicates).
  size_t num_records = 30000;
  // Fraction of entities that receive at least one duplicate record.
  double duplicate_entity_fraction = 0.5;
  // Cluster sizes are 2 + Geometric(p) capped here; bigger clusters
  // quadratically increase the match count (paper: 1.7M matches from
  // 2M records implies cluster sizes around 3).
  size_t max_cluster_size = 6;
  uint64_t seed = 3;
  ErrorModelOptions errors;
};

struct DbpediaOptions {
  size_t source0_count = 12000;
  size_t source1_count = 16000;
  double overlap_fraction = 0.6;
  // Size and skew of the content-word vocabulary; alpha ~ 1.0 yields
  // the web-like power-law block-size distribution.
  size_t vocabulary_size = 30000;
  double zipf_alpha = 1.0;
  uint64_t seed = 4;
  ErrorModelOptions errors;
};

Dataset GenerateBibliographic(const BibliographicOptions& options);
Dataset GenerateMovies(const MoviesOptions& options);
Dataset GenerateCensus(const CensusOptions& options);
Dataset GenerateDbpedia(const DbpediaOptions& options);

}  // namespace pier

#endif  // PIER_DATAGEN_GENERATORS_H_
