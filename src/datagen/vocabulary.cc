#include "datagen/vocabulary.h"

#include "util/hashing.h"

namespace pier {

namespace {

const char* const kSyllables[] = {
    "ba", "be", "bi", "bo", "bu", "ca", "ce", "ci", "co", "cu", "da", "de",
    "di", "do", "du", "fa", "fe", "fi", "fo", "fu", "ga", "ge", "gi", "go",
    "gu", "ha", "he", "hi", "ho", "hu", "ka", "ke", "ki", "ko", "ku", "la",
    "le", "li", "lo", "lu", "ma", "me", "mi", "mo", "mu", "na", "ne", "ni",
    "no", "nu", "pa", "pe", "pi", "po", "pu", "ra", "re", "ri", "ro", "ru",
    "sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu", "va", "ve",
    "vi", "vo", "vu", "za", "ze", "zi", "zo", "zu", "tra", "pre", "sto",
    "gra", "ker", "lin", "mar", "nor", "sta", "ver", "wil", "tion", "ment",
    "berg", "ford", "land", "wick", "shire", "ster", "ley", "ton",
};
constexpr size_t kNumSyllables = sizeof(kSyllables) / sizeof(kSyllables[0]);

std::vector<std::string> MakeList(std::initializer_list<const char*> items) {
  return std::vector<std::string>(items.begin(), items.end());
}

}  // namespace

const std::vector<std::string>& Vocabulary::FirstNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>(
      MakeList({"james",    "mary",    "robert",  "patricia", "john",
                "jennifer", "michael", "linda",   "david",    "elizabeth",
                "william",  "barbara", "richard", "susan",    "joseph",
                "jessica",  "thomas",  "sarah",   "charles",  "karen",
                "christopher", "lisa", "daniel",  "nancy",    "matthew",
                "betty",    "anthony", "sandra",  "mark",     "margaret",
                "donald",   "ashley",  "steven",  "kimberly", "andrew",
                "emily",    "paul",    "donna",   "joshua",   "michelle",
                "kenneth",  "carol",   "kevin",   "amanda",   "brian",
                "melissa",  "george",  "deborah", "timothy",  "stephanie",
                "ronald",   "rebecca", "jason",   "laura",    "edward",
                "sharon",   "jeffrey", "cynthia", "ryan",     "kathleen",
                "jacob",    "amy",     "gary",    "angela",   "nicholas",
                "shirley",  "eric",    "anna",    "jonathan", "brenda",
                "stephen",  "pamela",  "larry",   "emma",     "justin",
                "nicole",   "scott",   "helen",   "brandon",  "samantha"}));
  return names;
}

const std::vector<std::string>& Vocabulary::LastNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>(
      MakeList({"smith",     "johnson",  "williams", "brown",    "jones",
                "garcia",    "miller",   "davis",    "rodriguez", "martinez",
                "hernandez", "lopez",    "gonzalez", "wilson",   "anderson",
                "thomas",    "taylor",   "moore",    "jackson",  "martin",
                "lee",       "perez",    "thompson", "white",    "harris",
                "sanchez",   "clark",    "ramirez",  "lewis",    "robinson",
                "walker",    "young",    "allen",    "king",     "wright",
                "scott",     "torres",   "nguyen",   "hill",     "flores",
                "green",     "adams",    "nelson",   "baker",    "hall",
                "rivera",    "campbell", "mitchell", "carter",   "roberts",
                "gomez",     "phillips", "evans",    "turner",   "diaz",
                "parker",    "cruz",     "edwards",  "collins",  "reyes",
                "stewart",   "morris",   "morales",  "murphy",   "cook",
                "rogers",    "gutierrez", "ortiz",   "morgan",   "cooper",
                "peterson",  "bailey",   "reed",     "kelly",    "howard",
                "ramos",     "kim",      "cox",      "ward",     "richardson"}));
  return names;
}

const std::vector<std::string>& Vocabulary::Venues() {
  static const std::vector<std::string>& venues =
      *new std::vector<std::string>(
          MakeList({"sigmod", "vldb", "icde", "edbt", "cikm", "kdd", "www",
                    "icdt", "pods", "cidr", "tkde", "tods", "pvldb",
                    "dasfaa", "ssdbm", "bigdata"}));
  return venues;
}

const std::vector<std::string>& Vocabulary::Genres() {
  static const std::vector<std::string>& genres =
      *new std::vector<std::string>(
          MakeList({"drama", "comedy", "thriller", "action", "romance",
                    "horror", "documentary", "animation", "fantasy",
                    "scifi", "crime", "mystery", "western", "musical",
                    "biography", "adventure", "war", "family", "noir",
                    "sport"}));
  return genres;
}

const std::vector<std::string>& Vocabulary::Cities() {
  static const std::vector<std::string>& cities =
      *new std::vector<std::string>(
          MakeList({"springfield", "riverside", "fairview", "greenville",
                    "bristol",     "clinton",   "salem",    "georgetown",
                    "arlington",   "ashland",   "burlington", "manchester",
                    "oxford",      "clayton",   "jackson",  "milton",
                    "auburn",      "dayton",    "lexington", "milford",
                    "newport",     "kingston",  "dover",    "hudson",
                    "winchester",  "cleveland", "brighton", "columbia",
                    "franklin",    "chester",   "marion",   "monroe"}));
  return cities;
}

const std::vector<std::string>& Vocabulary::Streets() {
  static const std::vector<std::string>& streets =
      *new std::vector<std::string>(
          MakeList({"main", "church", "park", "elm", "walnut", "washington",
                    "oak", "maple", "cedar", "pine", "lake", "hill",
                    "spring", "ridge", "mill", "sunset", "river", "meadow",
                    "forest", "highland", "jefferson", "madison", "cherry",
                    "dogwood", "hickory", "willow", "locust", "poplar",
                    "chestnut", "sycamore", "linden", "magnolia"}));
  return streets;
}

const std::vector<std::string>& Vocabulary::States() {
  static const std::vector<std::string>& states =
      *new std::vector<std::string>(
          MakeList({"nsw", "vic", "qld", "wa", "sa", "tas", "act", "nt"}));
  return states;
}

std::string Vocabulary::Word(size_t i) {
  // Mix the index so consecutive indices give unrelated words, then
  // compose 2-4 syllables. Appending the index digits in base-26
  // letters guarantees distinctness even under syllable collisions.
  uint64_t h = Mix64(static_cast<uint64_t>(i) + 0x5eedULL);
  const int num_syllables = 2 + static_cast<int>(h % 3);
  h >>= 2;
  std::string word;
  for (int s = 0; s < num_syllables; ++s) {
    word += kSyllables[h % kNumSyllables];
    h /= kNumSyllables;
  }
  // Distinctness suffix: base-26 encoding of i (empty for i == 0 is
  // avoided by offsetting).
  uint64_t v = static_cast<uint64_t>(i) + 1;
  while (v > 0) {
    word.push_back(static_cast<char>('a' + (v % 26)));
    v /= 26;
  }
  return word;
}

}  // namespace pier
