// Deterministic vocabularies for the synthetic dataset generators.
//
// Real-world ER corpora mix (a) small curated vocabularies (venues,
// states, genres) that create large blocks, (b) mid-size vocabularies
// (person names) and (c) long-tail content words with a Zipfian
// frequency distribution that create many small, highly informative
// blocks. This module reproduces all three ingredients without
// shipping corpus files: the long tail is a syllable-composed
// pseudo-word vocabulary, deterministic in the word index.

#ifndef PIER_DATAGEN_VOCABULARY_H_
#define PIER_DATAGEN_VOCABULARY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace pier {

class Vocabulary {
 public:
  // Curated lists (fixed, embedded).
  static const std::vector<std::string>& FirstNames();
  static const std::vector<std::string>& LastNames();
  static const std::vector<std::string>& Venues();
  static const std::vector<std::string>& Genres();
  static const std::vector<std::string>& Cities();
  static const std::vector<std::string>& Streets();
  static const std::vector<std::string>& States();

  // The i-th pseudo content word; deterministic, distinct for
  // i < ~10^9. Words are 2-4 syllables (4-12 characters).
  static std::string Word(size_t i);

  // Samples a content word index from a Zipf(alpha) distribution over
  // a vocabulary of `vocab_size` words, then renders it.
  static std::string SampleWord(const ZipfDistribution& zipf, Rng& rng) {
    return Word(zipf.Sample(rng));
  }
};

}  // namespace pier

#endif  // PIER_DATAGEN_VOCABULARY_H_
