#include "eval/cluster_recall.h"

#include <algorithm>
#include <utility>

#include "eval/entity_clusters.h"
#include "util/serial.h"

namespace pier {

ClusterRecallTracker::ClusterRecallTracker(const GroundTruth& truth) {
  // Transitive closure of the ground-truth pairs; the component
  // representative becomes the gt cluster id.
  EntityClusters closure;
  for (const uint64_t key : truth.pairs()) {
    closure.AddMatch(static_cast<ProfileId>(key >> 32),
                     static_cast<ProfileId>(key & 0xffffffffULL));
  }
  std::unordered_map<uint32_t, uint64_t> cluster_sizes;
  for (const uint64_t key : truth.pairs()) {
    const ProfileId ids[2] = {static_cast<ProfileId>(key >> 32),
                              static_cast<ProfileId>(key & 0xffffffffULL)};
    for (const ProfileId id : ids) {
      const uint32_t gt = closure.Find(id);
      if (gt_of_.emplace(id, gt).second) ++cluster_sizes[gt];
    }
  }
  for (const auto& [gt, count] : cluster_sizes) {
    total_pairs_ += count * (count - 1) / 2;
  }
}

void ClusterRecallTracker::EnsureTracked(ProfileId id) {
  while (parent_.size() <= id) {
    const auto self = static_cast<ProfileId>(parent_.size());
    parent_.push_back(self);
    size_.push_back(1);
    const auto it = gt_of_.find(self);
    if (it != gt_of_.end()) root_gt_counts_[self][it->second] = 1;
  }
}

ProfileId ClusterRecallTracker::FindRoot(ProfileId id) {
  ProfileId root = id;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[id] != root) {
    const ProfileId up = parent_[id];
    parent_[id] = root;
    id = up;
  }
  return root;
}

ProfileId ClusterRecallTracker::FindRootConst(ProfileId id) const {
  while (parent_[id] != id) id = parent_[id];
  return id;
}

void ClusterRecallTracker::MergeHistograms(ProfileId winner, ProfileId loser) {
  const auto loser_it = root_gt_counts_.find(loser);
  if (loser_it == root_gt_counts_.end()) return;
  GtHistogram from = std::move(loser_it->second);
  root_gt_counts_.erase(loser_it);
  GtHistogram& into = root_gt_counts_[winner];
  if (into.size() < from.size()) into.swap(from);
  for (const auto& [gt, count] : from) {
    uint32_t& slot = into[gt];
    connected_pairs_ +=
        static_cast<uint64_t>(slot) * static_cast<uint64_t>(count);
    slot += count;
  }
}

bool ClusterRecallTracker::AddMatch(ProfileId a, ProfileId b) {
  EnsureTracked(std::max(a, b));
  ProfileId ra = FindRoot(a);
  ProfileId rb = FindRoot(b);
  if (ra == rb) return false;
  // Union by size; ties go to the smaller root id so the tree shape is
  // a deterministic function of the match stream.
  if (size_[ra] < size_[rb] || (size_[ra] == size_[rb] && rb < ra)) {
    std::swap(ra, rb);
  }
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  MergeHistograms(ra, rb);
  return true;
}

void ClusterRecallTracker::Snapshot(std::ostream& out) const {
  serial::WriteU64(out, parent_.size());
  // Canonical form: every profile's cluster id is the smallest member
  // of its cluster — in an ascending pass, the first member seen for
  // each root.
  std::unordered_map<ProfileId, uint32_t> min_member;
  for (size_t i = 0; i < parent_.size(); ++i) {
    const ProfileId root = FindRootConst(static_cast<ProfileId>(i));
    const auto it =
        min_member.emplace(root, static_cast<uint32_t>(i)).first;
    serial::WriteU32(out, it->second);
  }
}

bool ClusterRecallTracker::Restore(std::istream& in) {
  if (!parent_.empty()) return false;
  uint64_t n = 0;
  if (!serial::ReadU64(in, &n)) return false;
  std::vector<uint32_t> cid;
  cid.reserve(static_cast<size_t>(std::min<uint64_t>(n, uint64_t{1} << 20)));
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t c = 0;
    if (!serial::ReadU32(in, &c) || c > i || (c < i && cid[c] != c)) {
      return false;
    }
    cid.push_back(c);
  }
  // Rebuild flat: parent = canonical id. Sizes, histograms, and the
  // connected-pair count are all functions of the partition + ground
  // truth, so they reconstruct exactly.
  parent_.resize(static_cast<size_t>(n));
  size_.assign(static_cast<size_t>(n), 0);
  for (uint64_t i = 0; i < n; ++i) {
    parent_[i] = cid[i];
    ++size_[cid[i]];
  }
  for (uint64_t i = 0; i < n; ++i) {
    const auto it = gt_of_.find(static_cast<ProfileId>(i));
    if (it != gt_of_.end()) ++root_gt_counts_[cid[i]][it->second];
  }
  connected_pairs_ = 0;
  for (const auto& [root, histogram] : root_gt_counts_) {
    for (const auto& [gt, count] : histogram) {
      connected_pairs_ += static_cast<uint64_t>(count) * (count - 1) / 2;
    }
  }
  return true;
}

}  // namespace pier
