// Cluster-level progressive quality: while PC counts ground-truth
// *pairs* emitted and matched, ClusterRecall asks how much of the
// ground-truth *entity clusters* the online cluster index has already
// reassembled. Formally, with ground-truth clusters G (the connected
// components of the true-match graph) and the predicted partition P
// (the connected components of the positive-verdict graph so far):
//
//   ClusterRecall(t) =  |{ {a,b} : same G-cluster and same P-cluster }|
//                       -----------------------------------------------
//                       |{ {a,b} : same G-cluster }|
//
// Both sides are transitively closed, so a cluster {a,b,c} counts 3
// pairs even if the ground truth only listed {a,b} and {b,c}. The
// metric is monotone in the match stream (merges only ever connect
// more pairs) and reaches 1.0 exactly when every ground-truth cluster
// lives inside one predicted cluster.
//
// The tracker maintains the predicted partition with its own
// union-find plus a per-cluster ground-truth histogram, so folding a
// verdict in is amortized near-O(1): merging two clusters adds
// count_small * count_large newly-connected pairs for every
// ground-truth cluster they share, and histograms merge
// smaller-into-larger.

#ifndef PIER_EVAL_CLUSTER_RECALL_H_
#define PIER_EVAL_CLUSTER_RECALL_H_

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "model/ground_truth.h"
#include "model/types.h"

namespace pier {

class ClusterRecallTracker {
 public:
  // Builds the ground-truth clusters (transitive closure of `truth`)
  // once up front. `truth` is only read during construction.
  explicit ClusterRecallTracker(const GroundTruth& truth);

  // Folds one positive match verdict into the predicted partition.
  // Returns true when the edge merged two previously distinct
  // clusters.
  bool AddMatch(ProfileId a, ProfileId b);

  // Ground-truth pairs currently co-clustered (numerator).
  uint64_t connected_pairs() const { return connected_pairs_; }
  // All intra-ground-truth-cluster pairs (denominator); fixed at
  // construction.
  uint64_t total_cluster_pairs() const { return total_pairs_; }

  double Recall() const {
    return total_pairs_ == 0 ? 0.0
                             : static_cast<double>(connected_pairs_) /
                                   static_cast<double>(total_pairs_);
  }

  // Canonical serialization of the predicted partition (same partition
  // -> same bytes; see serve/cluster_index.h for the format rationale).
  // The ground-truth side is rebuilt from the constructor argument, so
  // only the partition is persisted.
  void Snapshot(std::ostream& out) const;

  // Restores a Snapshot payload into this freshly-constructed tracker
  // (built from the same GroundTruth). Returns false on a malformed
  // payload. Recall()/connected_pairs() are rebuilt exactly.
  bool Restore(std::istream& in);

 private:
  using GtHistogram = std::unordered_map<uint32_t, uint32_t>;

  void EnsureTracked(ProfileId id);
  ProfileId FindRoot(ProfileId id);
  ProfileId FindRootConst(ProfileId id) const;
  // Merges the loser root's histogram into the winner's, crediting
  // newly-connected pairs for every shared ground-truth cluster.
  void MergeHistograms(ProfileId winner, ProfileId loser);

  // Predicted partition.
  std::vector<ProfileId> parent_;
  std::vector<uint32_t> size_;
  // root -> (ground-truth cluster id -> member count); only roots
  // whose cluster intersects the ground truth have an entry.
  std::unordered_map<ProfileId, GtHistogram> root_gt_counts_;

  // Ground truth (fixed after construction): profile -> gt cluster id.
  std::unordered_map<ProfileId, uint32_t> gt_of_;

  uint64_t connected_pairs_ = 0;
  uint64_t total_pairs_ = 0;
};

}  // namespace pier

#endif  // PIER_EVAL_CLUSTER_RECALL_H_
