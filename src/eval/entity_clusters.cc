#include "eval/entity_clusters.h"

#include <algorithm>
#include <numeric>

namespace pier {

void EntityClusters::EnsureTracked(ProfileId id) {
  if (id < parent_.size()) return;
  const size_t old = parent_.size();
  parent_.resize(id + 1);
  size_.resize(id + 1, 1);
  std::iota(parent_.begin() + static_cast<ptrdiff_t>(old), parent_.end(),
            static_cast<ProfileId>(old));
}

ProfileId EntityClusters::Find(ProfileId id) {
  EnsureTracked(id);
  ProfileId root = id;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[id] != root) {  // path compression
    const ProfileId next = parent_[id];
    parent_[id] = root;
    id = next;
  }
  return root;
}

bool EntityClusters::AddMatch(ProfileId a, ProfileId b) {
  ProfileId ra = Find(a);
  ProfileId rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);  // union by size
  // Count cluster transitions: merging two singletons creates one
  // non-trivial cluster; absorbing a non-trivial one removes one.
  if (size_[ra] == 1 && size_[rb] == 1) {
    ++num_merged_clusters_;
  } else if (size_[ra] > 1 && size_[rb] > 1) {
    --num_merged_clusters_;
  }
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  return true;
}

size_t EntityClusters::ClusterSize(ProfileId id) {
  return size_[Find(id)];
}

std::vector<std::vector<ProfileId>> EntityClusters::Clusters(
    size_t min_size) {
  std::unordered_map<ProfileId, std::vector<ProfileId>> by_root;
  for (ProfileId id = 0; id < parent_.size(); ++id) {
    by_root[Find(id)].push_back(id);
  }
  std::vector<std::vector<ProfileId>> out;
  for (auto& [root, members] : by_root) {
    if (members.size() >= min_size) out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return out;
}

}  // namespace pier
