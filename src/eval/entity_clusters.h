// Incremental entity consolidation: maintains the connected components
// of the match graph (profiles as nodes, discovered duplicate pairs as
// edges) with a union-find structure, so downstream applications can
// ask "which resolved entity does this profile belong to?" at any
// point of the stream. This is the standard post-matching step of an
// ER pipeline and completes the library's end-to-end story.

#ifndef PIER_EVAL_ENTITY_CLUSTERS_H_
#define PIER_EVAL_ENTITY_CLUSTERS_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "model/types.h"

namespace pier {

class EntityClusters {
 public:
  EntityClusters() = default;

  // Records that a and b refer to the same real-world entity. Grows
  // the universe as needed (ids are dense). Returns true if the edge
  // merged two previously separate clusters.
  bool AddMatch(ProfileId a, ProfileId b);

  // Canonical representative of the cluster containing `id` (path
  // compression; amortized near-O(1)). Ids never seen form singleton
  // clusters.
  ProfileId Find(ProfileId id);

  bool SameEntity(ProfileId a, ProfileId b) { return Find(a) == Find(b); }

  // Size of the cluster containing `id`.
  size_t ClusterSize(ProfileId id);

  // Number of profiles tracked so far (the universe size).
  size_t universe_size() const { return parent_.size(); }

  // Number of clusters with at least 2 members.
  size_t NumNonTrivialClusters() const { return num_merged_clusters_; }

  // Materializes all clusters of size >= min_size as member lists.
  std::vector<std::vector<ProfileId>> Clusters(size_t min_size = 2);

 private:
  void EnsureTracked(ProfileId id);

  std::vector<ProfileId> parent_;
  std::vector<uint32_t> size_;
  size_t num_merged_clusters_ = 0;
};

}  // namespace pier

#endif  // PIER_EVAL_ENTITY_CLUSTERS_H_
