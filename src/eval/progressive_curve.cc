#include "eval/progressive_curve.h"

#include <algorithm>

namespace pier {

uint64_t ProgressiveCurve::MatchesAtTime(double time) const {
  uint64_t found = 0;
  for (const auto& p : points_) {
    if (p.time > time) break;
    found = p.matches_found;
  }
  return found;
}

uint64_t ProgressiveCurve::MatchesAtComparisons(uint64_t comparisons) const {
  uint64_t found = 0;
  for (const auto& p : points_) {
    if (p.comparisons > comparisons) break;
    found = p.matches_found;
  }
  return found;
}

double ProgressiveCurve::PcAtTime(double time, uint64_t total_matches) const {
  if (total_matches == 0) return 0.0;
  return static_cast<double>(MatchesAtTime(time)) /
         static_cast<double>(total_matches);
}

double ProgressiveCurve::AucOverTime(double horizon,
                                     uint64_t total_matches) const {
  if (total_matches == 0 || horizon <= 0.0 || points_.empty()) return 0.0;
  double area = 0.0;
  double prev_time = 0.0;
  uint64_t prev_matches = 0;
  for (const auto& p : points_) {
    const double t = std::min(p.time, horizon);
    if (t > prev_time) {
      area += static_cast<double>(prev_matches) * (t - prev_time);
    }
    if (p.time >= horizon) {
      prev_time = horizon;
      prev_matches = p.matches_found;
      break;
    }
    prev_time = t;
    prev_matches = p.matches_found;
  }
  if (prev_time < horizon) {
    area += static_cast<double>(prev_matches) * (horizon - prev_time);
  }
  return area / (static_cast<double>(total_matches) * horizon);
}

ProgressiveCurve ProgressiveCurve::Downsample(size_t max_points) const {
  ProgressiveCurve out;
  if (points_.size() <= max_points || max_points < 2) {
    out.points_ = points_;
    return out;
  }
  const double stride = static_cast<double>(points_.size() - 1) /
                        static_cast<double>(max_points - 1);
  size_t last_index = static_cast<size_t>(-1);
  for (size_t i = 0; i < max_points; ++i) {
    const size_t index = static_cast<size_t>(stride * static_cast<double>(i));
    if (index == last_index) continue;
    out.points_.push_back(points_[index]);
    last_index = index;
  }
  // Keep the true final point unless it was already emitted; comparing
  // every field matters, since a tail point may differ from the last
  // sampled one only in time (e.g. a run that ends after its final
  // batch without executing further comparisons).
  const CurvePoint& last = points_.back();
  const CurvePoint& sampled = out.points_.back();
  if (sampled.comparisons != last.comparisons ||
      sampled.matches_found != last.matches_found ||
      sampled.time != last.time) {
    out.points_.push_back(last);
  }
  return out;
}

}  // namespace pier
