// Progressive-quality recording: the (virtual time, executed
// comparisons, true matches found) trajectory of one run. Pair
// Completeness over time (Figures 2, 4, 6-8) and PC per emitted
// comparison (Figures 5-6) are two projections of the same curve.

#ifndef PIER_EVAL_PROGRESSIVE_CURVE_H_
#define PIER_EVAL_PROGRESSIVE_CURVE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pier {

struct CurvePoint {
  double time = 0.0;            // virtual seconds since stream start
  uint64_t comparisons = 0;     // cumulative executed comparisons
  uint64_t matches_found = 0;   // cumulative true matches emitted
};

class ProgressiveCurve {
 public:
  void Add(CurvePoint point) { points_.push_back(point); }

  const std::vector<CurvePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // Matches found no later than `time` (steps between points).
  uint64_t MatchesAtTime(double time) const;
  // Matches found within the first `comparisons` executed comparisons.
  uint64_t MatchesAtComparisons(uint64_t comparisons) const;

  // Pair completeness at `time` given the ground-truth match count.
  double PcAtTime(double time, uint64_t total_matches) const;

  // Normalized area under the PC-over-time curve on [0, horizon]:
  // 1.0 would mean every match was found at t=0. The standard scalar
  // summary of progressive behaviour.
  double AucOverTime(double horizon, uint64_t total_matches) const;

  // Thins the curve to at most `max_points` points (keeps first/last).
  ProgressiveCurve Downsample(size_t max_points) const;

 private:
  std::vector<CurvePoint> points_;
};

}  // namespace pier

#endif  // PIER_EVAL_PROGRESSIVE_CURVE_H_
