#include "eval/report.h"

#include <cstdio>

#include "util/csv_writer.h"

namespace pier {

void PrintCurveCsv(std::ostream& out, const std::vector<RunResult>& runs,
                   size_t max_points) {
  CsvWriter csv(out);
  csv.WriteRow(
      {"series", "time_s", "comparisons", "matches", "pc", "cluster_recall"});
  for (const auto& run : runs) {
    const ProgressiveCurve curve = run.curve.Downsample(max_points);
    // The cluster curve is recorded in lockstep with the PC curve
    // (same points, same times), so downsampling both with the same
    // cap keeps rows aligned. Runs without cluster tracking (e.g.
    // hand-built results) report 0.
    const bool has_clusters =
        run.cluster_curve.points().size() == run.curve.points().size();
    const ProgressiveCurve cluster_curve =
        has_clusters ? run.cluster_curve.Downsample(max_points)
                     : ProgressiveCurve{};
    for (size_t i = 0; i < curve.points().size(); ++i) {
      const auto& p = curve.points()[i];
      const double pc =
          run.total_true_matches == 0
              ? 0.0
              : static_cast<double>(p.matches_found) /
                    static_cast<double>(run.total_true_matches);
      double cluster_recall = 0.0;
      if (has_clusters && run.total_cluster_pairs > 0 &&
          i < cluster_curve.points().size()) {
        cluster_recall =
            static_cast<double>(cluster_curve.points()[i].matches_found) /
            static_cast<double>(run.total_cluster_pairs);
      }
      char time_buf[32];
      char pc_buf[32];
      char cr_buf[32];
      std::snprintf(time_buf, sizeof(time_buf), "%.4f", p.time);
      std::snprintf(pc_buf, sizeof(pc_buf), "%.4f", pc);
      std::snprintf(cr_buf, sizeof(cr_buf), "%.4f", cluster_recall);
      csv.WriteRow({run.algorithm, time_buf, std::to_string(p.comparisons),
                    std::to_string(p.matches_found), pc_buf, cr_buf});
    }
  }
}

void PrintSummaryTable(std::ostream& out, const std::vector<RunResult>& runs,
                       double horizon) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-14s %9s %9s %9s %9s %8s %9s %12s %10s\n", "algorithm",
                "PC@25%", "PC@50%", "PC@final", "AUC", "tt50_s", "cmp(k)",
                "consumed_s", "end_s");
  out << line;
  for (const auto& run : runs) {
    const double pc25 = run.curve.PcAtTime(0.25 * horizon,
                                           run.total_true_matches);
    const double pc50 = run.curve.PcAtTime(0.50 * horizon,
                                           run.total_true_matches);
    const double auc = run.curve.AucOverTime(horizon, run.total_true_matches);
    char consumed[32];
    if (run.stream_consumed_at >= 0.0) {
      std::snprintf(consumed, sizeof(consumed), "%.2f",
                    run.stream_consumed_at);
    } else {
      std::snprintf(consumed, sizeof(consumed), "-");
    }
    char tt50[32];
    const double time_to_half = run.TimeToPc(0.5);
    if (time_to_half >= 0.0) {
      std::snprintf(tt50, sizeof(tt50), "%.2f", time_to_half);
    } else {
      std::snprintf(tt50, sizeof(tt50), "-");
    }
    std::snprintf(line, sizeof(line),
                  "%-14s %9.3f %9.3f %9.3f %9.3f %8s %9.1f %12s %10.2f\n",
                  run.algorithm.c_str(), pc25, pc50, run.FinalPc(), auc,
                  tt50,
                  static_cast<double>(run.comparisons_executed) / 1000.0,
                  consumed, run.end_time);
    out << line;
  }
}

void PrintMatcherQualityTable(std::ostream& out,
                              const std::vector<RunResult>& runs) {
  char line[256];
  std::snprintf(line, sizeof(line), "%-14s %10s %10s %10s %10s %10s\n",
                "algorithm", "positives", "precision", "recall", "F1",
                "cl_recall");
  out << line;
  for (const auto& run : runs) {
    std::snprintf(line, sizeof(line),
                  "%-14s %10llu %10.3f %10.3f %10.3f %10.3f\n",
                  run.algorithm.c_str(),
                  static_cast<unsigned long long>(run.matcher_positives),
                  run.MatcherPrecision(), run.MatcherRecall(),
                  run.MatcherF1(), run.FinalClusterRecall());
    out << line;
  }
}

}  // namespace pier
