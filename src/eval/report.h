// Textual reporting for the benchmark harnesses: CSV curve series
// (one row per sampled point per algorithm) plus a human-readable
// summary table mirroring what each paper figure conveys.

#ifndef PIER_EVAL_REPORT_H_
#define PIER_EVAL_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "eval/run_result.h"

namespace pier {

// Prints "series,time_s,comparisons,matches,pc" rows, downsampled to
// at most `max_points` per run.
void PrintCurveCsv(std::ostream& out, const std::vector<RunResult>& runs,
                   size_t max_points = 64);

// Prints a fixed-width summary: final PC, PC at several fractions of
// the horizon, AUC, time-to-PC-0.5, comparisons, stream-consumption
// marker.
void PrintSummaryTable(std::ostream& out, const std::vector<RunResult>& runs,
                       double horizon);

// Prints the matcher-output quality per run: positive classifications,
// precision, recall (w.r.t. the full ground truth), F1.
void PrintMatcherQualityTable(std::ostream& out,
                              const std::vector<RunResult>& runs);

}  // namespace pier

#endif  // PIER_EVAL_REPORT_H_
