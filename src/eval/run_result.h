// The outcome of one simulated ER run: identity, progressive curve,
// and summary statistics. Produced by the stream simulator, consumed
// by the report printers and by EXPERIMENTS.md numbers.

#ifndef PIER_EVAL_RUN_RESULT_H_
#define PIER_EVAL_RUN_RESULT_H_

#include <cstdint>
#include <string>

#include "eval/progressive_curve.h"

namespace pier {

struct RunResult {
  std::string algorithm;
  std::string dataset;
  std::string matcher;

  ProgressiveCurve curve;

  // Cluster-level quality over time (see eval/cluster_recall.h):
  // recorded at the same virtual times as `curve`, with matches_found
  // holding the cumulative count of ground-truth pairs co-clustered by
  // the online cluster index (numerator of ClusterRecall).
  ProgressiveCurve cluster_curve;
  // All intra-ground-truth-cluster pairs (ClusterRecall denominator).
  uint64_t total_cluster_pairs = 0;

  uint64_t total_true_matches = 0;   // |M| (PC denominator)
  uint64_t comparisons_executed = 0;
  uint64_t matches_found = 0;

  // Ticks spent with a due increment refused and no pending batch
  // (see SimulatorOptions::stall_limit); 0 for well-behaved
  // algorithms. `stall_aborted` is set when the run ended because the
  // consecutive-stall limit was hit rather than by draining the work.
  uint64_t stalled_ticks = 0;
  bool stall_aborted = false;

  // Matcher-output quality (beyond the paper's PC focus): how many
  // executed comparisons the matcher classified positive, and how many
  // of those are true duplicates.
  uint64_t matcher_positives = 0;
  uint64_t matcher_true_positives = 0;

  // Virtual time at which the last increment was ingested; < 0 when
  // the stream was not fully consumed within the budget (this is the
  // "x" marker of Figures 7-8).
  double stream_consumed_at = -1.0;
  // Virtual time at which the run finished or hit the budget.
  double end_time = 0.0;

  // Final cluster-level recall: fraction of intra-ground-truth-cluster
  // pairs the online cluster index had co-clustered by the end.
  double FinalClusterRecall() const {
    if (total_cluster_pairs == 0 || cluster_curve.empty()) return 0.0;
    return static_cast<double>(cluster_curve.points().back().matches_found) /
           static_cast<double>(total_cluster_pairs);
  }

  double FinalPc() const {
    return total_true_matches == 0
               ? 0.0
               : static_cast<double>(matches_found) /
                     static_cast<double>(total_true_matches);
  }

  // Precision of the matcher's positive classifications.
  double MatcherPrecision() const {
    return matcher_positives == 0
               ? 0.0
               : static_cast<double>(matcher_true_positives) /
                     static_cast<double>(matcher_positives);
  }

  // Recall of the matcher over the full ground truth (bounded by PC:
  // a pair never emitted can never be classified).
  double MatcherRecall() const {
    return total_true_matches == 0
               ? 0.0
               : static_cast<double>(matcher_true_positives) /
                     static_cast<double>(total_true_matches);
  }

  double MatcherF1() const {
    const double p = MatcherPrecision();
    const double r = MatcherRecall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }

  // Earliest recorded virtual time at which PC reached `target`
  // (fraction of all true matches); negative if never reached.
  double TimeToPc(double target) const {
    const uint64_t needed = static_cast<uint64_t>(
        target * static_cast<double>(total_true_matches));
    for (const auto& p : curve.points()) {
      if (p.matches_found >= needed && needed > 0) return p.time;
    }
    return -1.0;
  }
};

}  // namespace pier

#endif  // PIER_EVAL_RUN_RESULT_H_
