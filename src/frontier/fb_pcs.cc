#include "frontier/fb_pcs.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <span>
#include <utility>

#include "blocking/block_ghosting.h"
#include "metablocking/i_wnp.h"
#include "metablocking/weighting.h"
#include "util/serial.h"

namespace pier {

namespace {

// Feedback tuning (not fingerprinted: they shape scheduling order, not
// serialized state, and changing them must not invalidate snapshots).
// kPseudo pseudo-counts pull a young block's posterior toward the
// global prior; a block is promoted once its boost reaches
// kPromoteBoost on at least kMinTrials verdicts.
constexpr double kPseudo = 8.0;
constexpr double kMinBoost = 0.5;
constexpr double kMaxBoost = 3.0;
constexpr double kPromoteBoost = 2.0;
constexpr uint32_t kMinTrials = 6;

}  // namespace

FbPcs::FbPcs(PrioritizerContext ctx, PrioritizerOptions options)
    : ctx_(ctx),
      options_(options),
      index_(options.cmp_index_capacity),
      scanner_(ctx) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& r = *options_.metrics;
    verdicts_metric_ = r.GetCounter("frontier.feedback_verdicts");
    promotions_metric_ = r.GetCounter("frontier.blocks_promoted");
    hot_pairs_metric_ = r.GetCounter("frontier.hot_pairs");
  }
}

double FbPcs::BlockBoost(TokenId t) const {
  if (t >= trials_.size() || trials_[t] == 0 || global_trials_ == 0) {
    return 1.0;
  }
  // Laplace-smoothed global prior; pseudo-count-smoothed per-block
  // posterior. The boost is the posterior-to-prior ratio, clamped.
  const double prior = (static_cast<double>(global_matches_) + 1.0) /
                       (static_cast<double>(global_trials_) + 2.0);
  const double posterior =
      (static_cast<double>(matches_[t]) + kPseudo * prior) /
      (static_cast<double>(trials_[t]) + kPseudo);
  return std::clamp(posterior / prior, kMinBoost, kMaxBoost);
}

double FbPcs::PairBoost(const EntityProfile& a, const EntityProfile& b) const {
  // Sorted-merge walk over the two token lists; the *best* common
  // block decides (pBlocking promotes a pair when any shared block
  // looks hot).
  double boost = 1.0;
  bool any = false;
  const std::span<const TokenId> ta = a.tokens();
  const std::span<const TokenId> tb = b.tokens();
  size_t i = 0;
  size_t j = 0;
  while (i < ta.size() && j < tb.size()) {
    if (ta[i] < tb[j]) {
      ++i;
    } else if (ta[i] > tb[j]) {
      ++j;
    } else {
      const double f = BlockBoost(ta[i]);
      boost = any ? std::max(boost, f) : f;
      any = true;
      ++i;
      ++j;
    }
  }
  return any ? boost : 1.0;
}

void FbPcs::ServeHotBlock(WorkStats* stats) {
  const BlockCollection& blocks = *ctx_.blocks;
  const ProfileStore& profiles = *ctx_.profiles;
  while (hot_head_ < hot_queue_.size()) {
    const TokenId token = hot_queue_[hot_head_++];
    if (!blocks.IsActive(token)) continue;
    const BlockView b = blocks.block(token);
    const double boost = BlockBoost(token);
    const uint32_t bsize = static_cast<uint32_t>(b.size());
    uint64_t emitted = 0;
    const auto push = [&](ProfileId x, ProfileId y) {
      index_.PushBounded(Comparison(
          x, y, PairCbsWeight(profiles.Get(x), profiles.Get(y)) * boost,
          bsize));
      ++stats->index_ops;
      ++emitted;
    };
    if (blocks.kind() == DatasetKind::kCleanClean) {
      for (const ProfileId x : b.members[0]) {
        for (const ProfileId y : b.members[1]) push(x, y);
      }
    } else {
      // Dirty: all pairs across both member lists.
      for (size_t i = 0; i < b.size(); ++i) {
        for (size_t j = i + 1; j < b.size(); ++j) {
          push(b.member(i), b.member(j));
        }
      }
    }
    stats->comparisons_generated += emitted;
    obs::CounterAdd(hot_pairs_metric_, emitted);
    return;  // at most one hot block per update call
  }
}

WorkStats FbPcs::UpdateCmpIndex(const std::vector<ProfileId>& delta) {
  WorkStats stats;
  const WeightingContext wctx{ctx_.blocks, ctx_.profiles, options_.scheme};

  std::vector<Comparison> cmp_list;
  for (const ProfileId id : delta) {
    const EntityProfile& p = ctx_.profiles->Get(id);
    GhostBlocks(*ctx_.blocks, p, options_.beta, &retained_);
    std::vector<Comparison> candidates = GenerateWeightedComparisons(
        wctx, p, retained_, /*only_older_neighbors=*/true, /*visits=*/nullptr,
        &scratch_);
    stats.comparisons_generated += candidates.size();
    candidates = IWnpPrune(std::move(candidates));
    // The feedback decoration: scale each surviving candidate by its
    // best common block's posterior boost.
    for (Comparison& c : candidates) {
      c.weight *= PairBoost(p, ctx_.profiles->Get(c.y));
    }
    cmp_list.insert(cmp_list.end(), candidates.begin(), candidates.end());
  }

  // Promoted blocks jump the queue ahead of the scanner fallback: one
  // hot block per call keeps the hook O(block) and starvation-free.
  ServeHotBlock(&stats);

  if (delta.empty() && index_.empty()) {
    cmp_list = scanner_.NextBlock(&stats);
  }

  for (auto& c : cmp_list) {
    index_.PushBounded(c);
    ++stats.index_ops;
  }
  return stats;
}

void FbPcs::OnVerdict(ProfileId a, ProfileId b, bool is_match) {
  const ProfileStore& profiles = *ctx_.profiles;
  // Verdicts arrive after emission; either endpoint may have been
  // retracted (mutable streams) in between.
  if (a >= profiles.size() || b >= profiles.size() || !profiles.IsLive(a) ||
      !profiles.IsLive(b)) {
    return;
  }
  obs::CounterAdd(verdicts_metric_);
  ++global_trials_;
  if (is_match) ++global_matches_;
  const EntityProfile& pa = profiles.Get(a);
  const EntityProfile& pb = profiles.Get(b);
  const BlockCollection& blocks = *ctx_.blocks;
  const std::span<const TokenId> ta = pa.tokens();
  const std::span<const TokenId> tb = pb.tokens();
  size_t i = 0;
  size_t j = 0;
  while (i < ta.size() && j < tb.size()) {
    if (ta[i] < tb[j]) {
      ++i;
    } else if (ta[i] > tb[j]) {
      ++j;
    } else {
      const TokenId t = ta[i];
      if (t >= trials_.size()) {
        trials_.resize(t + 1, 0);
        matches_.resize(t + 1, 0);
        promoted_.resize(t + 1, 0);
      }
      ++trials_[t];
      if (is_match) ++matches_[t];
      // Promotion check on the updated posterior: enough evidence and
      // a boost past the threshold enqueues the whole block once.
      if (promoted_[t] == 0 && trials_[t] >= kMinTrials &&
          BlockBoost(t) >= kPromoteBoost && blocks.IsActive(t) &&
          blocks.block(t).NumComparisons(blocks.kind()) > 0) {
        promoted_[t] = 1;
        hot_queue_.push_back(t);
        obs::CounterAdd(promotions_metric_);
      }
      ++i;
      ++j;
    }
  }
}

bool FbPcs::Dequeue(Comparison* out) {
  if (index_.empty()) return false;
  *out = index_.PopMax();
  return true;
}

void FbPcs::OnRetract(ProfileId id) {
  // Purge pending comparisons with the retracted endpoint (same
  // rebuild as I-PCS). Token verdict statistics are deliberately kept:
  // they describe the block's history, which remains predictive for
  // the survivors; the emit-time liveness check handles the rest.
  std::vector<Comparison> kept;
  kept.reserve(index_.size());
  for (const Comparison& c : index_.data()) {
    if (c.x != id && c.y != id) kept.push_back(c);
  }
  if (kept.size() == index_.size()) return;
  index_.Clear();
  for (Comparison& c : kept) index_.Push(std::move(c));
}

void FbPcs::Snapshot(std::ostream& out) const {
  serial::WriteVec(out, index_.data(), SnapshotComparison);
  scanner_.Snapshot(out);
  serial::WriteVec(out, trials_, serial::WriteU32);
  serial::WriteVec(out, matches_, serial::WriteU32);
  serial::WriteU64(out, global_trials_);
  serial::WriteU64(out, global_matches_);
  serial::WriteVec(out, promoted_, serial::WriteU8);
  serial::WriteVec(out, hot_queue_, serial::WriteU32);
  serial::WriteU64(out, hot_head_);
}

bool FbPcs::Restore(std::istream& in) {
  std::vector<Comparison> data;
  if (!serial::ReadVec(in, &data, RestoreComparison)) return false;
  if (!index_.RestoreData(std::move(data))) return false;
  if (!scanner_.Restore(in)) return false;
  std::vector<uint32_t> trials;
  std::vector<uint32_t> matches;
  uint64_t global_trials = 0;
  uint64_t global_matches = 0;
  std::vector<uint8_t> promoted;
  std::vector<TokenId> hot_queue;
  uint64_t hot_head = 0;
  if (!serial::ReadVec(in, &trials, serial::ReadU32) ||
      !serial::ReadVec(in, &matches, serial::ReadU32) ||
      !serial::ReadU64(in, &global_trials) ||
      !serial::ReadU64(in, &global_matches) ||
      !serial::ReadVec(in, &promoted, serial::ReadU8) ||
      !serial::ReadVec(in, &hot_queue, serial::ReadU32) ||
      !serial::ReadU64(in, &hot_head)) {
    return false;
  }
  // Cross-field invariants: parallel per-token arrays, counts that
  // add up, and a queue cursor inside the queue.
  if (matches.size() != trials.size() || promoted.size() != trials.size() ||
      global_matches > global_trials || hot_head > hot_queue.size()) {
    return false;
  }
  for (size_t t = 0; t < trials.size(); ++t) {
    if (matches[t] > trials[t]) return false;
  }
  trials_ = std::move(trials);
  matches_ = std::move(matches);
  global_trials_ = global_trials;
  global_matches_ = global_matches;
  promoted_ = std::move(promoted);
  hot_queue_ = std::move(hot_queue);
  hot_head_ = hot_head;
  return true;
}

}  // namespace pier
