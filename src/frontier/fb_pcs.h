// FB-PCS: feedback-driven progressive comparison scheduling, after
// pBlocking (arXiv 2005.14326). A decorator over the I-PCS shape:
// candidate generation is identical (ghosting, weighting kernel,
// I-WNP), but every weight is multiplied by a *block boost* derived
// from per-token match-rate posteriors that the matcher's verdict
// stream (OnVerdict: positives and negatives) keeps updating. Tokens
// whose blocks keep producing matches are promoted -- their remaining
// pairs are scheduled wholesale through a hot-block queue -- while
// tokens that keep producing non-matches see their future pairs
// demoted below the clamp floor. Scoring math and the feedback update
// rule are documented in DESIGN.md section 10.

#ifndef PIER_FRONTIER_FB_PCS_H_
#define PIER_FRONTIER_FB_PCS_H_

#include <vector>

#include "core/block_scanner.h"
#include "core/prioritizer.h"
#include "model/comparison.h"
#include "obs/metrics.h"
#include "util/bounded_priority_queue.h"

namespace pier {

class FbPcs : public IncrementalPrioritizer {
 public:
  FbPcs(PrioritizerContext ctx, PrioritizerOptions options);

  WorkStats UpdateCmpIndex(const std::vector<ProfileId>& delta) override;
  bool Dequeue(Comparison* out) override;
  bool Empty() const override {
    return index_.empty() && hot_head_ >= hot_queue_.size();
  }
  void OnStreamEnd() override { scanner_.AllowFullRescan(); }
  void OnRetract(ProfileId id) override;
  void OnVerdict(ProfileId a, ProfileId b, bool is_match) override;
  void Snapshot(std::ostream& out) const override;
  bool Restore(std::istream& in) override;
  const char* name() const override { return "FB-PCS"; }

 private:
  // Posterior boost factor of token t's block: the smoothed per-block
  // match rate over the global prior, clamped to [kMinBoost,
  // kMaxBoost]; 1.0 while the token has no verdict history.
  double BlockBoost(TokenId t) const;

  // Max boost over the two profiles' common tokens (1.0 when none has
  // history): the edge-level factor applied to candidate weights.
  double PairBoost(const EntityProfile& a, const EntityProfile& b) const;

  // Emits every remaining pair of the next promoted block into the
  // index at boosted weight (the executed filter suppresses re-runs).
  void ServeHotBlock(WorkStats* stats);

  PrioritizerContext ctx_;
  PrioritizerOptions options_;
  BoundedPriorityQueue<Comparison, CompareByWeight> index_;
  BlockScanner scanner_;
  WeightingScratch scratch_;
  std::vector<TokenId> retained_;  // reused ghosting output buffer

  // Per-token verdict history (indexed by TokenId, grown on demand)
  // plus the global totals behind the prior.
  std::vector<uint32_t> trials_;
  std::vector<uint32_t> matches_;
  uint64_t global_trials_ = 0;
  uint64_t global_matches_ = 0;

  // Promotion: each token enters the hot queue at most once, when its
  // boost first crosses the promotion threshold with enough evidence.
  std::vector<uint8_t> promoted_;
  std::vector<TokenId> hot_queue_;
  uint64_t hot_head_ = 0;

  // `frontier.*` metrics; null when the pipeline is uninstrumented.
  obs::Counter* verdicts_metric_ = nullptr;
  obs::Counter* promotions_metric_ = nullptr;
  obs::Counter* hot_pairs_metric_ = nullptr;
};

}  // namespace pier

#endif  // PIER_FRONTIER_FB_PCS_H_
