#include "frontier/sper_sk.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>

#include "blocking/block_ghosting.h"
#include "metablocking/weighting.h"
#include "util/serial.h"

namespace pier {

SperSk::SperSk(PrioritizerContext ctx, PrioritizerOptions options)
    : ctx_(ctx),
      options_(options),
      rng_(options.frontier_seed),
      scanner_(ctx) {
  frontier_.reserve(
      std::min<size_t>(options_.cmp_index_capacity, size_t{1} << 12));
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& r = *options_.metrics;
    samples_accepted_metric_ = r.GetCounter("frontier.samples_accepted");
    samples_rejected_metric_ = r.GetCounter("frontier.samples_rejected");
    exact_profiles_metric_ = r.GetCounter("frontier.exact_profiles");
    evictions_metric_ = r.GetCounter("frontier.evictions");
  }
}

void SperSk::TournamentInsert(const Comparison& c, WorkStats* stats) {
  ++stats->index_ops;
  if (frontier_.size() < options_.cmp_index_capacity) {
    frontier_.push_back(c);
    return;
  }
  // Tournament eviction: probe a few random slots and displace the
  // weakest, but only if the candidate beats it (CompareByWeight is
  // total, so the decision is deterministic given the probes).
  const CompareByWeight less;
  size_t weakest = rng_.UniformInt(0, frontier_.size() - 1);
  for (size_t p = 1; p < options_.frontier_probes; ++p) {
    const size_t i = rng_.UniformInt(0, frontier_.size() - 1);
    if (less(frontier_[i], frontier_[weakest])) weakest = i;
  }
  if (less(frontier_[weakest], c)) {
    frontier_[weakest] = c;
    obs::CounterAdd(evictions_metric_);
  }
}

void SperSk::SampleProfile(ProfileId id, WorkStats* stats) {
  const BlockCollection& blocks = *ctx_.blocks;
  const ProfileStore& profiles = *ctx_.profiles;
  const EntityProfile& p = profiles.Get(id);
  GhostBlocks(blocks, p, options_.beta, &retained_);
  if (retained_.empty()) return;
  const DatasetKind kind = blocks.kind();
  // Clean-Clean draws partners from the opposite source list only;
  // Dirty ER draws from the whole block (both member lists — loaders
  // may bucket dirty records under either source label).
  const bool cross_only = kind == DatasetKind::kCleanClean;
  const SourceId partner_source = static_cast<SourceId>(1 - p.source);
  const auto partner_count = [&](const BlockView& b) {
    return cross_only ? b.members[partner_source].size() : b.size();
  };
  const auto partner_at = [&](const BlockView& b, size_t k) {
    return cross_only ? b.members[partner_source][k] : b.member(k);
  };

  // Resolve block views once; the exact sweep and the draw loop
  // below index them instead of re-probing the collection. The views
  // stay valid for this whole pass (nothing mutates the collection).
  block_views_.clear();
  size_t total_members = 0;
  for (const TokenId token : retained_) {
    const BlockView b = blocks.block(token);
    total_members += partner_count(b);
    block_views_.push_back(b);
  }

  scratch_.BeginPass(profiles.size());

  if (total_members <= options_.frontier_sample_budget) {
    // Small neighbourhood: enumerate exactly (no draws, no RNG use)
    // with the same accumulate-then-drain sweep the exact strategies
    // run -- O(1) per block co-occurrence, and the accumulated count
    // IS the CBS weight, so no pairwise token intersection is needed.
    obs::CounterAdd(exact_profiles_metric_);
    for (const BlockView& b : block_views_) {
      const size_t n = partner_count(b);
      for (size_t k = 0; k < n; ++k) {
        // Only older partners (y < id): mirrors the exact strategies'
        // only_older_neighbors rule, so each unordered pair has
        // exactly one increment responsible for generating it.
        const ProfileId y = partner_at(b, k);
        if (y < id) scratch_.Accumulate(y);
      }
    }
    for (const ProfileId y : scratch_.touched()) {
      const Comparison c(id, y, static_cast<double>(scratch_.cbs(y)));
      ++stats->comparisons_generated;
      TournamentInsert(c, stats);
    }
    return;
  }

  // Block-selection distribution, built only on the sampling path:
  // 1/|b| per retained block, so small (more informative) blocks get
  // proportionally more draws.
  block_cdf_.clear();
  double total = 0.0;
  for (const BlockView& b : block_views_) {
    const size_t n = partner_count(b);
    total += n == 0 ? 0.0 : 1.0 / static_cast<double>(n);
    block_cdf_.push_back(total);
  }
  if (total <= 0.0) return;

  uint64_t accepted = 0;
  uint64_t rejected = 0;
  for (size_t draw = 0; draw < options_.frontier_sample_budget; ++draw) {
    const double u = rng_.UniformDouble() * total;
    const size_t bi = static_cast<size_t>(
        std::lower_bound(block_cdf_.begin(), block_cdf_.end(), u) -
        block_cdf_.begin());
    const BlockView& b = block_views_[std::min(bi, block_views_.size() - 1)];
    const size_t n = partner_count(b);
    if (n == 0) {
      ++rejected;
      continue;
    }
    const ProfileId y = partner_at(b, rng_.UniformInt(0, n - 1));
    // Only older partners, each at most once per pass (see above).
    if (y >= id) {
      ++rejected;
      continue;
    }
    scratch_.Accumulate(y);
    if (scratch_.cbs(y) != 1) {
      ++rejected;  // duplicate draw
      continue;
    }
    // Exact CBS weight for the sampled pair: the budget bounds these
    // intersections to a handful per profile, and the exact weight
    // keeps the emission order comparable with I-PCS.
    const Comparison c(id, y, PairCbsWeight(p, profiles.Get(y)));
    ++stats->comparisons_generated;
    TournamentInsert(c, stats);
    ++accepted;
  }
  obs::CounterAdd(samples_accepted_metric_, accepted);
  obs::CounterAdd(samples_rejected_metric_, rejected);
}

WorkStats SperSk::UpdateCmpIndex(const std::vector<ProfileId>& delta) {
  WorkStats stats;
  for (const ProfileId id : delta) SampleProfile(id, &stats);

  // Idle tick with a drained frontier: fall back to the block scanner
  // so eventual quality matches the exact strategies (the executed
  // filter suppresses re-emissions).
  if (delta.empty() && frontier_.empty()) {
    for (const Comparison& c : scanner_.NextBlock(&stats)) {
      TournamentInsert(c, &stats);
    }
  }
  return stats;
}

bool SperSk::Dequeue(Comparison* out) {
  if (frontier_.empty()) return false;
  const CompareByWeight less;
  size_t best = 0;
  // Small frontiers are scanned exactly (drains best-first); large
  // ones take the best of a probe tournament, which keeps dequeue O(1)
  // while staying heavily biased toward the top of the distribution.
  const size_t kExactScanLimit = 4 * options_.frontier_probes;
  if (frontier_.size() <= kExactScanLimit) {
    for (size_t i = 1; i < frontier_.size(); ++i) {
      if (less(frontier_[best], frontier_[i])) best = i;
    }
  } else {
    best = rng_.UniformInt(0, frontier_.size() - 1);
    for (size_t p = 1; p < options_.frontier_probes; ++p) {
      const size_t i = rng_.UniformInt(0, frontier_.size() - 1);
      if (less(frontier_[best], frontier_[i])) best = i;
    }
  }
  *out = frontier_[best];
  frontier_[best] = frontier_.back();
  frontier_.pop_back();
  return true;
}

void SperSk::OnRetract(ProfileId id) {
  // Order-preserving compaction keeps the reservoir layout (hence the
  // future probe sequence) deterministic.
  size_t kept = 0;
  for (size_t i = 0; i < frontier_.size(); ++i) {
    if (frontier_[i].x == id || frontier_[i].y == id) continue;
    frontier_[kept++] = frontier_[i];
  }
  frontier_.resize(kept);
}

void SperSk::Snapshot(std::ostream& out) const {
  // Reservoir verbatim (slot order matters: probes index into it),
  // then the full RNG state so the restored draw sequence continues
  // exactly, then scanner progress.
  serial::WriteVec(out, frontier_, SnapshotComparison);
  uint64_t state[4];
  rng_.SaveState(state);
  for (const uint64_t word : state) serial::WriteU64(out, word);
  scanner_.Snapshot(out);
}

bool SperSk::Restore(std::istream& in) {
  std::vector<Comparison> frontier;
  if (!serial::ReadVec(in, &frontier, RestoreComparison)) return false;
  if (frontier.size() > options_.cmp_index_capacity) return false;
  uint64_t state[4];
  for (uint64_t& word : state) {
    if (!serial::ReadU64(in, &word)) return false;
  }
  if (!scanner_.Restore(in)) return false;
  frontier_ = std::move(frontier);
  rng_.LoadState(state);
  return true;
}

}  // namespace pier
