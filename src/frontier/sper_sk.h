// SPER-SK: stochastic top-k comparison scheduling, after SPER
// (arXiv 2512.23491). Instead of enumerating a new profile's full
// co-blocked neighbourhood and keeping an exactly-ordered bounded
// priority queue (I-PCS), SPER-SK draws a fixed per-profile budget of
// candidate edges from the retained blocks (small blocks favoured,
// 1/|b| block-selection weights) and maintains an *approximate*
// frontier: an unordered reservoir with tournament insertion and
// tournament dequeue over a handful of random probes. Scheduling cost
// per profile is O(budget) instead of O(neighbourhood), at the price
// of an approximately-best-first emission order.
//
// Determinism contract: all randomness comes from one seeded Rng
// (PrioritizerOptions::frontier_seed) consumed only on the pipeline
// thread, so a run is byte-identical across reruns with the same seed
// and across every execution thread count; the seed joins the options
// fingerprint and the full RNG state is checkpointed. See DESIGN.md
// section 10.

#ifndef PIER_FRONTIER_SPER_SK_H_
#define PIER_FRONTIER_SPER_SK_H_

#include <vector>

#include "core/block_scanner.h"
#include "core/prioritizer.h"
#include "model/comparison.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace pier {

class SperSk : public IncrementalPrioritizer {
 public:
  SperSk(PrioritizerContext ctx, PrioritizerOptions options);

  WorkStats UpdateCmpIndex(const std::vector<ProfileId>& delta) override;
  bool Dequeue(Comparison* out) override;
  bool Empty() const override { return frontier_.empty(); }
  void OnStreamEnd() override { scanner_.AllowFullRescan(); }
  void OnRetract(ProfileId id) override;
  void Snapshot(std::ostream& out) const override;
  bool Restore(std::istream& in) override;
  const char* name() const override { return "SPER-SK"; }

 private:
  // Draws up to frontier_sample_budget candidate edges for profile
  // `id` from its retained blocks; small neighbourhoods (total member
  // visits <= budget) are enumerated exactly instead, so sparse data
  // loses nothing to sampling.
  void SampleProfile(ProfileId id, WorkStats* stats);

  // Reservoir insertion: appends while below capacity, otherwise
  // replaces the weakest of frontier_probes random slots if the
  // candidate beats it.
  void TournamentInsert(const Comparison& c, WorkStats* stats);

  PrioritizerContext ctx_;
  PrioritizerOptions options_;
  Rng rng_;
  // The approximate frontier: unordered; order is a deterministic
  // function of the seed and the increment history.
  std::vector<Comparison> frontier_;
  BlockScanner scanner_;
  WeightingScratch scratch_;  // per-profile dedup of sampled partners
  std::vector<TokenId> retained_;  // reused ghosting output buffer
  std::vector<double> block_cdf_;  // reused block-selection cumsums
  std::vector<BlockView> block_views_;  // blocks behind block_cdf_

  // `frontier.*` metrics; null when the pipeline is uninstrumented.
  obs::Counter* samples_accepted_metric_ = nullptr;
  obs::Counter* samples_rejected_metric_ = nullptr;
  obs::Counter* exact_profiles_metric_ = nullptr;
  obs::Counter* evictions_metric_ = nullptr;
};

}  // namespace pier

#endif  // PIER_FRONTIER_SPER_SK_H_
