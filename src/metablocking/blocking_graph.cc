#include "metablocking/blocking_graph.h"

#include <algorithm>

#include "util/check.h"

namespace pier {

size_t BlockingGraph::Build(const WeightingContext& ctx, ProfileId limit,
                            uint64_t* visits) {
  PIER_CHECK(ctx.blocks != nullptr && ctx.profiles != nullptr);
  PIER_CHECK(limit <= ctx.profiles->size());
  adjacency_.assign(limit, {});
  num_edges_ = 0;

  std::vector<TokenId> active_blocks;
  for (ProfileId x = 0; x < limit; ++x) {
    const EntityProfile& profile = ctx.profiles->Get(x);
    active_blocks.clear();
    for (const TokenId token : profile.tokens) {
      if (ctx.blocks->IsActive(token)) active_blocks.push_back(token);
    }
    // only_older_neighbors guarantees each undirected edge is created
    // exactly once (from its larger endpoint).
    for (auto& edge :
         GenerateWeightedComparisons(ctx, profile, active_blocks,
                                     /*only_older_neighbors=*/true,
                                     visits)) {
      if (edge.y >= limit) continue;
      adjacency_[edge.x].push_back(edge);
      adjacency_[edge.y].push_back(edge);
      ++num_edges_;
    }
  }

  const CompareByWeight less;
  for (auto& edges : adjacency_) {
    std::sort(edges.begin(), edges.end(),
              [&less](const Comparison& a, const Comparison& b) {
                return less(b, a);  // weight descending
              });
  }
  return num_edges_;
}

const std::vector<Comparison>& BlockingGraph::Edges(ProfileId id) const {
  PIER_DCHECK(id < adjacency_.size());
  return adjacency_[id];
}

double BlockingGraph::NodeWeight(ProfileId id) const {
  const auto& edges = Edges(id);
  return edges.empty() ? 0.0 : edges.front().weight;
}

}  // namespace pier
