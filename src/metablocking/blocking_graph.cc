#include "metablocking/blocking_graph.h"

#include <algorithm>
#include <atomic>
#include <future>

#include "util/check.h"
#include "util/thread_pool.h"

namespace pier {

namespace {

// Profiles per work unit: small enough to balance the (heavily skewed)
// neighbourhood sizes across workers, large enough to amortize the
// per-chunk bookkeeping.
constexpr ProfileId kChunkProfiles = 256;

// Weights the neighbourhoods of profiles [begin, end), appending their
// edges to `edges` in ascending-profile order.
void BuildChunk(const WeightingContext& ctx, ProfileId begin, ProfileId end,
                WeightingScratch& scratch, std::vector<TokenId>& active_blocks,
                std::vector<Comparison>& edges, uint64_t& visits) {
  for (ProfileId x = begin; x < end; ++x) {
    const EntityProfile& profile = ctx.profiles->Get(x);
    active_blocks.clear();
    for (const TokenId token : profile.tokens()) {
      if (ctx.blocks->IsActive(token)) active_blocks.push_back(token);
    }
    // only_older_neighbors guarantees each undirected edge is created
    // exactly once (from its larger endpoint).
    AppendWeightedComparisons(ctx, profile, active_blocks,
                              /*only_older_neighbors=*/true, &visits, scratch,
                              &edges);
  }
}

}  // namespace

size_t BlockingGraph::Build(const WeightingContext& ctx, ProfileId limit,
                            uint64_t* visits, ThreadPool* pool) {
  PIER_CHECK(ctx.blocks != nullptr && ctx.profiles != nullptr);
  PIER_CHECK(limit <= ctx.profiles->size());
  adjacency_.assign(limit, {});
  num_edges_ = 0;

  const size_t num_chunks =
      (static_cast<size_t>(limit) + kChunkProfiles - 1) / kChunkProfiles;
  std::vector<std::vector<Comparison>> chunk_edges(num_chunks);
  std::vector<uint64_t> chunk_visits(num_chunks, 0);
  const auto chunk_range = [limit](size_t c, ProfileId* begin,
                                   ProfileId* end) {
    *begin = static_cast<ProfileId>(c * kChunkProfiles);
    *end = static_cast<ProfileId>(
        std::min<size_t>(limit, (c + 1) * kChunkProfiles));
  };

  const size_t num_workers =
      pool == nullptr ? 1 : std::min(pool->size(), num_chunks);
  if (num_workers <= 1) {
    WeightingScratch scratch;
    std::vector<TokenId> active_blocks;
    for (size_t c = 0; c < num_chunks; ++c) {
      ProfileId begin, end;
      chunk_range(c, &begin, &end);
      BuildChunk(ctx, begin, end, scratch, active_blocks, chunk_edges[c],
                 chunk_visits[c]);
    }
  } else {
    // Workers pull chunk indices from a shared counter and write into
    // index-addressed slots: no slot is touched by two workers, and
    // the merge below reads the chunks in profile order regardless of
    // which worker built which chunk.
    std::atomic<size_t> next_chunk{0};
    std::vector<std::future<void>> futures;
    futures.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      futures.push_back(pool->Submit([&] {
        WeightingScratch scratch;  // per-worker, reused across chunks
        std::vector<TokenId> active_blocks;
        for (;;) {
          const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
          if (c >= num_chunks) return;
          ProfileId begin, end;
          chunk_range(c, &begin, &end);
          BuildChunk(ctx, begin, end, scratch, active_blocks, chunk_edges[c],
                     chunk_visits[c]);
        }
      }));
    }
    for (auto& f : futures) f.get();
  }

  // Deterministic merge: chunk order is profile order, so the
  // adjacency lists fill exactly as a sequential pass would.
  for (size_t c = 0; c < num_chunks; ++c) {
    for (const auto& edge : chunk_edges[c]) {
      if (edge.y >= limit) continue;
      adjacency_[edge.x].push_back(edge);
      adjacency_[edge.y].push_back(edge);
      ++num_edges_;
    }
    if (visits != nullptr) *visits += chunk_visits[c];
  }

  // Per-node sort by the total order (weight desc, then pair key):
  // node lists are independent and the comparator is total, so the
  // result is identical however the work is split.
  const CompareByWeight less;
  const auto sort_node = [this, &less](ProfileId id) {
    auto& edges = adjacency_[id];
    std::sort(edges.begin(), edges.end(),
              [&less](const Comparison& a, const Comparison& b) {
                return less(b, a);  // weight descending
              });
  };
  if (num_workers <= 1) {
    for (ProfileId id = 0; id < limit; ++id) sort_node(id);
  } else {
    std::atomic<size_t> next_chunk{0};
    std::vector<std::future<void>> futures;
    futures.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      futures.push_back(pool->Submit([&] {
        for (;;) {
          const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
          if (c >= num_chunks) return;
          ProfileId begin, end;
          chunk_range(c, &begin, &end);
          for (ProfileId id = begin; id < end; ++id) sort_node(id);
        }
      }));
    }
    for (auto& f : futures) f.get();
  }
  return num_edges_;
}

size_t BlockingGraph::RemoveProfile(ProfileId id) {
  PIER_CHECK(id < adjacency_.size());
  std::vector<Comparison> edges = std::move(adjacency_[id]);
  adjacency_[id].clear();
  for (const Comparison& edge : edges) {
    const ProfileId other = edge.x == id ? edge.y : edge.x;
    auto& list = adjacency_[other];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [id](const Comparison& c) {
                                return c.x == id || c.y == id;
                              }),
               list.end());
  }
  num_edges_ -= edges.size();
  return edges.size();
}

const std::vector<Comparison>& BlockingGraph::Edges(ProfileId id) const {
  PIER_DCHECK(id < adjacency_.size());
  return adjacency_[id];
}

double BlockingGraph::NodeWeight(ProfileId id) const {
  const auto& edges = Edges(id);
  return edges.empty() ? 0.0 : edges.front().weight;
}

}  // namespace pier
