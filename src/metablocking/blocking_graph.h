// Batch meta-blocking graph: nodes are profiles, weighted edges
// connect profiles sharing at least one block. Needed by the batch
// progressive baselines (PPS keeps per-node sorted edge lists and node
// duplication likelihoods). Building it over the full dataset is the
// expensive pre-analysis step whose cost the PIER algorithms avoid
// (Section 6: "the incremental building, maintaining, and updating of
// the meta-blocking graph is very costly").

#ifndef PIER_METABLOCKING_BLOCKING_GRAPH_H_
#define PIER_METABLOCKING_BLOCKING_GRAPH_H_

#include <cstdint>
#include <vector>

#include "metablocking/weighting.h"
#include "model/comparison.h"
#include "model/types.h"

namespace pier {

class ThreadPool;

class BlockingGraph {
 public:
  BlockingGraph() = default;

  // Builds the graph over all profiles currently in ctx.profiles,
  // restricted to profile ids in [0, limit) (limit = store size for
  // the full graph). Existing content is discarded. Returns the number
  // of undirected edges created. `visits`, when non-null, receives the
  // raw block-member iteration count (the true build cost).
  //
  // With a non-null `pool`, profile neighbourhoods are weighted in
  // parallel across the pool's workers (each with its own
  // WeightingScratch) and merged chunk-by-chunk in profile order: the
  // edge set, the adjacency order, and the visit count are identical
  // to a sequential build at any thread count (the same determinism
  // contract as the parallel match executor, DESIGN.md §4).
  size_t Build(const WeightingContext& ctx, ProfileId limit,
               uint64_t* visits = nullptr, ThreadPool* pool = nullptr);

  // Detaches a node (mutable streams: the profile was deleted): drops
  // every edge incident to `id` from both endpoints' lists, preserving
  // the weight-descending order of the surviving edges. The node slot
  // stays allocated (ids are dense) but isolated. Returns the number
  // of undirected edges removed.
  size_t RemoveProfile(ProfileId id);

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }

  // Edges incident to `id`, sorted by weight descending. Each
  // undirected edge appears in both endpoints' lists.
  const std::vector<Comparison>& Edges(ProfileId id) const;

  // Duplication likelihood of a node: the weight of its best incident
  // edge (0 for isolated nodes).
  double NodeWeight(ProfileId id) const;

 private:
  std::vector<std::vector<Comparison>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace pier

#endif  // PIER_METABLOCKING_BLOCKING_GRAPH_H_
