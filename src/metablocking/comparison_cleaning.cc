#include "metablocking/comparison_cleaning.h"

#include <algorithm>
#include <unordered_set>

#include "util/hashing.h"

namespace pier {

namespace {

// All undirected edges exactly once (from the adjacency of the larger
// endpoint, mirroring how BlockingGraph creates them).
std::vector<Comparison> UniqueEdges(const BlockingGraph& graph) {
  std::vector<Comparison> edges;
  edges.reserve(graph.num_edges());
  for (ProfileId id = 0; id < graph.num_nodes(); ++id) {
    for (const auto& edge : graph.Edges(id)) {
      if (std::max(edge.x, edge.y) == id) edges.push_back(edge);
    }
  }
  return edges;
}

void SortByWeightDesc(std::vector<Comparison>& edges) {
  const CompareByWeight less;
  std::sort(edges.begin(), edges.end(),
            [&less](const Comparison& a, const Comparison& b) {
              return less(b, a);
            });
}

}  // namespace

const char* ToString(PruningAlgorithm algorithm) {
  switch (algorithm) {
    case PruningAlgorithm::kWep:
      return "WEP";
    case PruningAlgorithm::kCep:
      return "CEP";
    case PruningAlgorithm::kWnp:
      return "WNP";
    case PruningAlgorithm::kCnp:
      return "CNP";
  }
  return "?";
}

std::vector<Comparison> PruneComparisons(const BlockingGraph& graph,
                                         PruningAlgorithm algorithm,
                                         PruningOptions options) {
  std::vector<Comparison> retained;

  switch (algorithm) {
    case PruningAlgorithm::kWep: {
      std::vector<Comparison> edges = UniqueEdges(graph);
      double total = 0.0;
      for (const auto& e : edges) total += e.weight;
      const double mean =
          edges.empty() ? 0.0 : total / static_cast<double>(edges.size());
      for (const auto& e : edges) {
        if (e.weight >= mean) retained.push_back(e);
      }
      break;
    }
    case PruningAlgorithm::kCep: {
      retained = UniqueEdges(graph);
      SortByWeightDesc(retained);
      if (retained.size() > options.cep_k) {
        retained.resize(options.cep_k);
      }
      break;
    }
    case PruningAlgorithm::kWnp: {
      // An edge survives if at least one endpoint's neighbourhood mean
      // admits it (the standard "redefined" WNP union semantics).
      std::unordered_set<uint64_t> kept;
      for (ProfileId id = 0; id < graph.num_nodes(); ++id) {
        const auto& edges = graph.Edges(id);
        if (edges.empty()) continue;
        double total = 0.0;
        for (const auto& e : edges) total += e.weight;
        const double mean = total / static_cast<double>(edges.size());
        for (const auto& e : edges) {
          if (e.weight >= mean) kept.insert(e.Key());
        }
      }
      for (auto& e : UniqueEdges(graph)) {
        if (kept.count(e.Key())) retained.push_back(e);
      }
      break;
    }
    case PruningAlgorithm::kCnp: {
      std::unordered_set<uint64_t> kept;
      for (ProfileId id = 0; id < graph.num_nodes(); ++id) {
        const auto& edges = graph.Edges(id);  // weight-desc already
        const size_t limit = std::min(options.cnp_k, edges.size());
        for (size_t i = 0; i < limit; ++i) kept.insert(edges[i].Key());
      }
      for (auto& e : UniqueEdges(graph)) {
        if (kept.count(e.Key())) retained.push_back(e);
      }
      break;
    }
  }
  SortByWeightDesc(retained);
  return retained;
}

}  // namespace pier
