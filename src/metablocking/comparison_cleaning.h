// Batch comparison cleaning: the four classic meta-blocking pruning
// algorithms (Papadakis et al., TKDE 2013 [25]) over a built blocking
// graph. The paper's incremental pipeline replaces these with I-WNP
// (i_wnp.h); the batch variants complete the substrate and let the
// batch-ER baseline run with meta-blocking, as JedAI pipelines do.
//
//   WEP (weighted edge pruning):    keep edges >= global mean weight.
//   CEP (cardinality edge pruning): keep the globally top-K edges.
//   WNP (weighted node pruning):    per node, keep edges >= the node's
//                                   mean weight (an edge survives if
//                                   either endpoint keeps it).
//   CNP (cardinality node pruning): per node, keep the top-k edges.

#ifndef PIER_METABLOCKING_COMPARISON_CLEANING_H_
#define PIER_METABLOCKING_COMPARISON_CLEANING_H_

#include <cstddef>
#include <vector>

#include "metablocking/blocking_graph.h"
#include "model/comparison.h"

namespace pier {

enum class PruningAlgorithm : uint8_t {
  kWep = 0,
  kCep = 1,
  kWnp = 2,
  kCnp = 3,
};

const char* ToString(PruningAlgorithm algorithm);

struct PruningOptions {
  // CEP: number of edges retained globally.
  size_t cep_k = 1000;
  // CNP: number of edges retained per node.
  size_t cnp_k = 10;
};

// Returns the retained comparisons, each undirected edge exactly once,
// sorted by weight descending (deterministic tie-break).
std::vector<Comparison> PruneComparisons(const BlockingGraph& graph,
                                         PruningAlgorithm algorithm,
                                         PruningOptions options = {});

}  // namespace pier

#endif  // PIER_METABLOCKING_COMPARISON_CLEANING_H_
