#include "metablocking/i_wnp.h"

#include <algorithm>

namespace pier {

double MeanWeight(const std::vector<Comparison>& candidates) {
  if (candidates.empty()) return 0.0;
  double total = 0.0;
  for (const auto& c : candidates) total += c.weight;
  return total / static_cast<double>(candidates.size());
}

std::vector<Comparison> IWnpPrune(std::vector<Comparison> candidates) {
  if (candidates.size() <= 1) return candidates;
  const double mean = MeanWeight(candidates);
  candidates.erase(
      std::remove_if(candidates.begin(), candidates.end(),
                     [mean](const Comparison& c) { return c.weight < mean; }),
      candidates.end());
  return candidates;
}

}  // namespace pier
