// I-WNP: incremental Weighted Node Pruning (Gazzarri & Herschel, ICDE
// 2021 [17]). Given the weighted comparison candidates of one
// profile's neighbourhood, it discards every candidate whose weight is
// below the neighbourhood's mean weight. This is the incremental
// comparison-cleaning step invoked by I-PCS and I-PES (Algorithm 2,
// line 8).

#ifndef PIER_METABLOCKING_I_WNP_H_
#define PIER_METABLOCKING_I_WNP_H_

#include <vector>

#include "model/comparison.h"

namespace pier {

// Returns the retained candidates (weight >= mean weight of the input
// list). An empty input yields an empty output; a single candidate is
// always retained.
std::vector<Comparison> IWnpPrune(std::vector<Comparison> candidates);

// The mean weight of a candidate list (0.0 for an empty list);
// exposed for tests and diagnostics.
double MeanWeight(const std::vector<Comparison>& candidates);

}  // namespace pier

#endif  // PIER_METABLOCKING_I_WNP_H_
