#include "metablocking/weighting.h"

#include <cmath>
#include <unordered_map>

#include "similarity/string_distance.h"
#include "util/check.h"

namespace pier {

namespace {

struct NeighborStats {
  uint32_t cbs = 0;
  double arcs = 0.0;
};

double SafeLog(double x) { return std::log(x < 1.01 ? 1.01 : x); }

}  // namespace

const char* ToString(WeightingScheme scheme) {
  switch (scheme) {
    case WeightingScheme::kCbs:
      return "CBS";
    case WeightingScheme::kEcbs:
      return "ECBS";
    case WeightingScheme::kJs:
      return "JS";
    case WeightingScheme::kArcs:
      return "ARCS";
  }
  return "?";
}

std::vector<Comparison> GenerateWeightedComparisons(
    const WeightingContext& ctx, const EntityProfile& x,
    const std::vector<TokenId>& retained_blocks, bool only_older_neighbors,
    uint64_t* visits) {
  PIER_DCHECK(ctx.blocks != nullptr && ctx.profiles != nullptr);
  const BlockCollection& blocks = *ctx.blocks;
  const DatasetKind kind = blocks.kind();

  std::unordered_map<ProfileId, NeighborStats> neighbors;
  for (const TokenId token : retained_blocks) {
    const Block& b = blocks.block(token);
    const double arcs_share =
        1.0 / static_cast<double>(
                  std::max<uint64_t>(1, b.NumComparisons(kind)));
    const SourceId lo =
        kind == DatasetKind::kCleanClean ? static_cast<SourceId>(1 - x.source)
                                         : static_cast<SourceId>(0);
    const SourceId hi = kind == DatasetKind::kCleanClean
                            ? lo
                            : static_cast<SourceId>(1);
    for (SourceId s = lo; s <= hi; ++s) {
      if (visits != nullptr) *visits += b.members[s].size();
      for (const ProfileId y : b.members[s]) {
        if (y == x.id) continue;
        if (only_older_neighbors && y > x.id) continue;
        NeighborStats& stats = neighbors[y];
        ++stats.cbs;
        stats.arcs += arcs_share;
      }
    }
  }

  std::vector<Comparison> out;
  out.reserve(neighbors.size());
  const double num_blocks = static_cast<double>(blocks.NumBlocks());
  const double bx = static_cast<double>(x.tokens.size());
  for (const auto& [y, stats] : neighbors) {
    const double by =
        static_cast<double>(ctx.profiles->Get(y).tokens.size());
    double w = 0.0;
    switch (ctx.scheme) {
      case WeightingScheme::kCbs:
        w = stats.cbs;
        break;
      case WeightingScheme::kEcbs:
        w = stats.cbs * SafeLog(num_blocks / std::max(1.0, bx)) *
            SafeLog(num_blocks / std::max(1.0, by));
        break;
      case WeightingScheme::kJs:
        w = stats.cbs / (bx + by - stats.cbs);
        break;
      case WeightingScheme::kArcs:
        w = stats.arcs;
        break;
    }
    out.emplace_back(x.id, y, w);
  }
  return out;
}

double PairCbsWeight(const EntityProfile& a, const EntityProfile& b) {
  return static_cast<double>(IntersectionSize(a.tokens, b.tokens));
}

}  // namespace pier
