#include "metablocking/weighting.h"

#include <cmath>
#include <unordered_map>

#include "similarity/string_distance.h"
#include "util/check.h"

namespace pier {

namespace {

struct NeighborStats {
  uint32_t cbs = 0;
  double arcs = 0.0;
};

double SafeLog(double x) { return std::log(x < 1.01 ? 1.01 : x); }

// Source range of block members profile x may be compared against:
// cross-source only for Clean-Clean, the single source 0 for Dirty.
void NeighborSources(DatasetKind kind, const EntityProfile& x, SourceId* lo,
                     SourceId* hi) {
  *lo = kind == DatasetKind::kCleanClean ? static_cast<SourceId>(1 - x.source)
                                         : static_cast<SourceId>(0);
  *hi = kind == DatasetKind::kCleanClean ? *lo : static_cast<SourceId>(1);
}

}  // namespace

const char* ToString(WeightingScheme scheme) {
  switch (scheme) {
    case WeightingScheme::kCbs:
      return "CBS";
    case WeightingScheme::kEcbs:
      return "ECBS";
    case WeightingScheme::kJs:
      return "JS";
    case WeightingScheme::kArcs:
      return "ARCS";
  }
  return "?";
}

void AppendWeightedComparisons(const WeightingContext& ctx,
                               const EntityProfile& x,
                               const std::vector<TokenId>& retained_blocks,
                               bool only_older_neighbors, uint64_t* visits,
                               WeightingScratch& scratch,
                               std::vector<Comparison>* out) {
  PIER_DCHECK(ctx.blocks != nullptr && ctx.profiles != nullptr);
  PIER_DCHECK(out != nullptr);
  const BlockCollection& blocks = *ctx.blocks;
  const ProfileStore& profiles = *ctx.profiles;
  const DatasetKind kind = blocks.kind();

  scratch.BeginPass(profiles.size());

  // Accumulation: one dense-array update per raw member visit, no
  // hashing, no allocation. ARCS is the only scheme that needs the
  // per-block share, so the other three skip the double accumulate.
  const bool need_arcs = ctx.scheme == WeightingScheme::kArcs;
  uint64_t local_visits = 0;
  for (const TokenId token : retained_blocks) {
    const BlockView b = blocks.block(token);
    SourceId lo, hi;
    NeighborSources(kind, x, &lo, &hi);
    if (need_arcs) {
      const double arcs_share =
          1.0 / static_cast<double>(
                    std::max<uint64_t>(1, b.NumComparisons(kind)));
      for (SourceId s = lo; s <= hi; ++s) {
        local_visits += b.members[s].size();
        for (const ProfileId y : b.members[s]) {
          if (y == x.id) continue;
          if (only_older_neighbors && y > x.id) continue;
          scratch.AccumulateArcs(y, arcs_share);
        }
      }
    } else {
      for (SourceId s = lo; s <= hi; ++s) {
        local_visits += b.members[s].size();
        for (const ProfileId y : b.members[s]) {
          if (y == x.id) continue;
          if (only_older_neighbors && y > x.id) continue;
          scratch.Accumulate(y);
        }
      }
    }
  }

  const std::vector<ProfileId>& touched = scratch.touched();
  // Every distinct neighbour was found by at least one raw member
  // visit; a violation means the accumulator double-counted.
  PIER_DCHECK(local_visits >= touched.size());
  if (visits != nullptr) *visits += local_visits;

  // Weighting: replay the touched ids in first-touch order. The
  // neighbour's token count comes from the store's contiguous sidecar
  // rather than a Get() pointer chase into the cold profile record.
  out->reserve(out->size() + touched.size());
  const double num_blocks = static_cast<double>(blocks.NumBlocks());
  const double bx = static_cast<double>(x.tokens().size());
  switch (ctx.scheme) {
    case WeightingScheme::kCbs:
      for (const ProfileId y : touched) {
        out->emplace_back(x.id, y, static_cast<double>(scratch.cbs(y)));
      }
      break;
    case WeightingScheme::kEcbs: {
      // x's log factor is loop-invariant: one SafeLog per neighbour
      // instead of two.
      const double x_factor = SafeLog(num_blocks / std::max(1.0, bx));
      for (const ProfileId y : touched) {
        const double by = static_cast<double>(profiles.TokenCount(y));
        out->emplace_back(x.id, y,
                          scratch.cbs(y) * x_factor *
                              SafeLog(num_blocks / std::max(1.0, by)));
      }
      break;
    }
    case WeightingScheme::kJs:
      for (const ProfileId y : touched) {
        const double by = static_cast<double>(profiles.TokenCount(y));
        const uint32_t cbs = scratch.cbs(y);
        out->emplace_back(x.id, y, cbs / (bx + by - cbs));
      }
      break;
    case WeightingScheme::kArcs:
      for (const ProfileId y : touched) {
        out->emplace_back(x.id, y, scratch.arcs(y));
      }
      break;
  }
}

std::vector<Comparison> GenerateWeightedComparisons(
    const WeightingContext& ctx, const EntityProfile& x,
    const std::vector<TokenId>& retained_blocks, bool only_older_neighbors,
    uint64_t* visits, WeightingScratch* scratch) {
  thread_local WeightingScratch fallback;
  std::vector<Comparison> out;
  AppendWeightedComparisons(ctx, x, retained_blocks, only_older_neighbors,
                            visits, scratch != nullptr ? *scratch : fallback,
                            &out);
  return out;
}

std::vector<Comparison> GenerateWeightedComparisonsReference(
    const WeightingContext& ctx, const EntityProfile& x,
    const std::vector<TokenId>& retained_blocks, bool only_older_neighbors,
    uint64_t* visits) {
  PIER_DCHECK(ctx.blocks != nullptr && ctx.profiles != nullptr);
  const BlockCollection& blocks = *ctx.blocks;
  const DatasetKind kind = blocks.kind();

  std::unordered_map<ProfileId, NeighborStats> neighbors;
  for (const TokenId token : retained_blocks) {
    const BlockView b = blocks.block(token);
    const double arcs_share =
        1.0 / static_cast<double>(
                  std::max<uint64_t>(1, b.NumComparisons(kind)));
    SourceId lo, hi;
    NeighborSources(kind, x, &lo, &hi);
    for (SourceId s = lo; s <= hi; ++s) {
      if (visits != nullptr) *visits += b.members[s].size();
      for (const ProfileId y : b.members[s]) {
        if (y == x.id) continue;
        if (only_older_neighbors && y > x.id) continue;
        NeighborStats& stats = neighbors[y];
        ++stats.cbs;
        stats.arcs += arcs_share;
      }
    }
  }

  std::vector<Comparison> out;
  out.reserve(neighbors.size());
  const double num_blocks = static_cast<double>(blocks.NumBlocks());
  const double bx = static_cast<double>(x.tokens().size());
  for (const auto& [y, stats] : neighbors) {
    const double by =
        static_cast<double>(ctx.profiles->Get(y).tokens().size());
    double w = 0.0;
    switch (ctx.scheme) {
      case WeightingScheme::kCbs:
        w = stats.cbs;
        break;
      case WeightingScheme::kEcbs:
        w = stats.cbs * SafeLog(num_blocks / std::max(1.0, bx)) *
            SafeLog(num_blocks / std::max(1.0, by));
        break;
      case WeightingScheme::kJs:
        w = stats.cbs / (bx + by - stats.cbs);
        break;
      case WeightingScheme::kArcs:
        w = stats.arcs;
        break;
    }
    out.emplace_back(x.id, y, w);
  }
  return out;
}

double PairCbsWeight(const EntityProfile& a, const EntityProfile& b) {
  return static_cast<double>(IntersectionSize(a.tokens(), b.tokens()));
}

}  // namespace pier
