// Meta-blocking weighting schemes (Papadakis et al., TKDE 2013 [25]):
// estimate the match likelihood of a pair from block co-occurrence
// statistics alone, with no schema knowledge.
//
// The paper's algorithms use CBS (Common Blocks Scheme) because it is
// the cheapest to maintain incrementally; we additionally provide
// ECBS, JS, and ARCS as drop-in alternatives (exercised by the
// weighting-scheme ablation bench).

#ifndef PIER_METABLOCKING_WEIGHTING_H_
#define PIER_METABLOCKING_WEIGHTING_H_

#include <vector>

#include "blocking/block_collection.h"
#include "model/comparison.h"
#include "model/entity_profile.h"
#include "model/profile_store.h"
#include "model/types.h"

namespace pier {

enum class WeightingScheme : uint8_t {
  // CBS: number of blocks the two profiles share.
  kCbs = 0,
  // ECBS: CBS discounted by how prolific each profile is,
  // CBS * log(B / |B_x|) * log(B / |B_y|).
  kEcbs = 1,
  // JS: Jaccard of the two profiles' block sets,
  // CBS / (|B_x| + |B_y| - CBS).
  kJs = 2,
  // ARCS: sum over common blocks of 1 / ||b|| (reciprocal of the
  // block's comparison cardinality); favours small blocks.
  kArcs = 3,
};

const char* ToString(WeightingScheme scheme);

struct WeightingContext {
  const BlockCollection* blocks = nullptr;
  const ProfileStore* profiles = nullptr;
  WeightingScheme scheme = WeightingScheme::kCbs;
};

// Generates the weighted comparison candidates of profile `x` against
// every co-blocked neighbour found in `retained_blocks` (typically the
// ghosted B_x). For Clean-Clean collections only cross-source
// neighbours are considered.
//
// With only_older_neighbors = true, only neighbours with id < x.id are
// generated; because ids are dense in arrival order and a profile is
// added to the block collection before its comparisons are generated,
// this yields every new pair exactly once per increment with no
// dedup structure (Section 3.2).
// `visits`, when non-null, is incremented by the number of raw block-
// member iterations performed -- the dominant cost on large blocks and
// the quantity a cost model must charge for (edge counts alone
// underestimate the work).
std::vector<Comparison> GenerateWeightedComparisons(
    const WeightingContext& ctx, const EntityProfile& x,
    const std::vector<TokenId>& retained_blocks,
    bool only_older_neighbors = true, uint64_t* visits = nullptr);

// CBS weight of an explicit pair: the number of common tokens (each
// distinct token is one block under token blocking). Used by I-PBS
// (Algorithm 3, line 13) and by the fallback block scanner.
double PairCbsWeight(const EntityProfile& a, const EntityProfile& b);

}  // namespace pier

#endif  // PIER_METABLOCKING_WEIGHTING_H_
