// Meta-blocking weighting schemes (Papadakis et al., TKDE 2013 [25]):
// estimate the match likelihood of a pair from block co-occurrence
// statistics alone, with no schema knowledge.
//
// The paper's algorithms use CBS (Common Blocks Scheme) because it is
// the cheapest to maintain incrementally; we additionally provide
// ECBS, JS, and ARCS as drop-in alternatives (exercised by the
// weighting-scheme ablation bench).

#ifndef PIER_METABLOCKING_WEIGHTING_H_
#define PIER_METABLOCKING_WEIGHTING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "blocking/block_collection.h"
#include "model/comparison.h"
#include "model/entity_profile.h"
#include "model/profile_store.h"
#include "model/types.h"

namespace pier {

enum class WeightingScheme : uint8_t {
  // CBS: number of blocks the two profiles share.
  kCbs = 0,
  // ECBS: CBS discounted by how prolific each profile is,
  // CBS * log(B / |B_x|) * log(B / |B_y|).
  kEcbs = 1,
  // JS: Jaccard of the two profiles' block sets,
  // CBS / (|B_x| + |B_y| - CBS).
  kJs = 2,
  // ARCS: sum over common blocks of 1 / ||b|| (reciprocal of the
  // block's comparison cardinality); favours small blocks.
  kArcs = 3,
};

const char* ToString(WeightingScheme scheme);

struct WeightingContext {
  const BlockCollection* blocks = nullptr;
  const ProfileStore* profiles = nullptr;
  WeightingScheme scheme = WeightingScheme::kCbs;
};

// Reusable allocation-free accumulator for one profile's neighbourhood
// statistics -- the weighting hot path every prioritizer and baseline
// funnels through (DESIGN.md, "Weighting kernel"). The counter slots
// are dense arrays indexed by ProfileId and carry an epoch stamp: a
// slot is live only while its stamp equals the current pass epoch, so
// BeginPass clears the whole scratch in O(1) without touching the
// arrays (the sparse-reset "timestamp trick"). The touched-id list
// replays the pass's neighbours in deterministic first-touch order.
// One scratch per owning thread; the class itself is not thread-safe.
class WeightingScratch {
 public:
  // Readies the scratch for one pass over profile ids in
  // [0, num_profiles). Grows the slot arrays as the store grows;
  // no allocation once sized (amortized O(1) across a stream).
  void BeginPass(size_t num_profiles) {
    if (epoch_.size() < num_profiles) {
      epoch_.resize(num_profiles, 0);
      cbs_.resize(num_profiles, 0);
      arcs_.resize(num_profiles, 0.0);
    }
    if (++current_epoch_ == 0) {  // stamp wrapped: one hard reset
      std::fill(epoch_.begin(), epoch_.end(), 0u);
      current_epoch_ = 1;
    }
    touched_.clear();
  }

  // Records one block co-occurrence with neighbour y.
  void Accumulate(ProfileId y) {
    if (epoch_[y] != current_epoch_) {
      epoch_[y] = current_epoch_;
      cbs_[y] = 1;
      touched_.push_back(y);
    } else {
      ++cbs_[y];
    }
  }

  // Records one co-occurrence that also carries an ARCS share.
  void AccumulateArcs(ProfileId y, double arcs_share) {
    if (epoch_[y] != current_epoch_) {
      epoch_[y] = current_epoch_;
      cbs_[y] = 1;
      arcs_[y] = arcs_share;
      touched_.push_back(y);
    } else {
      ++cbs_[y];
      arcs_[y] += arcs_share;
    }
  }

  // The current pass's neighbours, in first-touch order.
  const std::vector<ProfileId>& touched() const { return touched_; }
  uint32_t cbs(ProfileId y) const { return cbs_[y]; }
  double arcs(ProfileId y) const { return arcs_[y]; }

  size_t capacity() const { return epoch_.size(); }

 private:
  std::vector<uint32_t> epoch_;
  std::vector<uint32_t> cbs_;
  std::vector<double> arcs_;
  std::vector<ProfileId> touched_;
  uint32_t current_epoch_ = 0;
};

// Generates the weighted comparison candidates of profile `x` against
// every co-blocked neighbour found in `retained_blocks` (typically the
// ghosted B_x). For Clean-Clean collections only cross-source
// neighbours are considered.
//
// With only_older_neighbors = true, only neighbours with id < x.id are
// generated; because ids are dense in arrival order and a profile is
// added to the block collection before its comparisons are generated,
// this yields every new pair exactly once per increment with no
// dedup structure (Section 3.2).
// `visits`, when non-null, is incremented by the number of raw block-
// member iterations performed -- the dominant cost on large blocks and
// the quantity a cost model must charge for (edge counts alone
// underestimate the work).
//
// `scratch` is the caller-owned accumulator; long-lived callers
// (prioritizers, baselines, the graph builder) pass their own so the
// kernel performs no per-call allocation beyond the returned vector.
// When null, a thread-local scratch is used.
std::vector<Comparison> GenerateWeightedComparisons(
    const WeightingContext& ctx, const EntityProfile& x,
    const std::vector<TokenId>& retained_blocks,
    bool only_older_neighbors = true, uint64_t* visits = nullptr,
    WeightingScratch* scratch = nullptr);

// Core of the kernel: appends x's weighted comparisons to `*out`
// instead of returning a fresh vector (what BlockingGraph::Build uses
// to fill per-chunk edge lists with no per-profile vector).
void AppendWeightedComparisons(const WeightingContext& ctx,
                               const EntityProfile& x,
                               const std::vector<TokenId>& retained_blocks,
                               bool only_older_neighbors, uint64_t* visits,
                               WeightingScratch& scratch,
                               std::vector<Comparison>* out);

// Reference implementation built on a per-call std::unordered_map,
// retained for the equivalence tests and the weighting-kernel
// benchmark. Produces the same (x, y, weight) multiset as the scratch
// kernel, in unspecified order.
std::vector<Comparison> GenerateWeightedComparisonsReference(
    const WeightingContext& ctx, const EntityProfile& x,
    const std::vector<TokenId>& retained_blocks,
    bool only_older_neighbors = true, uint64_t* visits = nullptr);

// CBS weight of an explicit pair: the number of common tokens (each
// distinct token is one block under token blocking). Used by I-PBS
// (Algorithm 3, line 13) and by the fallback block scanner.
double PairCbsWeight(const EntityProfile& a, const EntityProfile& b);

}  // namespace pier

#endif  // PIER_METABLOCKING_WEIGHTING_H_
