// Append-only span arenas for the hot per-profile payloads (token
// lists, flattened text, encoded attributes): one contiguous chunked
// buffer per payload kind instead of one heap allocation per profile.
//
// Address-stability contract (the same chunked-directory trick as
// ProfileStore): memory is allocated in fixed-size chunks that are
// never resized or relocated, so a pointer returned by Append stays
// valid for the arena's lifetime. A span never straddles a chunk
// boundary -- when the tail of the current chunk is too small, it is
// abandoned (accounted, not reused) and the span starts a fresh chunk.
//
// Threading contract: all mutation (Append, Abandon, Clear) is
// single-writer, serialized by the owner (ProfileStore's Add/Remove/
// Replace path). Concurrent readers never traverse the arena's own
// bookkeeping -- they dereference raw `const T*` spans published
// through EntityProfile records, and the release-store of
// ProfileStore's size counter orders the arena writes before any
// reader can learn the profile id (see model/profile_store.h). This is
// why the chunk directory here needs no atomics at all.
//
// Abandoned spans (tombstoned or replaced profiles, straddle padding)
// stay allocated -- ids are never reused and readers may still hold
// the old span -- but are tracked so memory accounting and tests can
// see the dead weight (see abandoned_items()).

#ifndef PIER_MODEL_ARENA_H_
#define PIER_MODEL_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "model/types.h"
#include "util/check.h"

namespace pier {

template <typename T>
class SpanArena {
 public:
  // 64Ki items per chunk: 256KB chunks for TokenId, 64KB for char.
  // Oversized appends get a dedicated exact-size chunk, so there is no
  // upper bound on span length.
  static constexpr size_t kDefaultChunkItems = size_t{1} << 16;

  explicit SpanArena(size_t chunk_items = kDefaultChunkItems)
      : chunk_items_(chunk_items) {
    PIER_CHECK(chunk_items_ > 0);
  }

  SpanArena(const SpanArena&) = delete;
  SpanArena& operator=(const SpanArena&) = delete;

  // Copies `len` items into the arena and returns their stable
  // address. len == 0 is valid and returns a (stable, dereferenceable
  // for zero items) pointer into the current chunk.
  const T* Append(const T* data, size_t len) {
    if (chunks_.empty() || used_ + len > chunks_.back().capacity) {
      if (!chunks_.empty()) {
        // The straddle tail is dead weight, like a removed profile's
        // span, but tracked separately so live_items() stays exact.
        padding_items_ += chunks_.back().capacity - used_;
      }
      Chunk chunk;
      chunk.capacity = len > chunk_items_ ? len : chunk_items_;
      chunk.data.reset(new T[chunk.capacity]);
      chunks_.push_back(std::move(chunk));
      used_ = 0;
    }
    T* dest = chunks_.back().data.get() + used_;
    if (len > 0) std::memcpy(dest, data, len * sizeof(T));
    used_ += len;
    total_items_ += len;
    return dest;
  }

  // Marks `len` previously appended items as dead (tombstone /
  // replace). Accounting only: the memory stays valid for readers
  // still holding the span.
  void Abandon(size_t len) {
    abandoned_items_ += len;
    PIER_DCHECK(abandoned_items_ <= total_items_);
  }

  // Items ever appended (live + abandoned).
  size_t total_items() const { return total_items_; }
  // Items dead via Abandon (tombstoned / replaced spans).
  size_t abandoned_items() const { return abandoned_items_; }
  // Chunk-straddle padding items (allocated, never part of any span).
  size_t padding_items() const { return padding_items_; }
  size_t live_items() const { return total_items_ - abandoned_items_; }

  size_t num_chunks() const { return chunks_.size(); }

  // Bytes actually allocated (chunks + directory), the number the
  // ProfileStore memory accounting reports.
  size_t ApproxMemoryBytes() const {
    size_t bytes = chunks_.capacity() * sizeof(Chunk);
    for (const Chunk& c : chunks_) bytes += c.capacity * sizeof(T);
    return bytes;
  }

  void Clear() {
    chunks_.clear();
    used_ = 0;
    total_items_ = 0;
    abandoned_items_ = 0;
    padding_items_ = 0;
  }

 private:
  struct Chunk {
    std::unique_ptr<T[]> data;
    size_t capacity = 0;
  };

  size_t chunk_items_;
  std::vector<Chunk> chunks_;
  size_t used_ = 0;  // items used in chunks_.back()
  size_t total_items_ = 0;
  size_t abandoned_items_ = 0;
  size_t padding_items_ = 0;
};

// The two paper-scale arenas owned by ProfileStore: sorted TokenId
// lists, and byte payloads (flat_text plus the encoded attribute
// blobs, see model/entity_profile.h).
using TokenArena = SpanArena<TokenId>;
using TextArena = SpanArena<char>;

}  // namespace pier

#endif  // PIER_MODEL_ARENA_H_
