#include "model/comparison.h"

#include <istream>
#include <ostream>

#include "util/serial.h"

namespace pier {

void SnapshotComparison(std::ostream& out, const Comparison& c) {
  serial::WriteU32(out, c.x);
  serial::WriteU32(out, c.y);
  serial::WriteF64(out, c.weight);
  serial::WriteU32(out, c.block_size);
}

bool RestoreComparison(std::istream& in, Comparison* c) {
  return serial::ReadU32(in, &c->x) && serial::ReadU32(in, &c->y) &&
         serial::ReadF64(in, &c->weight) && serial::ReadU32(in, &c->block_size);
}

}  // namespace pier
