// A weighted comparison candidate: an unordered pair of profiles plus
// the priority metadata the different CmpIndex variants order by.

#ifndef PIER_MODEL_COMPARISON_H_
#define PIER_MODEL_COMPARISON_H_

#include <cstdint>
#include <iosfwd>

#include "model/types.h"
#include "util/hashing.h"

namespace pier {

struct Comparison {
  ProfileId x = kInvalidProfileId;
  ProfileId y = kInvalidProfileId;

  // Match-likelihood weight from the meta-blocking weighting scheme
  // (CBS by default). Higher is more promising.
  double weight = 0.0;

  // For I-PBS only: size of the generating block at enqueue time; the
  // I-PBS CmpIndex prioritizes smaller blocks first, then weight
  // (Algorithm 3, line 13). Zero for the other strategies.
  uint32_t block_size = 0;

  Comparison() = default;
  Comparison(ProfileId x_in, ProfileId y_in, double weight_in = 0.0,
             uint32_t block_size_in = 0)
      : x(x_in), y(y_in), weight(weight_in), block_size(block_size_in) {}

  // Canonical unordered-pair key: (a,b) == (b,a).
  uint64_t Key() const { return PairKey(x, y); }
};

// Orders by weight; ties broken by pair key so the order is total and
// runs are deterministic. The "max" element is the most promising.
struct CompareByWeight {
  bool operator()(const Comparison& a, const Comparison& b) const {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.Key() > b.Key();  // smaller key wins ties -> "greater"
  }
};

// I-PBS order: smaller generating block is *better*, then higher
// weight, then deterministic tie break. Implemented as a Less where
// the best comparison is the Less-greatest element.
struct CompareByBlockThenWeight {
  bool operator()(const Comparison& a, const Comparison& b) const {
    if (a.block_size != b.block_size) return a.block_size > b.block_size;
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.Key() > b.Key();
  }
};

// Snapshot helpers (defined in comparison.cc to keep this hot header
// lean): fixed-width little-endian encoding of all four fields, the
// weight as raw double bits.
void SnapshotComparison(std::ostream& out, const Comparison& c);
bool RestoreComparison(std::istream& in, Comparison* c);

}  // namespace pier

#endif  // PIER_MODEL_COMPARISON_H_
