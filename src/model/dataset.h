// A complete benchmark dataset: profiles in stream (arrival) order,
// ground truth, and metadata. Produced by the generators in
// src/datagen/ and consumed by the stream simulator.

#ifndef PIER_MODEL_DATASET_H_
#define PIER_MODEL_DATASET_H_

#include <string>
#include <vector>

#include "model/entity_profile.h"
#include "model/ground_truth.h"
#include "model/types.h"

namespace pier {

struct Dataset {
  std::string name;
  DatasetKind kind = DatasetKind::kDirty;

  // Profiles in the order they stream in. For Clean-Clean datasets
  // profiles of both sources are interleaved, mirroring two live feeds.
  std::vector<EntityProfile> profiles;

  GroundTruth truth;

  size_t NumProfiles(SourceId source) const {
    size_t n = 0;
    for (const auto& p : profiles) {
      if (p.source == source) ++n;
    }
    return n;
  }
};

// A data increment Delta-D: a contiguous batch of profiles arriving at
// one time instant (Section 2.3).
struct Increment {
  // Index range [begin, end) into Dataset::profiles.
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

// Splits a dataset into `n` equi-sized increments (the last one takes
// the remainder), as done for all experiments in Section 7.
inline std::vector<Increment> SplitIntoIncrements(const Dataset& dataset,
                                                  size_t n) {
  std::vector<Increment> increments;
  if (n == 0 || dataset.profiles.empty()) return increments;
  const size_t total = dataset.profiles.size();
  if (n > total) n = total;
  const size_t base = total / n;
  const size_t extra = total % n;
  size_t begin = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    increments.push_back(Increment{begin, begin + len});
    begin += len;
  }
  return increments;
}

}  // namespace pier

#endif  // PIER_MODEL_DATASET_H_
