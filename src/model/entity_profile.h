// Schema-agnostic entity profiles: a profile is a bag of (attribute
// name, value) pairs with no schema assumptions; different profiles --
// even of the same real-world entity -- may use entirely different
// attribute names (Section 1: "variety").

#ifndef PIER_MODEL_ENTITY_PROFILE_H_
#define PIER_MODEL_ENTITY_PROFILE_H_

#include <string>
#include <utility>
#include <vector>

#include "model/types.h"

namespace pier {

// One attribute of a profile. Plain data carrier.
struct Attribute {
  std::string name;
  std::string value;
};

// A profile describing one real-world entity as found in one source.
// Plain data carrier: `tokens` and `flat_text` are derived fields
// filled in by the Data Reading step (text/tokenizer.h) and empty
// until then.
struct EntityProfile {
  ProfileId id = kInvalidProfileId;
  SourceId source = 0;
  std::vector<Attribute> attributes;

  // Sorted, de-duplicated token ids over all attribute values
  // (schema-agnostic: attribute names do not contribute tokens).
  std::vector<TokenId> tokens;

  // Normalized concatenation of all attribute values; input to
  // string-level match functions such as edit distance.
  std::string flat_text;

  EntityProfile() = default;
  EntityProfile(ProfileId id_in, SourceId source_in,
                std::vector<Attribute> attributes_in)
      : id(id_in), source(source_in), attributes(std::move(attributes_in)) {}
};

}  // namespace pier

#endif  // PIER_MODEL_ENTITY_PROFILE_H_
