// Schema-agnostic entity profiles: a profile is a bag of (attribute
// name, value) pairs with no schema assumptions; different profiles --
// even of the same real-world entity -- may use entirely different
// attribute names (Section 1: "variety").
//
// Storage model (paper-scale memory layout): a profile's payloads --
// attributes, derived token list, derived flat text -- live in exactly
// one of two forms:
//
//  * staged: owned heap containers, the form every profile starts in
//    (generators, CSV readers, the tokenizer write this form);
//  * arena-backed: (pointer, length) views into a ProfileStore's
//    append-only TokenArena/TextArena (model/arena.h). ProfileStore::
//    Add moves a staged profile's payloads into its arenas and frees
//    the staged block, so a stored record is a flat 64-byte struct
//    with zero owned heap allocations.
//
// Readers use the uniform accessors (tokens(), flat_text(),
// ForEachAttribute()) and never care which form they are looking at.
// Arena views are non-owning: they are valid exactly as long as the
// owning ProfileStore, which shares the store's lifetime with every
// component that can hold a ProfileId. Copying an arena-backed profile
// copies the views (cheap, still non-owning); copying a staged profile
// deep-copies the staged payloads.
//
// Attributes are encoded in the TextArena as a packed blob:
//   count x { u32 name_len | u32 value_len | name bytes | value bytes }
// ForEachAttribute decodes it in place as string_views; nothing on the
// hot path materializes std::strings.

#ifndef PIER_MODEL_ENTITY_PROFILE_H_
#define PIER_MODEL_ENTITY_PROFILE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "model/types.h"
#include "util/check.h"

namespace pier {

// One attribute of a profile. Plain data carrier.
struct Attribute {
  std::string name;
  std::string value;
};

// A profile describing one real-world entity as found in one source.
// `tokens` and `flat_text` are derived fields filled in by the Data
// Reading step (text/tokenizer.h) and empty until then.
class EntityProfile {
 public:
  ProfileId id = kInvalidProfileId;
  SourceId source = 0;

  EntityProfile() = default;
  EntityProfile(ProfileId id_in, SourceId source_in,
                std::vector<Attribute> attributes_in)
      : id(id_in), source(source_in) {
    if (!attributes_in.empty()) {
      Staged().attributes = std::move(attributes_in);
    }
  }

  EntityProfile(EntityProfile&&) noexcept = default;
  EntityProfile& operator=(EntityProfile&&) noexcept = default;
  EntityProfile(const EntityProfile& other)
      : id(other.id),
        source(other.source),
        staged_(other.staged_ ? std::make_unique<StagedPayloads>(*other.staged_)
                              : nullptr),
        token_data_(other.token_data_),
        text_data_(other.text_data_),
        attrs_data_(other.attrs_data_),
        token_len_(other.token_len_),
        text_len_(other.text_len_),
        attrs_len_(other.attrs_len_),
        attrs_count_(other.attrs_count_) {}
  EntityProfile& operator=(const EntityProfile& other) {
    if (this != &other) *this = EntityProfile(other);
    return *this;
  }

  // ---- uniform read accessors (either form) ----

  // Sorted, de-duplicated token ids over all attribute values
  // (schema-agnostic: attribute names do not contribute tokens).
  std::span<const TokenId> tokens() const {
    if (token_data_ != nullptr) return {token_data_, token_len_};
    if (staged_ != nullptr) return {staged_->tokens};
    return {};
  }

  // Normalized concatenation of all attribute values; input to
  // string-level match functions such as edit distance.
  std::string_view flat_text() const {
    if (text_data_ != nullptr) return {text_data_, text_len_};
    if (staged_ != nullptr) return {staged_->flat_text};
    return {};
  }

  size_t num_attributes() const {
    if (attrs_data_ != nullptr) return attrs_count_;
    return staged_ != nullptr ? staged_->attributes.size() : 0;
  }

  // Visits every attribute as fn(name, value) string_views, decoding
  // the arena blob in place or walking the staged vector.
  template <typename Fn>
  void ForEachAttribute(Fn&& fn) const {
    if (attrs_data_ != nullptr) {
      const char* p = attrs_data_;
      for (uint32_t i = 0; i < attrs_count_; ++i) {
        uint32_t name_len = 0;
        uint32_t value_len = 0;
        std::memcpy(&name_len, p, sizeof(uint32_t));
        std::memcpy(&value_len, p + sizeof(uint32_t), sizeof(uint32_t));
        p += 2 * sizeof(uint32_t);
        fn(std::string_view(p, name_len),
           std::string_view(p + name_len, value_len));
        p += name_len + value_len;
      }
      return;
    }
    if (staged_ == nullptr) return;
    for (const Attribute& a : staged_->attributes) {
      fn(std::string_view(a.name), std::string_view(a.value));
    }
  }

  // Materializes the attributes (cold paths: CSV export, tests).
  std::vector<Attribute> CopyAttributes() const {
    std::vector<Attribute> out;
    out.reserve(num_attributes());
    ForEachAttribute([&](std::string_view name, std::string_view value) {
      out.push_back({std::string(name), std::string(value)});
    });
    return out;
  }

  bool arena_backed() const { return attrs_data_ != nullptr; }

  // ---- staged-form mutation (pre-Add producers) ----

  void set_tokens(std::vector<TokenId> tokens) {
    Staged().tokens = std::move(tokens);
    token_data_ = nullptr;
    token_len_ = 0;
  }
  void set_flat_text(std::string flat_text) {
    Staged().flat_text = std::move(flat_text);
    text_data_ = nullptr;
    text_len_ = 0;
  }
  void set_attributes(std::vector<Attribute> attributes) {
    Staged().attributes = std::move(attributes);
    attrs_data_ = nullptr;
    attrs_len_ = 0;
    attrs_count_ = 0;
  }
  void add_attribute(std::string name, std::string value) {
    PIER_DCHECK(attrs_data_ == nullptr);
    Staged().attributes.push_back({std::move(name), std::move(value)});
  }

  // ---- arena adoption (ProfileStore) ----

  // Appends this profile's attributes in the packed blob encoding (see
  // file comment) to `out`. Works for both forms; the arena form is a
  // straight copy of the already-encoded bytes.
  void EncodeAttributes(std::string* out) const {
    if (attrs_data_ != nullptr) {
      out->append(attrs_data_, attrs_len_);
      return;
    }
    ForEachAttribute([&](std::string_view name, std::string_view value) {
      const uint32_t name_len = static_cast<uint32_t>(name.size());
      const uint32_t value_len = static_cast<uint32_t>(value.size());
      out->append(reinterpret_cast<const char*>(&name_len),
                  sizeof(uint32_t));
      out->append(reinterpret_cast<const char*>(&value_len),
                  sizeof(uint32_t));
      out->append(name.data(), name.size());
      out->append(value.data(), value.size());
    });
  }

  // Switches to arena-backed form (all three payloads at once) and
  // releases the staged block. Pointers must stay valid for this
  // profile's lifetime; only ProfileStore::Add calls this, with spans
  // it just appended to its own arenas.
  void AdoptArenaViews(const TokenId* token_data, uint32_t token_len,
                       const char* text_data, uint32_t text_len,
                       const char* attrs_data, uint32_t attrs_len,
                       uint32_t attrs_count) {
    token_data_ = token_data;
    token_len_ = token_len;
    text_data_ = text_data;
    text_len_ = text_len;
    attrs_data_ = attrs_data;
    attrs_len_ = attrs_len;
    attrs_count_ = attrs_count;
    staged_.reset();
  }

  // Heap bytes owned by the staged form (0 once arena-backed); the
  // arena side of the accounting lives in SpanArena::ApproxMemoryBytes.
  size_t StagedHeapBytes() const {
    if (staged_ == nullptr) return 0;
    size_t total = sizeof(StagedPayloads) +
                   staged_->flat_text.capacity() +
                   staged_->tokens.capacity() * sizeof(TokenId) +
                   staged_->attributes.capacity() * sizeof(Attribute);
    for (const Attribute& a : staged_->attributes) {
      total += a.name.capacity() + a.value.capacity();
    }
    return total;
  }

  // Arena items this profile accounts for (abandon accounting on
  // Remove/Replace): tokens, and text bytes (flat_text + attr blob).
  uint32_t arena_token_items() const { return token_data_ ? token_len_ : 0; }
  uint32_t arena_text_items() const {
    return (text_data_ ? text_len_ : 0) + (attrs_data_ ? attrs_len_ : 0);
  }

 private:
  struct StagedPayloads {
    std::vector<Attribute> attributes;
    std::vector<TokenId> tokens;
    std::string flat_text;
  };

  StagedPayloads& Staged() {
    if (staged_ == nullptr) staged_ = std::make_unique<StagedPayloads>();
    return *staged_;
  }

  std::unique_ptr<StagedPayloads> staged_;
  const TokenId* token_data_ = nullptr;
  const char* text_data_ = nullptr;
  const char* attrs_data_ = nullptr;
  uint32_t token_len_ = 0;
  uint32_t text_len_ = 0;
  uint32_t attrs_len_ = 0;
  uint32_t attrs_count_ = 0;
};

}  // namespace pier

#endif  // PIER_MODEL_ENTITY_PROFILE_H_
