// Ground truth for evaluation: the set of true duplicate pairs. Only
// the evaluation layer reads it; no algorithm may consult it.

#ifndef PIER_MODEL_GROUND_TRUTH_H_
#define PIER_MODEL_GROUND_TRUTH_H_

#include <cstdint>
#include <unordered_set>

#include "model/types.h"
#include "util/hashing.h"

namespace pier {

class GroundTruth {
 public:
  GroundTruth() = default;

  void AddMatch(ProfileId a, ProfileId b) { pairs_.insert(PairKey(a, b)); }

  bool IsMatch(ProfileId a, ProfileId b) const {
    return pairs_.count(PairKey(a, b)) > 0;
  }

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  const std::unordered_set<uint64_t>& pairs() const { return pairs_; }

 private:
  std::unordered_set<uint64_t> pairs_;
};

}  // namespace pier

#endif  // PIER_MODEL_GROUND_TRUTH_H_
