// Retraction index for pair filters (mutable streams): Bloom-style
// executed/scheduled-comparison filters are keyed by PairKey(x, y),
// so deleting profile x requires knowing every partner y it was
// paired with to remove those keys again. This registry records each
// pair under both endpoints and hands back (and forgets) a profile's
// partner list on retraction.
//
// Each pair must be recorded exactly once (callers record only when
// the underlying filter insert actually happened), so Take removes
// each key exactly once — double removal would corrupt a counting
// filter's cells.

#ifndef PIER_MODEL_PAIR_REGISTRY_H_
#define PIER_MODEL_PAIR_REGISTRY_H_

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/types.h"
#include "util/serial.h"

namespace pier {

class PairRegistry {
 public:
  void Add(ProfileId x, ProfileId y) {
    partners_[x].push_back(y);
    partners_[y].push_back(x);
    ++num_pairs_;
  }

  // Returns `id`'s partners and erases the pair records in both
  // directions. Subsequent Take of a partner no longer reports `id`.
  std::vector<ProfileId> Take(ProfileId id) {
    auto it = partners_.find(id);
    if (it == partners_.end()) return {};
    std::vector<ProfileId> taken = std::move(it->second);
    partners_.erase(it);
    for (const ProfileId partner : taken) {
      auto back = partners_.find(partner);
      if (back == partners_.end()) continue;
      auto& list = back->second;
      auto pos = std::find(list.begin(), list.end(), id);
      if (pos != list.end()) {
        *pos = list.back();
        list.pop_back();
      }
      if (list.empty()) partners_.erase(back);
    }
    num_pairs_ -= taken.size();
    return taken;
  }

  uint64_t num_pairs() const { return num_pairs_; }
  bool empty() const { return partners_.empty(); }

  size_t ApproxMemoryBytes() const {
    size_t total = partners_.bucket_count() * sizeof(void*);
    for (const auto& [id, list] : partners_) {
      (void)id;
      total += sizeof(std::pair<const ProfileId, std::vector<ProfileId>>) +
               list.capacity() * sizeof(ProfileId);
    }
    return total;
  }

  // Canonical serialization: entries ascending by id, partner lists
  // ascending (the in-memory order is immaterial to semantics).
  void Snapshot(std::ostream& out) const {
    std::vector<ProfileId> ids;
    ids.reserve(partners_.size());
    for (const auto& [id, list] : partners_) {
      (void)list;
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    serial::WriteU64(out, ids.size());
    for (const ProfileId id : ids) {
      std::vector<ProfileId> list = partners_.at(id);
      std::sort(list.begin(), list.end());
      serial::WriteU32(out, id);
      serial::WriteVec(out, list, serial::WriteU32);
    }
  }

  // Restores a Snapshot payload into this registry, which must be
  // empty. Returns false on decode failure or asymmetric content.
  bool Restore(std::istream& in) {
    if (!partners_.empty()) return false;
    uint64_t count = 0;
    if (!serial::ReadU64(in, &count)) return false;
    uint64_t total = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t id = 0;
      std::vector<ProfileId> list;
      if (!serial::ReadU32(in, &id) ||
          !serial::ReadVec(in, &list, serial::ReadU32)) {
        return false;
      }
      if (list.empty() || partners_.count(id) != 0) return false;
      total += list.size();
      partners_.emplace(id, std::move(list));
    }
    // Every pair is recorded under both endpoints.
    if (total % 2 != 0) return false;
    num_pairs_ = total / 2;
    return true;
  }

 private:
  std::unordered_map<ProfileId, std::vector<ProfileId>> partners_;
  uint64_t num_pairs_ = 0;
};

}  // namespace pier

#endif  // PIER_MODEL_PAIR_REGISTRY_H_
