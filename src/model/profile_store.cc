#include "model/profile_store.h"

#include <istream>
#include <ostream>
#include <string>

#include "util/serial.h"

namespace pier {

size_t ProfileStore::ApproxMemoryBytes() const {
  const size_t n = size();
  const size_t num_chunks = (n + kChunkSize - 1) >> kChunkShift;
  return kMaxChunks * sizeof(std::atomic<EntityProfile*>) +
         num_chunks * kChunkSize * sizeof(EntityProfile) +
         token_counts_.capacity() * sizeof(uint32_t) +
         live_.capacity() * sizeof(uint8_t) +
         token_arena_.ApproxMemoryBytes() + text_arena_.ApproxMemoryBytes();
}

void ProfileStore::Snapshot(std::ostream& out) const {
  const size_t n = size();
  serial::WriteU64(out, n);
  for (size_t i = 0; i < n; ++i) {
    const EntityProfile& p = Get(static_cast<ProfileId>(i));
    serial::WriteU32(out, p.id);
    serial::WriteU8(out, p.source);
    serial::WriteU64(out, p.num_attributes());
    p.ForEachAttribute([&](std::string_view name, std::string_view value) {
      serial::WriteString(out, name);
      serial::WriteString(out, value);
    });
    const std::span<const TokenId> tokens = p.tokens();
    serial::WriteU64(out, tokens.size());
    for (const TokenId token : tokens) serial::WriteU32(out, token);
    serial::WriteString(out, p.flat_text());
  }
  // Tombstoned ids, ascending. Pre-mutation snapshots end after the
  // profile list; Restore treats a missing tail as "all live".
  std::vector<uint32_t> dead;
  for (size_t i = 0; i < n; ++i) {
    if (live_[i] == 0) dead.push_back(static_cast<uint32_t>(i));
  }
  serial::WriteVec(out, dead, serial::WriteU32);
}

bool ProfileStore::Restore(std::istream& in) {
  if (!empty()) return false;
  uint64_t count = 0;
  if (!serial::ReadU64(in, &count)) return false;
  for (uint64_t i = 0; i < count; ++i) {
    EntityProfile p;
    uint32_t id = 0;
    uint8_t source = 0;
    std::vector<Attribute> attributes;
    std::vector<TokenId> tokens;
    std::string flat_text;
    if (!serial::ReadU32(in, &id) || !serial::ReadU8(in, &source) ||
        !serial::ReadVec(in, &attributes,
                         [](std::istream& s, Attribute* a) {
                           return serial::ReadString(s, &a->name) &&
                                  serial::ReadString(s, &a->value);
                         }) ||
        !serial::ReadVec(in, &tokens, serial::ReadU32) ||
        !serial::ReadString(in, &flat_text)) {
      return false;
    }
    // Add() PIER_CHECKs density; validate here so a corrupt id field
    // is a rejected restore, not a process abort.
    if (id != i) return false;
    p.id = static_cast<ProfileId>(id);
    p.source = source;
    if (!attributes.empty()) p.set_attributes(std::move(attributes));
    if (!tokens.empty()) p.set_tokens(std::move(tokens));
    if (!flat_text.empty()) p.set_flat_text(std::move(flat_text));
    Add(std::move(p));
  }
  // Optional tombstone tail (absent in pre-mutation snapshots, whose
  // section payload ends exactly after the profile list).
  if (in.peek() == std::char_traits<char>::eof()) return true;
  std::vector<uint32_t> dead;
  if (!serial::ReadVec(in, &dead, serial::ReadU32)) return false;
  uint32_t prev = 0;
  for (size_t i = 0; i < dead.size(); ++i) {
    const uint32_t id = dead[i];
    if (id >= count || (i > 0 && id <= prev)) return false;
    prev = id;
    live_[id] = 0;
    --num_live_;
  }
  return true;
}

}  // namespace pier
