// Append-only store of all profiles ingested so far, indexed by their
// dense ProfileId. Shared by blocking, prioritization, and matching.

#ifndef PIER_MODEL_PROFILE_STORE_H_
#define PIER_MODEL_PROFILE_STORE_H_

#include <utility>
#include <vector>

#include "model/entity_profile.h"
#include "model/types.h"
#include "util/check.h"

namespace pier {

class ProfileStore {
 public:
  ProfileStore() = default;

  ProfileStore(const ProfileStore&) = delete;
  ProfileStore& operator=(const ProfileStore&) = delete;

  // Appends a profile; its id must equal the current size (dense ids
  // in ingestion order).
  void Add(EntityProfile profile) {
    PIER_CHECK(profile.id == profiles_.size());
    profiles_.push_back(std::move(profile));
  }

  const EntityProfile& Get(ProfileId id) const {
    PIER_DCHECK(id < profiles_.size());
    return profiles_[id];
  }

  EntityProfile& GetMutable(ProfileId id) {
    PIER_DCHECK(id < profiles_.size());
    return profiles_[id];
  }

  size_t size() const { return profiles_.size(); }
  bool empty() const { return profiles_.empty(); }

 private:
  std::vector<EntityProfile> profiles_;
};

}  // namespace pier

#endif  // PIER_MODEL_PROFILE_STORE_H_
