// Append-only store of all profiles ingested so far, indexed by their
// dense ProfileId. Shared by blocking, prioritization, and matching.
//
// Storage is chunked so profile addresses are *stable across Add*:
// once a profile is in the store, `Get(id)` returns the same reference
// forever. This is what lets the parallel match executor read profiles
// lock-free while an ingest thread appends new ones (the realtime
// pipeline's threading model, see stream/realtime_pipeline.h):
//
//  * single writer: Add must be called by one thread at a time (the
//    pipeline serializes ingest under its mutex);
//  * any number of readers may call Get(id) concurrently with Add,
//    provided `id` was ingested before the reader learned about it
//    (comparisons only ever reference already-ingested profiles).
//
// The chunk directory is a fixed-capacity array of atomic pointers, so
// publishing a new chunk never relocates memory a reader may be
// traversing; the size counter is released after the profile is fully
// constructed.

#ifndef PIER_MODEL_PROFILE_STORE_H_
#define PIER_MODEL_PROFILE_STORE_H_

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/arena.h"
#include "model/entity_profile.h"
#include "model/types.h"
#include "util/check.h"

namespace pier {

class ProfileStore {
 public:
  ProfileStore()
      : chunks_(new std::atomic<EntityProfile*>[kMaxChunks]()) {}

  ~ProfileStore() {
    for (size_t i = 0; i < kMaxChunks; ++i) {
      EntityProfile* chunk = chunks_[i].load(std::memory_order_relaxed);
      if (chunk == nullptr) break;  // chunks are allocated densely
      delete[] chunk;
    }
  }

  ProfileStore(const ProfileStore&) = delete;
  ProfileStore& operator=(const ProfileStore&) = delete;

  // Appends a profile; its id must equal the current size (dense ids
  // in ingestion order). The profile's payloads (tokens, flat text,
  // attributes) are moved into this store's arenas, so the stored
  // record owns no heap memory of its own. Single writer only; the
  // arena writes happen-before the size_ release-store, which is what
  // makes the views safe for lock-free readers.
  void Add(EntityProfile profile) {
    const size_t n = size_.load(std::memory_order_relaxed);
    PIER_CHECK(profile.id == n);
    const size_t chunk_index = n >> kChunkShift;
    PIER_CHECK(chunk_index < kMaxChunks);
    EntityProfile* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new EntityProfile[kChunkSize];
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
    token_counts_.push_back(static_cast<uint32_t>(profile.tokens().size()));
    live_.push_back(1);
    ++num_live_;
    AdoptIntoArenas(&profile);
    chunk[n & kChunkMask] = std::move(profile);
    size_.store(n + 1, std::memory_order_release);
  }

  // Tombstones a profile: the id stays allocated (ids are dense and
  // never reused) but the record's content is cleared to reclaim heap
  // and the profile no longer counts as live. Writer-side only, and —
  // like Replace — only while no matcher thread holds a reference to
  // the record (the pipelines apply mutations quiesced).
  void Remove(ProfileId id) {
    PIER_CHECK(id < size_.load(std::memory_order_relaxed));
    PIER_CHECK(live_[id] != 0);
    EntityProfile& p = GetMutable(id);
    AbandonArenaSpans(p);
    EntityProfile cleared;
    cleared.id = p.id;
    cleared.source = p.source;
    p = std::move(cleared);
    token_counts_[id] = 0;
    live_[id] = 0;
    --num_live_;
  }

  // Replaces a record in place (correction); revives a tombstoned id.
  // The old record's arena spans are abandoned (ids are never reused
  // and a quiesced-out reader may still hold them); the new payloads
  // are appended to the arena tails. Same threading contract as
  // Remove.
  void Replace(EntityProfile profile) {
    const ProfileId id = profile.id;
    PIER_CHECK(id < size_.load(std::memory_order_relaxed));
    EntityProfile& p = GetMutable(id);
    AbandonArenaSpans(p);
    token_counts_[id] = static_cast<uint32_t>(profile.tokens().size());
    AdoptIntoArenas(&profile);
    p = std::move(profile);
    if (live_[id] == 0) {
      live_[id] = 1;
      ++num_live_;
    }
  }

  // False for tombstoned ids. Writer/ingest thread only (the liveness
  // sidecar relocates on growth, like token_counts_).
  bool IsLive(ProfileId id) const {
    PIER_DCHECK(id < live_.size());
    return live_[id] != 0;
  }

  size_t num_live() const { return num_live_; }

  const EntityProfile& Get(ProfileId id) const {
    PIER_DCHECK(id < size_.load(std::memory_order_acquire));
    return chunks_[id >> kChunkShift].load(std::memory_order_acquire)
        [id & kChunkMask];
  }

  // Writer-side only (derived-field fill during ingest). Note the
  // token-count sidecar snapshots |tokens| at Add time: profiles must
  // be tokenized before Add (all ingest paths do), not patched here.
  EntityProfile& GetMutable(ProfileId id) {
    PIER_DCHECK(id < size_.load(std::memory_order_relaxed));
    return chunks_[id >> kChunkShift].load(std::memory_order_relaxed)
        [id & kChunkMask];
  }

  // |tokens| of profile `id`, served from a contiguous sidecar so the
  // weighting kernel reads one cache-friendly uint32 per neighbour
  // instead of chasing into the (much larger) EntityProfile record.
  // Unlike Get, the sidecar's backing array relocates on growth:
  // callers must run on the ingest thread or be quiesced against Add.
  // All weighting call sites satisfy this (weighting happens during
  // ingest or in batch phases); matcher threads never read it.
  uint32_t TokenCount(ProfileId id) const {
    PIER_DCHECK(id < token_counts_.size());
    return token_counts_[id];
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  // Heap footprint: chunk directory, allocated chunks, the sidecars,
  // and the arenas' allocated bytes (which own every stored profile's
  // payload memory). Writer thread only.
  size_t ApproxMemoryBytes() const;

  // The arenas owning all stored payloads; exposed read-only for
  // memory accounting and the layout tests.
  const TokenArena& token_arena() const { return token_arena_; }
  const TextArena& text_arena() const { return text_arena_; }

  // Serializes all profiles in id order (little-endian; see
  // util/serial.h). Writer thread only. The wire format is identical
  // to the pre-arena layout (staged and arena-backed profiles
  // serialize the same bytes).
  void Snapshot(std::ostream& out) const;

  // Restores a Snapshot payload into this store, which must be empty.
  // Returns false on decode failure or non-dense ids, never aborts.
  bool Restore(std::istream& in);

 private:
  // Moves a staged (or foreign-arena) profile's payloads into this
  // store's arenas and rewires the record to view them.
  void AdoptIntoArenas(EntityProfile* profile) {
    const std::span<const TokenId> tokens = profile->tokens();
    const std::string_view text = profile->flat_text();
    attr_scratch_.clear();
    profile->EncodeAttributes(&attr_scratch_);
    const TokenId* token_data = token_arena_.Append(tokens.data(),
                                                    tokens.size());
    const char* text_data = text_arena_.Append(text.data(), text.size());
    const char* attrs_data =
        text_arena_.Append(attr_scratch_.data(), attr_scratch_.size());
    profile->AdoptArenaViews(
        token_data, static_cast<uint32_t>(tokens.size()), text_data,
        static_cast<uint32_t>(text.size()), attrs_data,
        static_cast<uint32_t>(attr_scratch_.size()),
        static_cast<uint32_t>(profile->num_attributes()));
  }

  void AbandonArenaSpans(const EntityProfile& profile) {
    token_arena_.Abandon(profile.arena_token_items());
    text_arena_.Abandon(profile.arena_text_items());
  }

  static constexpr size_t kChunkShift = 12;  // 4096 profiles per chunk
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
  static constexpr size_t kChunkMask = kChunkSize - 1;
  static constexpr size_t kMaxChunks = size_t{1} << 16;  // 268M profiles

  std::unique_ptr<std::atomic<EntityProfile*>[]> chunks_;
  TokenArena token_arena_;
  TextArena text_arena_;
  std::string attr_scratch_;            // Add-path encode buffer
  std::vector<uint32_t> token_counts_;  // sidecar, writer-appended
  std::vector<uint8_t> live_;           // sidecar, 0 = tombstoned
  size_t num_live_ = 0;
  std::atomic<size_t> size_{0};
};

}  // namespace pier

#endif  // PIER_MODEL_PROFILE_STORE_H_
