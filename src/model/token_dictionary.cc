#include "model/token_dictionary.h"

#include <istream>
#include <ostream>
#include <string>

#include "util/check.h"
#include "util/hashing.h"
#include "util/serial.h"

namespace pier {

size_t TokenDictionary::FindSlot(uint64_t h, std::string_view token) const {
  const size_t mask = table_.size() - 1;
  size_t i = static_cast<size_t>(h) & mask;
  for (;;) {
    const Slot& slot = table_[i];
    if (slot.id_plus_one == 0) return i;
    if (slot.hash == h && spellings_[slot.id_plus_one - 1] == token) return i;
    i = (i + 1) & mask;
  }
}

void TokenDictionary::GrowTable() {
  const size_t new_size = table_.empty() ? 1024 : table_.size() * 2;
  std::vector<Slot> old = std::move(table_);
  table_.assign(new_size, Slot{});
  const size_t mask = new_size - 1;
  for (const Slot& slot : old) {
    if (slot.id_plus_one == 0) continue;
    size_t i = static_cast<size_t>(slot.hash) & mask;
    while (table_[i].id_plus_one != 0) i = (i + 1) & mask;
    table_[i] = slot;
  }
}

TokenId TokenDictionary::Intern(std::string_view token) {
  // Grow at 70% load; spellings_.size() doubles as the occupancy count.
  if (spellings_.size() * 10 >= table_.size() * 7) GrowTable();
  const uint64_t h = HashString(token);
  const size_t i = FindSlot(h, token);
  if (table_[i].id_plus_one != 0) return table_[i].id_plus_one - 1;
  const char* data = spelling_arena_.Append(token.data(), token.size());
  const TokenId id = static_cast<TokenId>(spellings_.size());
  spellings_.emplace_back(data, token.size());
  doc_frequency_.push_back(0);
  table_[i] = Slot{h, id + 1};
  return id;
}

TokenId TokenDictionary::Lookup(std::string_view token) const {
  if (table_.empty()) return kInvalidTokenId;
  const Slot& slot = table_[FindSlot(HashString(token), token)];
  return slot.id_plus_one == 0 ? kInvalidTokenId : slot.id_plus_one - 1;
}

std::string_view TokenDictionary::Spelling(TokenId id) const {
  PIER_DCHECK(id < spellings_.size());
  return spellings_[id];
}

uint32_t TokenDictionary::DocFrequency(TokenId id) const {
  PIER_DCHECK(id < doc_frequency_.size());
  return doc_frequency_[id];
}

void TokenDictionary::IncrementDocFrequency(TokenId id) {
  PIER_DCHECK(id < doc_frequency_.size());
  ++doc_frequency_[id];
}

void TokenDictionary::DecrementDocFrequency(TokenId id) {
  PIER_DCHECK(id < doc_frequency_.size());
  PIER_CHECK(doc_frequency_[id] > 0);
  --doc_frequency_[id];
}

void TokenDictionary::Snapshot(std::ostream& out) const {
  serial::WriteU64(out, spellings_.size());
  for (size_t i = 0; i < spellings_.size(); ++i) {
    serial::WriteString(out, spellings_[i]);
    serial::WriteU32(out, doc_frequency_[i]);
  }
}

bool TokenDictionary::Restore(std::istream& in) {
  if (!spellings_.empty()) return false;
  uint64_t count = 0;
  if (!serial::ReadU64(in, &count)) return false;
  std::string spelling;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t doc_frequency = 0;
    if (!serial::ReadString(in, &spelling) ||
        !serial::ReadU32(in, &doc_frequency)) {
      return false;
    }
    // Duplicate spellings would break the id == index invariant.
    if (Intern(spelling) != static_cast<TokenId>(i)) return false;
    doc_frequency_[i] = doc_frequency;
  }
  return true;
}

size_t TokenDictionary::ApproxMemoryBytes() const {
  return spelling_arena_.ApproxMemoryBytes() +
         spellings_.capacity() * sizeof(std::string_view) +
         doc_frequency_.capacity() * sizeof(uint32_t) +
         table_.capacity() * sizeof(Slot);
}

}  // namespace pier
