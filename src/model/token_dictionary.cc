#include "model/token_dictionary.h"

#include "util/check.h"

namespace pier {

TokenId TokenDictionary::Intern(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  const TokenId id = static_cast<TokenId>(spellings_.size());
  spellings_.emplace_back(token);
  doc_frequency_.push_back(0);
  ids_.emplace(spellings_.back(), id);
  return id;
}

TokenId TokenDictionary::Lookup(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  return it == ids_.end() ? kInvalidTokenId : it->second;
}

const std::string& TokenDictionary::Spelling(TokenId id) const {
  PIER_DCHECK(id < spellings_.size());
  return spellings_[id];
}

uint32_t TokenDictionary::DocFrequency(TokenId id) const {
  PIER_DCHECK(id < doc_frequency_.size());
  return doc_frequency_[id];
}

void TokenDictionary::IncrementDocFrequency(TokenId id) {
  PIER_DCHECK(id < doc_frequency_.size());
  ++doc_frequency_[id];
}

}  // namespace pier
