#include "model/token_dictionary.h"

#include <istream>
#include <ostream>

#include "util/check.h"
#include "util/serial.h"

namespace pier {

TokenId TokenDictionary::Intern(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  const TokenId id = static_cast<TokenId>(spellings_.size());
  spellings_.emplace_back(token);
  doc_frequency_.push_back(0);
  ids_.emplace(spellings_.back(), id);
  return id;
}

TokenId TokenDictionary::Lookup(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  return it == ids_.end() ? kInvalidTokenId : it->second;
}

const std::string& TokenDictionary::Spelling(TokenId id) const {
  PIER_DCHECK(id < spellings_.size());
  return spellings_[id];
}

uint32_t TokenDictionary::DocFrequency(TokenId id) const {
  PIER_DCHECK(id < doc_frequency_.size());
  return doc_frequency_[id];
}

void TokenDictionary::IncrementDocFrequency(TokenId id) {
  PIER_DCHECK(id < doc_frequency_.size());
  ++doc_frequency_[id];
}

void TokenDictionary::DecrementDocFrequency(TokenId id) {
  PIER_DCHECK(id < doc_frequency_.size());
  PIER_CHECK(doc_frequency_[id] > 0);
  --doc_frequency_[id];
}

void TokenDictionary::Snapshot(std::ostream& out) const {
  serial::WriteU64(out, spellings_.size());
  for (size_t i = 0; i < spellings_.size(); ++i) {
    serial::WriteString(out, spellings_[i]);
    serial::WriteU32(out, doc_frequency_[i]);
  }
}

bool TokenDictionary::Restore(std::istream& in) {
  if (!spellings_.empty()) return false;
  uint64_t count = 0;
  if (!serial::ReadU64(in, &count)) return false;
  for (uint64_t i = 0; i < count; ++i) {
    std::string spelling;
    uint32_t doc_frequency = 0;
    if (!serial::ReadString(in, &spelling) ||
        !serial::ReadU32(in, &doc_frequency)) {
      return false;
    }
    // Duplicate spellings would break the id == index invariant.
    if (Intern(spelling) != static_cast<TokenId>(i)) return false;
    doc_frequency_[i] = doc_frequency;
  }
  return true;
}

size_t TokenDictionary::ApproxMemoryBytes() const {
  size_t total = spellings_.capacity() * sizeof(std::string) +
                 doc_frequency_.capacity() * sizeof(uint32_t) +
                 ids_.bucket_count() * sizeof(void*);
  for (const std::string& s : spellings_) {
    total += s.capacity();
    // Each ids_ entry copies the spelling as its key.
    total += sizeof(std::pair<const std::string, TokenId>) + s.capacity();
  }
  return total;
}

}  // namespace pier
