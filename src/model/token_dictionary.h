// Incremental token dictionary: interns token strings to dense
// TokenIds. The blocking layer keys its block collection by TokenId,
// so the dictionary is shared state between Data Reading and
// Incremental Blocking. It also tracks per-token document frequency,
// which the EJS weighting scheme consumes.
//
// Memory layout (paper scale): spellings live in one append-only
// char arena (model/arena.h) instead of one std::string each, and the
// id map is a flat open-addressing table of (hash, id) slots probing
// linearly -- no per-token heap allocation, no duplicate copy of every
// spelling as a map key, and no pointer-chasing bucket chains on the
// tokenizer hot path (Intern is ~1 cache line per probe; a stored
// 64-bit hash rejects collisions before touching the arena).

#ifndef PIER_MODEL_TOKEN_DICTIONARY_H_
#define PIER_MODEL_TOKEN_DICTIONARY_H_

#include <iosfwd>
#include <string_view>
#include <vector>

#include "model/arena.h"
#include "model/types.h"

namespace pier {

class TokenDictionary {
 public:
  TokenDictionary() = default;

  // Not copyable (dictionaries are large and shared by reference).
  TokenDictionary(const TokenDictionary&) = delete;
  TokenDictionary& operator=(const TokenDictionary&) = delete;

  // Returns the id for `token`, interning it if new.
  TokenId Intern(std::string_view token);

  // Returns the id for `token` or kInvalidTokenId if never interned.
  TokenId Lookup(std::string_view token) const;

  // View into the spelling arena; valid for the dictionary's lifetime.
  std::string_view Spelling(TokenId id) const;

  // Number of profiles whose token set contains `id` (document
  // frequency); maintained by IncrementDocFrequency.
  uint32_t DocFrequency(TokenId id) const;
  void IncrementDocFrequency(TokenId id);
  // Retraction counterpart (mutable streams): a deleted profile gives
  // back one document per token. The spelling stays interned — ids are
  // dense and shard routing hashes spellings, so forgetting one would
  // break determinism.
  void DecrementDocFrequency(TokenId id);

  size_t size() const { return spellings_.size(); }

  // Serializes every interned token in id order together with its
  // document frequency (canonical: same dictionary, same bytes).
  void Snapshot(std::ostream& out) const;

  // Restores a Snapshot payload into this dictionary, which must be
  // empty. Returns false on decode failure.
  bool Restore(std::istream& in);

  // Heap footprint estimate: spelling arena, views, ids map, and
  // frequency vector.
  size_t ApproxMemoryBytes() const;

 private:
  // One open-addressing slot: id_plus_one == 0 marks an empty slot
  // (TokenId 0 is valid, so ids are stored shifted by one).
  struct Slot {
    uint64_t hash = 0;
    uint32_t id_plus_one = 0;
  };

  // Returns the slot holding `token` (hash `h`) or the empty slot
  // where it belongs. The table is never full (grown at 70% load).
  size_t FindSlot(uint64_t h, std::string_view token) const;
  void GrowTable();

  std::vector<Slot> table_;  // power-of-two size, linear probing
  std::vector<std::string_view> spellings_;  // id -> arena view
  TextArena spelling_arena_;
  std::vector<uint32_t> doc_frequency_;
};

}  // namespace pier

#endif  // PIER_MODEL_TOKEN_DICTIONARY_H_
