// Incremental token dictionary: interns token strings to dense
// TokenIds. The blocking layer keys its block collection by TokenId,
// so the dictionary is shared state between Data Reading and
// Incremental Blocking. It also tracks per-token document frequency,
// which the EJS weighting scheme consumes.

#ifndef PIER_MODEL_TOKEN_DICTIONARY_H_
#define PIER_MODEL_TOKEN_DICTIONARY_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/types.h"

namespace pier {

class TokenDictionary {
 public:
  TokenDictionary() = default;

  // Not copyable (dictionaries are large and shared by reference).
  TokenDictionary(const TokenDictionary&) = delete;
  TokenDictionary& operator=(const TokenDictionary&) = delete;

  // Returns the id for `token`, interning it if new.
  TokenId Intern(std::string_view token);

  // Returns the id for `token` or kInvalidTokenId if never interned.
  TokenId Lookup(std::string_view token) const;

  const std::string& Spelling(TokenId id) const;

  // Number of profiles whose token set contains `id` (document
  // frequency); maintained by IncrementDocFrequency.
  uint32_t DocFrequency(TokenId id) const;
  void IncrementDocFrequency(TokenId id);
  // Retraction counterpart (mutable streams): a deleted profile gives
  // back one document per token. The spelling stays interned — ids are
  // dense and shard routing hashes spellings, so forgetting one would
  // break determinism.
  void DecrementDocFrequency(TokenId id);

  size_t size() const { return spellings_.size(); }

  // Serializes every interned token in id order together with its
  // document frequency (canonical: same dictionary, same bytes).
  void Snapshot(std::ostream& out) const;

  // Restores a Snapshot payload into this dictionary, which must be
  // empty. Returns false on decode failure.
  bool Restore(std::istream& in);

  // Heap footprint estimate: spellings, ids map, and frequency vector.
  size_t ApproxMemoryBytes() const;

 private:
  std::unordered_map<std::string, TokenId> ids_;
  std::vector<std::string> spellings_;
  std::vector<uint32_t> doc_frequency_;
};

}  // namespace pier

#endif  // PIER_MODEL_TOKEN_DICTIONARY_H_
