// Fundamental identifier types shared across the pier library.

#ifndef PIER_MODEL_TYPES_H_
#define PIER_MODEL_TYPES_H_

#include <cstdint>
#include <limits>

namespace pier {

// Dense, append-only profile identifier: the i-th profile ever ingested
// has id i. All indexes (blocks, stores, queues) exploit this density.
using ProfileId = uint32_t;

// Dense token identifier assigned by the TokenDictionary.
using TokenId = uint32_t;

// Identifier of the originating data source. Clean-Clean ER uses
// sources 0 and 1; Dirty ER uses a single source 0.
using SourceId = uint8_t;

inline constexpr ProfileId kInvalidProfileId =
    std::numeric_limits<ProfileId>::max();
inline constexpr TokenId kInvalidTokenId =
    std::numeric_limits<TokenId>::max();

// Whether a dataset holds one dirty source (duplicates within) or two
// clean sources (duplicates only across sources). See Section 2.1.
enum class DatasetKind : uint8_t {
  kDirty = 0,
  kCleanClean = 1,
};

inline const char* ToString(DatasetKind kind) {
  return kind == DatasetKind::kDirty ? "dirty" : "clean-clean";
}

}  // namespace pier

#endif  // PIER_MODEL_TYPES_H_
