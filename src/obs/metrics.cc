#include "obs/metrics.h"

#include <algorithm>

namespace pier {
namespace obs {

size_t ThreadShardSlot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

uint64_t Histogram::Min() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0
               : static_cast<double>(Sum()) / static_cast<double>(n);
}

uint64_t Histogram::Quantile(double q) const {
  const uint64_t n = Count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based; ceil so Quantile(1.0)
  // needs every sample and Quantile(0.0) only the first.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(n) + 0.999999));
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Upper bound of bucket b: 2^b - 1 (bucket 0 holds only v=0).
      if (b == 0) return 0;
      if (b >= 64) return UINT64_MAX;
      return (uint64_t{1} << b) - 1;
    }
  }
  return Max();
}

void Histogram::AtomicMin(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::AtomicMax(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    return it->second.kind == Kind::kCounter ? it->second.counter : nullptr;
  }
  counters_.emplace_back();
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.counter = &counters_.back();
  by_name_.emplace(std::string(name), entry);
  return entry.counter;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    return it->second.kind == Kind::kGauge ? it->second.gauge : nullptr;
  }
  gauges_.emplace_back();
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.gauge = &gauges_.back();
  by_name_.emplace(std::string(name), entry);
  return entry.gauge;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    return it->second.kind == Kind::kHistogram ? it->second.histogram
                                               : nullptr;
  }
  histograms_.emplace_back();
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.histogram = &histograms_.back();
  by_name_.emplace(std::string(name), entry);
  return entry.histogram;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(by_name_.size());
    for (const auto& [name, entry] : by_name_) {
      MetricSample sample;
      sample.name = name;
      switch (entry.kind) {
        case Kind::kCounter:
          sample.type = MetricSample::Type::kCounter;
          sample.value = static_cast<double>(entry.counter->Value());
          break;
        case Kind::kGauge:
          sample.type = MetricSample::Type::kGauge;
          sample.value = entry.gauge->Value();
          break;
        case Kind::kHistogram: {
          const Histogram& h = *entry.histogram;
          sample.type = MetricSample::Type::kHistogram;
          sample.count = h.Count();
          sample.sum = h.Sum();
          sample.min = h.Min();
          sample.max = h.Max();
          sample.p50 = h.Quantile(0.50);
          sample.p90 = h.Quantile(0.90);
          sample.p99 = h.Quantile(0.99);
          break;
        }
      }
      out.push_back(std::move(sample));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace obs
}  // namespace pier
