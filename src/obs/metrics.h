// Observability layer (`pier::obs`): thread-safe metric primitives for
// live runs of the pipeline. The paper's entire evaluation is
// PC-over-time / PC-per-comparison curves, and findK() (Algorithm 1)
// steers on measured input/processing rates; this module makes those
// quantities observable while a run is in flight.
//
// Hot-path contract: updating a metric is allocation-free and uses
// only relaxed atomics -- counters are sharded across cache lines so
// concurrent writers do not contend. Registration (name lookup) takes
// a mutex and is meant for construction time; updaters hold the
// returned pointers, which stay valid for the registry's lifetime.
//
// Disabled modes:
//  * Runtime: every instrumentation site takes a nullable pointer; a
//    null Counter*/Gauge*/Histogram* costs one predictable branch (use
//    the CounterAdd / GaugeSet / HistogramRecord helpers below).
//  * Compile time: building with -DPIER_OBS_DISABLED (CMake option
//    -DPIER_OBS=OFF) turns every update into an empty inline body, so
//    observability can ship always-linked at exactly zero cost.

#ifndef PIER_OBS_METRICS_H_
#define PIER_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pier {
namespace obs {

// Index of the calling thread into per-metric shard arrays; assigned
// once per thread, process-wide.
size_t ThreadShardSlot();

// Monotonic counter, sharded so concurrent Add() calls from different
// threads land on different cache lines.
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Add(uint64_t n = 1) {
#ifndef PIER_OBS_DISABLED
    shards_[ThreadShardSlot() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

// Last-write-wins instantaneous value (queue depth, current K,
// observed rate). Double-valued; stored as a bit pattern so the update
// is one relaxed store.
class Gauge {
 public:
  void Set(double v) {
#ifndef PIER_OBS_DISABLED
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

// Exponential-bucket histogram over uint64 samples (latencies in
// nanoseconds, batch sizes): sample v lands in bucket bit_width(v),
// i.e. bucket b spans [2^(b-1), 2^b). Quantiles are estimated from the
// bucket cumulative counts (upper bucket bound -> estimates are
// conservative within one power of two).
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit_width of a uint64 is 0..64

  void Record(uint64_t v) {
#ifndef PIER_OBS_DISABLED
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    AtomicMin(min_, v);
    AtomicMax(max_, v);
#else
    (void)v;
#endif
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Min() const;  // 0 when empty
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;

  // Upper bound of the bucket containing the q-quantile (q in [0, 1]).
  uint64_t Quantile(double q) const;

 private:
  static void AtomicMin(std::atomic<uint64_t>& slot, uint64_t v);
  static void AtomicMax(std::atomic<uint64_t>& slot, uint64_t v);

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// One exported metric value; what the JSON-lines / CSV writers emit
// and what the parser reconstructs.
struct MetricSample {
  enum class Type : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

  std::string name;
  Type type = Type::kCounter;
  // Counter: total. Gauge: current value. Histogram: unused.
  double value = 0.0;
  // Histogram-only fields.
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
};

// Owns named metrics; metric objects never move once created (deque
// storage), so registration returns stable pointers that remain valid
// for the registry's lifetime. Re-registering a name returns the
// existing metric (and checks the type matches).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Point-in-time export of every registered metric, sorted by name so
  // snapshots are diffable.
  std::vector<MetricSample> Snapshot() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::unordered_map<std::string, Entry> by_name_;
};

// Null-safe update helpers: the canonical way to instrument a hot path
// that may run without a registry attached.
inline void CounterAdd(Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->Add(n);
}
inline void GaugeSet(Gauge* g, double v) {
  if (g != nullptr) g->Set(v);
}
inline void HistogramRecord(Histogram* h, uint64_t v) {
  if (h != nullptr) h->Record(v);
}

}  // namespace obs
}  // namespace pier

#endif  // PIER_OBS_METRICS_H_
