#include "obs/metrics_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace pier {
namespace obs {

namespace {

const char* TypeName(MetricSample::Type type) {
  switch (type) {
    case MetricSample::Type::kCounter:
      return "counter";
    case MetricSample::Type::kGauge:
      return "gauge";
    case MetricSample::Type::kHistogram:
      return "histogram";
  }
  return "?";
}

// Extracts the raw text of `"key":<value>` from `line` (value ends at
// ',' or '}'); quoted values are returned without the quotes. Metric
// names never contain escapes or commas, so this is sufficient for the
// format WriteJsonLines produces.
bool FindField(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  size_t begin = at + needle.size();
  if (begin >= line.size()) return false;
  if (line[begin] == '"') {
    const size_t end = line.find('"', begin + 1);
    if (end == std::string::npos) return false;
    *out = line.substr(begin + 1, end - begin - 1);
    return true;
  }
  size_t end = begin;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(begin, end - begin);
  return !out->empty();
}

bool FindU64(const std::string& line, const char* key, uint64_t* out) {
  std::string raw;
  if (!FindField(line, key, &raw)) return false;
  *out = std::strtoull(raw.c_str(), nullptr, 10);
  return true;
}

}  // namespace

void WriteJsonLines(std::ostream& out, double t_seconds,
                    const std::vector<MetricSample>& samples) {
  char buf[512];
  for (const MetricSample& s : samples) {
    if (s.type == MetricSample::Type::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    "{\"t\":%.6f,\"name\":\"%s\",\"type\":\"histogram\","
                    "\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                    ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
                    ",\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
                    ",\"p99\":%" PRIu64 "}\n",
                    t_seconds, s.name.c_str(), s.count, s.sum, s.min, s.max,
                    s.p50, s.p90, s.p99);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"t\":%.6f,\"name\":\"%s\",\"type\":\"%s\","
                    "\"value\":%.17g}\n",
                    t_seconds, s.name.c_str(), TypeName(s.type), s.value);
    }
    out << buf;
  }
}

void WriteCsvHeader(std::ostream& out) {
  out << "t,name,type,value,count,sum,min,max,p50,p90,p99\n";
}

void WriteCsv(std::ostream& out, double t_seconds,
              const std::vector<MetricSample>& samples) {
  char buf[512];
  for (const MetricSample& s : samples) {
    if (s.type == MetricSample::Type::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    "%.6f,%s,histogram,,%" PRIu64 ",%" PRIu64 ",%" PRIu64
                    ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                    t_seconds, s.name.c_str(), s.count, s.sum, s.min, s.max,
                    s.p50, s.p90, s.p99);
    } else {
      std::snprintf(buf, sizeof(buf), "%.6f,%s,%s,%.17g,,,,,,,\n", t_seconds,
                    s.name.c_str(), TypeName(s.type), s.value);
    }
    out << buf;
  }
}

bool ParseJsonLine(const std::string& line, double* t_seconds,
                   MetricSample* out) {
  std::string raw;
  if (!FindField(line, "t", &raw)) return false;
  *t_seconds = std::strtod(raw.c_str(), nullptr);
  if (!FindField(line, "name", &out->name)) return false;
  if (!FindField(line, "type", &raw)) return false;
  if (raw == "counter") {
    out->type = MetricSample::Type::kCounter;
  } else if (raw == "gauge") {
    out->type = MetricSample::Type::kGauge;
  } else if (raw == "histogram") {
    out->type = MetricSample::Type::kHistogram;
  } else {
    return false;
  }
  if (out->type == MetricSample::Type::kHistogram) {
    return FindU64(line, "count", &out->count) &&
           FindU64(line, "sum", &out->sum) && FindU64(line, "min", &out->min) &&
           FindU64(line, "max", &out->max) && FindU64(line, "p50", &out->p50) &&
           FindU64(line, "p90", &out->p90) && FindU64(line, "p99", &out->p99);
  }
  if (!FindField(line, "value", &raw)) return false;
  out->value = std::strtod(raw.c_str(), nullptr);
  return true;
}

}  // namespace obs
}  // namespace pier
