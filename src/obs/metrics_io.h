// Snapshot export: JSON-lines (one metric per line, with the snapshot
// timestamp) and CSV, plus a minimal parser for the JSON-lines format
// so tests and downstream tooling can reconcile emitted snapshots
// against run results without a JSON dependency.

#ifndef PIER_OBS_METRICS_IO_H_
#define PIER_OBS_METRICS_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pier {
namespace obs {

// One line per sample:
//   {"t":1.500000,"name":"sim.batches","type":"counter","value":42}
//   {"t":1.500000,"name":"x.y","type":"gauge","value":0.25}
//   {"t":1.5,"name":"sim.batch_ns","type":"histogram","count":9,
//    "sum":123,"min":2,"max":63,"p50":15,"p90":63,"p99":63}
// `t` is the caller-supplied snapshot time in seconds (virtual or
// wall, depending on the producer).
void WriteJsonLines(std::ostream& out, double t_seconds,
                    const std::vector<MetricSample>& samples);

// CSV with a fixed header:
//   t,name,type,value,count,sum,min,max,p50,p90,p99
// (value empty for histograms; histogram columns empty otherwise).
void WriteCsvHeader(std::ostream& out);
void WriteCsv(std::ostream& out, double t_seconds,
              const std::vector<MetricSample>& samples);

// Parses one JSON line produced by WriteJsonLines. Returns false on
// lines it does not understand (callers typically skip those).
bool ParseJsonLine(const std::string& line, double* t_seconds,
                   MetricSample* out);

}  // namespace obs
}  // namespace pier

#endif  // PIER_OBS_METRICS_IO_H_
