// RAII span timer: records the enclosed scope's wall time, in
// nanoseconds, into a Histogram on destruction. A null histogram skips
// the clock reads entirely, so an un-instrumented scope costs one
// branch; with PIER_OBS_DISABLED the whole class compiles to nothing.

#ifndef PIER_OBS_SCOPED_TIMER_H_
#define PIER_OBS_SCOPED_TIMER_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace pier {
namespace obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) {
#ifndef PIER_OBS_DISABLED
    histogram_ = histogram;
    if (histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
#else
    (void)histogram;
#endif
  }

  ~ScopedTimer() {
#ifndef PIER_OBS_DISABLED
    if (histogram_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      histogram_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    }
#endif
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
#ifndef PIER_OBS_DISABLED
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
#endif
};

}  // namespace obs
}  // namespace pier

#endif  // PIER_OBS_SCOPED_TIMER_H_
