#include "persist/checkpoint_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace pier {
namespace persist {

namespace {

namespace fs = std::filesystem;

constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".piersnap";

// Zero-padded to 8 digits so lexicographic filename order equals
// numeric sequence order for any realistic run length.
std::string CheckpointName(uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%08llu%s", kCheckpointPrefix,
                static_cast<unsigned long long>(seq), kCheckpointSuffix);
  return buf;
}

bool IsCheckpointName(const std::string& name) {
  const size_t prefix_len = sizeof(kCheckpointPrefix) - 1;
  const size_t suffix_len = sizeof(kCheckpointSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kCheckpointPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kCheckpointSuffix) !=
      0) {
    return false;
  }
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

void SetError(std::string* error, const std::string& context) {
  if (error != nullptr) *error = context + ": " + std::strerror(errno);
}

// Writes `bytes` to `path` via a sibling tmp file: write + fsync +
// rename, then fsync the directory so the rename itself is durable. A
// crash at any point leaves either no file or the complete file.
bool AtomicWriteFile(const std::string& path, const std::string& bytes,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error, "open " + tmp);
    return false;
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written,
                              bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetError(error, "write " + tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    SetError(error, "fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    SetError(error, "close " + tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, "rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return false;
  }
  const std::string dir = fs::path(path).parent_path().string();
  const int dir_fd = ::open(dir.empty() ? "." : dir.c_str(),
                            O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // best effort; the rename already landed
    ::close(dir_fd);
  }
  return true;
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointOptions options)
    : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    checkpoints_metric_ =
        options_.metrics->GetCounter("persist.checkpoints_written");
    failures_metric_ =
        options_.metrics->GetCounter("persist.checkpoint_failures");
    rotations_metric_ = options_.metrics->GetCounter("persist.rotations");
    sections_metric_ = options_.metrics->GetCounter("persist.sections_written");
    bytes_metric_ = options_.metrics->GetHistogram("persist.snapshot_bytes");
    write_ns_metric_ = options_.metrics->GetHistogram("persist.write_ns");
  }
}

std::string CheckpointManager::Write(uint64_t seq,
                                     const SnapshotBuilder& snapshot,
                                     std::string* error) {
  Stopwatch timer;
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "create checkpoint dir " + options_.dir + ": " + ec.message();
    }
    obs::CounterAdd(failures_metric_, 1);
    return "";
  }

  const std::string path =
      (fs::path(options_.dir) / CheckpointName(seq)).string();
  const std::string bytes = snapshot.Bytes();
  if (!AtomicWriteFile(path, bytes, error)) {
    obs::CounterAdd(failures_metric_, 1);
    return "";
  }

  obs::CounterAdd(checkpoints_metric_, 1);
  obs::CounterAdd(sections_metric_, snapshot.num_sections());
  obs::HistogramRecord(bytes_metric_, static_cast<double>(bytes.size()));
  obs::HistogramRecord(write_ns_metric_, timer.ElapsedSeconds() * 1e9);
  Rotate();
  return path;
}

void CheckpointManager::Rotate() {
  if (options_.keep == 0) return;
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (IsCheckpointName(name)) names.push_back(name);
  }
  if (ec || names.size() <= options_.keep) return;
  std::sort(names.begin(), names.end());
  const size_t excess = names.size() - options_.keep;
  for (size_t i = 0; i < excess; ++i) {
    fs::remove(fs::path(options_.dir) / names[i], ec);
    if (!ec) obs::CounterAdd(rotations_metric_, 1);
  }
}

std::optional<std::string> CheckpointManager::FindLatest(
    const std::string& dir) {
  std::error_code ec;
  std::string best;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (IsCheckpointName(name) && name > best) best = name;
  }
  if (ec || best.empty()) return std::nullopt;
  return (fs::path(dir) / best).string();
}

}  // namespace persist
}  // namespace pier
