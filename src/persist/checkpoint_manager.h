// Durable checkpoint writer: persists snapshots atomically (tmp file +
// fsync + rename, then a directory fsync) so a crash at any instant
// leaves either the previous checkpoint set or the new one -- never a
// torn file -- and rotates the directory down to the newest N
// checkpoints. The StreamSimulator and RealtimePipeline drive it via
// their checkpoint_dir / checkpoint_every options; `pier_cli
// --resume-from` restores from the files it writes.
//
// Instrumented with `persist.*` metrics (checkpoints written, bytes,
// write latency, rotations, failures) through the src/obs/ registry.

#ifndef PIER_PERSIST_CHECKPOINT_MANAGER_H_
#define PIER_PERSIST_CHECKPOINT_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "persist/snapshot.h"

namespace pier {
namespace persist {

struct CheckpointOptions {
  // Directory the checkpoints live in (created on the first write);
  // empty disables checkpointing.
  std::string dir;
  // A checkpoint is due every `every` delivered increments (the driver
  // consults Due()); 0 disables.
  size_t every = 10;
  // Newest checkpoints kept after rotation; 0 keeps all.
  size_t keep = 3;
  // Optional `persist.*` metrics sink; non-owning.
  obs::MetricsRegistry* metrics = nullptr;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointOptions options);

  bool enabled() const { return !options_.dir.empty() && options_.every > 0; }

  // True when a checkpoint is due after `delivered` increments (always
  // true at 0, covering resume-before-the-first-increment).
  bool Due(uint64_t delivered) const {
    return enabled() && delivered % options_.every == 0;
  }

  // Atomically writes `snapshot` as ckpt-<seq>.piersnap in the
  // checkpoint directory and rotates older checkpoints out. Returns
  // the final path, or an empty string with *error set on failure (the
  // previous checkpoints are left intact either way).
  std::string Write(uint64_t seq, const SnapshotBuilder& snapshot,
                    std::string* error);

  // Path of the checkpoint with the highest sequence number in `dir`,
  // or nullopt when none exists.
  static std::optional<std::string> FindLatest(const std::string& dir);

 private:
  void Rotate();

  CheckpointOptions options_;
  obs::Counter* checkpoints_metric_ = nullptr;
  obs::Counter* failures_metric_ = nullptr;
  obs::Counter* rotations_metric_ = nullptr;
  obs::Counter* sections_metric_ = nullptr;
  obs::Histogram* bytes_metric_ = nullptr;
  obs::Histogram* write_ns_metric_ = nullptr;
};

}  // namespace persist
}  // namespace pier

#endif  // PIER_PERSIST_CHECKPOINT_MANAGER_H_
