// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78):
// the checksum guarding every snapshot section against corruption
// (bit rot, torn writes, truncation). Software table implementation --
// snapshot I/O is far from the hot path, so no SSE4.2 dispatch.

#ifndef PIER_PERSIST_CRC32C_H_
#define PIER_PERSIST_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pier {
namespace persist {

// CRC32C of `size` bytes at `data`. Pass a previous result as `seed`
// to checksum a byte sequence incrementally:
//   Crc32c(b, nb, Crc32c(a, na)) == Crc32c(concat(a, b)).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view s, uint32_t seed = 0) {
  return Crc32c(s.data(), s.size(), seed);
}

}  // namespace persist
}  // namespace pier

#endif  // PIER_PERSIST_CRC32C_H_
