#include "persist/snapshot.h"

#include <cstring>
#include <limits>
#include <utility>

#include "persist/crc32c.h"
#include "util/check.h"
#include "util/serial.h"

namespace pier {
namespace persist {

namespace {

// Sanity bounds rejecting absurd tables before any large read; real
// snapshots use a few dozen sections with short dotted names.
constexpr uint32_t kMaxSections = 1u << 16;
constexpr uint16_t kMaxNameLen = 1u << 10;

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

std::ostream& SnapshotBuilder::AddSection(std::string name) {
  PIER_CHECK(!name.empty());
  for (const Section& s : sections_) {
    PIER_CHECK(s.name != name);  // section names must be unique
  }
  sections_.emplace_back();
  sections_.back().name = std::move(name);
  return sections_.back().payload;
}

uint64_t SnapshotBuilder::payload_bytes() const {
  uint64_t total = 0;
  for (const Section& s : sections_) total += s.payload.view().size();
  return total;
}

void SnapshotBuilder::WriteTo(std::ostream& out) const {
  std::ostringstream header;
  serial::WriteU32(header, kFormatVersion);
  serial::WriteU32(header, static_cast<uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    const std::string_view payload = s.payload.view();
    PIER_CHECK(s.name.size() <= kMaxNameLen);
    serial::WriteU16(header, static_cast<uint16_t>(s.name.size()));
    header.write(s.name.data(), static_cast<std::streamsize>(s.name.size()));
    serial::WriteU64(header, payload.size());
    serial::WriteU32(header, Crc32c(payload));
  }
  const std::string header_bytes = std::move(header).str();

  out.write(kMagic, sizeof(kMagic));
  out.write(header_bytes.data(),
            static_cast<std::streamsize>(header_bytes.size()));
  serial::WriteU32(out, Crc32c(header_bytes));
  for (const Section& s : sections_) {
    const std::string_view payload = s.payload.view();
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
}

std::string SnapshotBuilder::Bytes() const {
  std::ostringstream out;
  WriteTo(out);
  return std::move(out).str();
}

bool SnapshotReader::Parse(std::istream& in, std::string* error) {
  names_.clear();
  sections_.clear();

  // Buffer the whole file: snapshots are validated end to end before
  // any state is exposed, so streaming parse buys nothing.
  std::string bytes;
  {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }

  size_t pos = 0;
  const auto remaining = [&]() { return bytes.size() - pos; };

  if (remaining() < sizeof(kMagic)) {
    SetError(error, "snapshot truncated: shorter than the magic");
    return false;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    SetError(error, "bad snapshot magic (not a PIER snapshot)");
    return false;
  }
  pos += sizeof(kMagic);

  std::istringstream cursor(bytes.substr(pos));
  uint32_t version = 0;
  uint32_t section_count = 0;
  if (!serial::ReadU32(cursor, &version) ||
      !serial::ReadU32(cursor, &section_count)) {
    SetError(error, "snapshot truncated inside the header");
    return false;
  }
  if (version < kMinSupportedFormatVersion || version > kFormatVersion) {
    SetError(error,
             version < kMinSupportedFormatVersion
                 ? "snapshot version " + std::to_string(version) +
                       " is too old (this build reads versions " +
                       std::to_string(kMinSupportedFormatVersion) + ".." +
                       std::to_string(kFormatVersion) + ")"
                 : "unsupported snapshot version " + std::to_string(version) +
                       " (this build reads versions up to " +
                       std::to_string(kFormatVersion) + ")");
    return false;
  }
  if (section_count > kMaxSections) {
    SetError(error, "implausible section count " +
                        std::to_string(section_count) + " (corrupt header)");
    return false;
  }

  struct TableEntry {
    std::string name;
    uint64_t payload_len = 0;
    uint32_t payload_crc = 0;
  };
  std::vector<TableEntry> table;
  table.reserve(section_count);
  uint64_t total_payload = 0;
  for (uint32_t i = 0; i < section_count; ++i) {
    TableEntry entry;
    uint16_t name_len = 0;
    if (!serial::ReadU16(cursor, &name_len) || name_len == 0 ||
        name_len > kMaxNameLen) {
      SetError(error, "snapshot section table corrupt (bad name length)");
      return false;
    }
    entry.name.resize(name_len);
    if (!cursor.read(entry.name.data(), name_len) ||
        !serial::ReadU64(cursor, &entry.payload_len) ||
        !serial::ReadU32(cursor, &entry.payload_crc)) {
      SetError(error, "snapshot truncated inside the section table");
      return false;
    }
    if (entry.payload_len > bytes.size()) {
      SetError(error, "section '" + entry.name +
                          "' declares a payload longer than the snapshot");
      return false;
    }
    total_payload += entry.payload_len;
    table.push_back(std::move(entry));
  }

  const size_t header_len = static_cast<size_t>(cursor.tellg());
  pos += header_len;
  if (remaining() < 4) {
    SetError(error, "snapshot truncated before the header CRC");
    return false;
  }
  const uint32_t stored_header_crc =
      static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos])) |
      static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + 1])) << 8 |
      static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + 2])) << 16 |
      static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + 3])) << 24;
  const uint32_t actual_header_crc =
      Crc32c(bytes.data() + sizeof(kMagic), header_len);
  if (stored_header_crc != actual_header_crc) {
    SetError(error, "snapshot header CRC mismatch (corrupt section table)");
    return false;
  }
  pos += 4;

  if (remaining() != total_payload) {
    SetError(error,
             remaining() < total_payload
                 ? "snapshot truncated inside the payloads"
                 : "snapshot has trailing bytes after the last payload");
    return false;
  }

  std::vector<std::string> names;
  std::unordered_map<std::string, std::string> sections;
  for (const TableEntry& entry : table) {
    std::string payload = bytes.substr(pos, entry.payload_len);
    pos += entry.payload_len;
    if (Crc32c(payload) != entry.payload_crc) {
      SetError(error, "section '" + entry.name + "' CRC mismatch");
      return false;
    }
    if (!sections.emplace(entry.name, std::move(payload)).second) {
      SetError(error, "duplicate section '" + entry.name + "'");
      return false;
    }
    names.push_back(entry.name);
  }

  names_ = std::move(names);
  sections_ = std::move(sections);
  return true;
}

bool SnapshotReader::Has(std::string_view name) const {
  return sections_.count(std::string(name)) != 0;
}

const std::string* SnapshotReader::Section(std::string_view name) const {
  const auto it = sections_.find(std::string(name));
  return it == sections_.end() ? nullptr : &it->second;
}

bool SnapshotReader::Open(std::string_view name, std::istringstream* out,
                          std::string* error) const {
  const std::string* payload = Section(name);
  if (payload == nullptr) {
    SetError(error, "snapshot is missing section '" + std::string(name) + "'");
    return false;
  }
  out->str(*payload);
  out->clear();
  return true;
}

}  // namespace persist
}  // namespace pier
