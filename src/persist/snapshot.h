// The PIER snapshot container format: a versioned, little-endian
// binary layout framing named sections, each independently protected
// by a CRC32C. Every stateful component serializes its own payload
// (see util/serial.h for the primitives) into one section; the
// container makes corruption detectable and restores all-or-nothing.
//
// Layout (all integers little-endian):
//
//   magic            8 bytes   "PIERSNAP"
//   header {
//     version        u32       kFormatVersion
//     section_count  u32
//     per section:
//       name_len     u16
//       name         name_len bytes
//       payload_len  u64
//       payload_crc  u32       CRC32C of the payload bytes
//   }
//   header_crc       u32       CRC32C of the header bytes above
//   payloads                   concatenated in section-table order
//
// Versioning policy: any change to this layout or to any component's
// payload encoding bumps kFormatVersion. Readers accept versions in
// [kMinSupportedFormatVersion, kFormatVersion] -- older-but-supported
// files simply lack sections added since (callers probe with Has()
// and default the missing state) -- and reject everything else with a
// version-specific diagnostic. Component payloads carry no
// per-section version on purpose -- the single top-level version
// gates the whole file.
//
// Validation contract: SnapshotReader::Parse verifies magic, version,
// header CRC, every section's length and CRC, and exact file length
// *before* exposing any section, so a bit flip or truncation anywhere
// in the file is rejected with a diagnostic and no partially-restored
// state can escape.

#ifndef PIER_PERSIST_SNAPSHOT_H_
#define PIER_PERSIST_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pier {
namespace persist {

inline constexpr char kMagic[8] = {'P', 'I', 'E', 'R', 'S', 'N', 'A', 'P'};
// Version 2: pipeline snapshots gained the 'pier.clusters' section and
// simulator snapshots the 'sim.clusters' section (the online cluster
// index / cluster-recall state). v1 files stay loadable: every other
// section's encoding is unchanged, and restores treat the missing
// cluster sections as an empty index (clusters repopulate from
// post-resume match verdicts).
//
// Version 3: the sharded ingest path (stream/sharded_pipeline.h)
// writes 'sharded.*' router sections plus one 'shard<i>.*' family per
// shard engine, and the RealtimePipeline (now the one-shard case)
// checkpoints in that layout instead of the old
// 'pier.*'+'realtime.state' one. v1/v2 simulator and plain-pipeline
// snapshots stay loadable unchanged; v2 *realtime* checkpoints are
// rejected by the sharded restore with a missing-section diagnostic
// (re-run the stream to rebuild -- realtime checkpoints are
// best-effort durability, not archives).
inline constexpr uint32_t kFormatVersion = 3;
inline constexpr uint32_t kMinSupportedFormatVersion = 1;

// Accumulates named sections in memory, then serializes the complete
// framed snapshot in one pass. Section names must be unique and are
// written in Add order (component serialization is canonical -- same
// state, same bytes -- so Snapshot -> Restore -> Snapshot round-trips
// byte-identically).
class SnapshotBuilder {
 public:
  SnapshotBuilder() = default;
  SnapshotBuilder(const SnapshotBuilder&) = delete;
  SnapshotBuilder& operator=(const SnapshotBuilder&) = delete;

  // Returns the stream to write section `name`'s payload into; valid
  // until the next AddSection / WriteTo call.
  std::ostream& AddSection(std::string name);

  // Serializes magic, header, and all payloads.
  void WriteTo(std::ostream& out) const;

  // Convenience: the complete snapshot as a byte string.
  std::string Bytes() const;

  size_t num_sections() const { return sections_.size(); }
  uint64_t payload_bytes() const;

 private:
  struct Section {
    std::string name;
    std::ostringstream payload;
  };
  std::vector<Section> sections_;
};

// Parses and validates a framed snapshot into memory. On any defect --
// bad magic, unsupported version, CRC mismatch, truncation, trailing
// garbage -- Parse returns false with a diagnostic in *error and no
// sections are exposed.
class SnapshotReader {
 public:
  SnapshotReader() = default;

  bool Parse(std::istream& in, std::string* error);

  bool Has(std::string_view name) const;

  // The raw payload of section `name`; null when absent.
  const std::string* Section(std::string_view name) const;

  // Opens section `name` for reading with the util/serial.h helpers.
  // Returns false with *error set when the section is missing.
  bool Open(std::string_view name, std::istringstream* out,
            std::string* error) const;

  // Section names in file order.
  const std::vector<std::string>& section_names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::string> sections_;
};

}  // namespace persist
}  // namespace pier

#endif  // PIER_PERSIST_SNAPSHOT_H_
