#include "serve/cluster_index.h"

#include <algorithm>
#include <ostream>
#include <unordered_map>
#include <utility>

#include "util/check.h"
#include "util/serial.h"
#include "util/stopwatch.h"

namespace pier {
namespace serve {

void ClusterIndex::AtomicU32Chunks::EnsureChunkFor(size_t i) {
  const size_t chunk_index = i >> kChunkShift;
  PIER_CHECK(chunk_index < kMaxChunks);
  if (chunks_[chunk_index].load(std::memory_order_relaxed) != nullptr) return;
  auto* chunk = new std::atomic<uint32_t>[kChunkSize]();
  chunks_[chunk_index].store(chunk, std::memory_order_release);
  allocated_.fetch_add(1, std::memory_order_relaxed);
}

void ClusterIndex::InstrumentWith(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  queries_metric_ = registry->GetCounter("serve.queries");
  unions_metric_ = registry->GetCounter("serve.unions");
  merges_metric_ = registry->GetCounter("serve.merges");
  query_retries_metric_ = registry->GetCounter("serve.query_retries");
  query_ns_metric_ = registry->GetHistogram("serve.query_ns");
  universe_metric_ = registry->GetGauge("serve.universe");
  clusters_metric_ = registry->GetGauge("serve.nontrivial_clusters");
}

void ClusterIndex::TrackUpToLocked(size_t n) {
  size_t size = size_.load(std::memory_order_relaxed);
  if (n <= size) return;
  for (size_t i = size; i < n; ++i) {
    parent_.EnsureChunkFor(i);
    next_.EnsureChunkFor(i);
    csize_.EnsureChunkFor(i);
    cmin_.EnsureChunkFor(i);
    const auto id = static_cast<uint32_t>(i);
    parent_.Store(i, id, std::memory_order_relaxed);
    next_.Store(i, id, std::memory_order_relaxed);
    csize_.Store(i, 1, std::memory_order_relaxed);
    cmin_.Store(i, id, std::memory_order_relaxed);
  }
  // Entries are fully initialized before the size release publishes
  // them, so a reader that passes the `id < universe_size()` gate only
  // ever sees initialized cells. No version bump: growth never changes
  // the partition a concurrent reader is walking.
  size_.store(n, std::memory_order_release);
  obs::GaugeSet(universe_metric_, static_cast<double>(n));
}

void ClusterIndex::TrackUpTo(size_t n) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  TrackUpToLocked(n);
}

ProfileId ClusterIndex::FindRootCompress(ProfileId id) {
  ProfileId root = id;
  for (;;) {
    const ProfileId up = parent_.Load(root, std::memory_order_relaxed);
    if (up == root) break;
    root = up;
  }
  // Path compression: every redirected node points to an ancestor, so
  // a concurrent read-side walk (which will be version-validated
  // anyway) still terminates at a root.
  while (id != root) {
    const ProfileId up = parent_.Load(id, std::memory_order_relaxed);
    parent_.Store(id, root, std::memory_order_release);
    id = up;
  }
  return root;
}

ProfileId ClusterIndex::FindRootReadOnly(ProfileId id) const {
  // Bounded pure walk: with no writer in flight this terminates at the
  // root; mid-mutation it may wander, so cap the steps and let the
  // caller's version check force a retry.
  const size_t limit = size_.load(std::memory_order_acquire) + 1;
  ProfileId root = id;
  for (size_t steps = 0; steps < limit; ++steps) {
    const ProfileId up = parent_.Load(root, std::memory_order_acquire);
    if (up == root) return root;
    root = up;
  }
  return root;
}

bool ClusterIndex::UnionLocked(ProfileId a, ProfileId b) {
  ProfileId ra = FindRootCompress(a);
  ProfileId rb = FindRootCompress(b);
  if (ra == rb) return false;
  uint32_t sa = csize_.Load(ra, std::memory_order_relaxed);
  uint32_t sb = csize_.Load(rb, std::memory_order_relaxed);
  if (sa < sb) {  // union by size
    std::swap(ra, rb);
    std::swap(sa, sb);
  }
  if (sa == 1 && sb == 1) {
    ++non_trivial_clusters_;
  } else if (sa > 1 && sb > 1) {
    --non_trivial_clusters_;
  }
  parent_.Store(rb, ra, std::memory_order_release);
  csize_.Store(ra, sa + sb, std::memory_order_release);
  const uint32_t min_a = cmin_.Load(ra, std::memory_order_relaxed);
  const uint32_t min_b = cmin_.Load(rb, std::memory_order_relaxed);
  cmin_.Store(ra, std::min(min_a, min_b), std::memory_order_release);
  // Splice the two member cycles: one swap of the roots' successors
  // joins them into a single cycle.
  const uint32_t na = next_.Load(ra, std::memory_order_relaxed);
  const uint32_t nb = next_.Load(rb, std::memory_order_relaxed);
  next_.Store(ra, nb, std::memory_order_release);
  next_.Store(rb, na, std::memory_order_release);
  return true;
}

bool ClusterIndex::AddMatch(ProfileId a, ProfileId b) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const size_t needed = static_cast<size_t>(std::max(a, b)) + 1;
  if (needed > size_.load(std::memory_order_relaxed)) {
    TrackUpToLocked(needed);
  }
  obs::CounterAdd(unions_metric_);

  // Seqlock write window: odd version while the partition mutates
  // (including path compression, which rewrites parent cells).
  version_.fetch_add(1, std::memory_order_acq_rel);
  const bool merged = UnionLocked(a, b);
  version_.fetch_add(1, std::memory_order_acq_rel);

  if (merged) {
    merges_.fetch_add(1, std::memory_order_relaxed);
    obs::CounterAdd(merges_metric_);
    obs::GaugeSet(clusters_metric_,
                  static_cast<double>(non_trivial_clusters_));
  }
  return merged;
}

size_t ClusterIndex::AddMatches(const std::pair<ProfileId, ProfileId>* pairs,
                                size_t count) {
  if (count == 0) return 0;
  std::lock_guard<std::mutex> lock(writer_mutex_);
  size_t merged_total = 0;
  for (size_t begin = 0; begin < count; begin += kMaxUnionsPerWindow) {
    const size_t end = std::min(count, begin + kMaxUnionsPerWindow);
    // Growth stays outside the odd window (like AddMatch): it never
    // changes the partition a concurrent reader is walking.
    size_t needed = size_.load(std::memory_order_relaxed);
    for (size_t i = begin; i < end; ++i) {
      const size_t top =
          static_cast<size_t>(std::max(pairs[i].first, pairs[i].second)) + 1;
      if (top > needed) needed = top;
    }
    TrackUpToLocked(needed);
    version_.fetch_add(1, std::memory_order_acq_rel);
    size_t merged_here = 0;
    for (size_t i = begin; i < end; ++i) {
      if (UnionLocked(pairs[i].first, pairs[i].second)) ++merged_here;
    }
    version_.fetch_add(1, std::memory_order_acq_rel);
    obs::CounterAdd(unions_metric_, end - begin);
    if (merged_here > 0) {
      merged_total += merged_here;
      merges_.fetch_add(merged_here, std::memory_order_relaxed);
      obs::CounterAdd(merges_metric_, merged_here);
      obs::GaugeSet(clusters_metric_,
                    static_cast<double>(non_trivial_clusters_));
    }
  }
  return merged_total;
}

ClusterView ClusterIndex::ClusterOf(ProfileId id) const {
  const Stopwatch timer;
  ClusterView view;
  if (id >= size_.load(std::memory_order_acquire)) {
    // Never tracked: a singleton by definition.
    view.cluster_id = id;
    view.members.push_back(id);
  } else {
    for (;;) {
      const uint64_t v1 = version_.load(std::memory_order_acquire);
      if ((v1 & 1) != 0) {
        obs::CounterAdd(query_retries_metric_);
        continue;
      }
      // Growth (TrackUpTo) publishes a larger universe without bumping
      // the version, so the size bound must be re-read on every retry:
      // a stale bound would fail the sz <= n check forever once the
      // queried cluster grows past it.
      const size_t n = size_.load(std::memory_order_acquire);
      const ProfileId root = FindRootReadOnly(id);
      const uint32_t cid = cmin_.Load(root, std::memory_order_acquire);
      const uint32_t sz = csize_.Load(root, std::memory_order_acquire);
      view.members.clear();
      bool consistent = sz >= 1 && sz <= n;
      if (consistent) {
        view.members.reserve(sz);
        ProfileId cur = id;
        do {
          view.members.push_back(cur);
          if (view.members.size() > sz) {
            consistent = false;  // torn cycle; retry
            break;
          }
          cur = next_.Load(cur, std::memory_order_acquire);
        } while (cur != id);
      }
      if (consistent && view.members.size() == sz &&
          version_.load(std::memory_order_acquire) == v1) {
        view.cluster_id = cid;
        break;
      }
      obs::CounterAdd(query_retries_metric_);
    }
    std::sort(view.members.begin(), view.members.end());
  }
  obs::CounterAdd(queries_metric_);
  if (query_ns_metric_ != nullptr) {
    query_ns_metric_->Record(
        static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9));
  }
  return view;
}

ProfileId ClusterIndex::ClusterIdOf(ProfileId id) const {
  const Stopwatch timer;
  ProfileId cid = id;
  const size_t n = size_.load(std::memory_order_acquire);
  if (id < n) {
    for (;;) {
      const uint64_t v1 = version_.load(std::memory_order_acquire);
      if ((v1 & 1) != 0) {
        obs::CounterAdd(query_retries_metric_);
        continue;
      }
      const ProfileId root = FindRootReadOnly(id);
      cid = cmin_.Load(root, std::memory_order_acquire);
      if (version_.load(std::memory_order_acquire) == v1) break;
      obs::CounterAdd(query_retries_metric_);
    }
  }
  obs::CounterAdd(queries_metric_);
  if (query_ns_metric_ != nullptr) {
    query_ns_metric_->Record(
        static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9));
  }
  return cid;
}

size_t ClusterIndex::ClusterSizeOf(ProfileId id) const {
  const size_t n = size_.load(std::memory_order_acquire);
  if (id >= n) return 1;
  for (;;) {
    const uint64_t v1 = version_.load(std::memory_order_acquire);
    if ((v1 & 1) != 0) continue;
    const ProfileId root = FindRootReadOnly(id);
    const uint32_t sz = csize_.Load(root, std::memory_order_acquire);
    if (version_.load(std::memory_order_acquire) == v1) return sz;
  }
}

size_t ClusterIndex::NumNonTrivialClusters() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return non_trivial_clusters_;
}

void ClusterIndex::Snapshot(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const size_t n = size_.load(std::memory_order_relaxed);
  serial::WriteU64(out, n);
  for (size_t i = 0; i < n; ++i) {
    const ProfileId root = FindRootReadOnly(static_cast<ProfileId>(i));
    serial::WriteU32(out, cmin_.Load(root, std::memory_order_relaxed));
  }
}

bool ClusterIndex::Restore(std::istream& in) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (size_.load(std::memory_order_relaxed) != 0) return false;
  uint64_t n = 0;
  if (!serial::ReadU64(in, &n)) return false;
  // Reject universes beyond addressable capacity here instead of
  // letting EnsureChunkFor's PIER_CHECK abort on a corrupt payload.
  if (n > AtomicU32Chunks::kMaxChunks * AtomicU32Chunks::kChunkSize) {
    return false;
  }
  std::vector<uint32_t> cid;
  cid.reserve(static_cast<size_t>(std::min<uint64_t>(n, uint64_t{1} << 20)));
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t c = 0;
    // Canonical form: a cluster's id is its smallest member, so every
    // id maps to a cluster id no larger than itself, and a cluster id
    // maps to itself.
    if (!serial::ReadU32(in, &c) || c > i ||
        (c < i && cid[c] != c)) {
      return false;
    }
    cid.push_back(c);
  }
  TrackUpToLocked(static_cast<size_t>(n));
  // Rebuild the union-find flat (parent = canonical id) and the member
  // cycles in ascending-id order -- a deterministic shape, so a second
  // Snapshot emits identical bytes.
  struct ClusterBuild {
    uint32_t count = 0;
    uint32_t last = 0;
  };
  std::unordered_map<uint32_t, ClusterBuild> build;
  for (uint64_t i = 0; i < n; ++i) {
    const auto id = static_cast<uint32_t>(i);
    parent_.Store(i, cid[i], std::memory_order_relaxed);
    ClusterBuild& b = build[cid[i]];
    if (b.count == 0) {
      next_.Store(i, id, std::memory_order_relaxed);
    } else {
      next_.Store(b.last, id, std::memory_order_relaxed);
      next_.Store(i, cid[i], std::memory_order_relaxed);  // close cycle
    }
    ++b.count;
    b.last = id;
  }
  non_trivial_clusters_ = 0;
  uint64_t merge_count = 0;
  for (const auto& [root, b] : build) {
    csize_.Store(root, b.count, std::memory_order_relaxed);
    cmin_.Store(root, root, std::memory_order_relaxed);
    if (b.count > 1) {
      ++non_trivial_clusters_;
      merge_count += b.count - 1;
    }
  }
  merges_.store(merge_count, std::memory_order_relaxed);
  obs::GaugeSet(clusters_metric_, static_cast<double>(non_trivial_clusters_));
  return true;
}

size_t ClusterIndex::ApproxMemoryBytes() const {
  const size_t chunk_bytes =
      AtomicU32Chunks::kChunkSize * sizeof(std::atomic<uint32_t>);
  const size_t directory_bytes =
      AtomicU32Chunks::kMaxChunks * sizeof(std::atomic<std::atomic<uint32_t>*>);
  const size_t chunks = parent_.allocated_chunks() +
                        next_.allocated_chunks() +
                        csize_.allocated_chunks() + cmin_.allocated_chunks();
  return 4 * directory_bytes + chunks * chunk_bytes;
}

}  // namespace serve
}  // namespace pier
