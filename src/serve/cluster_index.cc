#include "serve/cluster_index.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <unordered_map>
#include <utility>

#include "util/check.h"
#include "util/serial.h"
#include "util/stopwatch.h"

namespace pier {
namespace serve {

void ClusterIndex::AtomicU32Chunks::EnsureChunkFor(size_t i) {
  const size_t chunk_index = i >> kChunkShift;
  PIER_CHECK(chunk_index < kMaxChunks);
  if (chunks_[chunk_index].load(std::memory_order_relaxed) != nullptr) return;
  auto* chunk = new std::atomic<uint32_t>[kChunkSize]();
  chunks_[chunk_index].store(chunk, std::memory_order_release);
  allocated_.fetch_add(1, std::memory_order_relaxed);
}

void ClusterIndex::InstrumentWith(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  queries_metric_ = registry->GetCounter("serve.queries");
  unions_metric_ = registry->GetCounter("serve.unions");
  merges_metric_ = registry->GetCounter("serve.merges");
  removals_metric_ = registry->GetCounter("serve.removals");
  query_retries_metric_ = registry->GetCounter("serve.query_retries");
  query_ns_metric_ = registry->GetHistogram("serve.query_ns");
  universe_metric_ = registry->GetGauge("serve.universe");
  clusters_metric_ = registry->GetGauge("serve.nontrivial_clusters");
}

void ClusterIndex::EnableRetraction() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // Edges are only recorded from here on; enabling after matches were
  // already folded would leave removals unable to re-resolve them.
  PIER_CHECK(merges_.load(std::memory_order_relaxed) == 0);
  retraction_enabled_ = true;
}

void ClusterIndex::TrackUpToLocked(size_t n) {
  size_t size = size_.load(std::memory_order_relaxed);
  if (n <= size) return;
  for (size_t i = size; i < n; ++i) {
    parent_.EnsureChunkFor(i);
    next_.EnsureChunkFor(i);
    csize_.EnsureChunkFor(i);
    cmin_.EnsureChunkFor(i);
    const auto id = static_cast<uint32_t>(i);
    parent_.Store(i, id, std::memory_order_relaxed);
    next_.Store(i, id, std::memory_order_relaxed);
    csize_.Store(i, 1, std::memory_order_relaxed);
    cmin_.Store(i, id, std::memory_order_relaxed);
  }
  // Entries are fully initialized before the size release publishes
  // them, so a reader that passes the `id < universe_size()` gate only
  // ever sees initialized cells. No version bump: growth never changes
  // the partition a concurrent reader is walking.
  size_.store(n, std::memory_order_release);
  obs::GaugeSet(universe_metric_, static_cast<double>(n));
}

void ClusterIndex::TrackUpTo(size_t n) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  TrackUpToLocked(n);
}

ProfileId ClusterIndex::FindRootCompress(ProfileId id) {
  ProfileId root = id;
  for (;;) {
    const ProfileId up = parent_.Load(root, std::memory_order_relaxed);
    if (up == root) break;
    root = up;
  }
  // Path compression: every redirected node points to an ancestor, so
  // a concurrent read-side walk (which will be version-validated
  // anyway) still terminates at a root.
  while (id != root) {
    const ProfileId up = parent_.Load(id, std::memory_order_relaxed);
    parent_.Store(id, root, std::memory_order_release);
    id = up;
  }
  return root;
}

ProfileId ClusterIndex::FindRootReadOnly(ProfileId id) const {
  // Bounded pure walk: with no writer in flight this terminates at the
  // root; mid-mutation it may wander, so cap the steps and let the
  // caller's version check force a retry.
  const size_t n = size_.load(std::memory_order_acquire);
  const size_t limit = n + 1;
  ProfileId root = id;
  for (size_t steps = 0; steps < limit; ++steps) {
    const ProfileId up = parent_.Load(root, std::memory_order_acquire);
    if (up == root) return root;
    // A removed cell (kDeadParent) -- or any out-of-universe value
    // from a torn mid-mutation read -- must not be dereferenced.
    // Callers answer "removed" if the version held, else retry.
    if (up >= n) return kDeadParent;
    root = up;
  }
  return root;
}

void ClusterIndex::RecordEdgeLocked(ProfileId a, ProfileId b) {
  const size_t needed = static_cast<size_t>(std::max(a, b)) + 1;
  if (edges_.size() < needed) edges_.resize(needed);
  auto& list = edges_[a];
  if (std::find(list.begin(), list.end(), b) != list.end()) return;
  list.push_back(b);
  edges_[b].push_back(a);
}

bool ClusterIndex::UnionLocked(ProfileId a, ProfileId b) {
  if (retraction_enabled_) {
    // Never walk from a removed cell (its parent is the kDeadParent
    // sentinel, not a valid index); verdicts for removed profiles are
    // already filtered upstream, this is the safety net.
    if (parent_.Load(a, std::memory_order_relaxed) == kDeadParent ||
        parent_.Load(b, std::memory_order_relaxed) == kDeadParent) {
      return false;
    }
    if (a != b) RecordEdgeLocked(a, b);
  }
  ProfileId ra = FindRootCompress(a);
  ProfileId rb = FindRootCompress(b);
  if (ra == rb) return false;
  uint32_t sa = csize_.Load(ra, std::memory_order_relaxed);
  uint32_t sb = csize_.Load(rb, std::memory_order_relaxed);
  if (sa < sb) {  // union by size
    std::swap(ra, rb);
    std::swap(sa, sb);
  }
  if (sa == 1 && sb == 1) {
    ++non_trivial_clusters_;
  } else if (sa > 1 && sb > 1) {
    --non_trivial_clusters_;
  }
  parent_.Store(rb, ra, std::memory_order_release);
  csize_.Store(ra, sa + sb, std::memory_order_release);
  const uint32_t min_a = cmin_.Load(ra, std::memory_order_relaxed);
  const uint32_t min_b = cmin_.Load(rb, std::memory_order_relaxed);
  cmin_.Store(ra, std::min(min_a, min_b), std::memory_order_release);
  // Splice the two member cycles: one swap of the roots' successors
  // joins them into a single cycle.
  const uint32_t na = next_.Load(ra, std::memory_order_relaxed);
  const uint32_t nb = next_.Load(rb, std::memory_order_relaxed);
  next_.Store(ra, nb, std::memory_order_release);
  next_.Store(rb, na, std::memory_order_release);
  return true;
}

bool ClusterIndex::AddMatch(ProfileId a, ProfileId b) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const size_t needed = static_cast<size_t>(std::max(a, b)) + 1;
  if (needed > size_.load(std::memory_order_relaxed)) {
    TrackUpToLocked(needed);
  }
  obs::CounterAdd(unions_metric_);

  // Seqlock write window: odd version while the partition mutates
  // (including path compression, which rewrites parent cells).
  version_.fetch_add(1, std::memory_order_acq_rel);
  const bool merged = UnionLocked(a, b);
  version_.fetch_add(1, std::memory_order_acq_rel);

  if (merged) {
    merges_.fetch_add(1, std::memory_order_relaxed);
    obs::CounterAdd(merges_metric_);
    obs::GaugeSet(clusters_metric_,
                  static_cast<double>(non_trivial_clusters_));
  }
  return merged;
}

size_t ClusterIndex::AddMatches(const std::pair<ProfileId, ProfileId>* pairs,
                                size_t count) {
  if (count == 0) return 0;
  std::lock_guard<std::mutex> lock(writer_mutex_);
  size_t merged_total = 0;
  for (size_t begin = 0; begin < count; begin += kMaxUnionsPerWindow) {
    const size_t end = std::min(count, begin + kMaxUnionsPerWindow);
    // Growth stays outside the odd window (like AddMatch): it never
    // changes the partition a concurrent reader is walking.
    size_t needed = size_.load(std::memory_order_relaxed);
    for (size_t i = begin; i < end; ++i) {
      const size_t top =
          static_cast<size_t>(std::max(pairs[i].first, pairs[i].second)) + 1;
      if (top > needed) needed = top;
    }
    TrackUpToLocked(needed);
    version_.fetch_add(1, std::memory_order_acq_rel);
    size_t merged_here = 0;
    for (size_t i = begin; i < end; ++i) {
      if (UnionLocked(pairs[i].first, pairs[i].second)) ++merged_here;
    }
    version_.fetch_add(1, std::memory_order_acq_rel);
    obs::CounterAdd(unions_metric_, end - begin);
    if (merged_here > 0) {
      merged_total += merged_here;
      merges_.fetch_add(merged_here, std::memory_order_relaxed);
      obs::CounterAdd(merges_metric_, merged_here);
      obs::GaugeSet(clusters_metric_,
                    static_cast<double>(non_trivial_clusters_));
    }
  }
  return merged_total;
}

void ClusterIndex::WriteClusterLocked(const std::vector<ProfileId>& members) {
  const ProfileId root = members.front();  // sorted ascending: the min
  for (size_t k = 0; k < members.size(); ++k) {
    parent_.Store(members[k], root, std::memory_order_release);
    const ProfileId successor =
        k + 1 < members.size() ? members[k + 1] : root;
    next_.Store(members[k], successor, std::memory_order_release);
  }
  csize_.Store(root, static_cast<uint32_t>(members.size()),
               std::memory_order_release);
  cmin_.Store(root, root, std::memory_order_release);
}

bool ClusterIndex::RemoveProfile(ProfileId id) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  PIER_CHECK(retraction_enabled_);
  const size_t n = size_.load(std::memory_order_relaxed);
  if (id >= n) return false;
  if (parent_.Load(id, std::memory_order_relaxed) == kDeadParent) {
    return false;
  }

  // Collect the cluster's members (writer-consistent cycle walk).
  std::vector<ProfileId> members;
  ProfileId cur = id;
  do {
    members.push_back(cur);
    cur = next_.Load(cur, std::memory_order_relaxed);
  } while (cur != id);

  // Drop the removed record's edges from both directions.
  if (id < edges_.size()) {
    for (const ProfileId nb : edges_[id]) {
      auto& list = edges_[nb];
      auto pos = std::find(list.begin(), list.end(), id);
      if (pos != list.end()) {
        *pos = list.back();
        list.pop_back();
      }
    }
    edges_[id].clear();
  }

  // Re-resolve the survivors: connected components over the remaining
  // match edges (all of which stay within the old cluster).
  std::vector<ProfileId> survivors;
  survivors.reserve(members.size() - 1);
  for (const ProfileId m : members) {
    if (m != id) survivors.push_back(m);
  }
  std::sort(survivors.begin(), survivors.end());
  std::unordered_map<ProfileId, size_t> component_of;
  std::vector<std::vector<ProfileId>> components;
  for (const ProfileId seed : survivors) {
    if (component_of.count(seed) != 0) continue;
    const size_t c = components.size();
    components.emplace_back();
    std::vector<ProfileId> frontier{seed};
    component_of.emplace(seed, c);
    while (!frontier.empty()) {
      const ProfileId v = frontier.back();
      frontier.pop_back();
      components[c].push_back(v);
      if (v >= edges_.size()) continue;
      for (const ProfileId nb : edges_[v]) {
        if (component_of.emplace(nb, c).second) frontier.push_back(nb);
      }
    }
    std::sort(components[c].begin(), components[c].end());
  }

  version_.fetch_add(1, std::memory_order_acq_rel);
  parent_.Store(id, kDeadParent, std::memory_order_release);
  next_.Store(id, id, std::memory_order_release);
  csize_.Store(id, 0, std::memory_order_release);
  cmin_.Store(id, id, std::memory_order_release);
  for (const auto& component : components) WriteClusterLocked(component);
  version_.fetch_add(1, std::memory_order_acq_rel);

  if (members.size() > 1) --non_trivial_clusters_;
  for (const auto& component : components) {
    if (component.size() > 1) ++non_trivial_clusters_;
  }
  obs::CounterAdd(removals_metric_);
  obs::GaugeSet(clusters_metric_, static_cast<double>(non_trivial_clusters_));
  return true;
}

void ClusterIndex::ReviveAsSingleton(ProfileId id) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  PIER_CHECK(retraction_enabled_);
  PIER_CHECK(id < size_.load(std::memory_order_relaxed));
  PIER_CHECK(parent_.Load(id, std::memory_order_relaxed) == kDeadParent);
  version_.fetch_add(1, std::memory_order_acq_rel);
  parent_.Store(id, id, std::memory_order_release);
  next_.Store(id, id, std::memory_order_release);
  csize_.Store(id, 1, std::memory_order_release);
  cmin_.Store(id, id, std::memory_order_release);
  version_.fetch_add(1, std::memory_order_acq_rel);
}

bool ClusterIndex::IsDeleted(ProfileId id) const {
  if (id >= size_.load(std::memory_order_acquire)) return false;
  for (;;) {
    const uint64_t v1 = version_.load(std::memory_order_acquire);
    if ((v1 & 1) != 0) continue;
    const bool dead =
        parent_.Load(id, std::memory_order_acquire) == kDeadParent;
    if (version_.load(std::memory_order_acquire) == v1) return dead;
  }
}

ClusterView ClusterIndex::ClusterOf(ProfileId id) const {
  const Stopwatch timer;
  ClusterView view;
  if (id >= size_.load(std::memory_order_acquire)) {
    // Never tracked: a singleton by definition.
    view.cluster_id = id;
    view.members.push_back(id);
  } else {
    for (;;) {
      const uint64_t v1 = version_.load(std::memory_order_acquire);
      if ((v1 & 1) != 0) {
        obs::CounterAdd(query_retries_metric_);
        continue;
      }
      // Growth (TrackUpTo) publishes a larger universe without bumping
      // the version, so the size bound must be re-read on every retry:
      // a stale bound would fail the sz <= n check forever once the
      // queried cluster grows past it.
      const size_t n = size_.load(std::memory_order_acquire);
      const ProfileId root = FindRootReadOnly(id);
      if (root == kDeadParent) {
        // The walk hit a removed cell: either the queried id is dead
        // (stable -- report absence) or a removal was in flight.
        if (version_.load(std::memory_order_acquire) == v1) {
          view.cluster_id = kInvalidProfileId;
          view.members.clear();
          break;
        }
        obs::CounterAdd(query_retries_metric_);
        continue;
      }
      const uint32_t cid = cmin_.Load(root, std::memory_order_acquire);
      const uint32_t sz = csize_.Load(root, std::memory_order_acquire);
      view.members.clear();
      bool consistent = sz >= 1 && sz <= n;
      if (consistent) {
        view.members.reserve(sz);
        ProfileId cur = id;
        do {
          view.members.push_back(cur);
          if (view.members.size() > sz) {
            consistent = false;  // torn cycle; retry
            break;
          }
          cur = next_.Load(cur, std::memory_order_acquire);
        } while (cur != id);
      }
      if (consistent && view.members.size() == sz &&
          version_.load(std::memory_order_acquire) == v1) {
        view.cluster_id = cid;
        break;
      }
      obs::CounterAdd(query_retries_metric_);
    }
    std::sort(view.members.begin(), view.members.end());
  }
  obs::CounterAdd(queries_metric_);
  if (query_ns_metric_ != nullptr) {
    query_ns_metric_->Record(
        static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9));
  }
  return view;
}

ProfileId ClusterIndex::ClusterIdOf(ProfileId id) const {
  const Stopwatch timer;
  ProfileId cid = id;
  const size_t n = size_.load(std::memory_order_acquire);
  if (id < n) {
    for (;;) {
      const uint64_t v1 = version_.load(std::memory_order_acquire);
      if ((v1 & 1) != 0) {
        obs::CounterAdd(query_retries_metric_);
        continue;
      }
      const ProfileId root = FindRootReadOnly(id);
      if (root == kDeadParent) {
        if (version_.load(std::memory_order_acquire) == v1) {
          cid = kInvalidProfileId;
          break;
        }
        obs::CounterAdd(query_retries_metric_);
        continue;
      }
      cid = cmin_.Load(root, std::memory_order_acquire);
      if (version_.load(std::memory_order_acquire) == v1) break;
      obs::CounterAdd(query_retries_metric_);
    }
  }
  obs::CounterAdd(queries_metric_);
  if (query_ns_metric_ != nullptr) {
    query_ns_metric_->Record(
        static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9));
  }
  return cid;
}

size_t ClusterIndex::ClusterSizeOf(ProfileId id) const {
  const size_t n = size_.load(std::memory_order_acquire);
  if (id >= n) return 1;
  for (;;) {
    const uint64_t v1 = version_.load(std::memory_order_acquire);
    if ((v1 & 1) != 0) continue;
    const ProfileId root = FindRootReadOnly(id);
    if (root == kDeadParent) {
      if (version_.load(std::memory_order_acquire) == v1) return 0;
      continue;
    }
    const uint32_t sz = csize_.Load(root, std::memory_order_acquire);
    if (version_.load(std::memory_order_acquire) == v1) return sz;
  }
}

size_t ClusterIndex::NumNonTrivialClusters() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return non_trivial_clusters_;
}

void ClusterIndex::Snapshot(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const size_t n = size_.load(std::memory_order_relaxed);
  serial::WriteU64(out, n);
  for (size_t i = 0; i < n; ++i) {
    const ProfileId root = FindRootReadOnly(static_cast<ProfileId>(i));
    if (root == kDeadParent) {
      serial::WriteU32(out, kInvalidProfileId);  // removed id
      continue;
    }
    serial::WriteU32(out, cmin_.Load(root, std::memory_order_relaxed));
  }
  if (!retraction_enabled_) return;
  // Canonical match-edge tail: every undirected edge once as (a, b)
  // with a < b, sorted. Pre-retraction snapshots end after the id
  // list; Restore detects the tail by payload presence.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (uint32_t a = 0; a < edges_.size(); ++a) {
    for (const ProfileId b : edges_[a]) {
      if (a < b) pairs.emplace_back(a, b);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  serial::WriteU64(out, pairs.size());
  for (const auto& [a, b] : pairs) {
    serial::WriteU32(out, a);
    serial::WriteU32(out, b);
  }
}

bool ClusterIndex::Restore(std::istream& in) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (size_.load(std::memory_order_relaxed) != 0) return false;
  uint64_t n = 0;
  if (!serial::ReadU64(in, &n)) return false;
  // Reject universes beyond addressable capacity here instead of
  // letting EnsureChunkFor's PIER_CHECK abort on a corrupt payload.
  if (n > AtomicU32Chunks::kMaxChunks * AtomicU32Chunks::kChunkSize) {
    return false;
  }
  std::vector<uint32_t> cid;
  cid.reserve(static_cast<size_t>(std::min<uint64_t>(n, uint64_t{1} << 20)));
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t c = 0;
    // Canonical form: a cluster's id is its smallest member, so every
    // live id maps to a cluster id no larger than itself, and a
    // cluster id maps to itself. kInvalidProfileId marks a removed id.
    if (!serial::ReadU32(in, &c)) return false;
    if (c != kInvalidProfileId &&
        (c > i || (c < i && cid[c] != c))) {
      return false;
    }
    cid.push_back(c);
  }
  TrackUpToLocked(static_cast<size_t>(n));
  // Rebuild the union-find flat (parent = canonical id) and the member
  // cycles in ascending-id order -- a deterministic shape, so a second
  // Snapshot emits identical bytes. Removed ids become dead cells.
  struct ClusterBuild {
    uint32_t count = 0;
    uint32_t last = 0;
  };
  std::unordered_map<uint32_t, ClusterBuild> build;
  for (uint64_t i = 0; i < n; ++i) {
    const auto id = static_cast<uint32_t>(i);
    if (cid[i] == kInvalidProfileId) {
      parent_.Store(i, kDeadParent, std::memory_order_relaxed);
      next_.Store(i, id, std::memory_order_relaxed);
      csize_.Store(i, 0, std::memory_order_relaxed);
      cmin_.Store(i, id, std::memory_order_relaxed);
      continue;
    }
    parent_.Store(i, cid[i], std::memory_order_relaxed);
    ClusterBuild& b = build[cid[i]];
    if (b.count == 0) {
      next_.Store(i, id, std::memory_order_relaxed);
    } else {
      next_.Store(b.last, id, std::memory_order_relaxed);
      next_.Store(i, cid[i], std::memory_order_relaxed);  // close cycle
    }
    ++b.count;
    b.last = id;
  }
  non_trivial_clusters_ = 0;
  uint64_t merge_count = 0;
  for (const auto& [root, b] : build) {
    csize_.Store(root, b.count, std::memory_order_relaxed);
    cmin_.Store(root, root, std::memory_order_relaxed);
    if (b.count > 1) {
      ++non_trivial_clusters_;
      merge_count += b.count - 1;
    }
  }
  merges_.store(merge_count, std::memory_order_relaxed);
  obs::GaugeSet(clusters_metric_, static_cast<double>(non_trivial_clusters_));

  // Optional match-edge tail (written by retraction-enabled indexes;
  // pre-retraction snapshots end exactly after the id list).
  if (in.peek() == std::char_traits<char>::eof()) return true;
  uint64_t edge_count = 0;
  if (!serial::ReadU64(in, &edge_count)) return false;
  std::vector<std::vector<ProfileId>> edges;
  uint32_t prev_a = 0;
  uint32_t prev_b = 0;
  for (uint64_t e = 0; e < edge_count; ++e) {
    uint32_t a = 0;
    uint32_t b = 0;
    if (!serial::ReadU32(in, &a) || !serial::ReadU32(in, &b)) return false;
    // Canonical order, endpoints live and in the same cluster.
    if (a >= b || b >= n || cid[a] == kInvalidProfileId ||
        cid[b] == kInvalidProfileId || cid[a] != cid[b]) {
      return false;
    }
    if (e > 0 && (a < prev_a || (a == prev_a && b <= prev_b))) return false;
    prev_a = a;
    prev_b = b;
    if (edges.size() <= b) edges.resize(static_cast<size_t>(b) + 1);
    edges[a].push_back(b);
    edges[b].push_back(a);
  }
  edges_ = std::move(edges);
  retraction_enabled_ = true;
  return true;
}

size_t ClusterIndex::ApproxMemoryBytes() const {
  const size_t chunk_bytes =
      AtomicU32Chunks::kChunkSize * sizeof(std::atomic<uint32_t>);
  const size_t directory_bytes =
      AtomicU32Chunks::kMaxChunks * sizeof(std::atomic<std::atomic<uint32_t>*>);
  const size_t chunks = parent_.allocated_chunks() +
                        next_.allocated_chunks() +
                        csize_.allocated_chunks() + cmin_.allocated_chunks();
  size_t edge_bytes = edges_.capacity() * sizeof(std::vector<ProfileId>);
  for (const auto& list : edges_) {
    edge_bytes += list.capacity() * sizeof(ProfileId);
  }
  return 4 * directory_bytes + chunks * chunk_bytes + edge_bytes;
}

}  // namespace serve
}  // namespace pier
