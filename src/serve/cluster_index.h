// Online entity-cluster serving index: the production query behind
// user-facing dedup is "which entity cluster does this record belong
// to *right now*?". ClusterIndex maintains the connected components of
// the match graph incrementally -- union-find with path compression
// and union-by-size, fed one match verdict at a time -- and answers
// ClusterOf(profile_id) queries *concurrently with ingest*.
//
// Reader/writer protocol (seqlock):
//  * Writers (TrackUpTo from the ingest path, AddMatch from the match
//    worker) serialize on an internal mutex and bump a version counter
//    to odd before mutating and back to even after. Writers never wait
//    for readers, so queries can never block the ingest hot path.
//  * Readers (ClusterOf / ClusterIdOf / ClusterSizeOf) are lock-free:
//    they snapshot the version, walk the structure through atomic
//    loads only (no path compression on the read side), and retry when
//    the version moved or was odd. Every cell is a std::atomic, so a
//    torn read is impossible and a concurrent mutation costs at most a
//    retry.
//  * Growth publishes fully-initialized entries before releasing the
//    size counter, and storage is chunked (stable addresses, like
//    ProfileStore), so readers never observe uninitialized cells and
//    no reallocation can pull memory out from under a reader.
//
// Cluster ids are *canonical*: the id of a cluster is the smallest
// ProfileId among its members. That makes query answers independent of
// merge order and internal tree shape -- two runs that discovered the
// same matches in different orders serve identical answers -- and is
// also what makes the snapshot encoding canonical (same partition,
// same bytes), so Snapshot -> Restore -> Snapshot round-trips
// byte-identically and a restored index serves exactly the answers the
// original did.
//
// Member lists use the classic circular-successor trick: every profile
// carries a `next member` pointer forming one cycle per cluster, and
// merging two clusters is a single swap of the two roots' successors
// (O(1), no allocation). A reader materializes a member list by
// walking the cycle under the seqlock.
//
// Retraction (mutable streams): union-find cannot un-merge, so with
// EnableRetraction() the index additionally keeps the match edges
// (writer-side adjacency, never touched by readers). RemoveProfile
// tombstones a record -- readers report absence -- and re-resolves the
// surviving members of its cluster by reconnecting them over the
// remaining edges inside one seqlock window, so stale merges through
// the deleted record dissolve. Dead cells hold the kDeadParent
// sentinel in parent_; reader walks treat any out-of-universe parent
// as "dead or torn" and either answer absence (version unchanged) or
// retry.

#ifndef PIER_SERVE_CLUSTER_INDEX_H_
#define PIER_SERVE_CLUSTER_INDEX_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "model/types.h"
#include "obs/metrics.h"

namespace pier {
namespace serve {

// One query answer: the canonical cluster id (smallest member id) and
// the full member list in ascending id order. Profiles the index has
// never seen are reported as singletons.
struct ClusterView {
  ProfileId cluster_id = kInvalidProfileId;
  std::vector<ProfileId> members;
};

class ClusterIndex {
 public:
  ClusterIndex() = default;
  ClusterIndex(const ClusterIndex&) = delete;
  ClusterIndex& operator=(const ClusterIndex&) = delete;

  // Registers `serve.*` metrics (queries, unions, merges, cluster
  // gauges). Call once at construction time, before concurrent use.
  void InstrumentWith(obs::MetricsRegistry* registry);

  // Opts into retraction support: match edges are recorded so
  // RemoveProfile can re-resolve survivors. Must be called before the
  // first match is recorded (edges recorded only from then on).
  void EnableRetraction();
  bool retraction_enabled() const { return retraction_enabled_; }

  // Writer: grows the universe so ids [0, n) are tracked (as
  // singletons until matched). Called from the ingest path; safe
  // against concurrent readers and the AddMatch writer.
  void TrackUpTo(size_t n);

  // Writer: records that a and b refer to the same entity, merging
  // their clusters. Ids beyond the tracked universe are tracked first.
  // Returns true when the edge merged two previously distinct
  // clusters. Safe against concurrent readers; writers serialize.
  bool AddMatch(ProfileId a, ProfileId b);

  // Writer: folds a batch of match edges in one pass, amortizing the
  // writer mutex and seqlock version bumps across up to
  // kMaxUnionsPerWindow unions per write window (the sharded
  // combiner's hot path). Readers retry at most once per window
  // instead of once per edge, and windows stay short enough that the
  // serving p99 budget holds. Returns the number of edges that merged
  // two previously distinct clusters. Equivalent to calling AddMatch
  // per pair -- canonical cluster ids make the result order-invariant.
  size_t AddMatches(const std::pair<ProfileId, ProfileId>* pairs,
                    size_t count);

  // Writer: tombstones a deleted record. Its match edges are dropped
  // and the surviving members of its cluster are re-resolved over the
  // remaining edges (they may split into several clusters). Queries on
  // the id then report absence until ReviveAsSingleton. Requires
  // EnableRetraction; returns false when the id is untracked or
  // already removed.
  bool RemoveProfile(ProfileId id);

  // Writer: re-admits a previously removed id as a singleton (the
  // record was corrected and re-ingested). Requires EnableRetraction
  // and a currently removed id.
  void ReviveAsSingleton(ProfileId id);

  // Reader: true when `id` is tracked but was removed.
  bool IsDeleted(ProfileId id) const;

  // Reader: canonical cluster id (smallest member id) plus the member
  // list of the cluster containing `id`, sorted ascending. Never
  // blocks writers. A removed id reports absence: cluster_id ==
  // kInvalidProfileId and an empty member list.
  ClusterView ClusterOf(ProfileId id) const;

  // Reader: just the canonical cluster id (the cheap point query);
  // kInvalidProfileId for a removed id.
  ProfileId ClusterIdOf(ProfileId id) const;

  // Reader: member count of the cluster containing `id`; 0 for a
  // removed id.
  size_t ClusterSizeOf(ProfileId id) const;

  // Profiles tracked so far (monotone; readers see a published size).
  size_t universe_size() const {
    return size_.load(std::memory_order_acquire);
  }

  // Clusters with at least two members / merges performed so far.
  // Writer-consistent (read under the same seqlock as queries).
  size_t NumNonTrivialClusters() const;
  uint64_t merges() const { return merges_.load(std::memory_order_relaxed); }

  // Serializes the partition in canonical form: universe size followed
  // by every profile's canonical cluster id (kInvalidProfileId for
  // removed ids). With retraction enabled, the match-edge list follows
  // (sorted (a, b) pairs with a < b) so a restored index can keep
  // re-resolving removals. Same partition + edges, same bytes,
  // regardless of the merge order that produced it. Excludes
  // concurrent writers for the duration.
  void Snapshot(std::ostream& out) const;

  // Restores a Snapshot payload into this index, which must be empty
  // (universe_size() == 0). Returns false on a malformed payload
  // (decode failure, cluster id that is not the minimum of its
  // cluster) and leaves the index unusable for anything but
  // destruction in that case. Not thread-safe (restore precedes
  // concurrent use by contract, like every other component).
  bool Restore(std::istream& in);

  // Heap footprint estimate for the persist.state_bytes.* gauges.
  size_t ApproxMemoryBytes() const;

 private:
  // Upper bound on unions folded inside one seqlock write window by
  // AddMatches: large enough to amortize the version churn, small
  // enough that a concurrent reader's retry wait stays microseconds.
  static constexpr size_t kMaxUnionsPerWindow = 32;

  // parent_ sentinel for removed (tombstoned) ids. Distinct from
  // kInvalidProfileId (used in snapshots and query answers) so a dead
  // cell can never be mistaken for a live maximal id.
  static constexpr uint32_t kDeadParent = 0xfffffffeu;

  // Chunked array of atomic u32 cells with stable addresses: the chunk
  // directory is a fixed array of atomic pointers, so publishing a new
  // chunk never moves memory a reader may be traversing.
  class AtomicU32Chunks {
   public:
    static constexpr size_t kChunkShift = 16;  // 64Ki cells per chunk
    static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
    static constexpr size_t kChunkMask = kChunkSize - 1;
    static constexpr size_t kMaxChunks = size_t{1} << 15;  // 2^31 cells

    AtomicU32Chunks()
        : chunks_(new std::atomic<std::atomic<uint32_t>*>[kMaxChunks]()) {}
    ~AtomicU32Chunks() {
      for (size_t i = 0; i < kMaxChunks; ++i) {
        std::atomic<uint32_t>* chunk =
            chunks_[i].load(std::memory_order_relaxed);
        if (chunk == nullptr) break;  // chunks are allocated densely
        delete[] chunk;
      }
    }
    AtomicU32Chunks(const AtomicU32Chunks&) = delete;
    AtomicU32Chunks& operator=(const AtomicU32Chunks&) = delete;

    // Writer: ensures cell `i` exists (allocating its chunk).
    void EnsureChunkFor(size_t i);

    uint32_t Load(size_t i, std::memory_order order) const {
      return chunks_[i >> kChunkShift]
          .load(std::memory_order_acquire)[i & kChunkMask]
          .load(order);
    }
    void Store(size_t i, uint32_t v, std::memory_order order) {
      chunks_[i >> kChunkShift]
          .load(std::memory_order_acquire)[i & kChunkMask]
          .store(v, order);
    }

    size_t allocated_chunks() const {
      return allocated_.load(std::memory_order_relaxed);
    }

   private:
    std::unique_ptr<std::atomic<std::atomic<uint32_t>*>[]> chunks_;
    std::atomic<size_t> allocated_{0};
  };

  // Writer-side find with path compression (holds mutex_, inside the
  // odd-version window, so compression stores are invisible to a
  // reader that will pass version validation).
  ProfileId FindRootCompress(ProfileId id);
  // One union step; caller holds writer_mutex_ inside an odd-version
  // window with both ids already tracked. Returns true on a merge.
  // With retraction enabled, also records the match edge and ignores
  // pairs with a removed endpoint.
  bool UnionLocked(ProfileId a, ProfileId b);
  // Reader-side find: pure walk, no mutation. Returns kDeadParent when
  // the walk hits a removed (or torn, mid-mutation) cell.
  ProfileId FindRootReadOnly(ProfileId id) const;
  // Grows to n tracked ids; caller holds mutex_.
  void TrackUpToLocked(size_t n);
  // Records an undirected match edge (dedup-checked); caller holds
  // writer_mutex_ and retraction is enabled.
  void RecordEdgeLocked(ProfileId a, ProfileId b);
  // Rewrites one cluster (flat parents to the min-id root, ascending
  // member cycle, root size/min); caller holds writer_mutex_ inside an
  // odd-version window. `members` must be sorted ascending.
  void WriteClusterLocked(const std::vector<ProfileId>& members);

  // Seqlock: odd while a writer mutates. Readers validate that the
  // version was even and unchanged around their walk.
  std::atomic<uint64_t> version_{0};
  mutable std::mutex writer_mutex_;

  AtomicU32Chunks parent_;  // parent_[i] == i at roots
  AtomicU32Chunks next_;    // circular successor within the cluster
  AtomicU32Chunks csize_;   // member count, valid at roots
  AtomicU32Chunks cmin_;    // smallest member id, valid at roots
  std::atomic<size_t> size_{0};

  std::atomic<uint64_t> merges_{0};
  size_t non_trivial_clusters_ = 0;  // guarded by writer_mutex_

  // Retraction state. edges_ is writer-side only (readers never touch
  // it), so plain vectors are fine; adjacency is symmetric.
  bool retraction_enabled_ = false;
  std::vector<std::vector<ProfileId>> edges_;  // guarded by writer_mutex_

  // `serve.*` metrics; all null when un-instrumented.
  obs::Counter* queries_metric_ = nullptr;
  obs::Counter* unions_metric_ = nullptr;
  obs::Counter* merges_metric_ = nullptr;
  obs::Counter* removals_metric_ = nullptr;
  obs::Counter* query_retries_metric_ = nullptr;
  obs::Histogram* query_ns_metric_ = nullptr;
  obs::Gauge* universe_metric_ = nullptr;
  obs::Gauge* clusters_metric_ = nullptr;
};

}  // namespace serve
}  // namespace pier

#endif  // PIER_SERVE_CLUSTER_INDEX_H_
