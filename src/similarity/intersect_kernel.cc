#include "similarity/intersect_kernel.h"

#include <algorithm>

#if defined(PIER_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#define PIER_INTERSECT_AVX2 1
#endif

namespace pier {

namespace {

// Merge step over the scalar tails (and the whole input on portable
// builds). Written as the classic three-way merge: GCC/Clang compile
// the advance choice to conditional moves here, which measured faster
// than hand-written arithmetic advances (BM_IntersectKernel vs
// BM_IntersectBranchyMerge).
size_t ScalarIntersection(const TokenId* a, size_t na, const TokenId* b,
                          size_t nb) {
  size_t i = 0;
  size_t j = 0;
  size_t common = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

#ifdef PIER_INTERSECT_AVX2

// Counts matches of the leading 8-blocks and advances i/j past every
// block whose maximum cannot match anything further. Returns matches
// found in this step.
inline size_t BlockStep(const TokenId* a, const TokenId* b, size_t* i,
                        size_t* j) {
  const __m256i va =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + *i));
  __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + *j));
  const __m256i rotate = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  // All 8x8 lane pairs via 8 equality tests over cyclic rotations of
  // vb. Each a-lane matches at most one b element (ids are unique), so
  // the accumulated per-lane mask popcount is the exact match count.
  __m256i match = _mm256_cmpeq_epi32(va, vb);
  for (int r = 1; r < 8; ++r) {
    vb = _mm256_permutevar8x32_epi32(vb, rotate);
    match = _mm256_or_si256(match, _mm256_cmpeq_epi32(va, vb));
  }
  const unsigned mask = static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_castsi256_ps(match)));
  const TokenId amax = a[*i + 7];
  const TokenId bmax = b[*j + 7];
  // The side whose max is <= the other side's max is exhausted: every
  // later element of the other list exceeds its max.
  *i += amax <= bmax ? 8 : 0;
  *j += bmax <= amax ? 8 : 0;
  return static_cast<size_t>(__builtin_popcount(mask));
}

#endif  // PIER_INTERSECT_AVX2

}  // namespace

bool IntersectKernelUsesSimd() {
#ifdef PIER_INTERSECT_AVX2
  return true;
#else
  return false;
#endif
}

size_t SortedIntersectionSize(std::span<const TokenId> a,
                              std::span<const TokenId> b) {
  const TokenId* pa = a.data();
  const TokenId* pb = b.data();
  const size_t na = a.size();
  const size_t nb = b.size();
  size_t i = 0;
  size_t j = 0;
  size_t common = 0;
#ifdef PIER_INTERSECT_AVX2
  while (i + 8 <= na && j + 8 <= nb) {
    common += BlockStep(pa, pb, &i, &j);
  }
#endif
  return common + ScalarIntersection(pa + i, na - i, pb + j, nb - j);
}

bool SortedIntersectionAtLeast(std::span<const TokenId> a,
                               std::span<const TokenId> b, size_t required) {
  if (required == 0) return true;
  const TokenId* pa = a.data();
  const TokenId* pb = b.data();
  const size_t na = a.size();
  const size_t nb = b.size();
  if (required > std::min(na, nb)) return false;
  size_t i = 0;
  size_t j = 0;
  size_t common = 0;
#ifdef PIER_INTERSECT_AVX2
  while (i + 8 <= na && j + 8 <= nb) {
    common += BlockStep(pa, pb, &i, &j);
    if (common >= required) return true;
    // Not even a full remaining overlap can reach the bar.
    if (common + std::min(na - i, nb - j) < required) return false;
  }
#endif
  while (i < na && j < nb) {
    // Running upper bound: even matching every remaining element of
    // the shorter tail cannot reach `required`.
    if (common + std::min(na - i, nb - j) < required) return false;
    if (pa[i] < pb[j]) {
      ++i;
    } else if (pb[j] < pa[i]) {
      ++j;
    } else {
      ++common;
      if (common >= required) return true;
      ++i;
      ++j;
    }
  }
  return common >= required;
}

}  // namespace pier
