// Batched intersection kernel for sorted, deduplicated TokenId
// arrays -- the innermost loop of the JS/COS verdict path and of the
// CBS pair-weight oracle, executed once per candidate comparison.
//
// Two implementations share this interface:
//
//  - Portable (always built): the classic two-pointer merge, which
//    GCC/Clang compile to conditional moves -- measured faster than a
//    hand-written arithmetic-advance variant, so the portable build
//    keeps exactly the code shape the call sites had before.
//  - AVX2 (PIER_SIMD=ON at configure time, x86-64 only): blocks of 8
//    ids from each side are compared all-against-all with 8 vector
//    equality tests over cyclic rotations, then whichever block has
//    the smaller maximum advances. Exact same counts as the scalar
//    merge -- ids within one profile are unique, so the match mask
//    popcount cannot double-count.
//
// Both paths return identical results for all inputs (the SIMD path
// is a pure speedup, asserted by the kernel equivalence tests), so
// verdict streams are byte-identical whichever one a build selects.

#ifndef PIER_SIMILARITY_INTERSECT_KERNEL_H_
#define PIER_SIMILARITY_INTERSECT_KERNEL_H_

#include <cstddef>
#include <span>

#include "model/types.h"

namespace pier {

// Number of common elements of `a` and `b`, which must each be sorted
// ascending with no duplicates (the invariant TokenizeProfile
// establishes for profile token sets).
size_t SortedIntersectionSize(std::span<const TokenId> a,
                              std::span<const TokenId> b);

// True iff the intersection has at least `required` elements, with
// early exit in both directions: returns as soon as the count reaches
// `required` or as soon as the remaining elements cannot reach it.
bool SortedIntersectionAtLeast(std::span<const TokenId> a,
                               std::span<const TokenId> b, size_t required);

// True when this build executes the AVX2 path (diagnostics/benches).
bool IntersectKernelUsesSimd();

}  // namespace pier

#endif  // PIER_SIMILARITY_INTERSECT_KERNEL_H_
