#include "similarity/matcher.h"

#include <string_view>

#include "similarity/similarity_kernels.h"
#include "similarity/string_distance.h"

namespace pier {

double JaccardMatcher::Similarity(const EntityProfile& a,
                                  const EntityProfile& b) const {
  return JaccardSimilarity(a.tokens(), b.tokens());
}

bool JaccardMatcher::Verdict(const EntityProfile& a, const EntityProfile& b,
                             SimilarityScratch*) const {
  return JaccardVerdict(a.tokens(), b.tokens(), threshold());
}

double EditDistanceMatcher::Similarity(const EntityProfile& a,
                                       const EntityProfile& b) const {
  const std::string_view ta =
      a.flat_text().substr(0, max_text_length_);
  const std::string_view tb =
      b.flat_text().substr(0, max_text_length_);
  return NormalizedEditSimilarity(ta, tb);
}

double EditDistanceMatcher::SimilarityKernel(const EntityProfile& a,
                                             const EntityProfile& b,
                                             SimilarityScratch* scratch) const {
  const std::string_view ta =
      a.flat_text().substr(0, max_text_length_);
  const std::string_view tb =
      b.flat_text().substr(0, max_text_length_);
  if (ta == tb) return 1.0;  // covers the both-empty case
  const size_t max_len = std::max(ta.size(), tb.size());
  const size_t dist = MyersEditDistance(ta, tb, scratch);
  // Exactly the expression NormalizedEditSimilarity() evaluates.
  return 1.0 - static_cast<double>(dist) / static_cast<double>(max_len);
}

bool EditDistanceMatcher::Verdict(const EntityProfile& a,
                                  const EntityProfile& b,
                                  SimilarityScratch* scratch) const {
  const std::string_view ta =
      a.flat_text().substr(0, max_text_length_);
  const std::string_view tb =
      b.flat_text().substr(0, max_text_length_);
  if (ta == tb) return 1.0 >= threshold();
  const size_t max_len = std::max(ta.size(), tb.size());
  const ptrdiff_t k = MaxEditDistanceForThreshold(threshold(), max_len);
  if (k < 0) return false;  // threshold > 1: nothing can match
  const size_t max_dist = static_cast<size_t>(k);
  if (max_dist >= max_len) return true;  // even the worst distance passes
  // Length-difference lower bound: dist >= |len(a) - len(b)|.
  const size_t diff =
      ta.size() >= tb.size() ? ta.size() - tb.size() : tb.size() - ta.size();
  if (diff > max_dist) return false;
  return MyersEditDistanceBounded(ta, tb, max_dist, scratch) <= max_dist;
}

double CosineMatcher::Similarity(const EntityProfile& a,
                                 const EntityProfile& b) const {
  return CosineSimilarity(a.tokens(), b.tokens());
}

bool CosineMatcher::Verdict(const EntityProfile& a, const EntityProfile& b,
                            SimilarityScratch*) const {
  return CosineVerdict(a.tokens(), b.tokens(), threshold());
}

std::unique_ptr<Matcher> MakeMatcher(const std::string& name,
                                     double threshold) {
  if (name == "JS") return std::make_unique<JaccardMatcher>(threshold);
  if (name == "ED") return std::make_unique<EditDistanceMatcher>(threshold);
  if (name == "COS") return std::make_unique<CosineMatcher>(threshold);
  return nullptr;
}

const char* KnownMatcherNames() { return "JS, ED, COS"; }

}  // namespace pier
