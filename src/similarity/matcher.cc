#include "similarity/matcher.h"

#include <string_view>

#include "similarity/string_distance.h"

namespace pier {

double JaccardMatcher::Similarity(const EntityProfile& a,
                                  const EntityProfile& b) const {
  return JaccardSimilarity(a.tokens, b.tokens);
}

double EditDistanceMatcher::Similarity(const EntityProfile& a,
                                       const EntityProfile& b) const {
  const std::string_view ta =
      std::string_view(a.flat_text).substr(0, max_text_length_);
  const std::string_view tb =
      std::string_view(b.flat_text).substr(0, max_text_length_);
  return NormalizedEditSimilarity(ta, tb);
}

double CosineMatcher::Similarity(const EntityProfile& a,
                                 const EntityProfile& b) const {
  return CosineSimilarity(a.tokens, b.tokens);
}

std::unique_ptr<Matcher> MakeMatcher(const std::string& name,
                                     double threshold) {
  if (name == "JS") return std::make_unique<JaccardMatcher>(threshold);
  if (name == "ED") return std::make_unique<EditDistanceMatcher>(threshold);
  if (name == "COS") return std::make_unique<CosineMatcher>(threshold);
  return nullptr;
}

}  // namespace pier
