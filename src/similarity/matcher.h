// Match functions M (Section 2.1): given two profiles, compute a
// similarity and classify the pair as match/non-match against a
// threshold. The paper evaluates two pipeline configurations: a cheap
// matcher (Jaccard over token sets, "JS") and an expensive matcher
// (edit distance over the flat profile text, "ED"); the PIER
// algorithms adapt K to whichever is plugged in.
//
// Two execution tiers per matcher (see similarity_kernels.h):
//  - SimilarityKernel(): the exact score via the kernel layer (Myers
//    bit-parallel edit distance for ED); bit-identical doubles to
//    Similarity(), which stays the naive reference.
//  - Verdict(): answers only "Similarity(a, b) >= threshold()?". For
//    ED the threshold is converted into a maximum edit distance and a
//    bounded kernel runs with early abandon; for JS/COS size filters
//    reject most pairs before any token is touched. Guaranteed to
//    agree with Matches(a, b) on every input.
//
// CostUnits() reports a deterministic, input-dependent work estimate
// used by the ModeledCostMeter so simulations are reproducible; the
// MeasuredCostMeter ignores it and uses wall time. It deliberately
// models the naive cost even on the kernel paths, so modeled-cost
// simulations stay comparable across executor configurations.

#ifndef PIER_SIMILARITY_MATCHER_H_
#define PIER_SIMILARITY_MATCHER_H_

#include <algorithm>
#include <memory>
#include <string>

#include "model/entity_profile.h"

namespace pier {

struct SimilarityScratch;

class Matcher {
 public:
  virtual ~Matcher() = default;

  // Similarity in [0, 1]; higher means more similar. This is the
  // naive reference implementation, kept as the equivalence oracle
  // for the kernel paths below.
  virtual double Similarity(const EntityProfile& a,
                            const EntityProfile& b) const = 0;

  // Kernel-accelerated exact score: returns the same double as
  // Similarity(a, b), using `scratch` to avoid per-call allocation.
  // Defaults to the reference implementation.
  virtual double SimilarityKernel(const EntityProfile& a,
                                  const EntityProfile& b,
                                  SimilarityScratch* scratch) const {
    (void)scratch;
    return Similarity(a, b);
  }

  // Threshold-aware verdict: exactly Matches(a, b), but free to skip
  // the score computation (bounded kernels, size filters, early
  // abandon). Defaults to thresholding SimilarityKernel().
  virtual bool Verdict(const EntityProfile& a, const EntityProfile& b,
                       SimilarityScratch* scratch) const {
    return SimilarityKernel(a, b, scratch) >= threshold_;
  }

  // Deterministic work estimate for computing Similarity(a, b).
  virtual uint64_t CostUnits(const EntityProfile& a,
                             const EntityProfile& b) const = 0;

  virtual const char* name() const = 0;

  double threshold() const { return threshold_; }

  bool Matches(const EntityProfile& a, const EntityProfile& b) const {
    return Similarity(a, b) >= threshold_;
  }

 protected:
  explicit Matcher(double threshold) : threshold_(threshold) {}

 private:
  double threshold_;
};

// "JS": Jaccard similarity over the schema-agnostic token sets. Cheap:
// linear in the token counts.
class JaccardMatcher : public Matcher {
 public:
  explicit JaccardMatcher(double threshold = 0.5) : Matcher(threshold) {}

  double Similarity(const EntityProfile& a,
                    const EntityProfile& b) const override;
  bool Verdict(const EntityProfile& a, const EntityProfile& b,
               SimilarityScratch* scratch) const override;
  uint64_t CostUnits(const EntityProfile& a,
                     const EntityProfile& b) const override {
    return a.tokens().size() + b.tokens().size() + 1;
  }
  const char* name() const override { return "JS"; }
};

// "ED": normalized Levenshtein similarity over the flat profile text.
// Expensive: quadratic in the text lengths (capped at max_text_length
// to guard against degenerate profiles).
class EditDistanceMatcher : public Matcher {
 public:
  explicit EditDistanceMatcher(double threshold = 0.8,
                               size_t max_text_length = 512)
      : Matcher(threshold), max_text_length_(max_text_length) {}

  double Similarity(const EntityProfile& a,
                    const EntityProfile& b) const override;
  double SimilarityKernel(const EntityProfile& a, const EntityProfile& b,
                          SimilarityScratch* scratch) const override;
  bool Verdict(const EntityProfile& a, const EntityProfile& b,
               SimilarityScratch* scratch) const override;
  uint64_t CostUnits(const EntityProfile& a,
                     const EntityProfile& b) const override {
    const uint64_t la = std::min(a.flat_text().size(), max_text_length_);
    const uint64_t lb = std::min(b.flat_text().size(), max_text_length_);
    return la * lb + 1;
  }
  const char* name() const override { return "ED"; }

 private:
  size_t max_text_length_;
};

// Set cosine over token sets; same cost class as Jaccard. Provided as
// an extension point beyond the paper's two configurations.
class CosineMatcher : public Matcher {
 public:
  explicit CosineMatcher(double threshold = 0.6) : Matcher(threshold) {}

  double Similarity(const EntityProfile& a,
                    const EntityProfile& b) const override;
  bool Verdict(const EntityProfile& a, const EntityProfile& b,
               SimilarityScratch* scratch) const override;
  uint64_t CostUnits(const EntityProfile& a,
                     const EntityProfile& b) const override {
    return a.tokens().size() + b.tokens().size() + 1;
  }
  const char* name() const override { return "COS"; }
};

// Factory by configuration name ("JS", "ED", "COS"); returns nullptr
// for unknown names.
std::unique_ptr<Matcher> MakeMatcher(const std::string& name,
                                     double threshold);

// Comma-separated list of the names MakeMatcher accepts, for
// diagnostics ("JS, ED, COS").
const char* KnownMatcherNames();

}  // namespace pier

#endif  // PIER_SIMILARITY_MATCHER_H_
