#include "similarity/parallel_executor.h"

#include <algorithm>
#include <future>
#include <utility>

#include "obs/scoped_timer.h"
#include "similarity/similarity_kernels.h"
#include "util/check.h"

namespace pier {

namespace {

// Matches batch[begin, end) into verdicts[begin, end). `resolve` maps
// a ProfileId to its profile; it is called from worker threads and
// must be safe for concurrent reads. One SimilarityScratch per range
// (= per worker shard): the kernels allocate only while it warms up.
template <typename Resolve>
void MatchRange(const Matcher& matcher, const std::vector<Comparison>& batch,
                size_t begin, size_t end, const Resolve& resolve,
                MatchVerdict* verdicts, bool verdict_only) {
  SimilarityScratch scratch;
  for (size_t i = begin; i < end; ++i) {
    const EntityProfile& a = resolve(batch[i].x);
    const EntityProfile& b = resolve(batch[i].y);
    MatchVerdict& v = verdicts[i];
    if (verdict_only) {
      v.is_match = matcher.Verdict(a, b, &scratch);
    } else {
      v.similarity = matcher.SimilarityKernel(a, b, &scratch);
      v.is_match = v.similarity >= matcher.threshold();
    }
    v.cost_units = matcher.CostUnits(a, b);
  }
}

template <typename Resolve>
std::vector<MatchVerdict> ExecuteImpl(const Matcher& matcher, ThreadPool* pool,
                                      size_t min_shard,
                                      const std::vector<Comparison>& batch,
                                      const Resolve& resolve,
                                      bool verdict_only) {
  std::vector<MatchVerdict> verdicts(batch.size());
  const size_t n = batch.size();
  if (n == 0) return verdicts;

  size_t shards = pool == nullptr ? 1 : pool->size();
  shards = std::min(shards, std::max<size_t>(1, n / min_shard));
  if (shards <= 1) {
    MatchRange(matcher, batch, 0, n, resolve, verdicts.data(), verdict_only);
    return verdicts;
  }

  // Contiguous even sharding; shard s covers [s*per + min(s, extra),
  // ...). Each worker writes only its own slice of `verdicts`, so the
  // emission order is preserved by construction.
  const size_t per = n / shards;
  const size_t extra = n % shards;
  std::vector<std::future<void>> pending;
  pending.reserve(shards - 1);
  size_t begin = 0;
  size_t first_end = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t end = begin + per + (s < extra ? 1 : 0);
    if (s == 0) {
      first_end = end;  // shard 0 runs on the calling thread below
    } else {
      pending.push_back(pool->Submit([&matcher, &batch, begin, end, &resolve,
                                      verdict_only, out = verdicts.data()] {
        MatchRange(matcher, batch, begin, end, resolve, out, verdict_only);
      }));
    }
    begin = end;
  }
  // Every shard must be joined before unwinding: the workers hold
  // pointers into `verdicts`. The first failure (inline shard or pool
  // task) is rethrown once all shards have finished.
  std::exception_ptr first_error;
  try {
    MatchRange(matcher, batch, 0, first_end, resolve, verdicts.data(),
               verdict_only);
  } catch (...) {
    first_error = std::current_exception();
  }
  for (std::future<void>& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return verdicts;
}

}  // namespace

ParallelMatchExecutor::ParallelMatchExecutor(const Matcher* matcher,
                                             size_t num_threads,
                                             obs::MetricsRegistry* metrics)
    : matcher_(matcher), num_threads_(std::max<size_t>(1, num_threads)) {
  PIER_CHECK(matcher_ != nullptr);
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
  if (metrics != nullptr) {
    batches_metric_ = metrics->GetCounter("executor.batches");
    comparisons_metric_ = metrics->GetCounter("executor.comparisons");
    sharded_batches_metric_ = metrics->GetCounter("executor.sharded_batches");
    verdict_batches_metric_ = metrics->GetCounter("executor.verdict_batches");
    batch_ns_metric_ = metrics->GetHistogram("executor.batch_ns");
  }
}

ParallelMatchExecutor::~ParallelMatchExecutor() = default;

void ParallelMatchExecutor::RecordBatchMetrics(size_t batch_size,
                                               bool verdict_only) const {
  obs::CounterAdd(batches_metric_);
  obs::CounterAdd(comparisons_metric_, batch_size);
  if (verdict_only) obs::CounterAdd(verdict_batches_metric_);
  if (pool_ != nullptr && batch_size >= 2 * kMinShardSize) {
    obs::CounterAdd(sharded_batches_metric_);
  }
}

std::vector<MatchVerdict> ParallelMatchExecutor::Execute(
    const std::vector<Comparison>& batch, const ProfileStore& profiles) const {
  const auto resolve = [&profiles](ProfileId id) -> const EntityProfile& {
    return profiles.Get(id);
  };
  const obs::ScopedTimer timer(batch_ns_metric_);
  RecordBatchMetrics(batch.size(), /*verdict_only=*/false);
  return ExecuteImpl(*matcher_, pool_.get(), kMinShardSize, batch, resolve,
                     /*verdict_only=*/false);
}

std::vector<MatchVerdict> ParallelMatchExecutor::Execute(
    const std::vector<Comparison>& batch, const ProfileLookup& lookup) const {
  PIER_CHECK(lookup != nullptr);
  const obs::ScopedTimer timer(batch_ns_metric_);
  RecordBatchMetrics(batch.size(), /*verdict_only=*/false);
  return ExecuteImpl(*matcher_, pool_.get(), kMinShardSize, batch, lookup,
                     /*verdict_only=*/false);
}

std::vector<MatchVerdict> ParallelMatchExecutor::ExecuteVerdicts(
    const std::vector<Comparison>& batch, const ProfileStore& profiles) const {
  const auto resolve = [&profiles](ProfileId id) -> const EntityProfile& {
    return profiles.Get(id);
  };
  const obs::ScopedTimer timer(batch_ns_metric_);
  RecordBatchMetrics(batch.size(), /*verdict_only=*/true);
  return ExecuteImpl(*matcher_, pool_.get(), kMinShardSize, batch, resolve,
                     /*verdict_only=*/true);
}

std::vector<MatchVerdict> ParallelMatchExecutor::ExecuteVerdicts(
    const std::vector<Comparison>& batch, const ProfileLookup& lookup) const {
  PIER_CHECK(lookup != nullptr);
  const obs::ScopedTimer timer(batch_ns_metric_);
  RecordBatchMetrics(batch.size(), /*verdict_only=*/true);
  return ExecuteImpl(*matcher_, pool_.get(), kMinShardSize, batch, lookup,
                     /*verdict_only=*/true);
}

}  // namespace pier
