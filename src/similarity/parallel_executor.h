// Parallel match-execution engine: shards a batch of prioritized
// comparisons across a fixed ThreadPool, runs the matcher kernels
// concurrently, and returns the verdicts **in emission order** — the
// verdict at index i always corresponds to batch[i], regardless of
// thread count. Downstream consumers (progressive-curve accounting,
// match callbacks) therefore see a bit-identical stream to the
// sequential path, so PC-over-time curves do not depend on the number
// of execution threads.
//
// Two batched paths, each with one SimilarityScratch per worker shard
// (no per-comparison allocation):
//  - Execute(): exact scores via Matcher::SimilarityKernel — the same
//    doubles as the naive Matcher::Similarity, for consumers that
//    record raw scores.
//  - ExecuteVerdicts(): threshold-only fast path via Matcher::Verdict
//    (bounded edit-distance kernels, size-filtered set similarity);
//    `similarity` is left 0.0 in the result. The is_match stream is
//    guaranteed identical to Execute()'s.
//
// Profile reads are lock-free: the executor only needs `const
// EntityProfile&` access, and the chunked ProfileStore guarantees
// stable addresses under concurrent ingest (see model/profile_store.h).
//
// With num_threads <= 1 (or batches too small to be worth sharding)
// the executor runs inline on the calling thread and spawns nothing.

#ifndef PIER_SIMILARITY_PARALLEL_EXECUTOR_H_
#define PIER_SIMILARITY_PARALLEL_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "model/comparison.h"
#include "model/entity_profile.h"
#include "model/profile_store.h"
#include "obs/metrics.h"
#include "similarity/matcher.h"
#include "util/thread_pool.h"

namespace pier {

// The outcome of matching one comparison. `cost_units` is the
// matcher's deterministic work estimate (fed to the modeled cost
// meter); `similarity` the raw score (only populated by the score
// path — ExecuteVerdicts() leaves it 0.0); `is_match` the thresholded
// classification.
struct MatchVerdict {
  bool is_match = false;
  double similarity = 0.0;
  uint64_t cost_units = 0;
};

class ParallelMatchExecutor {
 public:
  using ProfileLookup = std::function<const EntityProfile&(ProfileId)>;

  // `matcher` must outlive this object. `num_threads` <= 1 selects the
  // inline (sequential) path; otherwise a dedicated pool of
  // `num_threads` workers is spawned for the executor's lifetime.
  // `metrics`, when non-null, receives the executor's `executor.*`
  // stage metrics (batch counts/latency, sharding decisions).
  ParallelMatchExecutor(const Matcher* matcher, size_t num_threads,
                        obs::MetricsRegistry* metrics = nullptr);
  ~ParallelMatchExecutor();

  ParallelMatchExecutor(const ParallelMatchExecutor&) = delete;
  ParallelMatchExecutor& operator=(const ParallelMatchExecutor&) = delete;

  size_t num_threads() const { return num_threads_; }
  const Matcher& matcher() const { return *matcher_; }

  // Matches every comparison in `batch`; the result has batch.size()
  // entries with result[i] the verdict for batch[i] (deterministic
  // emission order). Profiles are resolved through `profiles` /
  // `lookup`, which must stay valid and readable for already-ingested
  // ids for the duration of the call.
  std::vector<MatchVerdict> Execute(const std::vector<Comparison>& batch,
                                    const ProfileStore& profiles) const;
  std::vector<MatchVerdict> Execute(const std::vector<Comparison>& batch,
                                    const ProfileLookup& lookup) const;

  // Verdict-only fast path: same emission-order guarantees, same
  // is_match / cost_units values as Execute(), but runs
  // Matcher::Verdict so the raw score is never computed
  // (result[i].similarity stays 0.0). Use when the consumer only
  // needs the classification — the stream simulator and realtime
  // pipeline both do.
  std::vector<MatchVerdict> ExecuteVerdicts(
      const std::vector<Comparison>& batch,
      const ProfileStore& profiles) const;
  std::vector<MatchVerdict> ExecuteVerdicts(
      const std::vector<Comparison>& batch,
      const ProfileLookup& lookup) const;

 private:
  // Batches smaller than kMinShardSize * 2 are matched inline: the
  // pool handoff costs more than the matching itself.
  static constexpr size_t kMinShardSize = 32;

  const Matcher* matcher_;
  size_t num_threads_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads_ <= 1

  void RecordBatchMetrics(size_t batch_size, bool verdict_only) const;

  // `executor.*` metrics; null when un-instrumented.
  obs::Counter* batches_metric_ = nullptr;
  obs::Counter* comparisons_metric_ = nullptr;
  obs::Counter* sharded_batches_metric_ = nullptr;
  obs::Counter* verdict_batches_metric_ = nullptr;
  obs::Histogram* batch_ns_metric_ = nullptr;
};

}  // namespace pier

#endif  // PIER_SIMILARITY_PARALLEL_EXECUTOR_H_
