#include "similarity/similarity_kernels.h"

#include <algorithm>
#include <cmath>

#include "similarity/intersect_kernel.h"

namespace pier {

namespace {

constexpr uint64_t kHighBit = uint64_t{1} << 63;

// Unit-cost edits are unaffected by a shared prefix or suffix, so the
// kernels only ever see the differing core of the two strings.
void TrimCommonAffixes(std::string_view* a, std::string_view* b) {
  size_t prefix = 0;
  const size_t min_len = std::min(a->size(), b->size());
  while (prefix < min_len && (*a)[prefix] == (*b)[prefix]) ++prefix;
  a->remove_prefix(prefix);
  b->remove_prefix(prefix);
  size_t suffix = 0;
  const size_t rem = std::min(a->size(), b->size());
  while (suffix < rem &&
         (*a)[a->size() - 1 - suffix] == (*b)[b->size() - 1 - suffix]) {
    ++suffix;
  }
  a->remove_suffix(suffix);
  b->remove_suffix(suffix);
}

// Builds the epoch-stamped Peq table for `pattern` and returns the
// block count. Only rows of bytes that occur in the pattern are
// (re-)zeroed; absent bytes resolve to scratch->zeros at lookup time.
size_t BuildPeq(std::string_view pattern, SimilarityScratch* s) {
  const size_t blocks = (pattern.size() + 63) / 64;
  s->ReserveBlocks(blocks);
  ++s->epoch;
  const size_t stride = s->block_capacity;
  for (size_t i = 0; i < pattern.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(pattern[i]);
    uint64_t* row = &s->peq[size_t{c} * stride];
    if (s->peq_stamp[c] != s->epoch) {
      std::fill(row, row + blocks, uint64_t{0});
      s->peq_stamp[c] = s->epoch;
    }
    row[i >> 6] |= uint64_t{1} << (i & 63);
  }
  return blocks;
}

// Core Myers column scan: pattern is the shorter (non-empty) string,
// text the longer. Returns the exact distance if it is <= max_dist,
// otherwise max_dist + 1. Callers clamp max_dist so that
// max_dist + text.size() cannot overflow.
size_t MyersCore(std::string_view pattern, std::string_view text,
                 size_t max_dist, SimilarityScratch* s) {
  const size_t m = pattern.size();
  const size_t n = text.size();
  const size_t blocks = BuildPeq(pattern, s);
  const size_t stride = s->block_capacity;
  const uint64_t* zeros = s->zeros.data();

  if (blocks == 1) {
    // Single-word fast path (Hyyro's formulation of Myers 1999).
    uint64_t pv = ~uint64_t{0};
    uint64_t mv = 0;
    size_t score = m;
    const uint64_t high = uint64_t{1} << (m - 1);
    for (size_t j = 0; j < n; ++j) {
      const unsigned char c = static_cast<unsigned char>(text[j]);
      const uint64_t eq =
          s->peq_stamp[c] == s->epoch ? s->peq[size_t{c} * stride] : 0;
      const uint64_t xv = eq | mv;
      const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
      uint64_t ph = mv | ~(xh | pv);
      uint64_t mh = pv & xh;
      if (ph & high) {
        ++score;
      } else if (mh & high) {
        --score;
      }
      ph = (ph << 1) | 1;  // D[0][j] = j: the top boundary grows by one
      mh <<= 1;
      pv = mh | ~(xv | ph);
      mv = ph & xv;
      // The final score can drop by at most one per remaining column.
      if (score > max_dist + (n - j - 1)) return max_dist + 1;
    }
    return score;
  }

  // Blocked multi-word variant: per-block vertical deltas with the
  // horizontal delta (+1/0/-1) carried across block boundaries.
  uint64_t* pv = s->pv.data();
  uint64_t* mv = s->mv.data();
  for (size_t b = 0; b < blocks; ++b) {
    pv[b] = ~uint64_t{0};
    mv[b] = 0;
  }
  size_t score = m;
  const size_t last = blocks - 1;
  const uint64_t last_high = uint64_t{1} << ((m - 1) & 63);
  for (size_t j = 0; j < n; ++j) {
    const unsigned char c = static_cast<unsigned char>(text[j]);
    const uint64_t* eq_row =
        s->peq_stamp[c] == s->epoch ? &s->peq[size_t{c} * stride] : zeros;
    int hin = 1;  // D[0][j] = j: the boundary row grows by one
    for (size_t b = 0; b < blocks; ++b) {
      const uint64_t high = b == last ? last_high : kHighBit;
      uint64_t eq = eq_row[b];
      const uint64_t pvb = pv[b];
      const uint64_t mvb = mv[b];
      const uint64_t xv = eq | mvb;
      if (hin < 0) eq |= 1;
      const uint64_t xh = (((eq & pvb) + pvb) ^ pvb) | eq;
      uint64_t ph = mvb | ~(xh | pvb);
      uint64_t mh = pvb & xh;
      int hout = 0;
      if (ph & high) {
        hout = 1;
      } else if (mh & high) {
        hout = -1;
      }
      ph <<= 1;
      mh <<= 1;
      if (hin > 0) {
        ph |= 1;
      } else if (hin < 0) {
        mh |= 1;
      }
      pv[b] = mh | ~(xv | ph);
      mv[b] = ph & xv;
      hin = hout;
    }
    score = static_cast<size_t>(static_cast<ptrdiff_t>(score) + hin);
    if (score > max_dist + (n - j - 1)) return max_dist + 1;
  }
  return score;
}

}  // namespace

void SimilarityScratch::ReserveBlocks(size_t blocks) {
  if (blocks <= block_capacity) return;
  block_capacity = std::max(blocks, block_capacity * 2);
  peq.assign(256 * block_capacity, 0);
  pv.assign(block_capacity, 0);
  mv.assign(block_capacity, 0);
  zeros.assign(block_capacity, 0);
  std::fill(std::begin(peq_stamp), std::end(peq_stamp), uint64_t{0});
  epoch = 0;  // rows were re-laid out; every stamp is now stale
}

size_t MyersEditDistance(std::string_view a, std::string_view b,
                         SimilarityScratch* scratch) {
  TrimCommonAffixes(&a, &b);
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();
  // max_dist = m + n makes the cutoff unreachable: this is the exact
  // variant (score <= max(m, n) always).
  return MyersCore(b, a, a.size() + b.size(), scratch);
}

size_t MyersEditDistanceBounded(std::string_view a, std::string_view b,
                                size_t max_dist, SimilarityScratch* scratch) {
  TrimCommonAffixes(&a, &b);
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (a.size() - b.size() > max_dist) return max_dist + 1;
  if (b.empty()) return a.size();  // <= max_dist by the check above
  const size_t d =
      MyersCore(b, a, std::min(max_dist, a.size() + b.size()), scratch);
  return d <= max_dist ? d : max_dist + 1;
}

ptrdiff_t MaxEditDistanceForThreshold(double threshold, size_t max_len) {
  const ptrdiff_t len = static_cast<ptrdiff_t>(max_len);
  const double dlen = static_cast<double>(max_len);
  // Exactly the score expression of NormalizedEditSimilarity();
  // monotone non-increasing in d because IEEE division and
  // subtraction are correctly rounded (hence monotone).
  const auto sim = [dlen](ptrdiff_t d) {
    return 1.0 - static_cast<double>(d) / dlen;
  };
  double guess = (1.0 - threshold) * dlen;
  ptrdiff_t d;
  if (guess <= -1.0) {
    d = -1;
  } else if (guess >= static_cast<double>(len)) {
    d = len;
  } else {
    d = static_cast<ptrdiff_t>(guess);
  }
  while (d + 1 <= len && sim(d + 1) >= threshold) ++d;
  while (d >= 0 && sim(d) < threshold) --d;
  return d;
}

size_t MinOverlapForJaccard(double threshold, size_t size_a, size_t size_b) {
  const size_t total = size_a + size_b;
  // Exactly the score expression of JaccardSimilarity(); monotone
  // non-decreasing in c (numerator grows, denominator shrinks, and
  // correctly-rounded division is monotone in both).
  const auto sim = [total](size_t c) {
    return static_cast<double>(c) / static_cast<double>(total - c);
  };
  const size_t cap = std::min(size_a, size_b);
  const double guess = threshold * static_cast<double>(total) /
                       (1.0 + threshold);
  size_t c;
  if (!(guess > 0.0)) {  // also covers NaN from threshold == -1
    c = 0;
  } else if (guess >= static_cast<double>(cap)) {
    c = cap;
  } else {
    c = static_cast<size_t>(guess);
  }
  while (c <= cap && sim(c) < threshold) ++c;
  while (c > 0 && sim(c - 1) >= threshold) --c;
  return c;
}

size_t MinOverlapForCosine(double threshold, size_t size_a, size_t size_b) {
  // Exactly the denominator CosineSimilarity() divides by.
  const double denom = std::sqrt(static_cast<double>(size_a) *
                                 static_cast<double>(size_b));
  const auto sim = [denom](size_t c) {
    return static_cast<double>(c) / denom;
  };
  const size_t cap = std::min(size_a, size_b);
  const double guess = threshold * denom;
  size_t c;
  if (!(guess > 0.0)) {
    c = 0;
  } else if (guess >= static_cast<double>(cap)) {
    c = cap;
  } else {
    c = static_cast<size_t>(guess);
  }
  while (c <= cap && sim(c) < threshold) ++c;
  while (c > 0 && sim(c - 1) >= threshold) --c;
  return c;
}

bool IntersectionAtLeast(std::span<const TokenId> a,
                         std::span<const TokenId> b, size_t required) {
  if (required == 0) return true;
  const size_t sa = a.size();
  const size_t sb = b.size();
  if (required > std::min(sa, sb)) return false;

  const std::span<const TokenId> small = sa <= sb ? a : b;
  const std::span<const TokenId> large = sa <= sb ? b : a;

  // Heavily skewed sizes: gallop through the longer vector instead of
  // stepping the merge over all of it.
  constexpr size_t kGallopSkewRatio = 16;
  if (large.size() >= kGallopSkewRatio * small.size()) {
    size_t count = 0;
    size_t pos = 0;
    for (size_t i = 0; i < small.size(); ++i) {
      if (count + (small.size() - i) < required) return false;
      const TokenId x = small[i];
      // Exponential probe from the frontier; bounds 1, 2, ..., bound/2
      // were all < x, so the first element >= x lies in
      // (pos + bound/2, pos + bound].
      size_t bound = 1;
      while (pos + bound < large.size() && large[pos + bound] < x) {
        bound <<= 1;
      }
      const size_t lo = pos + bound / 2;
      const size_t hi = std::min(large.size(), pos + bound + 1);
      pos = static_cast<size_t>(
          std::lower_bound(large.begin() + static_cast<ptrdiff_t>(lo),
                           large.begin() + static_cast<ptrdiff_t>(hi), x) -
          large.begin());
      if (pos < large.size() && large[pos] == x) {
        ++count;
        if (count >= required) return true;
        ++pos;
      }
      if (pos >= large.size()) break;  // everything after x is larger too
    }
    return false;
  }

  // Near-balanced sizes: the batched merge kernel (SIMD when built
  // with PIER_SIMD, branchless scalar otherwise) with the same
  // early-exit bounds as the gallop path above.
  return SortedIntersectionAtLeast(small, large, required);
}

bool JaccardVerdict(std::span<const TokenId> a,
                    std::span<const TokenId> b, double threshold) {
  if (a.empty() && b.empty()) return 1.0 >= threshold;
  const size_t required = MinOverlapForJaccard(threshold, a.size(), b.size());
  return IntersectionAtLeast(a, b, required);
}

bool CosineVerdict(std::span<const TokenId> a,
                   std::span<const TokenId> b, double threshold) {
  if (a.empty() && b.empty()) return 1.0 >= threshold;
  if (a.empty() || b.empty()) return 0.0 >= threshold;
  const size_t required = MinOverlapForCosine(threshold, a.size(), b.size());
  return IntersectionAtLeast(a, b, required);
}

}  // namespace pier
