// Threshold-aware similarity kernels: bit-parallel Levenshtein (Myers,
// JACM 1999, in Hyyro's block formulation) and size/overlap-filtered
// token-set verdicts (prefix/size filtering a la PPJoin). All kernels
// are *exact-equivalent* to the naive reference implementations in
// string_distance.h: the Myers kernels return the same integer
// distances as the DP, and every Verdict helper answers exactly
// "reference similarity >= threshold?" including the reference's
// floating-point rounding behaviour (the threshold is converted into
// an integer bound via the same IEEE expressions the reference
// evaluates, exploiting the monotonicity of correctly-rounded
// division/subtraction).
//
// All kernels take a caller-owned SimilarityScratch and perform no
// per-call heap allocation once the scratch has warmed up; the
// ParallelMatchExecutor keeps one scratch per worker shard.

#ifndef PIER_SIMILARITY_SIMILARITY_KERNELS_H_
#define PIER_SIMILARITY_SIMILARITY_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "model/types.h"

namespace pier {

// Reusable buffers for the Myers kernels. The Peq table (one 64-bit
// row bitmap per byte value per block) is epoch-stamped: a call bumps
// `epoch` and re-zeroes only the rows of bytes that actually occur in
// the pattern, so the per-call setup cost is O(pattern), not O(256 *
// blocks). Safe to reuse across patterns of any length; grows (and
// re-stamps) on demand.
struct SimilarityScratch {
  std::vector<uint64_t> peq;        // 256 rows * block_capacity words
  std::vector<uint64_t> pv;         // vertical +1 deltas, per block
  std::vector<uint64_t> mv;         // vertical -1 deltas, per block
  std::vector<uint64_t> zeros;      // all-zero row for absent bytes
  uint64_t peq_stamp[256] = {};     // epoch that last wrote each row
  uint64_t epoch = 0;
  size_t block_capacity = 0;

  // Ensures capacity for `blocks` 64-row blocks; invalidates all
  // stamped rows when it has to grow.
  void ReserveBlocks(size_t blocks);
};

// Exact Levenshtein distance via Myers' bit-parallel algorithm:
// single-word fast path when the shorter string fits in 64 chars,
// blocked multi-word variant otherwise, common prefix/suffix trimming
// first. Identical results to Levenshtein() at ~word-width less work.
size_t MyersEditDistance(std::string_view a, std::string_view b,
                         SimilarityScratch* scratch);

// Bounded variant: returns min(Levenshtein(a, b), max_dist + 1).
// Applies the length-difference lower bound up front and abandons a
// column early once the running score can no longer re-enter the
// bound (Ukkonen-style cutoff: the final distance decreases by at
// most one per remaining text column).
size_t MyersEditDistanceBounded(std::string_view a, std::string_view b,
                                size_t max_dist, SimilarityScratch* scratch);

// Largest edit distance d in [-1, max_len] such that the reference
// score expression `1.0 - double(d) / double(max_len)` is >=
// threshold; -1 when even distance 0 fails (threshold > 1). Evaluates
// the exact expression NormalizedEditSimilarity() uses, so
// `dist <= MaxEditDistanceForThreshold(t, L)` is bit-equivalent to
// `NormalizedEditSimilarity(a, b) >= t` for strings of max length L.
// Requires max_len > 0 (callers handle the both-empty case).
ptrdiff_t MaxEditDistanceForThreshold(double threshold, size_t max_len);

// Smallest intersection size c such that the reference Jaccard
// expression `double(c) / double(size_a + size_b - c)` is >=
// threshold; may exceed min(size_a, size_b), in which case no
// intersection can reach the threshold (the PPJoin-style size filter).
// Requires size_a + size_b > 0.
size_t MinOverlapForJaccard(double threshold, size_t size_a, size_t size_b);

// Same for the set-cosine expression
// `double(c) / std::sqrt(double(size_a) * double(size_b))`.
// Requires size_a > 0 and size_b > 0.
size_t MinOverlapForCosine(double threshold, size_t size_a, size_t size_b);

// True iff |a n b| >= required, for sorted unique spans. Abandons
// the scan as soon as the remaining elements cannot reach `required`
// (running upper bound) and switches to galloping (exponential +
// binary search) probes of the longer vector when the sizes are
// heavily skewed.
bool IntersectionAtLeast(std::span<const TokenId> a,
                         std::span<const TokenId> b, size_t required);

// Verdict kernels: exactly `JaccardSimilarity(a, b) >= threshold`
// (resp. CosineSimilarity) without computing the score -- size filter
// first, then a bounded intersection.
bool JaccardVerdict(std::span<const TokenId> a,
                    std::span<const TokenId> b, double threshold);
bool CosineVerdict(std::span<const TokenId> a,
                   std::span<const TokenId> b, double threshold);

}  // namespace pier

#endif  // PIER_SIMILARITY_SIMILARITY_KERNELS_H_
