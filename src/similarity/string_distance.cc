#include "similarity/string_distance.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "similarity/intersect_kernel.h"

namespace pier {

size_t IntersectionSize(std::span<const TokenId> a,
                        std::span<const TokenId> b) {
  return SortedIntersectionSize(a, b);
}

double JaccardSimilarity(std::span<const TokenId> a,
                         std::span<const TokenId> b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t common = IntersectionSize(a, b);
  const size_t uni = a.size() + b.size() - common;
  return uni == 0 ? 1.0 : static_cast<double>(common) / uni;
}

double OverlapCoefficient(std::span<const TokenId> a,
                          std::span<const TokenId> b) {
  if (a.empty() && b.empty()) return 1.0;
  // An empty profile shares nothing with a non-empty one; returning
  // 1.0 here would make it "fully similar" to everything.
  if (a.empty() || b.empty()) return 0.0;
  const size_t common = IntersectionSize(a, b);
  return static_cast<double>(common) / std::min(a.size(), b.size());
}

double CosineSimilarity(std::span<const TokenId> a,
                        std::span<const TokenId> b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t common = IntersectionSize(a, b);
  return static_cast<double>(common) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();
  std::vector<size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), size_t{0});
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // D[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];  // D[i-1][j]
      const size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, up + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

size_t LevenshteinBounded(std::string_view a, std::string_view b,
                          size_t max_dist) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (a.size() - b.size() > max_dist) return max_dist + 1;
  if (b.empty()) return a.size();
  constexpr size_t kInf = static_cast<size_t>(-1) / 2;
  const size_t m = b.size();
  std::vector<size_t> row(m + 1);
  std::iota(row.begin(), row.end(), size_t{0});
  for (size_t i = 1; i <= a.size(); ++i) {
    // Only columns j with |i - j| <= max_dist can lead to a distance
    // within the bound (Ukkonen's band).
    const size_t lo = i > max_dist ? i - max_dist : 1;
    const size_t hi = std::min(m, i + max_dist);
    size_t diag = row[lo - 1];                 // D[i-1][lo-1]
    size_t left = lo == 1 ? i : kInf;          // D[i][lo-1]
    if (lo == 1) row[0] = i;
    size_t row_min = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      const size_t up = row[j];  // D[i-1][j]
      const size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      size_t best = diag + cost;
      if (up + 1 < best) best = up + 1;
      if (left + 1 < best) best = left + 1;
      row[j] = best;
      left = best;
      diag = up;
      if (best < row_min) row_min = best;
    }
    // Invalidate the cell right of the band so the next row does not
    // read a stale value as its `up` neighbour.
    if (hi < m) row[hi + 1] = kInf;
    if (row_min > max_dist) return max_dist + 1;
  }
  return row[m] <= max_dist ? row[m] : max_dist + 1;
}

double NormalizedEditSimilarity(std::string_view a, std::string_view b) {
  if (a == b) return 1.0;  // covers the both-empty case; no DP needed
  // The length difference lower-bounds the distance; when one side is
  // empty the bound is tight (dist == max_len), so the score is 0.
  if (a.empty() || b.empty()) return 0.0;
  const size_t max_len = std::max(a.size(), b.size());
  const size_t dist = Levenshtein(a, b);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(max_len);
}

}  // namespace pier
