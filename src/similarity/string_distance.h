// String and token-set similarity primitives used by the match
// functions. All token-set functions take *sorted, de-duplicated*
// TokenId spans (the invariant EntityProfile::tokens() maintains).

#ifndef PIER_SIMILARITY_STRING_DISTANCE_H_
#define PIER_SIMILARITY_STRING_DISTANCE_H_

#include <cstddef>
#include <span>
#include <string_view>

#include "model/types.h"

namespace pier {

// Number of common elements of two sorted unique vectors.
size_t IntersectionSize(std::span<const TokenId> a,
                        std::span<const TokenId> b);

// |a n b| / |a u b|; 1.0 when both empty.
double JaccardSimilarity(std::span<const TokenId> a,
                         std::span<const TokenId> b);

// |a n b| / min(|a|, |b|); 1.0 when both are empty, 0.0 when exactly
// one is empty.
double OverlapCoefficient(std::span<const TokenId> a,
                          std::span<const TokenId> b);

// |a n b| / sqrt(|a| * |b|) (set cosine); 1.0 when both empty.
double CosineSimilarity(std::span<const TokenId> a,
                        std::span<const TokenId> b);

// Levenshtein edit distance (unit costs), O(|a| * |b|) time,
// O(min(|a|, |b|)) space.
size_t Levenshtein(std::string_view a, std::string_view b);

// Levenshtein with early abandoning: returns
// min(Levenshtein(a, b), max_dist + 1). Uses the band
// |i - j| <= max_dist (Ukkonen), so it runs in O(max_dist * min_len).
size_t LevenshteinBounded(std::string_view a, std::string_view b,
                          size_t max_dist);

// 1 - dist / max(|a|, |b|); 1.0 when both empty.
double NormalizedEditSimilarity(std::string_view a, std::string_view b);

}  // namespace pier

#endif  // PIER_SIMILARITY_STRING_DISTANCE_H_
