// Virtual-time cost attribution (DESIGN.md "Virtual time"): the
// simulator charges every pipeline operation a duration, either the
// *measured* wall time of the real C++ computation (realistic, used by
// the benches) or a *modeled* cost derived from the operation's work
// statistics (deterministic, used by tests and reproducible figures).

#ifndef PIER_STREAM_COST_METER_H_
#define PIER_STREAM_COST_METER_H_

#include <cstdint>

#include "core/prioritizer.h"

namespace pier {

// Unit costs (seconds per unit of work) for the modeled mode. The
// defaults approximate the measured per-op costs of this
// implementation on a ~2.5 GHz core, so modeled and measured runs have
// the same orders of magnitude.
struct CostModel {
  double per_profile = 2e-6;
  double per_token = 2e-7;
  double per_block_update = 1.5e-7;
  double per_comparison_generated = 4e-7;
  double per_index_op = 3e-7;
  // Per matcher cost-unit (Matcher::CostUnits): token for JS,
  // DP cell for ED.
  double per_match_unit = 4e-9;
  // Fixed overhead charged to every operation, so virtual time always
  // advances.
  double per_call_overhead = 2e-6;
};

class CostMeter {
 public:
  enum class Mode : uint8_t { kMeasured = 0, kModeled = 1 };

  explicit CostMeter(Mode mode, CostModel model = CostModel())
      : mode_(mode), model_(model) {}

  Mode mode() const { return mode_; }
  const CostModel& model() const { return model_; }

  // Cost of a pipeline step that performed `stats` work and took
  // `measured_seconds` of wall time.
  double StepCost(const WorkStats& stats, double measured_seconds) const {
    if (mode_ == Mode::kMeasured) {
      return measured_seconds + model_.per_call_overhead;
    }
    return model_.per_call_overhead +
           model_.per_profile * static_cast<double>(stats.profiles) +
           model_.per_token * static_cast<double>(stats.tokens) +
           model_.per_block_update *
               static_cast<double>(stats.block_updates) +
           model_.per_comparison_generated *
               static_cast<double>(stats.comparisons_generated) +
           model_.per_index_op * static_cast<double>(stats.index_ops);
  }

  // Cost of matching a batch whose matcher cost-units sum to `units`.
  double MatchCost(uint64_t units, double measured_seconds) const {
    if (mode_ == Mode::kMeasured) {
      return measured_seconds + model_.per_call_overhead;
    }
    return model_.per_call_overhead +
           model_.per_match_unit * static_cast<double>(units);
  }

 private:
  Mode mode_;
  CostModel model_;
};

}  // namespace pier

#endif  // PIER_STREAM_COST_METER_H_
