// The simulator-facing interface every ER algorithm (the three PIER
// strategies and all baselines) implements. The stream simulator
// drives an instance through the arrival/processing interleaving of
// Section 3.1: increments are delivered when due *and* the algorithm
// is ready (backpressure), comparison batches are processed between
// arrivals, and idle ticks model the blocking step's periodic empty
// increments.

#ifndef PIER_STREAM_ER_ALGORITHM_H_
#define PIER_STREAM_ER_ALGORITHM_H_

#include <string>
#include <vector>

#include "core/prioritizer.h"
#include "model/comparison.h"
#include "model/entity_profile.h"

namespace pier {

namespace persist {
class SnapshotBuilder;
class SnapshotReader;
}  // namespace persist

class ErAlgorithm {
 public:
  virtual ~ErAlgorithm() = default;

  // Delivers one data increment (raw, untokenized profiles with dense
  // ids continuing ingestion order). Returns work accounting for the
  // modeled cost meter.
  virtual WorkStats OnIncrement(std::vector<EntityProfile> profiles) = 0;

  // The next batch of comparisons to hand to the matcher; empty when
  // the algorithm currently has nothing to emit. `stats` accumulates
  // the generation work.
  virtual std::vector<Comparison> NextBatch(WorkStats* stats) = 0;

  // Called when the stream is idle and NextBatch returned empty; an
  // opportunity to pull more work forward (PIER: empty-increment tick;
  // batch algorithms: the point where the end of input triggers their
  // main phase). Default: nothing.
  virtual WorkStats OnIdleTick() { return {}; }

  // Called once when the stream has no further increments; batch
  // algorithms start their full computation here.
  virtual WorkStats OnStreamEnd() { return {}; }

  // Backpressure: false while the algorithm must finish pending work
  // before accepting the next increment (I-BASE semantics). PIER
  // algorithms are always ready ("put comparisons temporarily on hold
  // when a new increment arrives").
  virtual bool ReadyForIncrement() const { return true; }

  // Called for every pair the matcher classified as a duplicate;
  // algorithms that maintain an online cluster index fold the verdict
  // in here (PIER: serve::ClusterIndex). Default: nothing, so
  // baselines and test doubles keep compiling.
  virtual void OnMatch(ProfileId a, ProfileId b) {
    (void)a;
    (void)b;
  }

  // Called for every executed pair with the matcher's classification
  // (positives and negatives; OnMatch remains positives-only).
  // Feedback algorithms (FB-PCS) fold the outcome back into their
  // prioritization scores. Default: nothing.
  virtual void OnVerdict(ProfileId a, ProfileId b, bool is_match) {
    (void)a;
    (void)b;
    (void)is_match;
  }

  // Rate feedback for adaptive controllers; no-ops by default.
  virtual void OnArrival(double time) { (void)time; }
  virtual void OnBatchCost(size_t comparisons, double seconds) {
    (void)comparisons;
    (void)seconds;
  }

  // Profile access for the matcher (every algorithm owns a store of
  // the profiles it has ingested).
  virtual const EntityProfile& Profile(ProfileId id) const = 0;

  // Checkpoint support (see src/persist/). Algorithms that can be
  // snapshotted and restored with recovery equivalence override all
  // three; the defaults keep lightweight test doubles compiling and
  // make the simulator reject checkpointing for unsupported
  // algorithms instead of writing unusable files.
  virtual bool SupportsSnapshot() const { return false; }
  virtual void Snapshot(persist::SnapshotBuilder& builder) const {
    (void)builder;
  }
  virtual bool Restore(const persist::SnapshotReader& reader,
                       std::string* error) {
    (void)reader;
    if (error != nullptr) {
      *error = std::string(name()) + " does not support snapshots";
    }
    return false;
  }

  virtual const char* name() const = 0;
};

}  // namespace pier

#endif  // PIER_STREAM_ER_ALGORITHM_H_
