// Ingest-to-first-verdict latency tracking for the realtime/sharded
// pipelines: how long after an Ingest() call does the match stage
// deliver its next verdict batch? This is the user-visible freshness
// of the progressive pipeline -- the adaptive-K controller optimizes
// comparison throughput, this histogram exposes what that means in
// wall-clock delay from data arrival to served verdicts.
//
// Mechanism: every Ingest pushes its arrival timestamp; every verdict
// delivery (combiner side) closes out all arrivals that happened
// before it, recording one latency sample each. An ingest whose work
// produced no comparisons is closed out by the next delivery or, at
// the latest, when the pipeline drains (FlushAll) -- the sample then
// measures time-to-quiescence, which is the honest "first verdict
// opportunity" for a verdict-less increment.

#ifndef PIER_STREAM_INGEST_LATENCY_H_
#define PIER_STREAM_INGEST_LATENCY_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>

#include "obs/metrics.h"

namespace pier {

class IngestLatencyTracker {
 public:
  // Both metrics may be null (un-instrumented runs cost two pointer
  // checks per event). `latency` receives one nanosecond sample per
  // closed-out ingest; `pending` tracks the number of ingests still
  // waiting for their first subsequent verdict.
  IngestLatencyTracker(obs::Histogram* latency, obs::Gauge* pending)
      : latency_(latency), pending_(pending) {}

  IngestLatencyTracker(const IngestLatencyTracker&) = delete;
  IngestLatencyTracker& operator=(const IngestLatencyTracker&) = delete;

  void OnIngest() {
    std::lock_guard<std::mutex> lock(mutex_);
    arrivals_.push_back(std::chrono::steady_clock::now());
    obs::GaugeSet(pending_, static_cast<double>(arrivals_.size()));
  }

  // A verdict batch reached the delivery point: every ingest that
  // arrived before now has seen its first verdict.
  void OnVerdictDelivered() { CloseOut(); }

  // The pipeline went quiescent: close out ingests that never produced
  // a verdict so their samples are not deferred indefinitely.
  void FlushAll() { CloseOut(); }

 private:
  void CloseOut() {
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    while (!arrivals_.empty() && arrivals_.front() <= now) {
      if (latency_ != nullptr) {
        latency_->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - arrivals_.front())
                .count()));
      }
      arrivals_.pop_front();
    }
    obs::GaugeSet(pending_, static_cast<double>(arrivals_.size()));
  }

  obs::Histogram* latency_;
  obs::Gauge* pending_;
  std::mutex mutex_;
  std::deque<std::chrono::steady_clock::time_point> arrivals_;
};

}  // namespace pier

#endif  // PIER_STREAM_INGEST_LATENCY_H_
