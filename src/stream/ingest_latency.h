// Ingest-to-first-verdict latency tracking for the realtime/sharded
// pipelines: how long after an Ingest() call does the match stage
// deliver its next verdict batch? This is the user-visible freshness
// of the progressive pipeline -- the adaptive-K controller optimizes
// comparison throughput, this histogram exposes what that means in
// wall-clock delay from data arrival to served verdicts.
//
// Mechanism: every Ingest pushes its arrival timestamp; every verdict
// delivery (combiner side) closes out all arrivals that happened
// before it, recording one latency sample each. An ingest whose work
// produced no comparisons is closed out when the pipeline drains
// (FlushAll) -- but those samples measure time-to-quiescence, not
// verdict freshness, so they land in the separate `drain` histogram
// (realtime.ingest_to_quiescence_ns) rather than polluting the
// freshness percentiles with shutdown-shaped outliers. Both paths
// reset the pending gauge.

#ifndef PIER_STREAM_INGEST_LATENCY_H_
#define PIER_STREAM_INGEST_LATENCY_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>

#include "obs/metrics.h"

namespace pier {

class IngestLatencyTracker {
 public:
  // All metrics may be null (un-instrumented runs cost a few pointer
  // checks per event). `latency` receives one nanosecond sample per
  // ingest closed out by a verdict delivery; `drain` receives the
  // samples of ingests closed out by quiescence instead; `pending`
  // tracks the number of ingests still waiting for either.
  IngestLatencyTracker(obs::Histogram* latency, obs::Gauge* pending,
                       obs::Histogram* drain = nullptr)
      : latency_(latency), drain_(drain), pending_(pending) {}

  IngestLatencyTracker(const IngestLatencyTracker&) = delete;
  IngestLatencyTracker& operator=(const IngestLatencyTracker&) = delete;

  // Call BEFORE the increment becomes visible to the match stage
  // (i.e. before the queue push): registering afterwards races a fast
  // worker, whose verdict delivery would then miss this arrival and
  // leave it to be closed out as a drain sample instead.
  void OnIngest() {
    std::lock_guard<std::mutex> lock(mutex_);
    arrivals_.push_back(std::chrono::steady_clock::now());
    obs::GaugeSet(pending_, static_cast<double>(arrivals_.size()));
  }

  // Undo the newest OnIngest: the increment never reached the match
  // stage (routing was rejected by a concurrent Stop()).
  void OnIngestAbandoned() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!arrivals_.empty()) arrivals_.pop_back();
    obs::GaugeSet(pending_, static_cast<double>(arrivals_.size()));
  }

  // A verdict batch reached the delivery point: every ingest that
  // arrived before now has seen its first verdict.
  void OnVerdictDelivered() { CloseOut(latency_); }

  // The pipeline went quiescent: close out ingests that never produced
  // a verdict. Their samples are time-to-quiescence, not freshness, so
  // they go to the drain histogram.
  void FlushAll() { CloseOut(drain_); }

 private:
  void CloseOut(obs::Histogram* sink) {
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    while (!arrivals_.empty() && arrivals_.front() <= now) {
      if (sink != nullptr) {
        sink->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - arrivals_.front())
                .count()));
      }
      arrivals_.pop_front();
    }
    obs::GaugeSet(pending_, static_cast<double>(arrivals_.size()));
  }

  obs::Histogram* latency_;
  obs::Histogram* drain_;
  obs::Gauge* pending_;
  std::mutex mutex_;
  std::deque<std::chrono::steady_clock::time_point> arrivals_;
};

}  // namespace pier

#endif  // PIER_STREAM_INGEST_LATENCY_H_
