// Adapts a PierPipeline (I-PCS / I-PBS / I-PES) to the simulator's
// ErAlgorithm interface. This is also the reference wiring for real
// deployments: arrivals feed Ingest, spare time drives EmitBatch and
// Tick, and matcher timings feed the adaptive-K controller.

#ifndef PIER_STREAM_PIER_ADAPTER_H_
#define PIER_STREAM_PIER_ADAPTER_H_

#include <vector>

#include "core/pier_pipeline.h"
#include "stream/er_algorithm.h"

namespace pier {

class PierAdapter : public ErAlgorithm {
 public:
  explicit PierAdapter(PierOptions options)
      : strategy_(options.strategy), pipeline_(options) {}

  WorkStats OnIncrement(std::vector<EntityProfile> profiles) override {
    return pipeline_.Ingest(std::move(profiles));
  }

  std::vector<Comparison> NextBatch(WorkStats* stats) override {
    std::vector<Comparison> batch =
        pipeline_.EmitBatch(pipeline_.adaptive_k().FindK(), stats);
    stats->index_ops += batch.size();
    return batch;
  }

  WorkStats OnIdleTick() override { return pipeline_.Tick(); }

  WorkStats OnStreamEnd() override {
    pipeline_.NotifyStreamEnd();
    return pipeline_.Tick();
  }

  void OnMatch(ProfileId a, ProfileId b) override {
    pipeline_.RecordMatch(a, b);
  }

  void OnVerdict(ProfileId a, ProfileId b, bool is_match) override {
    pipeline_.RecordVerdict(a, b, is_match);
  }

  void OnArrival(double time) override { pipeline_.ReportArrival(time); }
  void OnBatchCost(size_t comparisons, double seconds) override {
    pipeline_.ReportBatchCost(comparisons, seconds);
  }

  const EntityProfile& Profile(ProfileId id) const override {
    return pipeline_.profiles().Get(id);
  }

  bool SupportsSnapshot() const override { return true; }
  void Snapshot(persist::SnapshotBuilder& builder) const override {
    pipeline_.Snapshot(builder);
  }
  bool Restore(const persist::SnapshotReader& reader,
               std::string* error) override {
    return pipeline_.Restore(reader, error);
  }

  const char* name() const override { return ToString(strategy_); }

  PierPipeline& pipeline() { return pipeline_; }

 private:
  PierStrategy strategy_;
  PierPipeline pipeline_;
};

}  // namespace pier

#endif  // PIER_STREAM_PIER_ADAPTER_H_
