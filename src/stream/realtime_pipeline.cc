#include "stream/realtime_pipeline.h"

#include <utility>

#include "util/check.h"
#include "util/stopwatch.h"

namespace pier {

RealtimePipeline::RealtimePipeline(PierOptions options,
                                   const Matcher* matcher,
                                   MatchCallback on_match)
    : pipeline_(std::move(options)),
      matcher_(matcher),
      on_match_(std::move(on_match)) {
  PIER_CHECK(matcher_ != nullptr);
  worker_ = std::thread([this] { WorkerLoop(); });
}

RealtimePipeline::~RealtimePipeline() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

void RealtimePipeline::Ingest(std::vector<EntityProfile> profiles) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pipeline_.ReportArrival(lifetime_.ElapsedSeconds());
    pipeline_.Ingest(std::move(profiles));
    idle_ = false;
  }
  work_cv_.notify_all();
}

void RealtimePipeline::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock, [this] { return idle_ || stop_; });
}

void RealtimePipeline::WorkerLoop() {
  for (;;) {
    std::vector<Comparison> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !idle_; });
      if (stop_) return;
      batch = pipeline_.EmitBatch();
      if (batch.empty()) {
        idle_ = true;
        drained_cv_.notify_all();
        continue;
      }
    }
    // Matching holds the lock because the profile store may relocate
    // on concurrent ingest; the batch size (adaptive K) bounds how
    // long an Ingest can be blocked.
    Stopwatch sw;
    std::vector<std::pair<ProfileId, ProfileId>> found;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& c : batch) {
        const EntityProfile& a = pipeline_.profiles().Get(c.x);
        const EntityProfile& b = pipeline_.profiles().Get(c.y);
        if (matcher_->Matches(a, b)) found.emplace_back(c.x, c.y);
      }
      pipeline_.ReportBatchCost(batch.size(), sw.ElapsedSeconds());
    }
    comparisons_.fetch_add(batch.size());
    matches_.fetch_add(found.size());
    for (const auto& [x, y] : found) on_match_(x, y);
  }
}

}  // namespace pier
