#include "stream/realtime_pipeline.h"

#include <utility>

#include "util/check.h"
#include "util/stopwatch.h"

namespace pier {

RealtimePipeline::RealtimePipeline(PierOptions options,
                                   const Matcher* matcher,
                                   MatchCallback on_match)
    : pipeline_(options),
      matcher_(matcher),
      executor_(matcher, options.execution_threads, options.metrics),
      on_match_(std::move(on_match)) {
  PIER_CHECK(matcher_ != nullptr);
  if (options.metrics != nullptr) {
    obs::MetricsRegistry& r = *options.metrics;
    ingests_metric_ = r.GetCounter("realtime.ingests");
    batches_metric_ = r.GetCounter("realtime.batches");
    idle_transitions_metric_ = r.GetCounter("realtime.idle_transitions");
    worker_idle_metric_ = r.GetGauge("realtime.worker_idle");
    match_ns_metric_ = r.GetHistogram("realtime.match_ns");
  }
  worker_ = std::thread([this] { WorkerLoop(); });
}

RealtimePipeline::~RealtimePipeline() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

void RealtimePipeline::Ingest(std::vector<EntityProfile> profiles) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pipeline_.ReportArrival(lifetime_.ElapsedSeconds());
    pipeline_.Ingest(std::move(profiles));
    idle_ = false;
  }
  obs::CounterAdd(ingests_metric_);
  obs::GaugeSet(worker_idle_metric_, 0.0);
  work_cv_.notify_all();
}

void RealtimePipeline::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock, [this] { return idle_ || stop_; });
}

void RealtimePipeline::WorkerLoop() {
  for (;;) {
    std::vector<Comparison> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !idle_; });
      if (stop_) return;
      batch = pipeline_.EmitBatch();
      if (batch.empty()) {
        idle_ = true;
        obs::CounterAdd(idle_transitions_metric_);
        obs::GaugeSet(worker_idle_metric_, 1.0);
        drained_cv_.notify_all();
        continue;
      }
    }
    // Matching runs outside the mutex so ingest is never blocked on
    // matcher work: the batch references only profiles that were fully
    // ingested before EmitBatch, and the chunked ProfileStore keeps
    // their addresses stable under concurrent Add. The executor shards
    // the batch across execution_threads workers, preserving emission
    // order.
    Stopwatch sw;
    const std::vector<MatchVerdict> verdicts =
        executor_.Execute(batch, pipeline_.profiles());
    const double seconds = sw.ElapsedSeconds();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pipeline_.ReportBatchCost(batch.size(), seconds);
    }
    obs::CounterAdd(batches_metric_);
    if (match_ns_metric_ != nullptr && seconds > 0.0) {
      match_ns_metric_->Record(static_cast<uint64_t>(seconds * 1e9));
    }
    comparisons_.fetch_add(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!verdicts[i].is_match) continue;
      matches_.fetch_add(1);
      on_match_(batch[i].x, batch[i].y);
    }
  }
}

}  // namespace pier
