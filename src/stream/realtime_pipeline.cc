#include "stream/realtime_pipeline.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

#include "persist/checkpoint_manager.h"
#include "persist/snapshot.h"
#include "util/check.h"
#include "util/serial.h"
#include "util/stopwatch.h"

namespace pier {

RealtimePipeline::RealtimePipeline(PierOptions options,
                                   const Matcher* matcher,
                                   MatchCallback on_match)
    : pipeline_(options),
      matcher_(matcher),
      executor_(matcher, options.execution_threads, options.metrics),
      on_match_(std::move(on_match)),
      metrics_(options.metrics) {
  PIER_CHECK(matcher_ != nullptr);
  if (options.metrics != nullptr) {
    obs::MetricsRegistry& r = *options.metrics;
    ingests_metric_ = r.GetCounter("realtime.ingests");
    batches_metric_ = r.GetCounter("realtime.batches");
    idle_transitions_metric_ = r.GetCounter("realtime.idle_transitions");
    worker_idle_metric_ = r.GetGauge("realtime.worker_idle");
    match_ns_metric_ = r.GetHistogram("realtime.match_ns");
  }
  worker_ = std::thread([this] { WorkerLoop(); });
}

RealtimePipeline::~RealtimePipeline() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

void RealtimePipeline::Ingest(std::vector<EntityProfile> profiles) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pipeline_.ReportArrival(lifetime_.ElapsedSeconds());
    pipeline_.Ingest(std::move(profiles));
    idle_ = false;
    ++ingest_count_;
    if (checkpointer_ != nullptr && checkpointer_->Due(ingest_count_)) {
      MaybeCheckpoint();
    }
  }
  obs::CounterAdd(ingests_metric_);
  obs::GaugeSet(worker_idle_metric_, 0.0);
  work_cv_.notify_all();
}

void RealtimePipeline::MaybeCheckpoint() {
  persist::SnapshotBuilder builder;
  pipeline_.Snapshot(builder);
  std::ostream& out = builder.AddSection("realtime.state");
  serial::WriteU64(out, ingest_count_);
  serial::WriteU64(out, comparisons_.load());
  serial::WriteU64(out, matches_.load());
  std::string error;
  if (checkpointer_->Write(ingest_count_, builder, &error).empty()) {
    std::fprintf(stderr, "pier: realtime checkpoint %" PRIu64 " failed: %s\n",
                 ingest_count_, error.c_str());
  }
}

void RealtimePipeline::EnableCheckpoints(const std::string& dir, size_t every,
                                         size_t keep) {
  persist::CheckpointOptions options;
  options.dir = dir;
  options.every = every;
  options.keep = keep;
  options.metrics = metrics_;
  std::lock_guard<std::mutex> lock(mutex_);
  checkpointer_ =
      std::make_unique<persist::CheckpointManager>(std::move(options));
}

bool RealtimePipeline::RestoreFromSnapshot(std::istream& snapshot,
                                           std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ingest_count_ != 0 || !pipeline_.profiles().empty()) {
    if (error != nullptr) {
      *error = "RestoreFromSnapshot requires a pipeline that has not "
               "ingested anything";
    }
    return false;
  }
  persist::SnapshotReader reader;
  if (!reader.Parse(snapshot, error)) return false;
  std::istringstream st;
  if (!reader.Open("realtime.state", &st, error)) return false;
  uint64_t ingests = 0;
  uint64_t comparisons = 0;
  uint64_t matches = 0;
  if (!serial::ReadU64(st, &ingests) || !serial::ReadU64(st, &comparisons) ||
      !serial::ReadU64(st, &matches)) {
    if (error != nullptr) {
      *error = "section 'realtime.state' failed to decode";
    }
    return false;
  }
  if (!pipeline_.Restore(reader, error)) return false;
  ingest_count_ = ingests;
  comparisons_.store(comparisons);
  matches_.store(matches);
  // The restored prioritizer may hold pending comparisons; wake the
  // worker to resume emitting them.
  idle_ = false;
  work_cv_.notify_all();
  return true;
}

void RealtimePipeline::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock, [this] { return idle_ || stop_; });
}

void RealtimePipeline::WorkerLoop() {
  for (;;) {
    std::vector<Comparison> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !idle_; });
      if (stop_) return;
      batch = pipeline_.EmitBatch();
      if (batch.empty()) {
        idle_ = true;
        obs::CounterAdd(idle_transitions_metric_);
        obs::GaugeSet(worker_idle_metric_, 1.0);
        drained_cv_.notify_all();
        continue;
      }
    }
    // Matching runs outside the mutex so ingest is never blocked on
    // matcher work: the batch references only profiles that were fully
    // ingested before EmitBatch, and the chunked ProfileStore keeps
    // their addresses stable under concurrent Add. The executor shards
    // the batch across execution_threads workers, preserving emission
    // order; only the classification is consumed here, so the
    // verdict-only kernel path applies.
    Stopwatch sw;
    const std::vector<MatchVerdict> verdicts =
        executor_.ExecuteVerdicts(batch, pipeline_.profiles());
    const double seconds = sw.ElapsedSeconds();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pipeline_.ReportBatchCost(batch.size(), seconds);
    }
    obs::CounterAdd(batches_metric_);
    if (match_ns_metric_ != nullptr && seconds > 0.0) {
      match_ns_metric_->Record(static_cast<uint64_t>(seconds * 1e9));
    }
    comparisons_.fetch_add(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!verdicts[i].is_match) continue;
      matches_.fetch_add(1);
      // Fold the verdict into the online cluster index before the user
      // callback, so a ClusterOf() issued from the callback already
      // sees the two profiles co-clustered. RecordMatch takes the
      // index's internal writer mutex, not mutex_, so cluster
      // maintenance never contends with Ingest.
      pipeline_.RecordMatch(batch[i].x, batch[i].y);
      on_match_(batch[i].x, batch[i].y);
    }
  }
}

}  // namespace pier
