// Real-time (wall-clock, multi-threaded) deployment wrapper around
// PierPipeline: a producer thread (your code) feeds increments via
// Ingest(); a background worker continuously emits the best
// comparisons, hands them to the parallel match executor, and invokes
// a callback for every detected duplicate. This mirrors the paper's
// asynchronous Akka-Streams deployment, while the discrete-event
// StreamSimulator remains the tool for reproducible evaluation.
//
// Threading model: the internal mutex guards only pipeline state
// (prioritizer indexes, blocking structures, the adaptive-K
// controller) — the worker takes it to emit a batch and to report its
// cost, but *matching runs outside the lock*. Profile reads during
// matching are lock-free: the chunked ProfileStore guarantees stable
// addresses under concurrent ingest, and a batch only references
// profiles ingested before it was emitted. Matching itself is sharded
// across options.execution_threads workers by ParallelMatchExecutor,
// which preserves emission order, so the verdict stream (and thus the
// match-callback order within a batch) is deterministic and identical
// for every thread count.

#ifndef PIER_STREAM_REALTIME_PIPELINE_H_
#define PIER_STREAM_REALTIME_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pier_pipeline.h"
#include "similarity/matcher.h"
#include "similarity/parallel_executor.h"
#include "util/stopwatch.h"

namespace pier {
namespace persist {
class CheckpointManager;
}  // namespace persist
}  // namespace pier

namespace pier {

class RealtimePipeline {
 public:
  // Called from the worker thread for every pair the matcher
  // classified as a duplicate.
  using MatchCallback = std::function<void(ProfileId, ProfileId)>;

  // `matcher` must outlive this object. options.execution_threads
  // sets the match-execution parallelism (1 = sequential).
  RealtimePipeline(PierOptions options, const Matcher* matcher,
                   MatchCallback on_match);

  // Stops the worker and joins it. Pending prioritized comparisons are
  // abandoned unless Drain() was called first.
  ~RealtimePipeline();

  RealtimePipeline(const RealtimePipeline&) = delete;
  RealtimePipeline& operator=(const RealtimePipeline&) = delete;

  // Thread-safe: feeds one increment (profiles with dense ids
  // continuing ingestion order) and wakes the worker.
  void Ingest(std::vector<EntityProfile> profiles);

  // Blocks until the prioritizer has no more comparisons to emit
  // (including block-scanner backfill). Call after the last Ingest to
  // get eventual quality.
  void Drain();

  // Best-effort durability: after every `every`-th Ingest a snapshot
  // of the pipeline is written atomically to `dir` (rotated down to
  // the newest `keep`; see persist/checkpoint_manager.h). The snapshot
  // is taken under the state mutex, so it captures the pipeline at a
  // consistent instant; a batch in flight through the matcher at crash
  // time is lost (its pairs were already marked executed at emission),
  // which is the wrapper's inherent at-most-once callback contract.
  void EnableCheckpoints(const std::string& dir, size_t every = 10,
                         size_t keep = 3);

  // Restores state from a snapshot written by a checkpointing
  // RealtimePipeline constructed with the same PierOptions. Must be
  // called before the first Ingest; returns false with a diagnostic in
  // *error on a corrupt or mismatched snapshot (state is untouched).
  bool RestoreFromSnapshot(std::istream& snapshot, std::string* error);

  // Online cluster queries (thread-safe, lock-free): the current
  // entity cluster of `id`, maintained from every positive verdict the
  // worker produced so far. Never blocks Ingest or the worker — the
  // ClusterIndex read side is seqlock-validated, not lock-based (see
  // serve/cluster_index.h). Query answers always reflect a prefix of
  // the verdict stream.
  serve::ClusterView ClusterOf(ProfileId id) const {
    return pipeline_.clusters().ClusterOf(id);
  }
  ProfileId ClusterIdOf(ProfileId id) const {
    return pipeline_.clusters().ClusterIdOf(id);
  }
  const serve::ClusterIndex& clusters() const { return pipeline_.clusters(); }

  // Statistics (thread-safe, approximate while running).
  uint64_t comparisons_processed() const { return comparisons_.load(); }
  uint64_t matches_found() const { return matches_.load(); }

  size_t execution_threads() const { return executor_.num_threads(); }

 private:
  void WorkerLoop();
  void MaybeCheckpoint();  // caller holds mutex_

  PierPipeline pipeline_;
  const Matcher* matcher_;
  ParallelMatchExecutor executor_;
  MatchCallback on_match_;
  Stopwatch lifetime_;  // arrival timestamps for the K controller
  obs::MetricsRegistry* metrics_ = nullptr;

  // Checkpointing (EnableCheckpoints); guarded by mutex_.
  std::unique_ptr<persist::CheckpointManager> checkpointer_;
  uint64_t ingest_count_ = 0;

  // `realtime.*` metrics (from PierOptions::metrics); the worker's
  // idle/drain transitions and the per-batch flow through the
  // emit -> match -> callback loop. Null when un-instrumented.
  obs::Counter* ingests_metric_ = nullptr;
  obs::Counter* batches_metric_ = nullptr;
  obs::Counter* idle_transitions_metric_ = nullptr;
  obs::Gauge* worker_idle_metric_ = nullptr;
  obs::Histogram* match_ns_metric_ = nullptr;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable drained_cv_;
  bool stop_ = false;
  bool idle_ = false;  // worker found no work on its last pass

  std::atomic<uint64_t> comparisons_{0};
  std::atomic<uint64_t> matches_{0};

  std::thread worker_;
};

}  // namespace pier

#endif  // PIER_STREAM_REALTIME_PIPELINE_H_
