// Real-time (wall-clock, multi-threaded) deployment wrapper around
// PierPipeline: a producer thread (your code) feeds increments via
// Ingest(); a background worker continuously emits the best
// comparisons, hands them to the parallel match executor, and invokes
// a callback for every detected duplicate. This mirrors the paper's
// asynchronous Akka-Streams deployment, while the discrete-event
// StreamSimulator remains the tool for reproducible evaluation.
//
// Since the sharded ingest path landed, RealtimePipeline is the
// one-shard instantiation of ShardedPipeline (see
// stream/sharded_pipeline.h for the full threading model): one shard
// worker runs the emit -> match loop over a bounded microbatch queue,
// and the combiner thread folds verdicts into the serving ClusterIndex
// and the match callback. The verdict stream, cluster answers, and
// realtime.* metrics are those of the classic single-worker
// implementation; scale-out is one constructor argument away
// (ShardedOptions::shard_count).

#ifndef PIER_STREAM_REALTIME_PIPELINE_H_
#define PIER_STREAM_REALTIME_PIPELINE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "stream/sharded_pipeline.h"

namespace pier {

class RealtimePipeline {
 public:
  // Called from the combiner thread for every pair the matcher
  // classified as a duplicate.
  using MatchCallback = ShardedPipeline::MatchCallback;

  // `matcher` must outlive this object. options.execution_threads
  // sets the match-execution parallelism (1 = sequential).
  RealtimePipeline(PierOptions options, const Matcher* matcher,
                   MatchCallback on_match)
      : impl_(MakeOptions(std::move(options)), matcher, std::move(on_match)) {}

  // Stops the workers and joins them. Pending prioritized comparisons
  // are abandoned unless Drain() was called first.
  ~RealtimePipeline() = default;

  RealtimePipeline(const RealtimePipeline&) = delete;
  RealtimePipeline& operator=(const RealtimePipeline&) = delete;

  // Thread-safe: feeds one increment (profiles with dense ids
  // continuing ingestion order, or kInvalidProfileId ids for the
  // router to assign) and wakes the worker. Returns false with a
  // stderr diagnostic -- ingesting nothing -- after Stop() or after a
  // restore attempt that failed mid-way (the pipeline state is then
  // partial; a silently accepted increment would never produce
  // correct verdicts).
  bool Ingest(std::vector<EntityProfile> profiles) {
    return impl_.Ingest(std::move(profiles));
  }

  // Mutable streams (requires options.mutable_stream): retract
  // profiles / apply corrections. The call quiesces the pipeline and
  // applies the mutation before returning, so cluster queries reflect
  // it immediately (see ShardedPipeline::Delete / Update).
  bool Delete(const std::vector<ProfileId>& ids) {
    return impl_.Delete(ids);
  }
  bool Update(std::vector<EntityProfile> profiles) {
    return impl_.Update(std::move(profiles));
  }

  // Signals that no further increments will arrive, unlocking the
  // block scanner's full tail rescan. Call before the final Drain()
  // for eventual (batch-equivalent) quality.
  void NotifyStreamEnd() { impl_.NotifyStreamEnd(); }

  // Blocks until the prioritizer has no more comparisons to emit and
  // every verdict produced so far has been delivered. Call after the
  // last Ingest to get eventual quality.
  void Drain() { impl_.Drain(); }

  // Stops and joins the workers early (the destructor's shutdown,
  // callable explicitly). Idempotent; subsequent Ingest() calls are
  // rejected.
  void Stop() { impl_.Stop(); }

  // Best-effort durability: after every `every`-th Ingest the pipeline
  // quiesces and writes an atomic snapshot to `dir` (rotated down to
  // the newest `keep`; see persist/checkpoint_manager.h). A batch in
  // flight through the matcher is finished before the snapshot is cut,
  // so the file captures a consistent instant.
  void EnableCheckpoints(const std::string& dir, size_t every = 10,
                         size_t keep = 3) {
    impl_.EnableCheckpoints(dir, every, keep);
  }

  // Restores state from a snapshot written by a checkpointing
  // RealtimePipeline constructed with the same PierOptions. Must be
  // called before the first Ingest; returns false with a diagnostic in
  // *error on a corrupt or mismatched snapshot. Early validation
  // failures leave the pipeline usable; a decode failure after
  // restoration began poisons it (see
  // ShardedPipeline::RestoreFromSnapshot).
  bool RestoreFromSnapshot(std::istream& snapshot, std::string* error) {
    return impl_.RestoreFromSnapshot(snapshot, error);
  }

  // Online cluster queries (thread-safe, lock-free): the current
  // entity cluster of `id`, maintained from every positive verdict
  // delivered so far. Never blocks Ingest or the workers — the
  // ClusterIndex read side is seqlock-validated, not lock-based (see
  // serve/cluster_index.h). Query answers always reflect a prefix of
  // the verdict stream.
  serve::ClusterView ClusterOf(ProfileId id) const {
    return impl_.ClusterOf(id);
  }
  ProfileId ClusterIdOf(ProfileId id) const { return impl_.ClusterIdOf(id); }
  const serve::ClusterIndex& clusters() const { return impl_.clusters(); }

  // Statistics (thread-safe, approximate while running).
  uint64_t comparisons_processed() const {
    return impl_.comparisons_processed();
  }
  uint64_t matches_found() const { return impl_.matches_found(); }
  // Ingest() calls so far (after a restore: as of the checkpoint).
  uint64_t ingests() const { return impl_.ingests(); }

  size_t execution_threads() const { return impl_.execution_threads(); }

 private:
  static ShardedOptions MakeOptions(PierOptions options) {
    ShardedOptions sharded;
    sharded.pipeline = std::move(options);
    sharded.shard_count = 1;
    return sharded;
  }

  ShardedPipeline impl_;
};

}  // namespace pier

#endif  // PIER_STREAM_REALTIME_PIPELINE_H_
