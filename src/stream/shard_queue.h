// Bounded multi-producer blocking queue for the sharded ingest path
// (stream/sharded_pipeline.h): the router pushes microbatches, one
// shard worker pops them, and the combiner uses a second instance for
// per-shard verdict batches.
//
// Backpressure semantics: Push blocks while the queue holds `capacity`
// items, so a slow shard stalls the router (and, transitively, every
// producer calling Ingest) instead of letting unprocessed microbatches
// grow without bound. The time a Push spent blocked is reported to the
// caller for the shard.backpressure_* metrics.
//
// Shutdown: Close() wakes every blocked Push/Pop. A closed queue
// rejects new pushes; Pop keeps draining already-queued items and
// returns false only when the queue is both closed and empty, so a
// graceful shutdown can finish queued work while an abort path (see
// ShardedPipeline::Stop) simply stops popping.

#ifndef PIER_STREAM_SHARD_QUEUE_H_
#define PIER_STREAM_SHARD_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace pier {

template <typename T>
class ShardQueue {
 public:
  explicit ShardQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  ShardQueue(const ShardQueue&) = delete;
  ShardQueue& operator=(const ShardQueue&) = delete;

  // Blocks until there is room (backpressure) or the queue is closed.
  // Returns false iff the queue was closed before the item could be
  // enqueued. When `wait_ns` is non-null it receives the nanoseconds
  // this call spent blocked on a full queue (0 when it never waited).
  bool Push(T item, uint64_t* wait_ns = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (wait_ns != nullptr) *wait_ns = 0;
    if (items_.size() >= capacity_ && !closed_) {
      const auto start = std::chrono::steady_clock::now();
      not_full_.wait(lock,
                     [this] { return items_.size() < capacity_ || closed_; });
      if (wait_ns != nullptr) {
        *wait_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
      }
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and
  // empty. Returns false only in the closed-and-empty case.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking variant: returns false when the queue is currently
  // empty (closed or not).
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pier

#endif  // PIER_STREAM_SHARD_QUEUE_H_
