#include "stream/sharded_pipeline.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

#include "persist/checkpoint_manager.h"
#include "persist/snapshot.h"
#include "util/check.h"
#include "util/hashing.h"
#include "util/serial.h"

namespace pier {

namespace {

constexpr uint32_t kOwnerUnassigned = UINT32_MAX;

obs::Histogram* LatencyHistogram(obs::MetricsRegistry* metrics) {
  return metrics == nullptr
             ? nullptr
             : metrics->GetHistogram("realtime.ingest_to_first_verdict_ns");
}

obs::Gauge* PendingGauge(obs::MetricsRegistry* metrics) {
  return metrics == nullptr ? nullptr
                            : metrics->GetGauge("realtime.pending_ingests");
}

// Drain-time close-outs measure time-to-quiescence, not verdict
// freshness; they get their own histogram so the freshness percentiles
// stay honest (see stream/ingest_latency.h).
obs::Histogram* DrainHistogram(obs::MetricsRegistry* metrics) {
  return metrics == nullptr
             ? nullptr
             : metrics->GetHistogram("realtime.ingest_to_quiescence_ns");
}

}  // namespace

ShardedPipeline::ShardedPipeline(ShardedOptions options, const Matcher* matcher,
                                 MatchCallback on_match)
    : options_(std::move(options)),
      matcher_(matcher),
      on_match_(std::move(on_match)),
      tokenizer_(options_.pipeline.tokenizer),
      verdict_queue_(options_.verdict_queue_capacity),
      metrics_(options_.pipeline.metrics),
      latency_tracker_(LatencyHistogram(options_.pipeline.metrics),
                       PendingGauge(options_.pipeline.metrics),
                       DrainHistogram(options_.pipeline.metrics)) {
  PIER_CHECK(matcher_ != nullptr);
  PIER_CHECK(options_.shard_count >= 1);
  if (options_.pipeline.mutable_stream) clusters_.EnableRetraction();
  if (metrics_ != nullptr) {
    obs::MetricsRegistry& r = *metrics_;
    ingests_metric_ = r.GetCounter("realtime.ingests");
    deletes_metric_ = r.GetCounter("realtime.deletes");
    updates_metric_ = r.GetCounter("realtime.updates");
    batches_metric_ = r.GetCounter("realtime.batches");
    idle_transitions_metric_ = r.GetCounter("realtime.idle_transitions");
    worker_idle_metric_ = r.GetGauge("realtime.worker_idle");
    match_ns_metric_ = r.GetHistogram("realtime.match_ns");
    queue_depth_metric_ = r.GetGauge("realtime.queue_depth");
    microbatches_metric_ = r.GetCounter("shard.microbatches");
    backpressure_waits_metric_ = r.GetCounter("shard.backpressure_waits");
    backpressure_wait_ns_metric_ = r.GetHistogram("shard.backpressure_wait_ns");
    verdict_queue_depth_metric_ = r.GetGauge("shard.verdict_queue_depth");
    verdict_batches_metric_ = r.GetCounter("shard.verdict_batches");
    duplicates_metric_ = r.GetCounter("shard.duplicates_suppressed");
    clusters_.InstrumentWith(metrics_);
  }
  shards_.reserve(options_.shard_count);
  for (size_t s = 0; s < options_.shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    PierOptions shard_options = options_.pipeline;
    shard_options.track_clusters = false;
    shard_options.token_shard_count =
        static_cast<uint32_t>(options_.shard_count);
    shard_options.token_shard_index = static_cast<uint32_t>(s);
    shard->pipeline = std::make_unique<PierPipeline>(shard_options);
    shard->executor = std::make_unique<ParallelMatchExecutor>(
        matcher_, options_.pipeline.execution_threads,
        options_.pipeline.metrics);
    shard->queue = std::make_unique<ShardQueue<Microbatch>>(
        options_.queue_capacity);
    if (metrics_ != nullptr) {
      const std::string base = "shard." + std::to_string(s);
      shard->queue_depth_metric = metrics_->GetGauge(base + ".queue_depth");
      shard->busy_metric = metrics_->GetGauge(base + ".busy");
    }
    shards_.push_back(std::move(shard));
  }
  obs::GaugeSet(worker_idle_metric_, 1.0);
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->worker = std::thread([this, s] { ShardLoop(s); });
  }
  combiner_ = std::thread([this] { CombinerLoop(); });
}

ShardedPipeline::~ShardedPipeline() { Stop(); }

void ShardedPipeline::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  {
    // Taking state_mutex_ here pairs with the Drain/Quiesce waiters'
    // predicate check, so the stop_ store cannot slip between a
    // waiter's predicate evaluation and its sleep.
    std::lock_guard<std::mutex> lock(state_mutex_);
  }
  drained_cv_.notify_all();
  // Close the verdict queue before joining the workers: a worker
  // blocked pushing a verdict batch must observe the close and bail
  // out, while the combiner keeps draining already-queued batches.
  for (auto& shard : shards_) shard->queue->Close();
  verdict_queue_.Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  if (combiner_.joinable()) combiner_.join();
}

size_t ShardedPipeline::OwnerOf(TokenId id) {
  if (options_.shard_count == 1) return 0;
  if (token_owner_.size() <= id) {
    token_owner_.resize(dictionary_.size() > id ? dictionary_.size() : id + 1,
                        kOwnerUnassigned);
  }
  uint32_t& owner = token_owner_[id];
  if (owner == kOwnerUnassigned) {
    owner = static_cast<uint32_t>(Mix64(HashString(dictionary_.Spelling(id))) %
                                  options_.shard_count);
  }
  return owner;
}

bool ShardedPipeline::Ingest(std::vector<EntityProfile> profiles) {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  if (stop_.load(std::memory_order_acquire)) {
    std::fprintf(stderr,
                 "pier: Ingest rejected: the pipeline was stopped (Stop() or "
                 "destruction); construct a fresh pipeline to ingest again\n");
    return false;
  }
  if (poisoned_) {
    std::fprintf(stderr,
                 "pier: Ingest rejected: a failed RestoreFromSnapshot left "
                 "this pipeline partially restored; construct a fresh "
                 "pipeline and retry the restore\n");
    return false;
  }
  const size_t shard_count = options_.shard_count;
  const double arrival_s = lifetime_.ElapsedSeconds();
  std::vector<Microbatch> per_shard(shard_count);
  for (auto& profile : profiles) {
    // Multi-producer ingest cannot pre-assign dense ids; the router
    // assigns arrival order under its mutex.
    if (profile.id == kInvalidProfileId) {
      profile.id = static_cast<ProfileId>(profiles_.size());
    }
    tokenizer_.TokenizeProfile(profile, dictionary_);
    for (size_t s = 0; s < shard_count; ++s) {
      PretokenizedProfile item;
      item.id = profile.id;
      item.source = profile.source;
      per_shard[s].items.push_back(std::move(item));
    }
    for (TokenId token : profile.tokens()) {
      per_shard[OwnerOf(token)].items.back().tokens.emplace_back(
          dictionary_.Spelling(token));
    }
    profiles_.Add(std::move(profile));
  }
  clusters_.TrackUpTo(profiles_.size());
  for (auto& microbatch : per_shard) microbatch.arrival_s = arrival_s;
  // The arrival must be registered before the queues see the
  // microbatches: a fast worker can otherwise deliver this
  // increment's verdicts before the registration, and the ingest
  // would miss its first-verdict closeout.
  latency_tracker_.OnIngest();
  // Route before any success bookkeeping: a Stop() racing this call
  // closes the queues, and a Push blocked on backpressure then drops
  // its microbatch -- the increment (or part of it) never reaches the
  // shards, so reporting success would silently lose it.
  if (!Route(std::move(per_shard))) {
    latency_tracker_.OnIngestAbandoned();
    std::fprintf(stderr,
                 "pier: Ingest failed: the pipeline stopped while the "
                 "increment was being routed; the increment was dropped\n");
    return false;
  }
  ++ingest_count_;
  obs::CounterAdd(ingests_metric_);
  if (checkpointer_ != nullptr && checkpointer_->Due(ingest_count_)) {
    CheckpointLocked();
  }
  return true;
}

void ShardedPipeline::NotifyStreamEnd() {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  if (stop_.load(std::memory_order_acquire) || poisoned_) return;
  std::vector<Microbatch> per_shard(options_.shard_count);
  for (auto& microbatch : per_shard) microbatch.stream_end = true;
  Route(std::move(per_shard));
}

bool ShardedPipeline::BeginMutationLocked(const char* verb) {
  PIER_CHECK(options_.pipeline.mutable_stream);
  if (stop_.load(std::memory_order_acquire)) {
    std::fprintf(stderr, "pier: %s rejected: the pipeline was stopped\n",
                 verb);
    return false;
  }
  if (poisoned_) {
    std::fprintf(stderr,
                 "pier: %s rejected: a failed RestoreFromSnapshot left this "
                 "pipeline partially restored\n",
                 verb);
    return false;
  }
  // Quiesce: with ingest_mutex_ held no new work can arrive; once every
  // routed microbatch is ingested and every verdict delivered, the
  // shard workers are parked in Pop and the combiner in its queue --
  // the router may then touch shard engines and the delivered filter
  // directly, exactly like the checkpoint path.
  QuiesceLocked();
  return !stop_.load(std::memory_order_acquire);
}

void ShardedPipeline::RetractLocked(ProfileId id) {
  // Every shard engine holds the profile (with its token slice);
  // deletes fan out to all of them. Shard Delete is idempotent, so a
  // shard whose slice of the profile was empty still tombstones its
  // store slot and keeps ids aligned.
  for (auto& shard : shards_) shard->pipeline->Delete({id});
  // Global tokens / doc frequencies.
  const EntityProfile& p = profiles_.Get(id);
  for (const TokenId token : p.tokens()) {
    dictionary_.DecrementDocFrequency(token);
  }
  // The cross-shard delivered filter: withdraw every delivered pair
  // with this endpoint so a corrected profile's verdicts re-deliver.
  for (const ProfileId partner : delivered_pairs_.Take(id)) {
    const uint64_t key = PairKey(id, partner);
    if (options_.pipeline.exact_executed_filter) {
      delivered_exact_.erase(key);
    } else {
      delivered_counting_.Remove(key);
    }
  }
  // The serving index: the id reports absence, survivors re-resolve.
  clusters_.RemoveProfile(id);
}

bool ShardedPipeline::Delete(const std::vector<ProfileId>& ids) {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  if (!BeginMutationLocked("Delete")) return false;
  uint64_t deleted = 0;
  for (const ProfileId id : ids) {
    PIER_CHECK(id < profiles_.size());
    if (!profiles_.IsLive(id)) continue;  // idempotent
    RetractLocked(id);
    profiles_.Remove(id);
    ++deleted;
  }
  ++ingest_count_;
  obs::CounterAdd(deletes_metric_, deleted);
  if (checkpointer_ != nullptr && checkpointer_->Due(ingest_count_)) {
    CheckpointLocked();
  }
  return true;
}

bool ShardedPipeline::Update(std::vector<EntityProfile> profiles) {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  if (!BeginMutationLocked("Update")) return false;
  const size_t shard_count = options_.shard_count;
  const double arrival_s = lifetime_.ElapsedSeconds();
  std::vector<std::vector<PretokenizedProfile>> per_shard(shard_count);
  for (auto& profile : profiles) {
    const ProfileId id = profile.id;
    PIER_CHECK(id < profiles_.size());
    if (profiles_.IsLive(id)) RetractLocked(id);
    // Re-ingest the corrected content exactly like Ingest routes a
    // fresh arrival: tokenize once globally, split tokens by owner.
    tokenizer_.TokenizeProfile(profile, dictionary_);
    for (size_t s = 0; s < shard_count; ++s) {
      PretokenizedProfile item;
      item.id = id;
      item.source = profile.source;
      per_shard[s].push_back(std::move(item));
    }
    for (TokenId token : profile.tokens()) {
      per_shard[OwnerOf(token)].back().tokens.emplace_back(
          dictionary_.Spelling(token));
    }
    profiles_.Replace(std::move(profile));
    clusters_.ReviveAsSingleton(id);
  }
  const uint64_t updated = profiles.size();
  // Applied synchronously on the quiesced engines (the workers are
  // parked); the post-update kick below wakes them to emit the
  // rescheduled comparisons.
  for (size_t s = 0; s < shard_count; ++s) {
    if (!per_shard[s].empty()) {
      shards_[s]->pipeline->UpdatePretokenized(std::move(per_shard[s]));
    }
  }
  std::vector<Microbatch> kick(shard_count);
  for (auto& microbatch : kick) microbatch.arrival_s = arrival_s;
  latency_tracker_.OnIngest();  // before the push; see Ingest()
  if (!Route(std::move(kick))) {
    latency_tracker_.OnIngestAbandoned();
    return false;
  }
  ++ingest_count_;
  obs::CounterAdd(updates_metric_, updated);
  if (checkpointer_ != nullptr && checkpointer_->Due(ingest_count_)) {
    CheckpointLocked();
  }
  return true;
}

bool ShardedPipeline::Route(std::vector<Microbatch> per_shard) {
  bool complete = true;
  for (size_t s = 0; s < per_shard.size(); ++s) {
    Shard& shard = *shards_[s];
    queued_microbatches_.fetch_add(1, std::memory_order_release);
    uint64_t wait_ns = 0;
    if (!shard.queue->Push(std::move(per_shard[s]), &wait_ns)) {
      // Closed: the pipeline is stopping and the worker will never
      // pop. The microbatch is dropped -- keep routing the remaining
      // shards' rejections cheap (their queues are closed too) but
      // report the loss to the caller.
      queued_microbatches_.fetch_sub(1, std::memory_order_release);
      complete = false;
      continue;
    }
    if (wait_ns > 0) {
      obs::CounterAdd(backpressure_waits_metric_);
      obs::HistogramRecord(backpressure_wait_ns_metric_, wait_ns);
    }
    obs::GaugeSet(shard.queue_depth_metric,
                  static_cast<double>(shard.queue->size()));
  }
  obs::CounterAdd(microbatches_metric_, per_shard.size());
  obs::GaugeSet(queue_depth_metric_,
                static_cast<double>(
                    queued_microbatches_.load(std::memory_order_relaxed)));
  obs::GaugeSet(worker_idle_metric_, 0.0);
  return complete;
}

void ShardedPipeline::OnMicrobatchPopped(Shard& shard) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    shard.idle = false;
    queued_microbatches_.fetch_sub(1, std::memory_order_release);
  }
  obs::GaugeSet(shard.busy_metric, 1.0);
  obs::GaugeSet(worker_idle_metric_, 0.0);
  obs::GaugeSet(shard.queue_depth_metric,
                static_cast<double>(shard.queue->size()));
  obs::GaugeSet(queue_depth_metric_,
                static_cast<double>(
                    queued_microbatches_.load(std::memory_order_relaxed)));
}

void ShardedPipeline::MarkShardIdle(Shard& shard) {
  bool all_idle = true;
  bool transitioned = false;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    transitioned = !shard.idle;
    shard.idle = true;
    for (const auto& s : shards_) all_idle = all_idle && s->idle;
  }
  if (transitioned) obs::CounterAdd(idle_transitions_metric_);
  obs::GaugeSet(shard.busy_metric, 0.0);
  if (all_idle) obs::GaugeSet(worker_idle_metric_, 1.0);
  drained_cv_.notify_all();
}

void ShardedPipeline::IngestMicrobatch(Shard& shard, Microbatch& microbatch) {
  if (microbatch.stream_end) {
    shard.pipeline->NotifyStreamEnd();
    return;
  }
  shard.pipeline->ReportArrival(microbatch.arrival_s);
  if (!microbatch.items.empty()) {
    shard.pipeline->IngestPretokenized(std::move(microbatch.items));
  }
}

void ShardedPipeline::ShardLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  PierPipeline& pipeline = *shard.pipeline;
  // Matching reads the router's global store: shard profiles carry
  // only the shard's token slice, while verdicts must be computed on
  // the full profiles. The chunked store keeps addresses stable under
  // concurrent router Adds, and every emitted pair was fully published
  // before its microbatch was queued.
  const ParallelMatchExecutor::ProfileLookup lookup =
      [this](ProfileId id) -> const EntityProfile& {
    return profiles_.Get(id);
  };
  Microbatch microbatch;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    if (shard.queue->TryPop(&microbatch)) {
      OnMicrobatchPopped(shard);
      IngestMicrobatch(shard, microbatch);
      continue;
    }
    std::vector<Comparison> batch = pipeline.EmitBatch();
    if (!batch.empty()) {
      Stopwatch sw;
      const std::vector<MatchVerdict> verdicts =
          shard.executor->ExecuteVerdicts(batch, lookup);
      const double seconds = sw.ElapsedSeconds();
      pipeline.ReportBatchCost(batch.size(), seconds);
      obs::CounterAdd(batches_metric_);
      if (match_ns_metric_ != nullptr && seconds > 0.0) {
        match_ns_metric_->Record(static_cast<uint64_t>(seconds * 1e9));
      }
      VerdictBatch out;
      out.shard = shard_index;
      out.comparisons = std::move(batch);
      out.is_match.resize(verdicts.size());
      for (size_t i = 0; i < verdicts.size(); ++i) {
        out.is_match[i] = verdicts[i].is_match ? 1 : 0;
        // Per-shard verdict feedback: the shard that scheduled the
        // pair folds the outcome into its own prioritizer (FB-PCS
        // block posteriors). Scheduling order may shift, but the
        // drained comparison *set* -- hence cluster equivalence -- is
        // unchanged.
        pipeline.RecordVerdict(out.comparisons[i].x, out.comparisons[i].y,
                               verdicts[i].is_match);
      }
      verdicts_pushed_.fetch_add(1, std::memory_order_release);
      if (!verdict_queue_.Push(std::move(out))) return;  // stopping
      obs::GaugeSet(verdict_queue_depth_metric_,
                    static_cast<double>(verdict_queue_.size()));
      continue;
    }
    // Fully drained for now: publish idle, then block for more input.
    MarkShardIdle(shard);
    if (!shard.queue->Pop(&microbatch)) return;  // closed and empty
    OnMicrobatchPopped(shard);
    IngestMicrobatch(shard, microbatch);
  }
}

bool ShardedPipeline::AlreadyDelivered(const Comparison& c) {
  const uint64_t key = c.Key();
  bool newly_added;
  if (options_.pipeline.exact_executed_filter) {
    newly_added = delivered_exact_.insert(key).second;
  } else if (options_.pipeline.mutable_stream) {
    newly_added = !delivered_counting_.TestAndAdd(key);
  } else {
    return delivered_filter_.TestAndAdd(key);
  }
  // Mutable streams record the pair exactly once per filter insert so
  // a retraction can withdraw the key (see core/pier_pipeline.cc for
  // the same contract on the per-shard filters).
  if (newly_added && options_.pipeline.mutable_stream) {
    delivered_pairs_.Add(c.x, c.y);
  }
  return !newly_added;
}

void ShardedPipeline::CombinerLoop() {
  // With one shard there is nothing to dedup: the shard's own
  // executed-comparison filter already guarantees exactly-once
  // delivery, and skipping the global filter keeps the N = 1 verdict
  // stream bit-identical to the classic RealtimePipeline (no second
  // Bloom filter that could drop a pair).
  const bool dedup = options_.shard_count > 1;
  std::vector<std::pair<ProfileId, ProfileId>> matched;
  VerdictBatch batch;
  while (verdict_queue_.Pop(&batch)) {
    obs::GaugeSet(verdict_queue_depth_metric_,
                  static_cast<double>(verdict_queue_.size()));
    obs::CounterAdd(verdict_batches_metric_);
    matched.clear();
    uint64_t delivered = 0;
    uint64_t duplicates = 0;
    for (size_t i = 0; i < batch.comparisons.size(); ++i) {
      const Comparison& c = batch.comparisons[i];
      if (dedup && AlreadyDelivered(c)) {
        // A pair sharing blocks owned by two shards was matched by
        // both; deliver the first verdict, drop the echo.
        ++duplicates;
        continue;
      }
      ++delivered;
      const bool is_match = batch.is_match[i] != 0;
      if (is_match) matched.emplace_back(c.x, c.y);
      if (options_.on_verdict) options_.on_verdict(c.x, c.y, is_match);
    }
    comparisons_.fetch_add(delivered, std::memory_order_relaxed);
    if (duplicates > 0) {
      duplicates_suppressed_.fetch_add(duplicates, std::memory_order_relaxed);
      obs::CounterAdd(duplicates_metric_, duplicates);
    }
    if (!matched.empty()) {
      matches_.fetch_add(matched.size(), std::memory_order_relaxed);
      // Fold the whole batch into the serving index before the user
      // callbacks, so a ClusterOf() issued from a callback already
      // sees the new co-clusterings.
      clusters_.AddMatches(matched.data(), matched.size());
      for (const auto& pair : matched) on_match_(pair.first, pair.second);
    }
    latency_tracker_.OnVerdictDelivered();
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      verdicts_consumed_.fetch_add(1, std::memory_order_release);
    }
    drained_cv_.notify_all();
  }
}

bool ShardedPipeline::DrainedLocked() const {
  if (queued_microbatches_.load(std::memory_order_acquire) != 0) return false;
  if (verdicts_pushed_.load(std::memory_order_acquire) !=
      verdicts_consumed_.load(std::memory_order_acquire)) {
    return false;
  }
  for (const auto& shard : shards_) {
    if (!shard->idle) return false;
  }
  return true;
}

void ShardedPipeline::Drain() {
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    drained_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) || DrainedLocked();
    });
  }
  // Quiescent: close out ingests that never produced a verdict. Their
  // samples are time-to-quiescence, not verdict freshness, so they
  // land in the drain histogram (see IngestLatencyTracker).
  latency_tracker_.FlushAll();
}

void ShardedPipeline::QuiesceLocked() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  drained_cv_.wait(lock, [this] {
    return stop_.load(std::memory_order_acquire) || DrainedLocked();
  });
}

uint64_t ShardedPipeline::ingests() const {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  return ingest_count_;
}

size_t ShardedPipeline::execution_threads() const {
  return shards_.front()->executor->num_threads();
}

void ShardedPipeline::EnableCheckpoints(const std::string& dir, size_t every,
                                        size_t keep) {
  persist::CheckpointOptions options;
  options.dir = dir;
  options.every = every;
  options.keep = keep;
  options.metrics = metrics_;
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  checkpointer_ =
      std::make_unique<persist::CheckpointManager>(std::move(options));
}

void ShardedPipeline::CheckpointLocked() {
  // Quiesce first: holding ingest_mutex_ keeps new work out while the
  // shards and the combiner finish everything routed so far, so the
  // snapshot is a consistent cut of the whole pipeline.
  QuiesceLocked();
  if (stop_.load(std::memory_order_acquire)) return;
  persist::SnapshotBuilder builder;
  SnapshotLocked(builder);
  std::string error;
  if (checkpointer_->Write(ingest_count_, builder, &error).empty()) {
    std::fprintf(stderr, "pier: sharded checkpoint %" PRIu64 " failed: %s\n",
                 ingest_count_, error.c_str());
  }
}

void ShardedPipeline::SnapshotLocked(persist::SnapshotBuilder& builder) const {
  std::ostream& meta = builder.AddSection("sharded.meta");
  serial::WriteU32(meta, static_cast<uint32_t>(options_.shard_count));
  serial::WriteU64(meta, ingest_count_);
  serial::WriteU64(meta, comparisons_.load(std::memory_order_relaxed));
  serial::WriteU64(meta, matches_.load(std::memory_order_relaxed));
  serial::WriteU64(meta,
                   duplicates_suppressed_.load(std::memory_order_relaxed));
  dictionary_.Snapshot(builder.AddSection("sharded.dictionary"));
  profiles_.Snapshot(builder.AddSection("sharded.profiles"));
  std::ostream& filter = builder.AddSection("sharded.filter");
  serial::WriteBool(filter, options_.pipeline.exact_executed_filter);
  if (options_.pipeline.exact_executed_filter) {
    std::vector<uint64_t> keys(delivered_exact_.begin(),
                               delivered_exact_.end());
    std::sort(keys.begin(), keys.end());
    serial::WriteVec(filter, keys, serial::WriteU64);
  } else if (options_.pipeline.mutable_stream) {
    delivered_counting_.Snapshot(filter);
  } else {
    delivered_filter_.Snapshot(filter);
  }
  // Mutable streams carry the retraction registry alongside whichever
  // filter is active; the shard fingerprints gate the mode, so an
  // append-only pipeline can never mis-decode a mutable snapshot past
  // its own shard sections.
  if (options_.pipeline.mutable_stream) delivered_pairs_.Snapshot(filter);
  clusters_.Snapshot(builder.AddSection("sharded.clusters"));
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->pipeline->Snapshot(builder, "shard" + std::to_string(s));
  }
}

bool ShardedPipeline::RestoreFromSnapshot(std::istream& snapshot,
                                          std::string* error) {
  std::lock_guard<std::mutex> lock(ingest_mutex_);
  auto set_error = [&](std::string message) {
    if (error != nullptr) *error = std::move(message);
  };
  if (stop_.load(std::memory_order_acquire)) {
    set_error("RestoreFromSnapshot rejected: the pipeline was stopped");
    return false;
  }
  if (poisoned_) {
    set_error(
        "RestoreFromSnapshot rejected: a previous failed restore left this "
        "pipeline partially restored; construct a fresh pipeline");
    return false;
  }
  if (ingest_count_ != 0 || !profiles_.empty()) {
    set_error(
        "RestoreFromSnapshot requires a pipeline that has not ingested "
        "anything");
    return false;
  }
  // Even a fresh pipeline's shard workers make one pass through
  // EmitBatch before parking in Pop; quiesce so no worker touches its
  // shard engine while the sections below overwrite it (with
  // ingest_mutex_ held, nothing can wake a parked worker until we
  // return).
  QuiesceLocked();
  if (stop_.load(std::memory_order_acquire)) {
    set_error("RestoreFromSnapshot rejected: the pipeline was stopped");
    return false;
  }
  persist::SnapshotReader reader;
  if (!reader.Parse(snapshot, error)) return false;
  std::istringstream meta;
  if (!reader.Open("sharded.meta", &meta, error)) return false;
  uint32_t shard_count = 0;
  uint64_t ingests = 0;
  uint64_t comparisons = 0;
  uint64_t matches = 0;
  uint64_t duplicates = 0;
  if (!serial::ReadU32(meta, &shard_count) ||
      !serial::ReadU64(meta, &ingests) ||
      !serial::ReadU64(meta, &comparisons) ||
      !serial::ReadU64(meta, &matches) ||
      !serial::ReadU64(meta, &duplicates)) {
    set_error("section 'sharded.meta' failed to decode");
    return false;
  }
  if (shard_count != options_.shard_count) {
    set_error("snapshot was written with " + std::to_string(shard_count) +
              " shards but this pipeline has " +
              std::to_string(options_.shard_count) +
              "; shard counts must match to restore");
    return false;
  }
  // Cheap structural checks before any mutation, so common mismatches
  // (wrong file, different shard layout) leave the pipeline usable.
  for (size_t s = 0; s < shards_.size(); ++s) {
    const std::string prefix = "shard" + std::to_string(s);
    if (!reader.Has(prefix + ".meta")) {
      set_error("snapshot is missing section '" + prefix +
                ".meta' (not a sharded-pipeline snapshot?)");
      return false;
    }
  }
  std::istringstream section;
  // From here on components mutate: a failure leaves the pipeline
  // partially restored, so it is poisoned and rejects further use.
  auto fail = [&](std::string message) {
    poisoned_ = true;
    set_error(std::move(message) +
              " (pipeline poisoned; construct a fresh instance to retry)");
    return false;
  };
  if (!reader.Open("sharded.dictionary", &section, error) ||
      !dictionary_.Restore(section)) {
    return fail("section 'sharded.dictionary' failed to restore");
  }
  if (!reader.Open("sharded.profiles", &section, error) ||
      !profiles_.Restore(section)) {
    return fail("section 'sharded.profiles' failed to restore");
  }
  if (!reader.Open("sharded.filter", &section, error)) {
    return fail("section 'sharded.filter' is missing");
  }
  bool exact = false;
  if (!serial::ReadBool(section, &exact) ||
      exact != options_.pipeline.exact_executed_filter) {
    return fail(
        "section 'sharded.filter' mode does not match "
        "options.exact_executed_filter");
  }
  if (exact) {
    std::vector<uint64_t> keys;
    if (!serial::ReadVec(section, &keys, serial::ReadU64)) {
      return fail("section 'sharded.filter' failed to decode");
    }
    delivered_exact_.insert(keys.begin(), keys.end());
  } else if (options_.pipeline.mutable_stream) {
    if (!delivered_counting_.Restore(section)) {
      return fail("section 'sharded.filter' failed to decode");
    }
  } else if (!delivered_filter_.Restore(section)) {
    return fail("section 'sharded.filter' failed to decode");
  }
  if (options_.pipeline.mutable_stream &&
      !delivered_pairs_.Restore(section)) {
    return fail("section 'sharded.filter' failed to decode");
  }
  if (!reader.Open("sharded.clusters", &section, error) ||
      !clusters_.Restore(section)) {
    return fail("section 'sharded.clusters' failed to restore");
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s]->pipeline->Restore(reader, error,
                                       "shard" + std::to_string(s))) {
      poisoned_ = true;
      if (error != nullptr) {
        *error += " (pipeline poisoned; construct a fresh instance to retry)";
      }
      return false;
    }
  }
  ingest_count_ = ingests;
  comparisons_.store(comparisons, std::memory_order_relaxed);
  matches_.store(matches, std::memory_order_relaxed);
  duplicates_suppressed_.store(duplicates, std::memory_order_relaxed);
  clusters_.TrackUpTo(profiles_.size());
  // The token-owner cache rebuilds lazily from the restored dictionary
  // spellings; nothing to restore (the hash is deterministic).
  // Kick every shard with an empty microbatch: the restored
  // prioritizers may hold pending comparisons to resume emitting.
  std::vector<Microbatch> kick(options_.shard_count);
  const double arrival_s = lifetime_.ElapsedSeconds();
  for (auto& microbatch : kick) microbatch.arrival_s = arrival_s;
  Route(std::move(kick));
  return true;
}

}  // namespace pier
