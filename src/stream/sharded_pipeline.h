// Sharded worker/combiner ingest: the blocking-key space is
// partitioned across N shard pipelines connected by bounded microbatch
// queues, with a combiner stage merging the per-shard verdict streams
// into one serving ClusterIndex and match callback. This is the
// continuous-query scheduler/combiner split of streaming systems
// applied to progressive ER, and it is what lets ingest scale past the
// single worker of the one-mutex RealtimePipeline (which is now the
// N = 1 instantiation of this class).
//
// Routing invariant: every block key (token) is owned by exactly one
// shard -- Mix64(HashString(token)) % N -- and a block lives wholly in
// its owner. A profile is delivered to *every* shard (shard stores
// keep the global dense ids), but carries only the owner's slice of
// its tokens to each, so shard s builds exactly the blocks for the
// tokens it owns. Hence no comparison is lost (every active block
// exists in some shard at full size) and none is executed twice
// per-shard (each shard's executed-filter dedups its own emissions).
// A pair sharing tokens owned by different shards may be *matched*
// redundantly, once per owning shard; the combiner's global
// executed-pair filter suppresses the duplicate before it reaches the
// cluster index or the user callback (shard.duplicates_suppressed
// counts them).
//
// Determinism contract: each shard's verdict substream is
// deterministic (same data, same substream, any thread count -- the
// per-shard engine is the deterministic PierPipeline +
// ParallelMatchExecutor). The combiner merges substreams in arrival
// order, so the *interleaving* across shards varies run to run, but
// the delivered verdict *set* and the final clusters are identical
// for every shard count, including N = 1 -- canonical cluster ids
// make cluster answers merge-order independent, and the equivalence
// is enforced by tests/sharded_pipeline_test.cc against the
// single-pipeline run.
//
// Threading model:
//  * Producers call Ingest (thread-safe, serialized on the router
//    mutex). The router tokenizes once into the global dictionary and
//    the global chunked ProfileStore (the store matchers read,
//    lock-free), then routes one microbatch per shard.
//  * Microbatch queues are bounded: when a shard falls behind, Push
//    blocks the router -- and transitively every producer -- until
//    the shard catches up (head-of-line backpressure by design; the
//    shard.backpressure_* metrics make it observable).
//  * Each shard worker owns its PierPipeline outright -- no lock at
//    all on shard state, the queue is the only synchronization. It
//    alternates ingesting queued microbatches with emit->match->push
//    of verdict batches (matching reads the *global* store).
//  * The combiner thread dedups verdicts across shards, folds matches
//    into the serving ClusterIndex (batched seqlock windows), and
//    runs the user callback. Cluster queries stay lock-free
//    seqlock-validated reads, never blocked by any of this.

#ifndef PIER_STREAM_SHARDED_PIPELINE_H_
#define PIER_STREAM_SHARDED_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/pier_pipeline.h"
#include "model/pair_registry.h"
#include "similarity/matcher.h"
#include "similarity/parallel_executor.h"
#include "stream/ingest_latency.h"
#include "stream/shard_queue.h"
#include "util/counting_bloom_filter.h"
#include "util/scalable_bloom_filter.h"
#include "util/stopwatch.h"

namespace pier {
namespace persist {
class CheckpointManager;
class SnapshotBuilder;
}  // namespace persist
}  // namespace pier

namespace pier {

struct ShardedOptions {
  // Per-shard engine configuration (kind, strategy, capacities,
  // tokenizer, executor threads, metrics sink). execution_threads is
  // the match parallelism *within* each shard; total match threads are
  // shard_count * execution_threads. metrics, when set, receives the
  // realtime.* / shard.* pipeline metrics plus every sub-component's
  // (aggregated across shards for same-named stage counters).
  PierOptions pipeline;
  // Number of shard workers (1 = the classic RealtimePipeline).
  size_t shard_count = 1;
  // Bounded microbatch queue depth per shard; a full queue blocks
  // Ingest (backpressure).
  size_t queue_capacity = 64;
  // Bounded combiner input queue depth (verdict batches).
  size_t verdict_queue_capacity = 256;
  // Test seam: called from the combiner thread for every
  // *deduplicated* executed comparison, match or not, in delivery
  // order. The equivalence tests collect the verdict set here.
  std::function<void(ProfileId, ProfileId, bool)> on_verdict;
};

class ShardedPipeline {
 public:
  // Called from the combiner thread for every pair the matcher
  // classified as a duplicate (after cross-shard dedup).
  using MatchCallback = std::function<void(ProfileId, ProfileId)>;

  // `matcher` must outlive this object.
  ShardedPipeline(ShardedOptions options, const Matcher* matcher,
                  MatchCallback on_match);

  // Stops all workers and joins them (see Stop()).
  ~ShardedPipeline();

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  // Thread-safe, multi-producer: tokenizes the increment into the
  // global dictionary/store and routes one microbatch per shard.
  // Profiles either carry dense ids continuing ingestion order, or
  // kInvalidProfileId to have the router assign the next dense id
  // (required when multiple producers ingest concurrently). Blocks
  // while any shard queue is full (backpressure). Returns false --
  // with a stderr diagnostic -- after Stop() or after a restore
  // attempt that failed mid-way (the pipeline is then poisoned: its
  // state is partial and no worker will produce correct results from
  // it). A Stop() racing an Ingest blocked on backpressure also
  // returns false: the microbatches of that increment were dropped
  // (in whole or in part) when the queues closed, and reporting
  // success would silently lose the increment.
  bool Ingest(std::vector<EntityProfile> profiles);

  // Mutable streams (requires options.pipeline.mutable_stream).
  // Thread-safe; serialized on the router mutex like Ingest. Each call
  // quiesces the pipeline (drains every routed microbatch and every
  // undelivered verdict), then applies the mutation synchronously to
  // the global state and every shard engine, so when it returns the
  // serving index already reflects it: ClusterOf on a deleted id
  // reports absence, surviving members of its cluster re-resolve over
  // their remaining match edges, and a corrected profile restarts as a
  // singleton whose comparisons are rescheduled. Returns false after
  // Stop() or on a poisoned pipeline. Ids must be < profiles().size();
  // deleting an already-deleted id is a no-op (idempotent).
  bool Delete(const std::vector<ProfileId>& ids);
  bool Update(std::vector<EntityProfile> profiles);

  // Signals that no further increments will arrive: routes a
  // stream-end marker to every shard, unlocking the block scanners'
  // full tail rescan. Call before the final Drain() for eventual
  // (batch-ER) quality.
  void NotifyStreamEnd();

  // Blocks until every routed microbatch is ingested, every shard's
  // prioritizer is empty, and the combiner has delivered every verdict
  // -- i.e. cluster queries reflect all work routed so far. Returns
  // immediately after Stop().
  void Drain();

  // Stops workers and the combiner and joins them; queued microbatches
  // and undelivered verdicts are abandoned (same contract as
  // destroying the pipeline mid-stream). Idempotent. Subsequent
  // Ingest() calls are rejected.
  void Stop();

  // Best-effort durability: after every `every`-th Ingest the router
  // quiesces the pipeline (drains in-flight work) and writes an atomic
  // snapshot of the full sharded state -- global router sections plus
  // one `shard<i>.*` family per shard -- to `dir`, rotated down to the
  // newest `keep` files (see persist/checkpoint_manager.h).
  void EnableCheckpoints(const std::string& dir, size_t every = 10,
                         size_t keep = 3);

  // Restores from a snapshot written by a ShardedPipeline with the
  // same shard_count and per-shard options. Must be called before the
  // first Ingest. On a corrupt file, an options/shard-count mismatch
  // detected up front, or an already-used pipeline, returns false with
  // a diagnostic and the pipeline stays usable (state untouched). If a
  // component fails to decode *after* restoration began, the pipeline
  // is left partially restored and becomes poisoned: every subsequent
  // Ingest is rejected with a diagnostic -- construct a fresh instance
  // to retry.
  bool RestoreFromSnapshot(std::istream& snapshot, std::string* error);

  // Online cluster queries (thread-safe, lock-free seqlock reads; see
  // serve/cluster_index.h). Answers always reflect a prefix of the
  // delivered verdict stream.
  serve::ClusterView ClusterOf(ProfileId id) const {
    return clusters_.ClusterOf(id);
  }
  ProfileId ClusterIdOf(ProfileId id) const {
    return clusters_.ClusterIdOf(id);
  }
  const serve::ClusterIndex& clusters() const { return clusters_; }

  // The global profile store every shard's matcher reads (stable
  // addresses under concurrent ingest).
  const ProfileStore& profiles() const { return profiles_; }

  // Statistics (thread-safe, approximate while running).
  // comparisons_processed / matches_found count *delivered* (post
  // cross-shard dedup) comparisons and matches; duplicates_suppressed
  // counts cross-shard redundant executions the combiner dropped.
  uint64_t comparisons_processed() const { return comparisons_.load(); }
  uint64_t matches_found() const { return matches_.load(); }
  uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_.load();
  }
  // Ingest() calls so far (after a restore: as of the checkpoint, so
  // callers can resume feeding increments from here).
  uint64_t ingests() const;

  size_t shard_count() const { return options_.shard_count; }
  // Match-execution threads per shard.
  size_t execution_threads() const;

 private:
  // What the router sends each shard per Ingest: every profile of the
  // increment with the shard's owned token slice (possibly empty --
  // shard stores keep global dense ids).
  struct Microbatch {
    std::vector<PretokenizedProfile> items;
    double arrival_s = 0.0;
    bool stream_end = false;
  };

  // What a shard worker sends the combiner per executed batch.
  struct VerdictBatch {
    size_t shard = 0;
    std::vector<Comparison> comparisons;
    std::vector<uint8_t> is_match;
  };

  struct Shard {
    std::unique_ptr<PierPipeline> pipeline;
    std::unique_ptr<ParallelMatchExecutor> executor;
    std::unique_ptr<ShardQueue<Microbatch>> queue;
    std::thread worker;
    bool idle = true;  // guarded by state_mutex_
    obs::Gauge* queue_depth_metric = nullptr;
    obs::Gauge* busy_metric = nullptr;
  };

  void ShardLoop(size_t shard_index);
  void CombinerLoop();
  void IngestMicrobatch(Shard& shard, Microbatch& microbatch);
  // Marks the shard idle under state_mutex_ (waking Drain waiters) and
  // keeps the idle gauges coherent.
  void MarkShardIdle(Shard& shard);
  // A worker popped a microbatch: marks the shard busy and consumes
  // one unit of the queued-microbatch account in the same critical
  // section, so the Drain predicate can never observe "nothing queued,
  // everyone idle" while the pop is still in flight.
  void OnMicrobatchPopped(Shard& shard);
  // Combiner thread only: global cross-shard executed-pair filter.
  bool AlreadyDelivered(const Comparison& c);
  // Shard owning token `id`, computed once per token from its
  // spelling. Caller holds ingest_mutex_.
  size_t OwnerOf(TokenId id);
  // Routes one microbatch per shard. Caller holds ingest_mutex_.
  // Returns false when any queue rejected its microbatch (closed by a
  // concurrent Stop()): part of the work was dropped and the caller
  // must not report the increment as ingested.
  bool Route(std::vector<Microbatch> per_shard);
  // Common Delete/Update prologue: rejects stopped/poisoned pipelines,
  // checks the mutability mode, and quiesces. Caller holds
  // ingest_mutex_. Returns false when the mutation must be rejected.
  bool BeginMutationLocked(const char* verb);
  // Retracts one live profile from the global state (store tombstone
  // excluded) and every shard engine. Caller holds ingest_mutex_ after
  // QuiesceLocked().
  void RetractLocked(ProfileId id);
  // Waits until all routed work is fully processed. Caller holds
  // ingest_mutex_ (so no new work can arrive).
  void QuiesceLocked();
  bool DrainedLocked() const;  // caller holds state_mutex_
  // Serializes the full quiesced state. Caller holds ingest_mutex_
  // after QuiesceLocked().
  void SnapshotLocked(persist::SnapshotBuilder& builder) const;
  void CheckpointLocked();

  ShardedOptions options_;
  const Matcher* matcher_;
  MatchCallback on_match_;

  // Router-owned global state, guarded by ingest_mutex_. The profile
  // store and dictionary are written only here; matchers read the
  // store lock-free (chunked stable addresses).
  mutable std::mutex ingest_mutex_;
  Tokenizer tokenizer_;
  TokenDictionary dictionary_;
  ProfileStore profiles_;
  std::vector<uint32_t> token_owner_;  // TokenId -> owning shard
  Stopwatch lifetime_;
  uint64_t ingest_count_ = 0;
  bool poisoned_ = false;
  std::unique_ptr<persist::CheckpointManager> checkpointer_;

  // Combiner-owned cross-shard executed-pair filter (combiner thread
  // only while running; router reads/writes it only when quiesced).
  // Mutable streams swap the Bloom filter for its counting variant and
  // maintain the pair registry so retraction can withdraw keys (for
  // the exact set too).
  ScalableBloomFilter delivered_filter_;
  ScalableCountingBloomFilter delivered_counting_;
  std::unordered_set<uint64_t> delivered_exact_;
  PairRegistry delivered_pairs_;

  // The serving index: written by the router (TrackUpTo) and the
  // combiner (AddMatches), queried lock-free from anywhere.
  serve::ClusterIndex clusters_;

  std::vector<std::unique_ptr<Shard>> shards_;
  ShardQueue<VerdictBatch> verdict_queue_;
  std::thread combiner_;

  // Drain/idle protocol: any transition that can complete a Drain
  // (shard going idle, microbatch consumed, verdict delivered)
  // happens under state_mutex_ before notifying drained_cv_.
  mutable std::mutex state_mutex_;
  std::condition_variable drained_cv_;
  std::atomic<bool> stop_{false};
  // Serializes Stop() (idempotent shutdown: close queues, join).
  std::mutex stop_mutex_;
  bool stopped_ = false;  // guarded by stop_mutex_
  std::atomic<uint64_t> queued_microbatches_{0};
  std::atomic<uint64_t> verdicts_pushed_{0};
  std::atomic<uint64_t> verdicts_consumed_{0};

  std::atomic<uint64_t> comparisons_{0};
  std::atomic<uint64_t> matches_{0};
  std::atomic<uint64_t> duplicates_suppressed_{0};

  // realtime.* metrics (the names predate sharding and are shared with
  // the N = 1 facade) plus the shard.* fan-out metrics; all null when
  // un-instrumented.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* ingests_metric_ = nullptr;
  obs::Counter* deletes_metric_ = nullptr;
  obs::Counter* updates_metric_ = nullptr;
  obs::Counter* batches_metric_ = nullptr;
  obs::Counter* idle_transitions_metric_ = nullptr;
  obs::Gauge* worker_idle_metric_ = nullptr;
  obs::Histogram* match_ns_metric_ = nullptr;
  obs::Gauge* queue_depth_metric_ = nullptr;
  obs::Counter* microbatches_metric_ = nullptr;
  obs::Counter* backpressure_waits_metric_ = nullptr;
  obs::Histogram* backpressure_wait_ns_metric_ = nullptr;
  obs::Gauge* verdict_queue_depth_metric_ = nullptr;
  obs::Counter* verdict_batches_metric_ = nullptr;
  obs::Counter* duplicates_metric_ = nullptr;
  IngestLatencyTracker latency_tracker_;
};

}  // namespace pier

#endif  // PIER_STREAM_SHARDED_PIPELINE_H_
