#include "stream/stream_simulator.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <unordered_set>
#include <utility>
#include <vector>

#include "eval/cluster_recall.h"
#include "obs/metrics_io.h"
#include "persist/checkpoint_manager.h"
#include "persist/snapshot.h"
#include "similarity/parallel_executor.h"
#include "util/check.h"
#include "util/serial.h"
#include "util/stopwatch.h"

namespace pier {

namespace {

// The simulator's stage metrics (`sim.*` namespace); every pointer is
// null when the run is not instrumented, making each update one
// predictable branch (see obs/metrics.h).
struct SimMetrics {
  obs::Counter* increments_delivered = nullptr;
  obs::Counter* batches = nullptr;
  obs::Counter* comparisons_executed = nullptr;
  obs::Counter* matches_found = nullptr;
  obs::Counter* matcher_positives = nullptr;
  obs::Counter* match_cost_units = nullptr;
  obs::Counter* idle_ticks = nullptr;
  obs::Counter* stalled_ticks = nullptr;
  obs::Histogram* batch_size = nullptr;
  obs::Histogram* batch_gen_ns = nullptr;
  obs::Histogram* batch_match_ns = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* virtual_time_s = nullptr;
  obs::Gauge* comparisons_per_s = nullptr;
  obs::Gauge* cost_units_per_s = nullptr;
  obs::Gauge* cluster_recall = nullptr;

  explicit SimMetrics(obs::MetricsRegistry* registry) {
    if (registry == nullptr) return;
    increments_delivered = registry->GetCounter("sim.increments_delivered");
    batches = registry->GetCounter("sim.batches");
    comparisons_executed = registry->GetCounter("sim.comparisons_executed");
    matches_found = registry->GetCounter("sim.matches_found");
    matcher_positives = registry->GetCounter("sim.matcher_positives");
    match_cost_units = registry->GetCounter("sim.match_cost_units");
    idle_ticks = registry->GetCounter("sim.idle_ticks");
    stalled_ticks = registry->GetCounter("sim.stalled_ticks");
    batch_size = registry->GetHistogram("sim.batch_size");
    batch_gen_ns = registry->GetHistogram("sim.batch_gen_ns");
    batch_match_ns = registry->GetHistogram("sim.batch_match_ns");
    queue_depth = registry->GetGauge("sim.queue_depth");
    virtual_time_s = registry->GetGauge("sim.virtual_time_s");
    comparisons_per_s = registry->GetGauge("sim.comparisons_per_s");
    cost_units_per_s = registry->GetGauge("sim.cost_units_per_s");
    cluster_recall = registry->GetGauge("sim.cluster_recall");
  }
};

uint64_t SecondsToNs(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9);
}

void SetResumeError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

// Everything the run loop mutates lives here, so a checkpoint is a
// pure serialization of one LoopState (+ the algorithm) and a resumed
// run continues from exactly the instant the checkpoint captured.
struct StreamSimulator::LoopState {
  RunResult result;
  double vt = 0.0;
  size_t next_arrival = 0;
  int fruitless_ticks = 0;
  size_t consecutive_stalls = 0;
  bool stream_ended_notified = false;
  uint64_t executed = 0;
  uint64_t found = 0;
  uint64_t last_recorded = 0;
  // True-match pairs already credited (guards against an algorithm
  // emitting the same pair twice, e.g. a Bloom false-negative path).
  std::unordered_set<uint64_t> credited;
  // Cluster-level quality over the positive-verdict stream (feeds
  // result.cluster_curve). Built from the dataset's ground truth in
  // Run()/RestoreLoopState().
  std::unique_ptr<ClusterRecallTracker> tracker;
};

StreamSimulator::StreamSimulator(const Dataset* dataset,
                                 SimulatorOptions options)
    : dataset_(dataset), options_(options) {
  PIER_CHECK(dataset_ != nullptr);
  increments_ = SplitIntoIncrements(*dataset_, options_.num_increments);
}

RunResult StreamSimulator::Run(ErAlgorithm& algorithm,
                               const Matcher& matcher) const {
  LoopState state;
  state.result.algorithm = algorithm.name();
  state.result.dataset = dataset_->name;
  state.result.matcher = matcher.name();
  state.result.total_true_matches = dataset_->truth.size();
  state.result.curve.Add(CurvePoint{0.0, 0, 0});
  state.tracker = std::make_unique<ClusterRecallTracker>(dataset_->truth);
  state.result.total_cluster_pairs = state.tracker->total_cluster_pairs();
  state.result.cluster_curve.Add(CurvePoint{0.0, 0, 0});
  return RunLoop(algorithm, matcher, state);
}

std::optional<RunResult> StreamSimulator::Resume(ErAlgorithm& algorithm,
                                                 const Matcher& matcher,
                                                 std::istream& snapshot,
                                                 std::string* error) const {
  persist::SnapshotReader reader;
  if (!reader.Parse(snapshot, error)) return std::nullopt;
  LoopState state;
  if (!RestoreLoopState(reader, algorithm, matcher, &state, error)) {
    return std::nullopt;
  }
  if (!algorithm.Restore(reader, error)) return std::nullopt;
  state.result.algorithm = algorithm.name();
  state.result.dataset = dataset_->name;
  state.result.matcher = matcher.name();
  state.result.total_true_matches = dataset_->truth.size();
  state.result.total_cluster_pairs = state.tracker->total_cluster_pairs();
  return RunLoop(algorithm, matcher, state);
}

void StreamSimulator::SnapshotLoopState(persist::SnapshotBuilder& builder,
                                        const ErAlgorithm& algorithm,
                                        const Matcher& matcher,
                                        const LoopState& state) const {
  // Configuration fingerprint: a checkpoint only resumes against the
  // same dataset, algorithm, matcher, and cost-relevant options. The
  // execution thread count is deliberately absent -- verdicts are
  // deterministic in emission order for every value.
  std::ostream& meta = builder.AddSection("sim.meta");
  serial::WriteString(meta, algorithm.name());
  serial::WriteString(meta, dataset_->name);
  serial::WriteU64(meta, dataset_->profiles.size());
  serial::WriteString(meta, matcher.name());
  serial::WriteU64(meta, increments_.size());
  serial::WriteU8(meta, static_cast<uint8_t>(options_.cost_mode));
  serial::WriteF64(meta, options_.increments_per_second);
  serial::WriteF64(meta, options_.time_budget_s);
  serial::WriteU64(meta, options_.curve_granularity);
  serial::WriteU64(meta, options_.stall_limit);
  // Conditional trailing field (see SimulatorOptions::frontier_seed):
  // default-seeded runs keep the pre-frontier byte layout.
  if (options_.frontier_seed != SimulatorOptions{}.frontier_seed) {
    serial::WriteU64(meta, options_.frontier_seed);
  }

  std::ostream& st = builder.AddSection("sim.state");
  serial::WriteF64(st, state.vt);
  serial::WriteU64(st, state.next_arrival);
  serial::WriteU32(st, static_cast<uint32_t>(state.fruitless_ticks));
  serial::WriteU64(st, state.consecutive_stalls);
  serial::WriteBool(st, state.stream_ended_notified);
  serial::WriteU64(st, state.executed);
  serial::WriteU64(st, state.found);
  serial::WriteU64(st, state.last_recorded);
  std::vector<uint64_t> credited(state.credited.begin(),
                                 state.credited.end());
  std::sort(credited.begin(), credited.end());
  serial::WriteVec(st, credited, [](std::ostream& o, const uint64_t& key) {
    serial::WriteU64(o, key);
  });
  serial::WriteVec(st, state.result.curve.points(),
                   [](std::ostream& o, const CurvePoint& p) {
                     serial::WriteF64(o, p.time);
                     serial::WriteU64(o, p.comparisons);
                     serial::WriteU64(o, p.matches_found);
                   });
  serial::WriteU64(st, state.result.matcher_positives);
  serial::WriteU64(st, state.result.matcher_true_positives);
  serial::WriteU64(st, state.result.stalled_ticks);
  serial::WriteBool(st, state.result.stall_aborted);
  serial::WriteF64(st, state.result.stream_consumed_at);

  // Cluster-level quality state: the recall tracker's canonical
  // partition plus the cluster curve recorded so far. The ground-truth
  // side and the pair denominator are rebuilt from the dataset on
  // resume, so only the predicted partition is persisted.
  std::ostream& cl = builder.AddSection("sim.clusters");
  serial::WriteVec(cl, state.result.cluster_curve.points(),
                   [](std::ostream& o, const CurvePoint& p) {
                     serial::WriteF64(o, p.time);
                     serial::WriteU64(o, p.comparisons);
                     serial::WriteU64(o, p.matches_found);
                   });
  state.tracker->Snapshot(cl);

  algorithm.Snapshot(builder);
}

bool StreamSimulator::RestoreLoopState(const persist::SnapshotReader& reader,
                                       const ErAlgorithm& algorithm,
                                       const Matcher& matcher,
                                       LoopState* state,
                                       std::string* error) const {
  std::istringstream meta;
  if (!reader.Open("sim.meta", &meta, error)) return false;
  std::string alg_name;
  std::string dataset_name;
  uint64_t num_profiles = 0;
  std::string matcher_name;
  uint64_t num_increments = 0;
  uint8_t cost_mode = 0;
  double rate = 0.0;
  double budget = 0.0;
  uint64_t granularity = 0;
  uint64_t stall_limit = 0;
  if (!serial::ReadString(meta, &alg_name) ||
      !serial::ReadString(meta, &dataset_name) ||
      !serial::ReadU64(meta, &num_profiles) ||
      !serial::ReadString(meta, &matcher_name) ||
      !serial::ReadU64(meta, &num_increments) ||
      !serial::ReadU8(meta, &cost_mode) || !serial::ReadF64(meta, &rate) ||
      !serial::ReadF64(meta, &budget) ||
      !serial::ReadU64(meta, &granularity) ||
      !serial::ReadU64(meta, &stall_limit)) {
    SetResumeError(error, "section 'sim.meta' failed to decode");
    return false;
  }
  // Tolerant trailing read: absent means the snapshot was written with
  // the default seed (pre-frontier layout or a default-seeded run).
  uint64_t frontier_seed = SimulatorOptions{}.frontier_seed;
  serial::ReadU64(meta, &frontier_seed);
  if (alg_name != algorithm.name()) {
    SetResumeError(error, "snapshot was taken with algorithm '" + alg_name +
                              "', not '" + algorithm.name() + "'");
    return false;
  }
  if (dataset_name != dataset_->name ||
      num_profiles != dataset_->profiles.size()) {
    SetResumeError(error, "snapshot was taken against dataset '" +
                              dataset_name + "' (" +
                              std::to_string(num_profiles) +
                              " profiles), which does not match");
    return false;
  }
  if (matcher_name != matcher.name()) {
    SetResumeError(error, "snapshot was taken with matcher '" + matcher_name +
                              "', not '" + matcher.name() + "'");
    return false;
  }
  if (num_increments != increments_.size() ||
      cost_mode != static_cast<uint8_t>(options_.cost_mode) ||
      rate != options_.increments_per_second ||
      budget != options_.time_budget_s ||
      granularity != options_.curve_granularity ||
      stall_limit != options_.stall_limit ||
      frontier_seed != options_.frontier_seed) {
    SetResumeError(error,
                   "snapshot simulator options do not match this "
                   "configuration (increments/cost mode/rate/budget/"
                   "granularity/stall limit/frontier seed)");
    return false;
  }

  std::istringstream st;
  if (!reader.Open("sim.state", &st, error)) return false;
  uint32_t fruitless = 0;
  std::vector<uint64_t> credited;
  std::vector<CurvePoint> points;
  LoopState s;
  if (!serial::ReadF64(st, &s.vt) || !serial::ReadU64(st, &s.next_arrival) ||
      !serial::ReadU32(st, &fruitless) ||
      !serial::ReadU64(st, &s.consecutive_stalls) ||
      !serial::ReadBool(st, &s.stream_ended_notified) ||
      !serial::ReadU64(st, &s.executed) || !serial::ReadU64(st, &s.found) ||
      !serial::ReadU64(st, &s.last_recorded) ||
      !serial::ReadVec(st, &credited,
                       [](std::istream& in, uint64_t* key) {
                         return serial::ReadU64(in, key);
                       }) ||
      !serial::ReadVec(st, &points,
                       [](std::istream& in, CurvePoint* p) {
                         return serial::ReadF64(in, &p->time) &&
                                serial::ReadU64(in, &p->comparisons) &&
                                serial::ReadU64(in, &p->matches_found);
                       }) ||
      !serial::ReadU64(st, &s.result.matcher_positives) ||
      !serial::ReadU64(st, &s.result.matcher_true_positives) ||
      !serial::ReadU64(st, &s.result.stalled_ticks) ||
      !serial::ReadBool(st, &s.result.stall_aborted) ||
      !serial::ReadF64(st, &s.result.stream_consumed_at)) {
    SetResumeError(error, "section 'sim.state' failed to decode");
    return false;
  }
  if (s.next_arrival > increments_.size() || s.last_recorded > s.executed ||
      s.found != credited.size() || s.found > s.executed || points.empty()) {
    SetResumeError(error, "section 'sim.state' is internally inconsistent");
    return false;
  }
  s.fruitless_ticks = static_cast<int>(fruitless);
  s.credited.insert(credited.begin(), credited.end());
  for (const CurvePoint& p : points) s.result.curve.Add(p);

  s.tracker = std::make_unique<ClusterRecallTracker>(dataset_->truth);
  if (reader.Has("sim.clusters")) {
    std::istringstream cl;
    if (!reader.Open("sim.clusters", &cl, error)) return false;
    std::vector<CurvePoint> cluster_points;
    if (!serial::ReadVec(cl, &cluster_points,
                         [](std::istream& in, CurvePoint* p) {
                           return serial::ReadF64(in, &p->time) &&
                                  serial::ReadU64(in, &p->comparisons) &&
                                  serial::ReadU64(in, &p->matches_found);
                         })) {
      SetResumeError(error, "section 'sim.clusters' failed to decode");
      return false;
    }
    if (!s.tracker->Restore(cl)) {
      SetResumeError(error, "section 'sim.clusters' failed to decode");
      return false;
    }
    // Curve and cluster curve are recorded in lockstep.
    if (cluster_points.size() != points.size()) {
      SetResumeError(error,
                     "section 'sim.clusters' is internally inconsistent");
      return false;
    }
    for (const CurvePoint& p : cluster_points) s.result.cluster_curve.Add(p);
  } else {
    // v1 snapshot: no cluster state was recorded. The tracker's
    // partition restarts empty, and the cluster curve is padded with
    // zero-match points mirroring the PC curve so the two stay in
    // lockstep (pre-resume cluster recall reports 0).
    for (const CurvePoint& p : points) {
      s.result.cluster_curve.Add({p.time, p.comparisons, 0});
    }
  }

  *state = std::move(s);
  return true;
}

RunResult StreamSimulator::RunLoop(ErAlgorithm& algorithm,
                                   const Matcher& matcher,
                                   LoopState& state) const {
  const CostMeter meter(options_.cost_mode, options_.cost_model);

  // Instrumentation: a caller-supplied registry, or a run-local one
  // when only the snapshot stream was requested.
  obs::MetricsRegistry local_registry;
  obs::MetricsRegistry* registry = options_.metrics;
  if (registry == nullptr && options_.metrics_out != nullptr) {
    registry = &local_registry;
  }
  const SimMetrics m(registry);

  // Checkpointing: a write serializes the algorithm plus this
  // LoopState and never touches either, so the curve is independent of
  // whether (and how often) checkpoints were taken. Failures are
  // non-fatal -- the run outlives a full disk -- but counted and
  // diagnosed.
  persist::CheckpointOptions ckpt_options;
  ckpt_options.dir = options_.checkpoint_dir;
  ckpt_options.every = options_.checkpoint_every;
  ckpt_options.keep = options_.checkpoint_keep;
  ckpt_options.metrics = registry;
  persist::CheckpointManager checkpointer(std::move(ckpt_options));
  if (checkpointer.enabled()) PIER_CHECK(algorithm.SupportsSnapshot());
  const auto write_checkpoint = [&]() {
    persist::SnapshotBuilder builder;
    SnapshotLoopState(builder, algorithm, matcher, state);
    std::string ckpt_error;
    if (checkpointer.Write(state.next_arrival, builder, &ckpt_error)
            .empty()) {
      std::fprintf(stderr, "pier: checkpoint %" PRIu64 " failed: %s\n",
                   static_cast<uint64_t>(state.next_arrival),
                   ckpt_error.c_str());
    }
  };
  // Seed checkpoint before the first increment (resume-from-zero);
  // a resumed run starts past it and writes only forward.
  if (checkpointer.enabled() && state.next_arrival == 0) write_checkpoint();

  // All matching goes through the executor; with execution_threads=1
  // it runs inline. Verdicts come back in emission order, so the
  // accounting below is identical for every thread count.
  const ParallelMatchExecutor executor(&matcher, options_.execution_threads,
                                       registry);
  const ParallelMatchExecutor::ProfileLookup lookup =
      [&algorithm](ProfileId id) -> const EntityProfile& {
    return algorithm.Profile(id);
  };
  // Next metrics-snapshot instant; recomputed from the (possibly
  // restored) clock so resume does not replay old snapshot times.
  double next_snapshot = std::numeric_limits<double>::infinity();
  if (options_.metrics_interval_s > 0.0) {
    next_snapshot = (std::floor(state.vt / options_.metrics_interval_s) + 1) *
                    options_.metrics_interval_s;
  }
  const auto emit_snapshot = [&](double t) {
    if (registry == nullptr || options_.metrics_out == nullptr) return;
    obs::WriteJsonLines(*options_.metrics_out, t, registry->Snapshot());
  };

  RunResult& result = state.result;

  // Arrival schedule: t_i = i / rate (all zero in the static setting).
  const double interarrival =
      options_.IsStatic() ? 0.0 : 1.0 / options_.increments_per_second;

  auto record_point = [&]() {
    if (state.executed - state.last_recorded < options_.curve_granularity &&
        !result.curve.empty()) {
      return;
    }
    result.curve.Add(CurvePoint{state.vt, state.executed, state.found});
    result.cluster_curve.Add(CurvePoint{state.vt, state.executed,
                                        state.tracker->connected_pairs()});
    state.last_recorded = state.executed;
  };

  // Number of increments whose arrival time has passed but which have
  // not been delivered yet (the stream backlog of Figures 7-8).
  const auto backlog = [&]() -> size_t {
    if (state.next_arrival >= increments_.size()) return 0;
    if (options_.IsStatic()) return increments_.size() - state.next_arrival;
    const size_t due =
        interarrival <= 0.0
            ? increments_.size()
            : static_cast<size_t>(state.vt / interarrival) + 1;
    return std::min(due, increments_.size()) - state.next_arrival;
  };
  const auto observe_clock = [&]() {
    if (registry == nullptr) return;
    obs::GaugeSet(m.virtual_time_s, state.vt);
    obs::GaugeSet(m.queue_depth, static_cast<double>(backlog()));
    if (state.vt >= next_snapshot) {
      emit_snapshot(state.vt);
      next_snapshot += options_.metrics_interval_s;
    }
  };

  while (state.vt < options_.time_budget_s) {
    observe_clock();

    // 1. Deliver a due increment if the algorithm accepts it.
    if (state.next_arrival < increments_.size() &&
        state.vt >= interarrival * static_cast<double>(state.next_arrival) &&
        algorithm.ReadyForIncrement()) {
      const Increment inc = increments_[state.next_arrival];
      std::vector<EntityProfile> profiles(
          dataset_->profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
          dataset_->profiles.begin() + static_cast<ptrdiff_t>(inc.end));
      algorithm.OnArrival(interarrival *
                          static_cast<double>(state.next_arrival));
      Stopwatch sw;
      const WorkStats stats = algorithm.OnIncrement(std::move(profiles));
      state.vt += meter.StepCost(stats, sw.ElapsedSeconds());
      ++state.next_arrival;
      if (state.next_arrival == increments_.size()) {
        result.stream_consumed_at = state.vt;
      }
      obs::CounterAdd(m.increments_delivered);
      state.fruitless_ticks = 0;
      state.consecutive_stalls = 0;
      if (checkpointer.enabled() &&
          (checkpointer.Due(state.next_arrival) ||
           state.next_arrival == increments_.size())) {
        write_checkpoint();
      }
      continue;
    }

    // 2. Process the next comparison batch, if any.
    {
      WorkStats gen_stats;
      Stopwatch sw;
      const std::vector<Comparison> batch = algorithm.NextBatch(&gen_stats);
      const double gen_seconds = sw.ElapsedSeconds();
      if (!batch.empty()) {
        const double gen_cost = meter.StepCost(gen_stats, gen_seconds);
        state.vt += gen_cost;
        uint64_t units = 0;
        Stopwatch match_sw;
        // Verdict-only fast path: the simulator consumes is_match and
        // cost_units, never the raw score, so the bounded kernels can
        // skip the exact similarity computation.
        const std::vector<MatchVerdict> verdicts =
            executor.ExecuteVerdicts(batch, lookup);
        uint64_t batch_matches = 0;
        uint64_t batch_positives = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
          const Comparison& c = batch[i];
          const MatchVerdict& v = verdicts[i];
          units += v.cost_units;
          ++state.executed;
          const bool is_true_match = dataset_->truth.IsMatch(c.x, c.y);
          // Every verdict (positive or negative) feeds the algorithm's
          // feedback hook; FB-PCS folds it into its block posteriors.
          algorithm.OnVerdict(c.x, c.y, v.is_match);
          if (v.is_match) {
            ++batch_positives;
            ++result.matcher_positives;
            if (is_true_match) ++result.matcher_true_positives;
            // Fold the positive verdict into the algorithm's online
            // cluster index and the eval-side recall tracker. The
            // tracker sees the matcher's output (false positives
            // included): ClusterRecall measures what the *served*
            // clusters got right, not what an oracle would serve.
            algorithm.OnMatch(c.x, c.y);
            state.tracker->AddMatch(c.x, c.y);
          }
          if (is_true_match && state.credited.insert(c.Key()).second) {
            ++state.found;
            ++batch_matches;
          }
        }
        const double match_cost =
            meter.MatchCost(units, match_sw.ElapsedSeconds());
        state.vt += match_cost;
        algorithm.OnBatchCost(batch.size(), match_cost);
        obs::CounterAdd(m.batches);
        obs::CounterAdd(m.comparisons_executed, batch.size());
        obs::CounterAdd(m.matches_found, batch_matches);
        obs::CounterAdd(m.matcher_positives, batch_positives);
        obs::CounterAdd(m.match_cost_units, units);
        obs::HistogramRecord(m.batch_size, batch.size());
        obs::HistogramRecord(m.batch_gen_ns, SecondsToNs(gen_cost));
        obs::HistogramRecord(m.batch_match_ns, SecondsToNs(match_cost));
        if (match_cost > 0.0) {
          obs::GaugeSet(m.comparisons_per_s,
                        static_cast<double>(batch.size()) / match_cost);
          obs::GaugeSet(m.cost_units_per_s,
                        static_cast<double>(units) / match_cost);
        }
        obs::GaugeSet(m.cluster_recall, state.tracker->Recall());
        record_point();
        state.fruitless_ticks = 0;
        state.consecutive_stalls = 0;
        continue;
      }
      state.vt += meter.StepCost(gen_stats, gen_seconds);
    }

    // 3. No work right now.
    if (state.next_arrival < increments_.size()) {
      const double t_next =
          interarrival * static_cast<double>(state.next_arrival);
      if (!algorithm.ReadyForIncrement() && state.vt >= t_next) {
        // An increment is due but the algorithm refuses it while
        // holding no pending batch (e.g. a windowed baseline between
        // arrivals). That used to be a hard CHECK; it is a legitimate
        // -- if unproductive -- state, so diagnose it instead: charge
        // an idle tick (whose per-call overhead guarantees the clock
        // advances), count it, and give up only after stall_limit
        // consecutive stalls.
        ++result.stalled_ticks;
        obs::CounterAdd(m.stalled_ticks);
        Stopwatch sw;
        const WorkStats stats = algorithm.OnIdleTick();
        state.vt += meter.StepCost(stats, sw.ElapsedSeconds());
        if (++state.consecutive_stalls >= options_.stall_limit) {
          result.stall_aborted = true;
          break;
        }
        continue;
      }
      state.consecutive_stalls = 0;
      // Idle before the next arrival: try a tick, then jump the clock.
      if (state.fruitless_ticks < 2) {
        Stopwatch sw;
        const WorkStats stats = algorithm.OnIdleTick();
        state.vt += meter.StepCost(stats, sw.ElapsedSeconds());
        ++state.fruitless_ticks;
        obs::CounterAdd(m.idle_ticks);
      } else {
        if (state.vt < t_next) state.vt = t_next;
        state.fruitless_ticks = 0;
      }
      continue;
    }

    // 4. Stream fully delivered: notify once, then tick until dry.
    if (!state.stream_ended_notified) {
      Stopwatch sw;
      const WorkStats stats = algorithm.OnStreamEnd();
      state.vt += meter.StepCost(stats, sw.ElapsedSeconds());
      state.stream_ended_notified = true;
      continue;
    }
    if (state.fruitless_ticks < 2) {
      Stopwatch sw;
      const WorkStats stats = algorithm.OnIdleTick();
      state.vt += meter.StepCost(stats, sw.ElapsedSeconds());
      ++state.fruitless_ticks;
      obs::CounterAdd(m.idle_ticks);
      continue;
    }
    break;  // two fruitless ticks after stream end: done
  }

  result.comparisons_executed = state.executed;
  result.matches_found = state.found;
  result.end_time = state.vt;
  // Terminal curve point: only when it adds information. The curve is
  // kept strictly monotone in `comparisons` -- an unconditional append
  // used to duplicate the last point at the same comparison count with
  // a later timestamp, creating a spurious step for
  // MatchesAtComparisons / PC-per-comparison plots.
  if (result.curve.empty() ||
      result.curve.points().back().comparisons != state.executed) {
    result.curve.Add(CurvePoint{state.vt, state.executed, state.found});
    result.cluster_curve.Add(CurvePoint{state.vt, state.executed,
                                        state.tracker->connected_pairs()});
  }
  if (registry != nullptr) {
    obs::GaugeSet(m.virtual_time_s, state.vt);
    obs::GaugeSet(m.queue_depth, static_cast<double>(backlog()));
    emit_snapshot(state.vt);
  }
  return std::move(result);
}

}  // namespace pier
