#include "stream/stream_simulator.h"

#include <algorithm>
#include <limits>
#include <ostream>
#include <unordered_set>

#include "obs/metrics_io.h"
#include "similarity/parallel_executor.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace pier {

namespace {

// The simulator's stage metrics (`sim.*` namespace); every pointer is
// null when the run is not instrumented, making each update one
// predictable branch (see obs/metrics.h).
struct SimMetrics {
  obs::Counter* increments_delivered = nullptr;
  obs::Counter* batches = nullptr;
  obs::Counter* comparisons_executed = nullptr;
  obs::Counter* matches_found = nullptr;
  obs::Counter* matcher_positives = nullptr;
  obs::Counter* match_cost_units = nullptr;
  obs::Counter* idle_ticks = nullptr;
  obs::Counter* stalled_ticks = nullptr;
  obs::Histogram* batch_size = nullptr;
  obs::Histogram* batch_gen_ns = nullptr;
  obs::Histogram* batch_match_ns = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* virtual_time_s = nullptr;
  obs::Gauge* comparisons_per_s = nullptr;
  obs::Gauge* cost_units_per_s = nullptr;

  explicit SimMetrics(obs::MetricsRegistry* registry) {
    if (registry == nullptr) return;
    increments_delivered = registry->GetCounter("sim.increments_delivered");
    batches = registry->GetCounter("sim.batches");
    comparisons_executed = registry->GetCounter("sim.comparisons_executed");
    matches_found = registry->GetCounter("sim.matches_found");
    matcher_positives = registry->GetCounter("sim.matcher_positives");
    match_cost_units = registry->GetCounter("sim.match_cost_units");
    idle_ticks = registry->GetCounter("sim.idle_ticks");
    stalled_ticks = registry->GetCounter("sim.stalled_ticks");
    batch_size = registry->GetHistogram("sim.batch_size");
    batch_gen_ns = registry->GetHistogram("sim.batch_gen_ns");
    batch_match_ns = registry->GetHistogram("sim.batch_match_ns");
    queue_depth = registry->GetGauge("sim.queue_depth");
    virtual_time_s = registry->GetGauge("sim.virtual_time_s");
    comparisons_per_s = registry->GetGauge("sim.comparisons_per_s");
    cost_units_per_s = registry->GetGauge("sim.cost_units_per_s");
  }
};

uint64_t SecondsToNs(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9);
}

}  // namespace

StreamSimulator::StreamSimulator(const Dataset* dataset,
                                 SimulatorOptions options)
    : dataset_(dataset), options_(options) {
  PIER_CHECK(dataset_ != nullptr);
  increments_ = SplitIntoIncrements(*dataset_, options_.num_increments);
}

RunResult StreamSimulator::Run(ErAlgorithm& algorithm,
                               const Matcher& matcher) const {
  const CostMeter meter(options_.cost_mode, options_.cost_model);

  // Instrumentation: a caller-supplied registry, or a run-local one
  // when only the snapshot stream was requested.
  obs::MetricsRegistry local_registry;
  obs::MetricsRegistry* registry = options_.metrics;
  if (registry == nullptr && options_.metrics_out != nullptr) {
    registry = &local_registry;
  }
  const SimMetrics m(registry);

  // All matching goes through the executor; with execution_threads=1
  // it runs inline. Verdicts come back in emission order, so the
  // accounting below is identical for every thread count.
  const ParallelMatchExecutor executor(&matcher, options_.execution_threads,
                                       registry);
  const ParallelMatchExecutor::ProfileLookup lookup =
      [&algorithm](ProfileId id) -> const EntityProfile& {
    return algorithm.Profile(id);
  };
  double next_snapshot = options_.metrics_interval_s > 0.0
                             ? options_.metrics_interval_s
                             : std::numeric_limits<double>::infinity();
  const auto emit_snapshot = [&](double t) {
    if (registry == nullptr || options_.metrics_out == nullptr) return;
    obs::WriteJsonLines(*options_.metrics_out, t, registry->Snapshot());
  };

  RunResult result;
  result.algorithm = algorithm.name();
  result.dataset = dataset_->name;
  result.matcher = matcher.name();
  result.total_true_matches = dataset_->truth.size();

  // Arrival schedule: t_i = i / rate (all zero in the static setting).
  const double interarrival =
      options_.IsStatic() ? 0.0 : 1.0 / options_.increments_per_second;

  double vt = 0.0;
  size_t next_arrival = 0;
  int fruitless_ticks = 0;
  size_t consecutive_stalls = 0;
  bool stream_ended_notified = false;
  uint64_t executed = 0;
  uint64_t found = 0;
  uint64_t last_recorded = 0;
  // True-match pairs already credited (guards against an algorithm
  // emitting the same pair twice, e.g. a Bloom false-negative path).
  std::unordered_set<uint64_t> credited;

  auto record_point = [&]() {
    if (executed - last_recorded < options_.curve_granularity &&
        !result.curve.empty()) {
      return;
    }
    result.curve.Add(CurvePoint{vt, executed, found});
    last_recorded = executed;
  };
  record_point();

  // Number of increments whose arrival time has passed but which have
  // not been delivered yet (the stream backlog of Figures 7-8).
  const auto backlog = [&]() -> size_t {
    if (next_arrival >= increments_.size()) return 0;
    if (options_.IsStatic()) return increments_.size() - next_arrival;
    const size_t due = interarrival <= 0.0
                           ? increments_.size()
                           : static_cast<size_t>(vt / interarrival) + 1;
    return std::min(due, increments_.size()) - next_arrival;
  };
  const auto observe_clock = [&]() {
    if (registry == nullptr) return;
    obs::GaugeSet(m.virtual_time_s, vt);
    obs::GaugeSet(m.queue_depth, static_cast<double>(backlog()));
    if (vt >= next_snapshot) {
      emit_snapshot(vt);
      next_snapshot += options_.metrics_interval_s;
    }
  };

  while (vt < options_.time_budget_s) {
    observe_clock();

    // 1. Deliver a due increment if the algorithm accepts it.
    if (next_arrival < increments_.size() &&
        vt >= interarrival * static_cast<double>(next_arrival) &&
        algorithm.ReadyForIncrement()) {
      const Increment inc = increments_[next_arrival];
      std::vector<EntityProfile> profiles(
          dataset_->profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
          dataset_->profiles.begin() + static_cast<ptrdiff_t>(inc.end));
      algorithm.OnArrival(interarrival *
                          static_cast<double>(next_arrival));
      Stopwatch sw;
      const WorkStats stats = algorithm.OnIncrement(std::move(profiles));
      vt += meter.StepCost(stats, sw.ElapsedSeconds());
      ++next_arrival;
      if (next_arrival == increments_.size()) {
        result.stream_consumed_at = vt;
      }
      obs::CounterAdd(m.increments_delivered);
      fruitless_ticks = 0;
      consecutive_stalls = 0;
      continue;
    }

    // 2. Process the next comparison batch, if any.
    {
      WorkStats gen_stats;
      Stopwatch sw;
      const std::vector<Comparison> batch = algorithm.NextBatch(&gen_stats);
      const double gen_seconds = sw.ElapsedSeconds();
      if (!batch.empty()) {
        const double gen_cost = meter.StepCost(gen_stats, gen_seconds);
        vt += gen_cost;
        uint64_t units = 0;
        Stopwatch match_sw;
        const std::vector<MatchVerdict> verdicts =
            executor.Execute(batch, lookup);
        uint64_t batch_matches = 0;
        uint64_t batch_positives = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
          const Comparison& c = batch[i];
          const MatchVerdict& v = verdicts[i];
          units += v.cost_units;
          ++executed;
          const bool is_true_match = dataset_->truth.IsMatch(c.x, c.y);
          if (v.is_match) {
            ++batch_positives;
            ++result.matcher_positives;
            if (is_true_match) ++result.matcher_true_positives;
          }
          if (is_true_match && credited.insert(c.Key()).second) {
            ++found;
            ++batch_matches;
          }
        }
        const double match_cost =
            meter.MatchCost(units, match_sw.ElapsedSeconds());
        vt += match_cost;
        algorithm.OnBatchCost(batch.size(), match_cost);
        obs::CounterAdd(m.batches);
        obs::CounterAdd(m.comparisons_executed, batch.size());
        obs::CounterAdd(m.matches_found, batch_matches);
        obs::CounterAdd(m.matcher_positives, batch_positives);
        obs::CounterAdd(m.match_cost_units, units);
        obs::HistogramRecord(m.batch_size, batch.size());
        obs::HistogramRecord(m.batch_gen_ns, SecondsToNs(gen_cost));
        obs::HistogramRecord(m.batch_match_ns, SecondsToNs(match_cost));
        if (match_cost > 0.0) {
          obs::GaugeSet(m.comparisons_per_s,
                        static_cast<double>(batch.size()) / match_cost);
          obs::GaugeSet(m.cost_units_per_s,
                        static_cast<double>(units) / match_cost);
        }
        record_point();
        fruitless_ticks = 0;
        consecutive_stalls = 0;
        continue;
      }
      vt += meter.StepCost(gen_stats, gen_seconds);
    }

    // 3. No work right now.
    if (next_arrival < increments_.size()) {
      const double t_next =
          interarrival * static_cast<double>(next_arrival);
      if (!algorithm.ReadyForIncrement() && vt >= t_next) {
        // An increment is due but the algorithm refuses it while
        // holding no pending batch (e.g. a windowed baseline between
        // arrivals). That used to be a hard CHECK; it is a legitimate
        // -- if unproductive -- state, so diagnose it instead: charge
        // an idle tick (whose per-call overhead guarantees the clock
        // advances), count it, and give up only after stall_limit
        // consecutive stalls.
        ++result.stalled_ticks;
        obs::CounterAdd(m.stalled_ticks);
        Stopwatch sw;
        const WorkStats stats = algorithm.OnIdleTick();
        vt += meter.StepCost(stats, sw.ElapsedSeconds());
        if (++consecutive_stalls >= options_.stall_limit) {
          result.stall_aborted = true;
          break;
        }
        continue;
      }
      consecutive_stalls = 0;
      // Idle before the next arrival: try a tick, then jump the clock.
      if (fruitless_ticks < 2) {
        Stopwatch sw;
        const WorkStats stats = algorithm.OnIdleTick();
        vt += meter.StepCost(stats, sw.ElapsedSeconds());
        ++fruitless_ticks;
        obs::CounterAdd(m.idle_ticks);
      } else {
        if (vt < t_next) vt = t_next;
        fruitless_ticks = 0;
      }
      continue;
    }

    // 4. Stream fully delivered: notify once, then tick until dry.
    if (!stream_ended_notified) {
      Stopwatch sw;
      const WorkStats stats = algorithm.OnStreamEnd();
      vt += meter.StepCost(stats, sw.ElapsedSeconds());
      stream_ended_notified = true;
      continue;
    }
    if (fruitless_ticks < 2) {
      Stopwatch sw;
      const WorkStats stats = algorithm.OnIdleTick();
      vt += meter.StepCost(stats, sw.ElapsedSeconds());
      ++fruitless_ticks;
      obs::CounterAdd(m.idle_ticks);
      continue;
    }
    break;  // two fruitless ticks after stream end: done
  }

  result.comparisons_executed = executed;
  result.matches_found = found;
  result.end_time = vt;
  // Terminal curve point: only when it adds information. The curve is
  // kept strictly monotone in `comparisons` -- an unconditional append
  // used to duplicate the last point at the same comparison count with
  // a later timestamp, creating a spurious step for
  // MatchesAtComparisons / PC-per-comparison plots.
  if (result.curve.empty() ||
      result.curve.points().back().comparisons != executed) {
    result.curve.Add(CurvePoint{vt, executed, found});
  }
  if (registry != nullptr) {
    obs::GaugeSet(m.virtual_time_s, vt);
    obs::GaugeSet(m.queue_depth, static_cast<double>(backlog()));
    emit_snapshot(vt);
  }
  return result;
}

}  // namespace pier
