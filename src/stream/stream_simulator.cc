#include "stream/stream_simulator.h"

#include <unordered_set>

#include "similarity/parallel_executor.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace pier {

StreamSimulator::StreamSimulator(const Dataset* dataset,
                                 SimulatorOptions options)
    : dataset_(dataset), options_(options) {
  PIER_CHECK(dataset_ != nullptr);
  increments_ = SplitIntoIncrements(*dataset_, options_.num_increments);
}

RunResult StreamSimulator::Run(ErAlgorithm& algorithm,
                               const Matcher& matcher) const {
  const CostMeter meter(options_.cost_mode, options_.cost_model);

  // All matching goes through the executor; with execution_threads=1
  // it runs inline. Verdicts come back in emission order, so the
  // accounting below is identical for every thread count.
  const ParallelMatchExecutor executor(&matcher, options_.execution_threads);
  const ParallelMatchExecutor::ProfileLookup lookup =
      [&algorithm](ProfileId id) -> const EntityProfile& {
    return algorithm.Profile(id);
  };

  RunResult result;
  result.algorithm = algorithm.name();
  result.dataset = dataset_->name;
  result.matcher = matcher.name();
  result.total_true_matches = dataset_->truth.size();

  // Arrival schedule: t_i = i / rate (all zero in the static setting).
  const double interarrival =
      options_.IsStatic() ? 0.0 : 1.0 / options_.increments_per_second;

  double vt = 0.0;
  size_t next_arrival = 0;
  int fruitless_ticks = 0;
  bool stream_ended_notified = false;
  uint64_t executed = 0;
  uint64_t found = 0;
  uint64_t last_recorded = 0;
  // True-match pairs already credited (guards against an algorithm
  // emitting the same pair twice, e.g. a Bloom false-negative path).
  std::unordered_set<uint64_t> credited;

  auto record_point = [&]() {
    if (executed - last_recorded < options_.curve_granularity &&
        !result.curve.empty()) {
      return;
    }
    result.curve.Add(CurvePoint{vt, executed, found});
    last_recorded = executed;
  };
  record_point();

  while (vt < options_.time_budget_s) {
    // 1. Deliver a due increment if the algorithm accepts it.
    if (next_arrival < increments_.size() &&
        vt >= interarrival * static_cast<double>(next_arrival) &&
        algorithm.ReadyForIncrement()) {
      const Increment inc = increments_[next_arrival];
      std::vector<EntityProfile> profiles(
          dataset_->profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
          dataset_->profiles.begin() + static_cast<ptrdiff_t>(inc.end));
      algorithm.OnArrival(interarrival *
                          static_cast<double>(next_arrival));
      Stopwatch sw;
      const WorkStats stats = algorithm.OnIncrement(std::move(profiles));
      vt += meter.StepCost(stats, sw.ElapsedSeconds());
      ++next_arrival;
      if (next_arrival == increments_.size()) {
        result.stream_consumed_at = vt;
      }
      fruitless_ticks = 0;
      continue;
    }

    // 2. Process the next comparison batch, if any.
    {
      WorkStats gen_stats;
      Stopwatch sw;
      const std::vector<Comparison> batch = algorithm.NextBatch(&gen_stats);
      const double gen_seconds = sw.ElapsedSeconds();
      if (!batch.empty()) {
        vt += meter.StepCost(gen_stats, gen_seconds);
        uint64_t units = 0;
        Stopwatch match_sw;
        const std::vector<MatchVerdict> verdicts =
            executor.Execute(batch, lookup);
        for (size_t i = 0; i < batch.size(); ++i) {
          const Comparison& c = batch[i];
          const MatchVerdict& v = verdicts[i];
          units += v.cost_units;
          ++executed;
          const bool is_true_match = dataset_->truth.IsMatch(c.x, c.y);
          if (v.is_match) {
            ++result.matcher_positives;
            if (is_true_match) ++result.matcher_true_positives;
          }
          if (is_true_match && credited.insert(c.Key()).second) {
            ++found;
          }
        }
        const double match_cost =
            meter.MatchCost(units, match_sw.ElapsedSeconds());
        vt += match_cost;
        algorithm.OnBatchCost(batch.size(), match_cost);
        record_point();
        fruitless_ticks = 0;
        continue;
      }
      vt += meter.StepCost(gen_stats, gen_seconds);
    }

    // 3. No work right now.
    if (next_arrival < increments_.size()) {
      // An algorithm refusing an increment must have pending batches;
      // otherwise the run could never progress.
      PIER_CHECK(algorithm.ReadyForIncrement() ||
                 vt < interarrival * static_cast<double>(next_arrival));
      // Idle before the next arrival: try a tick, then jump the clock.
      if (fruitless_ticks < 2) {
        Stopwatch sw;
        const WorkStats stats = algorithm.OnIdleTick();
        vt += meter.StepCost(stats, sw.ElapsedSeconds());
        ++fruitless_ticks;
      } else {
        const double t_next =
            interarrival * static_cast<double>(next_arrival);
        if (vt < t_next) vt = t_next;
        fruitless_ticks = 0;
      }
      continue;
    }

    // 4. Stream fully delivered: notify once, then tick until dry.
    if (!stream_ended_notified) {
      Stopwatch sw;
      const WorkStats stats = algorithm.OnStreamEnd();
      vt += meter.StepCost(stats, sw.ElapsedSeconds());
      stream_ended_notified = true;
      continue;
    }
    if (fruitless_ticks < 2) {
      Stopwatch sw;
      const WorkStats stats = algorithm.OnIdleTick();
      vt += meter.StepCost(stats, sw.ElapsedSeconds());
      ++fruitless_ticks;
      continue;
    }
    break;  // two fruitless ticks after stream end: done
  }

  result.comparisons_executed = executed;
  result.matches_found = found;
  result.end_time = vt;
  result.curve.Add(CurvePoint{vt, executed, found});
  return result;
}

}  // namespace pier
