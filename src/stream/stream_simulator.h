// Discrete-event stream simulator: replays a dataset as a sequence of
// increments arriving at a configurable rate (Section 3.1) against any
// ErAlgorithm, interleaving arrivals with comparison processing on a
// virtual clock. Produces the progressive curves of Section 7.
//
// Semantics reproduced from the paper's Akka pipeline:
//  * an increment is delivered as soon as its arrival time has passed
//    and the algorithm is ready (backpressure buffers it otherwise);
//  * between arrivals the algorithm emits comparison batches that the
//    matcher processes (their cost advances the clock);
//  * when the algorithm has no work and no arrival is due, idle ticks
//    (the blocking step's periodic empty increments) let it pull older
//    pairs forward; if a tick yields nothing, the clock jumps to the
//    next arrival (the idle "steps" of Figure 2);
//  * the run ends when the budget is exhausted or when the stream is
//    consumed and two consecutive ticks produce no work.

#ifndef PIER_STREAM_STREAM_SIMULATOR_H_
#define PIER_STREAM_STREAM_SIMULATOR_H_

#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "eval/run_result.h"
#include "model/dataset.h"
#include "obs/metrics.h"
#include "similarity/matcher.h"
#include "stream/cost_meter.h"
#include "stream/er_algorithm.h"

namespace pier {
namespace persist {
class SnapshotBuilder;
class SnapshotReader;
}  // namespace persist
}  // namespace pier

namespace pier {

struct SimulatorOptions {
  // Number of equi-sized increments the dataset is split into.
  size_t num_increments = 100;

  // Increment arrival rate in increments/second. An infinite rate
  // (the default marker 0) means all increments are available at t=0
  // -- the paper's *static* setting.
  double increments_per_second = 0.0;

  // Virtual-time budget; the run stops once the clock passes it.
  double time_budget_s = std::numeric_limits<double>::infinity();

  // Cost attribution mode.
  CostMeter::Mode cost_mode = CostMeter::Mode::kModeled;
  CostModel cost_model;

  // Record at most one curve point per this many executed comparisons
  // (1 = every batch boundary).
  size_t curve_granularity = 1;

  // Worker threads for match execution (1 = sequential). The verdict
  // stream is deterministic in emission order, so with the modeled
  // cost meter the resulting curves are bit-identical for every
  // value; with the measured meter only wall time changes.
  size_t execution_threads = 1;

  // Observability (see src/obs/): when `metrics` is set, the simulator
  // registers and updates its `sim.*` stage metrics there; when
  // `metrics_out` is set, JSON-lines snapshots are written to it --
  // one per `metrics_interval_s` of virtual time (0 = only the final
  // snapshot) plus always one at the end of the run. `metrics_out`
  // without `metrics` uses a run-local registry.
  obs::MetricsRegistry* metrics = nullptr;
  std::ostream* metrics_out = nullptr;
  double metrics_interval_s = 0.0;

  // Seed for the stochastic frontier strategies (SPER-SK): callers
  // mirror PierOptions::prioritizer.frontier_seed here so the value is
  // recorded in (and validated against) checkpoint metadata -- a
  // resumed run can never silently continue a differently-seeded
  // stream. Ignored by the deterministic strategies. Written to
  // sim.meta only when it differs from the default, keeping earlier
  // snapshots loadable.
  uint64_t frontier_seed = 42;

  // An algorithm that refuses a due increment while holding no pending
  // batch is *stalled* (e.g. a windowed baseline between arrivals):
  // the simulator charges it idle ticks, counts `stalled_ticks`, and
  // ends the run gracefully after this many consecutive stalls.
  size_t stall_limit = 10000;

  // Checkpointing (see src/persist/): when `checkpoint_dir` is
  // non-empty, the simulator writes a durable snapshot of the
  // algorithm and its own loop state before the first increment and
  // after every `checkpoint_every`-th delivered increment (plus always
  // after the final one). The algorithm must support snapshots
  // (ErAlgorithm::SupportsSnapshot). Checkpoint writes never touch the
  // virtual clock or the algorithm, so a checkpointing run produces
  // exactly the curve an unchecked run would. With the modeled cost
  // meter, Resume() from any checkpoint then reproduces the
  // uninterrupted run's verdict stream and curve bit-for-bit (recovery
  // equivalence); the measured meter has inherently noisy timings.
  std::string checkpoint_dir;
  size_t checkpoint_every = 10;
  size_t checkpoint_keep = 3;

  bool IsStatic() const { return increments_per_second <= 0.0; }
};

class StreamSimulator {
 public:
  StreamSimulator(const Dataset* dataset, SimulatorOptions options);

  // Runs `algorithm` against the stream with `matcher` classifying the
  // emitted comparisons. The algorithm must be freshly constructed.
  RunResult Run(ErAlgorithm& algorithm, const Matcher& matcher) const;

  // Resumes a run from a checkpoint previously written by Run() with
  // `checkpoint_dir` set. `algorithm` must be freshly constructed with
  // the configuration used for the original run, and the simulator's
  // dataset/options must match the ones recorded in the snapshot
  // (diagnosed through `error` otherwise). On success the run plays
  // forward from the checkpointed increment to completion; corrupted
  // or mismatched snapshots return nullopt without mutating anything.
  std::optional<RunResult> Resume(ErAlgorithm& algorithm,
                                  const Matcher& matcher,
                                  std::istream& snapshot,
                                  std::string* error) const;

  const std::vector<Increment>& increments() const { return increments_; }

 private:
  struct LoopState;

  RunResult RunLoop(ErAlgorithm& algorithm, const Matcher& matcher,
                    LoopState& state) const;
  void SnapshotLoopState(persist::SnapshotBuilder& builder,
                         const ErAlgorithm& algorithm, const Matcher& matcher,
                         const LoopState& state) const;
  bool RestoreLoopState(const persist::SnapshotReader& reader,
                        const ErAlgorithm& algorithm, const Matcher& matcher,
                        LoopState* state, std::string* error) const;

  const Dataset* dataset_;
  SimulatorOptions options_;
  std::vector<Increment> increments_;
};

}  // namespace pier

#endif  // PIER_STREAM_STREAM_SIMULATOR_H_
