// Discrete-event stream simulator: replays a dataset as a sequence of
// increments arriving at a configurable rate (Section 3.1) against any
// ErAlgorithm, interleaving arrivals with comparison processing on a
// virtual clock. Produces the progressive curves of Section 7.
//
// Semantics reproduced from the paper's Akka pipeline:
//  * an increment is delivered as soon as its arrival time has passed
//    and the algorithm is ready (backpressure buffers it otherwise);
//  * between arrivals the algorithm emits comparison batches that the
//    matcher processes (their cost advances the clock);
//  * when the algorithm has no work and no arrival is due, idle ticks
//    (the blocking step's periodic empty increments) let it pull older
//    pairs forward; if a tick yields nothing, the clock jumps to the
//    next arrival (the idle "steps" of Figure 2);
//  * the run ends when the budget is exhausted or when the stream is
//    consumed and two consecutive ticks produce no work.

#ifndef PIER_STREAM_STREAM_SIMULATOR_H_
#define PIER_STREAM_STREAM_SIMULATOR_H_

#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "eval/run_result.h"
#include "model/dataset.h"
#include "obs/metrics.h"
#include "similarity/matcher.h"
#include "stream/cost_meter.h"
#include "stream/er_algorithm.h"

namespace pier {

struct SimulatorOptions {
  // Number of equi-sized increments the dataset is split into.
  size_t num_increments = 100;

  // Increment arrival rate in increments/second. An infinite rate
  // (the default marker 0) means all increments are available at t=0
  // -- the paper's *static* setting.
  double increments_per_second = 0.0;

  // Virtual-time budget; the run stops once the clock passes it.
  double time_budget_s = std::numeric_limits<double>::infinity();

  // Cost attribution mode.
  CostMeter::Mode cost_mode = CostMeter::Mode::kModeled;
  CostModel cost_model;

  // Record at most one curve point per this many executed comparisons
  // (1 = every batch boundary).
  size_t curve_granularity = 1;

  // Worker threads for match execution (1 = sequential). The verdict
  // stream is deterministic in emission order, so with the modeled
  // cost meter the resulting curves are bit-identical for every
  // value; with the measured meter only wall time changes.
  size_t execution_threads = 1;

  // Observability (see src/obs/): when `metrics` is set, the simulator
  // registers and updates its `sim.*` stage metrics there; when
  // `metrics_out` is set, JSON-lines snapshots are written to it --
  // one per `metrics_interval_s` of virtual time (0 = only the final
  // snapshot) plus always one at the end of the run. `metrics_out`
  // without `metrics` uses a run-local registry.
  obs::MetricsRegistry* metrics = nullptr;
  std::ostream* metrics_out = nullptr;
  double metrics_interval_s = 0.0;

  // An algorithm that refuses a due increment while holding no pending
  // batch is *stalled* (e.g. a windowed baseline between arrivals):
  // the simulator charges it idle ticks, counts `stalled_ticks`, and
  // ends the run gracefully after this many consecutive stalls.
  size_t stall_limit = 10000;

  bool IsStatic() const { return increments_per_second <= 0.0; }
};

class StreamSimulator {
 public:
  StreamSimulator(const Dataset* dataset, SimulatorOptions options);

  // Runs `algorithm` against the stream with `matcher` classifying the
  // emitted comparisons. The algorithm must be freshly constructed.
  RunResult Run(ErAlgorithm& algorithm, const Matcher& matcher) const;

  const std::vector<Increment>& increments() const { return increments_; }

 private:
  const Dataset* dataset_;
  SimulatorOptions options_;
  std::vector<Increment> increments_;
};

}  // namespace pier

#endif  // PIER_STREAM_STREAM_SIMULATOR_H_
