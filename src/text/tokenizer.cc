#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace pier {

namespace {

inline char NormalizeChar(char c) {
  const unsigned char uc = static_cast<unsigned char>(c);
  if (std::isalnum(uc)) return static_cast<char>(std::tolower(uc));
  return ' ';
}

}  // namespace

std::string Tokenizer::Normalize(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) out.push_back(NormalizeChar(c));
  return out;
}

std::vector<std::string> Tokenizer::Split(std::string_view text) const {
  std::vector<std::string> tokens;
  const std::string normalized = Normalize(text);
  size_t i = 0;
  const size_t n = normalized.size();
  while (i < n) {
    while (i < n && normalized[i] == ' ') ++i;
    size_t j = i;
    while (j < n && normalized[j] != ' ') ++j;
    if (j > i) {
      size_t len = j - i;
      if (len >= options_.min_token_length) {
        if (len > options_.max_token_length) len = options_.max_token_length;
        tokens.emplace_back(normalized.substr(i, len));
      }
    }
    i = j;
  }
  return tokens;
}

void Tokenizer::TokenizeProfile(EntityProfile& profile,
                                TokenDictionary& dict) const {
  // The ingest hot path: normalize each value into a reusable buffer
  // and intern string_view slices of it directly -- no per-token or
  // per-value heap allocation (Split's std::string materialization is
  // for cold callers only). Byte-identical output to the Split-based
  // formulation.
  std::vector<TokenId> ids;
  std::string flat;
  thread_local std::string normalized;
  profile.ForEachAttribute(
      [&](std::string_view /*name*/, std::string_view value) {
        normalized.clear();
        for (const char c : value) normalized.push_back(NormalizeChar(c));
        size_t i = 0;
        const size_t n = normalized.size();
        while (i < n) {
          while (i < n && normalized[i] == ' ') ++i;
          size_t j = i;
          while (j < n && normalized[j] != ' ') ++j;
          if (j > i) {
            size_t len = j - i;
            if (len >= options_.min_token_length) {
              if (len > options_.max_token_length) {
                len = options_.max_token_length;
              }
              const std::string_view token(normalized.data() + i, len);
              ids.push_back(dict.Intern(token));
              if (!flat.empty()) flat.push_back(' ');
              flat.append(token);
            }
          }
          i = j;
        }
      });
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (const TokenId id : ids) dict.IncrementDocFrequency(id);
  profile.set_tokens(std::move(ids));
  profile.set_flat_text(std::move(flat));
}

}  // namespace pier
