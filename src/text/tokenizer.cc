#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace pier {

std::string Tokenizer::Normalize(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      out.push_back(static_cast<char>(std::tolower(uc)));
    } else {
      out.push_back(' ');
    }
  }
  return out;
}

std::vector<std::string> Tokenizer::Split(std::string_view text) const {
  std::vector<std::string> tokens;
  const std::string normalized = Normalize(text);
  size_t i = 0;
  const size_t n = normalized.size();
  while (i < n) {
    while (i < n && normalized[i] == ' ') ++i;
    size_t j = i;
    while (j < n && normalized[j] != ' ') ++j;
    if (j > i) {
      size_t len = j - i;
      if (len >= options_.min_token_length) {
        if (len > options_.max_token_length) len = options_.max_token_length;
        tokens.emplace_back(normalized.substr(i, len));
      }
    }
    i = j;
  }
  return tokens;
}

void Tokenizer::TokenizeProfile(EntityProfile& profile,
                                TokenDictionary& dict) const {
  std::vector<TokenId> ids;
  std::string flat;
  for (const auto& attribute : profile.attributes) {
    for (auto& token : Split(attribute.value)) {
      ids.push_back(dict.Intern(token));
      if (!flat.empty()) flat.push_back(' ');
      flat += token;
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (const TokenId id : ids) dict.IncrementDocFrequency(id);
  profile.tokens = std::move(ids);
  profile.flat_text = std::move(flat);
}

}  // namespace pier
