// Schema-agnostic tokenization (the "Data Reading" scrubbing step of
// the framework, Section 3.2): attribute values are lower-cased,
// punctuation is treated as whitespace, and each distinct token of any
// value becomes a blocking key. Attribute *names* never contribute
// tokens -- this is what makes the pipeline schema-agnostic.

#ifndef PIER_TEXT_TOKENIZER_H_
#define PIER_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "model/entity_profile.h"
#include "model/token_dictionary.h"

namespace pier {

struct TokenizerOptions {
  // Tokens shorter than this are dropped (single characters are almost
  // always noise in web data).
  size_t min_token_length = 2;
  // Tokens longer than this are truncated (guards against pathological
  // values).
  size_t max_token_length = 64;
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = TokenizerOptions())
      : options_(options) {}

  // Lower-cases and maps non-alphanumeric characters to spaces.
  static std::string Normalize(std::string_view text);

  // Splits normalized text into raw token strings (no interning).
  std::vector<std::string> Split(std::string_view text) const;

  // Fills the profile's tokens (sorted, unique TokenIds over all
  // attribute values) and flat text, interning new tokens into `dict`
  // and bumping their document frequencies.
  void TokenizeProfile(EntityProfile& profile, TokenDictionary& dict) const;

 private:
  TokenizerOptions options_;
};

}  // namespace pier

#endif  // PIER_TEXT_TOKENIZER_H_
