#include "util/bloom_filter.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "util/serial.h"

namespace pier {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}  // namespace

void BloomFilter::ExpectedSizing(size_t expected_items, double fp_rate,
                                 BloomLayout layout, size_t* num_bits,
                                 int* num_hashes) {
  const double n = static_cast<double>(expected_items);
  const double m = std::ceil(-n * std::log(fp_rate) / (kLn2 * kLn2));
  size_t bits = static_cast<size_t>(m);
  if (layout == BloomLayout::kBlocked512) {
    // Whole cache-line blocks: round up so every block is fully
    // addressable by a 9-bit in-block offset.
    bits = (std::max(bits, kBlockBits) + kBlockBits - 1) / kBlockBits *
           kBlockBits;
  } else if (bits < 64) {
    bits = 64;
  }
  // k must be derived from the *actual* (clamped) bit count: for tiny
  // capacities (e.g. the first slice of a ScalableBloomFilter with a
  // small initial_capacity) the clamp would otherwise leave k sized
  // for the unclamped m and the realized FP rate off-design.
  int hashes =
      static_cast<int>(std::round(static_cast<double>(bits) / n * kLn2));
  if (hashes < 1) hashes = 1;
  *num_bits = bits;
  *num_hashes = hashes;
}

BloomFilter::BloomFilter(size_t expected_items, double fp_rate,
                         BloomLayout layout)
    : layout_(layout), expected_items_(expected_items) {
  PIER_CHECK(expected_items > 0);
  PIER_CHECK(fp_rate > 0.0 && fp_rate < 1.0);
  ExpectedSizing(expected_items, fp_rate, layout, &num_bits_, &num_hashes_);
  bits_.assign((num_bits_ + 63) / 64, 0);
}

void BloomFilter::Add(uint64_t key) {
  const uint64_t h1 = Mix64(key);
  const uint64_t h2 = Mix64(key ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  if (layout_ == BloomLayout::kBlocked512) {
    // One cache line per key: h1 picks the block, 9-bit slices of h2
    // pick the bits inside it (re-mixed when a word of slices runs
    // out, at most every 7 probes).
    uint64_t* block = &bits_[FastRange(h1, num_bits_ / kBlockBits) *
                             kBlockWords];
    uint64_t h = h2;
    int avail = 7;
    for (int i = 0; i < num_hashes_; ++i) {
      if (avail == 0) {
        h = Mix64(h);
        avail = 7;
      }
      const size_t bit = h & (kBlockBits - 1);
      h >>= 9;
      --avail;
      block[bit >> 6] |= uint64_t{1} << (bit & 63);
    }
  } else {
    for (int i = 0; i < num_hashes_; ++i) {
      const size_t bit = BitIndex(h1, h2, i);
      bits_[bit >> 6] |= uint64_t{1} << (bit & 63);
    }
  }
  ++num_insertions_;
}

bool BloomFilter::MayContain(uint64_t key) const {
  const uint64_t h1 = Mix64(key);
  const uint64_t h2 = Mix64(key ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  if (layout_ == BloomLayout::kBlocked512) {
    const uint64_t* block = &bits_[FastRange(h1, num_bits_ / kBlockBits) *
                                   kBlockWords];
    uint64_t h = h2;
    int avail = 7;
    for (int i = 0; i < num_hashes_; ++i) {
      if (avail == 0) {
        h = Mix64(h);
        avail = 7;
      }
      const size_t bit = h & (kBlockBits - 1);
      h >>= 9;
      --avail;
      if ((block[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) return false;
    }
    return true;
  }
  for (int i = 0; i < num_hashes_; ++i) {
    const size_t bit = BitIndex(h1, h2, i);
    if ((bits_[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::Snapshot(std::ostream& out) const {
  if (layout_ != BloomLayout::kFlatModulo) {
    // Sentinel-prefixed format: a zero u64 (impossible as the legacy
    // leading expected_items field) followed by the layout byte.
    serial::WriteU64(out, 0);
    serial::WriteU8(out, static_cast<uint8_t>(layout_));
  }
  serial::WriteU64(out, expected_items_);
  serial::WriteU64(out, num_bits_);
  serial::WriteU32(out, static_cast<uint32_t>(num_hashes_));
  serial::WriteU64(out, num_insertions_);
  serial::WriteVec(out, bits_, serial::WriteU64);
}

std::unique_ptr<BloomFilter> BloomFilter::FromSnapshot(std::istream& in) {
  auto filter = std::unique_ptr<BloomFilter>(new BloomFilter());
  uint64_t expected_items = 0;
  if (!serial::ReadU64(in, &expected_items)) return nullptr;
  if (expected_items == 0) {
    // Sentinel: layout byte then the regular fields.
    uint8_t layout = 0;
    if (!serial::ReadU8(in, &layout) ||
        layout > static_cast<uint8_t>(BloomLayout::kBlocked512) ||
        !serial::ReadU64(in, &expected_items)) {
      return nullptr;
    }
    filter->layout_ = static_cast<BloomLayout>(layout);
  } else {
    // Legacy payload (no layout flag): bits were placed with the
    // modulo mapping, so the filter must keep probing with it.
    filter->layout_ = BloomLayout::kFlatModulo;
  }
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint64_t num_insertions = 0;
  if (!serial::ReadU64(in, &num_bits) || !serial::ReadU32(in, &num_hashes) ||
      !serial::ReadU64(in, &num_insertions) ||
      !serial::ReadVec(in, &filter->bits_, serial::ReadU64)) {
    return nullptr;
  }
  const size_t min_bits =
      filter->layout_ == BloomLayout::kBlocked512 ? kBlockBits : 64;
  const bool aligned = filter->layout_ != BloomLayout::kBlocked512 ||
                       num_bits % kBlockBits == 0;
  if (expected_items == 0 || num_bits < min_bits || !aligned ||
      num_hashes < 1 || num_hashes > 255 ||
      filter->bits_.size() != (num_bits + 63) / 64) {
    return nullptr;
  }
  filter->expected_items_ = expected_items;
  filter->num_bits_ = num_bits;
  filter->num_hashes_ = static_cast<int>(num_hashes);
  filter->num_insertions_ = num_insertions;
  return filter;
}

bool BloomFilter::UnionFrom(const BloomFilter& other) {
  if (other.layout_ != layout_ ||
      other.expected_items_ != expected_items_ ||
      other.num_bits_ != num_bits_ || other.num_hashes_ != num_hashes_) {
    return false;
  }
  if (&other == this) return true;
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  num_insertions_ =
      std::min(expected_items_, num_insertions_ + other.num_insertions_);
  return true;
}

}  // namespace pier
