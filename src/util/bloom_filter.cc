#include "util/bloom_filter.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "util/serial.h"

namespace pier {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}  // namespace

BloomFilter::BloomFilter(size_t expected_items, double fp_rate)
    : expected_items_(expected_items) {
  PIER_CHECK(expected_items > 0);
  PIER_CHECK(fp_rate > 0.0 && fp_rate < 1.0);
  const double n = static_cast<double>(expected_items);
  const double m = std::ceil(-n * std::log(fp_rate) / (kLn2 * kLn2));
  num_bits_ = static_cast<size_t>(m);
  if (num_bits_ < 64) num_bits_ = 64;
  // k must be derived from the *actual* (clamped) bit count: for tiny
  // capacities (e.g. the first slice of a ScalableBloomFilter with a
  // small initial_capacity) the clamp to 64 bits would otherwise leave
  // k sized for the unclamped m and the realized FP rate off-design.
  num_hashes_ = static_cast<int>(
      std::round(static_cast<double>(num_bits_) / n * kLn2));
  if (num_hashes_ < 1) num_hashes_ = 1;
  bits_.assign((num_bits_ + 63) / 64, 0);
}

void BloomFilter::Add(uint64_t key) {
  const uint64_t h1 = Mix64(key);
  const uint64_t h2 = Mix64(key ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  for (int i = 0; i < num_hashes_; ++i) {
    const size_t bit = BitIndex(h1, h2, i);
    bits_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
  ++num_insertions_;
}

void BloomFilter::Snapshot(std::ostream& out) const {
  serial::WriteU64(out, expected_items_);
  serial::WriteU64(out, num_bits_);
  serial::WriteU32(out, static_cast<uint32_t>(num_hashes_));
  serial::WriteU64(out, num_insertions_);
  serial::WriteVec(out, bits_, serial::WriteU64);
}

std::unique_ptr<BloomFilter> BloomFilter::FromSnapshot(std::istream& in) {
  auto filter = std::unique_ptr<BloomFilter>(new BloomFilter());
  uint64_t expected_items = 0;
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint64_t num_insertions = 0;
  if (!serial::ReadU64(in, &expected_items) ||
      !serial::ReadU64(in, &num_bits) || !serial::ReadU32(in, &num_hashes) ||
      !serial::ReadU64(in, &num_insertions) ||
      !serial::ReadVec(in, &filter->bits_, serial::ReadU64)) {
    return nullptr;
  }
  if (expected_items == 0 || num_bits < 64 || num_hashes < 1 ||
      num_hashes > 255 || filter->bits_.size() != (num_bits + 63) / 64) {
    return nullptr;
  }
  filter->expected_items_ = expected_items;
  filter->num_bits_ = num_bits;
  filter->num_hashes_ = static_cast<int>(num_hashes);
  filter->num_insertions_ = num_insertions;
  return filter;
}

bool BloomFilter::UnionFrom(const BloomFilter& other) {
  if (other.expected_items_ != expected_items_ ||
      other.num_bits_ != num_bits_ || other.num_hashes_ != num_hashes_) {
    return false;
  }
  if (&other == this) return true;
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  num_insertions_ =
      std::min(expected_items_, num_insertions_ + other.num_insertions_);
  return true;
}

bool BloomFilter::MayContain(uint64_t key) const {
  const uint64_t h1 = Mix64(key);
  const uint64_t h2 = Mix64(key ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  for (int i = 0; i < num_hashes_; ++i) {
    const size_t bit = BitIndex(h1, h2, i);
    if ((bits_[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) return false;
  }
  return true;
}

}  // namespace pier
