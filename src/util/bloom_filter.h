// A classic Bloom filter over 64-bit keys, used as building block of
// the scalable Bloom filter (see scalable_bloom_filter.h) that
// implements the comparison filter CF of the I-PBS algorithm
// (Algorithm 3 of the paper; technique from Gazzarri & Herschel,
// EDBT 2020 [16]).

#ifndef PIER_UTIL_BLOOM_FILTER_H_
#define PIER_UTIL_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "util/check.h"
#include "util/hashing.h"

namespace pier {

class BloomFilter {
 public:
  // Sizes the filter for `expected_items` insertions at false-positive
  // probability `fp_rate` (0 < fp_rate < 1).
  BloomFilter(size_t expected_items, double fp_rate);

  // Inserts a key. Counts insertions so the owner can detect when the
  // filter reaches its design capacity.
  void Add(uint64_t key);

  // True if the key *may* have been inserted; false means definitely
  // not inserted.
  bool MayContain(uint64_t key) const;

  size_t num_insertions() const { return num_insertions_; }
  size_t expected_items() const { return expected_items_; }
  bool AtCapacity() const { return num_insertions_ >= expected_items_; }

  size_t num_bits() const { return num_bits_; }
  int num_hashes() const { return num_hashes_; }

  // Estimated memory footprint in bytes.
  size_t MemoryBytes() const { return bits_.size() * sizeof(uint64_t); }

  // Serializes sizing parameters, insertion count, and the bit array
  // (little-endian; see util/serial.h).
  void Snapshot(std::ostream& out) const;

  // Reconstructs a filter from a Snapshot payload; null on any decode
  // failure or inconsistent field (e.g. word count not matching the
  // recorded bit count).
  static std::unique_ptr<BloomFilter> FromSnapshot(std::istream& in);

  // Folds another filter of identical sizing into this one (bitwise
  // OR), so every key Add()ed to either side is MayContain() here --
  // the shard-merge consolidation primitive. The insertion count
  // saturates at expected_items(), which keeps a slice sequence
  // Restore-consistent (non-final slices stay exactly full); the
  // realized false-positive rate can exceed design when both sides
  // were heavily loaded. Returns false, leaving this filter untouched,
  // when the sizing parameters differ.
  bool UnionFrom(const BloomFilter& other);

 private:
  BloomFilter() = default;  // for FromSnapshot

  size_t BitIndex(uint64_t h1, uint64_t h2, int i) const {
    // Double hashing: g_i(x) = h1 + i * h2 (Kirsch & Mitzenmacher).
    return (h1 + static_cast<uint64_t>(i) * h2) % num_bits_;
  }

  size_t expected_items_ = 0;
  size_t num_bits_ = 0;
  int num_hashes_ = 0;
  size_t num_insertions_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace pier

#endif  // PIER_UTIL_BLOOM_FILTER_H_
