// A Bloom filter over 64-bit keys, used as building block of the
// scalable Bloom filter (see scalable_bloom_filter.h) that implements
// the comparison filter CF of the I-PBS algorithm (Algorithm 3 of the
// paper; technique from Gazzarri & Herschel, EDBT 2020 [16]).
//
// Three bit layouts share the class (see BloomLayout):
//
//  - kFlatModulo: the original layout -- k double-hashed probes over
//    the whole array, each mapped with `% num_bits`. Kept only so
//    snapshots written before the layout flag existed restore with
//    the exact bit mapping they were built with; new filters never
//    use it (an integer divide per probe is the hot-path cost).
//  - kFlatFastrange: same probe sequence, but mapped with Lemire's
//    fastrange ((h * num_bits) >> 64) -- a multiply instead of a
//    divide. Bit positions differ from kFlatModulo, which is why the
//    mapping is a persisted format flag and not a silent upgrade:
//    restoring modulo-era bits under fastrange probes would produce
//    false negatives, the one error class a Bloom filter must never
//    emit.
//  - kBlocked512: split-block layout. One fastrange hash picks a
//    512-bit block (one cache line); all k probe bits land inside
//    that block, addressed by 9-bit slices of the second hash. A
//    query touches exactly one cache line instead of k, at the cost
//    of a slightly higher false-positive rate for the same bit count
//    (~1.2-2x at typical k; the scalable wrapper's tightening
//    schedule absorbs it). This is the layout the executed-comparison
//    filter uses at paper scale.
//
// Snapshot compatibility: the pre-flag format started with a nonzero
// expected_items u64. New snapshots start with a zero u64 sentinel
// followed by a layout byte, so FromSnapshot can accept both: nonzero
// first word == legacy kFlatModulo payload.

#ifndef PIER_UTIL_BLOOM_FILTER_H_
#define PIER_UTIL_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "util/check.h"
#include "util/hashing.h"

namespace pier {

enum class BloomLayout : uint8_t {
  kFlatModulo = 0,
  kFlatFastrange = 1,
  kBlocked512 = 2,
};

class BloomFilter {
 public:
  // Sizes the filter for `expected_items` insertions at false-positive
  // probability `fp_rate` (0 < fp_rate < 1).
  BloomFilter(size_t expected_items, double fp_rate,
              BloomLayout layout = BloomLayout::kFlatFastrange);

  // Inserts a key. Counts insertions so the owner can detect when the
  // filter reaches its design capacity.
  void Add(uint64_t key);

  // True if the key *may* have been inserted; false means definitely
  // not inserted.
  bool MayContain(uint64_t key) const;

  size_t num_insertions() const { return num_insertions_; }
  size_t expected_items() const { return expected_items_; }
  bool AtCapacity() const { return num_insertions_ >= expected_items_; }

  size_t num_bits() const { return num_bits_; }
  int num_hashes() const { return num_hashes_; }
  BloomLayout layout() const { return layout_; }

  // Estimated memory footprint in bytes.
  size_t MemoryBytes() const { return bits_.size() * sizeof(uint64_t); }

  // Serializes layout, sizing parameters, insertion count, and the bit
  // array (little-endian; see util/serial.h). kFlatModulo filters are
  // written in the legacy (pre-layout-flag) format, everything else in
  // the sentinel-prefixed format described in the file comment.
  void Snapshot(std::ostream& out) const;

  // Reconstructs a filter from a Snapshot payload (either format);
  // null on any decode failure or inconsistent field (e.g. word count
  // not matching the recorded bit count).
  static std::unique_ptr<BloomFilter> FromSnapshot(std::istream& in);

  // Folds another filter of identical layout and sizing into this one
  // (bitwise OR), so every key Add()ed to either side is MayContain()
  // here -- the shard-merge consolidation primitive. The insertion
  // count saturates at expected_items(), which keeps a slice sequence
  // Restore-consistent (non-final slices stay exactly full); the
  // realized false-positive rate can exceed design when both sides
  // were heavily loaded. Returns false, leaving this filter untouched,
  // when the layout or sizing parameters differ.
  bool UnionFrom(const BloomFilter& other);

  // Mirror of the constructor's sizing, exposed so a snapshot reader
  // can validate recorded dimensions without allocating: the (bits,
  // hashes) this class picks for the given parameters.
  static void ExpectedSizing(size_t expected_items, double fp_rate,
                             BloomLayout layout, size_t* num_bits,
                             int* num_hashes);

 private:
  static constexpr size_t kBlockBits = 512;
  static constexpr size_t kBlockWords = kBlockBits / 64;

  BloomFilter() = default;  // for FromSnapshot

  // Lemire fastrange: maps a 64-bit hash onto [0, n) with a multiply
  // and shift instead of a modulo.
  static size_t FastRange(uint64_t h, size_t n) {
    return static_cast<size_t>(
        (static_cast<unsigned __int128>(h) * n) >> 64);
  }

  size_t BitIndex(uint64_t h1, uint64_t h2, int i) const {
    // Double hashing: g_i(x) = h1 + i * h2 (Kirsch & Mitzenmacher).
    const uint64_t g = h1 + static_cast<uint64_t>(i) * h2;
    if (layout_ == BloomLayout::kFlatModulo) return g % num_bits_;
    // Fastrange keeps only the HIGH bits of its input, and those step
    // arithmetically across the probe sequence (step = top bits of
    // h2), clustering the probes whenever that step is small. One
    // extra mix decorrelates them and is still far cheaper than the
    // modulo divide it replaces.
    return FastRange(Mix64(g), num_bits_);
  }

  BloomLayout layout_ = BloomLayout::kFlatFastrange;
  size_t expected_items_ = 0;
  size_t num_bits_ = 0;
  int num_hashes_ = 0;
  size_t num_insertions_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace pier

#endif  // PIER_UTIL_BLOOM_FILTER_H_
