// A double-ended, optionally capacity-bounded priority queue backed by
// an interval heap (a min-max heap storing a [min, max] interval per
// node). It supports O(log n) PushBounded / PopMax / PopMin and O(1)
// PeekMax / PeekMin.
//
// This is the data structure behind every CmpIndex variant in the PIER
// algorithms (Sections 4-6 of the paper): the prioritizers repeatedly
// dequeue the *best* (max-priority) comparison while the bound evicts
// the *worst* (min-priority) comparison when the queue overflows, which
// keeps the index memory footprint constant on unbounded streams.

#ifndef PIER_UTIL_BOUNDED_PRIORITY_QUEUE_H_
#define PIER_UTIL_BOUNDED_PRIORITY_QUEUE_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace pier {

// T: element type. Less: strict weak order; the queue pops the
// Less-greatest element first ("max" below always means Less-greatest).
template <typename T, typename Less = std::less<T>>
class BoundedPriorityQueue {
 public:
  static constexpr size_t kUnbounded = std::numeric_limits<size_t>::max();

  explicit BoundedPriorityQueue(size_t capacity = kUnbounded,
                                Less less = Less())
      : capacity_(capacity), less_(std::move(less)) {}

  size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  size_t capacity() const { return capacity_; }
  void Clear() { v_.clear(); }

  // Unconditionally inserts (the queue may exceed no bound here;
  // callers that want bounded behaviour use PushBounded).
  void Push(T x) {
    v_.push_back(std::move(x));
    SiftUp(v_.size() - 1);
  }

  // Inserts respecting the capacity bound: when full, the new element
  // replaces the current minimum if it is strictly greater, otherwise
  // it is rejected. Returns true iff the element was inserted.
  bool PushBounded(T x) {
    if (capacity_ == 0) return false;
    if (v_.size() >= capacity_) {
      if (!less_(PeekMin(), x)) return false;
      // Replace-min: overwrite the minimum and restore the interval
      // invariant with a single downward sift instead of a full
      // PopMin + Push round trip (the fix-up mirrors PopMin's). The
      // queue's pop order is unchanged -- Less is a strict total
      // order, so dequeues depend only on the stored multiset.
      v_[0] = std::move(x);
      if (v_.size() >= 2 && less_(v_[1], v_[0])) std::swap(v_[0], v_[1]);
      SiftDownMin(0);
      return true;
    }
    Push(std::move(x));
    return true;
  }

  const T& PeekMax() const {
    PIER_DCHECK(!v_.empty());
    return v_.size() >= 2 ? v_[1] : v_[0];
  }

  const T& PeekMin() const {
    PIER_DCHECK(!v_.empty());
    return v_[0];
  }

  T PopMax() {
    PIER_DCHECK(!v_.empty());
    if (v_.size() <= 2) {
      T out = std::move(v_.back());
      v_.pop_back();
      return out;
    }
    T out = std::move(v_[1]);
    v_[1] = std::move(v_.back());
    v_.pop_back();
    if (less_(v_[1], v_[0])) std::swap(v_[0], v_[1]);
    SiftDownMax(0);
    return out;
  }

  T PopMin() {
    PIER_DCHECK(!v_.empty());
    if (v_.size() == 1) {
      T out = std::move(v_[0]);
      v_.pop_back();
      return out;
    }
    T out = std::move(v_[0]);
    v_[0] = std::move(v_.back());
    v_.pop_back();
    if (v_.size() >= 2 && less_(v_[1], v_[0])) std::swap(v_[0], v_[1]);
    SiftDownMin(0);
    return out;
  }

  // Read-only view of the underlying storage (heap order, not sorted).
  // Used by tests and by I-PES when it re-seeds its EntityQueue.
  const std::vector<T>& data() const { return v_; }

  // Replaces the storage with `data`, which must be a verbatim copy of
  // a previous data() from a queue with the same capacity and order
  // (snapshot restore). Returns false when `data` exceeds capacity.
  bool RestoreData(std::vector<T> data) {
    if (data.size() > capacity_) return false;
    v_ = std::move(data);
    return true;
  }

 private:
  // Slot i belongs to node i/2; node j spans slots {2j, 2j+1}.
  static size_t NodeOf(size_t slot) { return slot / 2; }
  static size_t ParentNode(size_t node) { return (node - 1) / 2; }

  size_t MaxSlot(size_t node) const {
    const size_t hi = 2 * node + 1;
    return hi < v_.size() ? hi : 2 * node;
  }

  void SiftUp(size_t i) {
    if (i == 0) return;
    if (i % 2 == 1) {
      // Slot i completes node i/2: restore intra-node order first.
      if (less_(v_[i], v_[i - 1])) {
        std::swap(v_[i], v_[i - 1]);
        BubbleUpMin(i - 1);
      } else {
        BubbleUpMax(i);
      }
    } else {
      // New single-element node: compare against the parent interval.
      const size_t p = ParentNode(NodeOf(i));
      if (less_(v_[i], v_[2 * p])) {
        BubbleUpMin(i);
      } else if (less_(v_[2 * p + 1], v_[i])) {
        BubbleUpMax(i);
      }
    }
  }

  void BubbleUpMin(size_t i) {
    while (NodeOf(i) > 0) {
      const size_t p = 2 * ParentNode(NodeOf(i));
      if (less_(v_[i], v_[p])) {
        std::swap(v_[i], v_[p]);
        i = p;
      } else {
        break;
      }
    }
  }

  void BubbleUpMax(size_t i) {
    while (NodeOf(i) > 0) {
      const size_t p = 2 * ParentNode(NodeOf(i)) + 1;
      if (less_(v_[p], v_[i])) {
        std::swap(v_[i], v_[p]);
        i = p;
      } else {
        break;
      }
    }
  }

  void SiftDownMax(size_t node) {
    for (;;) {
      const size_t c1 = 2 * node + 1;
      const size_t c2 = 2 * node + 2;
      size_t best = node;
      if (2 * c1 < v_.size() &&
          less_(v_[MaxSlot(best)], v_[MaxSlot(c1)])) {
        best = c1;
      }
      if (2 * c2 < v_.size() &&
          less_(v_[MaxSlot(best)], v_[MaxSlot(c2)])) {
        best = c2;
      }
      if (best == node) return;
      const size_t m = MaxSlot(best);
      std::swap(v_[m], v_[MaxSlot(node)]);
      if (m % 2 == 1 && less_(v_[m], v_[m - 1])) {
        std::swap(v_[m], v_[m - 1]);
      }
      node = best;
    }
  }

  void SiftDownMin(size_t node) {
    for (;;) {
      const size_t c1 = 2 * node + 1;
      const size_t c2 = 2 * node + 2;
      size_t best = node;
      if (2 * c1 < v_.size() && less_(v_[2 * c1], v_[2 * best])) best = c1;
      if (2 * c2 < v_.size() && less_(v_[2 * c2], v_[2 * best])) best = c2;
      if (best == node) return;
      const size_t m = 2 * best;
      std::swap(v_[m], v_[2 * node]);
      if (m + 1 < v_.size() && less_(v_[m + 1], v_[m])) {
        std::swap(v_[m], v_[m + 1]);
      }
      node = best;
    }
  }

  std::vector<T> v_;
  size_t capacity_;
  Less less_;
};

}  // namespace pier

#endif  // PIER_UTIL_BOUNDED_PRIORITY_QUEUE_H_
