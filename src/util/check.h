// Lightweight assertion macros used across the pier library.
//
// PIER_CHECK is always on (also in release builds) and is meant for
// programmer errors: violated invariants, out-of-contract arguments.
// PIER_DCHECK compiles away in NDEBUG builds and may sit on hot paths.

#ifndef PIER_UTIL_CHECK_H_
#define PIER_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace pier {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "PIER_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace internal
}  // namespace pier

#define PIER_CHECK(expr)                                       \
  do {                                                         \
    if (!(expr)) {                                             \
      ::pier::internal::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                          \
  } while (0)

#ifdef NDEBUG
#define PIER_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define PIER_DCHECK(expr) PIER_CHECK(expr)
#endif

#endif  // PIER_UTIL_CHECK_H_
