#include "util/counting_bloom_filter.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <utility>

#include "util/check.h"
#include "util/hashing.h"
#include "util/serial.h"

namespace pier {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}  // namespace

CountingBloomFilter::CountingBloomFilter(size_t expected_items, double fp_rate)
    : expected_items_(expected_items) {
  PIER_CHECK(expected_items > 0);
  PIER_CHECK(fp_rate > 0.0 && fp_rate < 1.0);
  // Identical sizing to BloomFilter so the memory ratio against the
  // append-only filter is exactly the 2-bit-per-cell factor.
  const double n = static_cast<double>(expected_items);
  const double m = std::ceil(-n * std::log(fp_rate) / (kLn2 * kLn2));
  num_cells_ = static_cast<size_t>(m);
  if (num_cells_ < 64) num_cells_ = 64;
  num_hashes_ = static_cast<int>(
      std::round(static_cast<double>(num_cells_) / n * kLn2));
  if (num_hashes_ < 1) num_hashes_ = 1;
  words_.assign((num_cells_ + 31) / 32, 0);
}

void CountingBloomFilter::Add(uint64_t key) {
  const uint64_t h1 = Mix64(key);
  const uint64_t h2 = Mix64(key ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  for (int i = 0; i < num_hashes_; ++i) {
    const size_t cell = CellIndex(h1, h2, i);
    const uint32_t value = CellValue(cell);
    if (value < 3) SetCellValue(cell, value + 1);
  }
  ++num_insertions_;
}

bool CountingBloomFilter::Remove(uint64_t key) {
  if (!MayContain(key)) return false;
  const uint64_t h1 = Mix64(key);
  const uint64_t h2 = Mix64(key ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  for (int i = 0; i < num_hashes_; ++i) {
    const size_t cell = CellIndex(h1, h2, i);
    const uint32_t value = CellValue(cell);
    // Saturated cells are sticky: we no longer know how many keys map
    // here, so decrementing could create a false negative.
    if (value > 0 && value < 3) SetCellValue(cell, value - 1);
  }
  ++num_removals_;
  return true;
}

bool CountingBloomFilter::MayContain(uint64_t key) const {
  const uint64_t h1 = Mix64(key);
  const uint64_t h2 = Mix64(key ^ 0xa5a5a5a5a5a5a5a5ULL) | 1;
  for (int i = 0; i < num_hashes_; ++i) {
    if (CellValue(CellIndex(h1, h2, i)) == 0) return false;
  }
  return true;
}

bool CountingBloomFilter::UnionFrom(const CountingBloomFilter& other) {
  if (other.expected_items_ != expected_items_ ||
      other.num_cells_ != num_cells_ || other.num_hashes_ != num_hashes_) {
    return false;
  }
  if (&other == this) return true;
  for (size_t cell = 0; cell < num_cells_; ++cell) {
    const uint32_t sum = CellValue(cell) + other.CellValue(cell);
    SetCellValue(cell, sum > 3 ? 3u : sum);
  }
  num_insertions_ =
      std::min(expected_items_, num_insertions_ + other.num_insertions_);
  num_removals_ =
      std::min(num_insertions_, num_removals_ + other.num_removals_);
  return true;
}

void CountingBloomFilter::Snapshot(std::ostream& out) const {
  serial::WriteU64(out, expected_items_);
  serial::WriteU64(out, num_cells_);
  serial::WriteU32(out, static_cast<uint32_t>(num_hashes_));
  serial::WriteU64(out, num_insertions_);
  serial::WriteU64(out, num_removals_);
  serial::WriteVec(out, words_, serial::WriteU64);
}

std::unique_ptr<CountingBloomFilter> CountingBloomFilter::FromSnapshot(
    std::istream& in) {
  auto filter =
      std::unique_ptr<CountingBloomFilter>(new CountingBloomFilter());
  uint64_t expected_items = 0;
  uint64_t num_cells = 0;
  uint32_t num_hashes = 0;
  uint64_t num_insertions = 0;
  uint64_t num_removals = 0;
  if (!serial::ReadU64(in, &expected_items) ||
      !serial::ReadU64(in, &num_cells) || !serial::ReadU32(in, &num_hashes) ||
      !serial::ReadU64(in, &num_insertions) ||
      !serial::ReadU64(in, &num_removals) ||
      !serial::ReadVec(in, &filter->words_, serial::ReadU64)) {
    return nullptr;
  }
  if (expected_items == 0 || num_cells < 64 || num_hashes < 1 ||
      num_hashes > 255 || num_removals > num_insertions ||
      filter->words_.size() != (num_cells + 31) / 32) {
    return nullptr;
  }
  filter->expected_items_ = expected_items;
  filter->num_cells_ = num_cells;
  filter->num_hashes_ = static_cast<int>(num_hashes);
  filter->num_insertions_ = num_insertions;
  filter->num_removals_ = num_removals;
  return filter;
}

ScalableCountingBloomFilter::ScalableCountingBloomFilter(
    const Options& options)
    : options_(options) {
  PIER_CHECK(options_.initial_capacity > 0);
  PIER_CHECK(options_.fp_rate > 0.0 && options_.fp_rate < 1.0);
  PIER_CHECK(options_.growth > 1.0);
  PIER_CHECK(options_.tightening > 0.0 && options_.tightening < 1.0);
  AddSlice();
}

void ScalableCountingBloomFilter::AddSlice() {
  const size_t i = slices_.size();
  const double capacity = static_cast<double>(options_.initial_capacity) *
                          std::pow(options_.growth, static_cast<double>(i));
  const double p0 = options_.fp_rate * (1.0 - options_.tightening);
  const double error =
      p0 * std::pow(options_.tightening, static_cast<double>(i));
  slices_.push_back(std::make_unique<CountingBloomFilter>(
      static_cast<size_t>(capacity), error));
}

void ScalableCountingBloomFilter::Add(uint64_t key) {
  if (slices_.back()->AtCapacity()) AddSlice();
  slices_.back()->Add(key);
  ++num_insertions_;
}

bool ScalableCountingBloomFilter::Remove(uint64_t key) {
  // A key was inserted into exactly one slice (the slice current at
  // insert time), so decrement exactly one: the newest slice that
  // claims the key. Decrementing every claiming slice would let a
  // false-positive hit in a sibling slice clear cells owned by live
  // keys -- a false negative. Picking one slice bounds the damage the
  // safe way: when the pick is itself a false positive (probability
  // bounded by the tightened per-slice error rates), the true slice
  // keeps the key and it merely lingers until the cells decay.
  for (auto it = slices_.rbegin(); it != slices_.rend(); ++it) {
    if ((*it)->Remove(key)) {
      ++num_removals_;
      return true;
    }
  }
  return false;
}

bool ScalableCountingBloomFilter::MayContain(uint64_t key) const {
  for (auto it = slices_.rbegin(); it != slices_.rend(); ++it) {
    if ((*it)->MayContain(key)) return true;
  }
  return false;
}

bool ScalableCountingBloomFilter::TestAndAdd(uint64_t key) {
  if (MayContain(key)) return true;
  Add(key);
  return false;
}

bool ScalableCountingBloomFilter::UnionFrom(
    const ScalableCountingBloomFilter& other) {
  if (other.options_.initial_capacity != options_.initial_capacity ||
      other.options_.fp_rate != options_.fp_rate ||
      other.options_.growth != options_.growth ||
      other.options_.tightening != options_.tightening) {
    return false;
  }
  if (&other == this) return true;
  const size_t shared = std::min(slices_.size(), other.slices_.size());
  for (size_t i = 0; i < shared; ++i) {
    // Equal options make slice i of both sides structurally identical,
    // so the per-slice union cannot fail.
    PIER_CHECK(slices_[i]->UnionFrom(*other.slices_[i]));
  }
  for (size_t i = shared; i < other.slices_.size(); ++i) {
    slices_.push_back(
        std::make_unique<CountingBloomFilter>(*other.slices_[i]));
  }
  // Recompute the totals from the (saturated) per-slice counts; each
  // slice keeps removals <= insertions, so the sums do too and the
  // Restore invariants hold.
  num_insertions_ = 0;
  num_removals_ = 0;
  for (const auto& slice : slices_) {
    num_insertions_ += slice->num_insertions();
    num_removals_ += slice->num_removals();
  }
  return true;
}

size_t ScalableCountingBloomFilter::MemoryBytes() const {
  size_t total = 0;
  for (const auto& slice : slices_) total += slice->MemoryBytes();
  return total;
}

size_t ScalableCountingBloomFilter::ApproxMemoryBytes() const {
  return MemoryBytes() +
         slices_.capacity() * sizeof(std::unique_ptr<CountingBloomFilter>) +
         slices_.size() * sizeof(CountingBloomFilter);
}

void ScalableCountingBloomFilter::Snapshot(std::ostream& out) const {
  serial::WriteU64(out, options_.initial_capacity);
  serial::WriteF64(out, options_.fp_rate);
  serial::WriteF64(out, options_.growth);
  serial::WriteF64(out, options_.tightening);
  serial::WriteU64(out, num_insertions_);
  serial::WriteU64(out, num_removals_);
  serial::WriteU64(out, slices_.size());
  for (const auto& slice : slices_) slice->Snapshot(out);
}

bool ScalableCountingBloomFilter::Restore(std::istream& in) {
  Options options;
  uint64_t initial_capacity = 0;
  uint64_t num_insertions = 0;
  uint64_t num_removals = 0;
  uint64_t num_slices = 0;
  if (!serial::ReadU64(in, &initial_capacity) ||
      !serial::ReadF64(in, &options.fp_rate) ||
      !serial::ReadF64(in, &options.growth) ||
      !serial::ReadF64(in, &options.tightening) ||
      !serial::ReadU64(in, &num_insertions) ||
      !serial::ReadU64(in, &num_removals) ||
      !serial::ReadU64(in, &num_slices)) {
    return false;
  }
  options.initial_capacity = initial_capacity;
  if (options.initial_capacity == 0 || !(options.fp_rate > 0.0) ||
      !(options.fp_rate < 1.0) || !(options.growth > 1.0) ||
      !(options.tightening > 0.0) || !(options.tightening < 1.0) ||
      num_slices == 0 || num_slices > 64 || num_removals > num_insertions) {
    return false;
  }
  std::vector<std::unique_ptr<CountingBloomFilter>> slices;
  slices.reserve(num_slices);
  uint64_t slice_insertions = 0;
  for (uint64_t i = 0; i < num_slices; ++i) {
    auto slice = CountingBloomFilter::FromSnapshot(in);
    if (slice == nullptr) return false;
    // Mirror AddSlice + the constructor's sizing, evaluated
    // arithmetically so a hostile snapshot cannot force a huge
    // reference allocation (same scheme as ScalableBloomFilter).
    const double capacity = static_cast<double>(options.initial_capacity) *
                            std::pow(options.growth, static_cast<double>(i));
    const double p0 = options.fp_rate * (1.0 - options.tightening);
    const double error =
        p0 * std::pow(options.tightening, static_cast<double>(i));
    if (!(error > 0.0) || !(error < 1.0)) return false;
    if (!(capacity >= 1.0) || capacity > 1e18) return false;
    const size_t cap = static_cast<size_t>(capacity);
    const double n = static_cast<double>(cap);
    const double m = std::ceil(-n * std::log(error) / (kLn2 * kLn2));
    if (!(m >= 0.0) || m > 1e18) return false;
    size_t expect_cells = static_cast<size_t>(m);
    if (expect_cells < 64) expect_cells = 64;
    int expect_hashes = static_cast<int>(
        std::round(static_cast<double>(expect_cells) / n * kLn2));
    if (expect_hashes < 1) expect_hashes = 1;
    if (slice->expected_items() != cap || slice->num_cells() != expect_cells ||
        slice->num_hashes() != expect_hashes) {
      return false;
    }
    // A new slice only ever grows once the previous one reached its
    // design capacity, and insertions land in the newest slice.
    if (i + 1 < num_slices) {
      if (slice->num_insertions() != slice->expected_items()) return false;
    } else if (slice->num_insertions() > slice->expected_items()) {
      return false;
    }
    slice_insertions += slice->num_insertions();
    slices.push_back(std::move(slice));
  }
  if (slice_insertions != num_insertions) return false;
  options_ = options;
  num_insertions_ = num_insertions;
  num_removals_ = num_removals;
  slices_ = std::move(slices);
  return true;
}

}  // namespace pier
