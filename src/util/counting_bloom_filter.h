// Deletable set membership for mutable streams: a scalable Bloom
// filter (same slice-growth / error-tightening schedule as
// scalable_bloom_filter.h) whose slices store 2-bit saturating
// counters instead of single bits, so keys can be removed again.
//
// The PIER pipeline uses this as the executed-comparison filter when
// `mutable_stream` is on: deleting a record must forget the
// comparisons it participated in, otherwise a corrected record that is
// re-ingested would have its comparisons suppressed forever and the
// delete-then-replay oracle would diverge.
//
// Counter layout: 2 bits per cell (32 cells per uint64_t word), cell
// count and hash count derived exactly like BloomFilter derives them
// from (expected_items, fp_rate). A counter that reaches 3 saturates
// and becomes sticky: it is never decremented again, which preserves
// the no-false-negatives guarantee for keys still present at the cost
// of the filter slowly densifying under heavy churn (the fraction of
// cells reaching 3 is small at design load). Removing a key that was
// never added can clear cells shared with live keys — the standard
// counting-filter caveat — so callers must pair each Remove with a
// prior Add (the pipeline guarantees this via its executed-pair
// registry).

#ifndef PIER_UTIL_COUNTING_BLOOM_FILTER_H_
#define PIER_UTIL_COUNTING_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

namespace pier {

class CountingBloomFilter {
 public:
  // Sizes the filter for `expected_items` insertions at false-positive
  // probability `fp_rate`, with the same cell/hash counts a
  // BloomFilter of identical parameters would use.
  CountingBloomFilter(size_t expected_items, double fp_rate);

  void Add(uint64_t key);

  // Decrements the key's cells (skipping saturated ones). Returns
  // false without touching any cell when the key is definitely absent.
  bool Remove(uint64_t key);

  bool MayContain(uint64_t key) const;

  size_t num_insertions() const { return num_insertions_; }
  size_t num_removals() const { return num_removals_; }
  size_t expected_items() const { return expected_items_; }
  // Capacity is gross insertions: removals do not reliably free cells
  // (saturated counters stick), so reusing freed capacity would let
  // the realized error rate drift above design.
  bool AtCapacity() const { return num_insertions_ >= expected_items_; }

  size_t num_cells() const { return num_cells_; }
  int num_hashes() const { return num_hashes_; }

  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  void Snapshot(std::ostream& out) const;

  // Null on decode failure or any field inconsistent with what the
  // constructor would have produced.
  static std::unique_ptr<CountingBloomFilter> FromSnapshot(std::istream& in);

  // Folds another filter of identical sizing into this one by
  // saturating per-cell addition (min(3, a + b)), so every key live on
  // either side stays MayContain() here. Cells that saturate become
  // sticky, per the filter's contract. Insertion/removal bookkeeping
  // saturates the same way counts do (insertions at expected_items(),
  // removals at the new insertion count), keeping a slice sequence
  // Restore-consistent. Returns false, leaving this filter untouched,
  // when the sizing parameters differ.
  bool UnionFrom(const CountingBloomFilter& other);

 private:
  CountingBloomFilter() = default;  // for FromSnapshot

  size_t CellIndex(uint64_t h1, uint64_t h2, int i) const {
    return (h1 + static_cast<uint64_t>(i) * h2) % num_cells_;
  }
  uint32_t CellValue(size_t cell) const {
    return static_cast<uint32_t>(words_[cell >> 5] >> ((cell & 31) * 2)) & 3u;
  }
  void SetCellValue(size_t cell, uint32_t value) {
    const size_t shift = (cell & 31) * 2;
    words_[cell >> 5] =
        (words_[cell >> 5] & ~(uint64_t{3} << shift)) |
        (static_cast<uint64_t>(value) << shift);
  }

  size_t expected_items_ = 0;
  size_t num_cells_ = 0;
  int num_hashes_ = 0;
  size_t num_insertions_ = 0;
  size_t num_removals_ = 0;
  std::vector<uint64_t> words_;
};

// Scalable wrapper mirroring ScalableBloomFilter's growth schedule and
// Snapshot/Restore framing, plus Remove.
class ScalableCountingBloomFilter {
 public:
  struct Options {
    size_t initial_capacity = 4096;
    double fp_rate = 0.01;
    double growth = 2.0;
    double tightening = 0.9;
  };

  ScalableCountingBloomFilter() : ScalableCountingBloomFilter(Options()) {}
  explicit ScalableCountingBloomFilter(const Options& options);

  void Add(uint64_t key);

  // Removes the key from the newest slice that may contain it (a key
  // lives in exactly one slice, and newer slices hold most keys).
  // When the picked slice is a false-positive hit the true slice keeps
  // the key -- it lingers, the safe direction -- at the cost of a few
  // collateral cell decrements, with probability bounded by the
  // tightened per-slice error rates. Returns true if a slice was
  // decremented.
  bool Remove(uint64_t key);

  bool MayContain(uint64_t key) const;

  // Returns true if the key was (possibly) already present; otherwise
  // inserts it and returns false.
  bool TestAndAdd(uint64_t key);

  size_t num_slices() const { return slices_.size(); }
  size_t num_insertions() const { return num_insertions_; }
  size_t num_removals() const { return num_removals_; }
  size_t MemoryBytes() const;
  size_t ApproxMemoryBytes() const;

  void Snapshot(std::ostream& out) const;

  // Restores a Snapshot payload, validating options and every slice's
  // sizing/insertion bookkeeping against what the growth schedule
  // would have produced. Returns false on any failure.
  bool Restore(std::istream& in);

  // Counting analogue of ScalableBloomFilter::UnionFrom: requires
  // identical Options, unions shared slices cell-wise (saturating) and
  // deep-copies `other`'s extra slices. Returns false without
  // modifying anything on an options mismatch.
  bool UnionFrom(const ScalableCountingBloomFilter& other);

 private:
  void AddSlice();

  Options options_;
  std::vector<std::unique_ptr<CountingBloomFilter>> slices_;
  size_t num_insertions_ = 0;
  size_t num_removals_ = 0;
};

}  // namespace pier

#endif  // PIER_UTIL_COUNTING_BLOOM_FILTER_H_
