#include "util/csv_writer.h"

namespace pier {

std::string CsvWriter::Escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) out_ << ',';
    out_ << Escape(f);
    first = false;
  }
  out_ << '\n';
  ++rows_written_;
}

void CsvWriter::WriteRow(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (const auto f : fields) {
    if (!first) out_ << ',';
    out_ << Escape(f);
    first = false;
  }
  out_ << '\n';
  ++rows_written_;
}

}  // namespace pier
