// Minimal CSV emission for the benchmark harnesses: every figure
// reproduction prints its curve series as CSV rows so they can be fed
// to any plotting tool.

#ifndef PIER_UTIL_CSV_WRITER_H_
#define PIER_UTIL_CSV_WRITER_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pier {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  // Writes one row; fields containing separators, quotes, or newlines
  // are quoted per RFC 4180.
  void WriteRow(const std::vector<std::string>& fields);
  void WriteRow(std::initializer_list<std::string_view> fields);

  size_t rows_written() const { return rows_written_; }

  static std::string Escape(std::string_view field);

 private:
  std::ostream& out_;
  size_t rows_written_ = 0;
};

}  // namespace pier

#endif  // PIER_UTIL_CSV_WRITER_H_
