// 64-bit hashing utilities shared by Bloom filters, token dictionaries,
// and comparison filters.

#ifndef PIER_UTIL_HASHING_H_
#define PIER_UTIL_HASHING_H_

#include <cstdint>
#include <string_view>

namespace pier {

// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Combines two hash values (boost-style, 64 bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (Mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

// Packs an unordered pair of 32-bit ids into a canonical 64-bit key
// with the smaller id in the high half, so (a, b) and (b, a) map to
// the same key.
inline uint64_t PairKey(uint32_t a, uint32_t b) {
  const uint32_t lo = a < b ? a : b;
  const uint32_t hi = a < b ? b : a;
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

// FNV-1a 64-bit string hash; deterministic across platforms and runs
// (unlike std::hash<std::string_view>, which libstdc++ seeds per
// process for some configurations).
inline uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace pier

#endif  // PIER_UTIL_HASHING_H_
