// Rate/latency estimators used by the adaptive findK() controller
// (Algorithm 1): the paper computes "the input and processing rates as
// the average of their latest measurements", which we implement as a
// fixed-size sliding-window mean, plus an exponential moving average
// variant for smoother control.

#ifndef PIER_UTIL_MOVING_AVERAGE_H_
#define PIER_UTIL_MOVING_AVERAGE_H_

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/serial.h"

namespace pier {

// Exponential moving average: value <- alpha * x + (1 - alpha) * value.
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {
    PIER_CHECK(alpha > 0.0 && alpha <= 1.0);
  }

  void Add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Mean over the latest `window` samples (ring buffer).
class WindowAverage {
 public:
  explicit WindowAverage(size_t window) : window_(window) {
    PIER_CHECK(window > 0);
    buf_.reserve(window);
  }

  void Add(double x) {
    if (buf_.size() < window_) {
      buf_.push_back(x);
      sum_ += x;
    } else {
      sum_ += x - buf_[next_];
      buf_[next_] = x;
    }
    next_ = (next_ + 1) % window_;
    // The running update `sum_ += x - old` accumulates rounding error
    // without bound on long streams (a large sample passing through
    // the window leaves an O(ulp(large)) residue behind), which can
    // destabilize consumers like AdaptiveK::FindK. Resumming the
    // buffer once per ring wrap caps the error at a single window's
    // summation error while keeping Add O(1) amortized.
    if (next_ == 0 && buf_.size() == window_) {
      double exact = 0.0;
      for (const double v : buf_) exact += v;
      sum_ = exact;
    }
  }

  size_t count() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }

  double Mean() const {
    PIER_DCHECK(!buf_.empty());
    return sum_ / static_cast<double>(buf_.size());
  }

  // Serializes the ring buffer and the running sum. The sum is stored
  // as raw bits rather than recomputed on restore: the incremental
  // `sum_ += x - old` drifts from an exact resum, and recovery
  // equivalence needs the restored estimator to produce bit-identical
  // means.
  void Snapshot(std::ostream& out) const {
    serial::WriteU64(out, window_);
    serial::WriteU64(out, next_);
    serial::WriteF64(out, sum_);
    serial::WriteVec(out, buf_, serial::WriteF64);
  }

  // Restores a Snapshot payload; the recorded window must match this
  // estimator's window. Returns false on decode failure or
  // inconsistent fields.
  bool Restore(std::istream& in) {
    uint64_t window = 0;
    uint64_t next = 0;
    double sum = 0.0;
    std::vector<double> buf;
    if (!serial::ReadU64(in, &window) || !serial::ReadU64(in, &next) ||
        !serial::ReadF64(in, &sum) ||
        !serial::ReadVec(in, &buf, serial::ReadF64)) {
      return false;
    }
    if (window != window_ || buf.size() > window_ || next >= window_) {
      return false;
    }
    buf_ = std::move(buf);
    next_ = next;
    sum_ = sum;
    return true;
  }

 private:
  size_t window_;
  std::vector<double> buf_;
  size_t next_ = 0;
  double sum_ = 0.0;
};

}  // namespace pier

#endif  // PIER_UTIL_MOVING_AVERAGE_H_
