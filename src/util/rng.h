// Deterministic, seedable random number generation for the synthetic
// dataset generators and property tests.
//
// We deliberately avoid std::mt19937 + std::uniform_int_distribution:
// their outputs are not guaranteed to be identical across standard
// library implementations, and reproducible datasets are part of this
// project's contract.

#ifndef PIER_UTIL_RNG_H_
#define PIER_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace pier {

// xoshiro256**: fast, high-quality 64-bit PRNG with a SplitMix64 seeder.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the full state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  uint64_t UniformInt(uint64_t lo, uint64_t hi) {
    PIER_DCHECK(lo <= hi);
    const uint64_t range = hi - lo + 1;
    if (range == 0) return NextU64();  // full 64-bit range
    // Lemire's multiply-shift rejection method.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < range) {
      const uint64_t threshold = (0 - range) % range;
      while (l < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * range;
        l = static_cast<uint64_t>(m);
      }
    }
    return lo + static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Checkpoint support: the full 256-bit state, so a restored stream
  // continues the exact draw sequence (see src/frontier/sper_sk.cc).
  void SaveState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  void LoadState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

  // Approximate standard normal via the polar Box-Muller transform.
  double Gaussian(double mean, double stddev) {
    double u;
    double v;
    double s;
    do {
      u = 2.0 * UniformDouble() - 1.0;
      v = 2.0 * UniformDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
};

// Zipf-distributed sampler over {0, ..., n-1} with exponent `alpha`.
// Sampling is done by binary search over a precomputed CDF; suitable
// for the vocabulary sizes used by the dataset generators (<= ~1e6).
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double alpha) : cdf_(n) {
    PIER_CHECK(n > 0);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
      cdf_[i] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  size_t Sample(Rng& rng) const {
    const double u = rng.UniformDouble();
    // Binary search for the first CDF entry >= u.
    size_t lo = 0;
    size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace pier

#endif  // PIER_UTIL_RNG_H_
