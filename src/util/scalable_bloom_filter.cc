#include "util/scalable_bloom_filter.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <utility>

#include "util/check.h"
#include "util/serial.h"

namespace pier {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}  // namespace

ScalableBloomFilter::ScalableBloomFilter(const Options& options)
    : options_(options) {
  PIER_CHECK(options_.initial_capacity > 0);
  PIER_CHECK(options_.fp_rate > 0.0 && options_.fp_rate < 1.0);
  PIER_CHECK(options_.growth > 1.0);
  PIER_CHECK(options_.tightening > 0.0 && options_.tightening < 1.0);
  AddSlice();
}

void ScalableBloomFilter::AddSlice() {
  const size_t i = slices_.size();
  const double capacity = static_cast<double>(options_.initial_capacity) *
                          std::pow(options_.growth, static_cast<double>(i));
  const double p0 = options_.fp_rate * (1.0 - options_.tightening);
  const double error =
      p0 * std::pow(options_.tightening, static_cast<double>(i));
  slices_.push_back(std::make_unique<BloomFilter>(
      static_cast<size_t>(capacity), error, options_.layout));
}

void ScalableBloomFilter::Add(uint64_t key) {
  if (slices_.back()->AtCapacity()) AddSlice();
  slices_.back()->Add(key);
  ++num_insertions_;
}

bool ScalableBloomFilter::MayContain(uint64_t key) const {
  for (auto it = slices_.rbegin(); it != slices_.rend(); ++it) {
    if ((*it)->MayContain(key)) return true;
  }
  return false;
}

bool ScalableBloomFilter::TestAndAdd(uint64_t key) {
  if (MayContain(key)) return true;
  Add(key);
  return false;
}

bool ScalableBloomFilter::UnionFrom(const ScalableBloomFilter& other) {
  if (other.options_.initial_capacity != options_.initial_capacity ||
      other.options_.fp_rate != options_.fp_rate ||
      other.options_.growth != options_.growth ||
      other.options_.tightening != options_.tightening ||
      other.options_.layout != options_.layout) {
    return false;
  }
  if (&other == this) return true;
  const size_t shared = std::min(slices_.size(), other.slices_.size());
  for (size_t i = 0; i < shared; ++i) {
    // Equal options make slice i of both sides structurally identical,
    // so the per-slice union cannot fail.
    PIER_CHECK(slices_[i]->UnionFrom(*other.slices_[i]));
  }
  for (size_t i = shared; i < other.slices_.size(); ++i) {
    slices_.push_back(std::make_unique<BloomFilter>(*other.slices_[i]));
  }
  // Saturating per-slice counts keep the Restore invariant (every
  // non-final slice exactly full): whenever slice i is non-final on
  // the longer side, its union saturates at the slice capacity.
  num_insertions_ = 0;
  for (const auto& slice : slices_) num_insertions_ += slice->num_insertions();
  return true;
}

size_t ScalableBloomFilter::MemoryBytes() const {
  size_t total = 0;
  for (const auto& slice : slices_) total += slice->MemoryBytes();
  return total;
}

size_t ScalableBloomFilter::ApproxMemoryBytes() const {
  return MemoryBytes() +
         slices_.capacity() * sizeof(std::unique_ptr<BloomFilter>) +
         slices_.size() * sizeof(BloomFilter);
}

void ScalableBloomFilter::Snapshot(std::ostream& out) const {
  if (options_.layout != BloomLayout::kFlatModulo) {
    // Sentinel-prefixed format (see bloom_filter.h): a zero u64 --
    // impossible as the legacy leading initial_capacity field -- then
    // the layout byte. kFlatModulo keeps the legacy byte stream so a
    // snapshot restored from the pre-flag era re-snapshots to
    // identical bytes.
    serial::WriteU64(out, 0);
    serial::WriteU8(out, static_cast<uint8_t>(options_.layout));
  }
  serial::WriteU64(out, options_.initial_capacity);
  serial::WriteF64(out, options_.fp_rate);
  serial::WriteF64(out, options_.growth);
  serial::WriteF64(out, options_.tightening);
  serial::WriteU64(out, num_insertions_);
  serial::WriteU64(out, slices_.size());
  for (const auto& slice : slices_) slice->Snapshot(out);
}

bool ScalableBloomFilter::Restore(std::istream& in) {
  Options options;
  uint64_t initial_capacity = 0;
  uint64_t num_insertions = 0;
  uint64_t num_slices = 0;
  if (!serial::ReadU64(in, &initial_capacity)) return false;
  if (initial_capacity == 0) {
    // Sentinel-prefixed format: layout byte, then the regular fields.
    uint8_t layout = 0;
    if (!serial::ReadU8(in, &layout) ||
        layout > static_cast<uint8_t>(BloomLayout::kBlocked512) ||
        !serial::ReadU64(in, &initial_capacity)) {
      return false;
    }
    options.layout = static_cast<BloomLayout>(layout);
  } else {
    // Legacy payload: every slice was written with the modulo mapping.
    options.layout = BloomLayout::kFlatModulo;
  }
  if (!serial::ReadF64(in, &options.fp_rate) ||
      !serial::ReadF64(in, &options.growth) ||
      !serial::ReadF64(in, &options.tightening) ||
      !serial::ReadU64(in, &num_insertions) ||
      !serial::ReadU64(in, &num_slices)) {
    return false;
  }
  options.initial_capacity = initial_capacity;
  // Mirror the constructor's PIER_CHECKs, but reject instead of abort:
  // a corrupt snapshot must never take the process down.
  if (options.initial_capacity == 0 || !(options.fp_rate > 0.0) ||
      !(options.fp_rate < 1.0) || !(options.growth > 1.0) ||
      !(options.tightening > 0.0) || !(options.tightening < 1.0) ||
      num_slices == 0 || num_slices > 64) {
    return false;
  }
  std::vector<std::unique_ptr<BloomFilter>> slices;
  slices.reserve(num_slices);
  uint64_t slice_insertions = 0;
  for (uint64_t i = 0; i < num_slices; ++i) {
    auto slice = BloomFilter::FromSnapshot(in);
    if (slice == nullptr) return false;
    // Mirror AddSlice + the BloomFilter constructor: slice i must be
    // sized exactly as the growth schedule would have sized it,
    // otherwise the snapshot was not produced by this implementation.
    // Evaluated arithmetically (no reference filter is constructed) so
    // a hostile snapshot cannot force a huge allocation here; bounds
    // on the doubles keep the casts below defined.
    const double capacity = static_cast<double>(options.initial_capacity) *
                            std::pow(options.growth, static_cast<double>(i));
    const double p0 = options.fp_rate * (1.0 - options.tightening);
    const double error =
        p0 * std::pow(options.tightening, static_cast<double>(i));
    if (!(error > 0.0) || !(error < 1.0)) return false;
    if (!(capacity >= 1.0) || capacity > 1e18) return false;
    const size_t cap = static_cast<size_t>(capacity);
    const double n = static_cast<double>(cap);
    const double m = std::ceil(-n * std::log(error) / (kLn2 * kLn2));
    if (!(m >= 0.0) || m > 1e18) return false;
    size_t expect_bits = 0;
    int expect_hashes = 0;
    BloomFilter::ExpectedSizing(cap, error, options.layout, &expect_bits,
                                &expect_hashes);
    if (slice->layout() != options.layout || slice->expected_items() != cap ||
        slice->num_bits() != expect_bits ||
        slice->num_hashes() != expect_hashes) {
      return false;
    }
    // Add() only grows a new slice once the current one reached its
    // design capacity, so every non-final slice holds exactly its
    // expected_items insertions and the final slice at most that.
    if (i + 1 < num_slices) {
      if (slice->num_insertions() != slice->expected_items()) return false;
    } else if (slice->num_insertions() > slice->expected_items()) {
      return false;
    }
    slice_insertions += slice->num_insertions();
    slices.push_back(std::move(slice));
  }
  if (slice_insertions != num_insertions) return false;
  options_ = options;
  num_insertions_ = num_insertions;
  slices_ = std::move(slices);
  return true;
}

}  // namespace pier
