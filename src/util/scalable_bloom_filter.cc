#include "util/scalable_bloom_filter.h"

#include <cmath>

#include "util/check.h"

namespace pier {

ScalableBloomFilter::ScalableBloomFilter(const Options& options)
    : options_(options) {
  PIER_CHECK(options_.initial_capacity > 0);
  PIER_CHECK(options_.fp_rate > 0.0 && options_.fp_rate < 1.0);
  PIER_CHECK(options_.growth > 1.0);
  PIER_CHECK(options_.tightening > 0.0 && options_.tightening < 1.0);
  AddSlice();
}

void ScalableBloomFilter::AddSlice() {
  const size_t i = slices_.size();
  const double capacity = static_cast<double>(options_.initial_capacity) *
                          std::pow(options_.growth, static_cast<double>(i));
  const double p0 = options_.fp_rate * (1.0 - options_.tightening);
  const double error =
      p0 * std::pow(options_.tightening, static_cast<double>(i));
  slices_.push_back(
      std::make_unique<BloomFilter>(static_cast<size_t>(capacity), error));
}

void ScalableBloomFilter::Add(uint64_t key) {
  if (slices_.back()->AtCapacity()) AddSlice();
  slices_.back()->Add(key);
  ++num_insertions_;
}

bool ScalableBloomFilter::MayContain(uint64_t key) const {
  for (auto it = slices_.rbegin(); it != slices_.rend(); ++it) {
    if ((*it)->MayContain(key)) return true;
  }
  return false;
}

bool ScalableBloomFilter::TestAndAdd(uint64_t key) {
  if (MayContain(key)) return true;
  Add(key);
  return false;
}

size_t ScalableBloomFilter::MemoryBytes() const {
  size_t total = 0;
  for (const auto& slice : slices_) total += slice->MemoryBytes();
  return total;
}

}  // namespace pier
