// Scalable Bloom filter (Almeida et al., 2007): a sequence of plain
// Bloom filters with geometrically growing capacity and geometrically
// tightening error probability, so the compound false-positive rate
// stays bounded no matter how many keys are inserted.
//
// The PIER framework uses it as the comparison filter CF of I-PBS
// (Algorithm 3) and as the pipeline-level executed-comparison filter:
// on an unbounded stream the set of executed comparisons grows without
// limit, so an exact hash set would exhaust memory while this filter
// keeps a small, bounded-error footprint.

#ifndef PIER_UTIL_SCALABLE_BLOOM_FILTER_H_
#define PIER_UTIL_SCALABLE_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "util/bloom_filter.h"

namespace pier {

class ScalableBloomFilter {
 public:
  struct Options {
    // Capacity of the first slice.
    size_t initial_capacity = 4096;
    // Compound false-positive probability target.
    double fp_rate = 0.01;
    // Capacity growth factor between consecutive slices.
    double growth = 2.0;
    // Error-tightening ratio r: slice i gets error p0 * r^i with
    // p0 = fp_rate * (1 - r).
    double tightening = 0.9;
    // Bit layout of every slice. The cache-line-blocked layout is the
    // default: at paper scale the executed-comparison filter is probed
    // once per emitted comparison, and one cache line per probe beats
    // k scattered lines (see bloom_filter.h for the FP-rate trade).
    // Snapshots taken before this flag existed restore as kFlatModulo.
    BloomLayout layout = BloomLayout::kBlocked512;
  };

  ScalableBloomFilter() : ScalableBloomFilter(Options()) {}
  explicit ScalableBloomFilter(const Options& options);

  // Adds a key (always to the most recent slice, growing a new slice
  // when the current one reaches its design capacity).
  void Add(uint64_t key);

  // True if the key may have been added (checks newest slice first,
  // as recent keys are the most frequently re-queried in streaming
  // deduplication workloads).
  bool MayContain(uint64_t key) const;

  // Convenience: returns false and inserts if the key was (probably)
  // absent; returns true if it was (possibly) already present.
  // This mirrors the typical "have we executed this comparison?"
  // check-then-mark usage.
  bool TestAndAdd(uint64_t key);

  size_t num_slices() const { return slices_.size(); }
  size_t num_insertions() const { return num_insertions_; }
  size_t MemoryBytes() const;

  // Heap footprint estimate: slice bit arrays plus the slice vector
  // itself (exported as a persist.state_bytes gauge).
  size_t ApproxMemoryBytes() const;

  // Serializes options, insertion count, and every slice.
  void Snapshot(std::ostream& out) const;

  // Replaces this filter's entire state from a Snapshot payload
  // (including the options, which are validated against the
  // constructor's ranges). Returns false on any decode failure,
  // leaving the filter in an unspecified-but-valid state.
  bool Restore(std::istream& in);

  // Folds `other` into this filter so every key added to either side
  // is MayContain() here -- how a combiner consolidates the per-shard
  // executed-comparison filters after a shard merge. Both filters must
  // share identical Options (equal options make slice i of both sides
  // structurally identical, since sizing is a pure function of the
  // growth schedule); returns false without modifying anything
  // otherwise. Extra slices of `other` are deep-copied; per-slice
  // insertion counts saturate (see BloomFilter::UnionFrom), so the
  // result stays Snapshot/Restore round-trippable.
  bool UnionFrom(const ScalableBloomFilter& other);

 private:
  void AddSlice();

  Options options_;
  std::vector<std::unique_ptr<BloomFilter>> slices_;
  size_t num_insertions_ = 0;
};

}  // namespace pier

#endif  // PIER_UTIL_SCALABLE_BLOOM_FILTER_H_
