// Little-endian binary serialization primitives shared by every
// component's Snapshot()/Restore() implementation (the persist
// subsystem, see src/persist/snapshot.h for the framing around these
// payloads). All integers are fixed-width little-endian regardless of
// host byte order; doubles are serialized as their raw IEEE-754 bit
// pattern so restored floating-point state is bit-identical -- the
// foundation of the recovery-equivalence contract (a restored run must
// reproduce the uninterrupted run's virtual clock exactly).
//
// Readers return false on a short or failed stream and never trust a
// length field with an unbounded allocation: strings and vectors grow
// in bounded steps, so a corrupted length fails on stream exhaustion
// instead of attempting a multi-gigabyte resize.

#ifndef PIER_UTIL_SERIAL_H_
#define PIER_UTIL_SERIAL_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pier {
namespace serial {

inline void WriteU8(std::ostream& out, uint8_t v) {
  out.put(static_cast<char>(v));
}

inline void WriteU16(std::ostream& out, uint16_t v) {
  char b[2];
  for (int i = 0; i < 2; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 2);
}

inline void WriteU32(std::ostream& out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 4);
}

inline void WriteU64(std::ostream& out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 8);
}

inline void WriteF64(std::ostream& out, double v) {
  WriteU64(out, std::bit_cast<uint64_t>(v));
}

inline void WriteBool(std::ostream& out, bool v) {
  WriteU8(out, v ? 1 : 0);
}

inline void WriteString(std::ostream& out, std::string_view s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline bool ReadU8(std::istream& in, uint8_t* v) {
  char c;
  if (!in.get(c)) return false;
  *v = static_cast<uint8_t>(c);
  return true;
}

inline bool ReadU16(std::istream& in, uint16_t* v) {
  char b[2];
  if (!in.read(b, 2)) return false;
  *v = 0;
  for (int i = 0; i < 2; ++i) {
    *v |= static_cast<uint16_t>(static_cast<uint8_t>(b[i])) << (8 * i);
  }
  return true;
}

inline bool ReadU32(std::istream& in, uint32_t* v) {
  char b[4];
  if (!in.read(b, 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(b[i])) << (8 * i);
  }
  return true;
}

inline bool ReadU64(std::istream& in, uint64_t* v) {
  char b[8];
  if (!in.read(b, 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(b[i])) << (8 * i);
  }
  return true;
}

inline bool ReadF64(std::istream& in, double* v) {
  uint64_t bits = 0;
  if (!ReadU64(in, &bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

inline bool ReadBool(std::istream& in, bool* v) {
  uint8_t b = 0;
  if (!ReadU8(in, &b) || b > 1) return false;
  *v = (b != 0);
  return true;
}

inline bool ReadString(std::istream& in, std::string* out) {
  uint64_t n = 0;
  if (!ReadU64(in, &n)) return false;
  out->clear();
  constexpr uint64_t kStep = uint64_t{1} << 20;
  while (n > 0) {
    const size_t take = static_cast<size_t>(n < kStep ? n : kStep);
    const size_t old = out->size();
    out->resize(old + take);
    if (!in.read(out->data() + old, static_cast<std::streamsize>(take))) {
      out->clear();
      return false;
    }
    n -= take;
  }
  return true;
}

// Vectors: u64 count followed by the elements, each written/read by
// `fn` (fn(out, elem) / fn(in, &elem) -> bool).
template <typename T, typename WriteFn>
void WriteVec(std::ostream& out, const std::vector<T>& v, WriteFn fn) {
  WriteU64(out, v.size());
  for (const T& x : v) fn(out, x);
}

template <typename T, typename ReadFn>
bool ReadVec(std::istream& in, std::vector<T>* v, ReadFn fn) {
  uint64_t n = 0;
  if (!ReadU64(in, &n)) return false;
  v->clear();
  constexpr uint64_t kReserveCap = uint64_t{1} << 20;
  v->reserve(static_cast<size_t>(n < kReserveCap ? n : kReserveCap));
  for (uint64_t i = 0; i < n; ++i) {
    T x{};
    if (!fn(in, &x)) {
      v->clear();
      return false;
    }
    v->push_back(std::move(x));
  }
  return true;
}

}  // namespace serial
}  // namespace pier

#endif  // PIER_UTIL_SERIAL_H_
