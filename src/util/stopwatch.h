// Wall-clock stopwatch over std::chrono::steady_clock, used by the
// MeasuredCostMeter to attribute real compute cost to pipeline stages.

#ifndef PIER_UTIL_STOPWATCH_H_
#define PIER_UTIL_STOPWATCH_H_

#include <chrono>

namespace pier {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pier

#endif  // PIER_UTIL_STOPWATCH_H_
