#include "util/thread_pool.h"

#include <utility>

#include "util/check.h"

namespace pier {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> result = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PIER_CHECK(!stop_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return result;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace pier
