// Fixed-size worker pool for the parallel match-execution engine.
// Tasks are arbitrary callables submitted from any thread; Submit
// returns a std::future<void> that completes when the task finishes
// and rethrows any exception the task escaped with.
//
// Shutdown semantics: the destructor stops accepting new work, lets
// the workers *drain every task already queued*, then joins. Futures
// obtained before destruction therefore always become ready.

#ifndef PIER_UTIL_THREAD_POOL_H_
#define PIER_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pier {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  // Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Enqueues `fn` for execution on some worker. Thread-safe. The
  // returned future completes when the task has run; if the task
  // throws, future.get() rethrows the exception.
  std::future<void> Submit(std::function<void()> fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace pier

#endif  // PIER_UTIL_THREAD_POOL_H_
