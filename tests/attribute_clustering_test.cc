// Tests for attribute-clustering blocking: semantically corresponding
// attribute names across heterogeneous sources end up in the same
// cluster, unrelated names do not, and qualified tokens split blocks
// accordingly.

#include <gtest/gtest.h>

#include "blocking/attribute_clustering.h"
#include "datagen/generators.h"

namespace pier {
namespace {

std::vector<EntityProfile> TwoSourceSample() {
  // Source 0 uses {title, year}; source 1 uses {name, released}. The
  // title/name vocabularies overlap heavily, as do year/released;
  // titles and years share nothing.
  std::vector<EntityProfile> sample;
  const char* titles[] = {"deep blue ocean", "silent forest dawn",
                          "crimson winter tale", "golden summer nights"};
  const char* years[] = {"1994", "2003", "2011", "1987"};
  ProfileId id = 0;
  for (int i = 0; i < 4; ++i) {
    sample.emplace_back(id++, 0,
                        std::vector<Attribute>{{"title", titles[i]},
                                               {"year", years[i]}});
    sample.emplace_back(id++, 1,
                        std::vector<Attribute>{{"name", titles[i]},
                                               {"released", years[i]}});
  }
  return sample;
}

TEST(AttributeClusteringTest, CorrespondingNamesCluster) {
  AttributeClusterer clusterer;
  clusterer.Fit(TwoSourceSample());
  ASSERT_TRUE(clusterer.fitted());
  EXPECT_EQ(clusterer.ClusterOf("title"), clusterer.ClusterOf("name"));
  EXPECT_EQ(clusterer.ClusterOf("year"), clusterer.ClusterOf("released"));
  EXPECT_NE(clusterer.ClusterOf("title"), clusterer.ClusterOf("year"));
  EXPECT_GE(clusterer.num_clusters(), 3u);  // glue + 2 real clusters
}

TEST(AttributeClusteringTest, UnseenNamesFallIntoGlueCluster) {
  AttributeClusterer clusterer;
  clusterer.Fit(TwoSourceSample());
  EXPECT_EQ(clusterer.ClusterOf("never_seen_attribute"), 0u);
}

TEST(AttributeClusteringTest, DissimilarNamesStayApart) {
  AttributeClusterer clusterer;
  clusterer.Fit(TwoSourceSample());
  // No cross-source counterpart shares the year vocabulary with
  // title -- their clusters must differ.
  EXPECT_NE(clusterer.ClusterOf("name"), clusterer.ClusterOf("released"));
}

TEST(AttributeClusteringTest, QualifiedTokensCarryClusterTag) {
  AttributeClusterer clusterer;
  clusterer.Fit(TwoSourceSample());
  const Tokenizer tokenizer;
  EntityProfile p(0, 0, {{"title", "blue ocean"}, {"year", "1994"}});
  const auto qualified = clusterer.QualifyTokens(p, tokenizer);
  ASSERT_EQ(qualified.size(), 3u);
  const std::string title_tag =
      std::to_string(clusterer.ClusterOf("title")) + "#";
  const std::string year_tag =
      std::to_string(clusterer.ClusterOf("year")) + "#";
  int title_tagged = 0;
  int year_tagged = 0;
  for (const auto& token : qualified) {
    if (token.rfind(title_tag, 0) == 0) ++title_tagged;
    if (token.rfind(year_tag, 0) == 0) ++year_tagged;
  }
  EXPECT_EQ(title_tagged, 2);
  EXPECT_EQ(year_tagged, 1);
}

TEST(AttributeClusteringTest, QualificationSplitsSharedTokens) {
  // The same token under unrelated attributes no longer collides.
  AttributeClusterer clusterer;
  clusterer.Fit(TwoSourceSample());
  const Tokenizer tokenizer;
  EntityProfile a(0, 0, {{"title", "1994"}});  // a movie titled "1994"!
  EntityProfile b(1, 0, {{"year", "1994"}});
  const auto qa = clusterer.QualifyTokens(a, tokenizer);
  const auto qb = clusterer.QualifyTokens(b, tokenizer);
  ASSERT_EQ(qa.size(), 1u);
  ASSERT_EQ(qb.size(), 1u);
  EXPECT_NE(qa[0], qb[0]);
}

TEST(AttributeClusteringTest, WorksOnGeneratedHeterogeneousData) {
  BibliographicOptions options;
  options.source0_count = 150;
  options.source1_count = 150;
  const Dataset d = GenerateBibliographic(options);
  AttributeClusterer clusterer;
  clusterer.Fit(d.profiles);
  // The generator renames title->name, authors->writers, venue->
  // booktitle, year->date across sources; the clusterer must pair at
  // least most of them.
  int paired = 0;
  paired += clusterer.ClusterOf("title") == clusterer.ClusterOf("name") &&
            clusterer.ClusterOf("title") != 0;
  paired += clusterer.ClusterOf("authors") ==
                clusterer.ClusterOf("writers") &&
            clusterer.ClusterOf("authors") != 0;
  paired += clusterer.ClusterOf("venue") ==
                clusterer.ClusterOf("booktitle") &&
            clusterer.ClusterOf("venue") != 0;
  paired += clusterer.ClusterOf("year") == clusterer.ClusterOf("date") &&
            clusterer.ClusterOf("year") != 0;
  EXPECT_GE(paired, 3);
}

}  // namespace
}  // namespace pier
