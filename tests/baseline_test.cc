// Tests for the baseline algorithms: Batch ER, PBS, PPS (static and
// GLOBAL modes), PPS-LOCAL, and I-BASE, driven directly through the
// ErAlgorithm interface.

#include <set>

#include <gtest/gtest.h>

#include "baseline/batch_er.h"
#include "baseline/i_base.h"
#include "baseline/pbs.h"
#include "baseline/pps.h"
#include "baseline/pps_local.h"

namespace pier {
namespace {

EntityProfile Raw(ProfileId id, SourceId source, std::string title) {
  return EntityProfile(id, source, {{"title", std::move(title)}});
}

std::vector<Comparison> DrainAll(ErAlgorithm& alg, size_t max_batches = 100) {
  std::vector<Comparison> out;
  WorkStats stats;
  for (size_t i = 0; i < max_batches; ++i) {
    auto batch = alg.NextBatch(&stats);
    if (batch.empty()) break;
    out.insert(out.end(), batch.begin(), batch.end());
  }
  return out;
}

std::set<uint64_t> Keys(const std::vector<Comparison>& cmps) {
  std::set<uint64_t> keys;
  for (const auto& c : cmps) keys.insert(c.Key());
  return keys;
}

// ---------------------------------------------------------------------------
// Batch ER
// ---------------------------------------------------------------------------

TEST(BatchErTest, NothingBeforeStreamEnd) {
  BatchEr batch(DatasetKind::kDirty, BlockingOptions{});
  batch.OnIncrement({Raw(0, 0, "alpha x"), Raw(1, 0, "alpha y")});
  EXPECT_TRUE(DrainAll(batch).empty());
  batch.OnStreamEnd();
  EXPECT_EQ(DrainAll(batch).size(), 1u);
}

TEST(BatchErTest, CoversAllCoBlockedPairsOnce) {
  BatchEr batch(DatasetKind::kDirty, BlockingOptions{});
  batch.OnIncrement({Raw(0, 0, "tok a1"), Raw(1, 0, "tok a2"),
                     Raw(2, 0, "tok a3"), Raw(3, 0, "other b1")});
  batch.OnStreamEnd();
  const auto emitted = DrainAll(batch);
  EXPECT_EQ(Keys(emitted).size(), 3u);  // C(3,2) sharing "tok"
  EXPECT_EQ(emitted.size(), 3u);        // no duplicates
}

TEST(BatchErTest, CleanCleanCrossSourceOnly) {
  BatchEr batch(DatasetKind::kCleanClean, BlockingOptions{});
  batch.OnIncrement({Raw(0, 0, "tok one"), Raw(1, 0, "tok two"),
                     Raw(2, 1, "tok three")});
  batch.OnStreamEnd();
  const auto keys = Keys(DrainAll(batch));
  EXPECT_EQ(keys.size(), 2u);
  EXPECT_FALSE(keys.count(PairKey(0, 1)));
}

TEST(BatchErTest, MetaBlockingModePrunesComparisons) {
  // WEP cleaning drops below-mean edges: the weak cross pair between
  // the two clusters disappears while intra-cluster pairs survive.
  BatchEr plain(DatasetKind::kDirty, BlockingOptions{});
  BatchEr cleaned(DatasetKind::kDirty, BlockingOptions{}, 256,
                  PruningAlgorithm::kWep);
  const auto feed = [](BatchEr& alg) {
    alg.OnIncrement({Raw(0, 0, "alpha beta gamma"),
                     Raw(1, 0, "alpha beta gamma"),
                     Raw(2, 0, "alpha zeta"), Raw(3, 0, "zeta eta")});
    alg.OnStreamEnd();
  };
  feed(plain);
  feed(cleaned);
  const auto all = Keys(DrainAll(plain));
  const auto kept = Keys(DrainAll(cleaned));
  EXPECT_LT(kept.size(), all.size());
  EXPECT_TRUE(kept.count(PairKey(0, 1)));  // strongest pair survives
  EXPECT_STREQ(cleaned.name(), "BATCH-MB");
}

// ---------------------------------------------------------------------------
// PBS
// ---------------------------------------------------------------------------

TEST(PbsTest, SmallestBlockEmittedFirst) {
  Pbs pbs(DatasetKind::kDirty, BlockingOptions{});
  // "rare" block of 2, "common" block of 4.
  pbs.OnIncrement({Raw(0, 0, "rare common"), Raw(1, 0, "rare common"),
                   Raw(2, 0, "common x"), Raw(3, 0, "common y")});
  pbs.OnStreamEnd();
  const auto emitted = DrainAll(pbs);
  ASSERT_FALSE(emitted.empty());
  EXPECT_EQ(PairKey(emitted[0].x, emitted[0].y), PairKey(0, 1));
  // Full coverage without duplicates despite overlapping blocks.
  EXPECT_EQ(Keys(emitted).size(), 6u);
  EXPECT_EQ(emitted.size(), 6u);
}

TEST(PbsTest, StaticModeNeedsStreamEnd) {
  Pbs pbs(DatasetKind::kDirty, BlockingOptions{});
  pbs.OnIncrement({Raw(0, 0, "a b"), Raw(1, 0, "a b")});
  EXPECT_TRUE(DrainAll(pbs).empty());
}

TEST(PbsTest, GlobalModeEmitsAfterEveryIncrement) {
  Pbs pbs(DatasetKind::kDirty, BlockingOptions{},
          BaselineMode::kGlobalIncremental);
  pbs.OnIncrement({Raw(0, 0, "tok one"), Raw(1, 0, "tok two")});
  EXPECT_EQ(DrainAll(pbs).size(), 1u);
  pbs.OnIncrement({Raw(2, 0, "tok three")});
  // Re-initialized order; the already-executed pair is suppressed.
  const auto keys = Keys(DrainAll(pbs));
  EXPECT_EQ(keys.size(), 2u);
  EXPECT_TRUE(keys.count(PairKey(0, 2)));
  EXPECT_TRUE(keys.count(PairKey(1, 2)));
}

TEST(PbsTest, Names) {
  Pbs stat(DatasetKind::kDirty, BlockingOptions{});
  Pbs glob(DatasetKind::kDirty, BlockingOptions{},
           BaselineMode::kGlobalIncremental);
  EXPECT_STREQ(stat.name(), "PBS");
  EXPECT_STREQ(glob.name(), "PBS-GLOBAL");
}

// ---------------------------------------------------------------------------
// PPS
// ---------------------------------------------------------------------------

TEST(PpsTest, BestPairsFirstThenTopK) {
  Pps pps(DatasetKind::kDirty, BlockingOptions{});
  // (0,1) share two tokens; (2,3) share one.
  pps.OnIncrement({Raw(0, 0, "alpha beta"), Raw(1, 0, "alpha beta"),
                   Raw(2, 0, "gamma g1"), Raw(3, 0, "gamma g2")});
  pps.OnStreamEnd();
  const auto emitted = DrainAll(pps);
  ASSERT_GE(emitted.size(), 2u);
  EXPECT_EQ(PairKey(emitted[0].x, emitted[0].y), PairKey(0, 1));
  EXPECT_EQ(Keys(emitted).size(), emitted.size());  // no duplicates
}

TEST(PpsTest, GlobalModeReinitializesEachIncrement) {
  Pps pps(DatasetKind::kDirty, BlockingOptions{},
          BaselineMode::kGlobalIncremental);
  pps.OnIncrement({Raw(0, 0, "tok a"), Raw(1, 0, "tok b")});
  EXPECT_EQ(DrainAll(pps).size(), 1u);
  pps.OnIncrement({Raw(2, 0, "tok c")});
  const auto keys = Keys(DrainAll(pps));
  EXPECT_EQ(keys.size(), 2u);  // the two new cross pairs only
}

TEST(PpsTest, TopKBoundsPerProfileEmission) {
  // One hub profile sharing a token with 5 spokes; top_k = 2 limits
  // phase-2 emission per profile.
  Pps pps(DatasetKind::kDirty, BlockingOptions{}, BaselineMode::kStatic,
          /*top_k=*/2);
  std::vector<EntityProfile> profiles;
  for (ProfileId id = 0; id < 6; ++id) {
    profiles.push_back(Raw(id, 0, "hub spoke" + std::to_string(id)));
  }
  pps.OnIncrement(std::move(profiles));
  pps.OnStreamEnd();
  const auto emitted = DrainAll(pps);
  // All pairs share exactly one block; phase 1 emits <= 6 best pairs,
  // phase 2 at most one more per profile: total < C(6,2) = 15.
  EXPECT_LT(Keys(emitted).size(), 15u);
  EXPECT_GE(Keys(emitted).size(), 3u);
}

// ---------------------------------------------------------------------------
// PPS-LOCAL
// ---------------------------------------------------------------------------

TEST(PpsLocalTest, OnlyIntraIncrementPairs) {
  PpsLocal local(DatasetKind::kDirty, BlockingOptions{});
  local.OnIncrement({Raw(0, 0, "match token1")});
  EXPECT_TRUE(DrainAll(local).empty());
  // The cross-increment pair (0,1) is never generated.
  local.OnIncrement({Raw(1, 0, "match token2"), Raw(2, 0, "match token3")});
  const auto keys = Keys(DrainAll(local));
  EXPECT_EQ(keys.size(), 1u);
  EXPECT_TRUE(keys.count(PairKey(1, 2)));
  EXPECT_FALSE(keys.count(PairKey(0, 1)));
}

TEST(PpsLocalTest, DiscardsPendingOnNewIncrement) {
  PpsLocal local(DatasetKind::kDirty, BlockingOptions{});
  local.OnIncrement({Raw(0, 0, "aa x"), Raw(1, 0, "aa y")});
  // Pending (0,1) never emitted: the next increment resets it.
  local.OnIncrement({Raw(2, 0, "bb x"), Raw(3, 0, "bb y")});
  const auto keys = Keys(DrainAll(local));
  EXPECT_EQ(keys.size(), 1u);
  EXPECT_TRUE(keys.count(PairKey(2, 3)));
}

TEST(PpsLocalTest, EmitsBestFirstWithinIncrement) {
  PpsLocal local(DatasetKind::kDirty, BlockingOptions{});
  local.OnIncrement({Raw(0, 0, "pp qq"), Raw(1, 0, "pp qq"),
                     Raw(2, 0, "pp zz")});
  WorkStats stats;
  const auto batch = local.NextBatch(&stats);
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(PairKey(batch[0].x, batch[0].y), PairKey(0, 1));  // CBS 2
}

// ---------------------------------------------------------------------------
// I-BASE
// ---------------------------------------------------------------------------

TEST(IBaseTest, ProcessesIncrementEagerly) {
  IBase ibase(DatasetKind::kDirty, BlockingOptions{});
  ibase.OnIncrement({Raw(0, 0, "tok a"), Raw(1, 0, "tok b")});
  EXPECT_FALSE(ibase.ReadyForIncrement());  // pending comparison
  const auto emitted = DrainAll(ibase);
  EXPECT_EQ(emitted.size(), 1u);
  EXPECT_TRUE(ibase.ReadyForIncrement());
}

TEST(IBaseTest, GeneratesCrossIncrementPairs) {
  IBase ibase(DatasetKind::kDirty, BlockingOptions{});
  ibase.OnIncrement({Raw(0, 0, "shared a")});
  DrainAll(ibase);
  ibase.OnIncrement({Raw(1, 0, "shared b")});
  const auto keys = Keys(DrainAll(ibase));
  EXPECT_TRUE(keys.count(PairKey(0, 1)));
}

TEST(IBaseTest, FixedWorkIndependentOfDraining) {
  // I-BASE generates its comparisons at increment time; NextBatch only
  // drains. (The adaptive PIER pipelines instead emit on demand.)
  IBase ibase(DatasetKind::kDirty, BlockingOptions{});
  const WorkStats stats =
      ibase.OnIncrement({Raw(0, 0, "qq a1"), Raw(1, 0, "qq b1"),
                         Raw(2, 0, "qq c1")});
  EXPECT_EQ(stats.comparisons_generated, 3u);  // all pairs up front
}

TEST(IBaseTest, ReadyAgainAfterDrain) {
  IBase ibase(DatasetKind::kDirty, BlockingOptions{}, 0.5,
              /*batch_size=*/1);
  ibase.OnIncrement({Raw(0, 0, "ww a1"), Raw(1, 0, "ww b1"),
                     Raw(2, 0, "ww c1")});
  WorkStats stats;
  int batches = 0;
  while (!ibase.NextBatch(&stats).empty()) ++batches;
  EXPECT_EQ(batches, 3);  // batch size 1
  EXPECT_TRUE(ibase.ReadyForIncrement());
}

}  // namespace
}  // namespace pier
