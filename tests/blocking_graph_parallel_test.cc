// Determinism contract of the parallel BlockingGraph::Build: at any
// thread count the edge set, per-node adjacency order, NodeWeights,
// and visit counts are identical to the sequential build (mirrors the
// parallel match executor's contract from PR 1). Runs under the TSan
// CI gate alongside the other threading tests.

#include <gtest/gtest.h>

#include "blocking/block_collection.h"
#include "datagen/generators.h"
#include "metablocking/blocking_graph.h"
#include "model/profile_store.h"
#include "model/token_dictionary.h"
#include "text/tokenizer.h"
#include "util/thread_pool.h"

namespace pier {
namespace {

struct Workload {
  ProfileStore store;
  BlockCollection blocks;

  explicit Workload(Dataset dataset) : blocks(dataset.kind) {
    Tokenizer tokenizer;
    TokenDictionary dictionary;
    for (auto& p : dataset.profiles) {
      tokenizer.TokenizeProfile(p, dictionary);
      blocks.AddProfile(p);
      store.Add(std::move(p));
    }
  }
};

Workload& CleanCleanWorkload() {
  static Workload& w = *new Workload([] {
    MoviesOptions options;
    options.source0_count = 450;
    options.source1_count = 400;
    return GenerateMovies(options);
  }());
  return w;
}

Workload& DirtyWorkload() {
  static Workload& w = *new Workload([] {
    CensusOptions options;
    options.num_records = 900;
    return GenerateCensus(options);
  }());
  return w;
}

void ExpectIdenticalGraphs(const BlockingGraph& expected,
                           const BlockingGraph& actual) {
  ASSERT_EQ(actual.num_nodes(), expected.num_nodes());
  ASSERT_EQ(actual.num_edges(), expected.num_edges());
  for (ProfileId id = 0; id < expected.num_nodes(); ++id) {
    const auto& want = expected.Edges(id);
    const auto& got = actual.Edges(id);
    ASSERT_EQ(got.size(), want.size()) << "node " << id;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].x, want[i].x);
      EXPECT_EQ(got[i].y, want[i].y);
      EXPECT_EQ(got[i].weight, want[i].weight);  // bit-identical
      EXPECT_EQ(got[i].block_size, want[i].block_size);
    }
    EXPECT_EQ(actual.NodeWeight(id), expected.NodeWeight(id));
  }
}

void RunDeterminismCheck(const Workload& w, WeightingScheme scheme) {
  const WeightingContext ctx{&w.blocks, &w.store, scheme};
  const ProfileId limit = static_cast<ProfileId>(w.store.size());

  BlockingGraph sequential;
  uint64_t sequential_visits = 0;
  const size_t edges = sequential.Build(ctx, limit, &sequential_visits);
  EXPECT_GT(edges, 0u);

  for (const size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    BlockingGraph parallel;
    uint64_t parallel_visits = 0;
    EXPECT_EQ(parallel.Build(ctx, limit, &parallel_visits, &pool), edges)
        << threads << " threads";
    EXPECT_EQ(parallel_visits, sequential_visits) << threads << " threads";
    ExpectIdenticalGraphs(sequential, parallel);
  }
}

TEST(BlockingGraphParallelTest, CleanCleanCbsDeterministic) {
  RunDeterminismCheck(CleanCleanWorkload(), WeightingScheme::kCbs);
}

TEST(BlockingGraphParallelTest, CleanCleanArcsDeterministic) {
  RunDeterminismCheck(CleanCleanWorkload(), WeightingScheme::kArcs);
}

TEST(BlockingGraphParallelTest, DirtyEcbsDeterministic) {
  RunDeterminismCheck(DirtyWorkload(), WeightingScheme::kEcbs);
}

TEST(BlockingGraphParallelTest, PartialLimitDeterministic) {
  const Workload& w = DirtyWorkload();
  const WeightingContext ctx{&w.blocks, &w.store, WeightingScheme::kCbs};
  const ProfileId limit = static_cast<ProfileId>(w.store.size() / 2);
  BlockingGraph sequential;
  sequential.Build(ctx, limit);
  ThreadPool pool(4);
  BlockingGraph parallel;
  parallel.Build(ctx, limit, nullptr, &pool);
  ExpectIdenticalGraphs(sequential, parallel);
}

// A pool larger than the chunk count (tiny input) must not deadlock or
// diverge.
TEST(BlockingGraphParallelTest, MoreWorkersThanChunks) {
  BlockCollection blocks(DatasetKind::kDirty);
  ProfileStore store;
  for (ProfileId id = 0; id < 8; ++id) {
    EntityProfile p(id, 0, {});
    p.set_tokens({0, static_cast<TokenId>(1 + id % 3)});
    blocks.AddProfile(p);
    store.Add(std::move(p));
  }
  const WeightingContext ctx{&blocks, &store, WeightingScheme::kCbs};
  BlockingGraph sequential;
  sequential.Build(ctx, 8);
  ThreadPool pool(8);
  BlockingGraph parallel;
  parallel.Build(ctx, 8, nullptr, &pool);
  ExpectIdenticalGraphs(sequential, parallel);
}

}  // namespace
}  // namespace pier
