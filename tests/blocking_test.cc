// Tests for src/blocking: incremental token blocking, block purging,
// comparison cardinalities, and block ghosting.

#include <gtest/gtest.h>

#include "blocking/block.h"
#include "blocking/block_collection.h"
#include "blocking/block_ghosting.h"
#include "model/entity_profile.h"

namespace pier {
namespace {

EntityProfile Profile(ProfileId id, SourceId source,
                      std::vector<TokenId> tokens) {
  EntityProfile p(id, source, {});
  p.set_tokens(std::move(tokens));
  return p;
}

TEST(BlockTest, SizeAndComparisonsDirty) {
  Block b;
  b.members[0] = {0, 1, 2};
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.NumComparisons(DatasetKind::kDirty), 3u);  // C(3,2)
}

TEST(BlockTest, ComparisonsCleanClean) {
  Block b;
  b.members[0] = {0, 1};
  b.members[1] = {2, 3, 4};
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.NumComparisons(DatasetKind::kCleanClean), 6u);  // 2*3
  // A single-source block yields no Clean-Clean comparisons.
  Block one_sided;
  one_sided.members[0] = {0, 1, 2};
  EXPECT_EQ(one_sided.NumComparisons(DatasetKind::kCleanClean), 0u);
}

TEST(BlockTest, NumNewComparisons) {
  Block b;
  b.members[0] = {0, 1, 2};  // the newest profile already appended
  EXPECT_EQ(b.NumNewComparisons(DatasetKind::kDirty, 0), 2u);
  Block cc;
  cc.members[0] = {0};
  cc.members[1] = {1, 2};
  // New source-0 profile pairs with the 2 source-1 members.
  EXPECT_EQ(cc.NumNewComparisons(DatasetKind::kCleanClean, 0), 2u);
  EXPECT_EQ(cc.NumNewComparisons(DatasetKind::kCleanClean, 1), 1u);
}

TEST(BlockCollectionTest, AddProfileGrowsBlocks) {
  BlockCollection blocks(DatasetKind::kDirty);
  EXPECT_EQ(blocks.AddProfile(Profile(0, 0, {0, 2})), 2u);
  EXPECT_EQ(blocks.AddProfile(Profile(1, 0, {2})), 1u);
  EXPECT_EQ(blocks.NumBlocks(), 2u);
  EXPECT_EQ(blocks.block(2).size(), 2u);
  EXPECT_EQ(blocks.block(0).size(), 1u);
  EXPECT_EQ(blocks.block(1).size(), 0u);  // hole token: empty block
}

TEST(BlockCollectionTest, IsActiveRequiresTwoMembers) {
  BlockCollection blocks(DatasetKind::kDirty);
  blocks.AddProfile(Profile(0, 0, {0}));
  EXPECT_FALSE(blocks.IsActive(0));
  blocks.AddProfile(Profile(1, 0, {0}));
  EXPECT_TRUE(blocks.IsActive(0));
  EXPECT_FALSE(blocks.IsActive(99));  // never-seen token
}

TEST(BlockCollectionTest, IsActiveCleanCleanRequiresBothSources) {
  BlockCollection blocks(DatasetKind::kCleanClean);
  blocks.AddProfile(Profile(0, 0, {0}));
  blocks.AddProfile(Profile(1, 0, {0}));
  EXPECT_FALSE(blocks.IsActive(0));  // single-source block
  blocks.AddProfile(Profile(2, 1, {0}));
  EXPECT_TRUE(blocks.IsActive(0));
}

TEST(BlockCollectionTest, PurgingDisablesOversizedBlocks) {
  BlockingOptions options;
  options.max_block_size = 3;
  BlockCollection blocks(DatasetKind::kDirty, options);
  for (ProfileId id = 0; id < 3; ++id) {
    blocks.AddProfile(Profile(id, 0, {0}));
  }
  EXPECT_TRUE(blocks.IsActive(0));
  EXPECT_FALSE(blocks.IsPurged(0));
  blocks.AddProfile(Profile(3, 0, {0}));  // grows past the threshold
  EXPECT_TRUE(blocks.IsPurged(0));
  EXPECT_FALSE(blocks.IsActive(0));
}

TEST(BlockCollectionTest, PurgingDisabledWithZero) {
  BlockingOptions options;
  options.max_block_size = 0;
  BlockCollection blocks(DatasetKind::kDirty, options);
  for (ProfileId id = 0; id < 100; ++id) {
    blocks.AddProfile(Profile(id, 0, {0}));
  }
  EXPECT_FALSE(blocks.IsPurged(0));
  EXPECT_TRUE(blocks.IsActive(0));
}

TEST(BlockCollectionTest, TotalComparisons) {
  BlockCollection blocks(DatasetKind::kDirty);
  blocks.AddProfile(Profile(0, 0, {0, 1}));
  blocks.AddProfile(Profile(1, 0, {0, 1}));
  blocks.AddProfile(Profile(2, 0, {0}));
  // Block 0: {0,1,2} -> 3 comparisons; block 1: {0,1} -> 1.
  EXPECT_EQ(blocks.TotalComparisons(), 4u);
}

TEST(BlockGhostingTest, KeepsOnlySmallBlocksRelativeToMin) {
  BlockCollection blocks(DatasetKind::kDirty);
  // Token 0: small block (2 members), token 1: large block (6 members).
  blocks.AddProfile(Profile(0, 0, {0, 1}));
  blocks.AddProfile(Profile(1, 0, {0, 1}));
  for (ProfileId id = 2; id < 6; ++id) {
    blocks.AddProfile(Profile(id, 0, {1}));
  }
  const EntityProfile probe = Profile(1, 0, {0, 1});
  // beta = 1: keep only blocks of size |b_min| = 2.
  EXPECT_EQ(GhostBlocks(blocks, probe, 1.0),
            (std::vector<TokenId>{0}));
  // beta = 0.5: keep blocks of size <= 4 -> still only token 0.
  EXPECT_EQ(GhostBlocks(blocks, probe, 0.5),
            (std::vector<TokenId>{0}));
  // beta small enough: keep both.
  EXPECT_EQ(GhostBlocks(blocks, probe, 0.2),
            (std::vector<TokenId>{0, 1}));
}

TEST(BlockGhostingTest, SkipsInactiveBlocks) {
  BlockCollection blocks(DatasetKind::kDirty);
  blocks.AddProfile(Profile(0, 0, {0, 1}));
  blocks.AddProfile(Profile(1, 0, {1}));
  const EntityProfile probe = Profile(0, 0, {0, 1});
  // Token 0 has a single member -> inactive; only token 1 retained.
  EXPECT_EQ(GhostBlocks(blocks, probe, 0.5),
            (std::vector<TokenId>{1}));
}

TEST(BlockGhostingTest, NoActiveBlocksYieldsEmpty) {
  BlockCollection blocks(DatasetKind::kDirty);
  blocks.AddProfile(Profile(0, 0, {0}));
  const EntityProfile probe = Profile(0, 0, {0});
  EXPECT_TRUE(GhostBlocks(blocks, probe, 0.5).empty());
}

TEST(BlockGhostingTest, RejectsInvalidBeta) {
  BlockCollection blocks(DatasetKind::kDirty);
  const EntityProfile probe = Profile(0, 0, {});
  EXPECT_DEATH(GhostBlocks(blocks, probe, 0.0), "PIER_CHECK");
  EXPECT_DEATH(GhostBlocks(blocks, probe, 1.5), "PIER_CHECK");
}

}  // namespace
}  // namespace pier
