// Tests for the online cluster serving path: ClusterIndex (seqlock
// union-find with canonical cluster ids) against a from-scratch
// connected-components oracle, snapshot/restore round-trips, the
// concurrent ingest-vs-query protocol, and the cluster-level recall
// tracker against a brute-force pair count.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "eval/cluster_recall.h"
#include "eval/entity_clusters.h"
#include "model/ground_truth.h"
#include "obs/metrics.h"
#include "serve/cluster_index.h"
#include "stream/realtime_pipeline.h"
#include "util/rng.h"

namespace pier {
namespace {

// From-scratch oracle: replays all edges into a plain union-find and
// materializes canonical (min-member) ids and sorted member lists.
struct Oracle {
  EntityClusters uf;
  std::map<ProfileId, std::vector<ProfileId>> members_by_root;

  Oracle(size_t universe, const std::vector<std::pair<ProfileId, ProfileId>>&
                              edges) {
    for (const auto& e : edges) uf.AddMatch(e.first, e.second);
    for (ProfileId id = 0; id < universe; ++id) {
      members_by_root[uf.Find(id)].push_back(id);
    }
  }

  ProfileId CanonicalId(ProfileId id) {
    return members_by_root.at(uf.Find(id)).front();  // ascending insert
  }
  const std::vector<ProfileId>& Members(ProfileId id) {
    return members_by_root.at(uf.Find(id));
  }
};

void ExpectMatchesOracle(const serve::ClusterIndex& index, Oracle& oracle,
                         size_t universe) {
  ASSERT_EQ(index.universe_size(), universe);
  for (ProfileId id = 0; id < universe; ++id) {
    const serve::ClusterView view = index.ClusterOf(id);
    EXPECT_EQ(view.cluster_id, oracle.CanonicalId(id)) << "id " << id;
    EXPECT_EQ(view.members, oracle.Members(id)) << "id " << id;
    EXPECT_EQ(index.ClusterIdOf(id), view.cluster_id) << "id " << id;
    EXPECT_EQ(index.ClusterSizeOf(id), view.members.size()) << "id " << id;
  }
  EXPECT_EQ(index.NumNonTrivialClusters(),
            oracle.uf.NumNonTrivialClusters());
}

std::string SnapshotBytes(const serve::ClusterIndex& index) {
  std::ostringstream out(std::ios::binary);
  index.Snapshot(out);
  return out.str();
}

TEST(ClusterIndexTest, SingletonsAndUnknownIds) {
  serve::ClusterIndex index;
  index.TrackUpTo(5);
  EXPECT_EQ(index.universe_size(), 5u);
  EXPECT_EQ(index.NumNonTrivialClusters(), 0u);
  const serve::ClusterView view = index.ClusterOf(3);
  EXPECT_EQ(view.cluster_id, 3u);
  EXPECT_EQ(view.members, std::vector<ProfileId>{3});
  // Ids the index has never seen are reported as singletons without
  // growing the universe.
  const serve::ClusterView unknown = index.ClusterOf(100);
  EXPECT_EQ(unknown.cluster_id, 100u);
  EXPECT_EQ(unknown.members, std::vector<ProfileId>{100});
  EXPECT_EQ(index.ClusterSizeOf(100), 1u);
  EXPECT_EQ(index.universe_size(), 5u);
}

TEST(ClusterIndexTest, MergesUseCanonicalSmallestMemberId) {
  serve::ClusterIndex index;
  EXPECT_TRUE(index.AddMatch(4, 7));   // grows the universe to 8
  EXPECT_TRUE(index.AddMatch(7, 2));   // chains into {2,4,7}
  EXPECT_FALSE(index.AddMatch(2, 4));  // already connected
  EXPECT_EQ(index.universe_size(), 8u);
  EXPECT_EQ(index.merges(), 2u);
  EXPECT_EQ(index.NumNonTrivialClusters(), 1u);
  for (const ProfileId id : {2u, 4u, 7u}) {
    const serve::ClusterView view = index.ClusterOf(id);
    EXPECT_EQ(view.cluster_id, 2u);
    EXPECT_EQ(view.members, (std::vector<ProfileId>{2, 4, 7}));
  }
  EXPECT_EQ(index.ClusterIdOf(5), 5u);
}

// The core acceptance property: after every increment of a random
// edge stream -- including across Snapshot -> Restore cycles -- the
// index answers exactly like a connected-components oracle rebuilt
// from scratch.
TEST(ClusterIndexTest, RandomizedPropertyMatchesOracleAcrossRestores) {
  for (const uint64_t seed : {1u, 17u, 99u}) {
    Rng rng(seed);
    auto index = std::make_unique<serve::ClusterIndex>();
    std::vector<std::pair<ProfileId, ProfileId>> edges;
    size_t universe = 1 + rng.UniformInt(0, 7);
    index->TrackUpTo(universe);
    for (int step = 0; step < 320; ++step) {
      const uint64_t op = rng.UniformInt(0, 9);
      if (op == 0) {
        universe += rng.UniformInt(1, 9);
        index->TrackUpTo(universe);
      } else {
        const auto a = static_cast<ProfileId>(
            rng.UniformInt(0, universe - 1));
        const auto b = static_cast<ProfileId>(
            rng.UniformInt(0, universe - 1));
        if (a == b) continue;
        edges.emplace_back(a, b);
        EntityClusters replay;
        for (size_t i = 0; i + 1 < edges.size(); ++i) {
          replay.AddMatch(edges[i].first, edges[i].second);
        }
        const bool expect_merge = !replay.SameEntity(a, b);
        EXPECT_EQ(index->AddMatch(a, b), expect_merge);
      }
      if (step % 20 == 19) {
        Oracle oracle(universe, edges);
        ExpectMatchesOracle(*index, oracle, universe);
      }
      if (step % 80 == 79) {
        // Restore into a fresh index and keep going on the restored
        // one: the serving state must survive persistence mid-stream.
        const std::string bytes = SnapshotBytes(*index);
        auto restored = std::make_unique<serve::ClusterIndex>();
        std::istringstream in(bytes, std::ios::binary);
        ASSERT_TRUE(restored->Restore(in));
        EXPECT_EQ(SnapshotBytes(*restored), bytes);
        Oracle oracle(universe, edges);
        ExpectMatchesOracle(*restored, oracle, universe);
        index = std::move(restored);
      }
    }
    Oracle oracle(universe, edges);
    ExpectMatchesOracle(*index, oracle, universe);
  }
}

TEST(ClusterIndexTest, SnapshotBytesIndependentOfMergeOrder) {
  // Same partition {0,1,2,3} + {5,6} over universe 8, assembled via
  // different spanning edges in different orders.
  serve::ClusterIndex a;
  a.TrackUpTo(8);
  a.AddMatch(0, 1);
  a.AddMatch(2, 3);
  a.AddMatch(1, 3);
  a.AddMatch(5, 6);
  serve::ClusterIndex b;
  b.TrackUpTo(8);
  b.AddMatch(6, 5);
  b.AddMatch(3, 0);
  b.AddMatch(0, 2);
  b.AddMatch(2, 1);
  b.AddMatch(1, 0);  // redundant edge must not perturb the bytes
  EXPECT_EQ(SnapshotBytes(a), SnapshotBytes(b));
}

TEST(ClusterIndexTest, RestoreRejectsMalformedPayloads) {
  serve::ClusterIndex source;
  source.TrackUpTo(4);
  source.AddMatch(1, 3);
  const std::string good = SnapshotBytes(source);

  {
    // Truncated payload.
    serve::ClusterIndex index;
    std::istringstream in(good.substr(0, good.size() - 2),
                          std::ios::binary);
    EXPECT_FALSE(index.Restore(in));
  }
  {
    // Cluster id above the member id: never canonical.
    serve::ClusterIndex index;
    std::string bad = good;
    bad[8] = 3;  // cid[0] = 3 (> 0)
    std::istringstream in(bad, std::ios::binary);
    EXPECT_FALSE(index.Restore(in));
  }
  {
    // Cluster id whose own entry is not self-canonical.
    serve::ClusterIndex index;
    std::string bad = good;
    // good encodes cids {0,1,2,1}; point id 2 at 1's cluster but also
    // rewrite cid[1] to 0 without including 0's members -- id 3 now
    // names cluster 1 whose entry says cluster 0.
    bad[8 + 4] = 0;   // cid[1] = 0
    bad[8 + 8] = 1;   // cid[2] = 1
    std::istringstream in(bad, std::ios::binary);
    EXPECT_FALSE(index.Restore(in));
  }
  {
    // Universe beyond addressable capacity (2^31 cells): a corrupt
    // header must fail the decode, not abort in chunk allocation.
    serve::ClusterIndex index;
    std::string bad(8, '\0');
    bad[4] = 1;  // n = 2^32, little-endian
    std::istringstream in(bad, std::ios::binary);
    EXPECT_FALSE(index.Restore(in));
  }
  {
    // A well-formed payload still round-trips after the negative cases.
    serve::ClusterIndex index;
    std::istringstream in(good, std::ios::binary);
    ASSERT_TRUE(index.Restore(in));
    EXPECT_EQ(SnapshotBytes(index), good);
    EXPECT_EQ(index.ClusterIdOf(3), 1u);
  }
}

TEST(ClusterIndexTest, InstrumentationCountsQueriesAndMerges) {
  obs::MetricsRegistry registry;
  serve::ClusterIndex index;
  index.InstrumentWith(&registry);
  index.TrackUpTo(6);
  index.AddMatch(0, 1);
  index.AddMatch(0, 1);
  (void)index.ClusterOf(0);
  (void)index.ClusterIdOf(5);
  EXPECT_EQ(registry.GetCounter("serve.merges")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("serve.unions")->Value(), 2u);
  EXPECT_EQ(registry.GetCounter("serve.queries")->Value(), 2u);
  EXPECT_EQ(registry.GetHistogram("serve.query_ns")->Count(), 2u);
}

// ThreadSanitizer stress: one writer thread grows the universe and
// feeds match edges while reader threads hammer the query API. Readers
// assert the seqlock invariants on every answer -- canonical id is the
// minimum member, the queried id is in its own member list, members
// are sorted and unique -- i.e. no torn state is ever visible.
TEST(ClusterIndexTest, ConcurrentIngestVersusQueryStress) {
  serve::ClusterIndex index;
  constexpr size_t kUniverse = 20000;
  constexpr int kEdges = 6000;
  std::vector<std::pair<ProfileId, ProfileId>> edges;
  {
    Rng rng(1234);
    for (int i = 0; i < kEdges; ++i) {
      const auto a =
          static_cast<ProfileId>(rng.UniformInt(0, kUniverse - 1));
      const auto b =
          static_cast<ProfileId>(rng.UniformInt(0, kUniverse - 1));
      if (a != b) edges.emplace_back(a, b);
    }
  }

  std::atomic<bool> done{false};
  std::thread writer([&] {
    size_t tracked = 0;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (i % 64 == 0 && tracked < kUniverse) {
        tracked = std::min(kUniverse, tracked + 512);
        index.TrackUpTo(tracked);
      }
      index.AddMatch(edges[i].first, edges[i].second);
    }
    index.TrackUpTo(kUniverse);
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::atomic<uint64_t> query_count{0};
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(500 + t);
      uint64_t local = 0;
      while (!done.load(std::memory_order_acquire) || local < 2000) {
        const size_t universe = index.universe_size();
        if (universe == 0) {
          std::this_thread::yield();
          continue;
        }
        const auto id = static_cast<ProfileId>(
            rng.UniformInt(0, universe - 1));
        const serve::ClusterView view = index.ClusterOf(id);
        ASSERT_FALSE(view.members.empty());
        ASSERT_LE(view.cluster_id, id);
        ASSERT_EQ(view.cluster_id, view.members.front());
        ASSERT_TRUE(std::binary_search(view.members.begin(),
                                       view.members.end(), id));
        ASSERT_TRUE(std::is_sorted(view.members.begin(),
                                   view.members.end()));
        ASSERT_TRUE(std::adjacent_find(view.members.begin(),
                                       view.members.end()) ==
                    view.members.end());
        ASSERT_GE(index.ClusterSizeOf(id), 1u);
        ++local;
      }
      query_count.fetch_add(local);
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_GE(query_count.load(), 4000u);

  // Once quiescent the index must agree with the oracle exactly.
  Oracle oracle(kUniverse, edges);
  for (ProfileId id = 0; id < kUniverse; id += 97) {
    EXPECT_EQ(index.ClusterIdOf(id), oracle.CanonicalId(id));
    EXPECT_EQ(index.ClusterSizeOf(id), oracle.Members(id).size());
  }
  EXPECT_EQ(index.NumNonTrivialClusters(),
            oracle.uf.NumNonTrivialClusters());
}

// ---------------------------------------------------------------------
// ClusterRecallTracker
// ---------------------------------------------------------------------

// Brute-force numerator: pairs co-clustered in both the ground-truth
// closure and the predicted partition.
uint64_t BruteForcePairs(const GroundTruth& truth, size_t universe,
                         const std::vector<std::pair<ProfileId, ProfileId>>&
                             matched) {
  EntityClusters gt;
  for (const uint64_t key : truth.pairs()) {
    gt.AddMatch(static_cast<ProfileId>(key >> 32),
                static_cast<ProfileId>(key & 0xffffffffu));
  }
  EntityClusters predicted;
  for (const auto& e : matched) predicted.AddMatch(e.first, e.second);
  uint64_t pairs = 0;
  for (ProfileId a = 0; a < universe; ++a) {
    for (ProfileId b = a + 1; b < universe; ++b) {
      if (gt.SameEntity(a, b) && predicted.SameEntity(a, b)) ++pairs;
    }
  }
  return pairs;
}

TEST(ClusterRecallTest, MatchesBruteForceAndIsMonotone) {
  for (const uint64_t seed : {3u, 42u}) {
    Rng rng(seed);
    constexpr size_t kUniverse = 60;
    GroundTruth truth;
    for (int i = 0; i < 40; ++i) {
      const auto a = static_cast<ProfileId>(rng.UniformInt(0, kUniverse - 1));
      const auto b = static_cast<ProfileId>(rng.UniformInt(0, kUniverse - 1));
      if (a != b) truth.AddMatch(a, b);
    }
    ClusterRecallTracker tracker(truth);
    EXPECT_EQ(tracker.connected_pairs(), 0u);
    EXPECT_GT(tracker.total_cluster_pairs(), 0u);

    std::vector<std::pair<ProfileId, ProfileId>> matched;
    uint64_t previous = 0;
    for (int i = 0; i < 80; ++i) {
      const auto a = static_cast<ProfileId>(rng.UniformInt(0, kUniverse - 1));
      const auto b = static_cast<ProfileId>(rng.UniformInt(0, kUniverse - 1));
      if (a == b) continue;
      matched.emplace_back(a, b);
      tracker.AddMatch(a, b);
      EXPECT_EQ(tracker.connected_pairs(),
                BruteForcePairs(truth, kUniverse, matched))
          << "seed " << seed << " step " << i;
      EXPECT_GE(tracker.connected_pairs(), previous);  // monotone
      previous = tracker.connected_pairs();
    }
    EXPECT_LE(tracker.Recall(), 1.0);
  }
}

TEST(ClusterRecallTest, ReachesOneWhenAllTruePairsFound) {
  GroundTruth truth;
  truth.AddMatch(0, 1);
  truth.AddMatch(1, 2);  // closure adds {0,2}
  truth.AddMatch(5, 6);
  ClusterRecallTracker tracker(truth);
  EXPECT_EQ(tracker.total_cluster_pairs(), 4u);  // C(3,2) + C(2,2)
  tracker.AddMatch(0, 1);
  EXPECT_EQ(tracker.connected_pairs(), 1u);
  tracker.AddMatch(2, 0);  // transitively connects {1,2} too
  EXPECT_EQ(tracker.connected_pairs(), 3u);
  tracker.AddMatch(3, 4);  // false positive: no recall credit
  EXPECT_EQ(tracker.connected_pairs(), 3u);
  tracker.AddMatch(6, 5);
  EXPECT_DOUBLE_EQ(tracker.Recall(), 1.0);
}

TEST(ClusterRecallTest, SnapshotRestoreResumesExactly) {
  Rng rng(7);
  constexpr size_t kUniverse = 50;
  GroundTruth truth;
  for (int i = 0; i < 30; ++i) {
    const auto a = static_cast<ProfileId>(rng.UniformInt(0, kUniverse - 1));
    const auto b = static_cast<ProfileId>(rng.UniformInt(0, kUniverse - 1));
    if (a != b) truth.AddMatch(a, b);
  }
  ClusterRecallTracker original(truth);
  for (int i = 0; i < 25; ++i) {
    original.AddMatch(
        static_cast<ProfileId>(rng.UniformInt(0, kUniverse - 1)),
        static_cast<ProfileId>(rng.UniformInt(0, kUniverse - 1)));
  }
  std::ostringstream out(std::ios::binary);
  original.Snapshot(out);

  ClusterRecallTracker restored(truth);
  std::istringstream in(out.str(), std::ios::binary);
  ASSERT_TRUE(restored.Restore(in));
  EXPECT_EQ(restored.connected_pairs(), original.connected_pairs());
  EXPECT_EQ(restored.total_cluster_pairs(), original.total_cluster_pairs());

  // Both must evolve identically from here on.
  for (int i = 0; i < 25; ++i) {
    const auto a = static_cast<ProfileId>(rng.UniformInt(0, kUniverse - 1));
    const auto b = static_cast<ProfileId>(rng.UniformInt(0, kUniverse - 1));
    original.AddMatch(a, b);
    restored.AddMatch(a, b);
    ASSERT_EQ(restored.connected_pairs(), original.connected_pairs());
  }
  std::ostringstream bytes_a(std::ios::binary);
  std::ostringstream bytes_b(std::ios::binary);
  original.Snapshot(bytes_a);
  restored.Snapshot(bytes_b);
  EXPECT_EQ(bytes_a.str(), bytes_b.str());
}

TEST(ClusterRecallTest, RestoreRejectsMalformedPayload) {
  GroundTruth truth;
  truth.AddMatch(0, 1);
  ClusterRecallTracker tracker(truth);
  std::istringstream in(std::string("\x01\x02"), std::ios::binary);
  EXPECT_FALSE(tracker.Restore(in));
}

// ---------------------------------------------------------------------
// End-to-end: the realtime pipeline feeds the index it serves from.
// ---------------------------------------------------------------------

TEST(ClusterIndexTest, RealtimePipelineServesItsOwnMatches) {
  BibliographicOptions data_options;
  data_options.source0_count = 60;
  data_options.source1_count = 50;
  const Dataset d = GenerateBibliographic(data_options);

  PierOptions options;
  options.kind = d.kind;
  options.strategy = PierStrategy::kIPes;
  const JaccardMatcher matcher(0.4);
  std::mutex mu;
  std::vector<std::pair<ProfileId, ProfileId>> found;
  RealtimePipeline realtime(options, &matcher,
                            [&](ProfileId a, ProfileId b) {
                              std::lock_guard<std::mutex> lock(mu);
                              found.emplace_back(a, b);
                            });
  const auto increments = SplitIntoIncrements(d, 4);
  for (const auto& inc : increments) {
    std::vector<EntityProfile> batch(
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    realtime.Ingest(std::move(batch));
  }
  realtime.Drain();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(realtime.clusters().universe_size(), d.profiles.size());
  // Every delivered match must be co-clustered in the serving index,
  // and the index must agree with an oracle over exactly those edges.
  Oracle oracle(d.profiles.size(), found);
  for (const auto& e : found) {
    EXPECT_EQ(realtime.ClusterIdOf(e.first), realtime.ClusterIdOf(e.second));
  }
  for (ProfileId id = 0; id < d.profiles.size(); ++id) {
    EXPECT_EQ(realtime.ClusterIdOf(id), oracle.CanonicalId(id));
  }
  uint64_t expected_merges = 0;  // each cluster of size s took s-1 merges
  for (const auto& entry : oracle.members_by_root) {
    expected_merges += entry.second.size() - 1;
  }
  EXPECT_EQ(realtime.clusters().merges(), expected_merges);
}

}  // namespace
}  // namespace pier
