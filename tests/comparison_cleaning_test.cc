// Tests for the batch comparison-cleaning algorithms (WEP, CEP, WNP,
// CNP) over a crafted blocking graph.

#include <set>

#include <gtest/gtest.h>

#include "metablocking/comparison_cleaning.h"

namespace pier {
namespace {

// Fixture: 5 dirty profiles.
//   p0-p1 share tokens {0,1,2}  (CBS 3)
//   p0-p2 share token  {0}      (CBS 1)
//   p1-p2 share token  {0}      (CBS 1)
//   p3-p4 share tokens {5,6}    (CBS 2)
class CleaningFixture : public ::testing::Test {
 protected:
  CleaningFixture() : blocks_(DatasetKind::kDirty) {
    Add(0, {0, 1, 2});
    Add(1, {0, 1, 2});
    Add(2, {0});
    Add(3, {5, 6});
    Add(4, {5, 6});
    const WeightingContext ctx{&blocks_, &profiles_, WeightingScheme::kCbs};
    graph_.Build(ctx, static_cast<ProfileId>(profiles_.size()));
  }

  void Add(ProfileId id, std::vector<TokenId> tokens) {
    EntityProfile p(id, 0, {});
    p.set_tokens(std::move(tokens));
    blocks_.AddProfile(p);
    profiles_.Add(std::move(p));
  }

  static std::set<uint64_t> Keys(const std::vector<Comparison>& cmps) {
    std::set<uint64_t> keys;
    for (const auto& c : cmps) keys.insert(c.Key());
    return keys;
  }

  BlockCollection blocks_;
  ProfileStore profiles_;
  BlockingGraph graph_;
};

TEST_F(CleaningFixture, GraphHasExpectedEdges) {
  EXPECT_EQ(graph_.num_edges(), 4u);
}

TEST_F(CleaningFixture, WepKeepsAboveGlobalMean) {
  // Weights: 3, 1, 1, 2 -> mean 1.75 -> keep the 3 and the 2.
  const auto kept = PruneComparisons(graph_, PruningAlgorithm::kWep);
  const auto keys = Keys(kept);
  EXPECT_EQ(keys.size(), 2u);
  EXPECT_TRUE(keys.count(PairKey(0, 1)));
  EXPECT_TRUE(keys.count(PairKey(3, 4)));
}

TEST_F(CleaningFixture, CepKeepsGlobalTopK) {
  PruningOptions options;
  options.cep_k = 2;
  const auto kept =
      PruneComparisons(graph_, PruningAlgorithm::kCep, options);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[0].weight, 3.0);
  EXPECT_DOUBLE_EQ(kept[1].weight, 2.0);
}

TEST_F(CleaningFixture, CepWithLargeKKeepsEverything) {
  PruningOptions options;
  options.cep_k = 100;
  EXPECT_EQ(PruneComparisons(graph_, PruningAlgorithm::kCep, options).size(),
            4u);
}

TEST_F(CleaningFixture, WnpUnionSemantics) {
  // p2's neighbourhood: edges (0,2) w1 and (1,2) w1, mean 1 -> p2
  // keeps both, so they survive even though p0/p1 prune them
  // (their means are 5/3).
  const auto kept = PruneComparisons(graph_, PruningAlgorithm::kWnp);
  const auto keys = Keys(kept);
  EXPECT_EQ(keys.size(), 4u);  // everything survives via some endpoint
}

TEST_F(CleaningFixture, CnpPerNodeTopOne) {
  PruningOptions options;
  options.cnp_k = 1;
  const auto kept =
      PruneComparisons(graph_, PruningAlgorithm::kCnp, options);
  const auto keys = Keys(kept);
  // Top-1 per node: p0->(0,1), p1->(0,1), p2->(0,2) (tie break), p3/p4
  // ->(3,4). (0,1), (3,4) and p2's pick survive.
  EXPECT_TRUE(keys.count(PairKey(0, 1)));
  EXPECT_TRUE(keys.count(PairKey(3, 4)));
  EXPECT_EQ(keys.size(), 3u);
}

TEST_F(CleaningFixture, OutputSortedByWeightDescending) {
  for (const auto algorithm :
       {PruningAlgorithm::kWep, PruningAlgorithm::kCep,
        PruningAlgorithm::kWnp, PruningAlgorithm::kCnp}) {
    const auto kept = PruneComparisons(graph_, algorithm);
    for (size_t i = 1; i < kept.size(); ++i) {
      EXPECT_GE(kept[i - 1].weight, kept[i].weight) << ToString(algorithm);
    }
  }
}

TEST_F(CleaningFixture, EachEdgeAtMostOnce) {
  for (const auto algorithm :
       {PruningAlgorithm::kWep, PruningAlgorithm::kCep,
        PruningAlgorithm::kWnp, PruningAlgorithm::kCnp}) {
    const auto kept = PruneComparisons(graph_, algorithm);
    EXPECT_EQ(Keys(kept).size(), kept.size()) << ToString(algorithm);
  }
}

TEST(CleaningEmptyTest, EmptyGraph) {
  BlockingGraph graph;
  for (const auto algorithm :
       {PruningAlgorithm::kWep, PruningAlgorithm::kCep,
        PruningAlgorithm::kWnp, PruningAlgorithm::kCnp}) {
    EXPECT_TRUE(PruneComparisons(graph, algorithm).empty());
  }
}

TEST(CleaningNamesTest, ToString) {
  EXPECT_STREQ(ToString(PruningAlgorithm::kWep), "WEP");
  EXPECT_STREQ(ToString(PruningAlgorithm::kCep), "CEP");
  EXPECT_STREQ(ToString(PruningAlgorithm::kWnp), "WNP");
  EXPECT_STREQ(ToString(PruningAlgorithm::kCnp), "CNP");
}

}  // namespace
}  // namespace pier
