// Tests for src/datagen: vocabulary determinism, the error model, and
// the four dataset generators (sizes, ground-truth structure,
// reproducibility, and the token-overlap property that makes
// duplicates discoverable by token blocking).

#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "datagen/error_model.h"
#include "datagen/generators.h"
#include "datagen/vocabulary.h"
#include "model/token_dictionary.h"
#include "similarity/string_distance.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace pier {
namespace {

TEST(VocabularyTest, WordDeterministicAndDistinct) {
  EXPECT_EQ(Vocabulary::Word(17), Vocabulary::Word(17));
  std::set<std::string> words;
  for (size_t i = 0; i < 5000; ++i) words.insert(Vocabulary::Word(i));
  EXPECT_EQ(words.size(), 5000u);
}

TEST(VocabularyTest, WordsAreLowercaseAlpha) {
  for (size_t i = 0; i < 200; ++i) {
    for (const char c : Vocabulary::Word(i)) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << Vocabulary::Word(i);
    }
  }
}

TEST(VocabularyTest, CuratedListsNonEmpty) {
  EXPECT_GE(Vocabulary::FirstNames().size(), 50u);
  EXPECT_GE(Vocabulary::LastNames().size(), 50u);
  EXPECT_GE(Vocabulary::Venues().size(), 10u);
  EXPECT_GE(Vocabulary::Genres().size(), 10u);
  EXPECT_GE(Vocabulary::Cities().size(), 20u);
  EXPECT_GE(Vocabulary::Streets().size(), 20u);
  EXPECT_GE(Vocabulary::States().size(), 5u);
}

TEST(ErrorModelTest, TypoChangesWordByOneEdit) {
  const ErrorModel model;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::string word = "example";
    const std::string typo = model.ApplyTypo(word, rng);
    EXPECT_LE(Levenshtein(word, typo), 2u);  // transpose counts as <= 2
  }
}

TEST(ErrorModelTest, TypoLeavesShortWordsAlone) {
  const ErrorModel model;
  Rng rng(5);
  EXPECT_EQ(model.ApplyTypo("a", rng), "a");
  EXPECT_EQ(model.ApplyTypo("", rng), "");
}

TEST(ErrorModelTest, PerturbAttributesKeepsAtLeastOne) {
  ErrorModelOptions options;
  options.attribute_drop_prob = 1.0;  // drop everything
  const ErrorModel model(options);
  Rng rng(1);
  const std::vector<Attribute> attrs = {{"a", "x y"}, {"b", "z"}};
  const auto out = model.PerturbAttributes(attrs, rng);
  EXPECT_GE(out.size(), 1u);
}

TEST(ErrorModelTest, PerturbedValueSharesMostTokens) {
  ErrorModelOptions options;  // defaults: moderate noise
  const ErrorModel model(options);
  Rng rng(7);
  Tokenizer tokenizer;
  int shared = 0;
  int trials = 100;
  for (int i = 0; i < trials; ++i) {
    const std::string value = "alpha bravo charlie delta echo";
    const std::string noisy = model.PerturbValue(value, rng);
    const auto a = tokenizer.Split(value);
    const auto b = tokenizer.Split(noisy);
    std::set<std::string> sa(a.begin(), a.end());
    int common = 0;
    for (const auto& t : b) {
      if (sa.count(t)) ++common;
    }
    if (common >= 3) ++shared;
  }
  EXPECT_GT(shared, trials * 3 / 4);
}

// Shared checks for any generated dataset.
void CheckDatasetInvariants(const Dataset& d) {
  ASSERT_FALSE(d.profiles.empty());
  // Dense ids in stream order.
  for (size_t i = 0; i < d.profiles.size(); ++i) {
    EXPECT_EQ(d.profiles[i].id, i);
    EXPECT_LT(d.profiles[i].source, 2);
    EXPECT_GT(d.profiles[i].num_attributes(), 0u);
  }
  EXPECT_GT(d.truth.size(), 0u);
  if (d.kind == DatasetKind::kCleanClean) {
    // Every truth pair must be cross-source.
    for (const uint64_t key : d.truth.pairs()) {
      const ProfileId a = static_cast<ProfileId>(key >> 32);
      const ProfileId b = static_cast<ProfileId>(key & 0xffffffffu);
      EXPECT_NE(d.profiles[a].source, d.profiles[b].source);
    }
  }
}

TEST(BibliographicTest, SizesAndKind) {
  BibliographicOptions options;
  options.source0_count = 300;
  options.source1_count = 250;
  const Dataset d = GenerateBibliographic(options);
  EXPECT_EQ(d.kind, DatasetKind::kCleanClean);
  EXPECT_EQ(d.profiles.size(), 550u);
  EXPECT_EQ(d.NumProfiles(0), 300u);
  EXPECT_EQ(d.NumProfiles(1), 250u);
  // overlap_fraction 0.95 of min(300,250).
  EXPECT_EQ(d.truth.size(), static_cast<size_t>(0.95 * 250));
  CheckDatasetInvariants(d);
}

TEST(BibliographicTest, DeterministicForSeed) {
  BibliographicOptions options;
  options.source0_count = 100;
  options.source1_count = 80;
  const Dataset a = GenerateBibliographic(options);
  const Dataset b = GenerateBibliographic(options);
  ASSERT_EQ(a.profiles.size(), b.profiles.size());
  for (size_t i = 0; i < a.profiles.size(); ++i) {
    const std::vector<Attribute> aa = a.profiles[i].CopyAttributes();
    const std::vector<Attribute> ba = b.profiles[i].CopyAttributes();
    ASSERT_EQ(aa.size(), ba.size());
    for (size_t j = 0; j < aa.size(); ++j) {
      EXPECT_EQ(aa[j].value, ba[j].value);
    }
  }
  options.seed = 999;
  const Dataset c = GenerateBibliographic(options);
  bool any_diff = false;
  for (size_t i = 0; i < a.profiles.size() && !any_diff; ++i) {
    any_diff = a.profiles[i].CopyAttributes()[0].value !=
               c.profiles[i].CopyAttributes()[0].value;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BibliographicTest, SourcesUseDifferentSchemas) {
  BibliographicOptions options;
  options.source0_count = 50;
  options.source1_count = 50;
  const Dataset d = GenerateBibliographic(options);
  std::set<std::string> names0;
  std::set<std::string> names1;
  for (const auto& p : d.profiles) {
    p.ForEachAttribute([&](std::string_view name, std::string_view) {
      (p.source == 0 ? names0 : names1).insert(std::string(name));
    });
  }
  for (const auto& n : names0) EXPECT_EQ(names1.count(n), 0u) << n;
}

TEST(BibliographicTest, DuplicatesShareTokens) {
  BibliographicOptions options;
  options.source0_count = 200;
  options.source1_count = 200;
  const Dataset d = GenerateBibliographic(options);
  Tokenizer tokenizer;
  TokenDictionary dict;
  std::vector<EntityProfile> profiles = d.profiles;
  for (auto& p : profiles) tokenizer.TokenizeProfile(p, dict);
  size_t with_overlap = 0;
  for (const uint64_t key : d.truth.pairs()) {
    const ProfileId a = static_cast<ProfileId>(key >> 32);
    const ProfileId b = static_cast<ProfileId>(key & 0xffffffffu);
    if (IntersectionSize(profiles[a].tokens(), profiles[b].tokens()) >= 1) {
      ++with_overlap;
    }
  }
  // Virtually all duplicates must be reachable via token blocking.
  EXPECT_GT(with_overlap, d.truth.size() * 95 / 100);
}

TEST(MoviesTest, SizesAndHeterogeneousSchema) {
  MoviesOptions options;
  options.source0_count = 200;
  options.source1_count = 150;
  const Dataset d = GenerateMovies(options);
  EXPECT_EQ(d.profiles.size(), 350u);
  EXPECT_EQ(d.kind, DatasetKind::kCleanClean);
  EXPECT_EQ(d.truth.size(), static_cast<size_t>(0.9 * 150));
  CheckDatasetInvariants(d);
}

TEST(MoviesTest, LongerTextThanBibliographic) {
  MoviesOptions movies_options;
  movies_options.source0_count = 100;
  movies_options.source1_count = 100;
  BibliographicOptions bib_options;
  bib_options.source0_count = 100;
  bib_options.source1_count = 100;
  const Dataset movies = GenerateMovies(movies_options);
  const Dataset bib = GenerateBibliographic(bib_options);
  auto mean_text = [](const Dataset& d) {
    size_t total = 0;
    for (const auto& p : d.profiles) {
      p.ForEachAttribute([&](std::string_view, std::string_view value) {
        total += value.size();
      });
    }
    return static_cast<double>(total) / static_cast<double>(d.profiles.size());
  };
  EXPECT_GT(mean_text(movies), mean_text(bib));
}

TEST(CensusTest, DirtyWithClusters) {
  CensusOptions options;
  options.num_records = 2000;
  const Dataset d = GenerateCensus(options);
  EXPECT_EQ(d.kind, DatasetKind::kDirty);
  EXPECT_EQ(d.profiles.size(), 2000u);
  // With 50% duplicated entities and geometric clusters, matches are a
  // substantial fraction of records.
  EXPECT_GT(d.truth.size(), 300u);
  CheckDatasetInvariants(d);
}

TEST(CensusTest, ClusterSizesCapped) {
  CensusOptions options;
  options.num_records = 3000;
  options.max_cluster_size = 4;
  const Dataset d = GenerateCensus(options);
  // Reconstruct cluster sizes from the truth graph.
  std::unordered_map<ProfileId, size_t> degree;
  for (const uint64_t key : d.truth.pairs()) {
    ++degree[static_cast<ProfileId>(key >> 32)];
    ++degree[static_cast<ProfileId>(key & 0xffffffffu)];
  }
  for (const auto& [id, deg] : degree) {
    EXPECT_LE(deg, options.max_cluster_size - 1);
  }
}

TEST(CensusTest, ShortRelationalValues) {
  CensusOptions options;
  options.num_records = 500;
  const Dataset d = GenerateCensus(options);
  for (const auto& p : d.profiles) {
    p.ForEachAttribute([&](std::string_view name, std::string_view value) {
      EXPECT_LT(value.size(), 40u) << name;
    });
  }
}

TEST(DbpediaTest, SizesAndRaggedProfiles) {
  DbpediaOptions options;
  options.source0_count = 300;
  options.source1_count = 400;
  const Dataset d = GenerateDbpedia(options);
  EXPECT_EQ(d.profiles.size(), 700u);
  EXPECT_EQ(d.truth.size(), static_cast<size_t>(0.6 * 300));
  CheckDatasetInvariants(d);
  // Profiles vary in attribute count (heterogeneity).
  std::set<size_t> attr_counts;
  for (const auto& p : d.profiles) attr_counts.insert(p.num_attributes());
  EXPECT_GT(attr_counts.size(), 3u);
}

TEST(DbpediaTest, DuplicatesShareRareNameTokens) {
  DbpediaOptions options;
  options.source0_count = 100;
  options.source1_count = 100;
  const Dataset d = GenerateDbpedia(options);
  Tokenizer tokenizer;
  TokenDictionary dict;
  std::vector<EntityProfile> profiles = d.profiles;
  for (auto& p : profiles) tokenizer.TokenizeProfile(p, dict);
  size_t with_overlap = 0;
  for (const uint64_t key : d.truth.pairs()) {
    const ProfileId a = static_cast<ProfileId>(key >> 32);
    const ProfileId b = static_cast<ProfileId>(key & 0xffffffffu);
    if (IntersectionSize(profiles[a].tokens(), profiles[b].tokens()) >= 1) {
      ++with_overlap;
    }
  }
  EXPECT_GT(with_overlap, d.truth.size() * 9 / 10);
}

TEST(DbpediaTest, PowerLawBlockDistribution) {
  DbpediaOptions options;
  options.source0_count = 500;
  options.source1_count = 500;
  const Dataset d = GenerateDbpedia(options);
  Tokenizer tokenizer;
  TokenDictionary dict;
  std::unordered_map<TokenId, size_t> block_sizes;
  for (auto p : d.profiles) {
    tokenizer.TokenizeProfile(p, dict);
    for (const TokenId t : p.tokens()) ++block_sizes[t];
  }
  size_t singletons = 0;
  size_t huge = 0;
  for (const auto& [t, s] : block_sizes) {
    if (s == 1) ++singletons;
    if (s > 100) ++huge;
  }
  // Web-like skew: a long tail of tiny blocks plus a head of huge ones.
  EXPECT_GT(singletons, block_sizes.size() / 3);
  EXPECT_GT(huge, 0u);
}

}  // namespace
}  // namespace pier
