// Tests for the DySNI real-time sorted-neighborhood baseline.

#include <set>

#include <gtest/gtest.h>

#include "baseline/dysni.h"

namespace pier {
namespace {

EntityProfile Raw(ProfileId id, SourceId source, std::string title) {
  return EntityProfile(id, source, {{"title", std::move(title)}});
}

std::vector<Comparison> DrainAll(ErAlgorithm& alg) {
  std::vector<Comparison> out;
  WorkStats stats;
  for (;;) {
    auto batch = alg.NextBatch(&stats);
    if (batch.empty()) break;
    out.insert(out.end(), batch.begin(), batch.end());
  }
  return out;
}

std::set<uint64_t> Keys(const std::vector<Comparison>& cmps) {
  std::set<uint64_t> keys;
  for (const auto& c : cmps) keys.insert(c.Key());
  return keys;
}

TEST(DySniTest, ExactKeyCollision) {
  DySni dysni(DatasetKind::kDirty, BlockingOptions{});
  dysni.OnIncrement({Raw(0, 0, "smith"), Raw(1, 0, "smith")});
  const auto keys = Keys(DrainAll(dysni));
  EXPECT_TRUE(keys.count(PairKey(0, 1)));
}

TEST(DySniTest, WindowCatchesNearbyKeys) {
  // "smith" and "smithe" are adjacent in the sorted key order even
  // though token blocking would place them in different blocks.
  DySni dysni(DatasetKind::kDirty, BlockingOptions{}, /*window=*/1);
  dysni.OnIncrement({Raw(0, 0, "smith"), Raw(1, 0, "smithe")});
  const auto keys = Keys(DrainAll(dysni));
  EXPECT_TRUE(keys.count(PairKey(0, 1)));
}

TEST(DySniTest, WindowZeroIsExactBlockingOnly) {
  DySni dysni(DatasetKind::kDirty, BlockingOptions{}, /*window=*/0);
  dysni.OnIncrement({Raw(0, 0, "smith"), Raw(1, 0, "smithe")});
  EXPECT_TRUE(DrainAll(dysni).empty());
}

TEST(DySniTest, RealTimeCrossIncrementMatching) {
  DySni dysni(DatasetKind::kDirty, BlockingOptions{});
  dysni.OnIncrement({Raw(0, 0, "unique jonathan")});
  EXPECT_TRUE(DrainAll(dysni).empty());  // nothing to pair yet
  dysni.OnIncrement({Raw(1, 0, "unique jonathan")});
  const auto keys = Keys(DrainAll(dysni));
  EXPECT_TRUE(keys.count(PairKey(0, 1)));
}

TEST(DySniTest, BackpressureLikeIBase) {
  DySni dysni(DatasetKind::kDirty, BlockingOptions{}, 2, /*batch_size=*/1);
  dysni.OnIncrement({Raw(0, 0, "dup aa"), Raw(1, 0, "dup aa"),
                     Raw(2, 0, "dup aa")});
  EXPECT_FALSE(dysni.ReadyForIncrement());
  DrainAll(dysni);
  EXPECT_TRUE(dysni.ReadyForIncrement());
}

TEST(DySniTest, NoDuplicateComparisons) {
  DySni dysni(DatasetKind::kDirty, BlockingOptions{});
  dysni.OnIncrement({Raw(0, 0, "alpha beta gamma"),
                     Raw(1, 0, "alpha beta gamma"),
                     Raw(2, 0, "alpha beta delta")});
  const auto emitted = DrainAll(dysni);
  EXPECT_EQ(Keys(emitted).size(), emitted.size());
}

TEST(DySniTest, CleanCleanCrossSourceOnly) {
  DySni dysni(DatasetKind::kCleanClean, BlockingOptions{});
  dysni.OnIncrement({Raw(0, 0, "token x1"), Raw(1, 0, "token x2"),
                     Raw(2, 1, "token x3")});
  for (const auto& c : DrainAll(dysni)) {
    EXPECT_TRUE((c.x == 2) != (c.y == 2));
  }
}

TEST(DySniTest, OversizedBucketsSkipped) {
  BlockingOptions blocking;
  blocking.max_block_size = 3;
  DySni dysni(DatasetKind::kDirty, blocking);
  std::vector<EntityProfile> profiles;
  for (ProfileId id = 0; id < 10; ++id) {
    profiles.push_back(Raw(id, 0, "stopword"));
  }
  dysni.OnIncrement(std::move(profiles));
  // The "stopword" bucket outgrows the cap mid-increment; pairs from
  // the oversized state are suppressed.
  EXPECT_LT(Keys(DrainAll(dysni)).size(), 45u);
}

TEST(DySniTest, IndexKeysGrow) {
  DySni dysni(DatasetKind::kDirty, BlockingOptions{});
  dysni.OnIncrement({Raw(0, 0, "one two"), Raw(1, 0, "two three")});
  EXPECT_EQ(dysni.NumIndexKeys(), 3u);
}

}  // namespace
}  // namespace pier
