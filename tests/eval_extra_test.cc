// Tests for the entity-cluster consolidation (union-find over matches)
// and the CSV dataset round trip.

#include <sstream>

#include <gtest/gtest.h>

#include "datagen/dataset_io.h"
#include "datagen/generators.h"
#include "eval/entity_clusters.h"

namespace pier {
namespace {

// ---------------------------------------------------------------------------
// EntityClusters
// ---------------------------------------------------------------------------

TEST(EntityClustersTest, SingletonsByDefault) {
  EntityClusters clusters;
  EXPECT_EQ(clusters.Find(5), 5u);
  EXPECT_FALSE(clusters.SameEntity(1, 2));
  EXPECT_EQ(clusters.ClusterSize(3), 1u);
}

TEST(EntityClustersTest, MergeAndFind) {
  EntityClusters clusters;
  EXPECT_TRUE(clusters.AddMatch(1, 2));
  EXPECT_TRUE(clusters.SameEntity(1, 2));
  EXPECT_EQ(clusters.ClusterSize(1), 2u);
  EXPECT_FALSE(clusters.AddMatch(2, 1));  // already merged
}

TEST(EntityClustersTest, TransitiveClosure) {
  EntityClusters clusters;
  clusters.AddMatch(1, 2);
  clusters.AddMatch(3, 4);
  EXPECT_FALSE(clusters.SameEntity(1, 4));
  clusters.AddMatch(2, 3);  // bridges the clusters
  EXPECT_TRUE(clusters.SameEntity(1, 4));
  EXPECT_EQ(clusters.ClusterSize(4), 4u);
}

TEST(EntityClustersTest, NonTrivialClusterCount) {
  EntityClusters clusters;
  EXPECT_EQ(clusters.NumNonTrivialClusters(), 0u);
  clusters.AddMatch(0, 1);
  EXPECT_EQ(clusters.NumNonTrivialClusters(), 1u);
  clusters.AddMatch(2, 3);
  EXPECT_EQ(clusters.NumNonTrivialClusters(), 2u);
  clusters.AddMatch(1, 2);  // merge the two clusters
  EXPECT_EQ(clusters.NumNonTrivialClusters(), 1u);
  clusters.AddMatch(4, 0);  // absorb a singleton
  EXPECT_EQ(clusters.NumNonTrivialClusters(), 1u);
}

TEST(EntityClustersTest, MaterializeClusters) {
  EntityClusters clusters;
  clusters.AddMatch(1, 2);
  clusters.AddMatch(5, 6);
  clusters.AddMatch(6, 7);
  clusters.Find(9);  // grows the universe with a singleton
  const auto all = clusters.Clusters(2);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], (std::vector<ProfileId>{1, 2}));
  EXPECT_EQ(all[1], (std::vector<ProfileId>{5, 6, 7}));
}

TEST(EntityClustersTest, AgreesWithGeneratedTruth) {
  CensusOptions options;
  options.num_records = 1000;
  const Dataset d = GenerateCensus(options);
  EntityClusters clusters;
  for (const uint64_t key : d.truth.pairs()) {
    clusters.AddMatch(static_cast<ProfileId>(key >> 32),
                      static_cast<ProfileId>(key & 0xffffffffu));
  }
  // Every truth pair ends up co-clustered, and cluster sizes match the
  // quadratic pair counts.
  size_t pairs = 0;
  for (const auto& cluster : clusters.Clusters(2)) {
    pairs += cluster.size() * (cluster.size() - 1) / 2;
  }
  EXPECT_EQ(pairs, d.truth.size());
}

// ---------------------------------------------------------------------------
// Dataset CSV IO
// ---------------------------------------------------------------------------

TEST(CsvParseTest, PlainAndQuoted) {
  EXPECT_EQ(*ParseCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(*ParseCsvLine("\"x,y\",\"he said \"\"hi\"\"\""),
            (std::vector<std::string>{"x,y", "he said \"hi\""}));
  EXPECT_EQ(*ParseCsvLine(""), (std::vector<std::string>{""}));
  EXPECT_EQ(*ParseCsvLine("a,,b"),
            (std::vector<std::string>{"a", "", "b"}));
}

TEST(CsvParseTest, MalformedQuoting) {
  EXPECT_FALSE(ParseCsvLine("\"unterminated").has_value());
  EXPECT_FALSE(ParseCsvLine("ab\"cd").has_value());
}

TEST(DatasetIoTest, RoundTripsGeneratedDataset) {
  BibliographicOptions options;
  options.source0_count = 60;
  options.source1_count = 50;
  const Dataset original = GenerateBibliographic(options);

  std::stringstream profiles_csv;
  std::stringstream truth_csv;
  WriteProfilesCsv(original, profiles_csv);
  WriteGroundTruthCsv(original, truth_csv);

  const auto loaded =
      ReadDatasetCsv(profiles_csv, &truth_csv, original.name, original.kind);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->profiles.size(), original.profiles.size());
  for (size_t i = 0; i < original.profiles.size(); ++i) {
    const auto& a = original.profiles[i];
    const auto& b = loaded->profiles[i];
    EXPECT_EQ(a.source, b.source);
    const std::vector<Attribute> aa = a.CopyAttributes();
    const std::vector<Attribute> ba = b.CopyAttributes();
    ASSERT_EQ(aa.size(), ba.size());
    for (size_t j = 0; j < aa.size(); ++j) {
      EXPECT_EQ(aa[j].name, ba[j].name);
      EXPECT_EQ(aa[j].value, ba[j].value);
    }
  }
  EXPECT_EQ(loaded->truth.size(), original.truth.size());
  for (const uint64_t key : original.truth.pairs()) {
    EXPECT_TRUE(loaded->truth.IsMatch(static_cast<ProfileId>(key >> 32),
                                      static_cast<ProfileId>(key)));
  }
}

TEST(DatasetIoTest, ValuesWithCommasAndQuotesSurvive) {
  Dataset d;
  d.name = "tricky";
  d.kind = DatasetKind::kDirty;
  d.profiles.emplace_back(0, 0,
                          std::vector<Attribute>{
                              {"note", "hello, \"world\""},
                          });
  std::stringstream out;
  WriteProfilesCsv(d, out);
  const auto loaded = ReadDatasetCsv(out, nullptr, "tricky",
                                     DatasetKind::kDirty);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->profiles[0].CopyAttributes()[0].value, "hello, \"world\"");
}

TEST(DatasetIoTest, RejectsMalformedRows) {
  std::stringstream missing_fields("header\n1,0,onlythree\n");
  EXPECT_FALSE(ReadDatasetCsv(missing_fields, nullptr, "x",
                              DatasetKind::kDirty)
                   .has_value());
  std::stringstream bad_id("header\nnotanum,0,a,b\n");
  EXPECT_FALSE(
      ReadDatasetCsv(bad_id, nullptr, "x", DatasetKind::kDirty).has_value());
  std::stringstream bad_source("header\n0,7,a,b\n");
  EXPECT_FALSE(ReadDatasetCsv(bad_source, nullptr, "x", DatasetKind::kDirty)
                   .has_value());
  std::stringstream sparse_ids("header\n5,0,a,b\n");
  EXPECT_FALSE(ReadDatasetCsv(sparse_ids, nullptr, "x", DatasetKind::kDirty)
                   .has_value());
}

TEST(DatasetIoTest, RejectsInconsistentSource) {
  std::stringstream csv("header\n0,0,a,b\n0,1,c,d\n");
  EXPECT_FALSE(
      ReadDatasetCsv(csv, nullptr, "x", DatasetKind::kDirty).has_value());
}

TEST(DatasetIoTest, TruthOutOfRangeRejected) {
  std::stringstream profiles_csv("header\n0,0,a,b\n");
  std::stringstream truth_csv("header\n0,9\n");
  EXPECT_FALSE(ReadDatasetCsv(profiles_csv, &truth_csv, "x",
                              DatasetKind::kDirty)
                   .has_value());
}

TEST(DatasetIoTest, UnterminatedQuoteRejected) {
  // The open quote swallows the rest of the stream into one record,
  // which ParseCsvLine then rejects.
  std::stringstream csv("header\n0,0,a,\"unterminated\n0,0,b,c\n");
  EXPECT_FALSE(
      ReadDatasetCsv(csv, nullptr, "x", DatasetKind::kDirty).has_value());
}

TEST(DatasetIoTest, CrlfLineEndingsAccepted) {
  std::stringstream profiles_csv(
      "profile_id,source,attribute,value\r\n0,0,title,progressive er\r\n");
  std::stringstream truth_csv("a,b\r\n0,0\r\n");
  const auto loaded =
      ReadDatasetCsv(profiles_csv, &truth_csv, "x", DatasetKind::kDirty);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->profiles.size(), 1u);
  // The carriage return must not leak into the last field.
  EXPECT_EQ(loaded->profiles[0].CopyAttributes()[0].value, "progressive er");
  EXPECT_EQ(loaded->truth.size(), 1u);
}

TEST(DatasetIoTest, Utf8BomStripped) {
  std::stringstream profiles_csv(
      "\xEF\xBB\xBFprofile_id,source,attribute,value\n0,0,a,b\n");
  std::stringstream truth_csv("\xEF\xBB\xBFpa,pb\n0,0\n");
  const auto loaded =
      ReadDatasetCsv(profiles_csv, &truth_csv, "x", DatasetKind::kDirty);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->profiles.size(), 1u);
  EXPECT_EQ(loaded->truth.size(), 1u);
}

TEST(DatasetIoTest, NonDenseIdsRejected) {
  std::stringstream gap("header\n0,0,a,b\n2,0,a,b\n");
  EXPECT_FALSE(
      ReadDatasetCsv(gap, nullptr, "x", DatasetKind::kDirty).has_value());
}

TEST(DatasetIoTest, EmbeddedNewlinesRoundTrip) {
  // CsvWriter::Escape quotes fields with newlines; the reader must
  // join the physical lines back into one logical record.
  Dataset d;
  d.name = "multiline";
  d.kind = DatasetKind::kDirty;
  d.profiles.emplace_back(
      0, 0,
      std::vector<Attribute>{
          {"address", "12 Main St\nSpringfield, \"IL\""},
          {"note", "a,b\n\"c\"\nd"},
      });
  std::stringstream out;
  WriteProfilesCsv(d, out);
  const auto loaded =
      ReadDatasetCsv(out, nullptr, "multiline", DatasetKind::kDirty);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->profiles.size(), 1u);
  const std::vector<Attribute> attrs0 = loaded->profiles[0].CopyAttributes();
  ASSERT_EQ(attrs0.size(), 2u);
  EXPECT_EQ(attrs0[0].value,
            "12 Main St\nSpringfield, \"IL\"");
  EXPECT_EQ(attrs0[1].value, "a,b\n\"c\"\nd");
}

}  // namespace
}  // namespace pier
