// Tests for the extended evaluation metrics: matcher precision /
// recall / F1, TimeToPc, the matcher-quality report, and the
// simulator's quality counters.

#include <sstream>

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "eval/report.h"
#include "eval/run_result.h"
#include "similarity/matcher.h"
#include "stream/pier_adapter.h"
#include "stream/stream_simulator.h"

namespace pier {
namespace {

TEST(RunResultTest, PrecisionRecallF1Math) {
  RunResult r;
  r.total_true_matches = 10;
  r.matcher_positives = 8;
  r.matcher_true_positives = 6;
  EXPECT_DOUBLE_EQ(r.MatcherPrecision(), 0.75);
  EXPECT_DOUBLE_EQ(r.MatcherRecall(), 0.6);
  EXPECT_NEAR(r.MatcherF1(), 2 * 0.75 * 0.6 / (0.75 + 0.6), 1e-12);
}

TEST(RunResultTest, DegenerateQualityCounters) {
  RunResult r;
  EXPECT_DOUBLE_EQ(r.MatcherPrecision(), 0.0);
  EXPECT_DOUBLE_EQ(r.MatcherRecall(), 0.0);
  EXPECT_DOUBLE_EQ(r.MatcherF1(), 0.0);
}

TEST(RunResultTest, TimeToPc) {
  RunResult r;
  r.total_true_matches = 100;
  r.curve.Add({1.0, 10, 20});
  r.curve.Add({2.0, 20, 50});
  r.curve.Add({3.0, 30, 90});
  r.end_time = 3.0;
  EXPECT_DOUBLE_EQ(r.TimeToPc(0.2), 1.0);
  EXPECT_DOUBLE_EQ(r.TimeToPc(0.5), 2.0);
  EXPECT_DOUBLE_EQ(r.TimeToPc(0.9), 3.0);
  EXPECT_LT(r.TimeToPc(0.95), 0.0);  // never reached
}

TEST(RunResultTest, TimeToPcZeroTruth) {
  RunResult r;
  r.curve.Add({1.0, 10, 0});
  EXPECT_LT(r.TimeToPc(0.5), 0.0);
}

TEST(ReportTest, MatcherQualityTable) {
  RunResult r;
  r.algorithm = "ALG";
  r.total_true_matches = 4;
  r.matcher_positives = 4;
  r.matcher_true_positives = 2;
  std::ostringstream out;
  PrintMatcherQualityTable(out, {r});
  EXPECT_NE(out.str().find("ALG"), std::string::npos);
  EXPECT_NE(out.str().find("0.500"), std::string::npos);
}

TEST(SimulatorQualityTest, CountersPopulatedAndConsistent) {
  BibliographicOptions options;
  options.source0_count = 150;
  options.source1_count = 120;
  const Dataset d = GenerateBibliographic(options);

  SimulatorOptions sim_options;
  sim_options.num_increments = 10;
  sim_options.cost_mode = CostMeter::Mode::kModeled;
  const StreamSimulator sim(&d, sim_options);

  PierOptions pier_options;
  pier_options.kind = d.kind;
  PierAdapter alg(pier_options);
  const JaccardMatcher matcher(0.4);
  const RunResult r = sim.Run(alg, matcher);

  EXPECT_GT(r.matcher_positives, 0u);
  EXPECT_LE(r.matcher_true_positives, r.matcher_positives);
  EXPECT_LE(r.matcher_true_positives, r.total_true_matches);
  // The generated duplicates are similar by construction, so the
  // matcher's precision is high on this workload.
  EXPECT_GT(r.MatcherPrecision(), 0.8);
  EXPECT_GT(r.MatcherRecall(), 0.5);
  EXPECT_GT(r.MatcherF1(), 0.6);
  // TimeToPc is monotone in the target.
  const double t25 = r.TimeToPc(0.25);
  const double t50 = r.TimeToPc(0.5);
  ASSERT_GE(t25, 0.0);
  ASSERT_GE(t50, 0.0);
  EXPECT_LE(t25, t50);
}

TEST(GeneratorEdgeTest, ZeroOverlapMeansNoMatches) {
  BibliographicOptions options;
  options.source0_count = 40;
  options.source1_count = 30;
  options.overlap_fraction = 0.0;
  const Dataset d = GenerateBibliographic(options);
  EXPECT_EQ(d.truth.size(), 0u);
  EXPECT_EQ(d.profiles.size(), 70u);
}

TEST(GeneratorEdgeTest, FullOverlap) {
  MoviesOptions options;
  options.source0_count = 30;
  options.source1_count = 30;
  options.overlap_fraction = 1.0;
  const Dataset d = GenerateMovies(options);
  EXPECT_EQ(d.truth.size(), 30u);
}

TEST(GeneratorEdgeTest, CensusWithoutDuplicates) {
  CensusOptions options;
  options.num_records = 200;
  options.duplicate_entity_fraction = 0.0;
  const Dataset d = GenerateCensus(options);
  EXPECT_EQ(d.truth.size(), 0u);
  EXPECT_EQ(d.profiles.size(), 200u);
}

}  // namespace
}  // namespace pier
