// Integration tests for the extension systems on generated data:
// PSN variants, DySNI, and the BATCH-MB meta-blocking configuration
// run end-to-end through the simulator and reach sane quality; the
// bounded priority queue also gets a differential test under the
// I-PBS composite comparator.

#include <set>

#include <gtest/gtest.h>

#include "baseline/batch_er.h"
#include "baseline/dysni.h"
#include "baseline/psn.h"
#include "datagen/generators.h"
#include "model/comparison.h"
#include "similarity/matcher.h"
#include "stream/stream_simulator.h"
#include "util/bounded_priority_queue.h"
#include "util/rng.h"

namespace pier {
namespace {

Dataset SmallBib() {
  BibliographicOptions options;
  options.source0_count = 250;
  options.source1_count = 220;
  options.seed = 31;
  return GenerateBibliographic(options);
}

SimulatorOptions StaticSim() {
  SimulatorOptions options;
  options.num_increments = 10;
  options.increments_per_second = 0.0;
  options.cost_mode = CostMeter::Mode::kModeled;
  return options;
}

TEST(ExtensionIntegrationTest, GsPsnReachesReasonablePc) {
  const Dataset d = SmallBib();
  const StreamSimulator sim(&d, StaticSim());
  Psn psn(d.kind, BlockingOptions{}, PsnVariant::kGlobal,
          BaselineMode::kStatic, /*max_window=*/6);
  const JaccardMatcher matcher(0.35);
  const RunResult r = sim.Run(psn, matcher);
  EXPECT_GT(r.FinalPc(), 0.5);
  EXPECT_GT(r.comparisons_executed, 0u);
}

TEST(ExtensionIntegrationTest, LsPsnEmitsEarlyWindowsFirst) {
  const Dataset d = SmallBib();
  const StreamSimulator sim(&d, StaticSim());
  Psn psn(d.kind, BlockingOptions{}, PsnVariant::kLocal,
          BaselineMode::kStatic, /*max_window=*/6);
  const JaccardMatcher matcher(0.35);
  const RunResult r = sim.Run(psn, matcher);
  EXPECT_GT(r.FinalPc(), 0.5);
  // Progressive-ish: the first third of comparisons finds more than a
  // third of the matches.
  const uint64_t early =
      r.curve.MatchesAtComparisons(r.comparisons_executed / 3);
  EXPECT_GT(early, r.matches_found / 3);
}

TEST(ExtensionIntegrationTest, DySniRealTimeQuality) {
  const Dataset d = SmallBib();
  SimulatorOptions options = StaticSim();
  options.num_increments = 40;
  const StreamSimulator sim(&d, options);
  DySni dysni(d.kind, BlockingOptions{}, /*window=*/2);
  const JaccardMatcher matcher(0.35);
  const RunResult r = sim.Run(dysni, matcher);
  EXPECT_GT(r.FinalPc(), 0.6);
}

TEST(ExtensionIntegrationTest, BatchMbUsesFarFewerComparisons) {
  const Dataset d = SmallBib();
  const StreamSimulator sim(&d, StaticSim());
  const JaccardMatcher matcher(0.35);

  BatchEr plain(d.kind, BlockingOptions{});
  const RunResult full = sim.Run(plain, matcher);

  BatchEr cleaned(d.kind, BlockingOptions{}, 256, PruningAlgorithm::kWnp);
  const RunResult pruned = sim.Run(cleaned, matcher);

  EXPECT_LT(pruned.comparisons_executed, full.comparisons_executed);
  // Meta-blocking keeps most of the recall at a fraction of the cost.
  EXPECT_GT(pruned.FinalPc(), full.FinalPc() - 0.2);
}

TEST(BoundedPqCompositeComparatorTest, DifferentialAgainstSortedOracle) {
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    BoundedPriorityQueue<Comparison, CompareByBlockThenWeight> queue(64);
    std::vector<Comparison> inserted;
    for (int i = 0; i < 200; ++i) {
      Comparison c(static_cast<ProfileId>(rng.UniformInt(0, 500)),
                   static_cast<ProfileId>(rng.UniformInt(501, 1000)),
                   static_cast<double>(rng.UniformInt(0, 9)),
                   static_cast<uint32_t>(rng.UniformInt(2, 40)));
      queue.PushBounded(c);
      inserted.push_back(c);
    }
    // Oracle: the 64 Less-greatest elements, served greatest-first.
    const CompareByBlockThenWeight less;
    std::sort(inserted.begin(), inserted.end(),
              [&less](const Comparison& a, const Comparison& b) {
                return less(b, a);
              });
    inserted.resize(std::min<size_t>(64, inserted.size()));
    size_t index = 0;
    while (!queue.empty()) {
      const Comparison got = queue.PopMax();
      ASSERT_LT(index, inserted.size());
      EXPECT_EQ(got.Key(), inserted[index].Key())
          << "trial " << trial << " position " << index;
      ++index;
    }
    EXPECT_EQ(index, inserted.size());
  }
}

}  // namespace
}  // namespace pier
