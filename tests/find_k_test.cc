// Tests for the adaptive findK() controller (Algorithm 1): K grows
// with cheap matchers / slow streams and shrinks with expensive
// matchers / fast streams, within configured bounds.

#include <gtest/gtest.h>

#include "core/find_k.h"

namespace pier {
namespace {

TEST(AdaptiveKTest, InitialKBeforeMeasurements) {
  AdaptiveKOptions options;
  options.initial_k = 77;
  AdaptiveK k(options);
  EXPECT_EQ(k.FindK(), 77u);
}

TEST(AdaptiveKTest, StaysInitialWithoutArrivals) {
  AdaptiveKOptions options;
  options.initial_k = 50;
  AdaptiveK k(options);
  k.OnBatchProcessed(100, 0.01);
  EXPECT_EQ(k.FindK(), 50u);  // no interarrival signal yet
}

TEST(AdaptiveKTest, FastMatcherGrowsK) {
  AdaptiveKOptions options;
  options.initial_k = 10;
  options.max_k = 100000;
  AdaptiveK k(options);
  // Interarrival 1 s; matcher processes a comparison in 1 us.
  for (int i = 0; i < 10; ++i) k.OnArrival(static_cast<double>(i));
  for (int i = 0; i < 10; ++i) k.OnBatchProcessed(1000, 0.001);
  size_t prev = k.FindK();
  for (int i = 0; i < 50; ++i) {
    const size_t now = k.FindK();
    EXPECT_GE(now, prev);
    prev = now;
  }
  // Converges toward 0.5 s / 1 us = 500k, clamped to max.
  EXPECT_EQ(prev, options.max_k);
}

TEST(AdaptiveKTest, SlowMatcherShrinksK) {
  AdaptiveKOptions options;
  options.initial_k = 1000;
  options.min_k = 4;
  AdaptiveK k(options);
  // Interarrival 10 ms; each comparison costs 1 ms.
  for (int i = 0; i < 10; ++i) k.OnArrival(0.01 * i);
  for (int i = 0; i < 10; ++i) k.OnBatchProcessed(10, 0.01);
  for (int i = 0; i < 100; ++i) k.FindK();
  // Target = 0.01 * 0.5 / 0.001 = 5 comparisons.
  const size_t final_k = k.FindK();
  EXPECT_LE(final_k, 8u);
  EXPECT_GE(final_k, options.min_k);
}

TEST(AdaptiveKTest, TracksTargetProportionally) {
  AdaptiveKOptions options;
  options.initial_k = 64;
  options.min_k = 1;
  options.max_k = 1u << 20;
  AdaptiveK k(options);
  for (int i = 0; i < 8; ++i) k.OnArrival(0.1 * i);       // 100 ms
  for (int i = 0; i < 8; ++i) k.OnBatchProcessed(1000, 0.01);  // 10 us/cmp
  for (int i = 0; i < 200; ++i) k.FindK();
  // Target = 0.1 * 0.5 / 1e-5 = 5000.
  EXPECT_NEAR(static_cast<double>(k.FindK()), 5000.0, 500.0);
}

TEST(AdaptiveKTest, ZeroInterarrivalIgnored) {
  AdaptiveK k;
  k.OnArrival(1.0);
  k.OnArrival(1.0);  // same instant: no interarrival recorded
  EXPECT_DOUBLE_EQ(k.MeanInterarrival(), 0.0);
}

TEST(AdaptiveKTest, EmptyBatchIgnored) {
  AdaptiveK k;
  k.OnBatchProcessed(0, 1.0);
  EXPECT_DOUBLE_EQ(k.MeanCostPerComparison(), 0.0);
}

TEST(AdaptiveKTest, WindowForgetsOldMeasurements) {
  AdaptiveKOptions options;
  options.window = 4;
  AdaptiveK k(options);
  k.OnArrival(0.0);
  k.OnArrival(10.0);  // one slow gap
  for (int i = 1; i <= 4; ++i) k.OnArrival(10.0 + 0.1 * i);
  // The 10 s gap has been evicted from the window of 4.
  EXPECT_NEAR(k.MeanInterarrival(), 0.1, 1e-9);
}

TEST(AdaptiveKTest, RejectsInvalidOptions) {
  AdaptiveKOptions options;
  options.min_k = 0;
  EXPECT_DEATH(AdaptiveK{options}, "PIER_CHECK");
}

TEST(AdaptiveKTest, AdaptsWhenRateChanges) {
  AdaptiveKOptions options;
  options.initial_k = 100;
  AdaptiveK k(options);
  // Phase 1: slow stream (1 s interarrival), cheap matcher.
  double t = 0.0;
  for (int i = 0; i < 8; ++i) k.OnArrival(t += 1.0);
  for (int i = 0; i < 8; ++i) k.OnBatchProcessed(1000, 0.001);
  for (int i = 0; i < 100; ++i) k.FindK();
  const size_t k_slow = k.FindK();
  // Phase 2: stream speeds up 100x.
  for (int i = 0; i < 8; ++i) k.OnArrival(t += 0.01);
  for (int i = 0; i < 100; ++i) k.FindK();
  const size_t k_fast = k.FindK();
  EXPECT_LT(k_fast, k_slow);
}

}  // namespace
}  // namespace pier
