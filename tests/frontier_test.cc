// Tests for the src/frontier/ prioritizer family (DESIGN.md section
// 10): the strategy registry (KnownAlgorithmNames / ParseAlgorithmName
// round trips), SPER-SK's fixed-seed determinism contract -- identical
// emission at 1/2/8 execution threads, seed-sensitive otherwise --
// canonical snapshot bytes for both strategies, FB-PCS's verdict
// feedback (block promotion through the hot queue), and the
// `frontier.*` metrics surface.

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/strategy_selector.h"
#include "datagen/generators.h"
#include "obs/metrics.h"
#include "persist/snapshot.h"
#include "similarity/matcher.h"
#include "stream/pier_adapter.h"
#include "stream/stream_simulator.h"

namespace pier {
namespace {

// ---------------------------------------------------------------------------
// Strategy registry
// ---------------------------------------------------------------------------

std::vector<std::string> SplitNames(const std::string& csv) {
  std::vector<std::string> names;
  size_t pos = 0;
  while (pos < csv.size()) {
    const size_t end = csv.find(", ", pos);
    if (end == std::string::npos) {
      names.push_back(csv.substr(pos));
      break;
    }
    names.push_back(csv.substr(pos, end - pos));
    pos = end + 2;
  }
  return names;
}

TEST(FrontierRegistryTest, EveryKnownNameParsesAndRoundTrips) {
  const std::vector<std::string> names = SplitNames(KnownAlgorithmNames());
  EXPECT_EQ(names.size(), 5u);
  for (const std::string& name : names) {
    PierStrategy strategy;
    ASSERT_TRUE(ParseAlgorithmName(name, &strategy)) << name;
    EXPECT_EQ(name, ToString(strategy));
    // Case-insensitive: the CLI documents lowercase spellings.
    std::string lower = name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    PierStrategy from_lower;
    ASSERT_TRUE(ParseAlgorithmName(lower, &from_lower)) << lower;
    EXPECT_EQ(from_lower, strategy);
  }
}

TEST(FrontierRegistryTest, FrontierStrategiesAreRegistered) {
  PierStrategy strategy;
  ASSERT_TRUE(ParseAlgorithmName("sper-sk", &strategy));
  EXPECT_EQ(strategy, PierStrategy::kSperSk);
  ASSERT_TRUE(ParseAlgorithmName("FB-PCS", &strategy));
  EXPECT_EQ(strategy, PierStrategy::kFbPcs);
}

TEST(FrontierRegistryTest, UnknownNamesRejected) {
  PierStrategy strategy = PierStrategy::kIPcs;
  EXPECT_FALSE(ParseAlgorithmName("", &strategy));
  EXPECT_FALSE(ParseAlgorithmName("bogus", &strategy));
  EXPECT_FALSE(ParseAlgorithmName("I-PXS", &strategy));
  EXPECT_FALSE(ParseAlgorithmName("sper", &strategy));
  EXPECT_EQ(strategy, PierStrategy::kIPcs);  // untouched on failure
}

// ---------------------------------------------------------------------------
// SPER-SK determinism
// ---------------------------------------------------------------------------

Dataset SmallCleanClean() {
  BibliographicOptions options;
  options.source0_count = 150;
  options.source1_count = 130;
  options.seed = 5;
  return GenerateBibliographic(options);
}

// Power-law block sizes push profiles past the exact-enumeration
// budget, so the sampling path (and hence the RNG) actually engages.
Dataset SkewedCleanClean() {
  DbpediaOptions options;
  options.source0_count = 250;
  options.source1_count = 250;
  options.vocabulary_size = 400;
  options.seed = 13;
  return GenerateDbpedia(options);
}

PierOptions SperSkOptions(DatasetKind kind, uint64_t seed) {
  PierOptions options;
  options.kind = kind;
  options.strategy = PierStrategy::kSperSk;
  options.prioritizer.frontier_seed = seed;
  options.exact_executed_filter = true;
  return options;
}

// Streams the dataset through a SPER-SK pipeline in 8 increments,
// draining one batch per increment and everything at the end; returns
// the emitted pair sequence (the strategy's externally visible order).
std::vector<std::pair<ProfileId, ProfileId>> EmissionSequence(
    const Dataset& dataset, uint64_t seed) {
  PierPipeline pipeline(SperSkOptions(dataset.kind, seed));
  std::vector<std::pair<ProfileId, ProfileId>> sequence;
  const auto record = [&](const std::vector<Comparison>& batch) {
    for (const Comparison& c : batch) sequence.emplace_back(c.x, c.y);
  };
  for (const Increment& inc : SplitIntoIncrements(dataset, 8)) {
    std::vector<EntityProfile> chunk(
        dataset.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        dataset.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    pipeline.Ingest(std::move(chunk));
    record(pipeline.EmitBatch(64, nullptr));
  }
  pipeline.NotifyStreamEnd();
  for (;;) {
    const std::vector<Comparison> batch = pipeline.EmitBatch(256, nullptr);
    if (batch.empty()) break;
    record(batch);
  }
  return sequence;
}

TEST(SperSkTest, SameSeedSameEmissionSequence) {
  const Dataset dataset = SkewedCleanClean();
  const auto a = EmissionSequence(dataset, 42);
  const auto b = EmissionSequence(dataset, 42);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(SperSkTest, DifferentSeedsDiverge) {
  const Dataset dataset = SkewedCleanClean();
  const auto a = EmissionSequence(dataset, 42);
  const auto b = EmissionSequence(dataset, 7);
  EXPECT_NE(a, b);
}

void ExpectSameRun(const RunResult& expected, const RunResult& actual,
                   const std::string& context) {
  EXPECT_EQ(expected.comparisons_executed, actual.comparisons_executed)
      << context;
  EXPECT_EQ(expected.matches_found, actual.matches_found) << context;
  EXPECT_EQ(expected.matcher_positives, actual.matcher_positives) << context;
  ASSERT_EQ(expected.curve.points().size(), actual.curve.points().size())
      << context;
  for (size_t i = 0; i < expected.curve.points().size(); ++i) {
    const CurvePoint& e = expected.curve.points()[i];
    const CurvePoint& a = actual.curve.points()[i];
    EXPECT_EQ(e.time, a.time) << context << " point " << i;
    EXPECT_EQ(e.comparisons, a.comparisons) << context << " point " << i;
    EXPECT_EQ(e.matches_found, a.matches_found) << context << " point " << i;
  }
}

TEST(SperSkTest, FixedSeedDeterministicAcrossExecutionThreads) {
  // The determinism contract (PrioritizerOptions::frontier_seed): same
  // seed + same increments => identical curve at every execution
  // thread count, under the modeled cost meter.
  const Dataset dataset = SmallCleanClean();
  const auto matcher = MakeMatcher("JS", 0.5);
  RunResult baseline;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SimulatorOptions sim_options;
    sim_options.num_increments = 10;
    sim_options.cost_mode = CostMeter::Mode::kModeled;
    sim_options.curve_granularity = 1;
    sim_options.execution_threads = threads;
    const StreamSimulator simulator(&dataset, sim_options);
    PierOptions options;
    options.kind = dataset.kind;
    options.strategy = PierStrategy::kSperSk;
    PierAdapter algorithm(options);
    const RunResult result = simulator.Run(algorithm, *matcher);
    EXPECT_GT(result.comparisons_executed, 0u);
    if (threads == 1) {
      baseline = result;
    } else {
      ExpectSameRun(baseline, result,
                    "threads=" + std::to_string(threads));
    }
  }
}

// ---------------------------------------------------------------------------
// Canonical snapshot bytes
// ---------------------------------------------------------------------------

std::string SnapshotBytes(const PierPipeline& pipeline) {
  persist::SnapshotBuilder builder;
  pipeline.Snapshot(builder);
  return builder.Bytes();
}

void CheckCanonicalSnapshot(PierStrategy strategy) {
  SCOPED_TRACE(ToString(strategy));
  const Dataset dataset = SmallCleanClean();
  PierOptions options;
  options.kind = dataset.kind;
  options.strategy = strategy;
  PierPipeline pipeline(options);
  const JaccardMatcher matcher(0.5);

  // Mid-stream state: half the profiles ingested, one batch drained,
  // verdicts fed back (populates FB-PCS's posterior tables and
  // advances SPER-SK's RNG).
  std::vector<EntityProfile> half(
      dataset.profiles.begin(),
      dataset.profiles.begin() +
          static_cast<ptrdiff_t>(dataset.profiles.size() / 2));
  pipeline.Ingest(std::move(half));
  const std::vector<Comparison> batch = pipeline.EmitBatch(200, nullptr);
  ASSERT_FALSE(batch.empty());
  for (const Comparison& c : batch) {
    pipeline.RecordVerdict(c.x, c.y,
                           matcher.Matches(pipeline.profiles().Get(c.x),
                                           pipeline.profiles().Get(c.y)));
  }

  // Snapshot is pure: two calls produce identical bytes.
  const std::string bytes = SnapshotBytes(pipeline);
  EXPECT_EQ(SnapshotBytes(pipeline), bytes);

  // Restore re-serializes canonically (byte-identical)...
  persist::SnapshotReader reader;
  std::string error;
  std::istringstream in(bytes);
  ASSERT_TRUE(reader.Parse(in, &error)) << error;
  PierPipeline restored(options);
  ASSERT_TRUE(restored.Restore(reader, &error)) << error;
  EXPECT_EQ(SnapshotBytes(restored), bytes);

  // ...and continues with the exact emission stream of the original.
  for (int round = 0; round < 4; ++round) {
    const std::vector<Comparison> expected = pipeline.EmitBatch(64, nullptr);
    const std::vector<Comparison> actual = restored.EmitBatch(64, nullptr);
    ASSERT_EQ(expected.size(), actual.size()) << "round " << round;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].x, actual[i].x) << "round " << round;
      EXPECT_EQ(expected[i].y, actual[i].y) << "round " << round;
    }
  }
}

TEST(FrontierSnapshotTest, SperSkCanonicalBytes) {
  CheckCanonicalSnapshot(PierStrategy::kSperSk);
}

TEST(FrontierSnapshotTest, FbPcsCanonicalBytes) {
  CheckCanonicalSnapshot(PierStrategy::kFbPcs);
}

// ---------------------------------------------------------------------------
// FB-PCS verdict feedback
// ---------------------------------------------------------------------------

TEST(FbPcsTest, VerdictFeedbackPromotesHotBlock) {
  obs::MetricsRegistry registry;
  PierOptions options;
  options.kind = DatasetKind::kDirty;
  options.strategy = PierStrategy::kFbPcs;
  options.metrics = &registry;
  PierPipeline pipeline(options);

  // One hot block: 8 profiles sharing token "hub". Plus noise pairs
  // sharing "noise" that will report non-matches, keeping the global
  // prior low so the hub posterior clears the promotion threshold.
  std::vector<EntityProfile> profiles;
  for (ProfileId id = 0; id < 8; ++id) {
    profiles.emplace_back(
        id, 0, std::vector<Attribute>{{"n", "hub core" + std::to_string(id)}});
  }
  for (ProfileId id = 8; id < 24; ++id) {
    profiles.emplace_back(
        id, 0,
        std::vector<Attribute>{{"n", "noise fill" + std::to_string(id)}});
  }
  pipeline.Ingest(std::move(profiles));

  // 40 negative verdicts over noise pairs, then positives on hub pairs.
  size_t negatives = 0;
  for (ProfileId a = 8; a < 24 && negatives < 40; ++a) {
    for (ProfileId b = a + 1; b < 24 && negatives < 40; ++b) {
      pipeline.RecordVerdict(a, b, false);
      ++negatives;
    }
  }
  EXPECT_EQ(registry.GetCounter("frontier.blocks_promoted")->Value(), 0u);
  size_t positives = 0;
  for (ProfileId a = 0; a < 8 && positives < 10; ++a) {
    for (ProfileId b = a + 1; b < 8 && positives < 10; ++b) {
      pipeline.RecordVerdict(a, b, true);
      ++positives;
    }
  }
  EXPECT_EQ(registry.GetCounter("frontier.feedback_verdicts")->Value(),
            negatives + positives);
  EXPECT_GE(registry.GetCounter("frontier.blocks_promoted")->Value(), 1u);

  // The next prioritizer update serves the promoted block wholesale.
  pipeline.Tick();
  EXPECT_GT(registry.GetCounter("frontier.hot_pairs")->Value(), 0u);
}

TEST(SperSkTest, MetricsRegistered) {
  obs::MetricsRegistry registry;
  const Dataset dataset = SkewedCleanClean();
  PierOptions options = SperSkOptions(dataset.kind, 42);
  options.metrics = &registry;
  PierPipeline pipeline(options);
  std::vector<EntityProfile> profiles = dataset.profiles;
  pipeline.Ingest(std::move(profiles));
  pipeline.NotifyStreamEnd();
  while (!pipeline.EmitBatch(256, nullptr).empty()) {
  }
  // The skewed dataset exercises both the sampling path and the exact
  // path for small neighbourhoods.
  EXPECT_GT(registry.GetCounter("frontier.samples_accepted")->Value(), 0u);
  EXPECT_GT(registry.GetCounter("frontier.samples_rejected")->Value(), 0u);
  EXPECT_GT(registry.GetCounter("frontier.exact_profiles")->Value(), 0u);
}

}  // namespace
}  // namespace pier
