// End-to-end integration tests asserting the paper's comparative
// properties (Definition 3) on small generated datasets with modeled
// (deterministic) costs:
//   * improved early quality of PIER vs. batch ER,
//   * comparable eventual quality,
//   * globality (cross-increment matches found),
//   * failure modes of the straightforward progressive adaptations,
//   * I-BASE stagnation on fast streams vs. adaptive PIER.

#include <gtest/gtest.h>

#include "baseline/batch_er.h"
#include "baseline/i_base.h"
#include "baseline/pbs.h"
#include "baseline/pps.h"
#include "baseline/pps_local.h"
#include "datagen/generators.h"
#include "similarity/matcher.h"
#include "stream/pier_adapter.h"
#include "stream/stream_simulator.h"

namespace pier {
namespace {

Dataset SmallMovies() {
  MoviesOptions options;
  options.source0_count = 400;
  options.source1_count = 350;
  options.seed = 21;
  return GenerateMovies(options);
}

Dataset SmallCensus() {
  CensusOptions options;
  options.num_records = 800;
  options.seed = 22;
  return GenerateCensus(options);
}

SimulatorOptions Modeled(size_t increments, double rate,
                         double budget = 1e9) {
  SimulatorOptions options;
  options.num_increments = increments;
  options.increments_per_second = rate;
  options.time_budget_s = budget;
  options.cost_mode = CostMeter::Mode::kModeled;
  return options;
}

PierOptions PierFor(const Dataset& d, PierStrategy strategy) {
  PierOptions options;
  options.kind = d.kind;
  options.strategy = strategy;
  return options;
}

RunResult RunPier(const Dataset& d, PierStrategy strategy,
                  const SimulatorOptions& sim_options,
                  const Matcher& matcher) {
  StreamSimulator sim(&d, sim_options);
  PierAdapter alg(PierFor(d, strategy));
  return sim.Run(alg, matcher);
}

class StrategyIntegrationTest
    : public ::testing::TestWithParam<PierStrategy> {};

TEST_P(StrategyIntegrationTest, HighEventualQualityOnCleanClean) {
  const Dataset d = SmallMovies();
  const JaccardMatcher matcher(0.3);
  const RunResult r = RunPier(d, GetParam(), Modeled(20, 0.0), matcher);
  EXPECT_GT(r.FinalPc(), 0.75) << r.algorithm;
}

TEST_P(StrategyIntegrationTest, HighEventualQualityOnDirty) {
  const Dataset d = SmallCensus();
  const JaccardMatcher matcher(0.3);
  const RunResult r = RunPier(d, GetParam(), Modeled(20, 0.0), matcher);
  EXPECT_GT(r.FinalPc(), 0.7) << r.algorithm;
}

TEST_P(StrategyIntegrationTest, GlobalityFindsCrossIncrementMatches) {
  // With many increments, most true pairs straddle increments; a high
  // final PC therefore implies cross-increment comparisons happened.
  const Dataset d = SmallMovies();
  const JaccardMatcher matcher(0.3);
  const RunResult r = RunPier(d, GetParam(), Modeled(50, 0.0), matcher);
  EXPECT_GT(r.FinalPc(), 0.7) << r.algorithm;
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyIntegrationTest,
                         ::testing::Values(PierStrategy::kIPcs,
                                           PierStrategy::kIPbs,
                                           PierStrategy::kIPes),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case PierStrategy::kIPcs:
                               return "IPcs";
                             case PierStrategy::kIPbs:
                               return "IPbs";
                             case PierStrategy::kIPes:
                               return "IPes";
                           }
                           return "Unknown";
                         });

TEST(EarlyQualityTest, IPesBeatsBatchMidRun) {
  const Dataset d = SmallMovies();
  const JaccardMatcher matcher(0.3);
  const SimulatorOptions options = Modeled(20, 0.0);

  const RunResult pes = RunPier(d, PierStrategy::kIPes, options, matcher);
  StreamSimulator sim(&d, options);
  BatchEr batch(d.kind, BlockingOptions{});
  const RunResult bat = sim.Run(batch, matcher);

  // Compare at half of batch's completion time: progressive behaviour
  // means I-PES has found clearly more matches by then.
  const double t = bat.end_time / 2.0;
  EXPECT_GT(pes.curve.MatchesAtTime(t),
            bat.curve.MatchesAtTime(t));
  // And eventual quality is comparable (PIER prunes, so allow a gap).
  EXPECT_GT(pes.FinalPc(), bat.FinalPc() - 0.15);
}

TEST(EarlyQualityTest, IPesFrontLoadsMatchesPerComparison) {
  // PC per executed comparison: the first 20% of I-PES's comparisons
  // find a disproportionate share of its matches.
  const Dataset d = SmallMovies();
  const JaccardMatcher matcher(0.3);
  const RunResult r =
      RunPier(d, PierStrategy::kIPes, Modeled(20, 0.0), matcher);
  const uint64_t early =
      r.curve.MatchesAtComparisons(r.comparisons_executed / 5);
  EXPECT_GT(early, r.matches_found / 2);
}

TEST(AdaptationFailureTest, PpsLocalBarelyFindsMatches) {
  const Dataset d = SmallMovies();
  const JaccardMatcher matcher(0.3);
  StreamSimulator sim(&d, Modeled(50, 0.0));
  PpsLocal local(d.kind, BlockingOptions{});
  const RunResult r = sim.Run(local, matcher);
  const RunResult pes =
      RunPier(d, PierStrategy::kIPes, Modeled(50, 0.0), matcher);
  EXPECT_LT(r.FinalPc(), 0.25);
  EXPECT_LT(r.FinalPc(), pes.FinalPc() / 2.0);
}

TEST(AdaptationFailureTest, PpsGlobalPaysReassessmentOverhead) {
  // On a fast stream with a budget, PPS-GLOBAL's per-increment full
  // re-initialization leaves it behind I-PES in early quality.
  const Dataset d = SmallMovies();
  const JaccardMatcher matcher(0.3);
  const double budget = 0.5;
  const SimulatorOptions options = Modeled(50, 200.0, budget);

  StreamSimulator sim(&d, options);
  Pps pps_global(d.kind, BlockingOptions{},
                 BaselineMode::kGlobalIncremental);
  const RunResult glob = sim.Run(pps_global, matcher);
  const RunResult pes = RunPier(d, PierStrategy::kIPes, options, matcher);
  EXPECT_GT(pes.matches_found, glob.matches_found);
}

TEST(IncrementalComparisonTest, IPesEarlyQualityBeatsIBaseOnFastStream) {
  const Dataset d = SmallCensus();
  const EditDistanceMatcher matcher(0.75);
  const double budget = 0.8;
  const SimulatorOptions options = Modeled(40, 100.0, budget);

  StreamSimulator sim(&d, options);
  IBase ibase(d.kind, BlockingOptions{});
  const RunResult base = sim.Run(ibase, matcher);
  const RunResult pes = RunPier(d, PierStrategy::kIPes, options, matcher);

  const double auc_pes = pes.curve.AucOverTime(budget, d.truth.size());
  const double auc_base = base.curve.AucOverTime(budget, d.truth.size());
  EXPECT_GT(auc_pes, auc_base);
}

TEST(IncrementalComparisonTest, SlowStreamBothKeepUp) {
  const Dataset d = SmallCensus();
  const JaccardMatcher matcher(0.3);
  const SimulatorOptions options = Modeled(10, 2.0);

  StreamSimulator sim(&d, options);
  IBase ibase(d.kind, BlockingOptions{});
  const RunResult base = sim.Run(ibase, matcher);
  const RunResult pes = RunPier(d, PierStrategy::kIPes, options, matcher);
  // Slow stream: both consume the stream at its nominal pace.
  ASSERT_GE(base.stream_consumed_at, 0.0);
  ASSERT_GE(pes.stream_consumed_at, 0.0);
  EXPECT_LT(base.stream_consumed_at, 6.0);
  EXPECT_LT(pes.stream_consumed_at, 6.0);
}

TEST(ProgressiveBaselineTest, PbsAndPpsReachHighPcStatically) {
  const Dataset d = SmallMovies();
  const JaccardMatcher matcher(0.3);
  const SimulatorOptions options = Modeled(1, 0.0);

  StreamSimulator sim_pbs(&d, options);
  Pbs pbs(d.kind, BlockingOptions{});
  const RunResult r_pbs = sim_pbs.Run(pbs, matcher);
  EXPECT_GT(r_pbs.FinalPc(), 0.8);

  StreamSimulator sim_pps(&d, options);
  Pps pps(d.kind, BlockingOptions{});
  const RunResult r_pps = sim_pps.Run(pps, matcher);
  EXPECT_GT(r_pps.FinalPc(), 0.6);  // bounded by top-k per profile
}

TEST(WeightingAblationTest, AllSchemesReachReasonablePc) {
  const Dataset d = SmallMovies();
  const JaccardMatcher matcher(0.3);
  for (const WeightingScheme scheme :
       {WeightingScheme::kCbs, WeightingScheme::kEcbs, WeightingScheme::kJs,
        WeightingScheme::kArcs}) {
    PierOptions options = PierFor(d, PierStrategy::kIPes);
    options.prioritizer.scheme = scheme;
    StreamSimulator sim(&d, Modeled(20, 0.0));
    PierAdapter alg(options);
    const JaccardMatcher m(0.3);
    const RunResult r = sim.Run(alg, m);
    EXPECT_GT(r.FinalPc(), 0.6) << ToString(scheme);
  }
}

}  // namespace
}  // namespace pier
