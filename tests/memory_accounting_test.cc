// Cross-checks the ApproxMemoryBytes gauges against real allocation
// counts. This binary replaces the global allocation functions with
// counting wrappers (which is why these tests live in their own
// executable), so the tests can compare what a component *claims* to
// hold against the bytes it actually obtained from the heap. The
// gauges feed the shard memory budgeter and the paper-scale bench's
// RSS model; if they silently go stale against the real layout --
// exactly what happened when arenas first took over payload storage --
// these tests are the tripwire.

#include <malloc.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/arena.h"
#include "model/entity_profile.h"
#include "model/profile_store.h"
#include "model/token_dictionary.h"
#include "text/tokenizer.h"

namespace {

// Live heap bytes as glibc sees them (malloc_usable_size includes the
// allocator's size-class rounding, so the count is what the process
// actually consumes, not what was requested).
std::atomic<size_t> g_live_bytes{0};
std::atomic<size_t> g_alloc_calls{0};

void* CountedAlloc(size_t n) {
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  g_live_bytes.fetch_add(malloc_usable_size(p), std::memory_order_relaxed);
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void* CountedAlignedAlloc(size_t n, size_t align) {
  void* p = std::aligned_alloc(align, (n + align - 1) / align * align);
  if (p == nullptr) throw std::bad_alloc();
  g_live_bytes.fetch_add(malloc_usable_size(p), std::memory_order_relaxed);
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void CountedFree(void* p) noexcept {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(size_t n) { return CountedAlloc(n); }
void* operator new[](size_t n) { return CountedAlloc(n); }
void* operator new(size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<size_t>(a));
}
void* operator new[](size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<size_t>(a));
}
void operator delete(void* p) noexcept { CountedFree(p); }
void operator delete[](void* p) noexcept { CountedFree(p); }
void operator delete(void* p, size_t) noexcept { CountedFree(p); }
void operator delete[](void* p, size_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { CountedFree(p); }

namespace pier {
namespace {

size_t LiveBytes() { return g_live_bytes.load(std::memory_order_relaxed); }

EntityProfile MakeProfile(ProfileId id, int payload_tokens) {
  EntityProfile p;
  p.id = id;
  p.source = 0;
  std::vector<Attribute> attrs;
  std::string title;
  for (int t = 0; t < payload_tokens; ++t) {
    title += "tok" + std::to_string((id * 31 + t) % 977) + " ";
  }
  attrs.push_back({"title", title});
  attrs.push_back({"year", std::to_string(1900 + id % 120)});
  p.set_attributes(std::move(attrs));
  return p;
}

TEST(CountingAllocatorTest, ArenaFootprintMatchesAllocatedBytes) {
  const size_t before = LiveBytes();
  {
    TokenArena arena;
    std::vector<TokenId> span(1000);
    for (int i = 0; i < 300; ++i) {
      arena.Append(span.data(), span.size());
    }
    // The arena's self-report vs real heap growth. `span` and the
    // chunk directory vector are the only allocations the gauge does
    // not see byte-exactly (it counts directory capacity at element
    // size, not malloc's rounding), so the two must agree within a
    // small envelope rather than exactly.
    const size_t claimed = arena.ApproxMemoryBytes();
    const size_t actual = LiveBytes() - before - span.capacity() * sizeof(TokenId);
    EXPECT_GE(claimed, actual * 9 / 10);
    EXPECT_LE(claimed, actual * 11 / 10);
    // 300k items at 64Ki per chunk: the gauge must track every chunk.
    EXPECT_GE(arena.num_chunks(), 4u);
  }
  EXPECT_EQ(LiveBytes(), before);  // no leaks, all chunks returned
}

TEST(CountingAllocatorTest, ProfileStoreFootprintMatchesAllocatedBytes) {
  const size_t before = LiveBytes();
  {
    ProfileStore store;
    Tokenizer tokenizer;
    TokenDictionary dict;
    const size_t dict_before = dict.ApproxMemoryBytes();
    for (ProfileId id = 0; id < 3000; ++id) {
      EntityProfile p = MakeProfile(id, 24);
      tokenizer.TokenizeProfile(p, dict);
      store.Add(std::move(p));
    }
    // Tombstone + replace so abandoned spans are part of the picture:
    // abandoned arena memory is still allocated and must stay counted.
    for (ProfileId id = 100; id < 200; ++id) store.Remove(id);
    for (ProfileId id = 150; id < 250; ++id) {
      EntityProfile p = MakeProfile(id, 40);
      tokenizer.TokenizeProfile(p, dict);
      store.Replace(std::move(p));
    }

    const size_t claimed = store.ApproxMemoryBytes() +
                           (dict.ApproxMemoryBytes() - dict_before);
    const size_t actual = LiveBytes() - before;
    // The store gauge deliberately omits only its small Add-path
    // scratch string; everything else (chunk directory, profile
    // chunks, sidecars, both arenas, the dictionary's table/arena)
    // must reconcile with the real allocation count.
    EXPECT_GE(claimed, actual * 8 / 10)
        << "claimed=" << claimed << " actual=" << actual;
    EXPECT_LE(claimed, actual * 11 / 10)
        << "claimed=" << claimed << " actual=" << actual;
    EXPECT_GT(g_alloc_calls.load(), 0u);
  }
  // Everything sized with the store must come back. A few KB of
  // residual is process-wide lazy init (locale/metrics singletons
  // touched for the first time inside the region), not a store leak.
  EXPECT_LE(LiveBytes() - before, size_t{65536});
}

}  // namespace
}  // namespace pier
