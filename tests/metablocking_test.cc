// Tests for src/metablocking: weighting schemes, I-WNP pruning, and
// the batch blocking graph used by PPS.

#include <algorithm>
#include <gtest/gtest.h>

#include "metablocking/blocking_graph.h"
#include "metablocking/i_wnp.h"
#include "metablocking/weighting.h"

namespace pier {
namespace {

// A small fixture: 4 dirty profiles over tokens {0,1,2}.
//   p0: {0, 1}   p1: {0, 1}   p2: {1, 2}   p3: {2}
class WeightingFixture : public ::testing::Test {
 protected:
  WeightingFixture() : blocks_(DatasetKind::kDirty) {
    Add(0, {0, 1});
    Add(1, {0, 1});
    Add(2, {1, 2});
    Add(3, {2});
  }

  void Add(ProfileId id, std::vector<TokenId> tokens) {
    EntityProfile p(id, 0, {});
    p.set_tokens(std::move(tokens));
    blocks_.AddProfile(p);
    profiles_.Add(std::move(p));
  }

  WeightingContext Ctx(WeightingScheme scheme) {
    return WeightingContext{&blocks_, &profiles_, scheme};
  }

  std::vector<TokenId> ActiveBlocksOf(ProfileId id) {
    std::vector<TokenId> out;
    for (const TokenId t : profiles_.Get(id).tokens()) {
      if (blocks_.IsActive(t)) out.push_back(t);
    }
    return out;
  }

  BlockCollection blocks_;
  ProfileStore profiles_;
};

TEST_F(WeightingFixture, CbsCountsCommonBlocks) {
  auto cmps = GenerateWeightedComparisons(Ctx(WeightingScheme::kCbs),
                                          profiles_.Get(2),
                                          ActiveBlocksOf(2));
  // Neighbors of p2 with smaller id: p0, p1 (via token 1).
  ASSERT_EQ(cmps.size(), 2u);
  for (const auto& c : cmps) {
    EXPECT_EQ(c.x, 2u);
    EXPECT_DOUBLE_EQ(c.weight, 1.0);  // one common block
  }
}

TEST_F(WeightingFixture, CbsCountsMultipleCommonBlocks) {
  auto cmps = GenerateWeightedComparisons(Ctx(WeightingScheme::kCbs),
                                          profiles_.Get(1),
                                          ActiveBlocksOf(1));
  // p1 vs p0 share tokens 0 and 1 -> CBS = 2.
  ASSERT_EQ(cmps.size(), 1u);
  EXPECT_EQ(cmps[0].y, 0u);
  EXPECT_DOUBLE_EQ(cmps[0].weight, 2.0);
}

TEST_F(WeightingFixture, OnlyOlderNeighborsRestricts) {
  auto older = GenerateWeightedComparisons(Ctx(WeightingScheme::kCbs),
                                           profiles_.Get(0),
                                           ActiveBlocksOf(0),
                                           /*only_older_neighbors=*/true);
  EXPECT_TRUE(older.empty());  // p0 is the oldest
  auto all = GenerateWeightedComparisons(Ctx(WeightingScheme::kCbs),
                                         profiles_.Get(0),
                                         ActiveBlocksOf(0),
                                         /*only_older_neighbors=*/false);
  EXPECT_EQ(all.size(), 2u);  // p1 (tokens 0,1), p2 (token 1)
}

TEST_F(WeightingFixture, JsNormalizesByBlockSets) {
  auto cmps = GenerateWeightedComparisons(Ctx(WeightingScheme::kJs),
                                          profiles_.Get(1),
                                          ActiveBlocksOf(1));
  ASSERT_EQ(cmps.size(), 1u);
  // |B0|=2, |B1|=2, CBS=2 -> 2/(2+2-2) = 1.
  EXPECT_DOUBLE_EQ(cmps[0].weight, 1.0);
}

TEST_F(WeightingFixture, ArcsFavorsSmallBlocks) {
  // p3 only shares token 2 (block of 2 -> 1 comparison).
  auto cmps = GenerateWeightedComparisons(Ctx(WeightingScheme::kArcs),
                                          profiles_.Get(3),
                                          ActiveBlocksOf(3));
  ASSERT_EQ(cmps.size(), 1u);
  EXPECT_DOUBLE_EQ(cmps[0].weight, 1.0);  // 1 / ||b|| with ||b|| = 1
}

TEST_F(WeightingFixture, EcbsPositive) {
  auto cmps = GenerateWeightedComparisons(Ctx(WeightingScheme::kEcbs),
                                          profiles_.Get(1),
                                          ActiveBlocksOf(1));
  ASSERT_EQ(cmps.size(), 1u);
  EXPECT_GT(cmps[0].weight, 0.0);
}

TEST(WeightingCleanCleanTest, OnlyCrossSourcePairs) {
  BlockCollection blocks(DatasetKind::kCleanClean);
  ProfileStore profiles;
  auto add = [&](ProfileId id, SourceId s, std::vector<TokenId> tokens) {
    EntityProfile p(id, s, {});
    p.set_tokens(std::move(tokens));
    blocks.AddProfile(p);
    profiles.Add(std::move(p));
  };
  add(0, 0, {0});
  add(1, 0, {0});
  add(2, 1, {0});
  const WeightingContext ctx{&blocks, &profiles, WeightingScheme::kCbs};
  auto cmps = GenerateWeightedComparisons(ctx, profiles.Get(2), {0});
  ASSERT_EQ(cmps.size(), 2u);  // cross-source only, both of source 0
  auto same_source = GenerateWeightedComparisons(ctx, profiles.Get(1), {0});
  EXPECT_TRUE(same_source.empty());  // p0 is same-source
}

TEST(WeightingTest, ToStringNames) {
  EXPECT_STREQ(ToString(WeightingScheme::kCbs), "CBS");
  EXPECT_STREQ(ToString(WeightingScheme::kEcbs), "ECBS");
  EXPECT_STREQ(ToString(WeightingScheme::kJs), "JS");
  EXPECT_STREQ(ToString(WeightingScheme::kArcs), "ARCS");
}

TEST_F(WeightingFixture, ScratchKernelMatchesReference) {
  WeightingScratch scratch;
  for (const auto scheme :
       {WeightingScheme::kCbs, WeightingScheme::kEcbs, WeightingScheme::kJs,
        WeightingScheme::kArcs}) {
    for (ProfileId id = 0; id < profiles_.size(); ++id) {
      auto ref = GenerateWeightedComparisonsReference(
          Ctx(scheme), profiles_.Get(id), ActiveBlocksOf(id));
      auto fast = GenerateWeightedComparisons(Ctx(scheme), profiles_.Get(id),
                                              ActiveBlocksOf(id),
                                              /*only_older_neighbors=*/true,
                                              /*visits=*/nullptr, &scratch);
      auto by_neighbor = [](const Comparison& a, const Comparison& b) {
        return a.y < b.y;
      };
      std::sort(ref.begin(), ref.end(), by_neighbor);
      std::sort(fast.begin(), fast.end(), by_neighbor);
      ASSERT_EQ(fast.size(), ref.size());
      for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(fast[i].y, ref[i].y);
        EXPECT_DOUBLE_EQ(fast[i].weight, ref[i].weight);
      }
    }
  }
}

TEST_F(WeightingFixture, AppendKeepsExistingOutput) {
  WeightingScratch scratch;
  std::vector<Comparison> out = {Comparison(7, 8, 42.0)};
  AppendWeightedComparisons(Ctx(WeightingScheme::kCbs), profiles_.Get(2),
                            ActiveBlocksOf(2), /*only_older_neighbors=*/true,
                            /*visits=*/nullptr, scratch, &out);
  ASSERT_EQ(out.size(), 3u);  // sentinel + p2's two candidates
  EXPECT_DOUBLE_EQ(out[0].weight, 42.0);
}

TEST_F(WeightingFixture, VisitsCountRawMemberIterations) {
  WeightingScratch scratch;
  uint64_t visits = 0;
  auto cmps = GenerateWeightedComparisons(
      Ctx(WeightingScheme::kCbs), profiles_.Get(2), ActiveBlocksOf(2),
      /*only_older_neighbors=*/true, &visits, &scratch);
  // Blocks of p2: token 1 (members p0,p1,p2) and token 2 (p2,p3).
  EXPECT_EQ(visits, 5u);
  EXPECT_GE(visits, cmps.size());
}

TEST(PairCbsWeightTest, CountsCommonTokens) {
  EntityProfile a(0, 0, {});
  a.set_tokens({1, 2, 3});
  EntityProfile b(1, 0, {});
  b.set_tokens({2, 3, 4});
  EXPECT_DOUBLE_EQ(PairCbsWeight(a, b), 2.0);
}

// ---------------------------------------------------------------------------
// I-WNP
// ---------------------------------------------------------------------------

TEST(IWnpTest, PrunesBelowMean) {
  std::vector<Comparison> in = {
      Comparison(0, 1, 1.0), Comparison(0, 2, 2.0), Comparison(0, 3, 9.0)};
  // mean = 4 -> only the 9.0 comparison survives.
  const auto out = IWnpPrune(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].weight, 9.0);
}

TEST(IWnpTest, KeepsComparisonsAtMean) {
  std::vector<Comparison> in = {Comparison(0, 1, 2.0), Comparison(0, 2, 2.0)};
  EXPECT_EQ(IWnpPrune(in).size(), 2u);  // weight == mean retained
}

TEST(IWnpTest, SingletonAndEmptyPassThrough) {
  EXPECT_TRUE(IWnpPrune({}).empty());
  EXPECT_EQ(IWnpPrune({Comparison(0, 1, 0.5)}).size(), 1u);
}

TEST(IWnpTest, MeanWeight) {
  EXPECT_DOUBLE_EQ(MeanWeight({}), 0.0);
  EXPECT_DOUBLE_EQ(
      MeanWeight({Comparison(0, 1, 1.0), Comparison(0, 2, 3.0)}), 2.0);
}

// ---------------------------------------------------------------------------
// BlockingGraph
// ---------------------------------------------------------------------------

TEST_F(WeightingFixture, GraphBuildsUndirectedEdges) {
  BlockingGraph graph;
  const size_t edges = graph.Build(Ctx(WeightingScheme::kCbs),
                                   static_cast<ProfileId>(profiles_.size()));
  // Edges: (0,1) CBS 2; (0,2) CBS 1; (1,2) CBS 1; (2,3) CBS 1.
  EXPECT_EQ(edges, 4u);
  EXPECT_EQ(graph.num_edges(), 4u);
  EXPECT_EQ(graph.Edges(0).size(), 2u);
  EXPECT_EQ(graph.Edges(2).size(), 3u);
  EXPECT_EQ(graph.Edges(3).size(), 1u);
}

TEST_F(WeightingFixture, GraphEdgesSortedByWeightDesc) {
  BlockingGraph graph;
  graph.Build(Ctx(WeightingScheme::kCbs),
              static_cast<ProfileId>(profiles_.size()));
  const auto& edges = graph.Edges(0);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_GE(edges[0].weight, edges[1].weight);
  EXPECT_DOUBLE_EQ(edges[0].weight, 2.0);  // (0,1)
}

TEST_F(WeightingFixture, GraphNodeWeightIsBestEdge) {
  BlockingGraph graph;
  graph.Build(Ctx(WeightingScheme::kCbs),
              static_cast<ProfileId>(profiles_.size()));
  EXPECT_DOUBLE_EQ(graph.NodeWeight(0), 2.0);
  EXPECT_DOUBLE_EQ(graph.NodeWeight(3), 1.0);
}

TEST_F(WeightingFixture, GraphRespectsLimit) {
  BlockingGraph graph;
  graph.Build(Ctx(WeightingScheme::kCbs), 2);
  EXPECT_EQ(graph.num_nodes(), 2u);
  EXPECT_EQ(graph.num_edges(), 1u);  // only (0,1)
}

}  // namespace
}  // namespace pier
